// Communication study: why the admission rule of FSAIE-Comm matters.
//
// Builds one system, distributes it over a growing number of ranks and
// prints, for each extension flavour, the pattern growth, the halo traffic
// of one G / G^T halo update, and the iteration count — demonstrating that
// FSAIE-Comm matches the naive extension's iteration quality almost entirely
// while moving exactly as many bytes as plain FSAI.
//
//   build/examples/comm_study [grid = 48] [line_bytes = 256]
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "harness/table.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"
#include "solver/pcg.hpp"

int main(int argc, char** argv) {
  using namespace fsaic;
  const index_t grid = argc > 1 ? std::atoi(argv[1]) : 48;
  const int line = argc > 2 ? std::atoi(argv[2]) : 256;

  const CsrMatrix a = permute_symmetric(
      graded2d(grid, grid, 1e4), tile_permutation_2d(grid, grid, 4, 2));
  std::cout << "graded2d " << grid << "x" << grid << ", " << a.nnz()
            << " nnz, cache line " << line << " B\n\n";

  for (const rank_t nranks : {4, 8, 16}) {
    const PartitionedSystem sys = partition_system(a, nranks);
    const DistCsr a_dist = DistCsr::distribute(sys.matrix, sys.layout);
    Rng rng(77);
    std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
    for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
    const DistVector b(sys.layout, bg);

    TextTable table({"method", "+%NNZ", "halo.bytes(G+GT)", "halo.msgs",
                     "iterations"});
    for (const ExtensionMode mode :
         {ExtensionMode::None, ExtensionMode::LocalOnly, ExtensionMode::CommAware,
          ExtensionMode::FullHalo}) {
      FsaiOptions opts;
      opts.extension = mode;
      opts.cache_line_bytes = line;
      const FsaiBuildResult build =
          build_fsai_preconditioner(sys.matrix, sys.layout, opts);
      const auto precond = make_factorized_preconditioner(build, to_string(mode));
      DistVector x(sys.layout);
      const SolveResult r = pcg_solve(a_dist, b, x, *precond,
                                      {.rel_tol = 1e-8, .max_iterations = 20000});
      table.add_row({to_string(mode),
                     std::to_string(build.nnz_increase_pct),
                     std::to_string(build.g_dist.halo_update_bytes() +
                                    build.gt_dist.halo_update_bytes()),
                     std::to_string(build.g_dist.halo_update_messages() +
                                    build.gt_dist.halo_update_messages()),
                     std::to_string(r.iterations)});
    }
    std::cout << nranks << " ranks (edge cut " << sys.edge_cut << "):\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "fsaie-comm keeps the fsai traffic byte-identical; fsaie-full "
               "buys the same iterations for strictly more communication.\n";
  return 0;
}
