// Filter tuning walkthrough: sweep the Filter value and compare static
// against dynamic filtering on a deliberately skewed decomposition — the
// workflow a user follows to pick the filter for their own problem.
//
//   build/examples/filter_tuning [grid = 64]
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "harness/table.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"
#include "perf/cost_model.hpp"
#include "solver/pcg.hpp"

int main(int argc, char** argv) {
  using namespace fsaic;
  const index_t grid = argc > 1 ? std::atoi(argv[1]) : 64;

  const CsrMatrix a = permute_symmetric(
      graded2d(grid, grid, 1e5), tile_permutation_2d(grid, grid, 4, 2));
  // A skewed 4-rank split: rank 0 owns 40% of the rows, so unfiltered
  // extensions overload it.
  const index_t n = a.rows();
  const Layout layout({0, 2 * n / 5, 3 * n / 5, 4 * n / 5, n});
  const DistCsr a_dist = DistCsr::distribute(a, layout);
  const CostModel cost(machine_a64fx(), {.threads_per_rank = 8});

  Rng rng(31);
  std::vector<value_t> bg(static_cast<std::size_t>(n));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector b(layout, bg);

  std::cout << "graded2d " << grid << "x" << grid
            << " on a skewed 4-rank layout (rank 0 owns 40% of rows)\n\n";

  const auto solve = [&](const FsaiOptions& opts) {
    const auto build = build_fsai_preconditioner(a, layout, opts);
    const auto precond = make_factorized_preconditioner(build, "sweep");
    DistVector x(layout);
    const auto r = pcg_solve(a_dist, b, x, *precond,
                             {.rel_tol = 1e-8, .max_iterations = 20000});
    const double t = r.iterations *
                     cost.pcg_iteration_cost(a_dist, build.g_dist, build.gt_dist)
                         .total();
    return std::tuple{r.iterations, t, build.nnz_increase_pct,
                      build.imbalance_avg()};
  };

  FsaiOptions base_opts;
  base_opts.cache_line_bytes = 256;
  const auto [it0, t0, nnz0, imb0] = solve(base_opts);
  std::cout << "fsai baseline: " << it0 << " iterations, modeled " << t0
            << " s, imbalance " << imb0 << "\n\n";

  TextTable table({"Filter", "strategy", "iters", "+%NNZ", "imbalance",
                   "time.dec%"});
  for (const value_t filter : {0.005, 0.01, 0.05, 0.1, 0.2}) {
    for (const FilterStrategy strategy :
         {FilterStrategy::Static, FilterStrategy::Dynamic}) {
      FsaiOptions opts = base_opts;
      opts.extension = ExtensionMode::CommAware;
      opts.filter = filter;
      opts.filter_strategy = strategy;
      const auto [it, t, nnz, imb] = solve(opts);
      table.add_row({std::to_string(filter), to_string(strategy),
                     std::to_string(it), std::to_string(nnz),
                     std::to_string(imb),
                     std::to_string(100.0 * (t0 - t) / t0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading guide: small filters keep the largest extensions "
               "(fewest iterations) but can overload the fat rank; the "
               "dynamic strategy trims only that rank, keeping the iteration "
               "gain while restoring balance.\n";
  return 0;
}
