// A configurable PDE solve: pick the problem, its size, the preconditioner
// flavour, the filter and the simulated machine from the command line. This
// is the "I have a linear system, which configuration should I use?" tool.
//
//   build/examples/poisson_solver [options]
//     --problem poisson2d|poisson3d|graded2d|anisotropic2d   (default poisson2d)
//     --n <grid>            grid points per dimension         (default 64)
//     --ranks <p>           simulated MPI ranks               (default 8)
//     --threads <t>         threads per rank (cost model)     (default 8)
//     --method fsai|fsaie|fsaie-comm|fsaie-full               (default fsaie-comm)
//     --filter <f>          filter value                      (default 0.01)
//     --static              static instead of dynamic filtering
//     --machine skylake|a64fx|zen2                            (default skylake)
//     --tol <t>             relative residual tolerance       (default 1e-8)
#include <cstring>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"
#include "perf/cost_model.hpp"
#include "solver/pcg.hpp"

namespace {

using namespace fsaic;

struct Options {
  std::string problem = "poisson2d";
  index_t n = 64;
  rank_t ranks = 8;
  int threads = 8;
  std::string method = "fsaie-comm";
  value_t filter = 0.01;
  bool dynamic = true;
  std::string machine = "skylake";
  value_t tol = 1e-8;
};

CsrMatrix make_problem(const Options& o) {
  if (o.problem == "poisson2d") {
    return permute_symmetric(poisson2d(o.n, o.n),
                             tile_permutation_2d(o.n, o.n, 4, 2));
  }
  if (o.problem == "poisson3d") {
    return permute_symmetric(poisson3d(o.n, o.n, o.n),
                             tile_permutation_3d(o.n, o.n, o.n, 2, 2, 2));
  }
  if (o.problem == "graded2d") {
    return permute_symmetric(graded2d(o.n, o.n, 1e5),
                             tile_permutation_2d(o.n, o.n, 4, 2));
  }
  if (o.problem == "anisotropic2d") {
    return permute_symmetric(anisotropic2d(o.n, o.n, 0.2),
                             tile_permutation_2d(o.n, o.n, 4, 2));
  }
  throw Error("unknown problem: " + o.problem);
}

ExtensionMode parse_method(const std::string& m) {
  if (m == "fsai") return ExtensionMode::None;
  if (m == "fsaie") return ExtensionMode::LocalOnly;
  if (m == "fsaie-comm") return ExtensionMode::CommAware;
  if (m == "fsaie-full") return ExtensionMode::FullHalo;
  throw Error("unknown method: " + m);
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      FSAIC_REQUIRE(i + 1 < argc, "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--problem") {
      o.problem = next();
    } else if (arg == "--n") {
      o.n = std::stoi(next());
    } else if (arg == "--ranks") {
      o.ranks = std::stoi(next());
    } else if (arg == "--threads") {
      o.threads = std::stoi(next());
    } else if (arg == "--method") {
      o.method = next();
    } else if (arg == "--filter") {
      o.filter = std::stod(next());
    } else if (arg == "--static") {
      o.dynamic = false;
    } else if (arg == "--machine") {
      o.machine = next();
    } else if (arg == "--tol") {
      o.tol = std::stod(next());
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 1;
    }
  }

  const Machine machine = machine_by_name(o.machine);
  const CsrMatrix a = make_problem(o);
  std::cout << o.problem << " n=" << o.n << ": " << a.rows() << " unknowns, "
            << a.nnz() << " nonzeros\n";

  const PartitionedSystem sys = partition_system(a, o.ranks);
  const DistCsr a_dist = DistCsr::distribute(sys.matrix, sys.layout);
  std::cout << o.ranks << " ranks, edge cut " << sys.edge_cut << "\n";

  FsaiOptions fopts;
  fopts.extension = parse_method(o.method);
  fopts.cache_line_bytes = machine.l1.line_bytes;
  fopts.filter = o.filter;
  fopts.filter_strategy =
      o.dynamic ? FilterStrategy::Dynamic : FilterStrategy::Static;
  const FsaiBuildResult build =
      build_fsai_preconditioner(sys.matrix, sys.layout, fopts);
  std::cout << o.method << " factor: " << build.g.nnz() << " entries (+"
            << build.nnz_increase_pct << "% over FSAI), imbalance index "
            << build.imbalance_avg() << "\n";

  Rng rng(123);
  std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector b(sys.layout, bg);
  DistVector x(sys.layout);
  const auto precond = make_factorized_preconditioner(build, o.method);
  const SolveResult r = pcg_solve(a_dist, b, x, *precond,
                                  {.rel_tol = o.tol, .max_iterations = 50000});

  const CostModel cost(machine, {.threads_per_rank = o.threads});
  const auto iter_cost =
      cost.pcg_iteration_cost(a_dist, build.g_dist, build.gt_dist);
  std::cout << (r.converged ? "converged" : "NOT converged") << " in "
            << r.iterations << " iterations; residual "
            << r.final_residual / r.initial_residual << " (relative)\n";
  std::cout << "modeled time on " << machine.name << ": "
            << r.iterations * iter_cost.total() << " s  (per-iteration "
            << iter_cost.total() << " s: spmv " << iter_cost.spmv_a.total()
            << ", precond " << iter_cost.precond_total() << ", blas1 "
            << iter_cost.blas1 << ", allreduce " << iter_cost.allreduce << ")\n";
  std::cout << "halo per update: " << build.g_dist.halo_update_bytes()
            << " B in " << build.g_dist.halo_update_messages()
            << " messages; solve moved " << r.comm.halo_bytes / (1 << 20)
            << " MiB total\n";
  return r.converged ? 0 : 2;
}
