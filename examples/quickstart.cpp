// Quickstart: solve a Poisson system with CG preconditioned by FSAI and by
// the communication-aware extended FSAIE-Comm, and compare.
//
//   build/examples/quickstart [grid = 48] [ranks = 8]
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "matgen/generators.hpp"
#include "perf/cost_model.hpp"
#include "solver/pcg.hpp"

int main(int argc, char** argv) {
  using namespace fsaic;
  const index_t grid = argc > 1 ? std::atoi(argv[1]) : 48;
  const rank_t nranks = argc > 2 ? std::atoi(argv[2]) : 8;

  // 1. A model problem: 2D Poisson on a grid x grid mesh.
  const CsrMatrix a = poisson2d(grid, grid);
  std::cout << "matrix: poisson2d " << grid << "x" << grid << " (" << a.rows()
            << " rows, " << a.nnz() << " nnz)\n";

  // 2. Partition the adjacency graph over the simulated ranks (the METIS
  //    step of a real MPI code) and distribute the system.
  const PartitionedSystem sys = partition_system(a, nranks);
  const DistCsr a_dist = DistCsr::distribute(sys.matrix, sys.layout);
  std::cout << "partition: " << nranks << " ranks, edge cut " << sys.edge_cut
            << ", imbalance " << sys.partition_imbalance << "\n";

  // 3. A reproducible right-hand side.
  Rng rng(2022);
  std::vector<value_t> b_global(static_cast<std::size_t>(a.rows()));
  for (auto& v : b_global) v = rng.next_uniform(-1.0, 1.0);
  const DistVector b(sys.layout, b_global);

  // 4. Solve with each preconditioner flavour.
  const CostModel cost(machine_skylake(), {.threads_per_rank = 8});
  for (const ExtensionMode mode :
       {ExtensionMode::None, ExtensionMode::LocalOnly, ExtensionMode::CommAware}) {
    FsaiOptions opts;
    opts.extension = mode;
    opts.cache_line_bytes = 64;
    opts.filter = 0.01;
    opts.filter_strategy = FilterStrategy::Dynamic;
    const FsaiBuildResult build = build_fsai_preconditioner(sys.matrix, sys.layout, opts);
    const auto precond = make_factorized_preconditioner(build, to_string(mode));

    DistVector x(sys.layout);
    const SolveResult r = pcg_solve(a_dist, b, x, *precond,
                                    {.rel_tol = 1e-8, .max_iterations = 10000});
    const double iter_cost =
        cost.pcg_iteration_cost(a_dist, build.g_dist, build.gt_dist).total();
    std::cout << to_string(mode) << ": " << r.iterations << " iterations"
              << (r.converged ? "" : " (NOT converged)") << ", +"
              << build.nnz_increase_pct << "% pattern entries, modeled time "
              << r.iterations * iter_cost << " s, halo bytes/update "
              << build.g_dist.halo_update_bytes() << "\n";
  }
  return 0;
}
