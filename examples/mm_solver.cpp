// Solve a user-supplied SuiteSparse / MatrixMarket SPD system with the
// FSAIE-Comm preconditioned CG — the real-world entry point of the library.
//
//   build/examples/mm_solver <matrix.mtx> [ranks = 8] [filter = 0.01] \
//                            [machine = skylake]
//
// The right-hand side is random, normalized to the matrix max norm, and the
// convergence criterion reduces the initial residual by eight orders of
// magnitude, matching the paper's Section 5.1 setup.
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "matgen/generators.hpp"
#include "perf/cost_model.hpp"
#include "solver/pcg.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/vector_ops.hpp"

int main(int argc, char** argv) {
  using namespace fsaic;
  if (argc < 2) {
    std::cerr << "usage: mm_solver <matrix.mtx> [ranks] [filter] [machine]\n";
    return 1;
  }
  const rank_t ranks = argc > 2 ? std::atoi(argv[2]) : 8;
  const value_t filter = argc > 3 ? std::atof(argv[3]) : 0.01;
  const Machine machine = machine_by_name(argc > 4 ? argv[4] : "skylake");

  CsrMatrix a = read_matrix_market_file(argv[1]);
  FSAIC_REQUIRE(a.rows() == a.cols(), "matrix must be square");
  FSAIC_REQUIRE(a.is_symmetric(1e-10 * a.max_abs()),
                "matrix must be symmetric (CG requires SPD)");
  std::cout << argv[1] << ": " << a.rows() << " rows, " << a.nnz() << " nnz\n";

  const PartitionedSystem sys = partition_system(a, ranks);
  const DistCsr a_dist = DistCsr::distribute(sys.matrix, sys.layout);

  Rng rng(2022);
  std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  const value_t bmax = norm_inf(bg);
  if (bmax > 0) scale(a.max_abs() / bmax, bg);
  std::vector<value_t> b_perm(bg.size());
  for (std::size_t i = 0; i < bg.size(); ++i) {
    b_perm[static_cast<std::size_t>(sys.perm[i])] = bg[i];
  }
  const DistVector b(sys.layout, b_perm);

  const CostModel cost(machine, {.threads_per_rank = 8});
  for (const ExtensionMode mode : {ExtensionMode::None, ExtensionMode::CommAware}) {
    FsaiOptions opts;
    opts.extension = mode;
    opts.cache_line_bytes = machine.l1.line_bytes;
    opts.filter = filter;
    opts.filter_strategy = FilterStrategy::Dynamic;
    const FsaiBuildResult build =
        build_fsai_preconditioner(sys.matrix, sys.layout, opts);
    const auto precond = make_factorized_preconditioner(build, to_string(mode));
    DistVector x(sys.layout);
    const SolveResult r = pcg_solve(a_dist, b, x, *precond,
                                    {.rel_tol = 1e-8, .max_iterations = 50000});
    std::cout << to_string(mode) << ": " << r.iterations << " iterations"
              << (r.converged ? "" : " (NOT converged)") << ", +"
              << build.nnz_increase_pct << "% entries, modeled time "
              << r.iterations *
                     cost.pcg_iteration_cost(a_dist, build.g_dist, build.gt_dist)
                         .total()
              << " s on " << machine.name << "\n";
  }
  return 0;
}
