// Minimal solve-service client: builds a small request mix in memory, runs
// it through the in-process SolveService (the same engine behind `fsaic
// serve`), and prints what the serving layer adds on top of a plain solve —
// cache hits, request batching, admission control and the per-request
// latency split.
//
//   build/examples/serve_client [workers = 2]
//
// To speak the same protocol over files instead, write the requests as
// JSONL and use the CLI:
//
//   build/tools/fsaic serve --requests in.jsonl --report out.jsonl
#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "harness/table.hpp"
#include "service/solve_service.hpp"

int main(int argc, char** argv) {
  using namespace fsaic;
  const int workers = argc > 1 ? std::atoi(argv[1]) : 2;

  // Responses arrive on worker threads, in completion order; the handler is
  // called serialized, so a plain container needs no extra locking.
  std::vector<SolveResponse> responses;
  ServiceOptions options;
  options.workers = workers;
  options.queue_capacity = 16;
  options.cache_capacity = 4;
  SolveService service(options, [&responses](const SolveResponse& r) {
    responses.push_back(r);
  });

  // The same operator four times with different right-hand sides — the
  // repeated-solve workload the factor cache and the batcher exist for —
  // plus one request whose deadline has already passed at submission.
  const auto make_request = [](const std::string& id, std::uint64_t seed) {
    SolveRequest req;
    req.id = id;
    req.generate = "thermal2";
    req.ranks = 8;
    req.rhs_seed = seed;
    return req;
  };
  for (int i = 0; i < 4; ++i) {
    const auto req = make_request("rhs" + std::to_string(i),
                                  static_cast<std::uint64_t>(100 + i));
    if (!service.submit(req)) {
      std::cout << req.id << " was rejected at admission\n";
    }
  }
  SolveRequest late = make_request("late", 7);
  late.deadline_ms = 0.0;  // already due: deterministically rejected
  service.submit(late);
  service.drain();

  TextTable table({"id", "status", "cache", "batch", "iters", "queue.ms",
                   "setup.ms", "solve.ms"});
  for (const auto& r : responses) {
    table.add_row({r.id, r.status + (r.reason.empty() ? "" : ":" + r.reason),
                   r.cache.empty() ? "-" : r.cache,
                   r.batch_size > 0 ? std::to_string(r.batch_size) : "-",
                   r.ok() ? std::to_string(r.iterations) : "-",
                   strformat("%.2f", r.queue_us / 1e3),
                   strformat("%.2f", r.setup_us / 1e3),
                   strformat("%.2f", r.solve_us / 1e3)});
  }
  table.print(std::cout);

  const ServiceStats stats = service.stats();
  std::cout << "\n" << stats.completed << " solves ("
            << stats.cache.misses << " factor builds, " << stats.cache.hits
            << " cache fetches), largest batch " << stats.max_batch_size
            << ", " << stats.rejected_deadline << " deadline rejection(s)\n";
  return 0;
}
