// Export the synthetic test suites to MatrixMarket files, so the matrices
// can be inspected, plotted or fed to external solvers — and so a user with
// the real SuiteSparse downloads can diff structural statistics side by
// side.
//
//   build/examples/export_suite <output-dir> [small|large|all] [--stats]
#include <filesystem>
#include <iostream>

#include "matgen/suite.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  using namespace fsaic;
  if (argc < 2) {
    std::cerr << "usage: export_suite <output-dir> [small|large|all] [--stats]\n";
    return 1;
  }
  const std::filesystem::path dir = argv[1];
  const std::string which = argc > 2 ? argv[2] : "small";
  bool stats = false;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--stats") stats = true;
  }
  std::filesystem::create_directories(dir);

  std::vector<const std::vector<SuiteEntry>*> suites;
  if (which == "small" || which == "all") suites.push_back(&small_suite());
  if (which == "large" || which == "all") suites.push_back(&large_suite());
  if (suites.empty()) {
    std::cerr << "unknown suite selector: " << which << "\n";
    return 1;
  }

  for (const auto* suite : suites) {
    for (const auto& entry : *suite) {
      const CsrMatrix a = entry.generate();
      const auto path = dir / (entry.name + ".mtx");
      write_matrix_market_file(path.string(), a);
      std::cout << path.string() << ": " << a.rows() << " rows, " << a.nnz()
                << " nnz (" << entry.type << ", mirrors " << entry.paper_name
                << ")\n";
      if (stats) {
        const auto s = compute_matrix_stats(a);
        std::cout << "  rows " << s.min_row_nnz << ".." << s.max_row_nnz
                  << " nnz (avg " << s.avg_row_nnz << "), bandwidth "
                  << s.bandwidth << ", dominant rows "
                  << 100.0 * s.diagonally_dominant_fraction
                  << "%, est. condition "
                  << estimate_condition_number(a, 40) << "\n";
      }
    }
  }
  return 0;
}
