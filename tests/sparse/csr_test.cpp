#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "sparse/coo.hpp"

namespace fsaic {
namespace {

CsrMatrix small_matrix() {
  // [ 2 -1  0 ]
  // [-1  2 -1 ]
  // [ 0 -1  2 ]
  CooBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add_symmetric(0, 1, -1.0);
  b.add(1, 1, 2.0);
  b.add_symmetric(1, 2, -1.0);
  b.add(2, 2, 2.0);
  return b.to_csr();
}

TEST(CsrTest, AtReturnsStoredValuesAndZeroOutsidePattern) {
  const auto a = small_matrix();
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(CsrTest, DiagonalExtraction) {
  const auto d = small_matrix().diagonal();
  EXPECT_EQ(d, (std::vector<value_t>{2.0, 2.0, 2.0}));
}

TEST(CsrTest, SymmetryCheck) {
  EXPECT_TRUE(small_matrix().is_symmetric());
  CooBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 2.0);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  EXPECT_FALSE(b.to_csr().is_symmetric());
  EXPECT_TRUE(b.to_csr().is_symmetric(1.5));  // within tolerance
}

TEST(CsrTest, MaxAbs) {
  EXPECT_DOUBLE_EQ(small_matrix().max_abs(), 2.0);
}

TEST(CsrTest, ZeroMatrixOnPattern) {
  const CsrMatrix z{small_matrix().pattern()};
  EXPECT_EQ(z.nnz(), small_matrix().nnz());
  for (value_t v : z.values()) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(CsrTest, ValueCountMustMatchPattern) {
  EXPECT_THROW(CsrMatrix(1, 1, {0, 1}, {0}, {1.0, 2.0}), Error);
}

TEST(CooTest, DuplicatesAreSummed) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 1, 1.0);
  const auto a = b.to_csr();
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
}

TEST(CooTest, DropZerosRemovesCancellations) {
  CooBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(0, 1, -1.0);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  EXPECT_EQ(b.to_csr(false).nnz(), 3);
  EXPECT_EQ(b.to_csr(true).nnz(), 2);
}

TEST(CooTest, AddSymmetricAddsOnceOnDiagonal) {
  CooBuilder b(2, 2);
  b.add_symmetric(0, 0, 5.0);
  b.add_symmetric(0, 1, 1.0);
  b.add(1, 1, 1.0);
  const auto a = b.to_csr();
  EXPECT_DOUBLE_EQ(a.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(CooTest, RejectsOutOfRangeIndices) {
  CooBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), Error);
  EXPECT_THROW(b.add(0, -1, 1.0), Error);
}

TEST(CooTest, ColumnsSortedWithinRows) {
  CooBuilder b(1, 5);
  b.add(0, 4, 1.0);
  b.add(0, 0, 2.0);
  b.add(0, 2, 3.0);
  const auto a = b.to_csr();
  const auto cols = a.row_cols(0);
  EXPECT_EQ(std::vector<index_t>(cols.begin(), cols.end()),
            (std::vector<index_t>{0, 2, 4}));
  const auto vals = a.row_vals(0);
  EXPECT_EQ(std::vector<value_t>(vals.begin(), vals.end()),
            (std::vector<value_t>{2.0, 3.0, 1.0}));
}

}  // namespace
}  // namespace fsaic
