#include "sparse/vector_ops.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fsaic {
namespace {

TEST(VectorOpsTest, Axpy) {
  std::vector<value_t> x{1.0, 2.0, 3.0};
  std::vector<value_t> y{1.0, 1.0, 1.0};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<value_t>{3.0, 5.0, 7.0}));
}

TEST(VectorOpsTest, Xpby) {
  std::vector<value_t> x{1.0, 2.0};
  std::vector<value_t> y{10.0, 20.0};
  xpby(x, 0.5, y);
  EXPECT_EQ(y, (std::vector<value_t>{6.0, 12.0}));
}

TEST(VectorOpsTest, DotAndNorms) {
  const std::vector<value_t> x{3.0, -4.0};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(VectorOpsTest, Scale) {
  std::vector<value_t> x{1.0, -2.0};
  scale(-3.0, x);
  EXPECT_EQ(x, (std::vector<value_t>{-3.0, 6.0}));
}

TEST(VectorOpsTest, SizeMismatchThrows) {
  std::vector<value_t> x{1.0};
  std::vector<value_t> y{1.0, 2.0};
  EXPECT_THROW(axpy(1.0, x, y), Error);
  EXPECT_THROW((void)dot(x, y), Error);
}

TEST(VectorOpsTest, EmptyVectorsAreFine) {
  std::vector<value_t> x;
  std::vector<value_t> y;
  axpy(1.0, x, y);
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 0.0);
}

}  // namespace
}  // namespace fsaic
