#include "sparse/vector_ops.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fsaic {
namespace {

TEST(VectorOpsTest, Axpy) {
  std::vector<value_t> x{1.0, 2.0, 3.0};
  std::vector<value_t> y{1.0, 1.0, 1.0};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<value_t>{3.0, 5.0, 7.0}));
}

TEST(VectorOpsTest, Xpby) {
  std::vector<value_t> x{1.0, 2.0};
  std::vector<value_t> y{10.0, 20.0};
  xpby(x, 0.5, y);
  EXPECT_EQ(y, (std::vector<value_t>{6.0, 12.0}));
}

TEST(VectorOpsTest, DotAndNorms) {
  const std::vector<value_t> x{3.0, -4.0};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(VectorOpsTest, Scale) {
  std::vector<value_t> x{1.0, -2.0};
  scale(-3.0, x);
  EXPECT_EQ(x, (std::vector<value_t>{-3.0, 6.0}));
}

TEST(VectorOpsTest, SizeMismatchThrows) {
  std::vector<value_t> x{1.0};
  std::vector<value_t> y{1.0, 2.0};
  EXPECT_THROW(axpy(1.0, x, y), Error);
  EXPECT_THROW((void)dot(x, y), Error);
}

TEST(VectorOpsTest, EmptyVectorsAreFine) {
  std::vector<value_t> x;
  std::vector<value_t> y;
  axpy(1.0, x, y);
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 0.0);
}

std::vector<value_t> iota_vec(std::size_t n, value_t scale) {
  std::vector<value_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = scale * static_cast<value_t>(i + 1) / 7.0;
  }
  return v;
}

TEST(FusedKernelsTest, CgSweepIsBitIdenticalToSeparateOps) {
  // The fused pipelined-CG recurrence must evaluate the exact expressions of
  // the three separate sweeps, element by element — EXPECT_EQ, no tolerance.
  constexpr std::size_t kN = 1237;  // not a multiple of any SIMD width
  const auto u = iota_vec(kN, 1.0);
  const auto w = iota_vec(kN, -0.3);
  const value_t beta = 0.37;
  const value_t malpha = -1.13;
  auto p1 = iota_vec(kN, 0.5), s1 = iota_vec(kN, 2.0), r1 = iota_vec(kN, -1.0);
  auto p2 = p1, s2 = s1, r2 = r1;
  xpby(u, beta, p1);
  xpby(w, beta, s1);
  axpy(malpha, s1, r1);
  fused_cg_sweep(u, w, beta, malpha, p2, s2, r2);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(r1, r2);
}

TEST(FusedKernelsTest, AxpyPairIsBitIdenticalToSeparateOps) {
  constexpr std::size_t kN = 1019;
  const auto d = iota_vec(kN, 0.9);
  const auto q = iota_vec(kN, -0.7);
  const value_t alpha = 0.251;
  auto x1 = iota_vec(kN, 3.0), r1 = iota_vec(kN, -2.0);
  auto x2 = x1, r2 = r1;
  axpy(alpha, d, x1);
  axpy(-alpha, q, r1);
  fused_axpy_pair(alpha, d, -alpha, q, x2, r2);
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(r1, r2);
}

TEST(FusedKernelsTest, SizeMismatchThrows) {
  std::vector<value_t> a3(3, 1.0);
  std::vector<value_t> a4(4, 1.0);
  std::vector<value_t> b3(3, 1.0);
  std::vector<value_t> c3(3, 1.0);
  EXPECT_THROW(fused_cg_sweep(a3, a4, 1.0, 1.0, b3, c3, a3), Error);
  EXPECT_THROW(fused_axpy_pair(1.0, a3, 1.0, a4, b3, c3), Error);
}

TEST(FusedKernelsTest, EmptyVectorsAreFine) {
  std::vector<value_t> e;
  std::vector<value_t> e2, e3, e4, e5;
  fused_cg_sweep(e, e2, 1.0, 1.0, e3, e4, e5);
  fused_axpy_pair(1.0, e, 1.0, e2, e3, e4);
}

}  // namespace
}  // namespace fsaic
