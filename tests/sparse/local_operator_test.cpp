#include "sparse/local_operator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"

namespace fsaic {
namespace {

std::vector<value_t> random_vec(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& e : v) e = rng.next_uniform(-1.0, 1.0);
  return v;
}

/// Split [0, rows) into an "interior" prefix and "boundary" tail, the shape
/// DistCsr hands the operator.
struct Split {
  std::vector<index_t> interior;
  std::vector<index_t> boundary;
};

Split split_rows(index_t rows, index_t boundary_count) {
  Split s;
  for (index_t i = 0; i < rows - boundary_count; ++i) s.interior.push_back(i);
  for (index_t i = rows - boundary_count; i < rows; ++i) s.boundary.push_back(i);
  return s;
}

TEST(KernelConfigTest, StringRoundTrips) {
  EXPECT_EQ(to_string(OperatorFormat::Csr), "csr");
  EXPECT_EQ(to_string(OperatorFormat::Sell), "sell");
  EXPECT_EQ(operator_format_from_string("csr"), OperatorFormat::Csr);
  EXPECT_EQ(operator_format_from_string("sell"), OperatorFormat::Sell);
  EXPECT_EQ(to_string(FactorPrecision::Double), "double");
  EXPECT_EQ(to_string(FactorPrecision::Single), "single");
  EXPECT_EQ(factor_precision_from_string("double"), FactorPrecision::Double);
  EXPECT_EQ(factor_precision_from_string("single"), FactorPrecision::Single);
  EXPECT_EQ(factor_precision_from_string("mixed"), FactorPrecision::Single);
  EXPECT_THROW((void)operator_format_from_string("ellpack"), Error);
  EXPECT_THROW((void)factor_precision_from_string("half"), Error);
}

TEST(KernelConfigTest, FromEnvReadsFormatOnly) {
  // setenv/unsetenv: this test must not run concurrently with others that
  // read FSAIC_FORMAT — gtest runs tests in one thread, so it cannot.
  ::setenv("FSAIC_FORMAT", "sell", 1);
  const auto sell_cfg = KernelConfig::from_env();
  EXPECT_EQ(sell_cfg.format, OperatorFormat::Sell);
  EXPECT_EQ(sell_cfg.precision, FactorPrecision::Double);
  ::setenv("FSAIC_FORMAT", "auto", 1);
  const auto auto_cfg = KernelConfig::from_env();
  EXPECT_TRUE(auto_cfg.autotune);
  EXPECT_FALSE(sell_cfg.autotune);
  ::unsetenv("FSAIC_FORMAT");
  const auto default_cfg = KernelConfig::from_env();
  EXPECT_FALSE(default_cfg.autotune);
  EXPECT_EQ(default_cfg.format, OperatorFormat::Csr);
  EXPECT_EQ(default_cfg.precision, FactorPrecision::Double);
  ::setenv("FSAIC_FORMAT", "blocked-ell", 1);
  EXPECT_THROW((void)KernelConfig::from_env(), Error);
  ::unsetenv("FSAIC_FORMAT");
}

class LocalOperatorFormats : public ::testing::TestWithParam<OperatorFormat> {};

TEST_P(LocalOperatorFormats, SpmvAllMatchesReferenceBitwise) {
  const auto a = random_laplacian(150, 6, 0.1, 51);
  const auto split = split_rows(a.rows(), 30);
  const KernelConfig cfg{.format = GetParam()};
  const LocalOperator op(a, split.interior, split.boundary, cfg);
  const auto x = random_vec(a.cols(), 52);
  std::vector<value_t> y_ref(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> y_op(static_cast<std::size_t>(a.rows()));
  spmv(a, x, y_ref);
  op.spmv_all(a, split.interior, split.boundary, x, y_op);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_op[i], y_ref[i]) << "row " << i;
  }
}

TEST_P(LocalOperatorFormats, InteriorAndBoundaryPartitionTheRows) {
  const auto a = poisson2d(9, 9);
  const auto split = split_rows(a.rows(), 13);
  const KernelConfig cfg{.format = GetParam()};
  const LocalOperator op(a, split.interior, split.boundary, cfg);
  const auto x = random_vec(a.cols(), 53);
  std::vector<value_t> y_ref(static_cast<std::size_t>(a.rows()));
  spmv(a, x, y_ref);

  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), -1.0);
  op.spmv_interior(a, split.interior, x, y);
  for (const index_t r : split.boundary) {
    ASSERT_EQ(y[static_cast<std::size_t>(r)], -1.0)
        << "boundary row " << r << " touched by interior apply";
  }
  op.spmv_boundary(a, split.boundary, x, y);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y[i], y_ref[i]) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, LocalOperatorFormats,
                         ::testing::Values(OperatorFormat::Csr,
                                           OperatorFormat::Sell));

TEST(LocalOperatorTest, DefaultConstructedIsCsrDoubleReference) {
  const LocalOperator op;
  EXPECT_EQ(op.config().format, OperatorFormat::Csr);
  EXPECT_EQ(op.config().precision, FactorPrecision::Double);
}

TEST(LocalOperatorTest, PaddedEntriesMatchFormat) {
  const auto a = random_laplacian(100, 5, 0.1, 61);
  const auto split = split_rows(a.rows(), 20);
  const LocalOperator csr(a, split.interior, split.boundary,
                          KernelConfig{.format = OperatorFormat::Csr});
  const LocalOperator sell(a, split.interior, split.boundary,
                           KernelConfig{.format = OperatorFormat::Sell});
  EXPECT_EQ(csr.padded_entries(a), a.nnz());
  EXPECT_DOUBLE_EQ(csr.padding_ratio(a), 1.0);
  EXPECT_GE(sell.padded_entries(a), a.nnz());
  EXPECT_GE(sell.padding_ratio(a), 1.0);
}

class LocalOperatorSingle : public ::testing::TestWithParam<OperatorFormat> {};

TEST_P(LocalOperatorSingle, SinglePrecisionStorageStaysClose) {
  const auto a = random_spd(90, 4, 71);
  const auto split = split_rows(a.rows(), 15);
  const KernelConfig cfg{.format = GetParam(),
                         .precision = FactorPrecision::Single};
  const LocalOperator op(a, split.interior, split.boundary, cfg);
  const auto x = random_vec(a.cols(), 72);
  std::vector<value_t> y_ref(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> y_op(static_cast<std::size_t>(a.rows()));
  spmv(a, x, y_ref);
  op.spmv_all(a, split.interior, split.boundary, x, y_op);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_NEAR(y_op[i], y_ref[i], 1e-5 * (1.0 + std::abs(y_ref[i])))
        << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, LocalOperatorSingle,
                         ::testing::Values(OperatorFormat::Csr,
                                           OperatorFormat::Sell));

}  // namespace
}  // namespace fsaic
