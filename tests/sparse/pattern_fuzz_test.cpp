// Randomized property tests over the sparse-pattern algebra: algebraic
// identities that must hold for any pattern, checked on randomly generated
// ones across densities and shapes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/pattern.hpp"

namespace fsaic {
namespace {

SparsityPattern random_pattern(index_t rows, index_t cols, double density,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<index_t>> r(static_cast<std::size_t>(rows));
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      if (rng.next_uniform() < density) {
        r[static_cast<std::size_t>(i)].push_back(j);
      }
    }
  }
  return SparsityPattern::from_rows(rows, cols, std::move(r));
}

class PatternFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] SparsityPattern make(index_t rows, index_t cols,
                                     double density) const {
    return random_pattern(rows, cols, density, GetParam());
  }
};

TEST_P(PatternFuzz, TransposeIsInvolution) {
  const auto p = make(23, 17, 0.15);
  EXPECT_EQ(p.transposed().transposed(), p);
  EXPECT_EQ(p.transposed().nnz(), p.nnz());
}

TEST_P(PatternFuzz, UnionIsCommutativeIdempotentAndMonotone) {
  const auto a = make(19, 19, 0.1);
  const auto b = random_pattern(19, 19, 0.12, GetParam() + 1000);
  const auto u = a.merged_with(b);
  EXPECT_EQ(u, b.merged_with(a));
  EXPECT_EQ(u.merged_with(u), u);
  EXPECT_GE(u.nnz(), std::max(a.nnz(), b.nnz()));
  EXPECT_LE(u.nnz(), a.nnz() + b.nnz());
  // Every entry of a and b is in the union.
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row(i)) {
      EXPECT_TRUE(u.contains(i, j));
    }
  }
}

TEST_P(PatternFuzz, LowerPlusUpperRecoversOriginalIfSymmetric) {
  // Symmetrize then split: lower ∪ lower^T = symmetrized pattern.
  const auto p = make(21, 21, 0.1);
  const auto sym = p.merged_with(p.transposed());
  const auto lower = sym.lower_triangle();
  EXPECT_EQ(lower.merged_with(lower.transposed()), sym);
}

TEST_P(PatternFuzz, SymbolicMultiplyMatchesNumericMultiply) {
  // Boolean product pattern == pattern of the numeric product with all-ones
  // values (no cancellation possible).
  const auto ap = make(12, 14, 0.18);
  const auto bp = random_pattern(14, 10, 0.18, GetParam() + 7);
  CsrMatrix a{ap};
  CsrMatrix b{bp};
  for (auto& v : a.values()) v = 1.0;
  for (auto& v : b.values()) v = 1.0;
  const auto numeric = multiply(a, b);
  EXPECT_EQ(ap.symbolic_multiply(bp), numeric.pattern());
}

TEST_P(PatternFuzz, TransposeDistributesOverUnion) {
  const auto a = make(16, 13, 0.2);
  const auto b = random_pattern(16, 13, 0.1, GetParam() + 3);
  EXPECT_EQ(a.merged_with(b).transposed(),
            a.transposed().merged_with(b.transposed()));
}

TEST_P(PatternFuzz, WithFullDiagonalIsIdempotent) {
  const auto p = make(15, 15, 0.1);
  const auto d = p.with_full_diagonal();
  EXPECT_TRUE(d.has_full_diagonal());
  EXPECT_EQ(d.with_full_diagonal(), d);
  EXPECT_GE(d.nnz(), p.nnz());
  EXPECT_LE(d.nnz(), p.nnz() + 15);
}

TEST_P(PatternFuzz, CooCsrRoundTripPreservesSums) {
  // Random triplets with duplicates: CSR entries must be the exact sums.
  Rng rng(GetParam() + 99);
  const index_t n = 12;
  CooBuilder builder(n, n);
  std::vector<std::vector<value_t>> dense(
      static_cast<std::size_t>(n), std::vector<value_t>(static_cast<std::size_t>(n), 0.0));
  for (int k = 0; k < 300; ++k) {
    const index_t i = rng.next_index(n);
    const index_t j = rng.next_index(n);
    const value_t v = rng.next_uniform(-2.0, 2.0);
    builder.add(i, j, v);
    dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] += v;
  }
  const auto a = builder.to_csr();
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(a.at(i, j), dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                  1e-12);
    }
  }
}

TEST_P(PatternFuzz, PermuteSymmetricPreservesSymmetryAndValuesMultiset) {
  Rng rng(GetParam() + 5);
  const index_t n = 14;
  CooBuilder builder(n, n);
  for (index_t i = 0; i < n; ++i) {
    builder.add(i, i, 2.0 + rng.next_uniform());
    const index_t j = rng.next_index(n);
    if (j != i) builder.add_symmetric(i, j, rng.next_uniform(-1.0, 1.0));
  }
  const auto a = builder.to_csr();
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (index_t i = n - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(rng.next_index(i + 1))]);
  }
  const auto b = permute_symmetric(a, perm);
  EXPECT_TRUE(b.is_symmetric(1e-14));
  EXPECT_EQ(b.nnz(), a.nnz());
  // Multisets of values agree.
  auto va = std::vector<value_t>(a.values().begin(), a.values().end());
  auto vb = std::vector<value_t>(b.values().begin(), b.values().end());
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  EXPECT_EQ(va, vb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace fsaic
