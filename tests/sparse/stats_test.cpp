#include "sparse/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "matgen/generators.hpp"
#include "sparse/coo.hpp"

namespace fsaic {
namespace {

TEST(MatrixStatsTest, PoissonValues) {
  const auto s = compute_matrix_stats(poisson2d(5, 5));
  EXPECT_EQ(s.rows, 25);
  EXPECT_EQ(s.nnz, 105);
  EXPECT_EQ(s.min_row_nnz, 3);  // corners
  EXPECT_EQ(s.max_row_nnz, 5);  // interior
  EXPECT_NEAR(s.avg_row_nnz, 105.0 / 25.0, 1e-12);
  EXPECT_EQ(s.bandwidth, 5);
  EXPECT_TRUE(s.symmetric);
  EXPECT_DOUBLE_EQ(s.diagonal_ratio, 1.0);  // constant diagonal
  // Interior rows are weakly dominant (4 = 4), boundary strictly.
  EXPECT_GT(s.diagonally_dominant_fraction, 0.0);
  EXPECT_LT(s.diagonally_dominant_fraction, 1.0);
}

TEST(MatrixStatsTest, AsymmetricDetected) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 1, 1.0);
  EXPECT_FALSE(compute_matrix_stats(b.to_csr()).symmetric);
}

TEST(LambdaMaxTest, DiagonalMatrixGivesLargestEntry) {
  CooBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(1, 1, 7.0);
  b.add(2, 2, 3.0);
  EXPECT_NEAR(estimate_lambda_max(b.to_csr(), 100), 7.0, 1e-6);
}

TEST(LambdaMaxTest, Poisson1dMatchesClosedForm) {
  // Tridiagonal (-1, 2, -1) of size n: lambda_max = 2 + 2 cos(pi/(n+1)).
  const index_t n = 40;
  CooBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i < n - 1) b.add(i, i + 1, -1.0);
  }
  const value_t expected =
      2.0 + 2.0 * std::cos(3.14159265358979323846 / (n + 1));
  // The power method converges slowly when the top eigenvalues cluster
  // (ratio cos(pi/41)/cos(2pi/41) here); accept 1% accuracy.
  EXPECT_NEAR(estimate_lambda_max(b.to_csr(), 400), expected, 1e-2);
}

TEST(ConditionTest, DiagonalMatrixExact) {
  CooBuilder b(4, 4);
  b.add(0, 0, 1.0);
  b.add(1, 1, 10.0);
  b.add(2, 2, 100.0);
  b.add(3, 3, 4.0);
  EXPECT_NEAR(estimate_condition_number(b.to_csr(), 4), 100.0, 1e-6);
}

TEST(ConditionTest, Poisson1dMatchesClosedForm) {
  const index_t n = 30;
  CooBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i < n - 1) b.add(i, i + 1, -1.0);
  }
  const double pi = 3.14159265358979323846;
  const value_t lmax = 2.0 + 2.0 * std::cos(pi / (n + 1));
  const value_t lmin = 2.0 - 2.0 * std::cos(pi / (n + 1));
  const value_t expected = lmax / lmin;
  // Full-dimension Lanczos reproduces the extreme eigenvalues well.
  EXPECT_NEAR(estimate_condition_number(b.to_csr(), n) / expected, 1.0, 0.05);
}

TEST(ConditionTest, ShiftReducesCondition) {
  const auto a = poisson2d(12, 12);
  const value_t c1 = estimate_condition_number(a, 80);
  const value_t c2 = estimate_condition_number(shifted(a, 5.0), 80);
  EXPECT_GT(c1, c2);
  EXPECT_GT(c2, 1.0);
}

}  // namespace
}  // namespace fsaic
