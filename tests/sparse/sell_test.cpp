#include "sparse/sell.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"

namespace fsaic {
namespace {

std::vector<value_t> random_vec(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& e : v) e = rng.next_uniform(-1.0, 1.0);
  return v;
}

void expect_same_spmv(const CsrMatrix& a, index_t chunk, index_t sigma,
                      std::uint64_t seed) {
  const SellMatrix sell(a, chunk, sigma);
  const auto x = random_vec(a.cols(), seed);
  std::vector<value_t> y_csr(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> y_sell(static_cast<std::size_t>(a.rows()));
  spmv(a, x, y_csr);
  sell.spmv(x, y_sell);
  for (std::size_t i = 0; i < y_csr.size(); ++i) {
    ASSERT_NEAR(y_sell[i], y_csr[i], 1e-12) << "row " << i;
  }
}

TEST(SellTest, MatchesCsrOnUniformStencil) {
  expect_same_spmv(poisson2d(13, 11), 8, 64, 1);
}

TEST(SellTest, MatchesCsrOnIrregularMatrix) {
  // Wildly varying row lengths: the padding/sorting machinery earns its keep.
  expect_same_spmv(random_laplacian(300, 5, 0.1, 9), 8, 64, 2);
}

TEST(SellTest, MatchesCsrWhenRowsNotMultipleOfChunk) {
  expect_same_spmv(poisson2d(7, 9), 8, 64, 3);  // 63 rows, chunk 8
}

TEST(SellTest, ChunkOneIsPlainSortedCsr) {
  expect_same_spmv(poisson2d(6, 6), 1, 4, 4);
}

TEST(SellTest, HandlesEmptyRows) {
  // Diagonal matrix with some zero rows in the pattern.
  const auto p = SparsityPattern::from_rows(6, 6, {{0}, {}, {2}, {}, {4}, {5}});
  CsrMatrix a{p};
  for (auto& v : a.values()) v = 2.0;
  expect_same_spmv(a, 4, 4, 5);
}

TEST(SellTest, SortingReducesPaddingOnSkewedRows) {
  const auto a = random_laplacian(512, 6, 0.1, 7);
  const SellMatrix unsorted(a, 8, 8);     // sigma == chunk: no sorting
  const SellMatrix sorted(a, 8, 512);     // global sorting window
  EXPECT_LE(sorted.padded_size(), unsorted.padded_size());
  EXPECT_GE(sorted.padding_ratio(), 1.0);
}

TEST(SellTest, PaddingRatioIsOneForUniformRows) {
  // Interior-only stencil where every row has identical length: band matrix.
  const auto a = band_spd(64, 3, 0.4, 0.5);
  // Rows near the boundary are shorter; use sigma=rows to pack them together.
  const SellMatrix sell(a, 8, 64);
  EXPECT_LT(sell.padding_ratio(), 1.2);
}

TEST(SellTest, RejectsBadParameters) {
  const auto a = poisson2d(4, 4);
  EXPECT_THROW((SellMatrix{a, 0, 8}), Error);
  EXPECT_THROW((SellMatrix{a, 8, 4}), Error);   // sigma < chunk
  EXPECT_THROW((SellMatrix{a, 8, 12}), Error);  // not a multiple
}

class SellGeometryProperty
    : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(SellGeometryProperty, SpmvMatchesCsrForAllGeometries) {
  const auto [chunk, sigma_mult] = GetParam();
  const auto a = random_spd(150, 4, 11);
  expect_same_spmv(a, chunk, chunk * sigma_mult, 17);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SellGeometryProperty,
    ::testing::Combine(::testing::Values<index_t>(1, 2, 4, 8, 16),
                       ::testing::Values<index_t>(1, 4, 16)));

}  // namespace
}  // namespace fsaic
