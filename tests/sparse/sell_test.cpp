#include "sparse/sell.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "matgen/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace fsaic {
namespace {

std::vector<value_t> random_vec(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& e : v) e = rng.next_uniform(-1.0, 1.0);
  return v;
}

void expect_same_spmv(const CsrMatrix& a, index_t chunk, index_t sigma,
                      std::uint64_t seed) {
  const SellMatrix sell(a, chunk, sigma);
  const auto x = random_vec(a.cols(), seed);
  std::vector<value_t> y_csr(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> y_sell(static_cast<std::size_t>(a.rows()));
  spmv(a, x, y_csr);
  sell.spmv(x, y_sell);
  for (std::size_t i = 0; i < y_csr.size(); ++i) {
    ASSERT_NEAR(y_sell[i], y_csr[i], 1e-12) << "row " << i;
  }
}

TEST(SellTest, MatchesCsrOnUniformStencil) {
  expect_same_spmv(poisson2d(13, 11), 8, 64, 1);
}

TEST(SellTest, MatchesCsrOnIrregularMatrix) {
  // Wildly varying row lengths: the padding/sorting machinery earns its keep.
  expect_same_spmv(random_laplacian(300, 5, 0.1, 9), 8, 64, 2);
}

TEST(SellTest, MatchesCsrWhenRowsNotMultipleOfChunk) {
  expect_same_spmv(poisson2d(7, 9), 8, 64, 3);  // 63 rows, chunk 8
}

TEST(SellTest, ChunkOneIsPlainSortedCsr) {
  expect_same_spmv(poisson2d(6, 6), 1, 4, 4);
}

TEST(SellTest, HandlesEmptyRows) {
  // Diagonal matrix with some zero rows in the pattern.
  const auto p = SparsityPattern::from_rows(6, 6, {{0}, {}, {2}, {}, {4}, {5}});
  CsrMatrix a{p};
  for (auto& v : a.values()) v = 2.0;
  expect_same_spmv(a, 4, 4, 5);
}

TEST(SellTest, SortingReducesPaddingOnSkewedRows) {
  const auto a = random_laplacian(512, 6, 0.1, 7);
  const SellMatrix unsorted(a, 8, 8);     // sigma == chunk: no sorting
  const SellMatrix sorted(a, 8, 512);     // global sorting window
  EXPECT_LE(sorted.padded_size(), unsorted.padded_size());
  EXPECT_GE(sorted.padding_ratio(), 1.0);
}

TEST(SellTest, PaddingRatioIsOneForUniformRows) {
  // Interior-only stencil where every row has identical length: band matrix.
  const auto a = band_spd(64, 3, 0.4, 0.5);
  // Rows near the boundary are shorter; use sigma=rows to pack them together.
  const SellMatrix sell(a, 8, 64);
  EXPECT_LT(sell.padding_ratio(), 1.2);
}

TEST(SellTest, SpmvIsBitwiseIdenticalToCsr) {
  // The solve-path contract: double-precision SELL accumulates each row in
  // the CSR order, so the result matches to the last bit — EXPECT_EQ on
  // doubles, not a tolerance.
  const auto a = random_laplacian(400, 7, 0.1, 21);
  const SellMatrix sell(a, 8, 64);
  const auto x = random_vec(a.cols(), 22);
  std::vector<value_t> y_csr(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> y_sell(static_cast<std::size_t>(a.rows()));
  spmv(a, x, y_csr);
  sell.spmv(x, y_sell);
  for (std::size_t i = 0; i < y_csr.size(); ++i) {
    ASSERT_EQ(y_sell[i], y_csr[i]) << "row " << i;
  }
}

TEST(SellTest, HandlesRowLongerThanSigmaWindow) {
  // One dense row among short rows: its length exceeds every other row in
  // its sigma window, maximizing padding skew within the chunk.
  CooBuilder builder(24, 24);
  for (index_t j = 0; j < 24; ++j) builder.add(5, j, 1.0 + j);
  for (index_t i = 0; i < 24; ++i) builder.add(i, i, 3.0);
  const auto a = builder.to_csr();
  expect_same_spmv(a, 8, 8, 6);   // dense row cannot escape its window
  expect_same_spmv(a, 8, 24, 7);  // global window sorts it to the front
}

TEST(SellTest, PaddingRatioIsExactOnHandBuiltMatrix) {
  // 5 rows, chunk 4, sigma 4: row lengths {3,1,1,1,2}. First chunk sorts to
  // {3,1,1,1} -> width 3 -> 12 slots; second chunk holds {2} -> width 2 ->
  // 8 slots (padded to 4 lanes). nnz = 8, padded = 20.
  CooBuilder builder(5, 5);
  builder.add(0, 0, 1.0);
  builder.add(0, 2, 1.0);
  builder.add(0, 4, 1.0);
  for (index_t i = 1; i < 4; ++i) builder.add(i, i, 1.0);
  builder.add(4, 3, 1.0);
  builder.add(4, 4, 1.0);
  const auto a = builder.to_csr();
  const SellMatrix sell(a, 4, 4);
  EXPECT_EQ(sell.source_nnz(), 8);
  EXPECT_EQ(sell.padded_size(), 20);
  EXPECT_DOUBLE_EQ(sell.padding_ratio(), 20.0 / 8.0);
  EXPECT_EQ(sell.num_chunks(), 2);
  EXPECT_EQ(sell.stored_rows(), 5);
}

TEST(SellTest, PaddedEntriesEstimatorMatchesConstruction) {
  // sell_padded_entries is the autotuner's costing primitive: it must
  // predict the padded size of an actual SellMatrix build exactly, for any
  // geometry and row subset, without building anything.
  const auto a = random_laplacian(200, 6, 0.1, 13);
  std::vector<index_t> all(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<index_t>(i);
  }
  std::vector<index_t> evens;
  for (index_t i = 0; i < a.rows(); i += 2) evens.push_back(i);
  for (const index_t chunk : {1, 4, 8, 16, 32}) {
    for (const index_t sigma : {chunk, 4 * chunk, 64 * chunk}) {
      EXPECT_EQ(sell_padded_entries(a, all, chunk, sigma),
                SellMatrix(a, all, chunk, sigma).padded_size())
          << "C=" << chunk << " sigma=" << sigma;
      EXPECT_EQ(sell_padded_entries(a, evens, chunk, sigma),
                SellMatrix(a, evens, chunk, sigma).padded_size())
          << "subset C=" << chunk << " sigma=" << sigma;
    }
  }
}

TEST(SellTest, PaddedEntriesEstimatorValidatesInput) {
  const auto a = poisson2d(4, 4);
  std::vector<index_t> all(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<index_t>(i);
  }
  EXPECT_THROW((void)sell_padded_entries(a, all, 0, 8), Error);
  EXPECT_THROW((void)sell_padded_entries(a, all, 8, 12), Error)
      << "sigma must be a multiple of the chunk";
  const std::vector<index_t> bad = {0, static_cast<index_t>(a.rows())};
  EXPECT_THROW((void)sell_padded_entries(a, bad, 4, 4), Error);
}

TEST(SellTest, SubsetSpmvWritesOnlySubsetRows) {
  const auto a = poisson2d(8, 8);
  const std::vector<index_t> rows{3, 7, 20, 21, 22, 63};
  const SellMatrix sell(a, 4, 8, /*single_precision=*/false);
  const SellMatrix subset(a, rows, 4, 8);
  const auto x = random_vec(a.cols(), 8);
  std::vector<value_t> y_full(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> y_sub(static_cast<std::size_t>(a.rows()), -99.0);
  spmv(a, x, y_full);
  subset.spmv(x, y_sub);
  std::size_t next = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    if (next < rows.size() && rows[next] == i) {
      EXPECT_EQ(y_sub[static_cast<std::size_t>(i)],
                y_full[static_cast<std::size_t>(i)]);
      ++next;
    } else {
      EXPECT_EQ(y_sub[static_cast<std::size_t>(i)], -99.0) << "row " << i
          << " must be untouched";
    }
  }
  EXPECT_EQ(subset.stored_rows(), static_cast<index_t>(rows.size()));
  EXPECT_EQ(sell.stored_rows(), a.rows());
}

TEST(SellTest, SubsetRejectsUnsortedOrOutOfRangeRows) {
  const auto a = poisson2d(4, 4);
  const std::vector<index_t> descending{3, 1};
  const std::vector<index_t> duplicate{2, 2};
  const std::vector<index_t> out_of_range{0, 16};
  EXPECT_THROW((SellMatrix{a, descending, 4, 4}), Error);
  EXPECT_THROW((SellMatrix{a, duplicate, 4, 4}), Error);
  EXPECT_THROW((SellMatrix{a, out_of_range, 4, 4}), Error);
}

TEST(SellTest, TransposeMatchesCsrTransposeNumerically) {
  // Not bitwise (the scatter order follows the chunk layout), but the sums
  // agree to rounding.
  const auto a = random_laplacian(200, 5, 0.1, 31);
  const SellMatrix sell(a, 8, 64);
  const auto x = random_vec(a.rows(), 32);
  std::vector<value_t> y_csr(static_cast<std::size_t>(a.cols()));
  std::vector<value_t> y_sell(static_cast<std::size_t>(a.cols()), 0.0);
  spmv_transpose(a, x, y_csr);
  sell.spmv_transpose(x, y_sell);
  for (std::size_t i = 0; i < y_csr.size(); ++i) {
    ASSERT_NEAR(y_sell[i], y_csr[i], 1e-10) << "col " << i;
  }
}

TEST(SellTest, TransposeOverSubsetSumsOnlySubsetRows) {
  // A^T x restricted to a row subset equals the full transpose applied to
  // x masked to the subset.
  const auto a = poisson2d(6, 6);
  const std::vector<index_t> rows{0, 5, 17, 18, 35};
  const SellMatrix subset(a, 4, 8, false);
  const SellMatrix sub(a, rows, 4, 8);
  const auto x = random_vec(a.rows(), 33);
  auto x_masked = std::vector<value_t>(x.size(), 0.0);
  for (index_t r : rows) {
    x_masked[static_cast<std::size_t>(r)] = x[static_cast<std::size_t>(r)];
  }
  std::vector<value_t> y_ref(static_cast<std::size_t>(a.cols()));
  std::vector<value_t> y_sub(static_cast<std::size_t>(a.cols()), 0.0);
  spmv_transpose(a, x_masked, y_ref);
  sub.spmv_transpose(x, y_sub);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_NEAR(y_sub[i], y_ref[i], 1e-12) << "col " << i;
  }
}

TEST(SellTest, TransposeOnEmptyRowsMatrixIsZero) {
  const auto p = SparsityPattern::from_rows(4, 4, {{}, {}, {}, {}});
  const CsrMatrix a{p};
  const SellMatrix sell(a, 4, 4);
  const std::vector<value_t> x(4, 1.0);
  std::vector<value_t> y(4, 0.0);
  sell.spmv_transpose(x, y);
  for (const auto v : y) EXPECT_EQ(v, 0.0);
}

TEST(SellTest, SinglePrecisionStorageStaysClose) {
  const auto a = random_spd(120, 4, 41);
  const SellMatrix sell(a, 8, 64, /*single_precision=*/true);
  ASSERT_TRUE(sell.has_single_precision());
  const auto x = random_vec(a.cols(), 42);
  std::vector<value_t> y_d(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> y_f(static_cast<std::size_t>(a.rows()));
  sell.spmv(x, y_d);
  sell.spmv_single(x, y_f);
  for (std::size_t i = 0; i < y_d.size(); ++i) {
    // float32 storage, double accumulation: ~1e-7 relative drift.
    ASSERT_NEAR(y_f[i], y_d[i], 1e-5 * (1.0 + std::abs(y_d[i]))) << "row " << i;
  }
}

TEST(SellTest, SpmvSingleWithoutStorageThrows) {
  const auto a = poisson2d(4, 4);
  const SellMatrix sell(a, 4, 4);
  EXPECT_FALSE(sell.has_single_precision());
  const std::vector<value_t> x(static_cast<std::size_t>(a.cols()), 1.0);
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()));
  EXPECT_THROW(sell.spmv_single(x, y), Error);
}

TEST(SellTest, RejectsBadParameters) {
  const auto a = poisson2d(4, 4);
  EXPECT_THROW((SellMatrix{a, 0, 8}), Error);
  EXPECT_THROW((SellMatrix{a, 8, 4}), Error);   // sigma < chunk
  EXPECT_THROW((SellMatrix{a, 8, 12}), Error);  // not a multiple
}

class SellGeometryProperty
    : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(SellGeometryProperty, SpmvMatchesCsrForAllGeometries) {
  const auto [chunk, sigma_mult] = GetParam();
  const auto a = random_spd(150, 4, 11);
  expect_same_spmv(a, chunk, chunk * sigma_mult, 17);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SellGeometryProperty,
    ::testing::Combine(::testing::Values<index_t>(1, 2, 4, 8, 16),
                       ::testing::Values<index_t>(1, 4, 16)));

}  // namespace
}  // namespace fsaic
