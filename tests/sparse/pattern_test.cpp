#include "sparse/pattern.hpp"

#include <gtest/gtest.h>

namespace fsaic {
namespace {

SparsityPattern tridiag_pattern(index_t n) {
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    auto& r = rows[static_cast<std::size_t>(i)];
    if (i > 0) r.push_back(i - 1);
    r.push_back(i);
    if (i < n - 1) r.push_back(i + 1);
  }
  return SparsityPattern::from_rows(n, n, std::move(rows));
}

TEST(PatternTest, EmptyPatternHasNoEntries) {
  const SparsityPattern p(4, 5);
  EXPECT_EQ(p.rows(), 4);
  EXPECT_EQ(p.cols(), 5);
  EXPECT_EQ(p.nnz(), 0);
  EXPECT_FALSE(p.contains(0, 0));
}

TEST(PatternTest, FromRowsSortsAndDeduplicates) {
  const auto p = SparsityPattern::from_rows(2, 4, {{3, 1, 3, 0}, {2, 2}});
  EXPECT_EQ(p.nnz(), 4);
  const auto r0 = p.row(0);
  EXPECT_EQ(std::vector<index_t>(r0.begin(), r0.end()),
            (std::vector<index_t>{0, 1, 3}));
  EXPECT_TRUE(p.contains(1, 2));
  EXPECT_FALSE(p.contains(1, 3));
}

TEST(PatternTest, ConstructorRejectsUnsortedColumns) {
  EXPECT_THROW(SparsityPattern(2, 3, {0, 2, 3}, {2, 1, 0}), Error);
}

TEST(PatternTest, ConstructorRejectsOutOfRangeColumn) {
  EXPECT_THROW(SparsityPattern(1, 2, {0, 1}, {5}), Error);
}

TEST(PatternTest, ConstructorRejectsBadRowPtr) {
  EXPECT_THROW(SparsityPattern(2, 2, {0, 2}, {0, 1}), Error);     // short
  EXPECT_THROW(SparsityPattern(2, 2, {1, 1, 2}, {0, 1}), Error);  // start != 0
}

TEST(PatternTest, LowerTriangleKeepsDiagonalAndBelow) {
  const auto p = tridiag_pattern(4).lower_triangle();
  EXPECT_TRUE(p.is_lower_triangular());
  EXPECT_EQ(p.nnz(), 7);  // 4 diagonal + 3 subdiagonal
  EXPECT_TRUE(p.contains(2, 1));
  EXPECT_FALSE(p.contains(1, 2));
}

TEST(PatternTest, TransposeOfTridiagonalIsItself) {
  const auto p = tridiag_pattern(5);
  EXPECT_EQ(p.transposed(), p);
  EXPECT_TRUE(p.is_symmetric());
}

TEST(PatternTest, TransposeReversesLowerTriangle) {
  const auto lower = tridiag_pattern(5).lower_triangle();
  const auto upper = lower.transposed();
  EXPECT_TRUE(upper.contains(1, 2));
  EXPECT_FALSE(upper.contains(2, 1));
  EXPECT_EQ(upper.transposed(), lower);
}

TEST(PatternTest, MergeIsUnion) {
  const auto a = SparsityPattern::from_rows(2, 3, {{0}, {1}});
  const auto b = SparsityPattern::from_rows(2, 3, {{2}, {1, 0}});
  const auto u = a.merged_with(b);
  EXPECT_EQ(u.nnz(), 4);
  EXPECT_TRUE(u.contains(0, 0));
  EXPECT_TRUE(u.contains(0, 2));
  EXPECT_TRUE(u.contains(1, 0));
  EXPECT_TRUE(u.contains(1, 1));
}

TEST(PatternTest, WithFullDiagonalInsertsMissing) {
  const auto p = SparsityPattern::from_rows(3, 3, {{1}, {}, {0, 2}});
  const auto d = p.with_full_diagonal();
  EXPECT_TRUE(d.has_full_diagonal());
  EXPECT_EQ(d.nnz(), 5);  // diag 0 and 1 inserted, (2,2) already present
}

TEST(PatternTest, SymbolicPowerOfTridiagonalGrowsBandwidth) {
  const auto p = tridiag_pattern(7);
  const auto p2 = p.symbolic_power(2);
  // Row 3 of P^2 reaches columns 1..5.
  for (index_t j = 1; j <= 5; ++j) {
    EXPECT_TRUE(p2.contains(3, j)) << "missing column " << j;
  }
  EXPECT_FALSE(p2.contains(3, 0));
  EXPECT_FALSE(p2.contains(3, 6));
  const auto p3 = p.symbolic_power(3);
  EXPECT_TRUE(p3.contains(3, 0));
  EXPECT_TRUE(p3.contains(3, 6));
}

TEST(PatternTest, SymbolicPowerOneIsIdentityOperation) {
  const auto p = tridiag_pattern(6);
  EXPECT_EQ(p.symbolic_power(1), p);
}

TEST(PatternTest, SymbolicMultiplyMatchesManualProduct) {
  // a: 2x3 with rows {0,2},{1}; b: 3x2 with rows {1},{0},{0,1}.
  const auto a = SparsityPattern::from_rows(2, 3, {{0, 2}, {1}});
  const auto b = SparsityPattern::from_rows(3, 2, {{1}, {0}, {0, 1}});
  const auto c = a.symbolic_multiply(b);
  EXPECT_TRUE(c.contains(0, 0));   // via k=2
  EXPECT_TRUE(c.contains(0, 1));   // via k=0 or k=2
  EXPECT_TRUE(c.contains(1, 0));   // via k=1
  EXPECT_FALSE(c.contains(1, 1));
}

TEST(PatternTest, HasFullDiagonalFalseForRectangular) {
  const SparsityPattern p(2, 3);
  EXPECT_FALSE(p.has_full_diagonal());
}

class PatternPowerProperty : public ::testing::TestWithParam<int> {};

TEST_P(PatternPowerProperty, PowerContainsLowerPower) {
  const int n = GetParam();
  const auto p = tridiag_pattern(9);
  const auto pn = p.symbolic_power(n);
  const auto pn1 = p.symbolic_power(n + 1);
  // Tridiagonal patterns contain the diagonal, so P^n ⊆ P^(n+1).
  for (index_t i = 0; i < p.rows(); ++i) {
    for (index_t j : pn.row(i)) {
      EXPECT_TRUE(pn1.contains(i, j)) << "(" << i << "," << j << ") lost at n=" << n;
    }
  }
  EXPECT_TRUE(pn.is_symmetric());
}

INSTANTIATE_TEST_SUITE_P(Powers, PatternPowerProperty, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace fsaic
