#include "sparse/ops.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "matgen/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {
namespace {

/// Dense reference SpMV.
std::vector<value_t> dense_spmv(const CsrMatrix& a, std::span<const value_t> x) {
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      y[static_cast<std::size_t>(i)] += a.at(i, j) * x[static_cast<std::size_t>(j)];
    }
  }
  return y;
}

TEST(OpsTest, SpmvMatchesDenseReference) {
  const auto a = poisson2d(7, 5);
  Rng rng(42);
  std::vector<value_t> x(static_cast<std::size_t>(a.cols()));
  for (auto& v : x) v = rng.next_uniform(-1.0, 1.0);
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()));
  spmv(a, x, y);
  const auto ref = dense_spmv(a, x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], ref[i], 1e-12);
  }
}

TEST(OpsTest, SpmvTransposeMatchesExplicitTranspose) {
  const auto a = random_spd(40, 4, 7);
  Rng rng(9);
  std::vector<value_t> x(static_cast<std::size_t>(a.rows()));
  for (auto& v : x) v = rng.next_uniform(-1.0, 1.0);
  std::vector<value_t> y1(static_cast<std::size_t>(a.cols()));
  spmv_transpose(a, x, y1);
  std::vector<value_t> y2(static_cast<std::size_t>(a.cols()));
  spmv(transpose(a), x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-12);
  }
}

TEST(OpsTest, TransposeTwiceIsIdentity) {
  const auto a = random_spd(25, 3, 3);
  const auto att = transpose(transpose(a));
  ASSERT_EQ(att.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(att.at(i, j), a.at(i, j));
    }
  }
}

TEST(OpsTest, ThresholdKeepsDiagonalAndLargeEntries) {
  CooBuilder b(3, 3);
  b.add(0, 0, 4.0);
  b.add(1, 1, 1.0);
  b.add(2, 2, 9.0);
  b.add_symmetric(0, 1, 0.5);   // scale sqrt(4*1)=2, ratio 0.25
  b.add_symmetric(1, 2, 0.06);  // scale sqrt(1*9)=3, ratio 0.02
  const auto a = b.to_csr();
  const auto t = threshold(a, 0.1);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 0.5);   // 0.25 >= 0.1, kept
  EXPECT_DOUBLE_EQ(t.at(1, 2), 0.0);   // 0.02 < 0.1, dropped
  EXPECT_DOUBLE_EQ(t.at(2, 2), 9.0);   // diagonal always kept
}

TEST(OpsTest, ThresholdZeroDropsOnlyExplicitZeros) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 0.0);
  b.add(1, 1, 1.0);
  const auto t = threshold(b.to_csr(), 0.0);
  EXPECT_EQ(t.nnz(), 2);
}

TEST(OpsTest, RestrictToPatternDropsAndZeroFills) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 1, 3.0);
  const auto a = b.to_csr();
  const auto p = SparsityPattern::from_rows(2, 2, {{0}, {0, 1}});
  const auto r = restrict_to_pattern(a, p);
  EXPECT_EQ(r.nnz(), 3);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 0.0);  // dropped by pattern
  EXPECT_DOUBLE_EQ(r.at(1, 0), 0.0);  // explicit zero fill
  EXPECT_DOUBLE_EQ(r.at(1, 1), 3.0);
}

TEST(OpsTest, PermuteSymmetricPreservesSpectrumEntries) {
  const auto a = poisson2d(4, 4);
  std::vector<index_t> perm(static_cast<std::size_t>(a.rows()));
  // Reverse permutation.
  for (index_t i = 0; i < a.rows(); ++i) {
    perm[static_cast<std::size_t>(i)] = a.rows() - 1 - i;
  }
  const auto b = permute_symmetric(a, perm);
  EXPECT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(b.at(perm[static_cast<std::size_t>(i)],
                            perm[static_cast<std::size_t>(j)]),
                       a.at(i, j));
    }
  }
}

TEST(OpsTest, LowerTriangleKeepsValues) {
  const auto a = poisson2d(3, 3);
  const auto l = lower_triangle(a);
  EXPECT_TRUE(l.pattern().is_lower_triangular());
  for (index_t i = 0; i < l.rows(); ++i) {
    for (index_t j : l.row_cols(i)) {
      EXPECT_DOUBLE_EQ(l.at(i, j), a.at(i, j));
    }
  }
}

TEST(OpsTest, MultiplyMatchesDense) {
  const auto a = random_spd(12, 3, 1);
  const auto b = random_spd(12, 3, 2);
  const auto c = multiply(a, b);
  for (index_t i = 0; i < 12; ++i) {
    for (index_t j = 0; j < 12; ++j) {
      value_t ref = 0.0;
      for (index_t k = 0; k < 12; ++k) {
        ref += a.at(i, k) * b.at(k, j);
      }
      EXPECT_NEAR(c.at(i, j), ref, 1e-12) << "(" << i << "," << j << ")";
    }
  }
}

TEST(OpsTest, IdentityResidualOfIdentityIsZero) {
  CooBuilder b(3, 3);
  for (index_t i = 0; i < 3; ++i) b.add(i, i, 1.0);
  EXPECT_NEAR(identity_residual_fro(b.to_csr()), 0.0, 1e-15);
}

TEST(OpsTest, IdentityResidualCountsMissingDiagonal) {
  // Zero 2x2 matrix: ||I - 0||_F = sqrt(2).
  const CsrMatrix z{SparsityPattern(2, 2)};
  EXPECT_NEAR(identity_residual_fro(z), std::sqrt(2.0), 1e-15);
}

}  // namespace
}  // namespace fsaic
