#include "sparse/mm_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "matgen/generators.hpp"

namespace fsaic {
namespace {

TEST(MmIoTest, RoundTripGeneral) {
  const auto a = random_spd(20, 3, 11);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const auto b = read_matrix_market(ss);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(b.at(i, j), a.at(i, j));
    }
  }
}

TEST(MmIoTest, SymmetricFileMirrorsUpperTriangle) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% comment line\n"
     << "3 3 4\n"
     << "1 1 2.0\n"
     << "2 1 -1.0\n"
     << "2 2 2.0\n"
     << "3 3 2.0\n";
  const auto a = read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 5);  // (1,2) mirrored to (2,1)
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(MmIoTest, PatternFieldGivesUnitValues) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 2\n"
     << "1 1\n"
     << "2 2\n";
  const auto a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(MmIoTest, RejectsBadBanner) {
  std::stringstream ss;
  ss << "%%NotMatrixMarket matrix coordinate real general\n2 2 0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MmIoTest, RejectsTruncatedEntries) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 2\n"
     << "1 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MmIoTest, RejectsOutOfRangeEntry) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 1\n"
     << "3 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MmIoTest, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/file.mtx"), Error);
}

TEST(MmIoVectorTest, ArrayVectorRoundTripsBitExactly) {
  std::vector<value_t> v = {1.0, -2.5, 3.0e-17, 0.0, 123456.789};
  std::stringstream ss;
  write_matrix_market_vector(ss, v);
  const auto back = read_matrix_market_vector(ss);
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(back[i], v[i]) << "entry " << i;
  }
}

TEST(MmIoVectorTest, CoordinateVectorFillsMissingEntriesWithZero) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "4 1 2\n"
     << "1 1 5.0\n"
     << "3 1 -2.0\n";
  const auto v = read_matrix_market_vector(ss);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 5.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  EXPECT_DOUBLE_EQ(v[2], -2.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(MmIoVectorTest, RejectsMultiColumnObject) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix array real general\n"
     << "2 2\n1.0\n2.0\n3.0\n4.0\n";
  EXPECT_THROW(read_matrix_market_vector(ss), Error);
}

TEST(MmIoVectorTest, RejectsBadVectorBanner) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix array complex general\n2 1\n1.0\n2.0\n";
  EXPECT_THROW(read_matrix_market_vector(ss), Error);
}

TEST(MmIoVectorTest, MissingVectorFileThrows) {
  EXPECT_THROW(read_matrix_market_vector_file("/nonexistent/b.mtx"), Error);
}

}  // namespace
}  // namespace fsaic
