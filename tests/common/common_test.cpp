#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"

namespace fsaic {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const value_t u = rng.next_uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const value_t v = rng.next_uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.next_uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextIndexCoversRange) {
  Rng rng(3);
  std::set<index_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const index_t k = rng.next_index(7);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 7);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(ErrorTest, RequireThrowsWithContext) {
  try {
    FSAIC_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, CheckThrowsInvariantKind) {
  try {
    FSAIC_CHECK(false, "broken");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(FormatTest, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(sci2(1.4349), "1.43e+00");
  EXPECT_EQ(pct2(17.984), "17.98");
  EXPECT_EQ(strformat("%s", ""), "");
}

}  // namespace
}  // namespace fsaic
