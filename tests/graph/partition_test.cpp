#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/graph.hpp"
#include "matgen/generators.hpp"

namespace fsaic {
namespace {

Graph grid_graph(index_t nx, index_t ny) {
  return Graph::from_pattern(poisson2d(nx, ny).pattern());
}

TEST(GraphTest, FromPatternSymmetrizesAndDropsDiagonal) {
  const auto p = SparsityPattern::from_rows(3, 3, {{0, 1}, {2}, {}});
  const Graph g = Graph::from_pattern(p);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);  // {0,1} and {1,2}; diagonal (0,0) dropped
  EXPECT_EQ(g.degree(1), 2);
}

TEST(GraphTest, BfsLevelsOnPath) {
  // Path 0-1-2-3 via tridiagonal pattern.
  std::vector<std::vector<index_t>> rows{{1}, {0, 2}, {1, 3}, {2}};
  const Graph g = Graph::from_pattern(SparsityPattern::from_rows(4, 4, rows));
  const auto levels = g.bfs_levels(0);
  EXPECT_EQ(levels, (std::vector<index_t>{0, 1, 2, 3}));
}

TEST(GraphTest, PseudoPeripheralFindsPathEnd) {
  std::vector<std::vector<index_t>> rows{{1}, {0, 2}, {1, 3}, {2, 4}, {3}};
  const Graph g = Graph::from_pattern(SparsityPattern::from_rows(5, 5, rows));
  const index_t v = g.pseudo_peripheral(2);
  EXPECT_TRUE(v == 0 || v == 4);
}

TEST(GraphTest, ComponentCount) {
  // Two disjoint edges: {0,1}, {2,3}.
  std::vector<std::vector<index_t>> rows{{1}, {0}, {3}, {2}};
  const Graph g = Graph::from_pattern(SparsityPattern::from_rows(4, 4, rows));
  EXPECT_EQ(g.component_count(), 2);
  EXPECT_EQ(grid_graph(5, 5).component_count(), 1);
}

TEST(PartitionTest, SinglePartIsAllZero) {
  const Graph g = grid_graph(4, 4);
  const auto part = partition_graph(g, 1);
  for (index_t p : part) {
    EXPECT_EQ(p, 0);
  }
}

TEST(PartitionTest, BisectionOfGridIsBalancedWithSmallCut) {
  const Graph g = grid_graph(16, 16);
  const auto part = partition_graph(g, 2);
  const auto m = evaluate_partition(g, part, 2);
  EXPECT_LE(m.imbalance, 1.05);
  // A straight cut through a 16x16 grid costs 16 edges; allow 3x slack for
  // the heuristic.
  EXPECT_LE(m.edge_cut, 48);
}

TEST(PartitionTest, PermutationMakesPartsContiguous) {
  const Graph g = grid_graph(8, 8);
  const index_t nparts = 4;
  const auto part = partition_graph(g, nparts);
  const auto perm = partition_permutation(part, nparts);
  const auto sizes = partition_sizes(part, nparts);
  std::vector<index_t> start(static_cast<std::size_t>(nparts) + 1, 0);
  for (index_t p = 0; p < nparts; ++p) {
    start[static_cast<std::size_t>(p) + 1] =
        start[static_cast<std::size_t>(p)] + sizes[static_cast<std::size_t>(p)];
  }
  for (std::size_t v = 0; v < part.size(); ++v) {
    const index_t p = part[v];
    EXPECT_GE(perm[v], start[static_cast<std::size_t>(p)]);
    EXPECT_LT(perm[v], start[static_cast<std::size_t>(p) + 1]);
  }
  // perm must be a bijection.
  std::vector<index_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < static_cast<index_t>(sorted.size()); ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(PartitionTest, HandlesDisconnectedGraphs) {
  // Two disjoint 4x4 grids glued as one pattern block-diagonally.
  const auto a = poisson2d(4, 4);
  std::vector<std::vector<index_t>> rows(32);
  for (index_t i = 0; i < 16; ++i) {
    const auto r = a.pattern().row(i);
    rows[static_cast<std::size_t>(i)].assign(r.begin(), r.end());
    for (index_t j : r) {
      rows[static_cast<std::size_t>(i) + 16].push_back(j + 16);
    }
  }
  const Graph g =
      Graph::from_pattern(SparsityPattern::from_rows(32, 32, std::move(rows)));
  ASSERT_EQ(g.component_count(), 2);
  const auto part = partition_graph(g, 4);
  const auto m = evaluate_partition(g, part, 4);
  EXPECT_LE(m.imbalance, 1.3);
}

TEST(PartitionTest, RejectsMorePartsThanVertices) {
  const Graph g = grid_graph(2, 2);
  EXPECT_THROW(partition_graph(g, 10), Error);
}

class PartitionProperty : public ::testing::TestWithParam<index_t> {};

TEST_P(PartitionProperty, PartsCoverAllVerticesAndBalance) {
  const index_t nparts = GetParam();
  const Graph g = grid_graph(20, 20);
  const auto part = partition_graph(g, nparts);
  const auto sizes = partition_sizes(part, nparts);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), index_t{0}),
            g.num_vertices());
  for (index_t s : sizes) {
    EXPECT_GT(s, 0) << "empty part with nparts=" << nparts;
  }
  const auto m = evaluate_partition(g, part, nparts);
  EXPECT_LE(m.imbalance, 1.25) << "nparts=" << nparts;
  // Any partition of a connected grid must cut something for nparts > 1.
  EXPECT_GT(m.edge_cut, 0);
  // ... but never more than a fixed fraction of all edges for a mesh.
  EXPECT_LT(m.edge_cut, g.num_edges() / 2);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartitionProperty,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 13, 16));

}  // namespace
}  // namespace fsaic
