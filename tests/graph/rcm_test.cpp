#include "graph/rcm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"

namespace fsaic {
namespace {

SparsityPattern permuted_pattern(const CsrMatrix& a,
                                 std::span<const index_t> perm) {
  return permute_symmetric(a, perm).pattern();
}

std::vector<index_t> random_permutation(index_t n, std::uint64_t seed) {
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  Rng rng(seed);
  for (index_t i = n - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(rng.next_index(i + 1))]);
  }
  return perm;
}

TEST(RcmTest, PermutationIsABijection) {
  const auto a = poisson2d(12, 9);
  const Graph g = Graph::from_pattern(a.pattern());
  const auto perm = rcm_permutation(g);
  std::vector<index_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < a.rows(); ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(RcmTest, ReducesBandwidthOfShuffledGrid) {
  const auto a = poisson2d(16, 16);
  const auto shuffled = permute_symmetric(a, random_permutation(a.rows(), 3));
  const index_t bw_shuffled = pattern_bandwidth(shuffled.pattern());

  const Graph g = Graph::from_pattern(shuffled.pattern());
  const auto perm = rcm_permutation(g);
  const index_t bw_rcm = pattern_bandwidth(permuted_pattern(shuffled, perm));
  EXPECT_LT(bw_rcm, bw_shuffled / 4) << "RCM should strongly compress bandwidth";
  // A 16x16 grid has optimal bandwidth ~16; RCM should be within ~2x.
  EXPECT_LE(bw_rcm, 40);
}

TEST(RcmTest, ReducesProfileToo) {
  const auto a = poisson2d(14, 14);
  const auto shuffled = permute_symmetric(a, random_permutation(a.rows(), 5));
  const Graph g = Graph::from_pattern(shuffled.pattern());
  const auto perm = rcm_permutation(g);
  EXPECT_LT(pattern_profile(permuted_pattern(shuffled, perm)),
            pattern_profile(shuffled.pattern()));
}

TEST(RcmTest, HandlesDisconnectedComponents) {
  // Two disjoint paths.
  std::vector<std::vector<index_t>> rows{{1}, {0, 2}, {1}, {4}, {3, 5}, {4}};
  const Graph g = Graph::from_pattern(SparsityPattern::from_rows(6, 6, rows));
  const auto perm = rcm_permutation(g);
  std::vector<index_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 6; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(RcmTest, PathGraphGetsOptimalBandwidth) {
  // A path numbered randomly must come back to bandwidth 1.
  const index_t n = 30;
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) rows[static_cast<std::size_t>(i)].push_back(i - 1);
    rows[static_cast<std::size_t>(i)].push_back(i);
    if (i < n - 1) rows[static_cast<std::size_t>(i)].push_back(i + 1);
  }
  CsrMatrix path{SparsityPattern::from_rows(n, n, std::move(rows))};
  const auto shuffled = permute_symmetric(path, random_permutation(n, 7));
  const Graph g = Graph::from_pattern(shuffled.pattern());
  const auto perm = rcm_permutation(g);
  EXPECT_EQ(pattern_bandwidth(permuted_pattern(shuffled, perm)), 1);
}

TEST(BandwidthTest, KnownValues) {
  const auto p = SparsityPattern::from_rows(3, 3, {{0, 2}, {1}, {0, 2}});
  EXPECT_EQ(pattern_bandwidth(p), 2);
  EXPECT_EQ(pattern_profile(p), 2);  // row 2 reaches back to column 0
  const SparsityPattern empty(4, 4);
  EXPECT_EQ(pattern_bandwidth(empty), 0);
  EXPECT_EQ(pattern_profile(empty), 0);
}

}  // namespace
}  // namespace fsaic
