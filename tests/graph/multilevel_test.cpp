#include "graph/multilevel.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"

namespace fsaic {
namespace {

Graph grid_graph(index_t nx, index_t ny) {
  return Graph::from_pattern(poisson2d(nx, ny).pattern());
}

TEST(MultilevelTest, SinglePartTrivial) {
  const Graph g = grid_graph(6, 6);
  for (index_t p : partition_graph_multilevel(g, 1)) {
    EXPECT_EQ(p, 0);
  }
}

TEST(MultilevelTest, GridBisectionBalancedAndTight) {
  const Graph g = grid_graph(24, 24);
  const auto part = partition_graph_multilevel(g, 2);
  const auto m = evaluate_partition(g, part, 2);
  EXPECT_LE(m.imbalance, 1.06);
  // Optimal straight cut is 24 edges; multilevel should land close.
  EXPECT_LE(m.edge_cut, 40);
}

TEST(MultilevelTest, MatchesOrBeatsFlatPartitionerOnLargerGrid) {
  const Graph g = grid_graph(48, 48);
  const auto flat = partition_graph(g, 8);
  const auto ml = partition_graph_multilevel(g, 8);
  const auto m_flat = evaluate_partition(g, flat, 8);
  const auto m_ml = evaluate_partition(g, ml, 8);
  EXPECT_LE(m_ml.imbalance, 1.10);
  // Allow slack: both are heuristics, but multilevel should be in the same
  // league or better, never dramatically worse.
  EXPECT_LE(m_ml.edge_cut, static_cast<offset_t>(1.15 * m_flat.edge_cut) + 8);
}

TEST(MultilevelTest, IrregularGraphStaysBalanced) {
  const auto a = random_laplacian(2000, 4, 0.1, 5);
  const Graph g = Graph::from_pattern(a.pattern());
  const auto part = partition_graph_multilevel(g, 8);
  const auto m = evaluate_partition(g, part, 8);
  EXPECT_LE(m.imbalance, 1.10);
  EXPECT_GT(m.edge_cut, 0);
}

TEST(MultilevelTest, DeterministicForFixedSeed) {
  const Graph g = grid_graph(20, 20);
  MultilevelOptions opts;
  opts.seed = 77;
  EXPECT_EQ(partition_graph_multilevel(g, 4, opts),
            partition_graph_multilevel(g, 4, opts));
}

TEST(MultilevelTest, RejectsMorePartsThanVertices) {
  const Graph g = grid_graph(2, 2);
  EXPECT_THROW((void)partition_graph_multilevel(g, 8), Error);
}

class MultilevelProperty : public ::testing::TestWithParam<index_t> {};

TEST_P(MultilevelProperty, CoversAllVerticesWithNonEmptyBalancedParts) {
  const index_t nparts = GetParam();
  const Graph g = grid_graph(30, 26);
  const auto part = partition_graph_multilevel(g, nparts);
  const auto sizes = partition_sizes(part, nparts);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), index_t{0}),
            g.num_vertices());
  for (index_t s : sizes) {
    EXPECT_GT(s, 0) << "nparts=" << nparts;
  }
  const auto m = evaluate_partition(g, part, nparts);
  EXPECT_LE(m.imbalance, 1.20) << "nparts=" << nparts;
  EXPECT_LT(m.edge_cut, g.num_edges() / 2);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, MultilevelProperty,
                         ::testing::Values(2, 3, 5, 8, 13, 16));

}  // namespace
}  // namespace fsaic
