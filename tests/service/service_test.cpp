#include "service/solve_service.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "matgen/generators.hpp"
#include "obs/report.hpp"
#include "service/request_queue.hpp"
#include "sparse/mm_io.hpp"

namespace fsaic {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- queue --

TEST(RequestQueueTest, RejectsWhenFull) {
  RequestQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3)) << "bounded queue must reject at capacity";
  EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueueTest, PopDrainsInOrderThenBlocksUntilClose) {
  RequestQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  q.close();
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_FALSE(q.try_push(9)) << "closed queue rejects pushes";
}

TEST(RequestQueueTest, DrainIfTakesOnlyMatchesAndPreservesOrder) {
  RequestQueue<int> q(8);
  for (int i = 1; i <= 6; ++i) q.try_push(i);
  const auto evens = q.drain_if([](int i) { return i % 2 == 0; });
  EXPECT_EQ(evens, (std::vector<int>{2, 4, 6}));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 5);
}

// ------------------------------------------------------------- protocol --

TEST(ProtocolTest, RequestRoundTripsThroughJson) {
  SolveRequest req;
  req.id = "r42";
  req.matrix_path = "m.mtx";
  req.method = "fsaie";
  req.filter = 0.05;
  req.filter_strategy = "static";
  req.ranks = 4;
  req.solver = "pipelined-cg";
  req.tol = 1e-6;
  req.max_iterations = 500;
  req.rhs_path = "b.mtx";
  req.rhs_seed = 7;
  req.deadline_ms = 250.0;
  req.priority = 3;
  req.warm_start = true;
  req.want_history = true;

  const SolveRequest back = parse_request(to_json(req));
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.matrix_path, req.matrix_path);
  EXPECT_EQ(back.method, req.method);
  EXPECT_EQ(back.filter, req.filter);
  EXPECT_EQ(back.filter_strategy, req.filter_strategy);
  EXPECT_EQ(back.ranks, req.ranks);
  EXPECT_EQ(back.solver, req.solver);
  EXPECT_EQ(back.tol, req.tol);
  EXPECT_EQ(back.max_iterations, req.max_iterations);
  EXPECT_EQ(back.rhs_path, req.rhs_path);
  EXPECT_EQ(back.rhs_seed, req.rhs_seed);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.priority, req.priority);
  EXPECT_EQ(back.warm_start, req.warm_start);
  EXPECT_EQ(back.want_history, req.want_history);
}

TEST(ProtocolTest, RejectsInvalidRequests) {
  const auto parse = [](const std::string& json) {
    return parse_request(JsonValue::parse(json));
  };
  EXPECT_THROW(parse(R"({"matrix":"m.mtx"})"), Error) << "missing id";
  EXPECT_THROW(parse(R"({"id":"a"})"), Error) << "no matrix source";
  EXPECT_THROW(parse(R"({"id":"a","matrix":"m","generate":"g"})"), Error)
      << "both matrix sources";
  EXPECT_THROW(parse(R"({"id":"a","matrix":"m","method":"schwarz"})"), Error)
      << "unsupported method";
  EXPECT_THROW(parse(R"({"id":"a","matrix":"m","solver":"gmres"})"), Error)
      << "unsupported solver";
  EXPECT_THROW(parse(R"({"id":"a","matrix":"m","ranks":0})"), Error);
  EXPECT_THROW(parse(R"({"id":"a","matrix":"m","tol":-1.0})"), Error);
}

TEST(ProtocolTest, ValidatesWorkloadSpecsAtParseTime) {
  const auto parse = [](const std::string& json) {
    return parse_request(JsonValue::parse(json));
  };
  // parse_request is the one intake shared by --requests, stdin, and
  // watch-dir mode, so a bad generator spec is rejected identically
  // everywhere instead of failing inside a worker.
  EXPECT_THROW(parse(R"({"id":"a","generate":"stencil3d:nx=0"})"), Error)
      << "non-positive dimension";
  EXPECT_THROW(parse(R"({"id":"a","generate":"stencil3d:bogus=1"})"), Error)
      << "unknown key";
  EXPECT_THROW(parse(R"({"id":"a","generate":"hexmesh:n=100"})"), Error)
      << "unknown family";
  EXPECT_THROW(
      parse(
          R"({"id":"a","generate":"stencil2d:nx=10,ny=10,rows_per_rank=50"})"),
      Error)
      << "conflicting sizing (ny is the grown dimension)";
  const SolveRequest ok =
      parse(R"({"id":"a","generate":"stencil3d:nx=8,ny=8,nz=8","ranks":4})");
  EXPECT_EQ(ok.generate, "stencil3d:nx=8,ny=8,nz=8");
  EXPECT_TRUE(ok.matrix_path.empty());
}

TEST(ProtocolTest, BatchKeyIgnoresSolveOnlyFields) {
  SolveRequest a;
  a.id = "a";
  a.matrix_path = "m.mtx";
  SolveRequest b = a;
  b.id = "b";
  b.rhs_seed = 99;
  b.tol = 1e-4;
  b.want_history = true;
  EXPECT_EQ(a.batch_key(), b.batch_key());
  b.filter = 0.2;
  EXPECT_NE(a.batch_key(), b.batch_key());
}

// -------------------------------------------------------------- service --

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fsaic_service_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    matrix_path_ = (dir_ / "poisson.mtx").string();
    write_matrix_market_file(matrix_path_, poisson2d(12, 12));
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] SolveRequest request(const std::string& id) const {
    SolveRequest req;
    req.id = id;
    req.matrix_path = matrix_path_;
    req.ranks = 4;
    req.want_history = true;
    return req;
  }

  fs::path dir_;
  std::string matrix_path_;
};

/// Collects responses by id (handler calls are serialized by the service).
struct Collector {
  std::map<std::string, SolveResponse> by_id;
  SolveService::ResponseHandler handler() {
    return [this](const SolveResponse& r) { by_id[r.id] = r; };
  }
};

TEST_F(ServiceTest, SolvesARequestAndReportsMiss) {
  Collector col;
  {
    SolveService service({.workers = 1}, col.handler());
    EXPECT_TRUE(service.submit(request("r1")));
    service.drain();
    EXPECT_EQ(service.stats().completed, 1);
  }
  ASSERT_EQ(col.by_id.size(), 1u);
  const SolveResponse& r = col.by_id.at("r1");
  EXPECT_EQ(r.status, "ok");
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0);
  EXPECT_EQ(r.cache, "miss");
  EXPECT_EQ(r.batch_size, 1);
  EXPECT_FALSE(r.fingerprint.empty());
  EXPECT_EQ(r.residuals.size(), static_cast<std::size_t>(r.iterations) + 1)
      << "history = initial residual + one entry per iteration";
}

TEST_F(ServiceTest, SecondSolveHitsTheCacheWithIdenticalResults) {
  Collector col;
  {
    SolveService service({.workers = 1, .cache_capacity = 4}, col.handler());
    EXPECT_TRUE(service.submit(request("cold")));
    service.drain();
    EXPECT_TRUE(service.submit(request("warm")));
    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.misses, 1);
    EXPECT_EQ(stats.cache.hits, 1);
  }
  const SolveResponse& cold = col.by_id.at("cold");
  const SolveResponse& warm = col.by_id.at("warm");
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_EQ(warm.cache, "hit");
  EXPECT_EQ(cold.iterations, warm.iterations);
  ASSERT_EQ(cold.residuals.size(), warm.residuals.size());
  for (std::size_t k = 0; k < cold.residuals.size(); ++k) {
    EXPECT_EQ(cold.residuals[k], warm.residuals[k])
        << "cached-factor solve must be bit-identical at iteration " << k;
  }
}

TEST_F(ServiceTest, ZeroDeadlineIsRejectedAtAdmission) {
  Collector col;
  {
    SolveService service({.workers = 1}, col.handler());
    SolveRequest req = request("late");
    req.deadline_ms = 0.0;
    EXPECT_FALSE(service.submit(req));
    service.drain();
    EXPECT_EQ(service.stats().rejected_deadline, 1);
    EXPECT_EQ(service.stats().completed, 0);
  }
  const SolveResponse& r = col.by_id.at("late");
  EXPECT_EQ(r.status, "rejected");
  EXPECT_EQ(r.reason, "deadline");
}

TEST_F(ServiceTest, FullQueueIsRejectedWithReason) {
  Collector col;
  {
    SolveService service({.workers = 1, .queue_capacity = 2}, col.handler());
    // Occupy the single worker, then fill the two queue slots; the next
    // submission must bounce.
    EXPECT_TRUE(service.submit(request("busy")));
    while (service.stats().batches < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(service.submit(request("q1")));
    EXPECT_TRUE(service.submit(request("q2")));
    EXPECT_FALSE(service.submit(request("overflow")));
    service.drain();
    EXPECT_EQ(service.stats().rejected_queue_full, 1);
  }
  EXPECT_EQ(col.by_id.at("overflow").status, "rejected");
  EXPECT_EQ(col.by_id.at("overflow").reason, "queue_full");
  EXPECT_EQ(col.by_id.at("q1").status, "ok");
  EXPECT_EQ(col.by_id.at("q2").status, "ok");
}

TEST_F(ServiceTest, QueuedSameOperatorRequestsBatch) {
  Collector col;
  {
    SolveService service({.workers = 1, .cache_capacity = 4}, col.handler());
    // Park the worker on a first request, then queue three same-key
    // requests; the worker must coalesce them into one batch.
    EXPECT_TRUE(service.submit(request("head")));
    while (service.stats().batches < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    SolveRequest a = request("b1");
    SolveRequest b = request("b2");
    b.rhs_seed = 99;  // different RHS, same operator -> same batch
    SolveRequest c = request("b3");
    c.rhs_seed = 123;
    EXPECT_TRUE(service.submit(a));
    EXPECT_TRUE(service.submit(b));
    EXPECT_TRUE(service.submit(c));
    service.drain();
    EXPECT_EQ(service.stats().max_batch_size, 3);
  }
  EXPECT_EQ(col.by_id.at("b1").batch_size, 3);
  EXPECT_EQ(col.by_id.at("b2").batch_size, 3);
  EXPECT_EQ(col.by_id.at("b3").batch_size, 3);
  EXPECT_EQ(col.by_id.at("b1").cache, "hit") << "head built the factor";
  // Different seeds genuinely produce different solves.
  EXPECT_NE(col.by_id.at("b1").residuals.back(),
            col.by_id.at("b2").residuals.back());
}

TEST_F(ServiceTest, BatchedResultsMatchSoloResults) {
  // The same three requests, once forced through a batch (1 worker, queued
  // behind a head request) and once solved one-by-one with batching off,
  // must produce bit-identical residual histories.
  Collector batched;
  {
    SolveService service({.workers = 1}, batched.handler());
    service.submit(request("head"));
    while (service.stats().batches < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    SolveRequest b = request("b");
    b.rhs_seed = 99;
    service.submit(request("a"));
    service.submit(b);
    service.drain();
  }
  Collector solo;
  {
    SolveService service({.workers = 1, .batching = false}, solo.handler());
    SolveRequest b = request("b");
    b.rhs_seed = 99;
    service.submit(request("a"));
    service.submit(b);
    service.drain();
  }
  for (const std::string id : {"a", "b"}) {
    const auto& x = batched.by_id.at(id);
    const auto& y = solo.by_id.at(id);
    EXPECT_EQ(x.iterations, y.iterations) << id;
    ASSERT_EQ(x.residuals.size(), y.residuals.size()) << id;
    for (std::size_t k = 0; k < x.residuals.size(); ++k) {
      EXPECT_EQ(x.residuals[k], y.residuals[k]) << id << " iteration " << k;
    }
  }
}

TEST_F(ServiceTest, ErrorResponsesForBadInputs) {
  Collector col;
  {
    SolveService service({.workers = 1}, col.handler());
    SolveRequest missing = request("missing");
    missing.matrix_path = (dir_ / "nope.mtx").string();
    service.submit(missing);

    SolveRequest badrhs = request("badrhs");
    const std::string rhs_path = (dir_ / "short_rhs.mtx").string();
    const std::vector<value_t> too_short(7, 1.0);
    write_matrix_market_vector_file(rhs_path, too_short);
    badrhs.rhs_path = rhs_path;
    service.submit(badrhs);
    service.drain();
    EXPECT_EQ(service.stats().errors, 2);
  }
  EXPECT_EQ(col.by_id.at("missing").status, "error");
  EXPECT_EQ(col.by_id.at("badrhs").status, "error");
  EXPECT_NE(col.by_id.at("badrhs").reason.find("does not match matrix rows"),
            std::string::npos)
      << "got: " << col.by_id.at("badrhs").reason;
}

TEST_F(ServiceTest, FileRhsSolvesAndMatchesSeededRhs) {
  // Writing the synthesized RHS to a file and solving --rhs-style must give
  // the exact same history as the seeded path that generated it.
  Rng rng(2022);
  std::vector<value_t> b(static_cast<std::size_t>(12 * 12));
  for (auto& v : b) v = rng.next_uniform(-1.0, 1.0);
  const std::string rhs_path = (dir_ / "rhs.mtx").string();
  write_matrix_market_vector_file(rhs_path, b);

  Collector col;
  {
    SolveService service({.workers = 1}, col.handler());
    SolveRequest from_file = request("file");
    from_file.rhs_path = rhs_path;
    SolveRequest seeded = request("seed");  // rhs_seed defaults to 2022
    service.submit(from_file);
    service.submit(seeded);
    service.drain();
  }
  const auto& file = col.by_id.at("file");
  const auto& seed = col.by_id.at("seed");
  ASSERT_EQ(file.status, "ok");
  ASSERT_EQ(file.residuals.size(), seed.residuals.size());
  for (std::size_t k = 0; k < file.residuals.size(); ++k) {
    EXPECT_EQ(file.residuals[k], seed.residuals[k]);
  }
}

TEST_F(ServiceTest, MetricsAreWired) {
  MetricsRegistry metrics;
  Collector col;
  {
    SolveService service({.workers = 1, .metrics = &metrics}, col.handler());
    service.submit(request("m1"));
    service.drain();
    service.submit(request("m2"));
    service.drain();
  }
  EXPECT_EQ(metrics.counter("service.submitted"), 2);
  EXPECT_EQ(metrics.counter("service.completed"), 2);
  EXPECT_EQ(metrics.counter("service.cache_misses"), 1);
  EXPECT_EQ(metrics.counter("service.cache_hits"), 1);
  EXPECT_EQ(metrics.histogram("service.solve_us").count, 2);
  EXPECT_EQ(metrics.histogram("service.queue_us").count, 2);
  EXPECT_GT(metrics.histogram("service.setup_us").quantile(0.5), 0.0);
}

TEST_F(ServiceTest, TraceGetsPerRequestSlices) {
  TraceRecorder trace;
  Collector col;
  {
    SolveService service({.workers = 1, .trace = &trace}, col.handler());
    service.submit(request("t1"));
    service.drain();
  }
  bool saw_queue = false, saw_setup = false, saw_solve = false;
  for (const auto& e : trace.events()) {
    if (e.name == "queue t1") saw_queue = true;
    if (e.name == "setup t1") saw_setup = true;
    if (e.name == "solve t1") saw_solve = true;
  }
  EXPECT_TRUE(saw_queue && saw_setup && saw_solve);
}

TEST_F(ServiceTest, RidsAreMintedInSubmissionOrderAcrossOutcomes) {
  Collector col;
  {
    SolveService service({.workers = 1}, col.handler());
    SolveRequest late = request("late");
    late.deadline_ms = 0.0;  // rejected, but still consumes a rid
    service.submit(request("first"));
    service.submit(late);
    service.submit(request("third"));
    service.drain();
  }
  EXPECT_EQ(col.by_id.at("first").rid, 1);
  EXPECT_EQ(col.by_id.at("late").rid, 2);
  EXPECT_EQ(col.by_id.at("third").rid, 3);
  // The rid rides in the response JSON for log<->response correlation.
  const JsonValue v = to_json(col.by_id.at("third"));
  EXPECT_EQ(v.at("rid").as_int(), 3);
  // Unserviced responses (rid 0) omit the key.
  SolveResponse unserviced;
  unserviced.id = "parse-error";
  unserviced.status = "error";
  EXPECT_EQ(to_json(unserviced).find("rid"), nullptr);
}

TEST_F(ServiceTest, StructuredLogCoversTheRequestLifecycle) {
  std::ostringstream log_out;
  Logger log(log_out, LogLevel::Debug);
  Collector col;
  {
    SolveService service({.workers = 1, .log = &log}, col.handler());
    SolveRequest late = request("late");
    late.deadline_ms = 0.0;
    service.submit(request("ok1"));
    service.submit(late);
    service.drain();
  }
  std::istringstream lines(log_out.str());
  std::map<std::string, JsonValue> by_event;
  int n_lines = 0;
  for (const JsonValue& v : read_jsonl(lines)) {
    by_event[v.at("event").as_string()] = v;
    ++n_lines;
  }
  EXPECT_EQ(log.lines_written(), n_lines);
  // admit -> dequeue -> setup -> solve for the solved request...
  for (const std::string event :
       {"service.admit", "service.dequeue", "service.setup", "service.solve"}) {
    ASSERT_TRUE(by_event.count(event)) << event << " missing";
    EXPECT_EQ(by_event.at(event).at("rid").as_int(), 1) << event;
  }
  EXPECT_EQ(by_event.at("service.admit").at("id").as_string(), "ok1");
  EXPECT_EQ(by_event.at("service.setup").at("cache").as_string(), "miss");
  EXPECT_GT(by_event.at("service.solve").at("iterations").as_int(), 0);
  // ...and a reject event carrying the rejected request's rid.
  ASSERT_TRUE(by_event.count("service.reject"));
  EXPECT_EQ(by_event.at("service.reject").at("rid").as_int(), 2);
  EXPECT_EQ(by_event.at("service.reject").at("reason").as_string(),
            "deadline");
}

TEST_F(ServiceTest, TraceSlicesCarryRidArgs) {
  TraceRecorder trace;
  Collector col;
  {
    SolveService service({.workers = 1, .trace = &trace}, col.handler());
    service.submit(request("t1"));
    service.drain();
  }
  const std::int64_t rid = col.by_id.at("t1").rid;
  ASSERT_EQ(rid, 1);
  int tagged = 0;
  for (const auto& e : trace.events()) {
    if (e.name != "queue t1" && e.name != "setup t1" && e.name != "solve t1") {
      continue;
    }
    EXPECT_EQ(JsonValue::parse(e.args).at("rid").as_int(), rid) << e.name;
    ++tagged;
  }
  EXPECT_EQ(tagged, 3) << "queue/setup/solve slices all tagged with the rid";
  // The rendered trace JSON embeds the args objects verbatim.
  std::ostringstream json;
  trace.write_json(json);
  EXPECT_NE(json.str().find("\"args\":{\"rid\":1}"), std::string::npos);
}

// ------------------------------------------------- disk tier / restarts --

TEST_F(ServiceTest, RestartedServiceReloadsFactorsFromTheStore) {
  const std::string store = (dir_ / "factor_store").string();
  Collector first_run;
  {
    SolveService service({.workers = 1, .store_dir = store},
                         first_run.handler());
    service.submit(request("cold"));
    service.drain();
    EXPECT_EQ(service.stats().cache.spills, 1)
        << "the built factor is persisted write-through";
  }  // service torn down: RAM tier gone, store survives

  Collector second_run;
  {
    SolveService service({.workers = 1, .store_dir = store},
                         second_run.handler());
    service.submit(request("warm"));
    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.disk_hits, 1);
    EXPECT_EQ(stats.cache.misses, 0) << "restart must not rebuild";
  }
  const SolveResponse& cold = first_run.by_id.at("cold");
  const SolveResponse& warm = second_run.by_id.at("warm");
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_EQ(warm.cache, "disk");
  EXPECT_EQ(cold.iterations, warm.iterations);
  ASSERT_EQ(cold.residuals.size(), warm.residuals.size());
  for (std::size_t k = 0; k < cold.residuals.size(); ++k) {
    EXPECT_EQ(cold.residuals[k], warm.residuals[k])
        << "disk-reloaded factor must solve bit-identically at " << k;
  }
}

TEST_F(ServiceTest, AllThreeCacheTiersSolveBitIdentically) {
  const std::string store = (dir_ / "tier_store").string();
  Collector col;
  {
    SolveService service({.workers = 1, .store_dir = store}, col.handler());
    service.submit(request("cold"));  // miss: builds + persists
    service.drain();
    service.submit(request("ram"));  // RAM hit
    service.drain();
  }
  {
    SolveService service({.workers = 1, .store_dir = store}, col.handler());
    service.submit(request("disk"));  // fresh process: disk reload
    service.drain();
  }
  EXPECT_EQ(col.by_id.at("cold").cache, "miss");
  EXPECT_EQ(col.by_id.at("ram").cache, "hit");
  EXPECT_EQ(col.by_id.at("disk").cache, "disk");
  const auto& ref = col.by_id.at("cold").residuals;
  ASSERT_FALSE(ref.empty());
  for (const std::string id : {"ram", "disk"}) {
    const auto& got = col.by_id.at(id).residuals;
    ASSERT_EQ(got.size(), ref.size()) << id;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(got[k], ref[k]) << id << " iteration " << k;
    }
  }
}

TEST_F(ServiceTest, CorruptedStoreFileDegradesToFreshBuild) {
  const std::string store = (dir_ / "corrupt_store").string();
  Collector col;
  {
    SolveService service({.workers = 1, .store_dir = store}, col.handler());
    service.submit(request("cold"));
    service.drain();
  }
  // Corrupt every store file (the service computes the key internally, so
  // the test clobbers the whole directory).
  int clobbered = 0;
  for (const auto& entry : fs::directory_iterator(store)) {
    std::ofstream f(entry.path(), std::ios::binary | std::ios::trunc);
    f << "garbage";
    ++clobbered;
  }
  ASSERT_EQ(clobbered, 1);
  Collector after;
  {
    SolveService service({.workers = 1, .store_dir = store}, after.handler());
    service.submit(request("rebuild"));
    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.load_failures, 1);
    EXPECT_EQ(stats.cache.misses, 1) << "corrupt file -> fresh build";
    EXPECT_EQ(stats.completed, 1);
  }
  const auto& cold = col.by_id.at("cold");
  const auto& rebuilt = after.by_id.at("rebuild");
  EXPECT_EQ(rebuilt.cache, "miss");
  ASSERT_EQ(rebuilt.residuals.size(), cold.residuals.size());
  for (std::size_t k = 0; k < cold.residuals.size(); ++k) {
    EXPECT_EQ(rebuilt.residuals[k], cold.residuals[k]) << k;
  }
}

// ------------------------------------------------ SLO-aware scheduling --

TEST_F(ServiceTest, PredictiveSheddingRejectsDoomedDeadlines) {
  Collector col;
  {
    SolveService service({.workers = 1}, col.handler());
    // Establish per-operator service-time history.
    service.submit(request("seed"));
    service.drain();
    // A microsecond-scale deadline cannot fit the observed multi-ms solve:
    // the predictor must shed at admission, before any work queues.
    SolveRequest doomed = request("doomed");
    doomed.deadline_ms = 0.001;
    EXPECT_FALSE(service.submit(doomed));
    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.rejected_predicted, 1);
    EXPECT_EQ(stats.rejected_deadline, 0);
    EXPECT_EQ(stats.completed, 1);
  }
  const SolveResponse& r = col.by_id.at("doomed");
  EXPECT_EQ(r.status, "rejected");
  EXPECT_EQ(r.reason, "deadline_predicted");
}

TEST_F(ServiceTest, FirstRequestOfAnOperatorIsNeverPredictivelyShed) {
  // Without history the predictor has no estimate and must not guess —
  // admission stays deterministic for fresh operators (the bench's replay
  // reproducibility depends on this).
  Collector col;
  {
    SolveService service({.workers = 1}, col.handler());
    SolveRequest tight = request("tight");
    tight.deadline_ms = 0.001;
    EXPECT_TRUE(service.submit(tight)) << "no history -> no prediction";
    service.drain();
    EXPECT_EQ(service.stats().rejected_predicted, 0);
  }
  // The request was admitted; its microsecond deadline then lapsed while
  // queued, which is the pre-existing (post-admission) rejection path.
  EXPECT_EQ(col.by_id.at("tight").reason, "deadline");
}

// ----------------------------------------------------------- warm start --

TEST_F(ServiceTest, WarmStartReusesTheCachedSolution) {
  Collector col;
  {
    SolveService service({.workers = 1}, col.handler());
    service.submit(request("cold"));
    service.drain();
    SolveRequest again = request("again");
    again.warm_start = true;  // same operator, same RHS seed
    service.submit(again);
    service.drain();
    EXPECT_EQ(service.stats().warm_starts, 1);
  }
  const SolveResponse& cold = col.by_id.at("cold");
  const SolveResponse& again = col.by_id.at("again");
  EXPECT_FALSE(cold.warm_start);
  EXPECT_TRUE(again.warm_start);
  EXPECT_TRUE(again.converged);
  EXPECT_EQ(again.iterations, 0)
      << "starting from the converged solution of the identical request "
         "needs no iterations";
  // The warm solve honors the cold solve's residual target, not its own
  // (already tiny) initial residual.
  ASSERT_FALSE(cold.residuals.empty());
  EXPECT_LE(again.residuals.front(), 1e-8 * cold.residuals.front());
  const JsonValue v = to_json(again);
  EXPECT_TRUE(v.at("warm_start").as_bool());
}

TEST_F(ServiceTest, WarmStartIsOptInAndDefaultPathIsUnchanged) {
  Collector col;
  {
    SolveService service({.workers = 1}, col.handler());
    service.submit(request("cold"));
    service.drain();
    // Same request again WITHOUT warm_start: the populated solution cache
    // must not shorten the default path.
    service.submit(request("default"));
    service.drain();
    EXPECT_EQ(service.stats().warm_starts, 0);
  }
  const SolveResponse& cold = col.by_id.at("cold");
  const SolveResponse& dflt = col.by_id.at("default");
  EXPECT_FALSE(dflt.warm_start);
  EXPECT_EQ(dflt.iterations, cold.iterations);
  ASSERT_EQ(dflt.residuals.size(), cold.residuals.size());
  for (std::size_t k = 0; k < cold.residuals.size(); ++k) {
    EXPECT_EQ(dflt.residuals[k], cold.residuals[k]) << k;
  }
}

TEST_F(ServiceTest, WarmStartDifferentRhsFallsBackToColdSolve) {
  Collector col;
  {
    SolveService service({.workers = 1}, col.handler());
    service.submit(request("cold"));
    service.drain();
    SolveRequest other = request("other");
    other.warm_start = true;
    other.rhs_seed = 777;  // different RHS: cached solution must not apply
    service.submit(other);
    service.drain();
    EXPECT_EQ(service.stats().warm_starts, 0);
  }
  const SolveResponse& other = col.by_id.at("other");
  EXPECT_FALSE(other.warm_start) << "no matching solution -> cold solve";
  EXPECT_GT(other.iterations, 0);
}

TEST(ServeStatsTest, MergeAddsCountersAndMaxesBatchSize) {
  ServiceStats a;
  a.submitted = 3;
  a.admitted = 2;
  a.completed = 2;
  a.batches = 2;
  a.max_batch_size = 2;
  a.cache.hits = 1;
  a.cache.misses = 1;
  ServiceStats b;
  b.submitted = 4;
  b.admitted = 4;
  b.completed = 3;
  b.errors = 1;
  b.rejected_deadline = 1;
  b.rejected_predicted = 2;
  b.warm_starts = 1;
  b.batches = 1;
  b.max_batch_size = 3;
  b.cache.hits = 2;
  b.cache.insertions = 1;
  b.cache.disk_hits = 1;
  b.cache.spills = 2;
  b.cache.load_failures = 1;
  a.merge(b);
  EXPECT_EQ(a.submitted, 7);
  EXPECT_EQ(a.admitted, 6);
  EXPECT_EQ(a.completed, 5);
  EXPECT_EQ(a.errors, 1);
  EXPECT_EQ(a.rejected_deadline, 1);
  EXPECT_EQ(a.rejected_predicted, 2);
  EXPECT_EQ(a.warm_starts, 1);
  EXPECT_EQ(a.batches, 3);
  EXPECT_EQ(a.max_batch_size, 3);
  EXPECT_EQ(a.cache.hits, 3);
  EXPECT_EQ(a.cache.misses, 1);
  EXPECT_EQ(a.cache.insertions, 1);
  EXPECT_EQ(a.cache.disk_hits, 1);
  EXPECT_EQ(a.cache.spills, 2);
  EXPECT_EQ(a.cache.load_failures, 1);

  const JsonValue v = serve_stats_to_json(a);
  EXPECT_EQ(v.at("kind").as_string(), "serve");
  EXPECT_EQ(v.at("submitted").as_int(), 7);
  EXPECT_EQ(v.at("admitted").as_int(), 6);
  EXPECT_EQ(v.at("rejected_predicted").as_int(), 2);
  EXPECT_EQ(v.at("warm_starts").as_int(), 1);
  EXPECT_EQ(v.at("max_batch_size").as_int(), 3);
  EXPECT_EQ(v.at("cache").at("hits").as_int(), 3);
  EXPECT_EQ(v.at("cache").at("disk_hits").as_int(), 1);
  EXPECT_EQ(v.at("cache").at("spills").as_int(), 2);
  EXPECT_EQ(v.at("cache").at("load_failures").as_int(), 1);
}

// ------------------------------------------------------- JSONL frontend --

using ResponseMap = std::map<std::string, JsonValue>;

ResponseMap run_jsonl(const ServiceOptions& opts, const std::string& requests) {
  std::istringstream in(requests);
  std::ostringstream out;
  serve_requests(opts, in, out);
  std::istringstream lines(out.str());
  ResponseMap by_id;
  for (const JsonValue& v : read_jsonl(lines)) {
    by_id[v.at("id").as_string()] = v;
  }
  return by_id;
}

TEST_F(ServiceTest, ServeRequestsAnswersEveryLine) {
  const std::string requests =
      R"({"id":"ok1","matrix":")" + matrix_path_ + R"(","history":true})" "\n"
      R"(not even json)" "\n"
      R"({"id":"noid")" "\n"
      R"({"id":"late","matrix":")" + matrix_path_ + R"(","deadline_ms":0})" "\n";
  const ResponseMap by_id = run_jsonl({.workers = 2}, requests);
  ASSERT_EQ(by_id.size(), 4u);
  EXPECT_EQ(by_id.at("ok1").at("status").as_string(), "ok");
  EXPECT_EQ(by_id.at("line2").at("status").as_string(), "error");
  EXPECT_EQ(by_id.at("line3").at("status").as_string(), "error");
  EXPECT_EQ(by_id.at("late").at("status").as_string(), "rejected");
  EXPECT_EQ(by_id.at("late").at("reason").as_string(), "deadline");
}

TEST_F(ServiceTest, WorkerCountDoesNotChangeResults) {
  std::string requests;
  for (int i = 0; i < 6; ++i) {
    SolveRequest req = request("r" + std::to_string(i));
    req.rhs_seed = static_cast<std::uint64_t>(1000 + i);
    requests += to_json(req).dump() + "\n";
  }
  const ResponseMap one = run_jsonl({.workers = 1}, requests);
  const ResponseMap four = run_jsonl({.workers = 4}, requests);
  ASSERT_EQ(one.size(), 6u);
  ASSERT_EQ(four.size(), 6u);
  for (const auto& [id, resp1] : one) {
    const JsonValue& resp4 = four.at(id);
    EXPECT_EQ(resp1.at("iterations").as_int(), resp4.at("iterations").as_int());
    const auto& h1 = resp1.at("residuals").as_array();
    const auto& h4 = resp4.at("residuals").as_array();
    ASSERT_EQ(h1.size(), h4.size()) << id;
    for (std::size_t k = 0; k < h1.size(); ++k) {
      EXPECT_EQ(h1[k].as_double(), h4[k].as_double())
          << id << " iteration " << k;
    }
  }
}

TEST_F(ServiceTest, PrioritizedTrafficSolvesIdenticallyAcrossWorkerCounts) {
  // Priorities and deadlines reorder *scheduling*; per-request results must
  // stay bit-identical for any worker count (acceptance criterion).
  std::string requests;
  for (int i = 0; i < 6; ++i) {
    SolveRequest req = request("p" + std::to_string(i));
    req.rhs_seed = static_cast<std::uint64_t>(2000 + i);
    req.priority = i % 3;
    if (i % 2 == 0) req.deadline_ms = 60000.0;
    requests += to_json(req).dump() + "\n";
  }
  const ResponseMap one = run_jsonl({.workers = 1}, requests);
  const ResponseMap four = run_jsonl({.workers = 4}, requests);
  ASSERT_EQ(one.size(), 6u);
  for (const auto& [id, r1] : one) {
    ASSERT_EQ(r1.at("status").as_string(), "ok") << id;
    const JsonValue& r4 = four.at(id);
    const auto& h1 = r1.at("residuals").as_array();
    const auto& h4 = r4.at("residuals").as_array();
    ASSERT_EQ(h1.size(), h4.size()) << id;
    for (std::size_t k = 0; k < h1.size(); ++k) {
      EXPECT_EQ(h1[k].as_double(), h4[k].as_double()) << id << " " << k;
    }
  }
}

TEST_F(ServiceTest, WatchDirectoryServesDroppedFilesOnce) {
  const fs::path watch_dir = dir_ / "inbox";
  fs::create_directories(watch_dir);
  {
    std::ofstream req(watch_dir / "job.jsonl");
    req << to_json(request("w1")).dump() << "\n"
        << to_json(request("w2")).dump() << "\n";
  }
  EXPECT_EQ(process_watch_directory({.workers = 1}, watch_dir.string()), 1);
  std::ifstream out(watch_dir / "job.out.jsonl");
  ASSERT_TRUE(out.good());
  const auto responses = read_jsonl(out);
  ASSERT_EQ(responses.size(), 2u);
  for (const auto& r : responses) {
    EXPECT_EQ(r.at("status").as_string(), "ok");
  }
  EXPECT_EQ(process_watch_directory({.workers = 1}, watch_dir.string()), 0)
      << "already-served files must not be reprocessed";
}

TEST_F(ServiceTest, WatchModeAccumulatesStatsAcrossFiles) {
  const fs::path watch_dir = dir_ / "inbox_stats";
  fs::create_directories(watch_dir);
  {
    std::ofstream req(watch_dir / "a.jsonl");
    req << to_json(request("a1")).dump() << "\n"
        << to_json(request("a2")).dump() << "\n";
  }
  {
    SolveRequest late = request("b2");
    late.deadline_ms = 0.0;
    std::ofstream req(watch_dir / "b.jsonl");
    req << to_json(request("b1")).dump() << "\n"
        << to_json(late).dump() << "\n";
  }
  ServiceStats stats;
  EXPECT_EQ(process_watch_directory({.workers = 1}, watch_dir.string(), &stats),
            2);
  // The accumulated stats are what `fsaic serve --watch` reports at exit —
  // the same totals --requests mode would see for the combined stream.
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.rejected_deadline, 1);
  EXPECT_EQ(stats.cache.misses + stats.cache.hits, stats.batches);
}

// ------------------------------------------------- generated operators --

TEST_F(ServiceTest, GeneratedOperatorSolvesAndHitsCacheOnRepeat) {
  Collector col;
  {
    SolveService service({.workers = 1, .cache_capacity = 4}, col.handler());
    SolveRequest req;
    req.id = "gen-cold";
    req.generate = "stencil3d:nx=8,ny=8,nz=8";
    req.ranks = 4;
    req.want_history = true;
    EXPECT_TRUE(service.submit(req));
    service.drain();
    req.id = "gen-warm";
    EXPECT_TRUE(service.submit(req));
    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.misses, 1);
    EXPECT_EQ(stats.cache.hits, 1);
  }
  const SolveResponse& cold = col.by_id.at("gen-cold");
  const SolveResponse& warm = col.by_id.at("gen-warm");
  ASSERT_EQ(cold.status, "ok");
  EXPECT_TRUE(cold.converged);
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_EQ(warm.cache, "hit");
  EXPECT_FALSE(cold.fingerprint.empty());
  EXPECT_EQ(cold.fingerprint, warm.fingerprint)
      << "rank-local fingerprint must be deterministic across solves";
  ASSERT_EQ(cold.residuals.size(), warm.residuals.size());
  for (std::size_t k = 0; k < cold.residuals.size(); ++k) {
    EXPECT_EQ(cold.residuals[k], warm.residuals[k])
        << "cached-factor solve of a generated operator must be "
           "bit-identical at iteration "
        << k;
  }
}

TEST_F(ServiceTest, GeneratedOperatorFingerprintIsRankCountInvariant) {
  // The same spec served at different rank counts is the same global
  // operator; the reported fingerprint must not depend on the partition.
  const auto serve_at = [&](const std::string& id, int ranks) {
    Collector col;
    {
      SolveService service({.workers = 1}, col.handler());
      SolveRequest req;
      req.id = id;
      req.generate = "rgg2d:n=500,seed=3";
      req.ranks = static_cast<rank_t>(ranks);
      EXPECT_TRUE(service.submit(req));
      service.drain();
    }
    const SolveResponse& r = col.by_id.at(id);
    EXPECT_EQ(r.status, "ok") << r.reason;
    return r.fingerprint;
  };
  const std::string fp1 = serve_at("one", 1);
  const std::string fp4 = serve_at("four", 4);
  EXPECT_FALSE(fp1.empty());
  EXPECT_EQ(fp1, fp4);
}

TEST_F(ServiceTest, ServeRequestsRejectsBadSpecsAndSolvesGoodOnes) {
  const std::string requests =
      R"({"id":"g1","generate":"stencil2d:nx=16,ny=16","ranks":4})" "\n"
      R"({"id":"gbad","generate":"stencil2d:nx=0","ranks":4})" "\n"
      R"({"id":"gfam","generate":"hexmesh:n=64"})" "\n";
  const ResponseMap by_id = run_jsonl({.workers = 1}, requests);
  ASSERT_EQ(by_id.size(), 3u);
  EXPECT_EQ(by_id.at("g1").at("status").as_string(), "ok");
  EXPECT_EQ(by_id.at("gbad").at("status").as_string(), "error");
  EXPECT_EQ(by_id.at("gfam").at("status").as_string(), "error");
}

TEST_F(ServiceTest, WatchDirectoryServesGeneratorSpecRequests) {
  // Satellite acceptance: watch-dir mode accepts generator-spec request
  // files through the same parse path as --requests/stdin.
  const fs::path watch_dir = dir_ / "inbox_gen";
  fs::create_directories(watch_dir);
  {
    std::ofstream req(watch_dir / "gen.jsonl");
    req << R"({"id":"w-gen","generate":"stencil3d:nx=8,ny=8,nz=8","ranks":4,"history":true})"
        << "\n"
        << R"({"id":"w-mtx","matrix":")" << matrix_path_ << R"(","ranks":4})"
        << "\n"
        << R"({"id":"w-bad","generate":"stencil3d:bogus=1"})" << "\n";
  }
  EXPECT_EQ(process_watch_directory({.workers = 1}, watch_dir.string()), 1);
  std::ifstream out(watch_dir / "gen.out.jsonl");
  ASSERT_TRUE(out.good());
  std::map<std::string, JsonValue> by_id;
  for (const JsonValue& v : read_jsonl(out)) {
    by_id[v.at("id").as_string()] = v;
  }
  ASSERT_EQ(by_id.size(), 3u);
  EXPECT_EQ(by_id.at("w-gen").at("status").as_string(), "ok");
  EXPECT_TRUE(by_id.at("w-gen").at("converged").as_bool());
  EXPECT_EQ(by_id.at("w-mtx").at("status").as_string(), "ok");
  EXPECT_EQ(by_id.at("w-bad").at("status").as_string(), "error")
      << "watch-dir intake must reject bad specs like every other intake";
}

}  // namespace
}  // namespace fsaic
