#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fsaic {
namespace {

struct Job {
  std::string key;
  std::size_t shard = 0;
  int priority = 0;
  double deadline_us = -1.0;  // absolute; < 0 = no deadline
  std::int64_t seq = 0;
};

struct JobTraits {
  static std::size_t shard(const Job& j) { return j.shard; }
  static int priority(const Job& j) { return j.priority; }
  static double deadline_us(const Job& j) { return j.deadline_us; }
  static std::int64_t seq(const Job& j) { return j.seq; }
};

using Sched = ShardedScheduler<Job, JobTraits>;

Job job(std::int64_t seq, std::size_t shard, int priority = 0,
        double deadline_us = -1.0) {
  return Job{"j" + std::to_string(seq), shard, priority, deadline_us, seq};
}

TEST(ShardedSchedulerTest, BoundsTotalCapacityAcrossLanes) {
  Sched q(2, 4);
  EXPECT_TRUE(q.try_push(job(1, 0)));
  EXPECT_TRUE(q.try_push(job(2, 3)));
  EXPECT_FALSE(q.try_push(job(3, 1)))
      << "the bound is on total items, not per lane";
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.shards(), 4u);
}

TEST(ShardedSchedulerTest, OwnLaneBeforeStealing) {
  Sched q(8, 2);
  q.try_push(job(1, 0));  // other worker's lane, admitted earlier
  q.try_push(job(2, 1));  // this worker's lane
  const auto got = q.pop(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 2) << "a worker serves its own lane before stealing";
}

TEST(ShardedSchedulerTest, StealsGloballyBestWhenOwnLaneEmpty) {
  Sched q(8, 3);
  q.try_push(job(1, 0, /*priority=*/0));
  q.try_push(job(2, 1, /*priority=*/5));
  const auto got = q.pop(2);  // lane 2 is empty -> steal
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 2) << "stealing takes the highest-priority item";
}

TEST(ShardedSchedulerTest, PriorityOutranksAdmissionOrder) {
  Sched q(8, 1);
  q.try_push(job(1, 0, 0));
  q.try_push(job(2, 0, 2));
  q.try_push(job(3, 0, 1));
  EXPECT_EQ(q.pop(0)->seq, 2);
  EXPECT_EQ(q.pop(0)->seq, 3);
  EXPECT_EQ(q.pop(0)->seq, 1);
}

TEST(ShardedSchedulerTest, DeadlinedOutranksDeadlineFreeThenEdf) {
  Sched q(8, 1);
  q.try_push(job(1, 0, 0, /*deadline_us=*/-1.0));
  q.try_push(job(2, 0, 0, /*deadline_us=*/9000.0));
  q.try_push(job(3, 0, 0, /*deadline_us=*/4000.0));
  EXPECT_EQ(q.pop(0)->seq, 3) << "earliest absolute deadline first";
  EXPECT_EQ(q.pop(0)->seq, 2);
  EXPECT_EQ(q.pop(0)->seq, 1) << "deadline-free work runs last";
}

TEST(ShardedSchedulerTest, PriorityBeatsDeadline) {
  Sched q(8, 1);
  q.try_push(job(1, 0, /*priority=*/0, /*deadline_us=*/1000.0));
  q.try_push(job(2, 0, /*priority=*/1, /*deadline_us=*/-1.0));
  EXPECT_EQ(q.pop(0)->seq, 2)
      << "EDF only orders within one priority level";
}

TEST(ShardedSchedulerTest, EqualKeysFallBackToFifo) {
  Sched q(8, 1);
  q.try_push(job(1, 0, 1, 5000.0));
  q.try_push(job(2, 0, 1, 5000.0));
  EXPECT_EQ(q.pop(0)->seq, 1);
  EXPECT_EQ(q.pop(0)->seq, 2);
}

TEST(ShardedSchedulerTest, DrainIfCrossesLanesInAdmissionOrder) {
  Sched q(16, 3);
  q.try_push(job(1, 2, /*priority=*/0));
  q.try_push(job(2, 0, /*priority=*/9));
  q.try_push(job(3, 1, /*priority=*/0));
  q.try_push(job(4, 0, /*priority=*/0));
  Job other = job(5, 1);
  other.key = "other";
  q.try_push(other);

  const auto batch = q.drain_if([](const Job& j) { return j.key != "other"; });
  std::vector<std::int64_t> seqs;
  for (const Job& j : batch) seqs.push_back(j.seq);
  EXPECT_EQ(seqs, (std::vector<std::int64_t>{1, 2, 3, 4}))
      << "batch composition is admission-ordered, not priority- or "
         "shard-ordered, so solves are shard-count independent";
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop(0)->key, "other");
}

TEST(ShardedSchedulerTest, CloseDrainsThenReturnsEmpty) {
  Sched q(8, 2);
  q.try_push(job(1, 0));
  q.close();
  EXPECT_FALSE(q.try_push(job(2, 0))) << "closed scheduler rejects pushes";
  EXPECT_EQ(q.pop(0)->seq, 1) << "queued work still drains after close";
  EXPECT_EQ(q.pop(0), std::nullopt);
}

TEST(ShardedSchedulerTest, ShardIdsWrapAroundLaneCount) {
  Sched q(8, 2);
  q.try_push(job(1, 7));  // 7 % 2 == lane 1
  const auto got = q.pop(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 1);
}

}  // namespace
}  // namespace fsaic
