#include "service/factor_cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "matgen/generators.hpp"
#include "sparse/fingerprint.hpp"

namespace fsaic {
namespace {

FactorCache::Key key_of(const CsrMatrix& a, const std::string& config) {
  return FactorCache::Key{fingerprint_of(a), config};
}

std::shared_ptr<const CachedFactor> factor_for(const CsrMatrix& a) {
  return std::make_shared<CachedFactor>(
      CachedFactor{a, Layout::blocked(a.rows(), 2), 0.0});
}

TEST(FingerprintTest, IdenticalMatricesAgree) {
  const auto a = poisson2d(8, 8);
  const auto b = poisson2d(8, 8);
  EXPECT_EQ(fingerprint_of(a), fingerprint_of(b));
}

TEST(FingerprintTest, SameShapeDifferentValuesDiffer) {
  const auto a = poisson2d(8, 8);
  auto b = poisson2d(8, 8);
  b.values()[0] += 1e-14;  // same pattern, one value bit-flipped
  const auto fa = fingerprint_of(a);
  const auto fb = fingerprint_of(b);
  EXPECT_EQ(fa.rows, fb.rows);
  EXPECT_EQ(fa.nnz, fb.nnz);
  EXPECT_NE(fa.content_hash, fb.content_hash);
  EXPECT_NE(fa, fb);
}

TEST(FingerprintTest, ValueSignBitMatters) {
  auto a = poisson2d(4, 4);
  auto b = poisson2d(4, 4);
  a.values()[0] = 0.0;
  b.values()[0] = -0.0;  // equal as doubles, different bit patterns
  EXPECT_NE(fingerprint_of(a).content_hash, fingerprint_of(b).content_hash);
}

TEST(FactorCacheTest, HitAfterPut) {
  FactorCache cache(2);
  const auto a = poisson2d(6, 6);
  EXPECT_EQ(cache.get(key_of(a, "cfg")), nullptr);
  cache.put(key_of(a, "cfg"), factor_for(a));
  const auto hit = cache.get(key_of(a, "cfg"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->g.nnz(), a.nnz());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(FactorCacheTest, EvictsLeastRecentlyUsed) {
  FactorCache cache(2);
  const auto a = poisson2d(4, 4);
  const auto b = poisson2d(5, 5);
  const auto c = poisson2d(6, 6);
  cache.put(key_of(a, "cfg"), factor_for(a));
  cache.put(key_of(b, "cfg"), factor_for(b));
  // Touch a so b becomes the LRU victim.
  ASSERT_NE(cache.get(key_of(a, "cfg")), nullptr);
  cache.put(key_of(c, "cfg"), factor_for(c));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_NE(cache.get(key_of(a, "cfg")), nullptr);
  EXPECT_EQ(cache.get(key_of(b, "cfg")), nullptr) << "b was evicted";
  EXPECT_NE(cache.get(key_of(c, "cfg")), nullptr);
}

TEST(FactorCacheTest, SameMatrixDifferentConfigOccupiesTwoSlots) {
  FactorCache cache(4);
  const auto a = poisson2d(6, 6);
  cache.put(key_of(a, "fsai|0|static|4"), factor_for(a));
  cache.put(key_of(a, "fsaie-comm|0.01|dynamic|4"), factor_for(a));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.get(key_of(a, "fsai|0|static|4")), nullptr);
  EXPECT_NE(cache.get(key_of(a, "fsaie-comm|0.01|dynamic|4")), nullptr);
}

TEST(FactorCacheTest, SameShapeDifferentValuesMiss) {
  // The collision case the fingerprint exists to prevent: two operators
  // with identical sparsity but different values must not share a factor.
  FactorCache cache(4);
  const auto a = poisson2d(6, 6);
  auto b = poisson2d(6, 6);
  for (auto& v : b.values()) v *= 2.0;
  cache.put(key_of(a, "cfg"), factor_for(a));
  EXPECT_EQ(cache.get(key_of(b, "cfg")), nullptr)
      << "same-shape different-value matrix must miss";
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FactorCacheTest, RefreshingAKeyDoesNotGrowOrEvict) {
  FactorCache cache(2);
  const auto a = poisson2d(4, 4);
  cache.put(key_of(a, "cfg"), factor_for(a));
  cache.put(key_of(a, "cfg"), factor_for(a));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(FactorCacheTest, CapacityZeroDisablesCaching) {
  FactorCache cache(0);
  const auto a = poisson2d(4, 4);
  cache.put(key_of(a, "cfg"), factor_for(a));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(key_of(a, "cfg")), nullptr);
}

TEST(FactorCacheTest, EvictedEntrySurvivesWhileHeld) {
  FactorCache cache(1);
  const auto a = poisson2d(4, 4);
  const auto b = poisson2d(5, 5);
  cache.put(key_of(a, "cfg"), factor_for(a));
  const auto held = cache.get(key_of(a, "cfg"));
  cache.put(key_of(b, "cfg"), factor_for(b));  // evicts a
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->g.rows(), a.rows()) << "in-flight factor must stay usable";
}

TEST(FactorCacheTest, ClearEmptiesTheCache) {
  FactorCache cache(4);
  const auto a = poisson2d(4, 4);
  cache.put(key_of(a, "cfg"), factor_for(a));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(key_of(a, "cfg")), nullptr);
}

// ------------------------------------------------------------ disk tier --

namespace fs = std::filesystem;

class DiskFactorCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = fs::temp_directory_path() /
             ("fsaic_factor_store_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(store_);
  }
  void TearDown() override { fs::remove_all(store_); }

  fs::path store_;
};

TEST_F(DiskFactorCacheTest, PutPersistsWriteThroughAndClearKeepsTheFile) {
  FactorCache cache(4, store_.string());
  const auto a = poisson2d(6, 6);
  cache.put(key_of(a, "cfg"), factor_for(a));
  EXPECT_EQ(cache.stats().spills, 1) << "write-through persists on put";
  const std::string path = cache.store_path(key_of(a, "cfg"));
  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(fs::exists(path));

  cache.clear();
  EXPECT_TRUE(fs::exists(path)) << "clear drops RAM only";

  CacheTier tier = CacheTier::Miss;
  const auto reloaded = cache.get(key_of(a, "cfg"), &tier);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(tier, CacheTier::Disk);
  EXPECT_EQ(cache.stats().disk_hits, 1);
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(reloaded->build_seconds, 0.0) << "reload is not a build";
  // The factor round-trips bit-exactly (the determinism contract).
  const auto original = factor_for(a);
  ASSERT_EQ(reloaded->g.nnz(), original->g.nnz());
  for (std::size_t k = 0; k < reloaded->g.values().size(); ++k) {
    EXPECT_EQ(reloaded->g.values()[k], original->g.values()[k]) << k;
  }
  EXPECT_EQ(reloaded->layout, original->layout);

  // The reload re-inserted into RAM: the next get is a RAM hit.
  tier = CacheTier::Miss;
  EXPECT_NE(cache.get(key_of(a, "cfg"), &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Ram);
}

TEST_F(DiskFactorCacheTest, WarmRestartReadsThePreviousProcessesStore) {
  const auto a = poisson2d(6, 6);
  {
    FactorCache first(4, store_.string());
    first.put(key_of(a, "cfg"), factor_for(a));
  }  // "process death": only the store directory survives
  FactorCache second(4, store_.string());
  CacheTier tier = CacheTier::Miss;
  const auto reloaded = second.get(key_of(a, "cfg"), &tier);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(tier, CacheTier::Disk);
  EXPECT_EQ(second.stats().disk_hits, 1);
}

TEST_F(DiskFactorCacheTest, EvictedFactorRemainsLoadableFromTheStore) {
  FactorCache cache(1, store_.string());
  const auto a = poisson2d(4, 4);
  const auto b = poisson2d(5, 5);
  cache.put(key_of(a, "cfg"), factor_for(a));
  cache.put(key_of(b, "cfg"), factor_for(b));  // evicts a from RAM
  EXPECT_EQ(cache.stats().evictions, 1);

  CacheTier tier = CacheTier::Miss;
  EXPECT_NE(cache.get(key_of(a, "cfg"), &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Disk) << "eviction demotes to the disk tier";
}

TEST_F(DiskFactorCacheTest, TruncatedStoreFileDegradesToFreshBuild) {
  FactorCache cache(4, store_.string());
  const auto a = poisson2d(6, 6);
  cache.put(key_of(a, "cfg"), factor_for(a));
  const std::string path = cache.store_path(key_of(a, "cfg"));
  // Truncate the file mid-payload, as a crash mid-write (without the atomic
  // rename) or disk corruption would.
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size / 2);
  cache.clear();

  CacheTier tier = CacheTier::Ram;
  EXPECT_EQ(cache.get(key_of(a, "cfg"), &tier), nullptr)
      << "a truncated store file must degrade to a plain miss";
  EXPECT_EQ(tier, CacheTier::Miss);
  EXPECT_EQ(cache.stats().load_failures, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_FALSE(fs::exists(path)) << "the corrupt file is removed";
}

TEST_F(DiskFactorCacheTest, GarbageStoreFileDegradesToFreshBuild) {
  FactorCache cache(4, store_.string());
  const auto a = poisson2d(6, 6);
  cache.put(key_of(a, "cfg"), factor_for(a));
  const std::string path = cache.store_path(key_of(a, "cfg"));
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "this is not a factor file";
  }
  cache.clear();
  EXPECT_EQ(cache.get(key_of(a, "cfg")), nullptr);
  EXPECT_EQ(cache.stats().load_failures, 1);
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(DiskFactorCacheTest, FingerprintMismatchedFileIsRejected) {
  // A file that parses but embeds a different build fingerprint (say, a
  // hash collision in the file name, or a manually copied store) must not
  // be served for this key.
  FactorCache cache(4, store_.string());
  const auto a = poisson2d(6, 6);
  auto b = poisson2d(6, 6);
  for (auto& v : b.values()) v *= 2.0;
  cache.put(key_of(a, "cfg"), factor_for(a));
  fs::copy_file(cache.store_path(key_of(a, "cfg")),
                cache.store_path(key_of(b, "cfg")));
  EXPECT_EQ(cache.get(key_of(b, "cfg")), nullptr);
  EXPECT_EQ(cache.stats().load_failures, 1);
  EXPECT_FALSE(fs::exists(cache.store_path(key_of(b, "cfg"))));
}

TEST_F(DiskFactorCacheTest, CapacityZeroDisablesBothTiers) {
  FactorCache cache(0, store_.string());
  const auto a = poisson2d(4, 4);
  cache.put(key_of(a, "cfg"), factor_for(a));
  EXPECT_EQ(cache.get(key_of(a, "cfg")), nullptr);
  EXPECT_EQ(cache.stats().spills, 0);
}

TEST_F(DiskFactorCacheTest, StoreCapEvictsLeastRecentlyAccessedFiles) {
  // Measure one factor file (all keys below share the matrix, so all files
  // have identical size), then cap the store at exactly three of them.
  const auto a = poisson2d(6, 6);
  std::uintmax_t file_bytes = 0;
  {
    FactorCache probe(1, store_.string());
    probe.put(key_of(a, "probe"), factor_for(a));
    file_bytes = fs::file_size(probe.store_path(key_of(a, "probe")));
  }
  fs::remove_all(store_);
  ASSERT_GT(file_bytes, 0u);

  // RAM capacity 1 keeps the disk tier doing the real work.
  FactorCache cache(1, store_.string(), 3 * file_bytes);
  EXPECT_EQ(cache.store_max_bytes(), 3 * file_bytes);
  const auto cfg = [](int i) { return "cfg" + std::to_string(i); };
  for (int i = 0; i < 5; ++i) {
    cache.put(key_of(a, cfg(i)), factor_for(a));
  }
  // Five files written, cap holds three: the two oldest were dropped at put
  // time, newest-first retention.
  EXPECT_EQ(cache.stats().store_evictions, 2);
  EXPECT_FALSE(fs::exists(cache.store_path(key_of(a, cfg(0)))));
  EXPECT_FALSE(fs::exists(cache.store_path(key_of(a, cfg(1)))));
  for (int i = 2; i < 5; ++i) {
    EXPECT_TRUE(fs::exists(cache.store_path(key_of(a, cfg(i))))) << i;
  }

  // Surviving entries still reload from the store (RAM holds only cfg4).
  CacheTier tier = CacheTier::Miss;
  ASSERT_NE(cache.get(key_of(a, cfg(3)), &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Disk);
  // ... and an evicted one is a plain miss that would rebuild fresh.
  EXPECT_EQ(cache.get(key_of(a, cfg(0))), nullptr);

  // Disk reloads count as accesses: cfg2 was the stalest survivor, but
  // touching it shifts the next eviction onto cfg3's slot... except cfg3
  // was itself just reloaded above. Touch cfg2, then overflow once more:
  // the victim must be cfg4's elder, i.e. the least-recently-accessed file
  // (cfg4, untouched since its put, loses to the two freshly accessed).
  tier = CacheTier::Miss;
  ASSERT_NE(cache.get(key_of(a, cfg(2)), &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Disk);
  cache.put(key_of(a, cfg(5)), factor_for(a));
  EXPECT_EQ(cache.stats().store_evictions, 3);
  EXPECT_FALSE(fs::exists(cache.store_path(key_of(a, cfg(4)))))
      << "the least-recently-accessed file is the victim";
  EXPECT_TRUE(fs::exists(cache.store_path(key_of(a, cfg(2)))));
  EXPECT_TRUE(fs::exists(cache.store_path(key_of(a, cfg(3)))));
  EXPECT_TRUE(fs::exists(cache.store_path(key_of(a, cfg(5)))));
}

TEST_F(DiskFactorCacheTest, StoreCapSeedsRecencyFromMtimesOnRestart) {
  const auto a = poisson2d(6, 6);
  std::uintmax_t file_bytes = 0;
  {
    FactorCache first(1, store_.string());
    first.put(key_of(a, "old"), factor_for(a));
    file_bytes = fs::file_size(first.store_path(key_of(a, "old")));
    // Ensure a distinguishable mtime ordering on coarse-grained clocks.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    first.put(key_of(a, "new"), factor_for(a));
  }  // restart: only the directory survives
  FactorCache second(1, store_.string(), 2 * file_bytes);
  second.put(key_of(a, "newest"), factor_for(a));
  EXPECT_EQ(second.stats().store_evictions, 1);
  EXPECT_FALSE(fs::exists(second.store_path(key_of(a, "old"))))
      << "the stalest pre-restart file is evicted first";
  EXPECT_TRUE(fs::exists(second.store_path(key_of(a, "new"))));
  EXPECT_TRUE(fs::exists(second.store_path(key_of(a, "newest"))));
}

TEST_F(DiskFactorCacheTest, UncappedStoreNeverEvicts) {
  FactorCache cache(1, store_.string());  // store_max_bytes defaults to 0
  const auto a = poisson2d(6, 6);
  for (int i = 0; i < 6; ++i) {
    cache.put(key_of(a, "cfg" + std::to_string(i)), factor_for(a));
  }
  EXPECT_EQ(cache.stats().store_evictions, 0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(
        fs::exists(cache.store_path(key_of(a, "cfg" + std::to_string(i)))));
  }
}

TEST_F(DiskFactorCacheTest, ConcurrentHitsAndSpillsAreRaceFree) {
  // Hammer one small cache from several threads: concurrent RAM hits, disk
  // reloads, evictions and write-through spills on the same keys. The
  // assertions are loose — the point is running the interleavings under
  // TSAN (the threaded CI pass) with capacity pressure forcing constant
  // tier transitions.
  FactorCache cache(2, store_.string());
  std::vector<CsrMatrix> mats;
  for (int n = 4; n < 10; ++n) mats.push_back(poisson2d(n, n));
  for (const auto& m : mats) cache.put(key_of(m, "cfg"), factor_for(m));

  std::atomic<int> served{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 30; ++round) {
        const auto& m = mats[static_cast<std::size_t>((t + round) %
                                                      mats.size())];
        if (round % 10 == 9) {
          cache.put(key_of(m, "cfg"), factor_for(m));
        }
        const auto got = cache.get(key_of(m, "cfg"));
        if (got != nullptr) {
          served.fetch_add(1);
          // Touch the payload so TSAN sees reads racing any spill IO.
          EXPECT_EQ(got->g.rows(), m.rows());
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(served.load(), 4 * 30)
      << "every lookup must be served from RAM or disk";
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 0);
  EXPECT_GT(stats.disk_hits, 0) << "capacity 2 over 6 keys must hit disk";
}

}  // namespace
}  // namespace fsaic
