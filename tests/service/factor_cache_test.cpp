#include "service/factor_cache.hpp"

#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "sparse/fingerprint.hpp"

namespace fsaic {
namespace {

FactorCache::Key key_of(const CsrMatrix& a, const std::string& config) {
  return FactorCache::Key{fingerprint_of(a), config};
}

std::shared_ptr<const CachedFactor> factor_for(const CsrMatrix& a) {
  return std::make_shared<CachedFactor>(
      CachedFactor{a, Layout::blocked(a.rows(), 2), 0.0});
}

TEST(FingerprintTest, IdenticalMatricesAgree) {
  const auto a = poisson2d(8, 8);
  const auto b = poisson2d(8, 8);
  EXPECT_EQ(fingerprint_of(a), fingerprint_of(b));
}

TEST(FingerprintTest, SameShapeDifferentValuesDiffer) {
  const auto a = poisson2d(8, 8);
  auto b = poisson2d(8, 8);
  b.values()[0] += 1e-14;  // same pattern, one value bit-flipped
  const auto fa = fingerprint_of(a);
  const auto fb = fingerprint_of(b);
  EXPECT_EQ(fa.rows, fb.rows);
  EXPECT_EQ(fa.nnz, fb.nnz);
  EXPECT_NE(fa.content_hash, fb.content_hash);
  EXPECT_NE(fa, fb);
}

TEST(FingerprintTest, ValueSignBitMatters) {
  auto a = poisson2d(4, 4);
  auto b = poisson2d(4, 4);
  a.values()[0] = 0.0;
  b.values()[0] = -0.0;  // equal as doubles, different bit patterns
  EXPECT_NE(fingerprint_of(a).content_hash, fingerprint_of(b).content_hash);
}

TEST(FactorCacheTest, HitAfterPut) {
  FactorCache cache(2);
  const auto a = poisson2d(6, 6);
  EXPECT_EQ(cache.get(key_of(a, "cfg")), nullptr);
  cache.put(key_of(a, "cfg"), factor_for(a));
  const auto hit = cache.get(key_of(a, "cfg"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->g.nnz(), a.nnz());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(FactorCacheTest, EvictsLeastRecentlyUsed) {
  FactorCache cache(2);
  const auto a = poisson2d(4, 4);
  const auto b = poisson2d(5, 5);
  const auto c = poisson2d(6, 6);
  cache.put(key_of(a, "cfg"), factor_for(a));
  cache.put(key_of(b, "cfg"), factor_for(b));
  // Touch a so b becomes the LRU victim.
  ASSERT_NE(cache.get(key_of(a, "cfg")), nullptr);
  cache.put(key_of(c, "cfg"), factor_for(c));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_NE(cache.get(key_of(a, "cfg")), nullptr);
  EXPECT_EQ(cache.get(key_of(b, "cfg")), nullptr) << "b was evicted";
  EXPECT_NE(cache.get(key_of(c, "cfg")), nullptr);
}

TEST(FactorCacheTest, SameMatrixDifferentConfigOccupiesTwoSlots) {
  FactorCache cache(4);
  const auto a = poisson2d(6, 6);
  cache.put(key_of(a, "fsai|0|static|4"), factor_for(a));
  cache.put(key_of(a, "fsaie-comm|0.01|dynamic|4"), factor_for(a));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.get(key_of(a, "fsai|0|static|4")), nullptr);
  EXPECT_NE(cache.get(key_of(a, "fsaie-comm|0.01|dynamic|4")), nullptr);
}

TEST(FactorCacheTest, SameShapeDifferentValuesMiss) {
  // The collision case the fingerprint exists to prevent: two operators
  // with identical sparsity but different values must not share a factor.
  FactorCache cache(4);
  const auto a = poisson2d(6, 6);
  auto b = poisson2d(6, 6);
  for (auto& v : b.values()) v *= 2.0;
  cache.put(key_of(a, "cfg"), factor_for(a));
  EXPECT_EQ(cache.get(key_of(b, "cfg")), nullptr)
      << "same-shape different-value matrix must miss";
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FactorCacheTest, RefreshingAKeyDoesNotGrowOrEvict) {
  FactorCache cache(2);
  const auto a = poisson2d(4, 4);
  cache.put(key_of(a, "cfg"), factor_for(a));
  cache.put(key_of(a, "cfg"), factor_for(a));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(FactorCacheTest, CapacityZeroDisablesCaching) {
  FactorCache cache(0);
  const auto a = poisson2d(4, 4);
  cache.put(key_of(a, "cfg"), factor_for(a));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(key_of(a, "cfg")), nullptr);
}

TEST(FactorCacheTest, EvictedEntrySurvivesWhileHeld) {
  FactorCache cache(1);
  const auto a = poisson2d(4, 4);
  const auto b = poisson2d(5, 5);
  cache.put(key_of(a, "cfg"), factor_for(a));
  const auto held = cache.get(key_of(a, "cfg"));
  cache.put(key_of(b, "cfg"), factor_for(b));  // evicts a
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->g.rows(), a.rows()) << "in-flight factor must stay usable";
}

TEST(FactorCacheTest, ClearEmptiesTheCache) {
  FactorCache cache(4);
  const auto a = poisson2d(4, 4);
  cache.put(key_of(a, "cfg"), factor_for(a));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(key_of(a, "cfg")), nullptr);
}

}  // namespace
}  // namespace fsaic
