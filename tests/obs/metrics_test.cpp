#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dist/comm_stats.hpp"

namespace fsaic {
namespace {

TEST(MetricsTest, CountersAccumulateAndGaugesOverwrite) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.counter("bytes"), 0);
  metrics.add("bytes", 10);
  metrics.add("bytes", 32);
  EXPECT_EQ(metrics.counter("bytes"), 42);

  metrics.set("gflops", 1.5);
  metrics.set("gflops", 2.5);
  EXPECT_DOUBLE_EQ(metrics.gauge("gflops"), 2.5);
  EXPECT_DOUBLE_EQ(metrics.gauge("never_set"), 0.0);
}

TEST(MetricsTest, PerRankSeriesAreIndependent) {
  MetricsRegistry metrics;
  metrics.add("halo", 5, 0);
  metrics.add("halo", 7, 1);
  metrics.add("halo", 100);  // global series
  EXPECT_EQ(metrics.counter("halo", 0), 5);
  EXPECT_EQ(metrics.counter("halo", 1), 7);
  EXPECT_EQ(metrics.counter("halo"), 100);
  EXPECT_EQ(MetricsRegistry::key("halo", MetricsRegistry::kGlobal), "halo");
  EXPECT_EQ(MetricsRegistry::key("halo", 3), "halo.rank3");
}

TEST(MetricsTest, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry metrics;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics, t] {
      for (int i = 0; i < kIncrements; ++i) {
        metrics.add("hits", 1);
        metrics.add("hits", 1, static_cast<rank_t>(t % 2));
        metrics.set("last", static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(metrics.counter("hits"), kThreads * kIncrements);
  EXPECT_EQ(metrics.counter("hits", 0) + metrics.counter("hits", 1),
            kThreads * kIncrements);
  EXPECT_LT(metrics.gauge("last"), kIncrements);
}

TEST(MetricsTest, SnapshotAndJsonAgree) {
  MetricsRegistry metrics;
  metrics.add("runs", 3);
  metrics.set("imbalance", 1.25, 2);
  const auto snap = metrics.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters.at("runs"), 3);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("imbalance.rank2"), 1.25);

  const JsonValue json = metrics.to_json();
  EXPECT_EQ(json.at("counters").at("runs").as_int(), 3);
  EXPECT_DOUBLE_EQ(json.at("gauges").at("imbalance.rank2").as_double(), 1.25);

  metrics.clear();
  EXPECT_TRUE(metrics.snapshot().counters.empty());
  EXPECT_TRUE(metrics.snapshot().gauges.empty());
}

TEST(HistogramTest, TracksCountSumAndExtremes) {
  HistogramData h;
  h.observe(2.0);
  h.observe(10.0);
  h.observe(0.5);
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.sum, 12.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 10.0);
  EXPECT_NEAR(h.mean(), 12.5 / 3.0, 1e-15);
}

TEST(HistogramTest, QuantilesAreBucketBoundsClampedToObservedRange) {
  HistogramData h;
  // 90 fast observations around 3us, 10 slow ones around 3000us.
  for (int i = 0; i < 90; ++i) h.observe(3.0);
  for (int i = 0; i < 10; ++i) h.observe(3000.0);
  const double p50 = h.quantile(0.5);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, 3.0);
  EXPECT_LT(p50, 8.0) << "median lands in the fast bucket";
  EXPECT_GT(p99, 1000.0) << "tail quantile lands in the slow bucket";
  EXPECT_LE(p99, 3000.0) << "quantile is clamped to the observed max";
  EXPECT_EQ(h.quantile(0.0), h.min) << "quantiles clamp to the observed min";
}

// Pins the documented estimation rule: nearest-rank target
// t = max(1, ceil(q*count)), linear interpolation by rank inside the
// bucket [L, U) holding the t-th smallest observation, clamped to the
// observed [min, max].
TEST(HistogramTest, QuantileInterpolationRuleIsPinned) {
  HistogramData h;
  for (int v = 1; v <= 8; ++v) h.observe(static_cast<double>(v));
  // p25: t=2 -> 2nd smallest, bucket [2,4) holds {2,3}, frac 1/2 -> 3.0.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 3.0);
  // p50: t=4 -> bucket [4,8) holds {4,5,6,7}, frac 1/4 -> 5.0.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 5.0);
  // p95/p99: t=8 -> bucket [8,16), interpolates to 16, clamps to max 8.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 8.0);
}

TEST(HistogramTest, SingleSampleQuantilesAreExact) {
  HistogramData h;
  h.observe(42.0);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 42.0) << "q=" << q;
  }
}

TEST(HistogramTest, BucketEdgeObservationsClampToObservedValue) {
  HistogramData h;
  // All mass exactly on a bucket's lower edge: interpolation would drift
  // upward inside [4,8), but the clamp pins every quantile to 4.0.
  for (int i = 0; i < 3; ++i) h.observe(4.0);
  for (const double q : {0.01, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 4.0) << "q=" << q;
  }
}

TEST(HistogramTest, OutOfRangeQuantileArgumentsClamp) {
  HistogramData h;
  h.observe(2.0);
  h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(HistogramTest, EmptyHistogramIsInert) {
  const HistogramData h;
  EXPECT_EQ(h.count, 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(MetricsTest, RegistryObservationsLandInSnapshotsAndJson) {
  MetricsRegistry metrics;
  metrics.observe("latency_us", 4.0);
  metrics.observe("latency_us", 100.0);
  metrics.observe("latency_us", 7.5, 2);

  const HistogramData global = metrics.histogram("latency_us");
  EXPECT_EQ(global.count, 2);
  EXPECT_DOUBLE_EQ(global.sum, 104.0);
  EXPECT_EQ(metrics.histogram("latency_us", 2).count, 1);
  EXPECT_EQ(metrics.histogram("missing").count, 0);

  const auto snap = metrics.snapshot();
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms.at("latency_us").count, 2);
  EXPECT_EQ(snap.histograms.at("latency_us.rank2").count, 1);

  const JsonValue json = metrics.to_json();
  const JsonValue& hist = json.at("histograms").at("latency_us");
  EXPECT_EQ(hist.at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 104.0);
  EXPECT_DOUBLE_EQ(hist.at("min").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(hist.at("max").as_double(), 100.0);

  metrics.clear();
  EXPECT_TRUE(metrics.snapshot().histograms.empty());
}

TEST(MetricsTest, RecordCommStatsMatchesTotalsExactly) {
  CommStats stats;
  stats.record_halo_message(0, 1, 128);
  stats.record_halo_message(1, 0, 64);
  stats.record_halo_message(0, 2, 8);
  stats.record_allreduce(16);
  stats.record_allreduce(16);

  MetricsRegistry metrics;
  record_comm_stats(metrics, "solve", stats);
  EXPECT_EQ(metrics.counter("solve.halo_messages"), stats.halo_messages);
  EXPECT_EQ(metrics.counter("solve.halo_bytes"), stats.halo_bytes);
  EXPECT_EQ(metrics.counter("solve.allreduce_count"), stats.allreduce_count);
  EXPECT_EQ(metrics.counter("solve.allreduce_bytes"), stats.allreduce_bytes);
  // Per-sender bytes: rank 0 sent 136, rank 1 sent 64.
  EXPECT_EQ(metrics.counter("solve.halo_bytes_sent", 0), 136);
  EXPECT_EQ(metrics.counter("solve.halo_bytes_sent", 1), 64);
}

}  // namespace
}  // namespace fsaic
