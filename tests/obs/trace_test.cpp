#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace fsaic {
namespace {

TEST(TraceTest, NullRecorderScopedPhaseIsNoOp) {
  // The instrumented hot paths pass nullptr when tracing is off; the scope
  // must be safe to construct and destroy.
  ScopedPhase phase(nullptr, "anything");
  SUCCEED();
}

TEST(TraceTest, ScopedPhaseEmitsMatchingBeginEnd) {
  TraceRecorder rec;
  {
    ScopedPhase outer(&rec, "outer", "setup");
    ScopedPhase inner(&rec, "inner", "setup");
  }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[3].phase, 'E');
  EXPECT_EQ(events[3].name, "outer");
  // Timestamps are monotone.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].timestamp_us, events[i - 1].timestamp_us);
  }
}

TEST(TraceTest, WriteJsonIsValidTraceEventDocument) {
  TraceRecorder rec;
  {
    ScopedPhase phase(&rec, "work", "compute");
  }
  rec.complete("slice", "comm", 1.0, 2.5);
  rec.instant("marker", "info");
  rec.counter("residual", 0.125);

  std::ostringstream out;
  rec.write_json(out);
  const JsonValue doc = JsonValue::parse(out.str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 5u);

  // Every event carries the mandatory trace_event keys.
  for (const auto& e : events) {
    EXPECT_NE(e.find("name"), nullptr);
    EXPECT_NE(e.find("cat"), nullptr);
    EXPECT_NE(e.find("ph"), nullptr);
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.find("pid"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
  }
  // The X slice has a duration, the counter has an args value.
  const auto& slice = events[2];
  EXPECT_EQ(slice.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(slice.at("dur").as_double(), 2.5);
  const auto& counter = events[4];
  EXPECT_EQ(counter.at("ph").as_string(), "C");
  EXPECT_DOUBLE_EQ(counter.at("args").at("value").as_double(), 0.125);
}

TEST(TraceTest, BeginEndNestWellFormedPerThread) {
  TraceRecorder rec;
  constexpr int kThreads = 4;
  constexpr int kPhasesPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kPhasesPerThread; ++i) {
        ScopedPhase outer(&rec, "outer");
        ScopedPhase inner(&rec, "inner");
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto events = rec.events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPhasesPerThread * 4);

  // Replay each thread's track: B pushes, E must pop the same name, and
  // every stack must be empty at the end.
  std::map<std::uint32_t, std::vector<std::string>> stacks;
  for (const auto& e : events) {
    if (e.phase == 'B') {
      stacks[e.tid].push_back(e.name);
    } else if (e.phase == 'E') {
      auto& stack = stacks[e.tid];
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(stack.back(), e.name);
      stack.pop_back();
    }
  }
  EXPECT_EQ(stacks.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unbalanced track tid=" << tid;
  }
}

TEST(TraceTest, WriteFileRoundTripsThroughParser) {
  TraceRecorder rec;
  {
    ScopedPhase phase(&rec, "io");
  }
  const std::string path = ::testing::TempDir() + "fsaic_trace_test.json";
  rec.write_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buf.str());
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 2u);
}

}  // namespace
}  // namespace fsaic
