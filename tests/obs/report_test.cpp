#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "harness/experiment.hpp"
#include "obs/json.hpp"

namespace fsaic {
namespace {

TEST(JsonTest, DumpParseRoundTripsEveryType) {
  JsonValue obj;
  obj["null"] = JsonValue();
  obj["flag"] = true;
  obj["big"] = (std::int64_t{1} << 62) + 3;  // beyond double's 2^53 integers
  obj["neg"] = std::int64_t{-7};
  obj["pi"] = 3.140625;
  obj["text"] = "line\nbreak \"quoted\" back\\slash";
  JsonValue arr;
  arr.push_back(1);
  arr.push_back("two");
  obj["arr"] = arr;

  const JsonValue back = JsonValue::parse(obj.dump());
  EXPECT_TRUE(back.at("null").is_null());
  EXPECT_TRUE(back.at("flag").as_bool());
  EXPECT_EQ(back.at("big").as_int(), (std::int64_t{1} << 62) + 3);
  EXPECT_EQ(back.at("neg").as_int(), -7);
  EXPECT_DOUBLE_EQ(back.at("pi").as_double(), 3.140625);
  EXPECT_EQ(back.at("text").as_string(), "line\nbreak \"quoted\" back\\slash");
  ASSERT_EQ(back.at("arr").as_array().size(), 2u);
  EXPECT_EQ(back.at("arr").as_array()[1].as_string(), "two");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::exception);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::exception);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), std::exception);
  EXPECT_THROW(JsonValue::parse(""), std::exception);
}

TEST(ReportTest, WriterEmitsOneLinePerRecord) {
  std::ostringstream out;
  RunReportWriter writer(out);
  JsonValue a;
  a["kind"] = "run";
  a["n"] = 1;
  writer.write(a);
  JsonValue b;
  b["kind"] = "iteration";
  b["n"] = 2;
  writer.write(b);
  EXPECT_EQ(writer.records_written(), 2);

  std::istringstream in(out.str());
  const auto records = read_jsonl(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].at("kind").as_string(), "run");
  EXPECT_EQ(records[1].at("n").as_int(), 2);
}

TEST(ReportTest, FileRoundTripAndBadPathThrows) {
  const std::string path = ::testing::TempDir() + "fsaic_report_test.jsonl";
  {
    RunReportWriter writer(path);
    for (int i = 0; i < 3; ++i) {
      JsonValue rec;
      rec["i"] = i;
      writer.write(rec);
    }
  }
  const auto records = read_jsonl_file(path);
  ASSERT_EQ(records.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].at("i").as_int(), i);
  }
  EXPECT_THROW(RunReportWriter("/nonexistent-dir/x.jsonl"), std::exception);
}

TEST(ReportTest, CommStatsJsonMatchesTotalsExactly) {
  CommStats stats;
  stats.record_halo_message(0, 1, std::int64_t{1} << 40);
  stats.record_halo_message(2, 1, 24);
  stats.record_allreduce(8);
  const JsonValue json = comm_stats_to_json(stats);
  EXPECT_EQ(json.at("halo_messages").as_int(), stats.halo_messages);
  EXPECT_EQ(json.at("halo_bytes").as_int(), stats.halo_bytes);
  EXPECT_EQ(json.at("allreduce_count").as_int(), stats.allreduce_count);
  EXPECT_EQ(json.at("allreduce_bytes").as_int(), stats.allreduce_bytes);
  EXPECT_EQ(json.at("neighbor_pairs").as_int(),
            static_cast<std::int64_t>(stats.neighbor_pair_count()));
}

TEST(ReportTest, RunRecordRoundTripsThroughJsonl) {
  RunRecord rec;
  rec.matrix = "poisson2d-64";
  rec.method = "fsaie-comm f=0.01";
  rec.nranks = 8;
  rec.rows = 4096;
  rec.matrix_nnz = 20224;
  rec.converged = true;
  rec.iterations = 123;
  rec.modeled_time = 0.0625;
  rec.iter_cost = 5e-4;
  rec.precond_cost = 2e-4;
  rec.nnz_increase_pct = 12.5;
  rec.imbalance_g = 1.125;
  rec.imbalance_gt = 1.25;
  rec.precond_gflops = 3.5;
  rec.x_misses_per_gnnz = 0.375;
  rec.halo_bytes_g = 8192;
  rec.halo_msgs_g = 14;
  rec.g_nnz = 30000;
  rec.solve_halo_bytes = (std::int64_t{1} << 54) + 1;  // int64-exact territory
  rec.solve_halo_messages = 2952;
  rec.solve_allreduce_count = 369;
  rec.solve_allreduce_bytes = 5904;
  rec.solve_neighbor_pairs = 22;
  rec.setup_seconds = 0.03125;
  rec.solve_seconds = 0.015625;
  rec.setup_rows_solved = 6144;
  rec.setup_rows_reused = 2048;
  rec.setup_gram_entries = (std::int64_t{1} << 40) + 3;
  rec.provisional_fallback_rows = 2;
  rec.provisional_degenerate_rows = 1;
  rec.factor_fallback_rows = 3;
  rec.factor_degenerate_rows = 0;

  // Through the writer and parser, as the bench artifacts travel.
  std::ostringstream out;
  RunReportWriter writer(out);
  writer.write(run_record_to_json(rec));
  std::istringstream in(out.str());
  const auto records = read_jsonl(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("kind").as_string(), "run");
  const RunRecord back = run_record_from_json(records[0]);

  EXPECT_EQ(back.matrix, rec.matrix);
  EXPECT_EQ(back.method, rec.method);
  EXPECT_EQ(back.nranks, rec.nranks);
  EXPECT_EQ(back.rows, rec.rows);
  EXPECT_EQ(back.matrix_nnz, rec.matrix_nnz);
  EXPECT_EQ(back.converged, rec.converged);
  EXPECT_EQ(back.iterations, rec.iterations);
  EXPECT_DOUBLE_EQ(back.modeled_time, rec.modeled_time);
  EXPECT_DOUBLE_EQ(back.iter_cost, rec.iter_cost);
  EXPECT_DOUBLE_EQ(back.precond_cost, rec.precond_cost);
  EXPECT_DOUBLE_EQ(back.nnz_increase_pct, rec.nnz_increase_pct);
  EXPECT_DOUBLE_EQ(back.imbalance_g, rec.imbalance_g);
  EXPECT_DOUBLE_EQ(back.imbalance_gt, rec.imbalance_gt);
  EXPECT_DOUBLE_EQ(back.precond_gflops, rec.precond_gflops);
  EXPECT_DOUBLE_EQ(back.x_misses_per_gnnz, rec.x_misses_per_gnnz);
  EXPECT_EQ(back.halo_bytes_g, rec.halo_bytes_g);
  EXPECT_EQ(back.halo_msgs_g, rec.halo_msgs_g);
  EXPECT_EQ(back.g_nnz, rec.g_nnz);
  EXPECT_EQ(back.solve_halo_bytes, rec.solve_halo_bytes);
  EXPECT_EQ(back.solve_halo_messages, rec.solve_halo_messages);
  EXPECT_EQ(back.solve_allreduce_count, rec.solve_allreduce_count);
  EXPECT_EQ(back.solve_allreduce_bytes, rec.solve_allreduce_bytes);
  EXPECT_EQ(back.solve_neighbor_pairs, rec.solve_neighbor_pairs);
  EXPECT_DOUBLE_EQ(back.setup_seconds, rec.setup_seconds);
  EXPECT_DOUBLE_EQ(back.solve_seconds, rec.solve_seconds);
  EXPECT_EQ(back.setup_rows_solved, rec.setup_rows_solved);
  EXPECT_EQ(back.setup_rows_reused, rec.setup_rows_reused);
  EXPECT_EQ(back.setup_gram_entries, rec.setup_gram_entries);
  EXPECT_EQ(back.provisional_fallback_rows, rec.provisional_fallback_rows);
  EXPECT_EQ(back.provisional_degenerate_rows, rec.provisional_degenerate_rows);
  EXPECT_EQ(back.factor_fallback_rows, rec.factor_fallback_rows);
  EXPECT_EQ(back.factor_degenerate_rows, rec.factor_degenerate_rows);
}

}  // namespace
}  // namespace fsaic
