#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace fsaic {
namespace {

TEST(ExpositionTest, NamesArePrefixedAndSanitized) {
  EXPECT_EQ(prometheus_name("service.queue_us"), "fsaic_service_queue_us");
  EXPECT_EQ(prometheus_name("solve.halo-bytes/sent"),
            "fsaic_solve_halo_bytes_sent");
  EXPECT_EQ(prometheus_name("ok:name_09"), "fsaic_ok:name_09");
  EXPECT_EQ(prometheus_name("x", "app"), "app_x");
}

// The golden rendering: every series type, global and per-rank, with a name
// needing sanitization. Pinned byte-for-byte so the exposition format is a
// stable contract for scrapers.
TEST(ExpositionTest, RendersGoldenTextFormat) {
  MetricsRegistry metrics;
  metrics.add("service.completed", 7);
  metrics.add("halo.bytes", 128, 0);
  metrics.add("halo.bytes", 64, 1);
  metrics.set("queue.depth", 2.5);
  metrics.observe("latency_us", 0.5);   // bucket 0: [0, 1)
  metrics.observe("latency_us", 3.0);   // bucket 2: [2, 4)
  metrics.observe("latency_us", 3.5);   // bucket 2
  metrics.observe("latency_us", 100.0);  // bucket 7: [64, 128)
  metrics.observe("setup_us", 2.0, 3);  // per-rank histogram

  const std::string expected =
      "# TYPE fsaic_halo_bytes counter\n"
      "fsaic_halo_bytes{rank=\"0\"} 128\n"
      "fsaic_halo_bytes{rank=\"1\"} 64\n"
      "# TYPE fsaic_service_completed counter\n"
      "fsaic_service_completed 7\n"
      "# TYPE fsaic_queue_depth gauge\n"
      "fsaic_queue_depth 2.5\n"
      "# TYPE fsaic_latency_us histogram\n"
      "fsaic_latency_us_bucket{le=\"1\"} 1\n"
      "fsaic_latency_us_bucket{le=\"2\"} 1\n"
      "fsaic_latency_us_bucket{le=\"4\"} 3\n"
      "fsaic_latency_us_bucket{le=\"8\"} 3\n"
      "fsaic_latency_us_bucket{le=\"16\"} 3\n"
      "fsaic_latency_us_bucket{le=\"32\"} 3\n"
      "fsaic_latency_us_bucket{le=\"64\"} 3\n"
      "fsaic_latency_us_bucket{le=\"128\"} 4\n"
      "fsaic_latency_us_bucket{le=\"+Inf\"} 4\n"
      "fsaic_latency_us_sum 107\n"
      "fsaic_latency_us_count 4\n"
      "# TYPE fsaic_setup_us histogram\n"
      "fsaic_setup_us_bucket{rank=\"3\",le=\"1\"} 0\n"
      "fsaic_setup_us_bucket{rank=\"3\",le=\"2\"} 0\n"
      "fsaic_setup_us_bucket{rank=\"3\",le=\"4\"} 1\n"
      "fsaic_setup_us_bucket{rank=\"3\",le=\"+Inf\"} 1\n"
      "fsaic_setup_us_sum{rank=\"3\"} 2\n"
      "fsaic_setup_us_count{rank=\"3\"} 1\n";
  EXPECT_EQ(render_prometheus(metrics), expected);
}

TEST(ExpositionTest, RankSeriesSortNumericallyAfterGlobal) {
  MetricsRegistry metrics;
  metrics.add("c", 1, 10);
  metrics.add("c", 1, 2);
  metrics.add("c", 1);
  const std::string expected =
      "# TYPE fsaic_c counter\n"
      "fsaic_c 1\n"
      "fsaic_c{rank=\"2\"} 1\n"
      "fsaic_c{rank=\"10\"} 1\n";
  EXPECT_EQ(render_prometheus(metrics), expected);
}

TEST(ExpositionTest, NonRankDotSuffixStaysInMetricName) {
  MetricsRegistry metrics;
  metrics.add("cache.rank_size", 1);  // ".rank" not followed by digits only
  const std::string rendered = render_prometheus(metrics);
  EXPECT_NE(rendered.find("fsaic_cache_rank_size 1\n"), std::string::npos);
  EXPECT_EQ(rendered.find("rank=\""), std::string::npos);
}

TEST(ExpositionTest, EmptyRegistryRendersEmpty) {
  MetricsRegistry metrics;
  EXPECT_EQ(render_prometheus(metrics), "");
}

TEST(ExpositionTest, AtomicWriteReplacesWholeFile) {
  namespace fs = std::filesystem;
  const std::string path =
      testing::TempDir() + "/fsaic_exposition_atomic.prom";
  atomic_write_file(path, "first version with a long tail\n");
  atomic_write_file(path, "second\n");
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "second\n");
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "temp file must not linger";
  fs::remove(path);
}

// Hammer the registry from writer threads while rendering snapshots: every
// render must be a self-consistent exposition (cumulative buckets
// monotone, _count matching the +Inf bucket), never a torn read.
TEST(ExpositionTest, RenderIsConsistentUnderConcurrentWrites) {
  MetricsRegistry metrics;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&metrics, &stop, t] {
      int i = 0;
      while (!stop.load()) {
        metrics.add("ops", 1, static_cast<rank_t>(t));
        metrics.observe("lat_us", static_cast<double>(1 + (i % 300)));
        metrics.set("depth", static_cast<double>(i));
        ++i;
      }
    });
  }

  for (int round = 0; round < 50; ++round) {
    const auto snap = metrics.snapshot();
    const std::string rendered = render_prometheus(snap);
    // The snapshot is taken under the registry lock, so the rendering must
    // agree with the snapshot exactly: re-rendering is deterministic...
    EXPECT_EQ(render_prometheus(snap), rendered);
    // ...and the histogram in the snapshot is internally consistent.
    const auto it = snap.histograms.find("lat_us");
    if (it != snap.histograms.end()) {
      std::int64_t total = 0;
      for (const auto b : it->second.buckets) total += b;
      EXPECT_EQ(total, it->second.count);
    }
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

}  // namespace
}  // namespace fsaic
