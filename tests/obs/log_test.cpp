#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace fsaic {
namespace {

std::vector<JsonValue> parse_lines(const std::string& text) {
  std::vector<JsonValue> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(JsonValue::parse(line));
  }
  return lines;
}

TEST(LogTest, LevelNamesRoundTrip) {
  for (const auto level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                           LogLevel::Error, LogLevel::Off}) {
    EXPECT_EQ(log_level_from_string(log_level_name(level)), level);
  }
  EXPECT_THROW((void)log_level_from_string("verbose"), Error);
}

TEST(LogTest, DefaultConstructedLoggerIsDisabled) {
  Logger log;
  EXPECT_FALSE(log.enabled(LogLevel::Error));
  log.error("ignored");  // must not crash or write
  EXPECT_EQ(log.lines_written(), 0);
}

TEST(LogTest, LinesAreParseableJsonWithHeaderAndFields) {
  std::ostringstream out;
  Logger log(out, LogLevel::Debug);
  JsonValue f = JsonValue::object();
  f["rid"] = std::int64_t{42};
  f["id"] = "r42";
  log.info("service.admit", f);
  log.debug("service.dequeue");

  const auto lines = parse_lines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].at("level").as_string(), "info");
  EXPECT_EQ(lines[0].at("event").as_string(), "service.admit");
  EXPECT_EQ(lines[0].at("rid").as_int(), 42);
  EXPECT_EQ(lines[0].at("id").as_string(), "r42");
  EXPECT_GE(lines[0].at("ts_us").as_double(), 0.0);
  EXPECT_EQ(lines[1].at("level").as_string(), "debug");
  EXPECT_EQ(lines[1].find("rid"), nullptr);
  EXPECT_EQ(log.lines_written(), 2);
}

TEST(LogTest, MinimumLevelFiltersLowerEvents) {
  std::ostringstream out;
  Logger log(out, LogLevel::Warn);
  EXPECT_FALSE(log.enabled(LogLevel::Info));
  EXPECT_TRUE(log.enabled(LogLevel::Warn));
  log.debug("dropped");
  log.info("dropped");
  log.warn("kept");
  log.error("kept");

  const auto lines = parse_lines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].at("level").as_string(), "warn");
  EXPECT_EQ(lines[1].at("level").as_string(), "error");
}

TEST(LogTest, EventNamesAndFieldValuesAreEscaped) {
  std::ostringstream out;
  Logger log(out, LogLevel::Info);
  JsonValue f = JsonValue::object();
  f["path"] = "a\"b\\c\n";
  log.info("odd \"event\"", f);
  const auto lines = parse_lines(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].at("event").as_string(), "odd \"event\"");
  EXPECT_EQ(lines[0].at("path").as_string(), "a\"b\\c\n");
}

TEST(LogTest, ConcurrentWritersNeverInterleaveLines) {
  std::ostringstream out;
  Logger log(out, LogLevel::Info);
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kLines; ++i) {
        JsonValue f = JsonValue::object();
        f["thread"] = std::int64_t{t};
        f["i"] = std::int64_t{i};
        log.info("tick", f);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every line parses back — torn or interleaved writes would not.
  const auto lines = parse_lines(out.str());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kLines));
  for (const auto& line : lines) {
    EXPECT_EQ(line.at("event").as_string(), "tick");
  }
  EXPECT_EQ(log.lines_written(), kThreads * kLines);
}

TEST(LogTest, FromEnvHonoursPathAndLevel) {
  ::unsetenv("FSAIC_LOG");
  auto off = Logger::from_env();
  ASSERT_NE(off, nullptr);
  EXPECT_FALSE(off->enabled(LogLevel::Error));

  const std::string path =
      testing::TempDir() + "/fsaic_log_test_from_env.jsonl";
  ::setenv("FSAIC_LOG", path.c_str(), 1);
  ::setenv("FSAIC_LOG_LEVEL", "warn", 1);
  {
    auto log = Logger::from_env();
    ASSERT_NE(log, nullptr);
    EXPECT_FALSE(log->enabled(LogLevel::Info));
    log->warn("env.configured");
  }
  ::unsetenv("FSAIC_LOG");
  ::unsetenv("FSAIC_LOG_LEVEL");

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(JsonValue::parse(line).at("event").as_string(), "env.configured");
}

}  // namespace
}  // namespace fsaic
