#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "matgen/generators.hpp"
#include "obs/trace.hpp"
#include "solver/gmres.hpp"
#include "solver/pcg.hpp"
#include "solver/pipelined_cg.hpp"

namespace fsaic {
namespace {

DistVector random_rhs(const Layout& l, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> bg(static_cast<std::size_t>(l.global_size()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  return DistVector(l, bg);
}

int count_events(const std::vector<TraceEvent>& events, const std::string& name,
                 char phase) {
  return static_cast<int>(std::count_if(
      events.begin(), events.end(), [&](const TraceEvent& e) {
        return e.name == name && e.phase == phase;
      }));
}

TEST(TelemetryTest, SinkSeesExactlyOneSamplePerCgIteration) {
  const auto a = poisson2d(12, 12);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 1);
  DistVector x(l);
  CollectingSink sink;
  const auto r = cg_solve(d, b, x, {.rel_tol = 1e-8, .sink = &sink});
  ASSERT_TRUE(r.converged);
  ASSERT_GT(r.iterations, 0);
  ASSERT_EQ(sink.samples().size(), static_cast<std::size_t>(r.iterations));
  for (std::size_t i = 0; i < sink.samples().size(); ++i) {
    EXPECT_EQ(sink.samples()[i].iteration, static_cast<int>(i) + 1);
  }
  // The last sample carries the converged residual.
  EXPECT_DOUBLE_EQ(sink.samples().back().residual,
                   static_cast<double>(r.final_residual));
  EXPECT_LE(sink.samples().back().relative_residual, 1e-8);
}

TEST(TelemetryTest, CommDeltasAttributeTrafficToIterations) {
  const auto a = poisson2d(10, 10);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 2);
  DistVector x(l);
  CollectingSink sink;
  const auto r = cg_solve(d, b, x, {.rel_tol = 1e-8, .sink = &sink});
  ASSERT_TRUE(r.converged);

  // One spmv per CG iteration: the halo delta of every sample is exactly one
  // halo update of A, and the allreduce delta is 3 (two dots + one norm).
  std::int64_t halo_sum = 0;
  for (const auto& s : sink.samples()) {
    EXPECT_EQ(s.halo_bytes_delta, d.halo_update_bytes());
    EXPECT_EQ(s.halo_messages_delta, d.halo_update_messages());
    EXPECT_EQ(s.allreduce_delta, 3);
    EXPECT_GE(s.elapsed_us, 0.0);
    halo_sum += s.halo_bytes_delta;
  }
  // The initial residual spmv is the only traffic outside the samples.
  EXPECT_EQ(halo_sum + d.halo_update_bytes(), r.comm.halo_bytes);
}

TEST(TelemetryTest, ResidualHistoryAlwaysHoldsInitialResidual) {
  const auto a = poisson2d(8, 8);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 3);

  DistVector x1(l);
  const auto untracked = cg_solve(d, b, x1, {.rel_tol = 1e-8});
  ASSERT_EQ(untracked.residual_history.size(), 1u);
  EXPECT_EQ(untracked.residual_history.front(), untracked.initial_residual);

  DistVector x2(l);
  const auto tracked =
      cg_solve(d, b, x2, {.rel_tol = 1e-8, .track_residual_history = true});
  ASSERT_EQ(tracked.residual_history.size(),
            static_cast<std::size_t>(tracked.iterations) + 1);
  EXPECT_EQ(tracked.residual_history.front(), tracked.initial_residual);
}

TEST(TelemetryTest, ZeroRhsProducesNoSamples) {
  const auto a = poisson2d(6, 6);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  DistVector b(l);
  DistVector x(l);
  CollectingSink sink;
  const auto r = cg_solve(d, b, x, {.sink = &sink});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_TRUE(sink.samples().empty());
  ASSERT_EQ(r.residual_history.size(), 1u);
  EXPECT_EQ(r.residual_history.front(), 0.0);
}

TEST(TelemetryTest, PipelinedCgMatchesSinkContract) {
  const auto a = poisson2d(12, 12);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 4);
  DistVector x(l);
  CollectingSink sink;
  const JacobiPreconditioner jacobi(d);
  const auto r =
      pcg_solve_pipelined(d, b, x, jacobi, {.rel_tol = 1e-8, .sink = &sink});
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(sink.samples().size(), static_cast<std::size_t>(r.iterations));
  EXPECT_EQ(r.residual_history.size(), 1u);
  // Pipelined CG fuses the reductions: one allreduce per iteration.
  for (const auto& s : sink.samples()) {
    EXPECT_EQ(s.allreduce_delta, 1);
  }
}

TEST(TelemetryTest, GmresMatchesSinkContract) {
  const auto a = poisson2d(10, 10);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 5);
  DistVector x(l);
  CollectingSink sink;
  const JacobiPreconditioner jacobi(d);
  const auto r = gmres_solve(d, b, x, jacobi,
                             {.rel_tol = 1e-8, .sink = &sink});
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(sink.samples().size(), static_cast<std::size_t>(r.iterations));
  EXPECT_EQ(r.residual_history.size(), 1u);
  EXPECT_EQ(r.residual_history.front(), r.initial_residual);
}

TEST(TelemetryTest, SolverTraceContainsIterationAndCommPhases) {
  const auto a = poisson2d(10, 10);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 6);
  DistVector x(l);
  TraceRecorder trace;
  const auto r = cg_solve(d, b, x, {.rel_tol = 1e-8, .trace = &trace});
  ASSERT_TRUE(r.converged);
  const auto events = trace.events();
  EXPECT_EQ(count_events(events, "iteration", 'B'), r.iterations);
  EXPECT_EQ(count_events(events, "iteration", 'E'), r.iterations);
  // One spmv slice *per rank* per SpMV (each rank's slice is recorded from
  // the thread that executed it), for the per-iteration SpMV plus the
  // initial residual one.
  const int spmvs = 4 * (r.iterations + 1);
  EXPECT_EQ(count_events(events, "spmv_local", 'X'), spmvs);
  EXPECT_EQ(count_events(events, "halo_exchange", 'X'), spmvs);
  EXPECT_GE(count_events(events, "allreduce", 'X'), 3 * r.iterations);
  // Residual counter track: initial value + one per iteration.
  EXPECT_EQ(count_events(events, "residual", 'C'), r.iterations + 1);
}

TEST(TelemetryTest, DriverTraceContainsTheSetupPipelinePhases) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 4);
  TraceRecorder trace;
  FsaiOptions opts;
  opts.extension = ExtensionMode::CommAware;
  opts.filter = 0.1;
  opts.trace = &trace;
  const auto build = build_fsai_preconditioner(a, l, opts);
  const auto events = trace.events();
  for (const char* phase : {"pattern_build", "pattern_extension", "filtering",
                            "factorization", "distribute_factors"}) {
    EXPECT_EQ(count_events(events, phase, 'B'), 1) << phase;
    EXPECT_EQ(count_events(events, phase, 'E'), 1) << phase;
  }

  // A traced preconditioner apply adds the G / G^T sub-phases.
  auto precond = make_factorized_preconditioner(build, "fsaie-comm");
  precond->set_trace(&trace);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 7);
  DistVector x(l);
  const auto r = pcg_solve(d, b, x, *precond, {.rel_tol = 1e-8});
  ASSERT_TRUE(r.converged);
  const auto solve_events = trace.events();
  EXPECT_GT(count_events(solve_events, "apply_G", 'B'), 0);
  EXPECT_GT(count_events(solve_events, "apply_Gt", 'B'), 0);
}

}  // namespace
}  // namespace fsaic
