#include "matgen/generators.hpp"

#include <gtest/gtest.h>

#include "dense/factorizations.hpp"
#include "matgen/suite.hpp"

namespace fsaic {
namespace {

/// SPD check by dense Cholesky (use only on small matrices).
bool is_spd(const CsrMatrix& a) {
  if (!a.is_symmetric(1e-12 * std::max(a.max_abs(), 1.0))) return false;
  DenseMatrix d(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      d(i, cols[k]) = vals[k];
    }
  }
  return cholesky_factor(d);
}

TEST(GeneratorsTest, Poisson2dShape) {
  const auto a = poisson2d(4, 5);
  EXPECT_EQ(a.rows(), 20);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 4), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 5), 0.0);  // no diagonal coupling in 5-point
  EXPECT_TRUE(is_spd(a));
}

TEST(GeneratorsTest, Poisson3dShape) {
  const auto a = poisson3d(3, 3, 3);
  EXPECT_EQ(a.rows(), 27);
  // Center node has 6 neighbors + diagonal.
  EXPECT_EQ(a.row_cols(13).size(), 7u);
  EXPECT_TRUE(is_spd(a));
}

TEST(GeneratorsTest, Stencil27CenterRowHas27Entries) {
  const auto a = stencil27(4, 4, 4);
  bool found = false;
  for (index_t i = 0; i < a.rows(); ++i) {
    if (a.row_cols(i).size() == 27u) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(is_spd(a));
}

TEST(GeneratorsTest, AnisotropicWeights) {
  const auto a = anisotropic2d(4, 4, 0.1);
  EXPECT_NEAR(a.at(5, 4), -0.1, 1e-15);   // x-neighbor
  EXPECT_NEAR(a.at(5, 1), -1.0, 1e-15);   // y-neighbor
  EXPECT_TRUE(is_spd(a));
}

TEST(GeneratorsTest, GradedCoefficientsAreSymmetricSpd) {
  EXPECT_TRUE(is_spd(graded2d(6, 6, 1000.0)));
  EXPECT_TRUE(is_spd(graded3d(4, 4, 4, 100.0)));
}

TEST(GeneratorsTest, ShiftedAddsToDiagonalOnly) {
  const auto a = poisson2d(3, 3);
  const auto s = shifted(a, 2.5);
  EXPECT_DOUBLE_EQ(s.at(0, 0), a.at(0, 0) + 2.5);
  EXPECT_DOUBLE_EQ(s.at(0, 1), a.at(0, 1));
  EXPECT_EQ(s.nnz(), a.nnz());
}

TEST(GeneratorsTest, BlockExpandIsKroneckerProduct) {
  const auto s = poisson2d(2, 2);
  const auto blk = spd_block(2, 0.3);
  const auto a = block_expand(s, blk);
  EXPECT_EQ(a.rows(), s.rows() * 2);
  for (index_t i = 0; i < s.rows(); ++i) {
    for (index_t j : s.pattern().row(i)) {
      for (index_t r = 0; r < 2; ++r) {
        for (index_t c = 0; c < 2; ++c) {
          EXPECT_DOUBLE_EQ(a.at(i * 2 + r, j * 2 + c), s.at(i, j) * blk(r, c));
        }
      }
    }
  }
  EXPECT_TRUE(is_spd(a));
}

TEST(GeneratorsTest, RandomLaplacianIsSpdAndIrregular) {
  const auto a = random_laplacian(200, 3, 0.05, 7);
  EXPECT_TRUE(a.is_symmetric(1e-12));
  // Degrees vary (circuit-like): min and max row sizes differ.
  std::size_t dmin = 1000;
  std::size_t dmax = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    dmin = std::min(dmin, a.row_cols(i).size());
    dmax = std::max(dmax, a.row_cols(i).size());
  }
  EXPECT_LT(dmin, dmax);
}

TEST(GeneratorsTest, SmallRandomLaplacianIsSpd) {
  EXPECT_TRUE(is_spd(random_laplacian(40, 4, 0.1, 3)));
}

TEST(GeneratorsTest, RandomSpdIsSpd) {
  EXPECT_TRUE(is_spd(random_spd(40, 5, 11)));
}

TEST(GeneratorsTest, BandSpdHasExpectedBandwidth) {
  const auto a = band_spd(30, 4, 0.5);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_LE(std::abs(i - j), 4);
    }
  }
  EXPECT_TRUE(is_spd(a));
}

TEST(GeneratorsTest, DeterministicAcrossCalls) {
  const auto a = random_laplacian(100, 3, 0.1, 42);
  const auto b = random_laplacian(100, 3, 0.1, 42);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t k = 0; k < a.values().size(); ++k) {
    EXPECT_EQ(a.values()[k], b.values()[k]);
  }
  const auto c = random_laplacian(100, 3, 0.1, 43);
  const bool identical =
      a.nnz() == c.nnz() &&
      std::equal(a.values().begin(), a.values().end(), c.values().begin()) &&
      std::equal(a.col_idx().begin(), a.col_idx().end(), c.col_idx().begin());
  EXPECT_FALSE(identical) << "different seeds must give different matrices";
}

TEST(SuiteTest, SmallSuiteHas39UniqueEntries) {
  const auto& suite = small_suite();
  ASSERT_EQ(suite.size(), 39u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(suite[i].name, suite[j].name);
    }
    EXPECT_GT(suite[i].paper_fsai_iters, 0);
    EXPECT_GE(suite[i].paper_fsai_iters, suite[i].paper_fsaie_comm_iters);
  }
}

TEST(SuiteTest, LargeSuiteHas8Entries) {
  EXPECT_EQ(large_suite().size(), 8u);
}

TEST(SuiteTest, LookupByEitherName) {
  EXPECT_EQ(suite_entry("thermal2-sim").paper_name, "thermal2");
  EXPECT_EQ(suite_entry("thermal2").name, "thermal2-sim");
  EXPECT_EQ(suite_entry("Queen_4147").type, "2D/3D Problem");
  EXPECT_THROW((void)suite_entry("nope"), Error);
}

class SuiteEntryProperty : public ::testing::TestWithParam<int> {};

TEST_P(SuiteEntryProperty, EveryMatrixIsSymmetricWithPositiveDiagonal) {
  const auto& entry = small_suite()[static_cast<std::size_t>(GetParam())];
  const auto a = entry.generate();
  EXPECT_GT(a.rows(), 100) << entry.name;
  EXPECT_GT(a.nnz(), 1000) << entry.name;
  EXPECT_TRUE(a.is_symmetric(1e-12 * a.max_abs())) << entry.name;
  for (index_t i = 0; i < a.rows(); ++i) {
    ASSERT_GT(a.at(i, i), 0.0) << entry.name << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(All39, SuiteEntryProperty, ::testing::Range(0, 39));

}  // namespace
}  // namespace fsaic
