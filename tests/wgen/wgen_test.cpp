// Determinism contract of the rank-local workload generators: identical
// global operators (bitwise, via EXPECT_EQ on the CSR arrays) regardless of
// rank count, thread count, or executor, plus golden FNV-1a fingerprints
// pinning each family's output across refactors.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.hpp"
#include "exec/exec_policy.hpp"
#include "exec/executor.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "sparse/fingerprint.hpp"
#include "wgen/wgen.hpp"

namespace fsaic {
namespace {

using wgen::Family;
using wgen::ResolvedWorkload;
using wgen::WorkloadSpec;

// ---- spec parsing -------------------------------------------------------

TEST(WorkloadSpecTest, ParsesStencilSpec) {
  const WorkloadSpec s = wgen::parse_workload_spec("stencil3d:nx=8,ny=4,nz=2");
  EXPECT_EQ(s.family, Family::Stencil3D);
  EXPECT_EQ(s.nx, 8);
  EXPECT_EQ(s.ny, 4);
  EXPECT_EQ(s.nz, 2);
  EXPECT_EQ(s.seed, 1u);
}

TEST(WorkloadSpecTest, ParsesIssueExampleSpellings) {
  // "rpn=fixed" is an accepted no-op (fixed global size is the default);
  // "radius=auto" resolves at generation time.
  const WorkloadSpec a = wgen::parse_workload_spec("stencil3d:n=100,rpn=fixed");
  EXPECT_EQ(a.n, 100);
  EXPECT_EQ(a.rows_per_rank, 0);
  const WorkloadSpec b =
      wgen::parse_workload_spec("rgg2d:rows_per_rank=65536,radius=auto");
  EXPECT_EQ(b.rows_per_rank, 65536);
  EXPECT_EQ(b.radius, 0.0);
}

TEST(WorkloadSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW((void)wgen::parse_workload_spec("nosuch:n=4"), Error);
  EXPECT_THROW((void)wgen::parse_workload_spec("stencil2d:bogus=1"), Error);
  EXPECT_THROW((void)wgen::parse_workload_spec("stencil2d:n=abc"), Error);
  EXPECT_THROW((void)wgen::parse_workload_spec("stencil2d:n="), Error);
  EXPECT_THROW((void)wgen::parse_workload_spec("stencil2d:,"), Error);
  EXPECT_THROW((void)wgen::parse_workload_spec("rgg2d:radius=1.5"), Error);
  EXPECT_THROW((void)wgen::resolve_workload(
                   wgen::parse_workload_spec("rgg2d:radius=0.1"), 4),
               Error);  // no point count given
}

TEST(WorkloadSpecTest, SpecStringRoundTrips) {
  for (const char* text :
       {"stencil3d:nx=8,ny=4,nz=2", "rgg2d:n=500,seed=7",
        "rmat:n=64,edge_factor=4,shift=1.5", "rgg3d:rows_per_rank=1000"}) {
    const WorkloadSpec s = wgen::parse_workload_spec(text);
    EXPECT_EQ(wgen::parse_workload_spec(s.to_string()), s) << text;
  }
}

TEST(WorkloadSpecTest, JsonRoundTrips) {
  const WorkloadSpec s =
      wgen::parse_workload_spec("rgg3d:n=300,seed=9,radius=0.2");
  const WorkloadSpec back =
      wgen::workload_spec_from_json(wgen::workload_spec_to_json(s));
  EXPECT_EQ(back, s);
  EXPECT_THROW((void)wgen::workload_spec_from_json(
                   JsonValue::parse(R"({"nx": 4})")),
               Error);
  EXPECT_THROW((void)wgen::workload_spec_from_json(
                   JsonValue::parse(R"({"family": "stencil2d", "nx": "x"})")),
               Error);
}

TEST(WorkloadSpecTest, IsWorkloadSpecSeparatesSuiteNames) {
  EXPECT_TRUE(wgen::is_workload_spec("stencil3d:n=10"));
  EXPECT_FALSE(wgen::is_workload_spec("poisson2d_64"));
}

// ---- resolution ---------------------------------------------------------

TEST(WorkloadResolveTest, WeakScalingGrowsLastDimension) {
  const WorkloadSpec s =
      wgen::parse_workload_spec("stencil3d:nx=8,ny=8,rows_per_rank=128");
  const ResolvedWorkload w1 = wgen::resolve_workload(s, 1);
  const ResolvedWorkload w4 = wgen::resolve_workload(s, 4);
  EXPECT_EQ(w1.rows, 128);
  EXPECT_EQ(w1.nz, 2);
  EXPECT_EQ(w4.rows, 512);
  EXPECT_EQ(w4.nz, 8);
  // Fixed-size specs ignore the rank count entirely.
  const WorkloadSpec f = wgen::parse_workload_spec("stencil3d:n=6");
  EXPECT_EQ(wgen::resolve_workload(f, 1), wgen::resolve_workload(f, 7));
}

TEST(WorkloadResolveTest, RmatRoundsUpToPowerOfTwo) {
  const ResolvedWorkload w =
      wgen::resolve_workload(wgen::parse_workload_spec("rmat:n=100"), 1);
  EXPECT_EQ(w.rows, 128);
  EXPECT_EQ(w.scale, 7);
  EXPECT_EQ(w.edges, 128 * 8);
}

TEST(WorkloadResolveTest, RggAutoRadiusKeepsCellSideAboveRadius) {
  for (const char* text : {"rgg2d:n=500", "rgg3d:n=300", "rgg2d:n=40000"}) {
    const ResolvedWorkload w =
        wgen::resolve_workload(wgen::parse_workload_spec(text), 1);
    ASSERT_GT(w.radius, 0.0) << text;
    EXPECT_LE(w.radius, 1.0 / static_cast<double>(w.cells)) << text;
  }
}

// ---- generation: differential vs sequential reference -------------------

const char* const kFamilySpecs[] = {
    "stencil2d:nx=13,ny=9",
    "stencil3d:nx=5,ny=6,nz=7",
    "stencil27:nx=5,ny=4,nz=3",
    "rgg2d:n=500,seed=3",
    "rgg3d:n=300,seed=5",
    "rmat:n=128,edge_factor=4,seed=7",
};

void expect_same_matrix(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::vector<offset_t>(a.row_ptr().begin(), a.row_ptr().end()),
            std::vector<offset_t>(b.row_ptr().begin(), b.row_ptr().end()));
  EXPECT_EQ(std::vector<index_t>(a.col_idx().begin(), a.col_idx().end()),
            std::vector<index_t>(b.col_idx().begin(), b.col_idx().end()));
  // EXPECT_EQ on doubles: bitwise-identical values, not approximately equal.
  EXPECT_EQ(std::vector<value_t>(a.values().begin(), a.values().end()),
            std::vector<value_t>(b.values().begin(), b.values().end()));
}

TEST(WgenDifferentialTest, EveryFamilyMatchesSequentialAssemblyAtAnyRankCount) {
  for (const char* text : kFamilySpecs) {
    SCOPED_TRACE(text);
    const ResolvedWorkload w =
        wgen::resolve_workload(wgen::parse_workload_spec(text), 1);
    const CsrMatrix global = wgen::generate_global(w);
    ASSERT_EQ(global.rows(), w.rows);
    const MatrixFingerprint ref = fingerprint_of(global);
    for (const rank_t nranks : {1, 2, 3, 5, 8}) {
      SCOPED_TRACE(nranks);
      wgen::WgenStats stats;
      const DistCsr d = wgen::generate_dist(w, nranks, CommConfig{}, &stats);
      expect_same_matrix(d.to_global(), global);
      EXPECT_EQ(fingerprint_rank_local(d), ref);
      EXPECT_EQ(stats.nnz, global.nnz());
      EXPECT_EQ(stats.rows, global.rows());
    }
  }
}

TEST(WgenDifferentialTest, FromRankLocalBlocksMatchDistribute) {
  const ResolvedWorkload w = wgen::resolve_workload(
      wgen::parse_workload_spec("rgg2d:n=400,seed=11"), 1);
  const CsrMatrix global = wgen::generate_global(w);
  const rank_t nranks = 4;
  const DistCsr gen = wgen::generate_dist(w, nranks, CommConfig{});
  const DistCsr ref =
      DistCsr::distribute(global, Layout::blocked(w.rows, nranks), CommConfig{});
  for (rank_t p = 0; p < nranks; ++p) {
    SCOPED_TRACE(p);
    const RankBlock& g = gen.block(p);
    const RankBlock& r = ref.block(p);
    expect_same_matrix(g.matrix, r.matrix);
    EXPECT_EQ(g.ghost_gids, r.ghost_gids);
    EXPECT_EQ(g.local_entries, r.local_entries);
    EXPECT_EQ(g.halo_entries, r.halo_entries);
    EXPECT_EQ(g.interior_rows, r.interior_rows);
    EXPECT_EQ(g.boundary_rows, r.boundary_rows);
    ASSERT_EQ(g.recv.size(), r.recv.size());
    ASSERT_EQ(g.send.size(), r.send.size());
    for (std::size_t k = 0; k < g.recv.size(); ++k) {
      EXPECT_EQ(g.recv[k].rank, r.recv[k].rank);
      EXPECT_EQ(g.recv[k].gids, r.recv[k].gids);
    }
    for (std::size_t k = 0; k < g.send.size(); ++k) {
      EXPECT_EQ(g.send[k].rank, r.send[k].rank);
      EXPECT_EQ(g.send[k].gids, r.send[k].gids);
    }
  }
}

TEST(WgenDifferentialTest, ThreadedExecutorGeneratesIdenticalOperators) {
  const auto threaded = make_executor({.nthreads = 4});
  for (const char* text : kFamilySpecs) {
    SCOPED_TRACE(text);
    const ResolvedWorkload w =
        wgen::resolve_workload(wgen::parse_workload_spec(text), 1);
    const DistCsr seq = wgen::generate_dist(w, 6, CommConfig{});
    const DistCsr par =
        wgen::generate_dist(w, 6, CommConfig{}, nullptr, threaded.get());
    EXPECT_EQ(fingerprint_rank_local(seq), fingerprint_rank_local(par));
    expect_same_matrix(seq.to_global(), par.to_global());
  }
}

TEST(WgenTest, GeneratedOperatorsAreSymmetricWithPositiveDiagonal) {
  for (const char* text : kFamilySpecs) {
    SCOPED_TRACE(text);
    const ResolvedWorkload w =
        wgen::resolve_workload(wgen::parse_workload_spec(text), 1);
    const CsrMatrix global = wgen::generate_global(w);
    EXPECT_TRUE(global.is_symmetric());
    for (const value_t d : global.diagonal()) EXPECT_GT(d, 0.0);
  }
}

TEST(WgenTest, StatsProveRankLocalFootprint) {
  const ResolvedWorkload w = wgen::resolve_workload(
      wgen::parse_workload_spec("stencil3d:nx=16,ny=16,nz=64"), 1);
  wgen::WgenStats stats;
  (void)wgen::generate_dist(w, 8, CommConfig{}, &stats);
  EXPECT_EQ(stats.rows, 16 * 16 * 64);
  EXPECT_EQ(stats.nranks, 8);
  EXPECT_EQ(stats.max_rank_rows, 16 * 16 * 8);
  // Peak per-rank nnz ~ nnz / nranks: the blocked layout cuts between grid
  // planes, so the imbalance is one plane of entries at most.
  EXPECT_LT(stats.balance(), 1.05);
  EXPECT_GT(stats.generate_seconds, 0.0);
}

// ---- golden fingerprints ------------------------------------------------

// Pinned content hashes of small instances of every family. These freeze
// the exact bit patterns generated operators are made of: a refactor that
// changes hashing, point placement, edge descent, or value synthesis MUST
// show up here and bump the spec semantics deliberately.
TEST(WgenGoldenTest, SmallInstanceFingerprintsArePinned) {
  const std::pair<const char*, const char*> golden[] = {
      {"stencil2d:nx=13,ny=9", "80dc2db69395452c"},
      {"stencil3d:nx=5,ny=6,nz=7", "1df97ff41f6c008c"},
      {"stencil27:nx=5,ny=4,nz=3", "4f55c405871fccce"},
      {"rgg2d:n=500,seed=3", "2b9dbf0681b94380"},
      {"rgg3d:n=300,seed=5", "b1649e358e86b6e6"},
      {"rmat:n=128,edge_factor=4,seed=7", "79d6981ca97c606c"},
  };
  for (const auto& [text, expected] : golden) {
    SCOPED_TRACE(text);
    const ResolvedWorkload w =
        wgen::resolve_workload(wgen::parse_workload_spec(text), 1);
    const DistCsr d = wgen::generate_dist(w, 3, CommConfig{});
    EXPECT_EQ(hash_hex(fingerprint_rank_local(d).content_hash), expected);
  }
}

// ---- end-to-end solve ---------------------------------------------------

TEST(WgenSolveTest, RankLocalPathSolvesBitIdenticallyToDistributePath) {
  const ResolvedWorkload w = wgen::resolve_workload(
      wgen::parse_workload_spec("stencil3d:nx=8,ny=8,nz=16"), 1);
  const rank_t nranks = 4;
  const DistCsr gen = wgen::generate_dist(w, nranks, CommConfig{});
  const DistCsr ref = DistCsr::distribute(
      wgen::generate_global(w), Layout::blocked(w.rows, nranks), CommConfig{});

  Rng rng(2022);
  std::vector<value_t> b(static_cast<std::size_t>(w.rows));
  for (auto& v : b) v = rng.next_uniform(-1.0, 1.0);

  const auto solve = [&](const DistCsr& a) {
    const JacobiPreconditioner jac(a);
    DistVector x(a.row_layout());
    SolveOptions opts;
    opts.rel_tol = 1e-8;
    opts.max_iterations = 400;
    opts.track_residual_history = true;
    return pcg_solve(a, DistVector(a.row_layout(), b), x, jac, opts);
  };
  const SolveResult rg = solve(gen);
  const SolveResult rr = solve(ref);
  EXPECT_TRUE(rg.converged);
  EXPECT_EQ(rg.iterations, rr.iterations);
  EXPECT_EQ(rg.residual_history, rr.residual_history);
}

// ---- from_rank_local validation -----------------------------------------

TEST(FromRankLocalTest, RejectsMalformedRows) {
  const Layout layout = Layout::blocked(4, 2);
  // Wrong row count for the rank.
  EXPECT_THROW((void)DistCsr::from_rank_local(
                   layout, [](rank_t) { return RankLocalRows{{0}, {}, {}}; },
                   CommConfig{}),
               Error);
  // Column id outside the layout.
  EXPECT_THROW(
      (void)DistCsr::from_rank_local(
          layout,
          [](rank_t) {
            return RankLocalRows{{0, 1, 2}, {0, 99}, {1.0, 1.0}};
          },
          CommConfig{}),
      Error);
}

}  // namespace
}  // namespace fsaic
