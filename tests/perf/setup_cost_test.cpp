#include "perf/setup_cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "matgen/generators.hpp"

namespace fsaic {
namespace {

TEST(SetupCostTest, FlopsMatchHandComputation) {
  // Pattern with rows of sizes 1 and 2: flops = (1/3 + 2 + 8) + (8/3 + 8 + 32).
  const auto p = SparsityPattern::from_rows(2, 2, {{0}, {0, 1}});
  const auto cost = estimate_factor_setup(p, Layout::blocked(2, 1),
                                          machine_skylake(), 1);
  EXPECT_NEAR(cost.row_solve_flops, 1.0 / 3.0 + 2.0 + 8.0 / 3.0 + 8.0, 1e-12);
  EXPECT_NEAR(cost.gather_flops, 8.0 * 1.0 + 8.0 * 4.0, 1e-12);
  EXPECT_GT(cost.time, 0.0);
}

TEST(SetupCostTest, MoreThreadsReduceTime) {
  const auto a = poisson2d(20, 20);
  const auto p = a.pattern().lower_triangle();
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto t1 = estimate_factor_setup(p, l, machine_skylake(), 1);
  const auto t8 = estimate_factor_setup(p, l, machine_skylake(), 8);
  EXPECT_NEAR(t1.time / t8.time, 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(t1.row_solve_flops, t8.row_solve_flops);
}

TEST(SetupCostTest, DenserPatternCostsMore) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto lvl1 = estimate_factor_setup(a.pattern().lower_triangle(), l,
                                          machine_skylake(), 1);
  const auto lvl2 = estimate_factor_setup(
      a.pattern().symbolic_power(2).lower_triangle(), l, machine_skylake(), 1);
  EXPECT_GT(lvl2.time, lvl1.time);
  EXPECT_GT(lvl2.row_solve_flops, lvl1.row_solve_flops);
}

TEST(SetupCostTest, BuildSetupCountsTwoPassesWhenFiltering) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 2);

  FsaiOptions plain;
  const auto build_plain = build_fsai_preconditioner(a, l, plain);
  const auto cost_plain =
      estimate_build_setup(build_plain, l, machine_skylake(), 1);

  FsaiOptions ext;
  ext.extension = ExtensionMode::CommAware;
  ext.cache_line_bytes = 256;
  ext.filter = 0.05;
  const auto build_ext = build_fsai_preconditioner(a, l, ext);
  const auto cost_ext = estimate_build_setup(build_ext, l, machine_skylake(), 1);

  // Two passes over a larger pattern: clearly more than twice the baseline.
  EXPECT_GT(cost_ext.time, 2.0 * cost_plain.time);
}

TEST(SetupCostTest, ImbalancedLayoutPenalizedByMaxRank) {
  const auto a = poisson2d(16, 16);
  const auto p = a.pattern().lower_triangle();
  const index_t n = a.rows();
  const auto balanced = estimate_factor_setup(p, Layout::blocked(n, 4),
                                              machine_skylake(), 1);
  const Layout skew({0, 7 * n / 10, 8 * n / 10, 9 * n / 10, n});
  const auto skewed = estimate_factor_setup(p, skew, machine_skylake(), 1);
  EXPECT_GT(skewed.time, balanced.time);
}

TEST(AmortizationTest, BreakEvenArithmetic) {
  // Extra setup 10, per-solve gain 2 → break even after 5 solves.
  EXPECT_DOUBLE_EQ(solves_to_amortize(1.0, 10.0, 11.0, 8.0), 5.0);
  // Candidate cheaper in setup AND per solve → immediately better.
  EXPECT_DOUBLE_EQ(solves_to_amortize(5.0, 10.0, 3.0, 8.0), 0.0);
  // No per-solve gain and more setup → never.
  EXPECT_TRUE(std::isinf(solves_to_amortize(1.0, 8.0, 2.0, 8.0)));
  // No per-solve gain but cheaper setup → ahead from the start (0), even
  // though the baseline eventually overtakes; the function reports the
  // first break-even only.
  EXPECT_DOUBLE_EQ(solves_to_amortize(2.0, 8.0, 1.0, 9.0), 0.0);
}

}  // namespace
}  // namespace fsaic
