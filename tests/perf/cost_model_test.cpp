#include "perf/cost_model.hpp"

#include <gtest/gtest.h>

#include "core/fsai_driver.hpp"
#include "matgen/generators.hpp"

namespace fsaic {
namespace {

TEST(MachineTest, PresetsMatchPaperCacheLines) {
  EXPECT_EQ(machine_skylake().l1.line_bytes, 64);
  EXPECT_EQ(machine_a64fx().l1.line_bytes, 256);
  EXPECT_EQ(machine_zen2().l1.line_bytes, 64);
  EXPECT_EQ(machine_by_name("a64fx").name, "a64fx");
  EXPECT_THROW((void)machine_by_name("m1"), Error);
}

TEST(MachineTest, DerivedCostsArePositive) {
  for (const auto& m : {machine_skylake(), machine_a64fx(), machine_zen2()}) {
    EXPECT_GT(m.nnz_stream_cost(), 0.0) << m.name;
    EXPECT_GT(m.miss_cost(), m.nnz_stream_cost()) << m.name;
    EXPECT_GT(m.nnz_flop_cost(), 0.0) << m.name;
  }
}

TEST(CostModelTest, MoreThreadsShrinkCompute) {
  const auto a = poisson2d(24, 24);
  const auto d = DistCsr::distribute(a, Layout::blocked(a.rows(), 4));
  const CostModel one(machine_skylake(), {.threads_per_rank = 1});
  const CostModel eight(machine_skylake(), {.threads_per_rank = 8});
  EXPECT_GT(one.spmv_cost(d).compute, eight.spmv_cost(d).compute);
  // Communication is unaffected by the thread count.
  EXPECT_DOUBLE_EQ(one.spmv_cost(d).comm, eight.spmv_cost(d).comm);
}

TEST(CostModelTest, MoreRanksMeanMoreCommLessCompute) {
  const auto a = poisson2d(32, 32);
  const auto d2 = DistCsr::distribute(a, Layout::blocked(a.rows(), 2));
  const auto d8 = DistCsr::distribute(a, Layout::blocked(a.rows(), 8));
  const CostModel cm(machine_skylake(), {.threads_per_rank = 1});
  EXPECT_GT(cm.spmv_cost(d2).compute, cm.spmv_cost(d8).compute);
  EXPECT_LT(cm.spmv_cost(d2).comm, cm.spmv_cost(d8).comm);
}

TEST(CostModelTest, AllreduceGrowsLogarithmically) {
  const CostModel cm(machine_skylake(), {});
  EXPECT_DOUBLE_EQ(cm.allreduce_cost(1), 0.0);
  const double c2 = cm.allreduce_cost(2);
  const double c4 = cm.allreduce_cost(4);
  const double c16 = cm.allreduce_cost(16);
  EXPECT_GT(c2, 0.0);
  EXPECT_NEAR(c4 / c2, 2.0, 1e-12);
  EXPECT_NEAR(c16 / c2, 4.0, 1e-12);
}

TEST(CostModelTest, ImbalancedDistributionCostsMore) {
  const auto a = poisson2d(20, 20);
  const auto balanced = DistCsr::distribute(a, Layout::blocked(a.rows(), 4));
  // Skewed: rank 0 owns 70% of rows.
  const index_t n = a.rows();
  const Layout skew({0, 7 * n / 10, 8 * n / 10, 9 * n / 10, n});
  const auto skewed = DistCsr::distribute(a, skew);
  const CostModel cm(machine_skylake(), {});
  EXPECT_GT(cm.spmv_cost(skewed).compute, cm.spmv_cost(balanced).compute);
}

TEST(CostModelTest, PcgIterationCostBreakdownAddsUp) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto build = build_fsai_preconditioner(a, l, FsaiOptions{});
  const auto a_dist = DistCsr::distribute(a, l);
  const CostModel cm(machine_skylake(), {});
  const auto cost = cm.pcg_iteration_cost(a_dist, build.g_dist, build.gt_dist);
  EXPECT_GT(cost.spmv_a.total(), 0.0);
  EXPECT_GT(cost.precond_total(), 0.0);
  EXPECT_GT(cost.blas1, 0.0);
  EXPECT_GT(cost.allreduce, 0.0);
  EXPECT_NEAR(cost.total(),
              cost.spmv_a.total() + cost.precond_g.total() +
                  cost.precond_gt.total() + cost.blas1 + cost.allreduce,
              1e-15);
}

TEST(CostModelTest, ExtensionBarelyIncreasesPrecondCost) {
  // The heart of the paper: a comm-aware cache-line extension adds nnz but
  // almost no per-iteration cost. Assert the modeled cost grows by far less
  // than the nnz growth.
  const auto a = poisson2d(40, 40);
  const Layout l = Layout::blocked(a.rows(), 4);

  const auto plain = build_fsai_preconditioner(a, l, FsaiOptions{});
  FsaiOptions ext_opts;
  ext_opts.extension = ExtensionMode::CommAware;
  ext_opts.cache_line_bytes = 256;
  const auto ext = build_fsai_preconditioner(a, l, ext_opts);
  ASSERT_GT(ext.nnz_increase_pct, 20.0);  // substantial extension

  const auto a_dist = DistCsr::distribute(a, l);
  const CostModel cm(machine_a64fx(), {});
  const auto c_plain = cm.pcg_iteration_cost(a_dist, plain.g_dist, plain.gt_dist);
  const auto c_ext = cm.pcg_iteration_cost(a_dist, ext.g_dist, ext.gt_dist);
  const double cost_growth_pct =
      100.0 * (c_ext.precond_total() - c_plain.precond_total()) /
      c_plain.precond_total();
  EXPECT_LT(cost_growth_pct, ext.nnz_increase_pct * 0.8)
      << "extension cost should grow much slower than its nnz";
}

TEST(CostModelTest, PrecondGflopsPositiveAndHigherOnZen2) {
  const auto a = poisson2d(20, 20);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto build = build_fsai_preconditioner(a, l, FsaiOptions{});
  const CostModel sky(machine_skylake(), {});
  const CostModel zen(machine_zen2(), {});
  const double g_sky = sky.precond_gflops_per_process(build.g_dist, build.gt_dist);
  const double g_zen = zen.precond_gflops_per_process(build.g_dist, build.gt_dist);
  EXPECT_GT(g_sky, 0.0);
  // The paper observes much higher FLOP/s on Zen 2 — flops_per_core dominates
  // only when not bandwidth-bound; just assert both are sane and nonzero.
  EXPECT_GT(g_zen, 0.0);
}

TEST(CostModelTopologyTest, DefaultCommConfigReproducesHistoricCosts) {
  const auto a = poisson2d(18, 18);
  const Layout l = Layout::blocked(a.rows(), 8);
  const auto d = DistCsr::distribute(a, l);
  const CostModel historic(machine_skylake(), {});
  const CostModel explicit_flat(machine_skylake(),
                                {.comm = CommConfig{CommMode::Flat, 1}});
  // The flat default must price exactly like the pre-topology model.
  EXPECT_EQ(historic.spmv_cost(d).comm, explicit_flat.spmv_cost(d).comm);
  EXPECT_EQ(historic.allreduce_cost(8), explicit_flat.allreduce_cost(8));
}

TEST(CostModelTopologyTest, NodeAwareCommIsNeverDearerThanFlat) {
  const auto a = poisson2d(18, 18);
  const Layout l = Layout::blocked(a.rows(), 8);
  const auto d = DistCsr::distribute(a, l);
  const CostModel flat(machine_skylake(), {});
  const CostModel aware(machine_skylake(),
                        {.comm = CommConfig{CommMode::NodeAware, 4}});
  // Intra-node alpha/beta are cheaper than the network's, and aggregation
  // shares network latencies, so the modeled comm cost can only drop.
  EXPECT_LT(aware.spmv_cost(d).comm, flat.spmv_cost(d).comm);
  EXPECT_EQ(aware.spmv_cost(d).compute, flat.spmv_cost(d).compute);
}

TEST(CostModelTopologyTest, HierarchicalAllreduceBeatsFlatTree) {
  const CostModel flat(machine_skylake(), {});
  const CostModel aware(machine_skylake(),
                        {.comm = CommConfig{CommMode::NodeAware, 8}});
  // 64 ranks in nodes of 8: 3 intra + 3 inter stages per sweep instead of
  // 6 network stages — strictly cheaper whenever intra rates win.
  EXPECT_LT(aware.allreduce_cost(64), flat.allreduce_cost(64));
  // Degenerate single-rank reduction is free either way.
  EXPECT_EQ(aware.allreduce_cost(1), flat.allreduce_cost(1));
}

TEST(CostModelTest, RankCacheScalesWithThreads) {
  const CostModel cm(machine_skylake(), {.threads_per_rank = 4});
  EXPECT_EQ(cm.rank_cache().size_bytes, 4 * machine_skylake().l1.size_bytes);
  EXPECT_EQ(cm.rank_cache().line_bytes, machine_skylake().l1.line_bytes);
}

}  // namespace
}  // namespace fsaic
