#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "matgen/generators.hpp"

#include "harness/table.hpp"

namespace fsaic {
namespace {

/// A tiny ad-hoc suite entry so harness tests stay fast.
SuiteEntry tiny_entry() {
  SuiteEntry e;
  e.name = "tiny-poisson";
  e.paper_name = "tiny";
  e.type = "2D/3D Problem";
  e.paper_fsai_iters = 100;
  e.paper_fsaie_comm_iters = 80;
  e.generate = [] { return poisson2d(18, 18); };
  return e;
}

ExperimentConfig fast_config() {
  ExperimentConfig cfg;
  cfg.machine = machine_skylake();
  cfg.nnz_per_rank = 400;
  cfg.max_ranks = 4;
  cfg.solve.max_iterations = 2000;
  return cfg;
}

TEST(ExperimentTest, PrepareIsCachedAndDeterministic) {
  ExperimentRunner runner(fast_config());
  const auto e = tiny_entry();
  const auto& s1 = runner.prepare(e);
  const auto& s2 = runner.prepare(e);
  EXPECT_EQ(&s1, &s2);  // same object: cached
  // poisson2d(18,18) has 1548 nnz → 1548/400 = 3 ranks under the rule.
  EXPECT_EQ(s1.nranks, 3);
  EXPECT_EQ(s1.matrix.rows(), 18 * 18);
  // RHS normalized to the matrix max norm.
  value_t bmax = 0.0;
  for (rank_t p = 0; p < s1.nranks; ++p) {
    for (value_t v : s1.b.block(p)) {
      bmax = std::max(bmax, std::abs(v));
    }
  }
  EXPECT_NEAR(bmax, s1.matrix.max_abs(), 1e-12);
}

TEST(ExperimentTest, RunRecordsConsistentMetrics) {
  ExperimentRunner runner(fast_config());
  const auto e = tiny_entry();
  const auto& base = runner.baseline(e);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.iterations, 0);
  EXPECT_GT(base.modeled_time, 0.0);
  EXPECT_NEAR(base.modeled_time, base.iterations * base.iter_cost, 1e-12);
  EXPECT_EQ(base.nnz_increase_pct, 0.0);
  EXPECT_EQ(base.method, "fsai");

  const MethodConfig comm{ExtensionMode::CommAware, FilterStrategy::Dynamic, 0.01};
  const auto& rec = runner.run(e, comm);
  EXPECT_TRUE(rec.converged);
  EXPECT_LE(rec.iterations, base.iterations);
  EXPECT_GT(rec.nnz_increase_pct, 0.0);
  // Cached second call returns the identical record.
  EXPECT_EQ(&runner.run(e, comm), &rec);
}

TEST(ExperimentTest, ImprovementMath) {
  RunRecord base;
  base.iterations = 200;
  base.modeled_time = 2.0;
  RunRecord better;
  better.iterations = 150;
  better.modeled_time = 1.5;
  const auto imp = improvement_over(base, better);
  EXPECT_DOUBLE_EQ(imp.iterations_pct, 25.0);
  EXPECT_DOUBLE_EQ(imp.time_pct, 25.0);

  RunRecord worse;
  worse.iterations = 220;
  worse.modeled_time = 2.2;
  const auto deg = improvement_over(base, worse);
  EXPECT_NEAR(deg.time_pct, -10.0, 1e-10);
}

TEST(ExperimentTest, SummaryRowAggregates) {
  const std::vector<Improvement> imps{{10.0, 8.0}, {30.0, 22.0}, {-5.0, -4.0}};
  const auto row = summarize(imps);
  EXPECT_NEAR(row.avg_iterations_pct, (10.0 + 30.0 - 5.0) / 3.0, 1e-12);
  EXPECT_NEAR(row.avg_time_pct, (8.0 + 22.0 - 4.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(row.highest_improvement_pct, 22.0);
  EXPECT_DOUBLE_EQ(row.highest_degradation_pct, -4.0);
}

TEST(ExperimentTest, BestFilterDominatesEachFixedFilter) {
  ExperimentRunner runner(fast_config());
  const std::vector<SuiteEntry> suite{tiny_entry()};
  const std::vector<value_t> filters{0.01, 0.1};
  const auto best = best_filter_improvements(
      runner, suite, ExtensionMode::CommAware, FilterStrategy::Static, filters);
  ASSERT_EQ(best.size(), 1u);
  for (value_t f : filters) {
    const auto fixed = fixed_filter_improvements(
        runner, suite, ExtensionMode::CommAware, FilterStrategy::Static, f);
    EXPECT_GE(best[0].time_pct, fixed[0].time_pct) << "filter " << f;
  }
}

TEST(ExperimentTest, MethodLabels) {
  EXPECT_EQ((MethodConfig{ExtensionMode::None, FilterStrategy::Static, 0.0}.label()),
            "fsai");
  EXPECT_EQ((MethodConfig{ExtensionMode::CommAware, FilterStrategy::Dynamic, 0.05}
                 .label()),
            "fsaie-comm/dynamic-0.05");
  EXPECT_EQ((MethodConfig{ExtensionMode::LocalOnly, FilterStrategy::Static, 0.2}
                 .label()),
            "fsaie/static-0.2");
}

TEST(TableTest, AlignedAndCsvOutput) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1.5"});
  t.add_row({"longer-name", "2"});
  std::ostringstream plain;
  t.print(plain);
  EXPECT_NE(plain.str().find("longer-name"), std::string::npos);
  EXPECT_NE(plain.str().find("----"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "name,value\nx,1.5\nlonger-name,2\n");
}

TEST(TableTest, RowWidthValidated) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

}  // namespace
}  // namespace fsaic
