#include "dense/factorizations.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace fsaic {
namespace {

/// Random SPD matrix A = R^T R + n*I.
DenseMatrix random_spd_dense(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix r(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      r(i, j) = rng.next_uniform(-1.0, 1.0);
    }
  }
  DenseMatrix a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      value_t s = (i == j) ? static_cast<value_t>(n) : 0.0;
      for (index_t k = 0; k < n; ++k) {
        s += r(k, i) * r(k, j);
      }
      a(i, j) = s;
    }
  }
  return a;
}

std::vector<value_t> random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.next_uniform(-1.0, 1.0);
  return v;
}

value_t residual_inf(const DenseMatrix& a, std::span<const value_t> x,
                     std::span<const value_t> b) {
  value_t worst = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    value_t s = -b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < a.cols(); ++j) {
      s += a(i, j) * x[static_cast<std::size_t>(j)];
    }
    worst = std::max(worst, std::abs(s));
  }
  return worst;
}

TEST(CholeskyTest, FactorsKnownMatrix) {
  // A = [[4, 2], [2, 3]] = L L^T with L = [[2, 0], [1, sqrt(2)]].
  DenseMatrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  ASSERT_TRUE(cholesky_factor(a));
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_NEAR(a(1, 1), std::sqrt(2.0), 1e-15);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3 and -1
  EXPECT_FALSE(cholesky_factor(a));
}

TEST(LdltTest, HandlesIndefiniteWithNonzeroPivots) {
  // diag(1, -1) has LDL^T = I * diag(1, -1) * I.
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  ASSERT_TRUE(ldlt_factor(a));
  std::vector<value_t> b{3.0, 4.0};
  ldlt_solve(a, b);
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], -4.0);
}

TEST(LuTest, SolvesWithRowSwaps) {
  // Requires pivoting: first pivot is 0.
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  std::vector<index_t> piv(2);
  ASSERT_TRUE(lu_factor(a, piv));
  std::vector<value_t> b{5.0, 7.0};
  lu_solve(a, piv, b);
  EXPECT_DOUBLE_EQ(b[0], 7.0);
  EXPECT_DOUBLE_EQ(b[1], 5.0);
}

TEST(LuTest, DetectsSingularMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  std::vector<index_t> piv(2);
  EXPECT_FALSE(lu_factor(a, piv));
}

TEST(SolveSpdTest, FallsBackAndSolves) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // indefinite: Cholesky fails, LDL^T succeeds
  const DenseMatrix a_copy = a;
  std::vector<value_t> b{1.0, 0.0};
  ASSERT_TRUE(solve_spd_system(std::move(a), b));
  EXPECT_NEAR(residual_inf(a_copy, b, std::vector<value_t>{1.0, 0.0}), 0.0, 1e-12);
}

class FactorizationProperty : public ::testing::TestWithParam<index_t> {};

TEST_P(FactorizationProperty, CholeskySolvesRandomSpd) {
  const index_t n = GetParam();
  const auto a = random_spd_dense(n, 100 + static_cast<std::uint64_t>(n));
  DenseMatrix f = a;
  ASSERT_TRUE(cholesky_factor(f));
  auto b = random_vector(n, 200 + static_cast<std::uint64_t>(n));
  const auto b0 = b;
  cholesky_solve(f, b);
  EXPECT_LT(residual_inf(a, b, b0), 1e-9 * static_cast<value_t>(n));
}

TEST_P(FactorizationProperty, LdltSolvesRandomSpd) {
  const index_t n = GetParam();
  const auto a = random_spd_dense(n, 300 + static_cast<std::uint64_t>(n));
  DenseMatrix f = a;
  ASSERT_TRUE(ldlt_factor(f));
  auto b = random_vector(n, 400 + static_cast<std::uint64_t>(n));
  const auto b0 = b;
  ldlt_solve(f, b);
  EXPECT_LT(residual_inf(a, b, b0), 1e-9 * static_cast<value_t>(n));
}

TEST_P(FactorizationProperty, LuSolvesRandomSpd) {
  const index_t n = GetParam();
  const auto a = random_spd_dense(n, 500 + static_cast<std::uint64_t>(n));
  DenseMatrix f = a;
  std::vector<index_t> piv(static_cast<std::size_t>(n));
  ASSERT_TRUE(lu_factor(f, piv));
  auto b = random_vector(n, 600 + static_cast<std::uint64_t>(n));
  const auto b0 = b;
  lu_solve(f, piv, b);
  EXPECT_LT(residual_inf(a, b, b0), 1e-9 * static_cast<value_t>(n));
}

TEST_P(FactorizationProperty, CholeskyAndLuAgree) {
  const index_t n = GetParam();
  const auto a = random_spd_dense(n, 700 + static_cast<std::uint64_t>(n));
  auto b1 = random_vector(n, 800 + static_cast<std::uint64_t>(n));
  auto b2 = b1;
  DenseMatrix f1 = a;
  ASSERT_TRUE(cholesky_factor(f1));
  cholesky_solve(f1, b1);
  DenseMatrix f2 = a;
  std::vector<index_t> piv(static_cast<std::size_t>(n));
  ASSERT_TRUE(lu_factor(f2, piv));
  lu_solve(f2, piv, b2);
  for (std::size_t i = 0; i < b1.size(); ++i) {
    EXPECT_NEAR(b1[i], b2[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FactorizationProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

TEST(DenseMatrixTest, MultiplyMatchesManual) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(0, 2) = 3.0;
  a(1, 0) = 4.0;
  a(1, 1) = 5.0;
  a(1, 2) = 6.0;
  std::vector<value_t> x{1.0, 0.0, -1.0};
  std::vector<value_t> y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(DenseMatrixTest, IdentityAndSymmetry) {
  const auto eye = DenseMatrix::identity(3);
  EXPECT_TRUE(eye.is_symmetric());
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
}

}  // namespace
}  // namespace fsaic
