#include "core/filtering.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fsai.hpp"
#include "core/pattern_extend.hpp"
#include "matgen/generators.hpp"

namespace fsaic {
namespace {

/// An extended FSAI factor on Poisson, shared by several tests.
struct ExtendedFactor {
  CsrMatrix a;
  Layout layout;
  SparsityPattern base;
  CsrMatrix g_ext;
};

ExtendedFactor make_extended(index_t nx, index_t ny, rank_t nranks,
                             int line_bytes = 128) {
  ExtendedFactor f;
  f.a = poisson2d(nx, ny);
  f.layout = Layout::blocked(f.a.rows(), nranks);
  f.base = fsai_base_pattern(f.a, 1, 0.0);
  const auto ext =
      extend_pattern(f.base, f.layout, line_bytes, ExtensionMode::CommAware);
  f.g_ext = compute_fsai_factor(f.a, ext.extended);
  return f;
}

TEST(FilteringTest, ZeroFilterKeepsEverything) {
  const auto f = make_extended(8, 8, 2);
  FilterOptions opts;
  opts.filter = 0.0;
  const auto out = static_filter(f.g_ext, f.base, f.layout, opts);
  EXPECT_EQ(out.pattern.nnz(), f.g_ext.nnz());
}

TEST(FilteringTest, HugeFilterShrinksBackToBasePattern) {
  const auto f = make_extended(8, 8, 2);
  FilterOptions opts;
  opts.filter = 1e9;
  opts.only_added_entries = true;
  const auto out = static_filter(f.g_ext, f.base, f.layout, opts);
  EXPECT_EQ(out.pattern, f.base);
}

TEST(FilteringTest, FilterIsMonotoneInF) {
  const auto f = make_extended(10, 10, 2);
  FilterOptions opts;
  offset_t prev = f.g_ext.nnz() + 1;
  for (value_t filter : {0.001, 0.01, 0.05, 0.1, 0.2, 0.5}) {
    opts.filter = filter;
    const auto out = static_filter(f.g_ext, f.base, f.layout, opts);
    EXPECT_LE(out.pattern.nnz(), prev) << "filter " << filter;
    prev = out.pattern.nnz();
  }
}

TEST(FilteringTest, DiagonalNeverFiltered) {
  const auto f = make_extended(6, 6, 2);
  FilterOptions opts;
  opts.filter = 1e12;
  opts.only_added_entries = false;  // even in filter-everything mode
  const auto out = static_filter(f.g_ext, f.base, f.layout, opts);
  EXPECT_TRUE(out.pattern.has_full_diagonal());
}

TEST(FilteringTest, FilterAllModeCanDropBaseEntries) {
  const auto f = make_extended(6, 6, 2);
  FilterOptions opts;
  opts.filter = 10.0;
  opts.only_added_entries = false;
  const auto out = static_filter(f.g_ext, f.base, f.layout, opts);
  EXPECT_LT(out.pattern.nnz(), f.base.nnz());
  EXPECT_TRUE(out.pattern.has_full_diagonal());
}

TEST(FilteringTest, RankEntriesMatchAssembledPattern) {
  const auto f = make_extended(9, 9, 3);
  FilterOptions opts;
  opts.filter = 0.05;
  const auto out = static_filter(f.g_ext, f.base, f.layout, opts);
  const auto counts = rank_entry_counts(out.pattern, f.layout);
  EXPECT_EQ(counts, out.rank_entries);
}

TEST(ImbalanceIndexTest, DefinitionMatchesPaper) {
  // avg / max: {100, 100, 100} → 1; {50, 100, 150} → 100/150.
  EXPECT_DOUBLE_EQ(imbalance_index(std::vector<offset_t>{100, 100, 100}), 1.0);
  EXPECT_NEAR(imbalance_index(std::vector<offset_t>{50, 100, 150}), 100.0 / 150.0,
              1e-12);
  EXPECT_DOUBLE_EQ(imbalance_index(std::vector<offset_t>{}), 1.0);
  EXPECT_DOUBLE_EQ(imbalance_index(std::vector<offset_t>{0, 0}), 1.0);
}

TEST(DynamicFilterTest, BalancedInputNeedsNoBisection) {
  // When every rank is within the tolerated deviation of the average, the
  // dynamic filter must behave exactly like the static one. A blocked
  // Poisson decomposition has mildly uneven extension shares, so use a
  // tolerance that covers them.
  const auto f = make_extended(12, 12, 4);
  FilterOptions opts;
  opts.filter = 0.01;
  opts.imbalance_tolerance = 0.50;
  const auto stat = static_filter(f.g_ext, f.base, f.layout, opts);
  const auto dyn = dynamic_filter(f.g_ext, f.base, f.layout, opts);
  EXPECT_EQ(dyn.pattern, stat.pattern);
  EXPECT_EQ(dyn.bisection_iterations, 0);
}

TEST(DynamicFilterTest, SkewedLayoutGetsRebalanced) {
  // Deliberately skewed ownership: rank 0 owns 3/4 of the rows, so its
  // extension share is far above average and must be trimmed.
  const auto a = poisson2d(16, 16);
  const index_t n = a.rows();
  const Layout layout({0, 3 * n / 4, n});
  const auto base = fsai_base_pattern(a, 1, 0.0);
  const auto ext = extend_pattern(base, layout, 256, ExtensionMode::CommAware);
  const auto g_ext = compute_fsai_factor(a, ext.extended);

  FilterOptions opts;
  opts.filter = 0.001;
  // The rebalance loop converges linearly toward its fixpoint (each round
  // lowers the average, raising the bar for the overloaded rank); give it
  // enough rounds to settle within tolerance.
  opts.rebalance_rounds = 12;
  const auto stat = static_filter(g_ext, base, layout, opts);
  const auto dyn = dynamic_filter(g_ext, base, layout, opts);

  EXPECT_GT(dyn.bisection_iterations, 0);
  EXPECT_GT(imbalance_index(dyn.rank_entries), imbalance_index(stat.rank_entries));
  // The overloaded rank's filter grew; the other rank kept the base filter.
  EXPECT_GT(dyn.rank_filter[0], opts.filter);
  EXPECT_DOUBLE_EQ(dyn.rank_filter[1], opts.filter);
  // Balance within tolerance of the average (entries of rank 0 can't exceed
  // avg * (1 + tol) unless protected entries forbid it — check directly).
  const double avg = static_cast<double>(dyn.rank_entries[0] + dyn.rank_entries[1]) / 2.0;
  EXPECT_LE(static_cast<double>(dyn.rank_entries[0]),
            avg * (1.0 + opts.imbalance_tolerance) + 1.0);
}

TEST(DynamicFilterTest, RecordsAllreducePerRound) {
  const auto f = make_extended(8, 8, 2);
  FilterOptions opts;
  opts.filter = 0.01;
  CommStats stats;
  (void)dynamic_filter(f.g_ext, f.base, f.layout, opts, &stats);
  EXPECT_GE(stats.allreduce_count, 1);
}

TEST(DynamicFilterTest, NeverDropsBelowBasePattern) {
  const auto a = poisson2d(16, 16);
  const index_t n = a.rows();
  const Layout layout({0, 7 * n / 8, n});
  const auto base = fsai_base_pattern(a, 1, 0.0);
  const auto ext = extend_pattern(base, layout, 256, ExtensionMode::CommAware);
  const auto g_ext = compute_fsai_factor(a, ext.extended);
  FilterOptions opts;
  opts.filter = 0.01;
  const auto dyn = dynamic_filter(g_ext, base, layout, opts);
  // Every base entry must survive dynamic filtering (only added entries are
  // candidates).
  for (index_t i = 0; i < n; ++i) {
    for (index_t j : base.row(i)) {
      EXPECT_TRUE(dyn.pattern.contains(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

class StaticFilterSurvivalProperty : public ::testing::TestWithParam<double> {};

TEST_P(StaticFilterSurvivalProperty, SurvivorsSatisfyTheRule) {
  const double filter = GetParam();
  const auto f = make_extended(10, 10, 2);
  FilterOptions opts;
  opts.filter = filter;
  const auto out = static_filter(f.g_ext, f.base, f.layout, opts);
  const auto diag = f.g_ext.diagonal();
  for (index_t i = 0; i < f.g_ext.rows(); ++i) {
    for (index_t j : out.pattern.row(i)) {
      if (i == j || f.base.contains(i, j)) continue;
      const value_t scale = std::sqrt(std::abs(
          diag[static_cast<std::size_t>(i)] * diag[static_cast<std::size_t>(j)]));
      EXPECT_GE(std::abs(f.g_ext.at(i, j)), filter * scale)
          << "(" << i << "," << j << ") should have been filtered";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Filters, StaticFilterSurvivalProperty,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace fsaic
