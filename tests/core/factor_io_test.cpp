#include "core/factor_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/fsai_driver.hpp"
#include "matgen/generators.hpp"

namespace fsaic {
namespace {

class FactorIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("fsaic_factor_test_" + std::to_string(::getpid()) + ".fac"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FactorIoTest, RoundTripPreservesEverything) {
  const auto a = poisson2d(10, 10);
  const Layout layout = Layout::blocked(a.rows(), 4);
  FsaiOptions opts;
  opts.extension = ExtensionMode::CommAware;
  opts.cache_line_bytes = 128;
  const auto build = build_fsai_preconditioner(a, layout, opts);

  save_factor(path_, build.g, layout);
  const SavedFactor loaded = load_factor(path_);

  EXPECT_EQ(loaded.layout, layout);
  ASSERT_EQ(loaded.g.rows(), build.g.rows());
  ASSERT_EQ(loaded.g.nnz(), build.g.nnz());
  EXPECT_EQ(loaded.g.pattern(), build.g.pattern());
  for (std::size_t k = 0; k < build.g.values().size(); ++k) {
    EXPECT_EQ(loaded.g.values()[k], build.g.values()[k]) << "bit-exact values";
  }
}

TEST_F(FactorIoTest, LoadedFactorSolvesIdentically) {
  const auto a = poisson2d(12, 12);
  const Layout layout = Layout::blocked(a.rows(), 3);
  const auto build = build_fsai_preconditioner(a, layout, FsaiOptions{});
  save_factor(path_, build.g, layout);
  const SavedFactor loaded = load_factor(path_);

  const DistCsr g1 = DistCsr::distribute(build.g, layout);
  const DistCsr g2 = DistCsr::distribute(loaded.g, loaded.layout);
  EXPECT_EQ(g1.halo_update_bytes(), g2.halo_update_bytes());
}

TEST_F(FactorIoTest, RejectsGarbageFile) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a factor file at all, not even close";
  }
  EXPECT_THROW((void)load_factor(path_), Error);
}

TEST_F(FactorIoTest, RejectsTruncatedFile) {
  const auto a = poisson2d(6, 6);
  const Layout layout = Layout::blocked(a.rows(), 2);
  const auto build = build_fsai_preconditioner(a, layout, FsaiOptions{});
  save_factor(path_, build.g, layout);
  // Truncate to half.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size / 2);
  EXPECT_THROW((void)load_factor(path_), Error);
}

TEST_F(FactorIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_factor("/nonexistent/dir/factor.fac"), Error);
}

TEST_F(FactorIoTest, LayoutSizeMismatchRejectedOnSave) {
  const auto a = poisson2d(4, 4);
  const auto build = build_fsai_preconditioner(
      a, Layout::blocked(a.rows(), 2), FsaiOptions{});
  EXPECT_THROW(save_factor(path_, build.g, Layout::blocked(99, 2)), Error);
}

}  // namespace
}  // namespace fsaic
