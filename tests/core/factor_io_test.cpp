#include "core/factor_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/fsai_driver.hpp"
#include "matgen/generators.hpp"

namespace fsaic {
namespace {

class FactorIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("fsaic_factor_test_" + std::to_string(::getpid()) + ".fac"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FactorIoTest, RoundTripPreservesEverything) {
  const auto a = poisson2d(10, 10);
  const Layout layout = Layout::blocked(a.rows(), 4);
  FsaiOptions opts;
  opts.extension = ExtensionMode::CommAware;
  opts.cache_line_bytes = 128;
  const auto build = build_fsai_preconditioner(a, layout, opts);

  save_factor(path_, build.g, layout);
  const SavedFactor loaded = load_factor(path_);

  EXPECT_EQ(loaded.layout, layout);
  ASSERT_EQ(loaded.g.rows(), build.g.rows());
  ASSERT_EQ(loaded.g.nnz(), build.g.nnz());
  EXPECT_EQ(loaded.g.pattern(), build.g.pattern());
  for (std::size_t k = 0; k < build.g.values().size(); ++k) {
    EXPECT_EQ(loaded.g.values()[k], build.g.values()[k]) << "bit-exact values";
  }
}

TEST_F(FactorIoTest, LoadedFactorSolvesIdentically) {
  const auto a = poisson2d(12, 12);
  const Layout layout = Layout::blocked(a.rows(), 3);
  const auto build = build_fsai_preconditioner(a, layout, FsaiOptions{});
  save_factor(path_, build.g, layout);
  const SavedFactor loaded = load_factor(path_);

  const DistCsr g1 = DistCsr::distribute(build.g, layout);
  const DistCsr g2 = DistCsr::distribute(loaded.g, loaded.layout);
  EXPECT_EQ(g1.halo_update_bytes(), g2.halo_update_bytes());
}

TEST_F(FactorIoTest, RejectsGarbageFile) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a factor file at all, not even close";
  }
  EXPECT_THROW((void)load_factor(path_), Error);
}

TEST_F(FactorIoTest, RejectsTruncatedFile) {
  const auto a = poisson2d(6, 6);
  const Layout layout = Layout::blocked(a.rows(), 2);
  const auto build = build_fsai_preconditioner(a, layout, FsaiOptions{});
  save_factor(path_, build.g, layout);
  // Truncate to half.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size / 2);
  EXPECT_THROW((void)load_factor(path_), Error);
}

TEST_F(FactorIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_factor("/nonexistent/dir/factor.fac"), Error);
}

TEST_F(FactorIoTest, LayoutSizeMismatchRejectedOnSave) {
  const auto a = poisson2d(4, 4);
  const auto build = build_fsai_preconditioner(
      a, Layout::blocked(a.rows(), 2), FsaiOptions{});
  EXPECT_THROW(save_factor(path_, build.g, Layout::blocked(99, 2)), Error);
}

TEST_F(FactorIoTest, FingerprintRoundTripsAndGuardsTheMatrix) {
  const auto a = poisson2d(8, 8);
  const Layout layout = Layout::blocked(a.rows(), 2);
  const auto build = build_fsai_preconditioner(a, layout, FsaiOptions{});
  save_factor(path_, build.g, layout, fingerprint_of(a));

  const SavedFactor loaded = load_factor(path_);
  ASSERT_TRUE(loaded.built_for.has_value());
  EXPECT_EQ(*loaded.built_for, fingerprint_of(a));
  EXPECT_NO_THROW(require_factor_matches(loaded, a));

  // Same shape, same pattern, one perturbed value: must be rejected.
  auto b = poisson2d(8, 8);
  b.values()[0] += 1e-12;
  try {
    require_factor_matches(loaded, b);
    FAIL() << "expected mismatch to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("different matrix"), std::string::npos)
        << e.what();
  }
}

TEST_F(FactorIoTest, SavingWithoutFingerprintSkipsTheCheck) {
  const auto a = poisson2d(6, 6);
  const Layout layout = Layout::blocked(a.rows(), 2);
  const auto build = build_fsai_preconditioner(a, layout, FsaiOptions{});
  save_factor(path_, build.g, layout);  // no fingerprint recorded

  const SavedFactor loaded = load_factor(path_);
  EXPECT_FALSE(loaded.built_for.has_value());
  const auto unrelated = poisson2d(3, 3);
  EXPECT_NO_THROW(require_factor_matches(loaded, unrelated))
      << "without a recorded fingerprint the check is a no-op";
}

TEST_F(FactorIoTest, VersionOneFilesStillLoad) {
  // Files written before the fingerprint header (magic FSAICF1) must keep
  // loading, with built_for absent.
  const auto a = poisson2d(5, 5);
  const Layout layout = Layout::blocked(a.rows(), 2);
  const auto build = build_fsai_preconditioner(a, layout, FsaiOptions{});
  const CsrMatrix& g = build.g;
  {
    std::ofstream out(path_, std::ios::binary);
    const char magic[8] = {'F', 'S', 'A', 'I', 'C', 'F', '1', '\0'};
    out.write(magic, sizeof(magic));
    const auto pod = [&out](const auto& v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    pod(layout.nranks());
    for (rank_t p = 0; p < layout.nranks(); ++p) pod(layout.begin(p));
    pod(layout.global_size());
    pod(g.rows());
    pod(g.cols());
    pod(g.nnz());
    out.write(reinterpret_cast<const char*>(g.row_ptr().data()),
              static_cast<std::streamsize>(g.row_ptr().size_bytes()));
    out.write(reinterpret_cast<const char*>(g.col_idx().data()),
              static_cast<std::streamsize>(g.col_idx().size_bytes()));
    out.write(reinterpret_cast<const char*>(g.values().data()),
              static_cast<std::streamsize>(g.values().size_bytes()));
  }
  const SavedFactor loaded = load_factor(path_);
  EXPECT_FALSE(loaded.built_for.has_value());
  EXPECT_EQ(loaded.layout, layout);
  EXPECT_EQ(loaded.g.pattern(), g.pattern());
  for (std::size_t k = 0; k < g.values().size(); ++k) {
    EXPECT_EQ(loaded.g.values()[k], g.values()[k]);
  }
}

}  // namespace
}  // namespace fsaic
