#include "core/fsai_driver.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "dist/comm_scheme.hpp"
#include "matgen/generators.hpp"
#include "solver/pcg.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {
namespace {

DistVector random_rhs(const Layout& l, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> bg(static_cast<std::size_t>(l.global_size()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  return DistVector(l, bg);
}

SolveResult solve_with(const CsrMatrix& a, const Layout& layout,
                       const FsaiOptions& opts, int max_iters = 5000) {
  const auto build = build_fsai_preconditioner(a, layout, opts);
  const auto precond = make_factorized_preconditioner(build, "test");
  const auto a_dist = DistCsr::distribute(a, layout);
  const auto b = random_rhs(layout, 99);
  DistVector x(layout);
  return pcg_solve(a_dist, b, x, *precond,
                   {.rel_tol = 1e-8, .max_iterations = max_iters});
}

TEST(DriverTest, FsaiBeatsUnpreconditionedCg) {
  const auto a = poisson2d(24, 24);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto a_dist = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 99);

  DistVector x(l);
  const auto plain = cg_solve(a_dist, b, x, {.rel_tol = 1e-8, .max_iterations = 5000});
  const auto fsai = solve_with(a, l, FsaiOptions{});
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(fsai.converged);
  EXPECT_LT(fsai.iterations, plain.iterations);
}

TEST(DriverTest, ExtensionReducesIterations) {
  const auto a = poisson2d(24, 24);
  const Layout l = Layout::blocked(a.rows(), 4);

  FsaiOptions fsai_opts;
  const auto base = solve_with(a, l, fsai_opts);

  FsaiOptions comm_opts;
  comm_opts.extension = ExtensionMode::CommAware;
  comm_opts.cache_line_bytes = 256;
  const auto comm = solve_with(a, l, comm_opts);

  ASSERT_TRUE(base.converged);
  ASSERT_TRUE(comm.converged);
  EXPECT_LT(comm.iterations, base.iterations);
}

TEST(DriverTest, CommAwareAtLeastAsRichAsLocalOnly) {
  const auto a = poisson2d(20, 20);
  const Layout l = Layout::blocked(a.rows(), 8);
  FsaiOptions opts;
  opts.cache_line_bytes = 256;

  opts.extension = ExtensionMode::LocalOnly;
  const auto fsaie = build_fsai_preconditioner(a, l, opts);
  opts.extension = ExtensionMode::CommAware;
  const auto comm = build_fsai_preconditioner(a, l, opts);

  EXPECT_GE(comm.final_pattern.nnz(), fsaie.final_pattern.nnz());
  EXPECT_GE(comm.nnz_increase_pct, fsaie.nnz_increase_pct);
}

TEST(DriverTest, CommSchemeOfBuiltFactorsIsInvariant) {
  const auto a = poisson2d(18, 18);
  const Layout l = Layout::blocked(a.rows(), 6);
  FsaiOptions opts;
  opts.extension = ExtensionMode::CommAware;
  opts.cache_line_bytes = 256;
  const auto fsai = build_fsai_preconditioner(
      a, l, FsaiOptions{});  // plain baseline
  const auto comm = build_fsai_preconditioner(a, l, opts);

  // The distributed G of FSAIE-Comm must move exactly the coefficients the
  // plain FSAI scheme moves — byte-identical halo updates.
  EXPECT_EQ(comm.g_dist.halo_update_bytes(), fsai.g_dist.halo_update_bytes());
  EXPECT_EQ(comm.g_dist.halo_update_messages(), fsai.g_dist.halo_update_messages());
  EXPECT_EQ(comm.gt_dist.halo_update_bytes(), fsai.gt_dist.halo_update_bytes());
  EXPECT_EQ(comm.gt_dist.halo_update_messages(),
            fsai.gt_dist.halo_update_messages());
}

TEST(DriverTest, PreconditionedSolutionIsCorrect) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 4);
  FsaiOptions opts;
  opts.extension = ExtensionMode::CommAware;
  const auto build = build_fsai_preconditioner(a, l, opts);
  const auto precond = make_factorized_preconditioner(build, "comm");
  const auto a_dist = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 42);
  DistVector x(l);
  const auto r = pcg_solve(a_dist, b, x, *precond,
                           {.rel_tol = 1e-10, .max_iterations = 2000});
  ASSERT_TRUE(r.converged);
  // Verify against the true residual, not just the recurrence.
  const auto xg = x.to_global();
  const auto bg = b.to_global();
  std::vector<value_t> res(static_cast<std::size_t>(a.rows()));
  spmv(a, xg, res);
  for (std::size_t i = 0; i < res.size(); ++i) {
    res[i] = bg[i] - res[i];
  }
  EXPECT_LE(norm2(res), 1e-8 * norm2(bg));
}

TEST(DriverTest, FilteringReportsReducedNnzIncrease) {
  const auto a = poisson2d(20, 20);
  const Layout l = Layout::blocked(a.rows(), 4);
  FsaiOptions opts;
  opts.extension = ExtensionMode::CommAware;
  opts.cache_line_bytes = 256;

  const auto unfiltered = build_fsai_preconditioner(a, l, opts);
  opts.filter = 0.05;
  const auto filtered = build_fsai_preconditioner(a, l, opts);
  EXPECT_LT(filtered.nnz_increase_pct, unfiltered.nnz_increase_pct);
  EXPECT_GE(filtered.nnz_increase_pct, 0.0);
}

TEST(DriverTest, GtDistIsTransposeOfGDist) {
  const auto a = poisson2d(10, 10);
  const Layout l = Layout::blocked(a.rows(), 3);
  FsaiOptions opts;
  opts.extension = ExtensionMode::CommAware;
  const auto build = build_fsai_preconditioner(a, l, opts);
  const auto gt = build.gt_dist.to_global();
  const auto g = build.g_dist.to_global();
  ASSERT_EQ(gt.nnz(), g.nnz());
  for (index_t i = 0; i < g.rows(); ++i) {
    for (index_t j : g.row_cols(i)) {
      EXPECT_DOUBLE_EQ(gt.at(j, i), g.at(i, j));
    }
  }
}

TEST(DriverTest, PartitionSystemProducesContiguousBalancedLayout) {
  const auto a = poisson2d(20, 20);
  const auto sys = partition_system(a, 5);
  EXPECT_EQ(sys.layout.nranks(), 5);
  EXPECT_EQ(sys.layout.global_size(), a.rows());
  EXPECT_LE(sys.partition_imbalance, 1.25);
  EXPECT_GT(sys.edge_cut, 0);
  // Permuted matrix keeps symmetry and nnz.
  EXPECT_EQ(sys.matrix.nnz(), a.nnz());
  EXPECT_TRUE(sys.matrix.is_symmetric(1e-12));
  // A partitioned solve reaches the same answer as the unpermuted one.
  const auto a_dist = DistCsr::distribute(sys.matrix, sys.layout);
  const auto b = random_rhs(sys.layout, 7);
  DistVector x(sys.layout);
  const auto r = cg_solve(a_dist, b, x, {.rel_tol = 1e-8, .max_iterations = 2000});
  EXPECT_TRUE(r.converged);
}

TEST(DriverTest, PartitionReducesHaloVersusNaiveBlocking) {
  // Graph-aware partitioning should produce less halo traffic than blocked
  // row ranges on a 2D grid numbered row-major… actually blocked ranges on a
  // row-major grid are already near-optimal strips, so compare against a
  // *shuffled* numbering instead, where blocked ranges are terrible.
  const auto a = poisson2d(16, 16);
  Rng rng(4);
  std::vector<index_t> shuffle(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) shuffle[static_cast<std::size_t>(i)] = i;
  for (index_t i = a.rows() - 1; i > 0; --i) {
    std::swap(shuffle[static_cast<std::size_t>(i)],
              shuffle[static_cast<std::size_t>(rng.next_index(i + 1))]);
  }
  const auto shuffled = permute_symmetric(a, shuffle);

  const Layout naive = Layout::blocked(a.rows(), 4);
  const auto naive_dist = DistCsr::distribute(shuffled, naive);

  const auto sys = partition_system(shuffled, 4);
  const auto smart_dist = DistCsr::distribute(sys.matrix, sys.layout);
  EXPECT_LT(smart_dist.halo_update_bytes(), naive_dist.halo_update_bytes());
}

void expect_same_factor(const CsrMatrix& x, const CsrMatrix& y) {
  ASSERT_EQ(x.nnz(), y.nnz());
  for (index_t i = 0; i < x.rows(); ++i) {
    const auto xc = x.row_cols(i);
    const auto yc = y.row_cols(i);
    ASSERT_TRUE(std::equal(xc.begin(), xc.end(), yc.begin(), yc.end()))
        << "pattern row " << i;
    const auto xv = x.row_vals(i);
    const auto yv = y.row_vals(i);
    for (std::size_t k = 0; k < xv.size(); ++k) {
      EXPECT_EQ(xv[k], yv[k]) << "row " << i << " entry " << k;
    }
  }
}

class DriverIncrementalProperty
    : public ::testing::TestWithParam<FilterStrategy> {};

TEST_P(DriverIncrementalProperty, IncrementalRefactorIsBitIdentical) {
  const auto a = poisson2d(20, 20);
  const Layout l = Layout::blocked(a.rows(), 4);
  FsaiOptions opts;
  opts.extension = ExtensionMode::CommAware;
  opts.cache_line_bytes = 256;
  opts.filter = 0.05;
  opts.filter_strategy = GetParam();

  opts.incremental_refactor = false;
  const auto full = build_fsai_preconditioner(a, l, opts);
  opts.incremental_refactor = true;
  const auto incr = build_fsai_preconditioner(a, l, opts);

  expect_same_factor(full.g, incr.g);
  // Filtering removed entries, so some rows shrank (re-solved) and some
  // survived untouched (reused) — and every row is accounted for.
  ASSERT_LT(incr.final_pattern.nnz(), incr.extended_pattern.nnz());
  EXPECT_GT(incr.factor_stats.rows_reused, 0);
  EXPECT_EQ(incr.factor_stats.rows_solved + incr.factor_stats.rows_reused,
            a.rows());
  // The full recompute solves everything and reuses nothing.
  EXPECT_EQ(full.factor_stats.rows_reused, 0);
  EXPECT_EQ(full.factor_stats.rows_solved, a.rows());
}

INSTANTIATE_TEST_SUITE_P(Strategies, DriverIncrementalProperty,
                         ::testing::Values(FilterStrategy::Static,
                                           FilterStrategy::Dynamic));

TEST(DriverTest, ProvisionalStatsAreKeptSeparateFromFinalStats) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 4);
  FsaiOptions opts;
  opts.extension = ExtensionMode::CommAware;
  opts.cache_line_bytes = 256;
  opts.filter = 0.05;
  const auto build = build_fsai_preconditioner(a, l, opts);

  // Step 4 solved every row of the extended pattern; step 5's stats no
  // longer overwrite that record.
  EXPECT_EQ(build.provisional_factor_stats.rows_solved, a.rows());
  EXPECT_EQ(build.provisional_factor_stats.rows_reused, 0);
  EXPECT_EQ(build.factor_stats.rows_solved + build.factor_stats.rows_reused,
            a.rows());

  // Without filtering there is no provisional factorization at all.
  FsaiOptions plain;
  const auto base = build_fsai_preconditioner(a, l, plain);
  EXPECT_EQ(base.provisional_factor_stats.rows_solved, 0);
  EXPECT_EQ(base.factor_stats.rows_solved, a.rows());
}

TEST(DriverTest, ReferenceAssemblyBuildMatchesGatherBuild) {
  const auto a = poisson2d(14, 14);
  const Layout l = Layout::blocked(a.rows(), 4);
  FsaiOptions opts;
  opts.extension = ExtensionMode::CommAware;
  opts.cache_line_bytes = 256;
  opts.filter = 0.05;

  opts.assembly = GramAssembly::Gather;
  const auto gather = build_fsai_preconditioner(a, l, opts);
  opts.assembly = GramAssembly::Reference;
  const auto ref = build_fsai_preconditioner(a, l, opts);
  expect_same_factor(ref.g, gather.g);
}

class DriverModeProperty : public ::testing::TestWithParam<ExtensionMode> {};

TEST_P(DriverModeProperty, BuildInvariantsHold) {
  const auto mode = GetParam();
  const auto a = poisson2d(14, 14);
  const Layout l = Layout::blocked(a.rows(), 4);
  FsaiOptions opts;
  opts.extension = mode;
  opts.cache_line_bytes = 128;
  opts.filter = 0.01;
  const auto build = build_fsai_preconditioner(a, l, opts);

  EXPECT_TRUE(build.final_pattern.is_lower_triangular());
  EXPECT_TRUE(build.final_pattern.has_full_diagonal());
  EXPECT_GE(build.nnz_increase_pct, 0.0);
  EXPECT_GT(build.imbalance_g, 0.0);
  EXPECT_LE(build.imbalance_g, 1.0);
  EXPECT_EQ(build.g.nnz(), build.final_pattern.nnz());
  // G values: positive diagonal everywhere.
  for (index_t i = 0; i < build.g.rows(); ++i) {
    EXPECT_GT(build.g.at(i, i), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, DriverModeProperty,
                         ::testing::Values(ExtensionMode::None,
                                           ExtensionMode::LocalOnly,
                                           ExtensionMode::CommAware,
                                           ExtensionMode::FullHalo));

}  // namespace
}  // namespace fsaic
