// End-to-end integration tests across modules: suite matrices through the
// full partition → build → solve → model pipeline, checking the paper's
// qualitative claims as invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "harness/experiment.hpp"
#include "sparse/ops.hpp"
#include "matgen/generators.hpp"

namespace fsaic {
namespace {

ExperimentConfig quick_config(Machine machine) {
  ExperimentConfig cfg;
  cfg.machine = std::move(machine);
  cfg.solve.max_iterations = 20000;
  return cfg;
}

/// A fast, representative subset of the suite (one per problem class).
std::vector<SuiteEntry> sample_suite() {
  return {suite_entry("thermal2"), suite_entry("Fault_639"),
          suite_entry("Dubcova2"), suite_entry("boneS01"),
          suite_entry("offshore")};
}

TEST(IntegrationTest, AllMethodsConvergeOnSample) {
  ExperimentRunner runner(quick_config(machine_skylake()));
  for (const auto& entry : sample_suite()) {
    for (const auto mode : {ExtensionMode::None, ExtensionMode::LocalOnly,
                            ExtensionMode::CommAware}) {
      const auto& rec =
          runner.run(entry, {mode, FilterStrategy::Dynamic, 0.01});
      EXPECT_TRUE(rec.converged) << entry.name << " " << to_string(mode);
      EXPECT_GT(rec.iterations, 0);
    }
  }
}

TEST(IntegrationTest, ExtensionNeverIncreasesIterationsMuch) {
  // Extensions occasionally lose an iteration or two to rounding, but a
  // significant regression would indicate a broken build pipeline.
  ExperimentRunner runner(quick_config(machine_skylake()));
  for (const auto& entry : sample_suite()) {
    const auto& base = runner.baseline(entry);
    const auto& comm =
        runner.run(entry, {ExtensionMode::CommAware, FilterStrategy::Dynamic, 0.01});
    EXPECT_LE(comm.iterations, base.iterations * 1.05 + 2.0) << entry.name;
  }
}

TEST(IntegrationTest, CommAwarePatternDominatesLocalOnly) {
  ExperimentRunner runner(quick_config(machine_skylake()));
  for (const auto& entry : sample_suite()) {
    const auto& fsaie =
        runner.run(entry, {ExtensionMode::LocalOnly, FilterStrategy::Static, 0.0});
    const auto& comm =
        runner.run(entry, {ExtensionMode::CommAware, FilterStrategy::Static, 0.0});
    EXPECT_GE(comm.nnz_increase_pct, fsaie.nnz_increase_pct) << entry.name;
    EXPECT_GE(comm.g_nnz, fsaie.g_nnz) << entry.name;
  }
}

TEST(IntegrationTest, HaloTrafficInvariantUnderCommAwareExtension) {
  ExperimentRunner runner(quick_config(machine_skylake()));
  for (const auto& entry : sample_suite()) {
    const auto& base = runner.baseline(entry);
    const auto& comm =
        runner.run(entry, {ExtensionMode::CommAware, FilterStrategy::Static, 0.0});
    EXPECT_EQ(comm.halo_bytes_g, base.halo_bytes_g) << entry.name;
    EXPECT_EQ(comm.halo_msgs_g, base.halo_msgs_g) << entry.name;
  }
}

TEST(IntegrationTest, A64fxExtendsMoreThanSkylake) {
  // 256 B lines admit 4x more candidates than 64 B lines.
  ExperimentRunner sky(quick_config(machine_skylake()));
  ExperimentRunner arm(quick_config(machine_a64fx()));
  for (const auto& entry : sample_suite()) {
    const auto& s =
        sky.run(entry, {ExtensionMode::CommAware, FilterStrategy::Static, 0.0});
    const auto& a =
        arm.run(entry, {ExtensionMode::CommAware, FilterStrategy::Static, 0.0});
    EXPECT_GT(a.nnz_increase_pct, s.nnz_increase_pct) << entry.name;
  }
}

TEST(IntegrationTest, FilterMonotonicityInPatternSize) {
  ExperimentRunner runner(quick_config(machine_skylake()));
  const auto& entry = suite_entry("thermal2");
  offset_t prev_nnz = std::numeric_limits<offset_t>::max();
  for (value_t f : {0.01, 0.05, 0.1, 0.2}) {
    const auto& rec =
        runner.run(entry, {ExtensionMode::CommAware, FilterStrategy::Static, f});
    EXPECT_LE(rec.g_nnz, prev_nnz) << "filter " << f;
    prev_nnz = rec.g_nnz;
  }
}

TEST(IntegrationTest, ModeledTimeScalesWithIterations) {
  ExperimentRunner runner(quick_config(machine_zen2()));
  const auto& entry = suite_entry("ecology2");
  const auto& base = runner.baseline(entry);
  EXPECT_NEAR(base.modeled_time, base.iterations * base.iter_cost,
              1e-12 * base.modeled_time);
  EXPECT_GT(base.iter_cost, 0.0);
  EXPECT_GT(base.precond_cost, 0.0);
  EXPECT_LT(base.precond_cost, base.iter_cost);
}

TEST(IntegrationTest, Level2SparsityReducesIterationsFurther) {
  // Sparsity level is the paper's "power of Ã" knob; level 2 must beat
  // level 1 in iterations (at higher setup/apply cost).
  const auto& entry = suite_entry("Dubcova2");
  const auto a = entry.generate();
  const auto sys = partition_system(a, 4);
  const auto a_dist = DistCsr::distribute(sys.matrix, sys.layout);
  Rng rng(8);
  std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector b(sys.layout, bg);

  int iters[2];
  for (int level = 1; level <= 2; ++level) {
    FsaiOptions opts;
    opts.sparsity_level = level;
    const auto build = build_fsai_preconditioner(sys.matrix, sys.layout, opts);
    const auto precond = make_factorized_preconditioner(build, "lvl");
    DistVector x(sys.layout);
    const auto r = pcg_solve(a_dist, b, x, *precond,
                             {.rel_tol = 1e-8, .max_iterations = 20000});
    ASSERT_TRUE(r.converged);
    iters[level - 1] = r.iterations;
  }
  EXPECT_LT(iters[1], iters[0]);
}

TEST(IntegrationTest, TilePermutationImprovesExtensionQuality) {
  // The suite's tile-major numbering is what gives cache-line extensions
  // their spatial meaning; on the raw row-major grid the same extension is
  // much less effective numerically.
  const index_t n = 40;
  const auto raw = poisson2d_9pt(n, n);
  const auto tiled = permute_symmetric(raw, tile_permutation_2d(n, n, 4, 2));

  const auto iters_with = [&](const CsrMatrix& m) {
    const Layout l = Layout::blocked(m.rows(), 2);
    const auto d = DistCsr::distribute(m, l);
    FsaiOptions opts;
    opts.extension = ExtensionMode::CommAware;
    opts.cache_line_bytes = 64;
    const auto build = build_fsai_preconditioner(m, l, opts);
    const auto precond = make_factorized_preconditioner(build, "t");
    Rng rng(9);
    std::vector<value_t> bg(static_cast<std::size_t>(m.rows()));
    for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
    const DistVector b(l, bg);
    DistVector x(l);
    return pcg_solve(d, b, x, *precond, {.rel_tol = 1e-8, .max_iterations = 20000})
        .iterations;
  };
  EXPECT_LT(iters_with(tiled), iters_with(raw));
}

}  // namespace
}  // namespace fsaic
