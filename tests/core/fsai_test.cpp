#include "core/fsai.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "matgen/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace fsaic {
namespace {

/// Full lower-triangular pattern (every entry col <= row).
SparsityPattern full_lower(index_t n) {
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      rows[static_cast<std::size_t>(i)].push_back(j);
    }
  }
  return SparsityPattern::from_rows(n, n, std::move(rows));
}

TEST(FsaiTest, DiagonalMatrixGivesExactInverseSquareRoot) {
  CooBuilder b(3, 3);
  b.add(0, 0, 4.0);
  b.add(1, 1, 9.0);
  b.add(2, 2, 16.0);
  const auto a = b.to_csr();
  const auto g = compute_fsai_factor(a, full_lower(3));
  // For diagonal A, G = D^{-1/2} exactly.
  EXPECT_NEAR(g.at(0, 0), 0.5, 1e-14);
  EXPECT_NEAR(g.at(1, 1), 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(g.at(2, 2), 0.25, 1e-14);
  EXPECT_NEAR(g.at(1, 0), 0.0, 1e-14);
}

TEST(FsaiTest, FullPatternReproducesExactInverseFactor) {
  // On the full lower-triangular pattern, G A G^T = I exactly (G is the
  // inverse Cholesky factor up to rounding).
  const auto a = poisson2d(4, 4);
  const auto g = compute_fsai_factor(a, full_lower(a.rows()));
  const auto gagt = multiply(multiply(g, a), transpose(g));
  EXPECT_LT(identity_residual_fro(gagt), 1e-10);
}

TEST(FsaiTest, SparsePatternGivesUnitDiagonalOfGAGt) {
  // Even on a sparse pattern the construction normalizes diag(G A G^T) = 1.
  const auto a = poisson2d(6, 6);
  const auto s = fsai_base_pattern(a, 1, 0.0);
  const auto g = compute_fsai_factor(a, s);
  const auto gagt = multiply(multiply(g, a), transpose(g));
  for (index_t i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR(gagt.at(i, i), 1.0, 1e-10) << "row " << i;
  }
}

TEST(FsaiTest, RicherPatternReducesFrobeniusResidual) {
  const auto a = poisson2d(8, 8);
  const auto g1 = compute_fsai_factor(a, fsai_base_pattern(a, 1, 0.0));
  const auto g2 = compute_fsai_factor(a, fsai_base_pattern(a, 2, 0.0));
  const auto r1 = identity_residual_fro(multiply(multiply(g1, a), transpose(g1)));
  const auto r2 = identity_residual_fro(multiply(multiply(g2, a), transpose(g2)));
  EXPECT_LT(r2, r1);
}

TEST(FsaiTest, BasePatternLevelOneIsLowerTriangleOfA) {
  const auto a = poisson2d(5, 5);
  const auto s = fsai_base_pattern(a, 1, 0.0);
  EXPECT_EQ(s, a.pattern().lower_triangle());
  EXPECT_TRUE(s.has_full_diagonal());
}

TEST(FsaiTest, BasePatternPrefilterDropsWeakCouplings) {
  CooBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  b.add(2, 2, 1.0);
  b.add_symmetric(1, 0, 0.5);
  b.add_symmetric(2, 0, 1e-4);
  const auto a = b.to_csr();
  const auto s = fsai_base_pattern(a, 1, 0.01);
  EXPECT_TRUE(s.contains(1, 0));
  EXPECT_FALSE(s.contains(2, 0));
}

TEST(FsaiTest, RejectsNonLowerTriangularPattern) {
  const auto a = poisson2d(3, 3);
  EXPECT_THROW((void)compute_fsai_factor(a, a.pattern()), Error);
}

TEST(FsaiTest, RejectsPatternWithoutDiagonal) {
  const auto a = poisson2d(2, 2);
  const auto s = SparsityPattern::from_rows(4, 4, {{0}, {1}, {2}, {0}});
  EXPECT_THROW((void)compute_fsai_factor(a, s), Error);
}

TEST(FsaiTest, DegenerateRowFallsBackToJacobiScaling) {
  // A structurally singular local system: row 1's pattern {0, 1} with
  // A restricted to it singular. Build A with a zero 2x2 block determinant.
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add_symmetric(1, 0, 1.0);
  b.add(1, 1, 1.0);  // [[1,1],[1,1]] singular
  const auto a = b.to_csr();
  FsaiFactorStats stats;
  const auto g = compute_fsai_factor(a, full_lower(2), &stats);
  EXPECT_EQ(stats.degenerate_rows, 1);
  // Degenerate row degrades to 1/sqrt(a_ii).
  EXPECT_NEAR(g.at(1, 1), 1.0, 1e-14);
  EXPECT_NEAR(g.at(1, 0), 0.0, 1e-14);
}

/// EXPECT_EQ on every stored value: the gather assembly must be bit-identical
/// to the reference path, not merely close.
void expect_factors_bit_identical(const CsrMatrix& ref, const CsrMatrix& test) {
  ASSERT_EQ(ref.rows(), test.rows());
  ASSERT_EQ(ref.nnz(), test.nnz());
  for (index_t i = 0; i < ref.rows(); ++i) {
    const auto rc = ref.row_cols(i);
    const auto tc = test.row_cols(i);
    ASSERT_TRUE(std::equal(rc.begin(), rc.end(), tc.begin(), tc.end()))
        << "pattern row " << i;
    const auto rv = ref.row_vals(i);
    const auto tv = test.row_vals(i);
    for (std::size_t k = 0; k < rv.size(); ++k) {
      EXPECT_EQ(rv[k], tv[k]) << "row " << i << " entry " << k;
    }
  }
}

TEST(FsaiGatherTest, BitIdenticalToReferenceAcrossPatternLevels) {
  const auto a = poisson2d(12, 12);
  for (int level = 1; level <= 3; ++level) {
    const auto s = fsai_base_pattern(a, level, 0.0);
    FsaiFactorStats ref_stats;
    FsaiFactorStats gather_stats;
    const auto g_ref = compute_fsai_factor(
        a, s, &ref_stats, {.assembly = GramAssembly::Reference});
    const auto g_gather = compute_fsai_factor(
        a, s, &gather_stats, {.assembly = GramAssembly::Gather});
    expect_factors_bit_identical(g_ref, g_gather);
    EXPECT_EQ(ref_stats.fallback_rows, gather_stats.fallback_rows);
    EXPECT_EQ(ref_stats.degenerate_rows, gather_stats.degenerate_rows);
  }
}

TEST(FsaiGatherTest, BitIdenticalToReferenceOn3dStencil) {
  const auto a = stencil27(5, 5, 5);
  const auto s = fsai_base_pattern(a, 2, 0.0);
  const auto g_ref = compute_fsai_factor(
      a, s, nullptr, {.assembly = GramAssembly::Reference});
  const auto g_gather = compute_fsai_factor(
      a, s, nullptr, {.assembly = GramAssembly::Gather});
  expect_factors_bit_identical(g_ref, g_gather);
}

TEST(FsaiGatherTest, BitIdenticalToReferenceOnRandomSpd) {
  for (const std::uint64_t seed : {1u, 7u, 21u}) {
    const auto a = random_spd(40, 5, seed);
    const auto s = fsai_base_pattern(a, 2, 0.0);
    const auto g_ref = compute_fsai_factor(
        a, s, nullptr, {.assembly = GramAssembly::Reference});
    const auto g_gather = compute_fsai_factor(
        a, s, nullptr, {.assembly = GramAssembly::Gather});
    expect_factors_bit_identical(g_ref, g_gather);
  }
}

TEST(FsaiGatherTest, BitIdenticalOnDegenerateJacobiFallback) {
  // The singular [[1,1],[1,1]] system exercises the Cholesky-failure +
  // Jacobi-degrade path in both assemblies (the gather path re-gathers the
  // full matrix for the fallback solve).
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add_symmetric(1, 0, 1.0);
  b.add(1, 1, 1.0);
  const auto a = b.to_csr();
  FsaiFactorStats ref_stats;
  FsaiFactorStats gather_stats;
  const auto g_ref = compute_fsai_factor(
      a, full_lower(2), &ref_stats, {.assembly = GramAssembly::Reference});
  const auto g_gather = compute_fsai_factor(
      a, full_lower(2), &gather_stats, {.assembly = GramAssembly::Gather});
  expect_factors_bit_identical(g_ref, g_gather);
  EXPECT_EQ(gather_stats.degenerate_rows, 1);
  // Same solve outcomes; only the gather counter differs by construction.
  EXPECT_EQ(ref_stats.fallback_rows, gather_stats.fallback_rows);
  EXPECT_EQ(ref_stats.degenerate_rows, gather_stats.degenerate_rows);
  EXPECT_EQ(ref_stats.rows_solved, gather_stats.rows_solved);
}

TEST(FsaiGatherTest, StatsAccountRowsAndGatheredEntries) {
  const auto a = poisson2d(8, 8);
  const auto s = fsai_base_pattern(a, 2, 0.0);
  FsaiFactorStats stats;
  (void)compute_fsai_factor(a, s, &stats, {.assembly = GramAssembly::Gather});
  EXPECT_EQ(stats.rows_solved, a.rows());
  EXPECT_EQ(stats.rows_reused, 0);
  EXPECT_GT(stats.gram_entries_gathered, 0);
  // The reference path performs no gathers.
  FsaiFactorStats ref_stats;
  (void)compute_fsai_factor(a, s, &ref_stats,
                            {.assembly = GramAssembly::Reference});
  EXPECT_EQ(ref_stats.gram_entries_gathered, 0);
}

TEST(FsaiRefineTest, RefineEqualsFullRecomputeAndReusesUnchangedRows) {
  const auto a = poisson2d(10, 10);
  const auto s_ext = fsai_base_pattern(a, 2, 0.0);
  const auto s_final = fsai_base_pattern(a, 1, 0.0);  // strict subset pattern
  const auto g_pre = compute_fsai_factor(a, s_ext);
  FsaiFactorStats stats;
  const auto g_refined = refine_fsai_factor(a, g_pre, s_final, &stats);
  const auto g_full = compute_fsai_factor(a, s_final);
  expect_factors_bit_identical(g_full, g_refined);
  // Every final row either got reused or re-solved.
  EXPECT_EQ(stats.rows_solved + stats.rows_reused, a.rows());
}

TEST(FsaiRefineTest, IdenticalPatternReusesEveryRow) {
  const auto a = poisson2d(6, 6);
  const auto s = fsai_base_pattern(a, 1, 0.0);
  const auto g_pre = compute_fsai_factor(a, s);
  FsaiFactorStats stats;
  const auto g = refine_fsai_factor(a, g_pre, s, &stats);
  expect_factors_bit_identical(g_pre, g);
  EXPECT_EQ(stats.rows_reused, a.rows());
  EXPECT_EQ(stats.rows_solved, 0);
}

class FsaiSpdProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsaiSpdProperty, GatHasUnitDiagonalOnRandomSpd) {
  const auto a = random_spd(30, 4, GetParam());
  const auto g = compute_fsai_factor(a, fsai_base_pattern(a, 1, 0.0));
  const auto gagt = multiply(multiply(g, a), transpose(g));
  for (index_t i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR(gagt.at(i, i), 1.0, 1e-9);
  }
  // G must stay lower triangular with positive diagonal.
  EXPECT_TRUE(g.pattern().is_lower_triangular());
  for (index_t i = 0; i < a.rows(); ++i) {
    EXPECT_GT(g.at(i, i), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsaiSpdProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace fsaic
