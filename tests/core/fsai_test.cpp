#include "core/fsai.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "matgen/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace fsaic {
namespace {

/// Full lower-triangular pattern (every entry col <= row).
SparsityPattern full_lower(index_t n) {
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      rows[static_cast<std::size_t>(i)].push_back(j);
    }
  }
  return SparsityPattern::from_rows(n, n, std::move(rows));
}

TEST(FsaiTest, DiagonalMatrixGivesExactInverseSquareRoot) {
  CooBuilder b(3, 3);
  b.add(0, 0, 4.0);
  b.add(1, 1, 9.0);
  b.add(2, 2, 16.0);
  const auto a = b.to_csr();
  const auto g = compute_fsai_factor(a, full_lower(3));
  // For diagonal A, G = D^{-1/2} exactly.
  EXPECT_NEAR(g.at(0, 0), 0.5, 1e-14);
  EXPECT_NEAR(g.at(1, 1), 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(g.at(2, 2), 0.25, 1e-14);
  EXPECT_NEAR(g.at(1, 0), 0.0, 1e-14);
}

TEST(FsaiTest, FullPatternReproducesExactInverseFactor) {
  // On the full lower-triangular pattern, G A G^T = I exactly (G is the
  // inverse Cholesky factor up to rounding).
  const auto a = poisson2d(4, 4);
  const auto g = compute_fsai_factor(a, full_lower(a.rows()));
  const auto gagt = multiply(multiply(g, a), transpose(g));
  EXPECT_LT(identity_residual_fro(gagt), 1e-10);
}

TEST(FsaiTest, SparsePatternGivesUnitDiagonalOfGAGt) {
  // Even on a sparse pattern the construction normalizes diag(G A G^T) = 1.
  const auto a = poisson2d(6, 6);
  const auto s = fsai_base_pattern(a, 1, 0.0);
  const auto g = compute_fsai_factor(a, s);
  const auto gagt = multiply(multiply(g, a), transpose(g));
  for (index_t i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR(gagt.at(i, i), 1.0, 1e-10) << "row " << i;
  }
}

TEST(FsaiTest, RicherPatternReducesFrobeniusResidual) {
  const auto a = poisson2d(8, 8);
  const auto g1 = compute_fsai_factor(a, fsai_base_pattern(a, 1, 0.0));
  const auto g2 = compute_fsai_factor(a, fsai_base_pattern(a, 2, 0.0));
  const auto r1 = identity_residual_fro(multiply(multiply(g1, a), transpose(g1)));
  const auto r2 = identity_residual_fro(multiply(multiply(g2, a), transpose(g2)));
  EXPECT_LT(r2, r1);
}

TEST(FsaiTest, BasePatternLevelOneIsLowerTriangleOfA) {
  const auto a = poisson2d(5, 5);
  const auto s = fsai_base_pattern(a, 1, 0.0);
  EXPECT_EQ(s, a.pattern().lower_triangle());
  EXPECT_TRUE(s.has_full_diagonal());
}

TEST(FsaiTest, BasePatternPrefilterDropsWeakCouplings) {
  CooBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  b.add(2, 2, 1.0);
  b.add_symmetric(1, 0, 0.5);
  b.add_symmetric(2, 0, 1e-4);
  const auto a = b.to_csr();
  const auto s = fsai_base_pattern(a, 1, 0.01);
  EXPECT_TRUE(s.contains(1, 0));
  EXPECT_FALSE(s.contains(2, 0));
}

TEST(FsaiTest, RejectsNonLowerTriangularPattern) {
  const auto a = poisson2d(3, 3);
  EXPECT_THROW((void)compute_fsai_factor(a, a.pattern()), Error);
}

TEST(FsaiTest, RejectsPatternWithoutDiagonal) {
  const auto a = poisson2d(2, 2);
  const auto s = SparsityPattern::from_rows(4, 4, {{0}, {1}, {2}, {0}});
  EXPECT_THROW((void)compute_fsai_factor(a, s), Error);
}

TEST(FsaiTest, DegenerateRowFallsBackToJacobiScaling) {
  // A structurally singular local system: row 1's pattern {0, 1} with
  // A restricted to it singular. Build A with a zero 2x2 block determinant.
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add_symmetric(1, 0, 1.0);
  b.add(1, 1, 1.0);  // [[1,1],[1,1]] singular
  const auto a = b.to_csr();
  FsaiFactorStats stats;
  const auto g = compute_fsai_factor(a, full_lower(2), &stats);
  EXPECT_EQ(stats.degenerate_rows, 1);
  // Degenerate row degrades to 1/sqrt(a_ii).
  EXPECT_NEAR(g.at(1, 1), 1.0, 1e-14);
  EXPECT_NEAR(g.at(1, 0), 0.0, 1e-14);
}

class FsaiSpdProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsaiSpdProperty, GatHasUnitDiagonalOnRandomSpd) {
  const auto a = random_spd(30, 4, GetParam());
  const auto g = compute_fsai_factor(a, fsai_base_pattern(a, 1, 0.0));
  const auto gagt = multiply(multiply(g, a), transpose(g));
  for (index_t i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR(gagt.at(i, i), 1.0, 1e-9);
  }
  // G must stay lower triangular with positive diagonal.
  EXPECT_TRUE(g.pattern().is_lower_triangular());
  for (index_t i = 0; i < a.rows(); ++i) {
    EXPECT_GT(g.at(i, i), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsaiSpdProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace fsaic
