#include "core/pattern_extend.hpp"

#include <gtest/gtest.h>

#include "dist/comm_scheme.hpp"
#include "matgen/generators.hpp"

namespace fsaic {
namespace {

/// Lower-triangular test pattern from explicit rows.
SparsityPattern lower(index_t n, std::vector<std::vector<index_t>> rows) {
  return SparsityPattern::from_rows(n, n, std::move(rows));
}

TEST(ExtendTest, NoneModeReturnsInputUnchanged) {
  const auto s = lower(4, {{0}, {1}, {0, 2}, {3}});
  const auto r = extend_pattern(s, Layout::blocked(4, 2), 64, ExtensionMode::None);
  EXPECT_EQ(r.extended, s);
  EXPECT_EQ(r.total_added(), 0);
}

TEST(ExtendTest, LocalExtensionFillsCacheLineBelowDiagonal) {
  // One rank, 16 values per line (128 B): all 12 columns share line 0, so
  // every row i fills in columns 0..i — the pattern becomes full lower
  // triangular.
  const auto s = lower(12, {{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8},
                            {2, 9}, {10}, {11}});
  const auto r =
      extend_pattern(s, Layout::blocked(12, 1), 128, ExtensionMode::LocalOnly);
  for (index_t i = 0; i < 12; ++i) {
    for (index_t k = 0; k <= i; ++k) {
      EXPECT_TRUE(r.extended.contains(i, k)) << "(" << i << "," << k << ")";
    }
  }
  EXPECT_EQ(r.halo_added, 0);
  // Full lower triangle has 78 entries; the input had 13.
  EXPECT_EQ(r.local_added, 78 - 13);
}

TEST(ExtendTest, ExtensionRespectsLineBoundaries) {
  // 64 B lines = 8 values: entry at column 10 of row 20 extends only within
  // [8, 16), not to columns below 8 or at/above 16.
  std::vector<std::vector<index_t>> rows(21);
  for (index_t i = 0; i < 21; ++i) rows[static_cast<std::size_t>(i)] = {i};
  rows[20] = {10, 20};
  const auto s = lower(21, rows);
  const auto r =
      extend_pattern(s, Layout::blocked(21, 1), 64, ExtensionMode::LocalOnly);
  for (index_t k = 8; k < 16; ++k) {
    EXPECT_TRUE(r.extended.contains(20, k));
  }
  EXPECT_FALSE(r.extended.contains(20, 7));
  // Column 16..19 belong to the line of the diagonal entry 20 (line [16,24)),
  // which also gets extended.
  EXPECT_TRUE(r.extended.contains(20, 16));
}

TEST(ExtendTest, ExtensionStaysLowerTriangular) {
  const auto a = poisson2d(8, 8);
  const auto s = a.pattern().lower_triangle();
  for (const auto mode : {ExtensionMode::LocalOnly, ExtensionMode::CommAware,
                          ExtensionMode::FullHalo}) {
    const auto r = extend_pattern(s, Layout::blocked(a.rows(), 4), 64, mode);
    EXPECT_TRUE(r.extended.is_lower_triangular()) << to_string(mode);
    EXPECT_GE(r.extended.nnz(), s.nnz());
  }
}

TEST(ExtendTest, LocalOnlyAddsNoHaloEntries) {
  const auto a = poisson2d(10, 10);
  const auto s = a.pattern().lower_triangle();
  const Layout l = Layout::blocked(a.rows(), 5);
  const auto r = extend_pattern(s, l, 64, ExtensionMode::LocalOnly);
  EXPECT_EQ(r.halo_added, 0);
  EXPECT_GT(r.local_added, 0);
  // Verify entry-by-entry: every added entry is rank-local.
  for (index_t i = 0; i < a.rows(); ++i) {
    const rank_t p = l.owner(i);
    for (index_t j : r.extended.row(i)) {
      if (!s.contains(i, j)) {
        EXPECT_TRUE(l.owns(p, j)) << "(" << i << "," << j << ")";
      }
    }
  }
}

TEST(ExtendTest, CommAwareKeepsBothSchemesInvariant) {
  const auto a = poisson2d(12, 12);
  const auto s = a.pattern().lower_triangle();
  const Layout l = Layout::blocked(a.rows(), 6);
  const auto r = extend_pattern(s, l, 128, ExtensionMode::CommAware);

  const auto scheme_before = CommScheme::from_pattern(s, l);
  const auto scheme_after = CommScheme::from_pattern(r.extended, l);
  EXPECT_TRUE(scheme_after.subset_of(scheme_before));

  const auto scheme_t_before = CommScheme::from_pattern(s.transposed(), l);
  const auto scheme_t_after = CommScheme::from_pattern(r.extended.transposed(), l);
  EXPECT_TRUE(scheme_t_after.subset_of(scheme_t_before));
}

TEST(ExtendTest, FullHaloGrowsCommunication) {
  // Use a layout that splits cache lines across ranks so naive halo
  // extension must add new exchanges.
  const auto a = poisson2d(16, 8);
  const auto s = a.pattern().lower_triangle();
  const Layout l = Layout::blocked(a.rows(), 8);
  const auto comm_aware = extend_pattern(s, l, 256, ExtensionMode::CommAware);
  const auto full = extend_pattern(s, l, 256, ExtensionMode::FullHalo);
  EXPECT_GT(full.halo_added, comm_aware.halo_added);

  const auto scheme_before = CommScheme::from_pattern(s, l);
  const auto scheme_full = CommScheme::from_pattern(full.extended, l);
  EXPECT_FALSE(scheme_full.subset_of(scheme_before))
      << "naive halo extension should need new exchanges on this layout";
}

TEST(ExtendTest, CommAwareAdmitsHaloEntriesWhenSchemeAllows) {
  // Tridiagonal over 2 ranks with 2-value lines: row 4 (rank 1) has halo
  // entry at column 3 (rank 0), whose line covers {2, 3}. Admitting (4, 2)
  // requires x_2 already flowing 0→1 (it does not: only x_3 flows) — so the
  // candidate is rejected. With 4-value lines the line of column 3 is
  // {0,1,2,3} and still nothing new is admitted. Now make row 4 also couple
  // to column 2 so x_2 flows: then (4, 3)'s line adds nothing new but
  // candidates of column 2's line {2,3} are both admissible.
  const auto s = lower(8, {{0}, {0, 1}, {1, 2}, {2, 3}, {2, 3, 4}, {4, 5},
                           {5, 6}, {6, 7}});
  const Layout l = Layout::blocked(8, 2);  // rank 0: 0-3, rank 1: 4-7

  const auto scheme = CommScheme::from_pattern(s, l);
  ASSERT_TRUE(scheme.receives(1, 2));
  ASSERT_TRUE(scheme.receives(1, 3));

  const auto scheme_t = CommScheme::from_pattern(s.transposed(), l);
  ASSERT_TRUE(scheme_t.receives(0, 4));  // G^T x needs x_4 on rank 0

  const auto r = extend_pattern(s, l, 16, ExtensionMode::CommAware);
  // Line of 16 B = 2 values: row 4's entries 2,3 cover line {2,3}: both
  // already present. Row 5 entry 4,5 covers {4,5}: local. So nothing added
  // in the halo…
  EXPECT_EQ(r.halo_added, 0);

  // …but with 32 B lines (4 values) row 4's halo line is {0,1,2,3}: columns
  // 0,1 are NOT received by rank 1, so they must be rejected; 2,3 present.
  const auto r2 = extend_pattern(s, l, 32, ExtensionMode::CommAware);
  EXPECT_FALSE(r2.extended.contains(4, 0));
  EXPECT_FALSE(r2.extended.contains(4, 1));
  // The same candidates ARE admitted by the naive strawman.
  const auto r3 = extend_pattern(s, l, 32, ExtensionMode::FullHalo);
  EXPECT_TRUE(r3.extended.contains(4, 0));
  EXPECT_TRUE(r3.extended.contains(4, 1));
}

TEST(ExtendTest, LargerLinesAddMoreEntries) {
  const auto a = poisson2d(12, 12);
  const auto s = a.pattern().lower_triangle();
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto r64 = extend_pattern(s, l, 64, ExtensionMode::CommAware);
  const auto r256 = extend_pattern(s, l, 256, ExtensionMode::CommAware);
  EXPECT_GT(r256.total_added(), r64.total_added());
}

TEST(ExtendTest, RejectsNonLowerTriangularInput) {
  const auto a = poisson2d(4, 4);
  EXPECT_THROW((void)extend_pattern(a.pattern(), Layout::blocked(a.rows(), 2), 64,
                                    ExtensionMode::LocalOnly),
               Error);
}

TEST(ExtendTest, RejectsBadLineSize) {
  const auto s = lower(2, {{0}, {1}});
  EXPECT_THROW(
      (void)extend_pattern(s, Layout::blocked(2, 1), 12, ExtensionMode::LocalOnly),
      Error);
}

struct ExtendCase {
  rank_t nranks;
  int line_bytes;
};

class ExtendInvarianceProperty
    : public ::testing::TestWithParam<std::tuple<rank_t, int>> {};

TEST_P(ExtendInvarianceProperty, CommSchemeNeverGrowsUnderCommAware) {
  const auto [nranks, line_bytes] = GetParam();
  const auto a = poisson2d(13, 11);  // odd sizes: lines straddle rank edges
  const auto s = a.pattern().lower_triangle();
  const Layout l = Layout::blocked(a.rows(), nranks);
  const auto r = extend_pattern(s, l, line_bytes, ExtensionMode::CommAware);

  const auto g_before = CommScheme::from_pattern(s, l);
  const auto g_after = CommScheme::from_pattern(r.extended, l);
  EXPECT_TRUE(g_after.subset_of(g_before))
      << "ranks=" << nranks << " line=" << line_bytes;
  const auto t_before = CommScheme::from_pattern(s.transposed(), l);
  const auto t_after = CommScheme::from_pattern(r.extended.transposed(), l);
  EXPECT_TRUE(t_after.subset_of(t_before))
      << "ranks=" << nranks << " line=" << line_bytes;
  // CommAware must dominate LocalOnly in added entries.
  const auto local = extend_pattern(s, l, line_bytes, ExtensionMode::LocalOnly);
  EXPECT_GE(r.total_added(), local.total_added());
  EXPECT_EQ(r.local_added, local.local_added);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExtendInvarianceProperty,
    ::testing::Combine(::testing::Values<rank_t>(1, 2, 3, 5, 8),
                       ::testing::Values(32, 64, 128, 256)));

}  // namespace
}  // namespace fsaic
