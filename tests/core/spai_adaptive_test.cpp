// Tests for the SAI-family baselines beyond FSAI: the non-factorized SPAI
// (Section 2.2 of the paper) and the adaptive/dynamic pattern growth the
// related-work section discusses.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/adaptive.hpp"
#include "core/fsai.hpp"
#include "core/fsai_driver.hpp"
#include "core/spai.hpp"
#include "matgen/generators.hpp"
#include "solver/pcg.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace fsaic {
namespace {

value_t inverse_residual(const CsrMatrix& a, const CsrMatrix& m) {
  return identity_residual_fro(multiply(a, m));
}

TEST(SpaiTest, DiagonalMatrixGivesExactInverse) {
  CooBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(1, 1, 4.0);
  b.add(2, 2, 8.0);
  const auto a = b.to_csr();
  const auto m = compute_spai(a, a.pattern());
  EXPECT_NEAR(m.at(0, 0), 0.5, 1e-14);
  EXPECT_NEAR(m.at(1, 1), 0.25, 1e-14);
  EXPECT_NEAR(m.at(2, 2), 0.125, 1e-14);
}

TEST(SpaiTest, FullPatternGivesExactInverse) {
  const auto a = poisson2d(3, 3);
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.rows(); ++j) {
      rows[static_cast<std::size_t>(i)].push_back(j);
    }
  }
  const auto full = SparsityPattern::from_rows(a.rows(), a.rows(), std::move(rows));
  const auto m = compute_spai(a, full);
  EXPECT_LT(inverse_residual(a, m), 1e-9);
}

TEST(SpaiTest, BeatsJacobiScalingInFrobenius) {
  const auto a = poisson2d(8, 8);
  const auto m = compute_spai(a, a.pattern());
  // Jacobi "inverse": D^{-1}.
  CooBuilder jb(a.rows(), a.rows());
  for (index_t i = 0; i < a.rows(); ++i) {
    jb.add(i, i, 1.0 / a.at(i, i));
  }
  EXPECT_LT(inverse_residual(a, m), inverse_residual(a, jb.to_csr()));
}

TEST(SpaiTest, PreconditionerReducesCgIterations) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  Rng rng(1);
  std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector b(l, bg);

  DistVector x0(l);
  const auto plain = cg_solve(d, b, x0, {.rel_tol = 1e-8, .max_iterations = 4000});
  const SpaiPreconditioner spai(a, l);
  DistVector x1(l);
  const auto prec = pcg_solve(d, b, x1, spai, {.rel_tol = 1e-8, .max_iterations = 4000});
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
}

TEST(SpaiTest, SymmetrizedApplicationIsSymmetric) {
  const auto a = poisson2d(6, 6);
  const Layout l = Layout::blocked(a.rows(), 2);
  const SpaiPreconditioner spai(a, l);
  Rng rng(2);
  std::vector<value_t> u(static_cast<std::size_t>(a.rows()));
  std::vector<value_t> v(u.size());
  for (auto& e : u) e = rng.next_uniform(-1.0, 1.0);
  for (auto& e : v) e = rng.next_uniform(-1.0, 1.0);
  const DistVector du(l, u);
  const DistVector dv(l, v);
  DistVector mu(l);
  DistVector mv(l);
  spai.apply(du, mu);
  spai.apply(dv, mv);
  EXPECT_NEAR(dist_dot(dv, mu), dist_dot(du, mv), 1e-12);
}

TEST(AdaptiveTest, PatternIsLowerTriangularWithDiagonal) {
  const auto a = poisson2d(8, 8);
  const auto p = adaptive_fsai_pattern(a, {.growth_steps = 3, .entries_per_step = 2});
  EXPECT_TRUE(p.is_lower_triangular());
  EXPECT_TRUE(p.has_full_diagonal());
  EXPECT_GT(p.nnz(), a.rows());  // grew beyond the diagonal
  // Bounded growth: at most 1 + steps*entries per row.
  for (index_t i = 0; i < p.rows(); ++i) {
    EXPECT_LE(p.row_nnz(i), 1 + 3 * 2);
  }
}

TEST(AdaptiveTest, ZeroStepsGivesDiagonalPattern) {
  const auto a = poisson2d(5, 5);
  const auto p = adaptive_fsai_pattern(a, {.growth_steps = 0, .entries_per_step = 2});
  EXPECT_EQ(p.nnz(), a.rows());
  EXPECT_TRUE(p.has_full_diagonal());
}

TEST(AdaptiveTest, MoreGrowthImprovesFrobeniusQuality) {
  const auto a = poisson2d(10, 10);
  value_t prev = 1e300;
  for (int steps : {0, 1, 2, 4}) {
    const auto p =
        adaptive_fsai_pattern(a, {.growth_steps = steps, .entries_per_step = 2});
    const auto g = compute_fsai_factor(a, p);
    const auto res = identity_residual_fro(multiply(multiply(g, a), transpose(g)));
    EXPECT_LE(res, prev + 1e-12) << "steps=" << steps;
    prev = res;
  }
}

TEST(AdaptiveTest, MatchesOrBeatsStaticFsaiIterationsAtSimilarSize) {
  // The selling point of dynamic patterns (paper Section 6): better
  // numerics per nonzero than a-priori patterns.
  const auto a = permute_symmetric(graded2d(24, 24, 1e4),
                                   tile_permutation_2d(24, 24, 4, 2));
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  Rng rng(3);
  std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector b(l, bg);

  const auto solve_with_pattern = [&](const SparsityPattern& p) {
    const auto g = compute_fsai_factor(a, p);
    const FactorizedPreconditioner precond(
        DistCsr::distribute(g, l), DistCsr::distribute(transpose(g), l), "x");
    DistVector x(l);
    return pcg_solve(d, b, x, precond, {.rel_tol = 1e-8, .max_iterations = 5000});
  };

  const auto static_pattern = fsai_base_pattern(a, 1, 0.0);
  const double static_avg_row =
      static_cast<double>(static_pattern.nnz()) / a.rows();
  // Adaptive pattern grown to a similar average row size.
  const auto steps = static_cast<int>(static_avg_row);  // entries_per_step=1
  const auto adaptive = adaptive_fsai_pattern(
      a, {.growth_steps = steps, .entries_per_step = 1});
  const auto r_static = solve_with_pattern(static_pattern);
  const auto r_adaptive = solve_with_pattern(adaptive);
  ASSERT_TRUE(r_static.converged);
  ASSERT_TRUE(r_adaptive.converged);
  EXPECT_LE(r_adaptive.iterations, static_cast<int>(r_static.iterations * 1.10))
      << "adaptive=" << adaptive.nnz() << " static=" << static_pattern.nnz();
}

}  // namespace
}  // namespace fsaic
