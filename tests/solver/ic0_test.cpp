#include "solver/ic0.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "matgen/generators.hpp"
#include "solver/pcg.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {
namespace {

TEST(Ic0Test, TridiagonalFactorIsExactCholesky) {
  // IC(0) with zero fill on a tridiagonal matrix IS the exact Cholesky
  // factor (no fill exists to discard).
  const index_t n = 12;
  CooBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add_symmetric(i, i - 1, -1.0);
  }
  const auto a = b.to_csr();
  const auto l = ic0_factor(a);
  const auto llt = multiply(l, transpose(l));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_NEAR(llt.at(i, j), a.at(i, j), 1e-12) << i << "," << j;
    }
  }
}

TEST(Ic0Test, FactorMatchesOnPatternForPoisson) {
  // On the IC(0) pattern the product L L^T reproduces A exactly (the
  // defining property of incomplete factorization with zero fill on
  // M-matrices).
  const auto a = poisson2d(6, 6);
  const auto l = ic0_factor(a);
  const auto llt = multiply(l, transpose(l));
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      if (j <= i) {
        EXPECT_NEAR(llt.at(i, j), a.at(i, j), 1e-12) << i << "," << j;
      }
    }
  }
}

TEST(Ic0Test, SolveInvertsFactor) {
  const auto a = poisson2d(7, 7);
  const auto l = ic0_factor(a);
  Rng rng(4);
  std::vector<value_t> x(static_cast<std::size_t>(a.rows()));
  for (auto& v : x) v = rng.next_uniform(-1.0, 1.0);
  // y = L L^T x, then solve back.
  std::vector<value_t> tmp(x.size());
  spmv_transpose(l, x, tmp);
  std::vector<value_t> y(x.size());
  spmv(l, tmp, y);
  ic_solve_in_place(l, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-10);
  }
}

TEST(Ic0Test, BreakdownThrows) {
  // Indefinite matrix: pivot goes non-positive.
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add_symmetric(1, 0, 2.0);
  b.add(1, 1, 1.0);
  EXPECT_THROW((void)ic0_factor(b.to_csr()), Error);
}

TEST(BlockIc0Test, SingleRankBeatsFsaiIterations) {
  // With one rank, block-IC(0) is global IC(0) — the strongest of the
  // classic implicit baselines on Poisson; it should need fewer iterations
  // than Jacobi by a wide margin.
  const auto a = poisson2d(20, 20);
  const Layout l = Layout::blocked(a.rows(), 1);
  const auto d = DistCsr::distribute(a, l);
  Rng rng(5);
  std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector b(l, bg);

  const BlockIc0Preconditioner ic(d);
  const JacobiPreconditioner jac(d);
  DistVector x1(l);
  DistVector x2(l);
  const auto r_ic = pcg_solve(d, b, x1, ic, {.rel_tol = 1e-8, .max_iterations = 2000});
  const auto r_jac = pcg_solve(d, b, x2, jac, {.rel_tol = 1e-8, .max_iterations = 2000});
  ASSERT_TRUE(r_ic.converged);
  ASSERT_TRUE(r_jac.converged);
  EXPECT_LT(r_ic.iterations, r_jac.iterations / 2);
}

TEST(BlockIc0Test, QualityDegradesWithRankCount) {
  // The paper's motivation for FSAI: implicit preconditioners lose coupling
  // (and therefore iterations) as the rank count grows, while their
  // triangular solves stay sequential within each rank.
  const auto a = poisson2d(24, 24);
  Rng rng(6);
  std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);

  int prev_iters = 0;
  for (const rank_t nranks : {1, 4, 16}) {
    const Layout l = Layout::blocked(a.rows(), nranks);
    const auto d = DistCsr::distribute(a, l);
    const BlockIc0Preconditioner ic(d);
    DistVector x(l);
    const auto r = pcg_solve(d, DistVector(l, bg), x, ic,
                             {.rel_tol = 1e-8, .max_iterations = 2000});
    ASSERT_TRUE(r.converged) << nranks;
    EXPECT_GE(r.iterations, prev_iters) << nranks;
    prev_iters = r.iterations;
  }
}

TEST(BlockIc0Test, ApplicationIsCommunicationFree) {
  const auto a = poisson2d(10, 10);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const BlockIc0Preconditioner ic(d);
  DistVector r(l);
  r.fill(1.0);
  DistVector z(l);
  CommStats stats;
  ic.apply(r, z, &stats);
  EXPECT_EQ(stats.halo_bytes, 0);
  EXPECT_EQ(stats.allreduce_count, 0);
  EXPECT_EQ(ic.max_block_rows(), 25);
}

}  // namespace
}  // namespace fsaic
