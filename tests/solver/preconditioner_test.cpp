#include "solver/preconditioner.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "matgen/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace fsaic {
namespace {

DistVector random_vec(const Layout& l, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> g(static_cast<std::size_t>(l.global_size()));
  for (auto& v : g) v = rng.next_uniform(-1.0, 1.0);
  return DistVector(l, g);
}

TEST(IdentityPreconditionerTest, CopiesInput) {
  const Layout l = Layout::blocked(20, 3);
  const auto r = random_vec(l, 1);
  DistVector z(l);
  IdentityPreconditioner{}.apply(r, z);
  EXPECT_EQ(z.to_global(), r.to_global());
}

TEST(JacobiPreconditionerTest, DividesByDiagonal) {
  const auto a = poisson2d(5, 5);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const JacobiPreconditioner jacobi(d);
  const auto r = random_vec(l, 2);
  DistVector z(l);
  jacobi.apply(r, z);
  const auto rg = r.to_global();
  const auto zg = z.to_global();
  for (std::size_t i = 0; i < zg.size(); ++i) {
    EXPECT_NEAR(zg[i], rg[i] / 4.0, 1e-15);  // Poisson diagonal is 4
  }
}

TEST(JacobiPreconditionerTest, RejectsZeroDiagonal) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add_symmetric(0, 1, 1.0);
  // (1,1) structurally zero.
  const auto d = DistCsr::distribute(b.to_csr(), Layout::blocked(2, 1));
  EXPECT_THROW(JacobiPreconditioner{d}, Error);
}

TEST(BlockJacobiPreconditionerTest, BlockSizeOneEqualsJacobi) {
  const auto a = poisson2d(6, 6);
  const Layout l = Layout::blocked(a.rows(), 3);
  const auto d = DistCsr::distribute(a, l);
  const JacobiPreconditioner jac(d);
  const BlockJacobiPreconditioner bj(d, 1);
  const auto r = random_vec(l, 3);
  DistVector z1(l);
  DistVector z2(l);
  jac.apply(r, z1);
  bj.apply(r, z2);
  const auto g1 = z1.to_global();
  const auto g2 = z2.to_global();
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g1[i], g2[i], 1e-14);
  }
}

TEST(BlockJacobiPreconditionerTest, FullLocalBlockSolvesLocalSystemExactly) {
  // With block size = local size and one rank, applying the preconditioner
  // to A x must return x.
  const auto a = poisson2d(4, 4);
  const Layout l = Layout::blocked(a.rows(), 1);
  const auto d = DistCsr::distribute(a, l);
  const BlockJacobiPreconditioner bj(d, a.rows());
  const auto x = random_vec(l, 4);
  DistVector ax(l);
  d.spmv(x, ax);
  DistVector z(l);
  bj.apply(ax, z);
  const auto xg = x.to_global();
  const auto zg = z.to_global();
  for (std::size_t i = 0; i < xg.size(); ++i) {
    EXPECT_NEAR(zg[i], xg[i], 1e-10);
  }
}

TEST(FactorizedPreconditionerTest, AppliesGtTimesG) {
  const auto a = poisson2d(8, 8);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto build = build_fsai_preconditioner(a, l, FsaiOptions{});
  const FactorizedPreconditioner precond(build.g_dist, build.gt_dist, "p");
  const auto r = random_vec(l, 5);
  DistVector z(l);
  CommStats stats;
  precond.apply(r, z, &stats);

  // Reference: z = G^T (G r) computed serially on the gathered vectors.
  const auto rg = r.to_global();
  std::vector<value_t> w(rg.size());
  spmv(build.g, rg, w);
  std::vector<value_t> ref(rg.size());
  spmv_transpose(build.g, w, ref);
  const auto zg = z.to_global();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(zg[i], ref[i], 1e-12);
  }
  // Two halo updates were recorded (G then G^T).
  EXPECT_EQ(stats.halo_bytes, build.g_dist.halo_update_bytes() +
                                  build.gt_dist.halo_update_bytes());
}

TEST(FactorizedPreconditionerTest, ApplicationIsSymmetricPositive) {
  // M = G^T G must satisfy r^T M r > 0 and s^T M r == r^T M s.
  const auto a = poisson2d(7, 7);
  const Layout l = Layout::blocked(a.rows(), 3);
  const auto build = build_fsai_preconditioner(a, l, FsaiOptions{});
  const FactorizedPreconditioner precond(build.g_dist, build.gt_dist, "p");
  const auto r = random_vec(l, 6);
  const auto s = random_vec(l, 7);
  DistVector mr(l);
  DistVector ms(l);
  precond.apply(r, mr);
  precond.apply(s, ms);
  EXPECT_GT(dist_dot(r, mr), 0.0);
  EXPECT_NEAR(dist_dot(s, mr), dist_dot(r, ms), 1e-10);
}

TEST(PreconditionerTest, NamesAreStable) {
  const auto a = poisson2d(4, 4);
  const Layout l = Layout::blocked(a.rows(), 1);
  const auto d = DistCsr::distribute(a, l);
  EXPECT_EQ(IdentityPreconditioner{}.name(), "identity");
  EXPECT_EQ(JacobiPreconditioner{d}.name(), "jacobi");
  EXPECT_EQ((BlockJacobiPreconditioner{d, 4}.name()), "block-jacobi");
}

}  // namespace
}  // namespace fsaic
