#include "solver/pcg.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {
namespace {

/// ||b - A x||_2 computed serially on gathered vectors.
value_t true_residual(const CsrMatrix& a, const DistVector& x, const DistVector& b) {
  const auto xg = x.to_global();
  const auto bg = b.to_global();
  std::vector<value_t> r(static_cast<std::size_t>(a.rows()));
  spmv(a, xg, r);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = bg[i] - r[i];
  }
  return norm2(r);
}

DistVector random_rhs(const Layout& l, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> bg(static_cast<std::size_t>(l.global_size()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  return DistVector(l, bg);
}

TEST(CgTest, SolvesPoissonToTolerance) {
  const auto a = poisson2d(20, 20);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 1);
  DistVector x(l);
  const auto result = cg_solve(d, b, x, {.rel_tol = 1e-10, .max_iterations = 2000});
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 5);
  EXPECT_LE(true_residual(a, x, b), 1e-9 * result.initial_residual);
}

TEST(CgTest, ZeroRhsConvergesImmediately) {
  const auto a = poisson2d(5, 5);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  DistVector b(l);
  DistVector x(l);
  const auto result = cg_solve(d, b, x);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

TEST(CgTest, ExactInitialGuessConvergesImmediately) {
  const auto a = poisson2d(6, 6);
  const Layout l = Layout::blocked(a.rows(), 3);
  const auto d = DistCsr::distribute(a, l);
  // b = A * ones, x0 = ones.
  std::vector<value_t> ones(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<value_t> bg(ones.size());
  spmv(a, ones, bg);
  const DistVector b(l, bg);
  DistVector x(l, ones);
  const auto result = cg_solve(d, b, x);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

TEST(CgTest, ResidualHistoryIsTrackedAndDecreasesOverall) {
  const auto a = poisson2d(12, 12);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 3);
  DistVector x(l);
  SolveOptions opts;
  opts.track_residual_history = true;
  const auto result = cg_solve(d, b, x, opts);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.residual_history.size(),
            static_cast<std::size_t>(result.iterations) + 1);
  EXPECT_LT(result.residual_history.back(),
            1e-8 * result.residual_history.front());
}

TEST(CgTest, ReferenceResidualHonorsTheColdSolvesTarget) {
  // The warm-start contract: a solve seeded with a previous solution and
  // the previous run's ||r_0|| as reference converges against the ORIGINAL
  // target rel_tol * reference — not against its own (already tiny) initial
  // residual, which would demand pointless extra digits.
  const auto a = poisson2d(12, 12);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 9);
  DistVector x(l);
  const auto cold = cg_solve(d, b, x, {.rel_tol = 1e-8});
  ASSERT_TRUE(cold.converged);
  ASSERT_GT(cold.iterations, 0);

  // x now holds the converged solution. Re-solving with the cold reference
  // recognizes the target is already met and returns without iterating.
  const auto warm =
      cg_solve(d, b, x,
               {.rel_tol = 1e-8,
                .reference_residual = cold.initial_residual});
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.iterations, 0);
  EXPECT_LE(warm.final_residual, 1e-8 * cold.initial_residual);

  // Without the reference, the same warm start chases 1e-8 relative to its
  // own tiny r_0 and must iterate — the default path is unchanged.
  DistVector y = x;
  const auto no_ref = cg_solve(d, b, y, {.rel_tol = 1e-8});
  EXPECT_GT(no_ref.iterations, 0);
}

TEST(CgTest, ReferenceResidualStillIteratesWhenTargetNotMet) {
  // A reference only relaxes the target; a cold start with the (equal)
  // reference must behave exactly like the default solve.
  const auto a = poisson2d(10, 10);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 11);
  DistVector x0(l);
  const auto base = cg_solve(d, b, x0, {.rel_tol = 1e-8});
  DistVector x1(l);
  const auto with_ref =
      cg_solve(d, b, x1,
               {.rel_tol = 1e-8, .reference_residual = base.initial_residual});
  EXPECT_EQ(with_ref.iterations, base.iterations)
      << "reference == own r_0 must reproduce the default solve";
  EXPECT_EQ(with_ref.final_residual, base.final_residual);
}

TEST(CgTest, MaxIterationsStopsWithoutConvergence) {
  const auto a = anisotropic2d(30, 30, 0.01);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 4);
  DistVector x(l);
  const auto result = cg_solve(d, b, x, {.rel_tol = 1e-14, .max_iterations = 5});
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 5);
}

TEST(CgTest, IterationCountMatchesTheorysBoundForDiagonal) {
  // For a diagonal matrix with k distinct eigenvalues CG converges in at
  // most k iterations (exact arithmetic); allow +1 for rounding.
  CooBuilder builder(8, 8);
  for (index_t i = 0; i < 8; ++i) {
    builder.add(i, i, (i % 2 == 0) ? 1.0 : 4.0);  // two distinct eigenvalues
  }
  const auto a = builder.to_csr();
  const Layout l = Layout::blocked(8, 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 5);
  DistVector x(l);
  const auto result = cg_solve(d, b, x, {.rel_tol = 1e-12, .max_iterations = 100});
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 3);
}

TEST(PcgTest, JacobiHelpsScaledSystem) {
  // Badly scaled diagonal blocks: Jacobi fixes scaling, plain CG suffers.
  const auto base = poisson2d(15, 15);
  CooBuilder builder(base.rows(), base.cols());
  for (index_t i = 0; i < base.rows(); ++i) {
    const value_t s = (i < base.rows() / 2) ? 1.0 : 1e4;
    for (std::size_t k = 0; k < base.row_cols(i).size(); ++k) {
      const index_t j = base.row_cols(i)[k];
      const value_t sj = (j < base.rows() / 2) ? 1.0 : 1e4;
      builder.add(i, j, base.row_vals(i)[k] * std::sqrt(s) * std::sqrt(sj));
    }
  }
  const auto a = builder.to_csr();
  const Layout l = Layout::blocked(a.rows(), 3);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 6);

  DistVector x1(l);
  const auto plain = cg_solve(d, b, x1, {.rel_tol = 1e-8, .max_iterations = 4000});
  DistVector x2(l);
  const JacobiPreconditioner jacobi(d);
  const auto prec = pcg_solve(d, b, x2, jacobi,
                              {.rel_tol = 1e-8, .max_iterations = 4000});
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
}

TEST(PcgTest, BlockJacobiBeatsJacobiOnPoisson) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 7);

  DistVector x1(l);
  const JacobiPreconditioner jacobi(d);
  const auto r1 = pcg_solve(d, b, x1, jacobi, {.rel_tol = 1e-8, .max_iterations = 2000});
  DistVector x2(l);
  const BlockJacobiPreconditioner bj(d, 16);
  const auto r2 = pcg_solve(d, b, x2, bj, {.rel_tol = 1e-8, .max_iterations = 2000});
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
  EXPECT_LE(true_residual(a, x2, b), 1e-7 * r2.initial_residual);
}

TEST(PcgTest, CommStatsCountHaloAndAllreduce) {
  const auto a = poisson2d(10, 10);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 8);
  DistVector x(l);
  const auto result = cg_solve(d, b, x);
  ASSERT_TRUE(result.converged);
  // 3 allreduces per iteration (2 dots + 1 norm) plus setup ones.
  EXPECT_GE(result.comm.allreduce_count, 3 * result.iterations);
  EXPECT_GT(result.comm.halo_bytes, 0);
}

TEST(PcgTest, NonPositiveDefiniteDirectionAborts) {
  // Indefinite matrix: CG must bail out instead of diverging.
  CooBuilder builder(4, 4);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -1.0);
  builder.add(2, 2, 1.0);
  builder.add(3, 3, -1.0);
  const auto a = builder.to_csr();
  const Layout l = Layout::blocked(4, 1);
  const auto d = DistCsr::distribute(a, l);
  std::vector<value_t> bg{0.0, 1.0, 0.0, 1.0};
  const DistVector b(l, bg);
  DistVector x(l);
  const auto result = cg_solve(d, b, x, {.rel_tol = 1e-8, .max_iterations = 50});
  EXPECT_FALSE(result.converged);
}

class PcgRankInvariance : public ::testing::TestWithParam<rank_t> {};

TEST_P(PcgRankInvariance, IterationCountIndependentOfRankCount) {
  // The distributed CG is algebraically identical for any rank count;
  // iteration counts must match exactly (deterministic arithmetic order
  // differs only in the dot-product reduction, which stays within one ulp —
  // allow a ±1 iteration wobble).
  const auto a = poisson2d(14, 14);
  const auto b_global = [&] {
    Rng rng(9);
    std::vector<value_t> v(static_cast<std::size_t>(a.rows()));
    for (auto& e : v) e = rng.next_uniform(-1.0, 1.0);
    return v;
  }();

  const Layout l1 = Layout::blocked(a.rows(), 1);
  const auto d1 = DistCsr::distribute(a, l1);
  DistVector x1(l1);
  const auto r1 = cg_solve(d1, DistVector(l1, b_global), x1);

  const rank_t nranks = GetParam();
  const Layout lp = Layout::blocked(a.rows(), nranks);
  const auto dp = DistCsr::distribute(a, lp);
  DistVector xp(lp);
  const auto rp = cg_solve(dp, DistVector(lp, b_global), xp);

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(rp.converged);
  EXPECT_NEAR(rp.iterations, r1.iterations, 1);
  // Solutions agree.
  const auto g1 = x1.to_global();
  const auto gp = xp.to_global();
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(gp[i], g1[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, PcgRankInvariance, ::testing::Values(2, 3, 7, 14));

}  // namespace
}  // namespace fsaic
