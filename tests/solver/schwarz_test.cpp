#include "solver/schwarz.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "matgen/generators.hpp"
#include "solver/ic0.hpp"
#include "solver/pcg.hpp"

namespace fsaic {
namespace {

DistVector random_rhs(const Layout& l, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> bg(static_cast<std::size_t>(l.global_size()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  return DistVector(l, bg);
}

TEST(SchwarzTest, ZeroOverlapEqualsBlockIc0) {
  const auto a = poisson2d(12, 12);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const SchwarzPreconditioner ras(a, l, 0);
  const BlockIc0Preconditioner bic(d);

  const auto r = random_rhs(l, 1);
  DistVector z1(l);
  DistVector z2(l);
  ras.apply(r, z1);
  bic.apply(r, z2);
  const auto g1 = z1.to_global();
  const auto g2 = z2.to_global();
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g1[i], g2[i], 1e-12);
  }
  EXPECT_EQ(ras.apply_halo_bytes(), 0);
  EXPECT_EQ(ras.max_extended_rows(), 36);
}

TEST(SchwarzTest, OverlapGrowsRegionsAndCommunication) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 4);
  std::int64_t prev_bytes = -1;
  index_t prev_rows = 0;
  for (int overlap : {0, 1, 2, 3}) {
    const SchwarzPreconditioner ras(a, l, overlap);
    EXPECT_GT(ras.apply_halo_bytes(), prev_bytes) << "overlap " << overlap;
    EXPECT_GE(ras.max_extended_rows(), prev_rows);
    prev_bytes = ras.apply_halo_bytes();
    prev_rows = ras.max_extended_rows();
  }
}

TEST(SchwarzTest, OverlapReducesIterations) {
  const auto a = poisson2d(20, 20);
  const Layout l = Layout::blocked(a.rows(), 8);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 2);

  int prev_iters = 100000;
  for (int overlap : {0, 2, 4}) {
    const SchwarzPreconditioner ras(a, l, overlap);
    DistVector x(l);
    const auto r = pcg_solve(d, b, x, ras, {.rel_tol = 1e-8, .max_iterations = 2000});
    ASSERT_TRUE(r.converged) << "overlap " << overlap;
    EXPECT_LE(r.iterations, prev_iters) << "overlap " << overlap;
    prev_iters = r.iterations;
  }
}

TEST(SchwarzTest, ApplicationRecordsHaloTraffic) {
  const auto a = poisson2d(10, 10);
  const Layout l = Layout::blocked(a.rows(), 4);
  const SchwarzPreconditioner ras(a, l, 1);
  const auto r = random_rhs(l, 3);
  DistVector z(l);
  CommStats stats;
  ras.apply(r, z, &stats);
  EXPECT_EQ(stats.halo_bytes, ras.apply_halo_bytes());
  EXPECT_EQ(stats.halo_messages, ras.apply_halo_messages());
  EXPECT_GT(stats.halo_bytes, 0);
}

TEST(SchwarzTest, SolutionIsCorrect) {
  // The symmetric additive combination keeps CG's requirements; verify the
  // solve reaches the true solution on a model problem.
  const auto a = poisson2d(14, 14);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 4);
  const SchwarzPreconditioner ras(a, l, 2);
  DistVector x(l);
  const auto r = pcg_solve(d, b, x, ras, {.rel_tol = 1e-9, .max_iterations = 2000});
  ASSERT_TRUE(r.converged);
  // True residual check.
  DistVector ax(l);
  d.spmv(x, ax);
  value_t err = 0.0;
  for (rank_t p = 0; p < l.nranks(); ++p) {
    const auto axb = ax.block(p);
    const auto bb = b.block(p);
    for (std::size_t i = 0; i < axb.size(); ++i) {
      err += (axb[i] - bb[i]) * (axb[i] - bb[i]);
    }
  }
  EXPECT_LE(std::sqrt(err), 1e-7 * r.initial_residual);
}

class SchwarzOverlapProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchwarzOverlapProperty, RegionsCoverOwnedRowsExactlyOnce) {
  const int overlap = GetParam();
  const auto a = poisson3d(6, 6, 6);
  const Layout l = Layout::blocked(a.rows(), 5);
  const SchwarzPreconditioner ras(a, l, overlap);
  // Apply to the constant vector: with overlap 0 the result equals the
  // block solve; for any overlap the output layout must stay consistent
  // (each owned row written exactly once — checked structurally by the
  // apply producing finite values everywhere).
  DistVector r(l);
  r.fill(1.0);
  DistVector z(l);
  ras.apply(r, z);
  for (value_t v : z.to_global()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NE(v, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Overlaps, SchwarzOverlapProperty,
                         ::testing::Values(0, 1, 2, 4));

}  // namespace
}  // namespace fsaic
