#include "solver/chebyshev.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/level_schedule.hpp"
#include "matgen/generators.hpp"
#include "solver/ic0.hpp"
#include "solver/pcg.hpp"
#include "sparse/coo.hpp"

namespace fsaic {
namespace {

DistVector random_rhs(const Layout& l, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> bg(static_cast<std::size_t>(l.global_size()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  return DistVector(l, bg);
}

TEST(ChebyshevTest, ExactBoundsOnDiagonalMatrixInvertWell) {
  // diag(1, 2, 4): exact spectrum bounds, high degree → near-exact inverse.
  CooBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(1, 1, 2.0);
  b.add(2, 2, 4.0);
  const auto a = b.to_csr();
  const Layout l = Layout::blocked(3, 1);
  const auto d = DistCsr::distribute(a, l);
  const ChebyshevPreconditioner cheb(d, 1.0, 4.0, 24);
  std::vector<value_t> rg{1.0, 2.0, 4.0};
  const DistVector r(l, rg);
  DistVector z(l);
  cheb.apply(r, z);
  const auto zg = z.to_global();
  // A^{-1} r = (1, 1, 1).
  for (value_t v : zg) {
    EXPECT_NEAR(v, 1.0, 1e-3);
  }
}

TEST(ChebyshevTest, HigherDegreeReducesCgIterations) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 1);

  int prev = 100000;
  for (const int degree : {1, 3, 6}) {
    const auto cheb =
        ChebyshevPreconditioner::with_estimated_spectrum(a, d, degree);
    DistVector x(l);
    const auto r = pcg_solve(d, b, x, cheb, {.rel_tol = 1e-8, .max_iterations = 2000});
    ASSERT_TRUE(r.converged) << "degree " << degree;
    EXPECT_LT(r.iterations, prev) << "degree " << degree;
    prev = r.iterations;
  }
}

TEST(ChebyshevTest, ApplicationCommunicatesLikeDegreeSpmvs) {
  const auto a = poisson2d(12, 12);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const int degree = 5;
  const ChebyshevPreconditioner cheb(d, 0.1, 8.0, degree);
  const auto r = random_rhs(l, 2);
  DistVector z(l);
  CommStats stats;
  cheb.apply(r, z, &stats);
  // degree-1 SpMVs of A, nothing else: bytes = (degree-1) * one halo update.
  EXPECT_EQ(stats.halo_bytes, (degree - 1) * d.halo_update_bytes());
  EXPECT_EQ(stats.allreduce_count, 0);
}

TEST(ChebyshevTest, RejectsBadSpectrumBounds) {
  const auto a = poisson2d(4, 4);
  const auto d = DistCsr::distribute(a, Layout::blocked(a.rows(), 1));
  EXPECT_THROW((ChebyshevPreconditioner{d, 0.0, 1.0, 3}), Error);
  EXPECT_THROW((ChebyshevPreconditioner{d, 2.0, 1.0, 3}), Error);
  EXPECT_THROW((ChebyshevPreconditioner{d, 0.1, 1.0, 0}), Error);
}

TEST(LevelScheduleTest, TridiagonalFactorIsFullySequential) {
  // Bidiagonal L: row i depends on i-1 → n levels of one row each.
  const index_t n = 10;
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) rows[static_cast<std::size_t>(i)].push_back(i - 1);
    rows[static_cast<std::size_t>(i)].push_back(i);
  }
  CsrMatrix l{SparsityPattern::from_rows(n, n, std::move(rows))};
  const auto schedule = level_schedule(l);
  EXPECT_EQ(schedule.depth(), n);
  EXPECT_DOUBLE_EQ(schedule.average_parallelism(), 1.0);
  EXPECT_DOUBLE_EQ(level_scheduled_speedup(schedule, 48), 1.0);
}

TEST(LevelScheduleTest, DiagonalFactorIsFullyParallel) {
  const index_t n = 16;
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    rows[static_cast<std::size_t>(i)].push_back(i);
  }
  CsrMatrix l{SparsityPattern::from_rows(n, n, std::move(rows))};
  const auto schedule = level_schedule(l);
  EXPECT_EQ(schedule.depth(), 1);
  EXPECT_DOUBLE_EQ(level_scheduled_speedup(schedule, 4), 4.0);
}

TEST(LevelScheduleTest, Ic0FactorDepthGrowsWithMeshSize) {
  // The motivation number: IC(0) triangular-solve critical path grows with
  // the mesh, while SpMV has depth 1 regardless.
  index_t prev_depth = 0;
  for (const index_t n : {8, 16, 32}) {
    const auto a = poisson2d(n, n);
    const auto l = ic0_factor(a);
    const auto schedule = level_schedule(l);
    EXPECT_GT(schedule.depth(), prev_depth) << "mesh " << n;
    prev_depth = schedule.depth();
  }
  // 32x32 Poisson: the level depth exceeds any realistic core count's
  // ability to hide it.
  EXPECT_GE(prev_depth, 32);
}

TEST(LevelScheduleTest, LevelsArePrerequisiteClosed) {
  const auto a = poisson2d(10, 10);
  const auto l = ic0_factor(a);
  const auto schedule = level_schedule(l);
  for (index_t i = 0; i < l.rows(); ++i) {
    for (index_t j : l.row_cols(i)) {
      if (j < i) {
        EXPECT_LT(schedule.level_of[static_cast<std::size_t>(j)],
                  schedule.level_of[static_cast<std::size_t>(i)]);
      }
    }
  }
  // Level sizes sum to n.
  std::size_t total = 0;
  for (const auto& level : schedule.levels) {
    total += level.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(l.rows()));
}

}  // namespace
}  // namespace fsaic
