// Differential tests of the kernel backends behind the distributed solve:
// scalar CSR (the bit-exact reference) vs SELL-C-sigma, fused vs separate
// vector sweeps, and the mixed-precision factor guardrail. The headline
// contract: switching format or fusing sweeps changes WALL-CLOCK only —
// residual histories are compared with EXPECT_EQ on doubles, across
// executors and thread counts. Mixed precision is the one knob that is
// allowed to perturb rounding, and its drift is pinned here.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "exec/threaded_executor.hpp"
#include "matgen/generators.hpp"
#include "solver/pcg.hpp"
#include "solver/pipelined_cg.hpp"
#include "sparse/coo.hpp"
#include "sparse/local_operator.hpp"

namespace fsaic {
namespace {

DistVector random_rhs(const Layout& l, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> bg(static_cast<std::size_t>(l.global_size()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  return DistVector(l, bg);
}

struct SolveSetup {
  CsrMatrix a;
  Layout layout;
  DistCsr a_dist;
  std::unique_ptr<FactorizedPreconditioner> precond;

  SolveSetup(CsrMatrix matrix, rank_t nranks, const KernelConfig& kernel,
             const KernelConfig& factor_kernel)
      : a(std::move(matrix)),
        layout(Layout::blocked(a.rows(), nranks)),
        a_dist(DistCsr::distribute(a, layout)) {
    a_dist.use_kernel(kernel);
    const auto build = build_fsai_preconditioner(a, layout, FsaiOptions{});
    precond = make_factorized_preconditioner(build, "fsai");
    precond->use_kernel(factor_kernel);
  }
};

SolveResult run_pcg(SolveSetup& s, const SolveOptions& base_opts,
                    std::uint64_t rhs_seed, bool pipelined = false) {
  const auto b = random_rhs(s.layout, rhs_seed);
  DistVector x(s.layout);
  SolveOptions opts = base_opts;
  opts.track_residual_history = true;
  return pipelined ? pcg_solve_pipelined(s.a_dist, b, x, *s.precond, opts)
                   : pcg_solve(s.a_dist, b, x, *s.precond, opts);
}

void expect_identical_histories(const SolveResult& ref, const SolveResult& alt,
                                const char* what) {
  ASSERT_EQ(alt.iterations, ref.iterations) << what;
  ASSERT_EQ(alt.residual_history.size(), ref.residual_history.size()) << what;
  for (std::size_t k = 0; k < ref.residual_history.size(); ++k) {
    ASSERT_EQ(alt.residual_history[k], ref.residual_history[k])
        << what << ": iteration " << k;
  }
}

constexpr KernelConfig kCsr{.format = OperatorFormat::Csr};
constexpr KernelConfig kSell{.format = OperatorFormat::Sell};

TEST(KernelBackendTest, SellResidualHistoryIsBitIdenticalToCsr) {
  const auto a = poisson2d(24, 24);
  SolveSetup csr(a, 4, kCsr, kCsr);
  SolveSetup sell(a, 4, kSell, kSell);
  const SolveOptions opts{.rel_tol = 1e-10, .max_iterations = 500};
  const auto r_csr = run_pcg(csr, opts, 11);
  const auto r_sell = run_pcg(sell, opts, 11);
  EXPECT_TRUE(r_csr.converged);
  expect_identical_histories(r_csr, r_sell, "sell vs csr");
}

TEST(KernelBackendTest, SellMatchesCsrUnderPipelinedCg) {
  const auto a = anisotropic2d(20, 20, 0.1);
  SolveSetup csr(a, 3, kCsr, kCsr);
  SolveSetup sell(a, 3, kSell, kSell);
  const SolveOptions opts{.rel_tol = 1e-8, .max_iterations = 800};
  const auto r_csr = run_pcg(csr, opts, 12, /*pipelined=*/true);
  const auto r_sell = run_pcg(sell, opts, 12, /*pipelined=*/true);
  EXPECT_TRUE(r_csr.converged);
  expect_identical_histories(r_csr, r_sell, "pipelined sell vs csr");
}

TEST(KernelBackendTest, FusedSweepsAreBitIdenticalToSeparate) {
  const auto a = poisson2d(18, 18);
  for (const bool pipelined : {false, true}) {
    SolveSetup fused_setup(a, 4, kCsr, kCsr);
    SolveSetup sep_setup(a, 4, kCsr, kCsr);
    SolveOptions opts{.rel_tol = 1e-9, .max_iterations = 500};
    opts.fused_sweeps = true;
    const auto r_fused = run_pcg(fused_setup, opts, 13, pipelined);
    opts.fused_sweeps = false;
    const auto r_sep = run_pcg(sep_setup, opts, 13, pipelined);
    EXPECT_TRUE(r_fused.converged);
    expect_identical_histories(r_fused, r_sep,
                               pipelined ? "pipelined fused vs separate"
                                         : "fused vs separate");
  }
}

TEST(KernelBackendTest, HistoriesInvariantAcrossExecutorsAndFormats) {
  // The full matrix of {csr, sell} x {seq, 2 threads, 4 threads} must
  // produce ONE residual history.
  const auto a = poisson2d(16, 16);
  SolveSetup ref_setup(a, 4, kCsr, kCsr);
  const SolveOptions opts{.rel_tol = 1e-9, .max_iterations = 400};
  const auto ref = run_pcg(ref_setup, opts, 14);
  EXPECT_TRUE(ref.converged);
  for (const auto& kernel : {kCsr, kSell}) {
    for (const int nthreads : {0, 2, 4}) {
      SolveSetup s(a, 4, kernel, kernel);
      SolveOptions run_opts = opts;
      SeqExecutor seq;
      std::unique_ptr<ThreadedExecutor> threaded;
      if (nthreads == 0) {
        run_opts.exec = &seq;
      } else {
        threaded = std::make_unique<ThreadedExecutor>(nthreads);
        run_opts.exec = threaded.get();
      }
      const auto r = run_pcg(s, run_opts, 14);
      expect_identical_histories(ref, r, to_string(kernel.format).c_str());
    }
  }
}

TEST(KernelBackendTest, MixedPrecisionFactorsPassAccuracyGuardrail) {
  // float32 factor storage inside the double CG loop. The guardrail that
  // gates this fast path: the solve still reaches the requested relative
  // residual, in at most 10% more iterations than the double reference.
  const auto a = anisotropic2d(24, 24, 0.05);
  constexpr value_t kRelTol = 1e-8;
  const SolveOptions opts{.rel_tol = kRelTol, .max_iterations = 1000};

  SolveSetup dbl(a, 4, kCsr, kCsr);
  const auto r_dbl = run_pcg(dbl, opts, 15);
  ASSERT_TRUE(r_dbl.converged);

  for (const auto format : {OperatorFormat::Csr, OperatorFormat::Sell}) {
    const KernelConfig mixed{.format = format,
                             .precision = FactorPrecision::Single};
    SolveSetup s(a, 4, KernelConfig{.format = format}, mixed);
    const auto r = run_pcg(s, opts, 15);
    EXPECT_TRUE(r.converged) << to_string(format);
    EXPECT_LE(r.final_residual, kRelTol * r.initial_residual)
        << to_string(format);
    EXPECT_LE(r.iterations,
              r_dbl.iterations + (r_dbl.iterations + 9) / 10)
        << to_string(format) << ": mixed precision degraded convergence past "
        << "the +10% guardrail";
  }
}

TEST(KernelBackendTest, MixedPrecisionPerturbsRoundingOnly) {
  // Sanity check that Single genuinely exercises a different code path:
  // histories should differ in late iterations (else the guardrail test
  // would be vacuous), while early residuals agree to float accuracy.
  const auto a = poisson2d(20, 20);
  const SolveOptions opts{.rel_tol = 1e-10, .max_iterations = 600};
  SolveSetup dbl(a, 2, kCsr, kCsr);
  SolveSetup mixed(a, 2, kCsr,
                   KernelConfig{.format = OperatorFormat::Csr,
                                .precision = FactorPrecision::Single});
  const auto r_dbl = run_pcg(dbl, opts, 16);
  const auto r_mixed = run_pcg(mixed, opts, 16);
  ASSERT_TRUE(r_dbl.converged);
  ASSERT_TRUE(r_mixed.converged);
  ASSERT_GE(r_dbl.residual_history.size(), 2u);
  // First iteration: identical r0 (no preconditioner applied yet for the
  // residual norm), next residual within float rounding.
  EXPECT_EQ(r_mixed.residual_history[0], r_dbl.residual_history[0]);
  EXPECT_NEAR(r_mixed.residual_history[1], r_dbl.residual_history[1],
              1e-4 * r_dbl.residual_history[0]);
  bool diverged_somewhere = false;
  const std::size_t shared =
      std::min(r_dbl.residual_history.size(), r_mixed.residual_history.size());
  for (std::size_t k = 0; k < shared; ++k) {
    if (r_mixed.residual_history[k] != r_dbl.residual_history[k]) {
      diverged_somewhere = true;
      break;
    }
  }
  EXPECT_TRUE(diverged_somewhere)
      << "mixed precision produced a bitwise-identical history — the Single "
         "path is not being exercised";
}

// --format auto: DistCsr scores SELL chunks {4, 8, 16, 32} by padded size
// and keeps the least-padded one, falling back to CSR past 1.25x padding.

TEST(KernelBackendTest, AutotunePinsWidestChunkOnUniformRows) {
  // A diagonal matrix pads identically (not at all) under every chunk; the
  // tie-break must keep the widest candidate.
  CooBuilder bld(64, 64);
  for (index_t i = 0; i < 64; ++i) bld.add(i, i, 2.0);
  const auto a = bld.to_csr();
  auto d = DistCsr::distribute(a, Layout::blocked(a.rows(), 2));
  d.use_kernel(KernelConfig{.autotune = true});
  const KernelConfig& resolved = d.kernel_config();
  EXPECT_FALSE(resolved.autotune);
  EXPECT_EQ(resolved.format, OperatorFormat::Sell);
  EXPECT_EQ(resolved.sell_chunk, 32);
  EXPECT_EQ(d.padding_ratio(), 1.0);
}

TEST(KernelBackendTest, AutotuneFallsBackToCsrWhenEveryChunkOverpads) {
  // Symmetric arrow matrix: one row of length n among rows of length 2.
  // Every chunk containing the dense row pads its whole chunk to n entries,
  // so all candidates blow the 1.25x budget.
  constexpr index_t n = 64;
  CooBuilder bld(n, n);
  for (index_t i = 0; i < n; ++i) bld.add(i, i, 4.0 * n);
  for (index_t i = 1; i < n; ++i) {
    bld.add(0, i, -1.0);
    bld.add(i, 0, -1.0);
  }
  const auto a = bld.to_csr();
  auto d = DistCsr::distribute(a, Layout::blocked(a.rows(), 1));
  d.use_kernel(KernelConfig{.autotune = true});
  const KernelConfig& resolved = d.kernel_config();
  EXPECT_FALSE(resolved.autotune);
  EXPECT_EQ(resolved.format, OperatorFormat::Csr);
  EXPECT_EQ(d.padding_ratio(), 1.0) << "CSR stores no padding";
}

TEST(KernelBackendTest, AutotunePicksLeastPaddedChunkAndSolvesBitwiseLikeCsr) {
  const auto a = poisson2d(24, 24);
  SolveSetup tuned(a, 4, KernelConfig{.autotune = true},
                   KernelConfig{.autotune = true});
  const KernelConfig& resolved = tuned.a_dist.kernel_config();
  EXPECT_FALSE(resolved.autotune);
  ASSERT_EQ(resolved.format, OperatorFormat::Sell);
  EXPECT_LE(tuned.a_dist.padding_ratio(), 1.25);
  // The pick must be the widest chunk among the least-padded explicit builds.
  index_t expected_chunk = 0;
  offset_t best_padded = 0;
  for (const index_t chunk : {4, 8, 16, 32}) {
    auto d = DistCsr::distribute(a, tuned.layout);
    d.use_kernel(KernelConfig{.format = OperatorFormat::Sell,
                              .sell_chunk = chunk,
                              .sell_sigma = 64});
    const offset_t padded = d.padded_entries();
    if (expected_chunk == 0 || padded <= best_padded) {
      expected_chunk = chunk;
      best_padded = padded;
    }
  }
  EXPECT_EQ(resolved.sell_chunk, expected_chunk);
  // And the resolved kernel is still just a storage change: residual
  // histories match scalar CSR bit for bit.
  SolveSetup csr(a, 4, kCsr, kCsr);
  const SolveOptions opts{.rel_tol = 1e-10, .max_iterations = 500};
  const auto r_csr = run_pcg(csr, opts, 29);
  const auto r_auto = run_pcg(tuned, opts, 29);
  EXPECT_TRUE(r_csr.converged);
  expect_identical_histories(r_csr, r_auto, "autotuned vs csr");
}

}  // namespace
}  // namespace fsaic
