#include "solver/pipelined_cg.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "matgen/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {
namespace {

DistVector random_rhs(const Layout& l, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> bg(static_cast<std::size_t>(l.global_size()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  return DistVector(l, bg);
}

TEST(PipelinedCgTest, MatchesClassicPcgSolution) {
  const auto a = poisson2d(16, 16);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 1);
  const auto build = build_fsai_preconditioner(a, l, FsaiOptions{});
  const auto precond = make_factorized_preconditioner(build, "fsai");

  DistVector x1(l);
  const auto classic = pcg_solve(d, b, x1, *precond,
                                 {.rel_tol = 1e-10, .max_iterations = 2000});
  DistVector x2(l);
  const auto piped = pcg_solve_pipelined(d, b, x2, *precond,
                                         {.rel_tol = 1e-10, .max_iterations = 2000});
  ASSERT_TRUE(classic.converged);
  ASSERT_TRUE(piped.converged);
  // Algebraically equivalent recurrences: iteration counts within a couple.
  EXPECT_NEAR(piped.iterations, classic.iterations, 3);
  const auto g1 = x1.to_global();
  const auto g2 = x2.to_global();
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g2[i], g1[i], 1e-6);
  }
}

TEST(PipelinedCgTest, OneAllreducePerIteration) {
  const auto a = poisson2d(12, 12);
  const Layout l = Layout::blocked(a.rows(), 3);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 2);
  const IdentityPreconditioner identity;

  DistVector x1(l);
  const auto classic = pcg_solve(d, b, x1, identity);
  DistVector x2(l);
  const auto piped = pcg_solve_pipelined(d, b, x2, identity);
  ASSERT_TRUE(classic.converged);
  ASSERT_TRUE(piped.converged);
  // Classic: 3 allreduces per iteration (+setup). Pipelined: 1 (+setup).
  EXPECT_GE(classic.comm.allreduce_count, 3 * classic.iterations);
  EXPECT_LE(piped.comm.allreduce_count, piped.iterations + 2);
  // The residual-norm reduction rides a non-blocking allreduce, one per
  // fused-dot superstep; the classic solver never starts one.
  EXPECT_GE(piped.comm.async_allreduce_count, piped.iterations - 1);
  EXPECT_LE(piped.comm.async_allreduce_count, piped.iterations + 1);
  EXPECT_EQ(piped.comm.async_allreduce_bytes,
            piped.comm.async_allreduce_count *
                static_cast<std::int64_t>(sizeof(value_t)));
  EXPECT_EQ(classic.comm.async_allreduce_count, 0);
  // Both solved the system to the same target.
  EXPECT_LE(piped.final_residual, 1e-8 * piped.initial_residual);
}

TEST(PipelinedCgTest, TrueResidualMatchesRecurrence) {
  const auto a = poisson2d(10, 14);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 3);
  const IdentityPreconditioner identity;
  DistVector x(l);
  const auto r = pcg_solve_pipelined(d, b, x, identity,
                                     {.rel_tol = 1e-9, .max_iterations = 2000});
  ASSERT_TRUE(r.converged);
  const auto xg = x.to_global();
  const auto bg = b.to_global();
  std::vector<value_t> res(xg.size());
  spmv(a, xg, res);
  for (std::size_t i = 0; i < res.size(); ++i) {
    res[i] = bg[i] - res[i];
  }
  // Pipelined recurrences drift slightly more than classic CG; allow 10x.
  EXPECT_LE(norm2(res), 1e-8 * r.initial_residual);
}

TEST(PipelinedCgTest, ReferenceResidualSkipsConvergedWarmStart) {
  // Same warm-start contract as classic PCG: with the cold ||r_0|| as
  // reference, restarting from the converged solution returns immediately.
  const auto a = poisson2d(10, 10);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 4);
  const IdentityPreconditioner identity;
  DistVector x(l);
  const auto cold = pcg_solve_pipelined(d, b, x, identity, {.rel_tol = 1e-8});
  ASSERT_TRUE(cold.converged);
  ASSERT_GT(cold.iterations, 0);
  const auto warm = pcg_solve_pipelined(
      d, b, x, identity,
      {.rel_tol = 1e-8, .reference_residual = cold.initial_residual});
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.iterations, 0);
  EXPECT_LE(warm.final_residual, 1e-8 * cold.initial_residual);
}

TEST(PipelinedCgTest, ZeroRhsImmediate) {
  const auto a = poisson2d(5, 5);
  const Layout l = Layout::blocked(a.rows(), 1);
  const auto d = DistCsr::distribute(a, l);
  DistVector b(l);
  DistVector x(l);
  const IdentityPreconditioner identity;
  const auto r = pcg_solve_pipelined(d, b, x, identity);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(PipelinedCgTest, IndefiniteSystemAborts) {
  CooBuilder bld(2, 2);
  bld.add(0, 0, 1.0);
  bld.add(1, 1, -1.0);
  const auto d = DistCsr::distribute(bld.to_csr(), Layout::blocked(2, 1));
  std::vector<value_t> bg{0.0, 1.0};
  const DistVector b(Layout::blocked(2, 1), bg);
  DistVector x(Layout::blocked(2, 1));
  const IdentityPreconditioner identity;
  const auto r = pcg_solve_pipelined(d, b, x, identity,
                                     {.rel_tol = 1e-8, .max_iterations = 10});
  EXPECT_FALSE(r.converged);
}

class PipelinedEquivalence : public ::testing::TestWithParam<rank_t> {};

TEST_P(PipelinedEquivalence, IterationCountsTrackClassicAcrossRankCounts) {
  const auto a = anisotropic2d(14, 14, 0.3);
  const Layout l = Layout::blocked(a.rows(), GetParam());
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 7);
  const JacobiPreconditioner jac(d);
  DistVector x1(l);
  DistVector x2(l);
  const auto classic = pcg_solve(d, b, x1, jac);
  const auto piped = pcg_solve_pipelined(d, b, x2, jac);
  ASSERT_TRUE(classic.converged);
  ASSERT_TRUE(piped.converged);
  EXPECT_NEAR(piped.iterations, classic.iterations, 3);
}

INSTANTIATE_TEST_SUITE_P(Ranks, PipelinedEquivalence, ::testing::Values(1, 2, 5, 8));

}  // namespace
}  // namespace fsaic
