#include "solver/gmres.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "core/spai.hpp"
#include "matgen/generators.hpp"
#include "solver/schwarz.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {
namespace {

DistVector random_rhs(const Layout& l, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> bg(static_cast<std::size_t>(l.global_size()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  return DistVector(l, bg);
}

value_t true_residual(const CsrMatrix& a, const DistVector& x, const DistVector& b) {
  const auto xg = x.to_global();
  const auto bg = b.to_global();
  std::vector<value_t> r(xg.size());
  spmv(a, xg, r);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = bg[i] - r[i];
  }
  return norm2(r);
}

TEST(GmresTest, SolvesSpdSystemLikeCg) {
  const auto a = poisson2d(14, 14);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 1);
  const IdentityPreconditioner identity;
  DistVector x(l);
  const auto r = gmres_solve(d, b, x, identity, {.rel_tol = 1e-9});
  ASSERT_TRUE(r.converged);
  EXPECT_LE(true_residual(a, x, b), 1e-8 * r.initial_residual);
}

TEST(GmresTest, SolvesNonsymmetricSystem) {
  // A convection-diffusion-like matrix: Poisson plus a skew part. CG is
  // inapplicable; GMRES must handle it.
  const auto base = poisson2d(12, 12);
  CooBuilder builder(base.rows(), base.cols());
  for (index_t i = 0; i < base.rows(); ++i) {
    const auto cols = base.row_cols(i);
    const auto vals = base.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      value_t v = vals[k];
      if (j == i + 1) v += 0.4;   // upwind bias
      if (j + 1 == i) v -= 0.4;
      builder.add(i, j, v);
    }
  }
  const auto a = builder.to_csr();
  ASSERT_FALSE(a.is_symmetric(1e-12));
  const Layout l = Layout::blocked(a.rows(), 3);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 2);
  const IdentityPreconditioner identity;
  DistVector x(l);
  const auto r = gmres_solve(d, b, x, identity, {.rel_tol = 1e-9});
  ASSERT_TRUE(r.converged);
  EXPECT_LE(true_residual(a, x, b), 1e-8 * r.initial_residual);
}

TEST(GmresTest, FsaiPreconditioningReducesIterations) {
  const auto a = poisson2d(20, 20);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 3);
  const IdentityPreconditioner identity;
  const auto build = build_fsai_preconditioner(a, l, FsaiOptions{});
  const auto fsai = make_factorized_preconditioner(build, "fsai");

  DistVector x1(l);
  const auto plain = gmres_solve(d, b, x1, identity);
  DistVector x2(l);
  const auto prec = gmres_solve(d, b, x2, *fsai);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
}

TEST(GmresTest, RestartLengthTradesIterations) {
  // Shorter restarts lose Krylov information: same tolerance, more
  // iterations.
  const auto a = anisotropic2d(20, 20, 0.1);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 4);
  const IdentityPreconditioner identity;
  DistVector x1(l);
  const auto long_restart =
      gmres_solve(d, b, x1, identity, {.rel_tol = 1e-8, .restart = 200});
  DistVector x2(l);
  const auto short_restart =
      gmres_solve(d, b, x2, identity, {.rel_tol = 1e-8, .restart = 10});
  ASSERT_TRUE(long_restart.converged);
  ASSERT_TRUE(short_restart.converged);
  EXPECT_LE(long_restart.iterations, short_restart.iterations);
}

TEST(GmresTest, ZeroRhsConvergesImmediately) {
  const auto a = poisson2d(5, 5);
  const Layout l = Layout::blocked(a.rows(), 1);
  const auto d = DistCsr::distribute(a, l);
  DistVector b(l);
  DistVector x(l);
  const IdentityPreconditioner identity;
  const auto r = gmres_solve(d, b, x, identity);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(GmresTest, MaxIterationsRespected) {
  const auto a = anisotropic2d(24, 24, 0.02);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 5);
  const IdentityPreconditioner identity;
  DistVector x(l);
  const auto r = gmres_solve(d, b, x, identity,
                             {.rel_tol = 1e-14, .restart = 8, .max_iterations = 20});
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.iterations, 20);
}

TEST(GmresTest, HandlesUnsymmetrizedSpaiAndSchwarz) {
  // The preconditioners CG cannot take: raw SPAI (not symmetrized here the
  // preconditioner class symmetrizes, so use Schwarz with overlap which is
  // fine too) — mainly assert GMRES converges with both wrappers.
  const auto a = poisson2d(12, 12);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 6);
  DistVector x1(l);
  const SpaiPreconditioner spai(a, l);
  const auto r1 = gmres_solve(d, b, x1, spai);
  EXPECT_TRUE(r1.converged);
  DistVector x2(l);
  const SchwarzPreconditioner ras(a, l, 2);
  const auto r2 = gmres_solve(d, b, x2, ras);
  EXPECT_TRUE(r2.converged);
  EXPECT_LE(true_residual(a, x2, b), 1e-7 * r2.initial_residual);
}

class GmresRestartProperty : public ::testing::TestWithParam<int> {};

TEST_P(GmresRestartProperty, ConvergesAtEveryRestartLength) {
  const auto a = poisson2d(10, 10);
  const Layout l = Layout::blocked(a.rows(), 2);
  const auto d = DistCsr::distribute(a, l);
  const auto b = random_rhs(l, 7);
  const IdentityPreconditioner identity;
  DistVector x(l);
  const auto r = gmres_solve(d, b, x, identity,
                             {.rel_tol = 1e-8, .restart = GetParam()});
  EXPECT_TRUE(r.converged) << "restart " << GetParam();
  EXPECT_LE(true_residual(a, x, b), 1e-7 * r.initial_residual);
}

INSTANTIATE_TEST_SUITE_P(Restarts, GmresRestartProperty,
                         ::testing::Values(1, 2, 5, 20, 100));

}  // namespace
}  // namespace fsaic
