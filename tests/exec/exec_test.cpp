#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "core/spai.hpp"
#include "dist/dist_csr.hpp"
#include "exec/barrier.hpp"
#include "exec/exec_policy.hpp"
#include "exec/executor.hpp"
#include "exec/halo.hpp"
#include "exec/threaded_executor.hpp"
#include "matgen/generators.hpp"
#include "solver/pcg.hpp"
#include "solver/pipelined_cg.hpp"

namespace fsaic {
namespace {

// ---- Barrier ------------------------------------------------------------

TEST(BarrierTest, ReleasesAllPartiesAndIsReusableAcrossGenerations) {
  constexpr int kParties = 4;
  constexpr int kGenerations = 50;
  Barrier barrier(kParties);
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};

  std::vector<std::thread> team;
  team.reserve(kParties);
  for (int t = 0; t < kParties; ++t) {
    team.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        // If the barrier released a generation early, more than kParties
        // increments could be live between two waits.
        if (inside.fetch_add(1) + 1 > kParties) overlap = true;
        barrier.arrive_and_wait();
        inside.fetch_sub(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : team) th.join();

  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(barrier.generation(), 2u * kGenerations);
  EXPECT_EQ(barrier.parties(), kParties);
}

TEST(BarrierTest, SinglePartyNeverBlocks) {
  Barrier barrier(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(barrier.arrive_and_wait(), 0.0);
  }
  EXPECT_EQ(barrier.generation(), 10u);
}

// ---- executor determinism ----------------------------------------------

std::vector<value_t> random_partials(rank_t nranks, int width,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> p(static_cast<std::size_t>(nranks) *
                         static_cast<std::size_t>(width));
  for (auto& v : p) v = rng.next_uniform(-1.0, 1.0);
  return p;
}

TEST(ExecutorTest, TreeAllreduceIsBitIdenticalAcrossExecutorsAndWidths) {
  SeqExecutor seq;
  ThreadedExecutor two(2);
  ThreadedExecutor four(4);
  for (const rank_t nranks : {1, 2, 3, 7, 8, 13}) {
    for (const int width : {1, 3}) {
      const auto reference = random_partials(nranks, width, 77u + nranks);
      std::vector<value_t> out_seq(static_cast<std::size_t>(width));
      std::vector<value_t> out_two(out_seq);
      std::vector<value_t> out_four(out_seq);
      // The partials buffer is consumed destructively; give each executor
      // its own copy.
      auto a = reference;
      auto b = reference;
      auto c = reference;
      seq.allreduce_sum(a, width, out_seq);
      two.allreduce_sum(b, width, out_two);
      four.allreduce_sum(c, width, out_four);
      for (int w = 0; w < width; ++w) {
        // Bitwise equality, not EXPECT_NEAR: the determinism contract.
        EXPECT_EQ(out_seq[static_cast<std::size_t>(w)],
                  out_two[static_cast<std::size_t>(w)]);
        EXPECT_EQ(out_seq[static_cast<std::size_t>(w)],
                  out_four[static_cast<std::size_t>(w)]);
      }
    }
  }
}

TEST(ExecutorTest, ParallelRanksVisitsEveryRankExactlyOnce) {
  ThreadedExecutor exec(3);
  constexpr rank_t kRanks = 11;
  std::vector<int> visits(kRanks, 0);
  exec.parallel_ranks(kRanks, [&](rank_t p) {
    ++visits[static_cast<std::size_t>(p)];
  });
  for (const int v : visits) EXPECT_EQ(v, 1);
  EXPECT_GE(exec.stats().supersteps, 1u);
  EXPECT_EQ(exec.stats().nthreads, 3);
}

TEST(ExecutorTest, NestedParallelRanksFallsBackToInlineLoop) {
  ThreadedExecutor exec(2);
  std::vector<int> inner_visits(4, 0);
  // A rank body that re-enters the executor must not deadlock on the team
  // barriers; the nested superstep degrades to an inline loop on the
  // calling worker.
  exec.parallel_ranks(1, [&](rank_t) {
    exec.parallel_ranks(4, [&](rank_t q) {
      ++inner_visits[static_cast<std::size_t>(q)];
    });
  });
  for (const int v : inner_visits) EXPECT_EQ(v, 1);
}

TEST(ExecutorTest, ExceptionsInRankBodiesPropagateToTheCaller) {
  ThreadedExecutor exec(4);
  EXPECT_THROW(exec.parallel_ranks(8,
                                   [](rank_t p) {
                                     FSAIC_REQUIRE(p != 5, "rank 5 failed");
                                   }),
               Error);
  // The team must survive a throwing superstep and stay usable.
  std::atomic<int> count{0};
  exec.parallel_ranks(8, [&](rank_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

// ---- parallel_for -------------------------------------------------------

TEST(ParallelForTest, VisitsEveryIndexExactlyOnceOnBothExecutors) {
  SeqExecutor seq;
  ThreadedExecutor thr(4);
  for (Executor* exec : {static_cast<Executor*>(&seq),
                         static_cast<Executor*>(&thr)}) {
    constexpr index_t kItems = 1000;
    const int width = std::max(1, exec->parallel_for_width());
    std::vector<std::atomic<int>> visits(kItems);
    std::atomic<bool> slot_ok{true};
    exec->parallel_for(kItems, [&](index_t i, int slot) {
      if (slot < 0 || slot >= width) slot_ok = false;
      ++visits[static_cast<std::size_t>(i)];
    });
    EXPECT_TRUE(slot_ok.load());
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelForTest, EmptyAndTinyLoopsWork) {
  ThreadedExecutor exec(3);
  std::atomic<int> count{0};
  exec.parallel_for(0, [&](index_t, int) { ++count; });
  EXPECT_EQ(count.load(), 0);
  exec.parallel_for(1, [&](index_t, int) { ++count; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, SlotPrivateAccumulatorsCoverTheWholeSum) {
  ThreadedExecutor exec(4);
  constexpr index_t kItems = 5000;
  std::vector<std::int64_t> partial(
      static_cast<std::size_t>(exec.parallel_for_width()), 0);
  exec.parallel_for(kItems, [&](index_t i, int slot) {
    partial[static_cast<std::size_t>(slot)] += i;
  });
  std::int64_t total = 0;
  for (const auto p : partial) total += p;
  EXPECT_EQ(total, static_cast<std::int64_t>(kItems) * (kItems - 1) / 2);
}

TEST(ParallelForTest, NestedInsideRankBodyDegradesToInlineLoop) {
  ThreadedExecutor exec(2);
  std::vector<std::atomic<int>> visits(16);
  exec.parallel_ranks(1, [&](rank_t) {
    // Must not deadlock on the team barriers, and must pass the calling
    // worker's slot so scratch indexing stays valid.
    exec.parallel_for(16, [&](index_t i, int slot) {
      EXPECT_GE(slot, 0);
      EXPECT_LT(slot, exec.parallel_for_width());
      ++visits[static_cast<std::size_t>(i)];
    });
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

// ---- setup determinism across executors ---------------------------------

void expect_same_factor_bits(const CsrMatrix& x, const CsrMatrix& y) {
  ASSERT_EQ(x.nnz(), y.nnz());
  for (index_t i = 0; i < x.rows(); ++i) {
    const auto xv = x.row_vals(i);
    const auto yv = y.row_vals(i);
    ASSERT_EQ(xv.size(), yv.size()) << "row " << i;
    for (std::size_t k = 0; k < xv.size(); ++k) {
      EXPECT_EQ(xv[k], yv[k]) << "row " << i << " entry " << k;
    }
  }
}

TEST(ExecSetupTest, FsaiFactorIsBitIdenticalAcrossExecutors) {
  const auto a = poisson2d(15, 15);
  const auto s = fsai_base_pattern(a, 2, 0.0);

  SeqExecutor seq;
  FsaiComputeOptions opts;
  opts.exec = &seq;
  const auto g_seq = compute_fsai_factor(a, s, nullptr, opts);

  for (const int nthreads : {2, 5}) {
    ThreadedExecutor thr(nthreads);
    opts.exec = &thr;
    const auto g_thr = compute_fsai_factor(a, s, nullptr, opts);
    expect_same_factor_bits(g_seq, g_thr);
  }
}

TEST(ExecSetupTest, FilteredBuildIsBitIdenticalAcrossExecutors) {
  const auto a = poisson2d(14, 14);
  const Layout layout = Layout::blocked(a.rows(), 4);
  FsaiOptions fopts;
  fopts.extension = ExtensionMode::CommAware;
  fopts.cache_line_bytes = 256;
  fopts.filter = 0.05;

  SeqExecutor seq;
  fopts.exec = &seq;
  const auto build_seq = build_fsai_preconditioner(a, layout, fopts);

  for (const int nthreads : {2, 5}) {
    ThreadedExecutor thr(nthreads);
    fopts.exec = &thr;
    const auto build_thr = build_fsai_preconditioner(a, layout, fopts);
    expect_same_factor_bits(build_seq.g, build_thr.g);
    // The incremental row accounting is schedule-independent too.
    EXPECT_EQ(build_seq.factor_stats.rows_solved,
              build_thr.factor_stats.rows_solved);
    EXPECT_EQ(build_seq.factor_stats.rows_reused,
              build_thr.factor_stats.rows_reused);
    EXPECT_EQ(build_seq.provisional_factor_stats.rows_solved,
              build_thr.provisional_factor_stats.rows_solved);
  }
}

TEST(ExecSetupTest, SpaiIsBitIdenticalAcrossExecutorsAndAssemblies) {
  const auto a = poisson2d(10, 10);
  const auto s = a.pattern();

  SpaiComputeOptions opts;
  SeqExecutor seq;
  opts.exec = &seq;
  opts.assembly = GramAssembly::Reference;
  const auto m_ref = compute_spai(a, s, opts);
  opts.assembly = GramAssembly::Gather;
  const auto m_seq = compute_spai(a, s, opts);
  expect_same_factor_bits(m_ref, m_seq);

  ThreadedExecutor thr(3);
  opts.exec = &thr;
  const auto m_thr = compute_spai(a, s, opts);
  expect_same_factor_bits(m_seq, m_thr);
}

// ---- ExecPolicy ---------------------------------------------------------

TEST(ExecPolicyTest, FromEnvParsesClampsAndDefaults) {
  ::unsetenv("FSAIC_THREADS");
  EXPECT_EQ(ExecPolicy::from_env().nthreads, 1);
  EXPECT_FALSE(ExecPolicy::from_env().threaded());
  ::setenv("FSAIC_THREADS", "4", 1);
  EXPECT_EQ(ExecPolicy::from_env().nthreads, 4);
  EXPECT_TRUE(ExecPolicy::from_env().threaded());
  ::setenv("FSAIC_THREADS", "0", 1);
  EXPECT_EQ(ExecPolicy::from_env().nthreads, 1);
  ::setenv("FSAIC_THREADS", "100000", 1);
  EXPECT_EQ(ExecPolicy::from_env().nthreads, 256);
  ::setenv("FSAIC_THREADS", "not-a-number", 1);
  EXPECT_EQ(ExecPolicy::from_env().nthreads, 1);
  ::unsetenv("FSAIC_THREADS");
}

TEST(ExecPolicyTest, MakeExecutorSelectsTheEngine) {
  EXPECT_FALSE(make_executor({.nthreads = 1})->threaded());
  const auto threaded = make_executor({.nthreads = 3});
  EXPECT_TRUE(threaded->threaded());
  EXPECT_EQ(threaded->nthreads(), 3);
}

// ---- halo exchange ------------------------------------------------------

TEST(HaloExchangerTest, ThreadedSpmvIsBitIdenticalToSequentialSpmv) {
  const auto a = poisson2d(17, 13);
  // Deliberately uneven partition so ranks multiplex onto threads and the
  // neighbor structure is irregular.
  const Layout layout = Layout::from_part_sizes(
      std::vector<index_t>{40, 3, 78, 0, 60, 40});
  ASSERT_EQ(layout.global_size(), a.rows());
  const auto d = DistCsr::distribute(a, layout);

  Rng rng(11);
  std::vector<value_t> xg(static_cast<std::size_t>(a.rows()));
  for (auto& v : xg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector x(layout, xg);

  SeqExecutor seq;
  DistVector y_seq(layout);
  CommStats stats_seq;
  d.spmv(x, y_seq, &stats_seq, nullptr, &seq);

  for (const int nthreads : {2, 4, 8}) {
    ThreadedExecutor exec(nthreads);
    DistVector y_thr(layout);
    CommStats stats_thr;
    d.spmv(x, y_thr, &stats_thr, nullptr, &exec);
    EXPECT_EQ(y_seq.to_global(), y_thr.to_global()) << nthreads << " threads";
    // The mailbox fabric must account identical traffic to the sequential
    // path: same messages, bytes, and per-pair breakdown.
    EXPECT_EQ(stats_seq.halo_messages, stats_thr.halo_messages);
    EXPECT_EQ(stats_seq.halo_bytes, stats_thr.halo_bytes);
    EXPECT_EQ(stats_seq.pair_bytes, stats_thr.pair_bytes);
  }
  EXPECT_GT(d.halo().deposits(), 0u);
}

TEST(HaloExchangerTest, RepeatedExchangesReuseTheMailboxes) {
  const auto a = poisson2d(8, 8);
  const Layout layout = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, layout);
  const DistVector x(layout, std::vector<value_t>(
                                 static_cast<std::size_t>(a.rows()), 1.0));
  ThreadedExecutor exec(4);
  DistVector y(layout);
  const auto before = d.halo().deposits();
  for (int i = 0; i < 5; ++i) {
    d.spmv(x, y, nullptr, nullptr, &exec);
  }
  const auto per_exchange = d.halo_update_messages();
  EXPECT_EQ(d.halo().deposits() - before,
            5u * static_cast<std::uint64_t>(per_exchange));
}

// ---- phased supersteps and async allreduce ------------------------------

TEST(ExecutorTest, PhasedSuperstepRunsAllPostsBeforeAnyWorkPerSlice) {
  // Within each thread's rank slice every post() must complete before the
  // first work() starts; that ordering is what lets sends overlap compute.
  for (const int nthreads : {2, 3}) {
    ThreadedExecutor exec(nthreads);
    constexpr rank_t kRanks = 10;
    std::vector<int> posted(kRanks, 0);
    std::vector<int> worked(kRanks, 0);
    std::atomic<bool> order_ok{true};
    exec.parallel_ranks_phased(
        kRanks,
        [&](rank_t p) { posted[static_cast<std::size_t>(p)] = 1; },
        [&](rank_t p) {
          // Block-distributed slices are contiguous: every rank in this
          // rank's slice must already be posted.
          for (int t = 0; t < nthreads; ++t) {
            const rank_t lo = static_cast<rank_t>(
                static_cast<std::int64_t>(t) * kRanks / nthreads);
            const rank_t hi = static_cast<rank_t>(
                static_cast<std::int64_t>(t + 1) * kRanks / nthreads);
            if (p < lo || p >= hi) continue;
            for (rank_t q = lo; q < hi; ++q) {
              if (posted[static_cast<std::size_t>(q)] == 0) order_ok = false;
            }
          }
          worked[static_cast<std::size_t>(p)] = 1;
        });
    EXPECT_TRUE(order_ok.load()) << nthreads << " threads";
    for (rank_t p = 0; p < kRanks; ++p) {
      EXPECT_EQ(posted[static_cast<std::size_t>(p)], 1);
      EXPECT_EQ(worked[static_cast<std::size_t>(p)], 1);
    }
  }
}

TEST(ExecutorTest, PhasedSuperstepDegradesInlineWhenNested) {
  ThreadedExecutor exec(2);
  std::atomic<int> posts{0};
  std::atomic<int> works{0};
  exec.parallel_ranks(1, [&](rank_t) {
    exec.parallel_ranks_phased(4, [&](rank_t) { ++posts; },
                               [&](rank_t) { ++works; });
  });
  EXPECT_EQ(posts.load(), 4);
  EXPECT_EQ(works.load(), 4);
}

TEST(ExecutorTest, AsyncAllreduceMatchesBlockingBitForBit) {
  SeqExecutor seq;
  ThreadedExecutor thr(3);
  for (Executor* exec : {static_cast<Executor*>(&seq),
                         static_cast<Executor*>(&thr)}) {
    for (const rank_t nranks : {1, 3, 8}) {
      const auto reference = random_partials(nranks, 2, 31u + nranks);
      std::vector<value_t> blocking(2);
      auto copy = reference;
      exec->allreduce_sum(copy, 2, blocking);

      auto moved = reference;
      AsyncAllreduce handle = exec->allreduce_begin(std::move(moved), 2);
      EXPECT_TRUE(handle.pending());
      std::vector<value_t> async(2);
      handle.wait(async);
      EXPECT_FALSE(handle.pending());
      // Same fixed-order tree, same bits — async is a latency tool, not a
      // different reduction.
      EXPECT_EQ(blocking, async);
    }
  }
}

TEST(ExecutorTest, AsyncAllreducesCompleteInFifoOrderUnderLoad) {
  ThreadedExecutor exec(4);
  constexpr int kInflight = 16;
  std::vector<AsyncAllreduce> handles;
  handles.reserve(kInflight);
  for (int i = 0; i < kInflight; ++i) {
    std::vector<value_t> partials(8, static_cast<value_t>(i + 1));
    handles.push_back(exec.allreduce_begin(std::move(partials), 1));
  }
  for (int i = 0; i < kInflight; ++i) {
    std::vector<value_t> out(1);
    handles[static_cast<std::size_t>(i)].wait(out);
    EXPECT_EQ(out[0], 8.0 * (i + 1));
  }
}

// ---- node-aware halo exchange -------------------------------------------

TEST(NodeAwareHaloTest, ThreadedNodeAwareSpmvMatchesFlatBitForBit) {
  const auto a = poisson2d(17, 13);
  const Layout layout = Layout::from_part_sizes(
      std::vector<index_t>{40, 3, 78, 0, 60, 40});
  ASSERT_EQ(layout.global_size(), a.rows());
  const auto flat = DistCsr::distribute(a, layout, CommConfig{});
  const auto aware =
      DistCsr::distribute(a, layout, CommConfig{CommMode::NodeAware, 2});

  Rng rng(11);
  std::vector<value_t> xg(static_cast<std::size_t>(a.rows()));
  for (auto& v : xg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector x(layout, xg);

  SeqExecutor seq;
  DistVector y_flat(layout);
  flat.spmv(x, y_flat, nullptr, nullptr, &seq);

  for (const int nthreads : {2, 4, 8}) {
    ThreadedExecutor exec(nthreads);
    DistVector y_na(layout);
    CommStats stats;
    aware.spmv(x, y_na, &stats, nullptr, &exec);
    EXPECT_EQ(y_flat.to_global(), y_na.to_global()) << nthreads << " threads";
    EXPECT_EQ(stats.halo_messages, aware.halo_update_messages());
    EXPECT_EQ(stats.halo_intra_messages + stats.halo_inter_messages,
              stats.halo_messages);
  }
}

TEST(NodeAwareHaloTest, LeaderFunnelSurvivesRepeatedRacedExchanges) {
  // Many ranks, few nodes: every inter-node channel has several
  // contributors racing to fill their segments while the destination
  // drains. TSAN runs this test in CI; any missing synchronization in the
  // last-contributor-closes protocol shows up as a reported race.
  const auto a = poisson2d(24, 24);
  const Layout layout = Layout::blocked(a.rows(), 16);
  const auto d =
      DistCsr::distribute(a, layout, CommConfig{CommMode::NodeAware, 4});
  Rng rng(3);
  std::vector<value_t> xg(static_cast<std::size_t>(a.rows()));
  for (auto& v : xg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector x(layout, xg);

  SeqExecutor seq;
  DistVector y_ref(layout);
  d.spmv(x, y_ref, nullptr, nullptr, &seq);
  const auto ref = y_ref.to_global();

  ThreadedExecutor exec(8);
  const auto before = d.halo().deposits();
  constexpr int kRounds = 20;
  for (int i = 0; i < kRounds; ++i) {
    DistVector y(layout);
    d.spmv(x, y, nullptr, nullptr, &exec);
    ASSERT_EQ(y.to_global(), ref) << "round " << i;
  }
  // Deposits count wire deliveries: intra mailbox posts plus one channel
  // close per inter-node pair, i.e. the aggregated message count.
  EXPECT_EQ(d.halo().deposits() - before,
            static_cast<std::uint64_t>(kRounds) *
                static_cast<std::uint64_t>(d.halo_update_messages()));
}

// ---- solver determinism -------------------------------------------------

TEST(ExecSolverTest, CgResidualHistoryIsBitIdenticalThreadedVsSequential) {
  const auto a = poisson2d(20, 20);
  const Layout layout = Layout::blocked(a.rows(), 8);
  const auto d = DistCsr::distribute(a, layout);
  Rng rng(5);
  std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector b(layout, bg);

  FsaiOptions fopts;
  fopts.extension = ExtensionMode::CommAware;
  fopts.filter = 0.1;
  const auto build = build_fsai_preconditioner(a, layout, fopts);
  const auto precond = make_factorized_preconditioner(build, "fsaie-comm");

  SeqExecutor seq;
  SolveOptions opts;
  opts.rel_tol = 1e-10;
  opts.track_residual_history = true;
  opts.exec = &seq;
  DistVector x_seq(layout);
  const auto r_seq = pcg_solve(d, b, x_seq, *precond, opts);
  ASSERT_TRUE(r_seq.converged);

  ThreadedExecutor thr(4);
  opts.exec = &thr;
  DistVector x_thr(layout);
  const auto r_thr = pcg_solve(d, b, x_thr, *precond, opts);
  ASSERT_TRUE(r_thr.converged);

  EXPECT_EQ(r_seq.iterations, r_thr.iterations);
  EXPECT_EQ(r_seq.residual_history, r_thr.residual_history);
  EXPECT_EQ(x_seq.to_global(), x_thr.to_global());
}

TEST(ExecSolverTest, PipelinedCgIsBitIdenticalThreadedVsSequential) {
  const auto a = poisson2d(16, 16);
  const Layout layout = Layout::blocked(a.rows(), 5);
  const auto d = DistCsr::distribute(a, layout);
  Rng rng(9);
  std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector b(layout, bg);
  const JacobiPreconditioner jacobi(d);

  SeqExecutor seq;
  SolveOptions opts;
  opts.rel_tol = 1e-9;
  opts.track_residual_history = true;
  opts.exec = &seq;
  DistVector x_seq(layout);
  const auto r_seq = pcg_solve_pipelined(d, b, x_seq, jacobi, opts);
  ASSERT_TRUE(r_seq.converged);

  ThreadedExecutor thr(3);
  opts.exec = &thr;
  DistVector x_thr(layout);
  const auto r_thr = pcg_solve_pipelined(d, b, x_thr, jacobi, opts);
  ASSERT_TRUE(r_thr.converged);

  EXPECT_EQ(r_seq.iterations, r_thr.iterations);
  EXPECT_EQ(r_seq.residual_history, r_thr.residual_history);
}

}  // namespace
}  // namespace fsaic
