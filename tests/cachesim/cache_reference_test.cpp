// Validation of the set-associative cache model against an independent
// reference implementation (a naive LRU list per set), driven by random
// address traces. Any divergence in hit/miss classification is a bug in one
// of the two — and the reference is simple enough to trust.
#include <gtest/gtest.h>

#include <list>
#include <vector>

#include "cachesim/cache_model.hpp"
#include "common/rng.hpp"

namespace fsaic {
namespace {

/// Trivially correct set-associative LRU cache: one std::list of tags per
/// set, most recent at the front.
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& cfg)
      : line_bytes_(cfg.line_bytes), assoc_(cfg.associativity),
        sets_(static_cast<std::size_t>(cfg.num_sets())) {}

  bool access(std::uint64_t addr) {
    const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
    auto& set = sets_[static_cast<std::size_t>(line % sets_.size())];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == line) {
        set.erase(it);
        set.push_front(line);
        return true;
      }
    }
    set.push_front(line);
    if (set.size() > static_cast<std::size_t>(assoc_)) {
      set.pop_back();
    }
    return false;
  }

 private:
  int line_bytes_;
  int assoc_;
  std::vector<std::list<std::uint64_t>> sets_;
};

struct CacheGeometry {
  int line_bytes;
  int size_bytes;
  int associativity;
};

class CacheEquivalence : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheEquivalence, RandomTraceMatchesReference) {
  const auto geo = GetParam();
  const CacheConfig cfg{geo.line_bytes, geo.size_bytes, geo.associativity};
  CacheModel model(cfg);
  ReferenceCache reference(cfg);
  Rng rng(31 + static_cast<std::uint64_t>(geo.size_bytes));
  for (int i = 0; i < 20000; ++i) {
    // Mix of local reuse (small range) and far jumps, like SpMV x access.
    const bool local = rng.next_uniform() < 0.7;
    const std::uint64_t addr =
        local ? rng.next_u64() % (4096)
              : rng.next_u64() % (1024 * 1024);
    ASSERT_EQ(model.access(addr), reference.access(addr))
        << "diverged at access " << i << " addr " << addr;
  }
}

TEST_P(CacheEquivalence, SequentialSweepMatchesReference) {
  const auto geo = GetParam();
  const CacheConfig cfg{geo.line_bytes, geo.size_bytes, geo.associativity};
  CacheModel model(cfg);
  ReferenceCache reference(cfg);
  // Two sequential passes over an array larger than the cache: second pass
  // hit/miss behaviour depends precisely on capacity + LRU.
  const std::uint64_t span = static_cast<std::uint64_t>(geo.size_bytes) * 2;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < span; a += 8) {
      ASSERT_EQ(model.access(a), reference.access(a))
          << "pass " << pass << " addr " << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheEquivalence,
    ::testing::Values(CacheGeometry{64, 1024, 1},      // direct-mapped
                      CacheGeometry{64, 2048, 4},
                      CacheGeometry{64, 32 * 1024, 8},  // Skylake L1
                      CacheGeometry{256, 64 * 1024, 4}, // A64FX L1
                      CacheGeometry{32, 512, 16}));     // fully associative

TEST(CacheModelStatsTest, HitsPlusMissesEqualsAccesses) {
  CacheModel c({.line_bytes = 64, .size_bytes = 4096, .associativity = 4});
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    c.access(rng.next_u64() % 65536);
  }
  EXPECT_EQ(c.hits() + c.misses(), c.accesses());
  EXPECT_EQ(c.accesses(), 5000);
}

}  // namespace
}  // namespace fsaic
