#include "cachesim/cache_model.hpp"

#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "sparse/csr.hpp"
#include "sparse/sell.hpp"

namespace fsaic {
namespace {

TEST(CacheModelTest, RepeatedAccessHitsAfterFirstMiss) {
  CacheModel c({.line_bytes = 64, .size_bytes = 1024, .associativity = 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(8));   // same line
  EXPECT_TRUE(c.access(63));  // still same line
  EXPECT_FALSE(c.access(64)); // next line
  EXPECT_EQ(c.misses(), 2);
  EXPECT_EQ(c.hits(), 2);
}

TEST(CacheModelTest, LruEvictionInOneSet) {
  // 2-way, 2 sets of 64 B lines: addresses 0, 128, 256 all map to set 0.
  CacheModel c({.line_bytes = 64, .size_bytes = 256, .associativity = 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(128));
  EXPECT_TRUE(c.access(0));     // refresh line 0 → line 128 becomes LRU
  EXPECT_FALSE(c.access(256));  // evicts 128
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(128));  // was evicted
}

TEST(CacheModelTest, FlushForgetsEverything) {
  CacheModel c({.line_bytes = 64, .size_bytes = 512, .associativity = 1});
  EXPECT_FALSE(c.access(0));
  c.flush();
  EXPECT_FALSE(c.access(0));
  EXPECT_EQ(c.misses(), 1);  // stats were reset too
}

TEST(CacheModelTest, RejectsBadGeometry) {
  EXPECT_THROW(CacheModel({.line_bytes = 48, .size_bytes = 480, .associativity = 1}),
               Error);
  EXPECT_THROW(CacheModel({.line_bytes = 64, .size_bytes = 32, .associativity = 1}),
               Error);
}

TEST(CacheReplayTest, SequentialRowsHitWithinLines) {
  // Tridiagonal x accesses are nearly sequential: with 64 B lines (8 values)
  // roughly one miss per 8 columns.
  const auto a = poisson2d(64, 1);  // tridiagonal, 64 rows
  const auto report =
      replay_spmv_x_accesses(a, {.line_bytes = 64, .size_bytes = 1024,
                                 .associativity = 8});
  EXPECT_EQ(report.accesses, a.nnz());
  EXPECT_LE(report.misses, 10);  // 64*8/64 = 8 lines, plus slack
  EXPECT_GE(report.misses, 8);
}

TEST(CacheReplayTest, LargerLinesReduceMisses) {
  const auto a = poisson2d(40, 40);
  const auto small = replay_spmv_x_accesses(
      a, {.line_bytes = 64, .size_bytes = 8 * 1024, .associativity = 8});
  const auto large = replay_spmv_x_accesses(
      a, {.line_bytes = 256, .size_bytes = 8 * 1024, .associativity = 4});
  EXPECT_LT(large.misses, small.misses);
}

TEST(CacheReplayTest, TinyCacheThrashesOnStride) {
  // Matrix rows that jump across x with a stride larger than the cache
  // force a miss on (almost) every access.
  std::vector<std::vector<index_t>> rows(64);
  for (index_t i = 0; i < 64; ++i) {
    rows[static_cast<std::size_t>(i)] = {static_cast<index_t>((i * 17) % 64 * 512)};
  }
  const auto p = SparsityPattern::from_rows(64, 64 * 512, std::move(rows));
  CsrMatrix m{p};
  const auto report = replay_spmv_x_accesses(
      m, {.line_bytes = 64, .size_bytes = 128, .associativity = 1});
  EXPECT_EQ(report.misses, report.accesses);
}

TEST(CacheReplayTest, ChainedReplayKeepsState) {
  const auto a = poisson2d(16, 16);
  CacheModel model({.line_bytes = 64, .size_bytes = 64 * 1024, .associativity = 8});
  const auto first = replay_spmv_x_accesses(a, model);
  const auto second = replay_spmv_x_accesses(a, model);
  // Everything fits into 64 KiB, so the second pass is all hits.
  EXPECT_GT(first.misses, 0);
  EXPECT_EQ(second.misses, 0);
}

TEST(CacheReplayTest, MissRateHelper) {
  XAccessReport r{.accesses = 10, .misses = 4};
  EXPECT_DOUBLE_EQ(r.miss_rate(), 0.4);
  EXPECT_DOUBLE_EQ(XAccessReport{}.miss_rate(), 0.0);
}

class CacheLineSweep : public ::testing::TestWithParam<int> {};

TEST_P(CacheLineSweep, MissesPerNnzDecreaseMonotonicallyWithLineSize) {
  const int line = GetParam();
  const auto a = poisson2d(30, 30);
  const auto report = replay_spmv_x_accesses(
      a, {.line_bytes = line, .size_bytes = 16 * 1024,
          .associativity = 4});
  const auto report_next = replay_spmv_x_accesses(
      a, {.line_bytes = line * 2, .size_bytes = 16 * 1024,
          .associativity = 4});
  EXPECT_LE(report_next.misses, report.misses)
      << "doubling the line from " << line << " B increased misses";
}

INSTANTIATE_TEST_SUITE_P(Lines, CacheLineSweep, ::testing::Values(32, 64, 128, 256));

TEST(SellReplayTest, AccessCountIncludesPadding) {
  const auto a = random_laplacian(100, 5, 0.1, 91);
  const SellMatrix sell(a, 8, 64);
  const auto report = replay_sell_spmv_x_accesses(
      sell, {.line_bytes = 64, .size_bytes = 8 * 1024, .associativity = 8});
  EXPECT_EQ(report.accesses, sell.padded_size());
  EXPECT_GT(sell.padded_size(), a.nnz());  // padding genuinely present
}

TEST(SellReplayTest, PinnedMissCountOnSmallMatrix) {
  // Deterministic pin: replay geometry and the SELL chunk walk are both
  // fixed, so the miss count is a stable regression canary for the access
  // stream. If this changes, the kernel's memory-order contract changed.
  const auto a = poisson2d(16, 16);  // 256 rows, 5-point stencil
  const SellMatrix sell(a, 8, 64);
  const auto report = replay_sell_spmv_x_accesses(
      sell, {.line_bytes = 64, .size_bytes = 1024, .associativity = 8});
  EXPECT_EQ(report.accesses, sell.padded_size());
  // Tridiagonal-ish locality within the sigma window: far fewer misses than
  // accesses, and bit-for-bit reproducible.
  const auto again = replay_sell_spmv_x_accesses(
      sell, {.line_bytes = 64, .size_bytes = 1024, .associativity = 8});
  EXPECT_EQ(report.misses, again.misses);
  EXPECT_LT(report.misses, report.accesses / 2);
  EXPECT_GT(report.misses, 0);
}

TEST(SellReplayTest, WholeVectorInCacheMissesOncePerLine) {
  // x fits entirely: every line is missed exactly once regardless of the
  // sigma permutation, giving an exact expected count.
  const auto a = poisson2d(12, 12);  // 144 doubles of x = 1152 B = 18 lines
  const SellMatrix sell(a, 4, 16);
  const auto report = replay_sell_spmv_x_accesses(
      sell, {.line_bytes = 64, .size_bytes = 64 * 1024, .associativity = 8});
  EXPECT_EQ(report.misses, 18);
}

TEST(SellReplayTest, ChainedReplayKeepsState) {
  const auto a = poisson2d(16, 16);
  const SellMatrix sell(a, 8, 64);
  CacheModel model({.line_bytes = 64, .size_bytes = 64 * 1024, .associativity = 8});
  const auto first = replay_sell_spmv_x_accesses(sell, model);
  const auto second = replay_sell_spmv_x_accesses(sell, model);
  EXPECT_GT(first.misses, 0);
  EXPECT_EQ(second.misses, 0);
}

}  // namespace
}  // namespace fsaic
