#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dist/comm_scheme.hpp"
#include "dist/dist_csr.hpp"
#include "exec/halo.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {
namespace {

TEST(LayoutTest, BlockedSplitsEvenlyWithRemainder) {
  const Layout l = Layout::blocked(10, 3);
  EXPECT_EQ(l.nranks(), 3);
  EXPECT_EQ(l.global_size(), 10);
  EXPECT_EQ(l.local_size(0), 4);
  EXPECT_EQ(l.local_size(1), 3);
  EXPECT_EQ(l.local_size(2), 3);
  EXPECT_EQ(l.owner(0), 0);
  EXPECT_EQ(l.owner(3), 0);
  EXPECT_EQ(l.owner(4), 1);
  EXPECT_EQ(l.owner(9), 2);
}

TEST(LayoutTest, ToLocalAndOwns) {
  const Layout l = Layout::blocked(10, 2);
  EXPECT_TRUE(l.owns(1, 7));
  EXPECT_FALSE(l.owns(0, 7));
  EXPECT_EQ(l.to_local(1, 7), 2);
  EXPECT_THROW((void)l.to_local(0, 7), Error);
}

TEST(LayoutTest, FromPartSizes) {
  const Layout l = Layout::from_part_sizes(std::vector<index_t>{2, 0, 3});
  EXPECT_EQ(l.nranks(), 3);
  EXPECT_EQ(l.local_size(1), 0);
  EXPECT_EQ(l.owner(2), 2);
}

TEST(DistVectorTest, ScatterGatherRoundTrip) {
  const Layout l = Layout::blocked(7, 3);
  std::vector<value_t> global{0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const DistVector v(l, global);
  EXPECT_EQ(v.to_global(), global);
  EXPECT_DOUBLE_EQ(v.block(1)[0], 3.0);
}

TEST(DistCsrTest, ToGlobalRoundTrip) {
  const auto a = poisson2d(6, 6);
  const auto d = DistCsr::distribute(a, Layout::blocked(a.rows(), 4));
  const auto back = d.to_global();
  ASSERT_EQ(back.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(back.at(i, j), a.at(i, j));
    }
  }
}

TEST(DistCsrTest, LocalAndHaloEntryCountsAddUp) {
  const auto a = poisson2d(6, 6);
  const auto d = DistCsr::distribute(a, Layout::blocked(a.rows(), 3));
  offset_t local = 0;
  offset_t halo = 0;
  for (rank_t p = 0; p < d.nranks(); ++p) {
    local += d.block(p).local_entries;
    halo += d.block(p).halo_entries;
  }
  EXPECT_EQ(local + halo, a.nnz());
  EXPECT_GT(halo, 0);
}

TEST(DistCsrTest, SendRecvMapsAreMirrored) {
  const auto a = poisson3d(4, 4, 4);
  const auto d = DistCsr::distribute(a, Layout::blocked(a.rows(), 5));
  for (rank_t p = 0; p < d.nranks(); ++p) {
    for (const auto& nb : d.block(p).recv) {
      // Find the matching send on the neighbor.
      bool found = false;
      for (const auto& snd : d.block(nb.rank).send) {
        if (snd.rank == p) {
          EXPECT_EQ(snd.gids, nb.gids);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "rank " << nb.rank << " missing send to " << p;
      // Every received gid must be owned by the sender.
      for (index_t gid : nb.gids) {
        EXPECT_EQ(d.row_layout().owner(gid), nb.rank);
      }
    }
  }
}

TEST(DistDotTest, MatchesSerialDot) {
  const Layout l = Layout::blocked(100, 7);
  Rng rng(5);
  std::vector<value_t> xg(100);
  std::vector<value_t> yg(100);
  for (std::size_t i = 0; i < 100; ++i) {
    xg[i] = rng.next_uniform(-1.0, 1.0);
    yg[i] = rng.next_uniform(-1.0, 1.0);
  }
  const DistVector x(l, xg);
  const DistVector y(l, yg);
  CommStats stats;
  EXPECT_NEAR(dist_dot(x, y, &stats), dot(xg, yg), 1e-12);
  EXPECT_EQ(stats.allreduce_count, 1);
}

TEST(DistAxpyTest, MatchesSerial) {
  const Layout l = Layout::blocked(50, 4);
  std::vector<value_t> xg(50, 2.0);
  std::vector<value_t> yg(50, 1.0);
  const DistVector x(l, xg);
  DistVector y(l, yg);
  dist_axpy(3.0, x, y);
  for (value_t v : y.to_global()) {
    EXPECT_DOUBLE_EQ(v, 7.0);
  }
  dist_xpby(x, 0.5, y);
  for (value_t v : y.to_global()) {
    EXPECT_DOUBLE_EQ(v, 5.5);
  }
}

TEST(CommSchemeTest, TracksHaloCoefficients) {
  // Tridiagonal 6x6 over 2 ranks: rank 0 owns 0-2, rank 1 owns 3-5.
  const auto a = poisson2d(6, 1);
  const Layout l = Layout::blocked(6, 2);
  const auto scheme = CommScheme::from_pattern(a.pattern(), l);
  EXPECT_TRUE(scheme.receives(0, 3));   // row 2 needs column 3
  EXPECT_TRUE(scheme.receives(1, 2));   // row 3 needs column 2
  EXPECT_FALSE(scheme.receives(0, 4));
  EXPECT_FALSE(scheme.receives(1, 0));
  EXPECT_EQ(scheme.exchange_count(), 2u);
  EXPECT_EQ(scheme.message_count(), 2u);
}

TEST(CommSchemeTest, SubsetRelation) {
  const auto a = poisson2d(8, 1);
  const Layout l = Layout::blocked(8, 2);
  const auto dense_scheme = CommScheme::from_pattern(a.pattern().symbolic_power(2), l);
  const auto sparse_scheme = CommScheme::from_pattern(a.pattern(), l);
  EXPECT_TRUE(sparse_scheme.subset_of(dense_scheme));
  EXPECT_FALSE(dense_scheme.subset_of(sparse_scheme));
  EXPECT_TRUE(sparse_scheme.subset_of(sparse_scheme));
}

TEST(CommStatsTest, PairBytesAccumulate) {
  CommStats s;
  s.record_halo_message(0, 1, 64);
  s.record_halo_message(0, 1, 64);
  s.record_halo_message(1, 0, 32);
  EXPECT_EQ(s.halo_messages, 3);
  EXPECT_EQ(s.halo_bytes, 160);
  EXPECT_EQ(s.neighbor_pair_count(), 2u);
  EXPECT_EQ((s.pair_bytes.at({0, 1})), 128);
  s.reset();
  EXPECT_EQ(s.halo_messages, 0);
}

class DistSpmvProperty : public ::testing::TestWithParam<rank_t> {};

TEST_P(DistSpmvProperty, MatchesSerialSpmvAndCountsTraffic) {
  const rank_t nranks = GetParam();
  const auto a = poisson2d(9, 8);
  const Layout l = Layout::blocked(a.rows(), nranks);
  const auto d = DistCsr::distribute(a, l);

  Rng rng(17);
  std::vector<value_t> xg(static_cast<std::size_t>(a.rows()));
  for (auto& v : xg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector x(l, xg);
  DistVector y(l);
  CommStats stats;
  d.spmv(x, y, &stats);

  std::vector<value_t> ref(static_cast<std::size_t>(a.rows()));
  spmv(a, xg, ref);
  const auto yg = y.to_global();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(yg[i], ref[i], 1e-12);
  }
  EXPECT_EQ(stats.halo_bytes, d.halo_update_bytes());
  EXPECT_EQ(stats.halo_messages, d.halo_update_messages());
  if (nranks > 1) {
    EXPECT_GT(stats.halo_bytes, 0);
  } else {
    EXPECT_EQ(stats.halo_bytes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistSpmvProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

// ---- node-aware communication layer -------------------------------------

class NodeAwareSpmv : public ::testing::TestWithParam<int> {};

TEST_P(NodeAwareSpmv, BitIdenticalToFlatWithByteExactSplit) {
  const int rpn = GetParam();
  const auto a = poisson2d(9, 8);
  const Layout l = Layout::blocked(a.rows(), 8);
  const auto flat = DistCsr::distribute(a, l, CommConfig{});
  const auto aware =
      DistCsr::distribute(a, l, CommConfig{CommMode::NodeAware, rpn});

  Rng rng(23);
  std::vector<value_t> xg(static_cast<std::size_t>(a.rows()));
  for (auto& v : xg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector x(l, xg);
  DistVector y_flat(l);
  DistVector y_aware(l);
  CommStats s_flat;
  CommStats s_aware;
  flat.spmv(x, y_flat, &s_flat);
  aware.spmv(x, y_aware, &s_aware);

  // Same bits, not just the same values.
  EXPECT_EQ(y_flat.to_global(), y_aware.to_global());

  // Payload accounting is invariant: totals, the per-level sum, and the
  // per-logical-pair map all match the flat exchange byte-exactly.
  EXPECT_EQ(s_aware.halo_bytes, s_flat.halo_bytes);
  EXPECT_EQ(s_aware.halo_intra_bytes + s_aware.halo_inter_bytes,
            s_flat.halo_bytes);
  EXPECT_EQ(s_aware.pair_bytes, s_flat.pair_bytes);

  // Wire messages coalesce: never more than flat, strictly fewer once
  // several ranks of one node talk to the same peer node.
  EXPECT_LE(s_aware.halo_messages, s_flat.halo_messages);
  if (rpn >= 4) {
    EXPECT_LT(s_aware.halo_inter_messages, s_flat.halo_messages);
  }

  // Counters match the static per-update predictions of each matrix.
  EXPECT_EQ(s_aware.halo_messages, aware.halo_update_messages());
  EXPECT_EQ(s_aware.halo_intra_messages, aware.halo_update_intra_messages());
  EXPECT_EQ(s_aware.halo_inter_messages, aware.halo_update_inter_messages());
}

INSTANTIATE_TEST_SUITE_P(RanksPerNode, NodeAwareSpmv,
                         ::testing::Values(1, 2, 4, 8));

TEST(NodeAwareSpmvTest, UseCommRebuildsTheExchanger) {
  const auto a = poisson3d(5, 5, 5);
  const Layout l = Layout::blocked(a.rows(), 8);
  auto d = DistCsr::distribute(a, l, CommConfig{});
  EXPECT_EQ(d.comm_config(), CommConfig{});
  const auto flat_msgs = d.halo_update_messages();
  const auto flat_bytes = d.halo_update_bytes();

  d.use_comm(CommConfig{CommMode::NodeAware, 4});
  EXPECT_EQ(d.comm_config().mode, CommMode::NodeAware);
  EXPECT_TRUE(d.halo().overlap_capable());
  EXPECT_LT(d.halo_update_messages(), flat_msgs);
  EXPECT_EQ(d.halo_update_bytes(), flat_bytes);
  EXPECT_EQ(d.halo_update_intra_messages() + d.halo_update_inter_messages(),
            d.halo_update_messages());

  // Round-trip back to flat restores the historic counters.
  d.use_comm(CommConfig{});
  EXPECT_FALSE(d.halo().overlap_capable());
  EXPECT_EQ(d.halo_update_messages(), flat_msgs);
}

TEST(NodeAwareSpmvTest, InteriorBoundarySplitCoversAllRows) {
  const auto a = poisson2d(9, 8);
  const Layout l = Layout::blocked(a.rows(), 6);
  const auto d = DistCsr::distribute(a, l);
  for (rank_t p = 0; p < d.nranks(); ++p) {
    const RankBlock& blk = d.block(p);
    const auto nloc = l.local_size(p);
    std::vector<bool> seen(static_cast<std::size_t>(nloc), false);
    for (index_t i : blk.interior_rows) {
      for (index_t c : blk.matrix.row_cols(i)) {
        EXPECT_LT(c, nloc) << "interior row " << i << " touches a ghost";
      }
      seen[static_cast<std::size_t>(i)] = true;
    }
    for (index_t i : blk.boundary_rows) {
      bool has_ghost = false;
      for (index_t c : blk.matrix.row_cols(i)) has_ghost |= c >= nloc;
      EXPECT_TRUE(has_ghost) << "boundary row " << i << " is interior";
      EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
      seen[static_cast<std::size_t>(i)] = true;
    }
    for (bool b : seen) EXPECT_TRUE(b);
  }
}

}  // namespace
}  // namespace fsaic
