#include <gtest/gtest.h>

#include <cstdlib>

#include "dist/comm_scheme.hpp"
#include "dist/comm_stats.hpp"
#include "dist/node_topology.hpp"
#include "matgen/generators.hpp"

namespace fsaic {
namespace {

TEST(NodeTopologyTest, TrivialTopologyIsAllInterNode) {
  const NodeTopology t = NodeTopology::trivial(5);
  EXPECT_EQ(t.nranks(), 5);
  EXPECT_EQ(t.nnodes(), 5);
  EXPECT_EQ(t.ranks_per_node(), 1);
  for (rank_t p = 0; p < 5; ++p) {
    EXPECT_EQ(t.node_of(p), p);
    EXPECT_TRUE(t.is_leader(p));
  }
  EXPECT_EQ(t.level_of(0, 1), CommLevel::Inter);
}

TEST(NodeTopologyTest, GroupedTopologyMath) {
  // 10 ranks in nodes of 4: {0-3}, {4-7}, {8-9}.
  const NodeTopology t = NodeTopology::grouped(10, 4);
  EXPECT_EQ(t.nnodes(), 3);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(3), 0);
  EXPECT_EQ(t.node_of(4), 1);
  EXPECT_EQ(t.node_of(9), 2);
  EXPECT_EQ(t.leader_of(1), 4);
  EXPECT_TRUE(t.is_leader(8));
  EXPECT_FALSE(t.is_leader(9));
  EXPECT_TRUE(t.same_node(4, 7));
  EXPECT_FALSE(t.same_node(3, 4));
  EXPECT_EQ(t.level_of(0, 3), CommLevel::Intra);
  EXPECT_EQ(t.level_of(3, 4), CommLevel::Inter);
  EXPECT_EQ(t.node_begin(2), 8);
  EXPECT_EQ(t.node_end(2), 10);  // clamped: last node holds only 2 ranks
  EXPECT_EQ(t.node_size(2), 2);
  EXPECT_EQ(t.node_size(0), 4);
}

TEST(NodeTopologyTest, GroupedRejectsBadArguments) {
  EXPECT_THROW((void)NodeTopology::grouped(4, 0), Error);
  EXPECT_THROW((void)NodeTopology::grouped(-1, 2), Error);
}

TEST(CommConfigTest, FromEnvParsesModeAndWidth) {
  setenv("FSAIC_COMM", "node-aware", 1);
  setenv("FSAIC_RANKS_PER_NODE", "4", 1);
  const CommConfig cfg = CommConfig::from_env();
  EXPECT_EQ(cfg.mode, CommMode::NodeAware);
  EXPECT_EQ(cfg.ranks_per_node, 4);

  // Unparsable width and unknown mode fall back to the flat default.
  setenv("FSAIC_COMM", "carrier-pigeon", 1);
  setenv("FSAIC_RANKS_PER_NODE", "lots", 1);
  const CommConfig fallback = CommConfig::from_env();
  EXPECT_EQ(fallback.mode, CommMode::Flat);
  EXPECT_EQ(fallback.ranks_per_node, 1);

  unsetenv("FSAIC_COMM");
  unsetenv("FSAIC_RANKS_PER_NODE");
  EXPECT_EQ(CommConfig::from_env(), CommConfig{});
}

TEST(CommConfigTest, ModeNamesRoundTrip) {
  EXPECT_EQ(to_string(CommMode::Flat), "flat");
  EXPECT_EQ(to_string(CommMode::NodeAware), "node-aware");
  EXPECT_EQ(comm_mode_from_string("flat"), CommMode::Flat);
  EXPECT_EQ(comm_mode_from_string("node-aware"), CommMode::NodeAware);
  EXPECT_THROW((void)comm_mode_from_string("smoke-signals"), Error);
}

TEST(CommStatsLevelTest, RecordsAndMergesPerLevel) {
  CommStats a;
  a.record_halo_message(0, 1, 64, CommLevel::Intra);
  a.record_halo_message(2, 0, 32, CommLevel::Inter);
  // Payload and wire message recorded separately (the aggregated path).
  a.record_halo_payload(3, 0, 16, CommLevel::Inter);
  a.record_halo_wire(CommLevel::Inter);
  EXPECT_EQ(a.halo_messages, 3);
  EXPECT_EQ(a.halo_bytes, 112);
  EXPECT_EQ(a.halo_intra_messages, 1);
  EXPECT_EQ(a.halo_intra_bytes, 64);
  EXPECT_EQ(a.halo_inter_messages, 2);
  EXPECT_EQ(a.halo_inter_bytes, 48);
  EXPECT_EQ(a.halo_intra_bytes + a.halo_inter_bytes, a.halo_bytes);

  CommStats b;
  b.record_halo_message(1, 0, 8, CommLevel::Intra);
  b.record_async_allreduce(24);
  a.merge(b);
  EXPECT_EQ(a.halo_intra_messages, 2);
  EXPECT_EQ(a.halo_intra_bytes, 72);
  EXPECT_EQ(a.halo_inter_messages, 2);
  EXPECT_EQ(a.halo_bytes, 120);
  EXPECT_EQ(a.async_allreduce_count, 1);
  EXPECT_EQ(a.async_allreduce_bytes, 24);

  a.reset();
  EXPECT_EQ(a.halo_intra_messages, 0);
  EXPECT_EQ(a.halo_inter_bytes, 0);
  EXPECT_EQ(a.async_allreduce_count, 0);
}

TEST(CommStatsLevelTest, DefaultLevelIsInterForHistoricCallers) {
  CommStats s;
  s.record_halo_message(0, 1, 64);
  EXPECT_EQ(s.halo_inter_messages, 1);
  EXPECT_EQ(s.halo_inter_bytes, 64);
  EXPECT_EQ(s.halo_intra_messages, 0);
}

TEST(CommSchemeTopologyTest, NodePairsCoalesceCrossNodeMessages) {
  // Tridiagonal chain over 4 ranks: directed rank pairs (0,1),(1,0),(1,2),
  // (2,1),(2,3),(3,2) — 6 flat messages.
  const auto a = poisson2d(8, 1);
  const Layout l = Layout::blocked(8, 4);
  const auto scheme = CommScheme::from_pattern(a.pattern(), l);
  EXPECT_EQ(scheme.message_count(), 6u);
  // Trivial topology must reproduce the flat count.
  EXPECT_EQ(scheme.message_count(NodeTopology::trivial(4)), 6u);
  // Nodes {0,1} and {2,3}: pairs (0,1),(1,0),(2,3),(3,2) stay intra; the
  // cross-node pairs (1,2),(2,1) become one channel each.
  EXPECT_EQ(scheme.message_count(NodeTopology::grouped(4, 2)), 6u);
  // One node: everything intra, still point-to-point.
  EXPECT_EQ(scheme.message_count(NodeTopology::grouped(4, 4)), 6u);
}

TEST(CommSchemeTopologyTest, DenserSchemeAggregatesStrictly) {
  // A 2-D Poisson operator over 8 ranks has multi-edge node pairs under
  // nodes of 4, so aggregation must strictly reduce the message count.
  const auto a = poisson2d(12, 12);
  const Layout l = Layout::blocked(a.rows(), 8);
  const auto scheme = CommScheme::from_pattern(a.pattern().symbolic_power(2), l);
  const std::size_t flat = scheme.message_count();
  EXPECT_EQ(scheme.message_count(NodeTopology::trivial(8)), flat);
  EXPECT_LT(scheme.message_count(NodeTopology::grouped(8, 4)), flat);
}

}  // namespace
}  // namespace fsaic
