// The communication scheme a sparse pattern induces under a row layout:
// which x coefficients each rank must receive (from their owners) to compute
// y = M x. This is the object FSAIE-Comm keeps invariant — Section 3 of the
// paper admits a halo extension entry only if both the Gx and the G^T x
// schemes already carry the coefficients it needs.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dist/layout.hpp"
#include "dist/node_topology.hpp"
#include "sparse/pattern.hpp"

namespace fsaic {

class CommScheme {
 public:
  CommScheme() = default;

  /// Scheme of y = M x for pattern `p` (rows and the x vector distributed by
  /// `layout`): rank r receives x[gid] iff some row owned by r has a column
  /// gid owned elsewhere.
  static CommScheme from_pattern(const SparsityPattern& p, const Layout& layout);

  /// Does `receiver` obtain x[gid] during the halo update? (The sender is
  /// implicitly owner(gid).)
  [[nodiscard]] bool receives(rank_t receiver, index_t gid) const {
    return pairs_.contains(key(receiver, gid));
  }

  /// Total number of (receiver, coefficient) exchange pairs — the halo
  /// communication volume in units of vector entries.
  [[nodiscard]] std::size_t exchange_count() const { return pairs_.size(); }

  /// Number of distinct (sender, receiver) rank pairs — the message count of
  /// one halo update under the flat point-to-point scheme.
  [[nodiscard]] std::size_t message_count() const;

  /// Wire message count of one halo update under node-aware leader
  /// aggregation over `topo`: same-node rank pairs each cost one message
  /// (the intra-node fabric stays point-to-point), while all cross-node
  /// pairs sharing an ordered (sender node, receiver node) pair coalesce
  /// into one. With the trivial topology this equals message_count().
  [[nodiscard]] std::size_t message_count(const NodeTopology& topo) const;

  /// True if every exchange of this scheme also appears in `other`.
  [[nodiscard]] bool subset_of(const CommScheme& other) const;

  bool operator==(const CommScheme& other) const { return pairs_ == other.pairs_; }

  [[nodiscard]] const Layout& layout() const { return layout_; }

 private:
  static std::uint64_t key(rank_t receiver, index_t gid) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(receiver)) << 32) |
           static_cast<std::uint32_t>(gid);
  }

  Layout layout_;
  std::unordered_set<std::uint64_t> pairs_;
};

}  // namespace fsaic
