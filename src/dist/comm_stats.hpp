// Byte- and message-exact accounting of the simulated communication fabric.
//
// Real MPI runs can only infer communication overhead from timing; the
// simulated runtime counts every exchanged coefficient, which is how the
// benches *prove* the paper's core claim — FSAIE-Comm leaves the halo traffic
// of FSAI bit-identical while a naive extension inflates it.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/types.hpp"

namespace fsaic {

struct CommStats {
  /// Point-to-point halo traffic.
  std::int64_t halo_messages = 0;
  std::int64_t halo_bytes = 0;

  /// Collective calls (dot products, imbalance reductions, ...).
  std::int64_t allreduce_count = 0;
  std::int64_t allreduce_bytes = 0;

  /// Per ordered (sender, receiver) pair: bytes moved.
  std::map<std::pair<rank_t, rank_t>, std::int64_t> pair_bytes;

  void record_halo_message(rank_t sender, rank_t receiver, std::int64_t bytes) {
    ++halo_messages;
    halo_bytes += bytes;
    pair_bytes[{sender, receiver}] += bytes;
  }

  void record_allreduce(std::int64_t bytes) {
    ++allreduce_count;
    allreduce_bytes += bytes;
  }

  void reset() { *this = CommStats{}; }

  /// Fold another accounting into this one. The threaded executor gives
  /// every rank a private CommStats during a superstep and merges them in
  /// rank order afterwards — contention-safe without a lock on the hot
  /// path, and deterministic (the merged totals and pair map are identical
  /// to what the sequential loop records).
  void merge(const CommStats& other) {
    halo_messages += other.halo_messages;
    halo_bytes += other.halo_bytes;
    allreduce_count += other.allreduce_count;
    allreduce_bytes += other.allreduce_bytes;
    for (const auto& [pair, bytes] : other.pair_bytes) {
      pair_bytes[pair] += bytes;
    }
  }

  /// Number of distinct communicating rank pairs seen so far.
  [[nodiscard]] std::size_t neighbor_pair_count() const { return pair_bytes.size(); }
};

}  // namespace fsaic
