// Byte- and message-exact accounting of the simulated communication fabric.
//
// Real MPI runs can only infer communication overhead from timing; the
// simulated runtime counts every exchanged coefficient, which is how the
// benches *prove* the paper's core claim — FSAIE-Comm leaves the halo traffic
// of FSAI bit-identical while a naive extension inflates it.
//
// With a two-level NodeTopology the halo counters additionally split by
// level: intra (both endpoints on one simulated node) vs inter (crossing
// nodes). Bytes are always attributed to the *logical* (sender, receiver)
// rank pair — aggregation through a node leader changes how many wire
// messages carry them, never how many bytes move — so for any topology
// halo_intra_bytes + halo_inter_bytes equals the flat exchanger's
// halo_bytes byte-exactly, and pair_bytes is identical across schemes.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/types.hpp"
#include "dist/node_topology.hpp"

namespace fsaic {

struct CommStats {
  /// Point-to-point halo traffic (messages actually posted on the fabric:
  /// under leader aggregation one coalesced inter-node message counts once).
  std::int64_t halo_messages = 0;
  std::int64_t halo_bytes = 0;

  /// Per-level split of the halo counters. Invariants:
  ///   halo_messages == halo_intra_messages + halo_inter_messages
  ///   halo_bytes    == halo_intra_bytes + halo_inter_bytes
  /// The flat single-rank-node topology classifies everything as inter.
  std::int64_t halo_intra_messages = 0;
  std::int64_t halo_intra_bytes = 0;
  std::int64_t halo_inter_messages = 0;
  std::int64_t halo_inter_bytes = 0;

  /// Collective calls (dot products, imbalance reductions, ...).
  std::int64_t allreduce_count = 0;
  std::int64_t allreduce_bytes = 0;

  /// Asynchronous collectives (the pipelined-CG residual reduction that
  /// progresses while the overlapped SpMV runs). Counted separately from
  /// the blocking allreduces: the method's wire-level claim — one blocking
  /// allreduce per iteration — stays visible in allreduce_count.
  std::int64_t async_allreduce_count = 0;
  std::int64_t async_allreduce_bytes = 0;

  /// Per ordered (sender, receiver) pair: bytes moved. Logical attribution,
  /// invariant under aggregation.
  std::map<std::pair<rank_t, rank_t>, std::int64_t> pair_bytes;

  /// One full message from sender to receiver at `level`.
  void record_halo_message(rank_t sender, rank_t receiver, std::int64_t bytes,
                           CommLevel level = CommLevel::Inter) {
    record_halo_payload(sender, receiver, bytes, level);
    record_halo_wire(level);
  }

  /// Payload bytes riding an aggregated wire message: attributes the bytes
  /// to the logical pair and level without counting a message.
  void record_halo_payload(rank_t sender, rank_t receiver, std::int64_t bytes,
                           CommLevel level) {
    halo_bytes += bytes;
    (level == CommLevel::Intra ? halo_intra_bytes : halo_inter_bytes) += bytes;
    pair_bytes[{sender, receiver}] += bytes;
  }

  /// One wire message at `level` (the coalesced carrier; its bytes were
  /// already attributed per logical pair via record_halo_payload).
  void record_halo_wire(CommLevel level) {
    ++halo_messages;
    ++(level == CommLevel::Intra ? halo_intra_messages : halo_inter_messages);
  }

  void record_allreduce(std::int64_t bytes) {
    ++allreduce_count;
    allreduce_bytes += bytes;
  }

  void record_async_allreduce(std::int64_t bytes) {
    ++async_allreduce_count;
    async_allreduce_bytes += bytes;
  }

  void reset() { *this = CommStats{}; }

  /// Fold another accounting into this one. The threaded executor gives
  /// every rank a private CommStats during a superstep and merges them in
  /// rank order afterwards — contention-safe without a lock on the hot
  /// path, and deterministic (the merged totals, per-level split and pair
  /// map are identical to what the sequential loop records).
  void merge(const CommStats& other) {
    halo_messages += other.halo_messages;
    halo_bytes += other.halo_bytes;
    halo_intra_messages += other.halo_intra_messages;
    halo_intra_bytes += other.halo_intra_bytes;
    halo_inter_messages += other.halo_inter_messages;
    halo_inter_bytes += other.halo_inter_bytes;
    allreduce_count += other.allreduce_count;
    allreduce_bytes += other.allreduce_bytes;
    async_allreduce_count += other.async_allreduce_count;
    async_allreduce_bytes += other.async_allreduce_bytes;
    for (const auto& [pair, bytes] : other.pair_bytes) {
      pair_bytes[pair] += bytes;
    }
  }

  /// Number of distinct communicating rank pairs seen so far.
  [[nodiscard]] std::size_t neighbor_pair_count() const { return pair_bytes.size(); }
};

}  // namespace fsaic
