// Row layout of a distributed matrix/vector: each rank owns a contiguous
// range of global indices. Partitions produced by graph/partition.hpp are
// turned into this form by symmetrically permuting the matrix with
// partition_permutation(), exactly as an MPI code would renumber unknowns
// after calling METIS.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fsaic {

class Layout {
 public:
  Layout() = default;

  /// Build from the (nranks+1) range boundaries; rank p owns
  /// [begin[p], begin[p+1]).
  explicit Layout(std::vector<index_t> rank_begin) : begin_(std::move(rank_begin)) {
    FSAIC_REQUIRE(begin_.size() >= 2, "layout needs at least one rank");
    FSAIC_REQUIRE(begin_.front() == 0, "layout must start at 0");
    FSAIC_REQUIRE(std::is_sorted(begin_.begin(), begin_.end()),
                  "rank ranges must be non-decreasing");
  }

  /// Even block layout of n indices over nranks ranks (remainder spread over
  /// the first ranks).
  static Layout blocked(index_t n, rank_t nranks) {
    FSAIC_REQUIRE(n >= 0 && nranks >= 1, "invalid layout shape");
    std::vector<index_t> begin(static_cast<std::size_t>(nranks) + 1);
    const index_t base = n / nranks;
    const index_t extra = n % nranks;
    begin[0] = 0;
    for (rank_t p = 0; p < nranks; ++p) {
      begin[static_cast<std::size_t>(p) + 1] =
          begin[static_cast<std::size_t>(p)] + base + (p < extra ? 1 : 0);
    }
    return Layout(std::move(begin));
  }

  /// Layout matching the contiguous ranges of a graph partition (call after
  /// permuting the matrix with partition_permutation()).
  static Layout from_part_sizes(std::span<const index_t> sizes) {
    std::vector<index_t> begin(sizes.size() + 1, 0);
    for (std::size_t p = 0; p < sizes.size(); ++p) {
      begin[p + 1] = begin[p] + sizes[p];
    }
    return Layout(std::move(begin));
  }

  [[nodiscard]] rank_t nranks() const {
    return static_cast<rank_t>(begin_.size()) - 1;
  }
  [[nodiscard]] index_t global_size() const { return begin_.back(); }

  [[nodiscard]] index_t begin(rank_t p) const {
    return begin_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] index_t end(rank_t p) const {
    return begin_[static_cast<std::size_t>(p) + 1];
  }
  [[nodiscard]] index_t local_size(rank_t p) const { return end(p) - begin(p); }

  /// Owning rank of global index gid.
  [[nodiscard]] rank_t owner(index_t gid) const {
    FSAIC_REQUIRE(gid >= 0 && gid < global_size(), "gid out of range");
    const auto it = std::upper_bound(begin_.begin(), begin_.end(), gid);
    return static_cast<rank_t>(it - begin_.begin()) - 1;
  }

  [[nodiscard]] bool owns(rank_t p, index_t gid) const {
    return gid >= begin(p) && gid < end(p);
  }

  /// Local index of gid on its owning rank.
  [[nodiscard]] index_t to_local(rank_t p, index_t gid) const {
    FSAIC_REQUIRE(owns(p, gid), "gid not owned by rank");
    return gid - begin(p);
  }

  bool operator==(const Layout& other) const = default;

 private:
  std::vector<index_t> begin_{0, 0};
};

}  // namespace fsaic
