#include "dist/dist_csr.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "obs/trace.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {

DistCsr DistCsr::distribute(const CsrMatrix& global, Layout layout) {
  FSAIC_REQUIRE(global.rows() == global.cols(),
                "DistCsr distributes square operators");
  FSAIC_REQUIRE(global.rows() == layout.global_size(),
                "layout size must match matrix");
  DistCsr d;
  d.row_layout_ = layout;
  d.col_layout_ = layout;
  d.blocks_.resize(static_cast<std::size_t>(layout.nranks()));

  for (rank_t p = 0; p < layout.nranks(); ++p) {
    RankBlock& blk = d.blocks_[static_cast<std::size_t>(p)];
    const index_t row0 = layout.begin(p);
    const index_t nloc = layout.local_size(p);

    // Pass 1: collect ghost column ids.
    std::vector<index_t> ghosts;
    for (index_t i = row0; i < layout.end(p); ++i) {
      for (index_t j : global.row_cols(i)) {
        if (!layout.owns(p, j)) ghosts.push_back(j);
      }
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    blk.ghost_gids = ghosts;

    // Pass 2: build the local CSR with remapped columns.
    std::vector<offset_t> row_ptr(static_cast<std::size_t>(nloc) + 1, 0);
    std::vector<index_t> col_idx;
    std::vector<value_t> values;
    for (index_t li = 0; li < nloc; ++li) {
      const index_t gi = row0 + li;
      const auto cols = global.row_cols(gi);
      const auto vals = global.row_vals(gi);
      // Owned columns keep relative order; ghosts are appended per row then
      // the row is re-sorted by the remapped index so CSR invariants hold.
      std::vector<std::pair<index_t, value_t>> entries;
      entries.reserve(cols.size());
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t j = cols[k];
        index_t lj;
        if (layout.owns(p, j)) {
          lj = j - row0;
          ++blk.local_entries;
        } else {
          const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), j);
          lj = nloc + static_cast<index_t>(it - ghosts.begin());
          ++blk.halo_entries;
        }
        entries.emplace_back(lj, vals[k]);
      }
      std::sort(entries.begin(), entries.end());
      for (const auto& [lj, v] : entries) {
        col_idx.push_back(lj);
        values.push_back(v);
      }
      row_ptr[static_cast<std::size_t>(li) + 1] = static_cast<offset_t>(col_idx.size());
    }
    blk.matrix = CsrMatrix(nloc, nloc + static_cast<index_t>(ghosts.size()),
                           std::move(row_ptr), std::move(col_idx),
                           std::move(values));

    // Recv map: ghosts grouped by owning rank (ascending rank, sorted gids —
    // ghosts are globally sorted and ranks own ascending ranges, so a single
    // sweep groups them).
    rank_t current = -1;
    for (index_t gid : ghosts) {
      const rank_t q = layout.owner(gid);
      if (q != current) {
        blk.recv.push_back({q, {}});
        current = q;
      }
      blk.recv.back().gids.push_back(gid);
    }
  }

  // Send maps mirror the recv maps: rank q sends to p what p receives from q.
  for (rank_t p = 0; p < layout.nranks(); ++p) {
    for (const auto& nb : d.blocks_[static_cast<std::size_t>(p)].recv) {
      auto& sender = d.blocks_[static_cast<std::size_t>(nb.rank)];
      sender.send.push_back({p, nb.gids});
    }
  }
  for (auto& blk : d.blocks_) {
    std::sort(blk.send.begin(), blk.send.end(),
              [](const RankBlock::Neighbor& a, const RankBlock::Neighbor& b) {
                return a.rank < b.rank;
              });
  }
  return d;
}

offset_t DistCsr::nnz() const {
  offset_t total = 0;
  for (const auto& blk : blocks_) {
    total += blk.matrix.nnz();
  }
  return total;
}

offset_t DistCsr::max_rank_nnz() const {
  offset_t m = 0;
  for (const auto& blk : blocks_) {
    m = std::max(m, blk.matrix.nnz());
  }
  return m;
}

std::int64_t DistCsr::halo_update_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& blk : blocks_) {
    for (const auto& nb : blk.recv) {
      bytes += static_cast<std::int64_t>(nb.gids.size()) *
               static_cast<std::int64_t>(sizeof(value_t));
    }
  }
  return bytes;
}

std::int64_t DistCsr::halo_update_messages() const {
  std::int64_t messages = 0;
  for (const auto& blk : blocks_) {
    messages += static_cast<std::int64_t>(blk.recv.size());
  }
  return messages;
}

void DistCsr::spmv(const DistVector& x, DistVector& y, CommStats* stats,
                   TraceRecorder* trace) const {
  FSAIC_REQUIRE(x.layout() == col_layout_, "x layout mismatch");
  FSAIC_REQUIRE(y.layout() == row_layout_, "y layout mismatch");
  using clock = std::chrono::steady_clock;
  double halo_us = 0.0;
  double compute_us = 0.0;
  clock::time_point seg;
  if (trace != nullptr) seg = clock::now();
  for (rank_t p = 0; p < nranks(); ++p) {
    const RankBlock& blk = blocks_[static_cast<std::size_t>(p)];
    const index_t nloc = row_layout_.local_size(p);
    // Superstep 1: halo update. Every rank assembles its extended local x
    // [owned | ghosts] by "receiving" owned coefficients from the neighbors'
    // blocks. The copy below is the simulated wire transfer.
    std::vector<value_t> x_ext(static_cast<std::size_t>(nloc) + blk.ghost_gids.size());
    const auto x_loc = x.block(p);
    std::copy(x_loc.begin(), x_loc.end(), x_ext.begin());
    std::size_t slot = static_cast<std::size_t>(nloc);
    for (const auto& nb : blk.recv) {
      const auto src = x.block(nb.rank);
      const index_t src0 = col_layout_.begin(nb.rank);
      for (index_t gid : nb.gids) {
        x_ext[slot++] = src[static_cast<std::size_t>(gid - src0)];
      }
      if (stats != nullptr) {
        stats->record_halo_message(
            nb.rank, p,
            static_cast<std::int64_t>(nb.gids.size() * sizeof(value_t)));
      }
    }
    if (trace != nullptr) {
      const auto now = clock::now();
      halo_us += std::chrono::duration<double, std::micro>(now - seg).count();
      seg = now;
    }
    // Superstep 2: rank-local SpMV.
    fsaic::spmv(blk.matrix, x_ext, y.block(p));
    if (trace != nullptr) {
      const auto now = clock::now();
      compute_us += std::chrono::duration<double, std::micro>(now - seg).count();
      seg = now;
    }
  }
  if (trace != nullptr) {
    // The per-rank gather/compute segments are folded into one BSP-style
    // halo superstep followed by one compute superstep.
    const double start = trace->now_us() - halo_us - compute_us;
    trace->complete("halo_exchange", "comm", start, halo_us);
    trace->complete("spmv_local", "compute", start + halo_us, compute_us);
  }
}

CsrMatrix DistCsr::to_global() const {
  CooBuilder builder(row_layout_.global_size(), col_layout_.global_size());
  for (rank_t p = 0; p < nranks(); ++p) {
    const RankBlock& blk = blocks_[static_cast<std::size_t>(p)];
    const index_t row0 = row_layout_.begin(p);
    const index_t nloc = row_layout_.local_size(p);
    for (index_t li = 0; li < nloc; ++li) {
      const auto cols = blk.matrix.row_cols(li);
      const auto vals = blk.matrix.row_vals(li);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t lj = cols[k];
        const index_t gj = lj < nloc
                               ? row0 + lj
                               : blk.ghost_gids[static_cast<std::size_t>(lj - nloc)];
        builder.add(row0 + li, gj, vals[k]);
      }
    }
  }
  return builder.to_csr();
}

value_t dist_dot(const DistVector& x, const DistVector& y, CommStats* stats,
                 TraceRecorder* trace) {
  FSAIC_REQUIRE(x.layout() == y.layout(), "dot layout mismatch");
  const double t0 = trace != nullptr ? trace->now_us() : 0.0;
  value_t sum = 0.0;
  for (rank_t p = 0; p < x.nranks(); ++p) {
    sum += dot(x.block(p), y.block(p));
  }
  if (stats != nullptr) stats->record_allreduce(sizeof(value_t));
  if (trace != nullptr) {
    trace->complete("allreduce", "comm", t0, trace->now_us() - t0);
  }
  return sum;
}

value_t dist_norm2(const DistVector& x, CommStats* stats, TraceRecorder* trace) {
  return std::sqrt(dist_dot(x, x, stats, trace));
}

void dist_axpy(value_t alpha, const DistVector& x, DistVector& y) {
  FSAIC_REQUIRE(x.layout() == y.layout(), "axpy layout mismatch");
  for (rank_t p = 0; p < x.nranks(); ++p) {
    axpy(alpha, x.block(p), y.block(p));
  }
}

void dist_xpby(const DistVector& x, value_t beta, DistVector& y) {
  FSAIC_REQUIRE(x.layout() == y.layout(), "xpby layout mismatch");
  for (rank_t p = 0; p < x.nranks(); ++p) {
    xpby(x.block(p), beta, y.block(p));
  }
}

void dist_copy(const DistVector& x, DistVector& y) {
  FSAIC_REQUIRE(x.layout() == y.layout(), "copy layout mismatch");
  for (rank_t p = 0; p < x.nranks(); ++p) {
    const auto src = x.block(p);
    auto dst = y.block(p);
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

}  // namespace fsaic
