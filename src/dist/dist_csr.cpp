#include "dist/dist_csr.hpp"

#include <algorithm>
#include <exception>
#include <limits>

#include "exec/executor.hpp"
#include "exec/halo.hpp"
#include "obs/trace.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {

namespace {

/// SELL chunk widths the autotuner scores — exactly the compile-time
/// specializations of SellMatrix::spmv (anything else takes the slower
/// generic shape, so there is no point padding for it).
constexpr index_t kAutotuneChunks[] = {4, 8, 16, 32};
/// Padding overhead beyond which the SIMD format stops paying for its
/// wasted loads and the scalar CSR reference wins.
constexpr double kAutotunePaddingLimit = 1.25;

/// Resolve `autotune` into a concrete format/chunk for this matrix: the
/// least-padded candidate chunk over every block's interior+boundary row
/// subsets (the exact SellMatrix builds use_kernel performs), ties to the
/// wider chunk; Csr when even the best candidate pads more than the limit.
KernelConfig resolve_autotune(const KernelConfig& requested,
                              std::span<const RankBlock> blocks) {
  KernelConfig resolved = requested;
  resolved.autotune = false;
  offset_t nnz = 0;
  for (const auto& blk : blocks) nnz += blk.matrix.nnz();
  if (nnz == 0) {
    resolved.format = OperatorFormat::Csr;
    return resolved;
  }
  index_t best_chunk = 0;
  offset_t best_padded = 0;
  for (const index_t chunk : kAutotuneChunks) {
    const index_t sigma =
        std::max(chunk, requested.sell_sigma / chunk * chunk);
    offset_t padded = 0;
    for (const auto& blk : blocks) {
      padded += sell_padded_entries(blk.matrix, blk.interior_rows, chunk, sigma);
      padded += sell_padded_entries(blk.matrix, blk.boundary_rows, chunk, sigma);
    }
    // `<=` prefers the widest chunk among equals: same stored slots, more
    // SIMD lanes per iteration.
    if (best_chunk == 0 || padded <= best_padded) {
      best_chunk = chunk;
      best_padded = padded;
    }
  }
  const double ratio =
      static_cast<double>(best_padded) / static_cast<double>(nnz);
  if (ratio > kAutotunePaddingLimit) {
    resolved.format = OperatorFormat::Csr;
  } else {
    resolved.format = OperatorFormat::Sell;
    resolved.sell_chunk = best_chunk;
    resolved.sell_sigma =
        std::max(best_chunk, requested.sell_sigma / best_chunk * best_chunk);
  }
  return resolved;
}

/// One row of global-column input to build_rank_block.
struct RowView {
  std::span<const index_t> cols;
  std::span<const value_t> vals;
};

/// Build rank p's RankBlock from its rows of the conceptual global matrix
/// (`row(li)` yields local row li with GLOBAL column ids). This is the one
/// remapping code path shared by distribute() and from_rank_local(), so
/// both produce bit-identical blocks from the same rows. Pure per-rank
/// work — safe to run for distinct ranks concurrently.
template <typename RowFn>
void build_rank_block(const Layout& layout, rank_t p, RowFn&& row,
                      RankBlock& blk) {
  const index_t row0 = layout.begin(p);
  const index_t nloc = layout.local_size(p);

  // Pass 1: collect ghost column ids.
  std::vector<index_t> ghosts;
  for (index_t li = 0; li < nloc; ++li) {
    for (index_t j : row(li).cols) {
      if (!layout.owns(p, j)) ghosts.push_back(j);
    }
  }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  blk.ghost_gids = ghosts;

  // Pass 2: build the local CSR with remapped columns.
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(nloc) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<value_t> values;
  for (index_t li = 0; li < nloc; ++li) {
    const RowView rv = row(li);
    // Owned columns keep relative order; ghosts are appended per row then
    // the row is re-sorted by the remapped index so CSR invariants hold.
    std::vector<std::pair<index_t, value_t>> entries;
    entries.reserve(rv.cols.size());
    for (std::size_t k = 0; k < rv.cols.size(); ++k) {
      const index_t j = rv.cols[k];
      index_t lj;
      if (layout.owns(p, j)) {
        lj = j - row0;
        ++blk.local_entries;
      } else {
        const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), j);
        lj = nloc + static_cast<index_t>(it - ghosts.begin());
        ++blk.halo_entries;
      }
      entries.emplace_back(lj, rv.vals[k]);
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [lj, v] : entries) {
      col_idx.push_back(lj);
      values.push_back(v);
    }
    row_ptr[static_cast<std::size_t>(li) + 1] = static_cast<offset_t>(col_idx.size());
  }
  blk.matrix = CsrMatrix(nloc, nloc + static_cast<index_t>(ghosts.size()),
                         std::move(row_ptr), std::move(col_idx),
                         std::move(values));

  // Interior/boundary row split for the overlap-capable SpMV: a row is
  // boundary iff it touches any ghost column.
  for (index_t li = 0; li < nloc; ++li) {
    const auto cols = blk.matrix.row_cols(li);
    const bool boundary =
        std::any_of(cols.begin(), cols.end(),
                    [nloc](index_t c) { return c >= nloc; });
    (boundary ? blk.boundary_rows : blk.interior_rows).push_back(li);
  }

  // Recv map: ghosts grouped by owning rank (ascending rank, sorted gids —
  // ghosts are globally sorted and ranks own ascending ranges, so a single
  // sweep groups them).
  rank_t current = -1;
  for (index_t gid : ghosts) {
    const rank_t q = layout.owner(gid);
    if (q != current) {
      blk.recv.push_back({q, {}});
      current = q;
    }
    blk.recv.back().gids.push_back(gid);
  }
}

}  // namespace

DistCsr DistCsr::distribute(const CsrMatrix& global, Layout layout) {
  return distribute(global, std::move(layout), CommConfig::from_env());
}

DistCsr DistCsr::distribute(const CsrMatrix& global, Layout layout,
                            const CommConfig& comm) {
  FSAIC_REQUIRE(global.rows() == global.cols(),
                "DistCsr distributes square operators");
  FSAIC_REQUIRE(global.rows() == layout.global_size(),
                "layout size must match matrix");
  DistCsr d;
  d.row_layout_ = layout;
  d.col_layout_ = layout;
  d.blocks_.resize(static_cast<std::size_t>(layout.nranks()));

  for (rank_t p = 0; p < layout.nranks(); ++p) {
    const index_t row0 = layout.begin(p);
    build_rank_block(
        layout, p,
        [&](index_t li) {
          return RowView{global.row_cols(row0 + li), global.row_vals(row0 + li)};
        },
        d.blocks_[static_cast<std::size_t>(p)]);
  }

  d.finish_build(comm);
  return d;
}

DistCsr DistCsr::from_rank_local(
    Layout layout, const std::function<RankLocalRows(rank_t)>& rank_rows,
    const CommConfig& comm, Executor* exec) {
  DistCsr d;
  d.row_layout_ = layout;
  d.col_layout_ = layout;
  d.blocks_.resize(static_cast<std::size_t>(layout.nranks()));

  // Each rank's block is a pure function of its generated rows; build them
  // in parallel. Exceptions (e.g. a generator handing back malformed rows)
  // must not escape the superstep body — the sequential executor's
  // parallel_for is an OpenMP region — so they are captured per rank and
  // the first one (in rank order, deterministically) rethrown after.
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(layout.nranks()));
  resolve_executor(exec).parallel_for(
      static_cast<index_t>(layout.nranks()), [&](index_t pi, int /*slot*/) {
        try {
          const auto p = static_cast<rank_t>(pi);
          const RankLocalRows rows = rank_rows(p);
          const index_t nloc = layout.local_size(p);
          FSAIC_REQUIRE(
              rows.row_ptr.size() == static_cast<std::size_t>(nloc) + 1 &&
                  rows.row_ptr.front() == 0,
              "rank rows must cover exactly the layout's local range");
          const auto nnz = static_cast<std::size_t>(rows.row_ptr.back());
          FSAIC_REQUIRE(
              rows.col_gids.size() == nnz && rows.values.size() == nnz,
              "rank rows arrays disagree with row_ptr");
          for (const index_t j : rows.col_gids) {
            FSAIC_REQUIRE(j >= 0 && j < layout.global_size(),
                          "rank rows column id out of range");
          }
          build_rank_block(
              layout, p,
              [&](index_t li) {
                const auto b = static_cast<std::size_t>(
                    rows.row_ptr[static_cast<std::size_t>(li)]);
                const auto e = static_cast<std::size_t>(
                    rows.row_ptr[static_cast<std::size_t>(li) + 1]);
                return RowView{
                    std::span<const index_t>(rows.col_gids).subspan(b, e - b),
                    std::span<const value_t>(rows.values).subspan(b, e - b)};
              },
              d.blocks_[static_cast<std::size_t>(p)]);
        } catch (...) {
          errors[static_cast<std::size_t>(pi)] = std::current_exception();
        }
      });
  for (const auto& err : errors) {
    if (err != nullptr) std::rethrow_exception(err);
  }

  d.finish_build(comm);
  return d;
}

void DistCsr::finish_build(const CommConfig& comm) {
  // Send maps mirror the recv maps: rank q sends to p what p receives from q.
  for (rank_t p = 0; p < row_layout_.nranks(); ++p) {
    for (const auto& nb : blocks_[static_cast<std::size_t>(p)].recv) {
      auto& sender = blocks_[static_cast<std::size_t>(nb.rank)];
      sender.send.push_back({p, nb.gids});
    }
  }
  for (auto& blk : blocks_) {
    std::sort(blk.send.begin(), blk.send.end(),
              [](const RankBlock::Neighbor& a, const RankBlock::Neighbor& b) {
                return a.rank < b.rank;
              });
  }

  // Materialize the comm scheme as halo plans and realize them under the
  // requested comm config (shared by copies).
  comm_ = comm;
  halo_ = make_halo_exchanger(row_layout_, build_halo_plans(), comm);

  // Rank-local kernel backend: FSAIC_FORMAT selects the process-wide
  // default format; precision always starts Double (use_kernel opts in).
  use_kernel(KernelConfig::from_env());
}

void DistCsr::use_kernel(const KernelConfig& kernel) {
  kernel_ = kernel.autotune ? resolve_autotune(kernel, blocks_) : kernel;
  ops_.clear();
  ops_.reserve(blocks_.size());
  for (const auto& blk : blocks_) {
    ops_.emplace_back(blk.matrix, blk.interior_rows, blk.boundary_rows,
                      kernel_);
  }
}

offset_t DistCsr::padded_entries() const {
  offset_t total = 0;
  for (std::size_t p = 0; p < blocks_.size(); ++p) {
    total += ops_[p].padded_entries(blocks_[p].matrix);
  }
  return total;
}

double DistCsr::padding_ratio() const {
  const offset_t n = nnz();
  return n > 0 ? static_cast<double>(padded_entries()) / static_cast<double>(n)
               : 1.0;
}

std::vector<HaloPlan> DistCsr::build_halo_plans() const {
  std::vector<HaloPlan> plans(static_cast<std::size_t>(nranks()));
  for (rank_t p = 0; p < nranks(); ++p) {
    const RankBlock& blk = blocks_[static_cast<std::size_t>(p)];
    auto& plan = plans[static_cast<std::size_t>(p)];
    for (const auto& nb : blk.send) {
      plan.send.push_back({nb.rank, nb.gids});
    }
    for (const auto& nb : blk.recv) {
      plan.recv.push_back({nb.rank, nb.gids});
    }
  }
  return plans;
}

void DistCsr::use_comm(const CommConfig& comm) {
  FSAIC_REQUIRE(halo_ != nullptr, "DistCsr was not built by distribute()");
  if (comm == comm_) return;
  comm_ = comm;
  halo_ = make_halo_exchanger(row_layout_, build_halo_plans(), comm);
}

std::vector<double> DistCsr::halo_wait_us() const {
  return halo_ != nullptr ? halo_->wait_us_per_rank()
                          : std::vector<double>(static_cast<std::size_t>(nranks()), 0.0);
}

offset_t DistCsr::nnz() const {
  offset_t total = 0;
  for (const auto& blk : blocks_) {
    total += blk.matrix.nnz();
  }
  return total;
}

offset_t DistCsr::max_rank_nnz() const {
  offset_t m = 0;
  for (const auto& blk : blocks_) {
    m = std::max(m, blk.matrix.nnz());
  }
  return m;
}

std::int64_t DistCsr::halo_update_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& blk : blocks_) {
    for (const auto& nb : blk.recv) {
      bytes += static_cast<std::int64_t>(nb.gids.size()) *
               static_cast<std::int64_t>(sizeof(value_t));
    }
  }
  return bytes;
}

std::int64_t DistCsr::halo_update_messages() const {
  FSAIC_REQUIRE(halo_ != nullptr, "DistCsr was not built by distribute()");
  return halo_->update_messages();
}

std::int64_t DistCsr::halo_update_intra_messages() const {
  FSAIC_REQUIRE(halo_ != nullptr, "DistCsr was not built by distribute()");
  return halo_->update_messages(CommLevel::Intra);
}

std::int64_t DistCsr::halo_update_inter_messages() const {
  FSAIC_REQUIRE(halo_ != nullptr, "DistCsr was not built by distribute()");
  return halo_->update_messages(CommLevel::Inter);
}

void DistCsr::spmv(const DistVector& x, DistVector& y, CommStats* stats,
                   TraceRecorder* trace, Executor* exec) const {
  FSAIC_REQUIRE(x.layout() == col_layout_, "x layout mismatch");
  FSAIC_REQUIRE(y.layout() == row_layout_, "y layout mismatch");
  FSAIC_REQUIRE(halo_ != nullptr, "DistCsr was not built by distribute()");
  Executor& ex = resolve_executor(exec);
  const rank_t n = nranks();
  // Per-rank private accounting, merged in rank order after the superstep:
  // contention-safe under the threaded executor, identical totals under
  // the sequential one.
  std::vector<CommStats> rank_stats(
      stats != nullptr ? static_cast<std::size_t>(n) : 0);

  if (halo_->overlap_capable()) {
    // One phased superstep: every thread posts all its ranks' sends (never
    // blocking), then works its ranks — interior rows compute while the
    // exchange is in flight, the drain blocks only for what is still
    // missing, boundary rows finish after it. Row sums are performed in the
    // same per-row order as the flat path, so y is bit-identical.
    ex.parallel_ranks_phased(
        n, [&](rank_t p) { halo_->post_sends(p, x); },
        [&](rank_t p) {
          const RankBlock& blk = blocks_[static_cast<std::size_t>(p)];
          const auto nloc = static_cast<std::size_t>(row_layout_.local_size(p));
          const double t0 = trace != nullptr ? trace->now_us() : 0.0;
          std::vector<value_t> x_ext(nloc + blk.ghost_gids.size());
          const auto x_loc = x.block(p);
          std::copy(x_loc.begin(), x_loc.end(), x_ext.begin());
          ops_[static_cast<std::size_t>(p)].spmv_interior(
              blk.matrix, blk.interior_rows, x_ext, y.block(p));
          const double t1 = trace != nullptr ? trace->now_us() : 0.0;
          if (trace != nullptr) {
            trace->complete("spmv_interior", "compute", t0, t1 - t0);
          }
          halo_->drain_recvs(p, std::span<value_t>(x_ext).subspan(nloc),
                             stats != nullptr
                                 ? &rank_stats[static_cast<std::size_t>(p)]
                                 : nullptr);
          const double t2 = trace != nullptr ? trace->now_us() : 0.0;
          if (trace != nullptr) {
            trace->complete("halo_exchange", "comm", t1, t2 - t1);
          }
          ops_[static_cast<std::size_t>(p)].spmv_boundary(
              blk.matrix, blk.boundary_rows, x_ext, y.block(p));
          if (trace != nullptr) {
            trace->complete("spmv_boundary", "compute", t2,
                            trace->now_us() - t2);
          }
        });
  } else {
    // Superstep 1: every rank deposits its owned coefficients into the
    // neighbors' mailboxes (the simulated wire transfer).
    ex.parallel_ranks(n, [&](rank_t p) { halo_->post_sends(p, x); });

    // Superstep 2: every rank assembles its extended local x [owned |
    // ghosts] by draining its mailboxes, then runs the rank-local SpMV.
    ex.parallel_ranks(n, [&](rank_t p) {
      const RankBlock& blk = blocks_[static_cast<std::size_t>(p)];
      const auto nloc = static_cast<std::size_t>(row_layout_.local_size(p));
      const double t0 = trace != nullptr ? trace->now_us() : 0.0;
      std::vector<value_t> x_ext(nloc + blk.ghost_gids.size());
      const auto x_loc = x.block(p);
      std::copy(x_loc.begin(), x_loc.end(), x_ext.begin());
      halo_->drain_recvs(
          p, std::span<value_t>(x_ext).subspan(nloc),
          stats != nullptr ? &rank_stats[static_cast<std::size_t>(p)] : nullptr);
      const double t1 = trace != nullptr ? trace->now_us() : 0.0;
      if (trace != nullptr) trace->complete("halo_exchange", "comm", t0, t1 - t0);
      ops_[static_cast<std::size_t>(p)].spmv_all(
          blk.matrix, blk.interior_rows, blk.boundary_rows, x_ext, y.block(p));
      if (trace != nullptr) {
        trace->complete("spmv_local", "compute", t1, trace->now_us() - t1);
      }
    });
  }

  if (stats != nullptr) {
    for (const auto& rs : rank_stats) {
      stats->merge(rs);
    }
  }
}

CsrMatrix DistCsr::to_global() const {
  CooBuilder builder(row_layout_.global_size(), col_layout_.global_size());
  for (rank_t p = 0; p < nranks(); ++p) {
    const RankBlock& blk = blocks_[static_cast<std::size_t>(p)];
    const index_t row0 = row_layout_.begin(p);
    const index_t nloc = row_layout_.local_size(p);
    for (index_t li = 0; li < nloc; ++li) {
      const auto cols = blk.matrix.row_cols(li);
      const auto vals = blk.matrix.row_vals(li);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t lj = cols[k];
        const index_t gj = lj < nloc
                               ? row0 + lj
                               : blk.ghost_gids[static_cast<std::size_t>(lj - nloc)];
        builder.add(row0 + li, gj, vals[k]);
      }
    }
  }
  return builder.to_csr();
}

MatrixFingerprint fingerprint_rank_local(const DistCsr& a) {
  const Layout& layout = a.row_layout();
  MatrixFingerprint fp;
  fp.rows = layout.global_size();
  fp.cols = layout.global_size();
  fp.nnz = a.nnz();

  // fingerprint_of() hashes the global CSR's row_ptr bytes, then col_idx
  // bytes, then value bytes; reproduce those exact streams from the rank
  // blocks. Row pointers are the running global nnz prefix; columns and
  // values come out per row by merging the block row's local run (ascending
  // gid = row0 + c) with its ghost run (ascending ghost_gids) — sorting by
  // local index put every owned column before every ghost, so each run is
  // already sorted and a two-pointer merge restores global column order.
  Fnv1a64Stream h;
  offset_t acc = 0;
  h.update(&acc, sizeof(acc));
  for (rank_t p = 0; p < a.nranks(); ++p) {
    const auto rp = a.block(p).matrix.row_ptr();
    for (std::size_t li = 0; li + 1 < rp.size(); ++li) {
      acc += rp[li + 1] - rp[li];
      h.update(&acc, sizeof(acc));
    }
  }

  const auto scan = [&](auto&& emit) {
    constexpr index_t kDone = std::numeric_limits<index_t>::max();
    for (rank_t p = 0; p < a.nranks(); ++p) {
      const RankBlock& blk = a.block(p);
      const index_t row0 = layout.begin(p);
      const index_t nloc = blk.matrix.rows();
      for (index_t li = 0; li < nloc; ++li) {
        const auto cols = blk.matrix.row_cols(li);
        const auto vals = blk.matrix.row_vals(li);
        std::size_t split = 0;
        while (split < cols.size() && cols[split] < nloc) ++split;
        std::size_t il = 0;
        std::size_t ig = split;
        while (il < split || ig < cols.size()) {
          const index_t gl = il < split ? row0 + cols[il] : kDone;
          const index_t gg =
              ig < cols.size()
                  ? blk.ghost_gids[static_cast<std::size_t>(cols[ig]) -
                                   static_cast<std::size_t>(nloc)]
                  : kDone;
          if (gl < gg) {
            emit(gl, vals[il]);
            ++il;
          } else {
            emit(gg, vals[ig]);
            ++ig;
          }
        }
      }
    }
  };
  scan([&](index_t gid, value_t) { h.update(&gid, sizeof(gid)); });
  scan([&](index_t, value_t v) { h.update(&v, sizeof(v)); });
  fp.content_hash = h.digest();
  return fp;
}

value_t dist_dot(const DistVector& x, const DistVector& y, CommStats* stats,
                 TraceRecorder* trace, Executor* exec) {
  FSAIC_REQUIRE(x.layout() == y.layout(), "dot layout mismatch");
  Executor& ex = resolve_executor(exec);
  const double t0 = trace != nullptr ? trace->now_us() : 0.0;
  const rank_t n = x.nranks();
  std::vector<value_t> partials(static_cast<std::size_t>(n));
  ex.parallel_ranks(n, [&](rank_t p) {
    partials[static_cast<std::size_t>(p)] = dot(x.block(p), y.block(p));
  });
  value_t sum = 0.0;
  ex.allreduce_sum(partials, 1, std::span<value_t>(&sum, 1));
  if (stats != nullptr) stats->record_allreduce(sizeof(value_t));
  if (trace != nullptr) {
    trace->complete("allreduce", "comm", t0, trace->now_us() - t0);
  }
  return sum;
}

value_t dist_norm2(const DistVector& x, CommStats* stats, TraceRecorder* trace,
                   Executor* exec) {
  return std::sqrt(dist_dot(x, x, stats, trace, exec));
}

void dist_axpy(value_t alpha, const DistVector& x, DistVector& y,
               Executor* exec) {
  FSAIC_REQUIRE(x.layout() == y.layout(), "axpy layout mismatch");
  resolve_executor(exec).parallel_ranks(x.nranks(), [&](rank_t p) {
    axpy(alpha, x.block(p), y.block(p));
  });
}

void dist_xpby(const DistVector& x, value_t beta, DistVector& y,
               Executor* exec) {
  FSAIC_REQUIRE(x.layout() == y.layout(), "xpby layout mismatch");
  resolve_executor(exec).parallel_ranks(x.nranks(), [&](rank_t p) {
    xpby(x.block(p), beta, y.block(p));
  });
}

void dist_fused_cg_sweep(const DistVector& u, const DistVector& w, value_t beta,
                         value_t malpha, DistVector& p, DistVector& s,
                         DistVector& r, Executor* exec) {
  FSAIC_REQUIRE(u.layout() == p.layout() && w.layout() == s.layout() &&
                    r.layout() == p.layout() && s.layout() == p.layout(),
                "fused_cg_sweep layout mismatch");
  resolve_executor(exec).parallel_ranks(u.nranks(), [&](rank_t rank) {
    fused_cg_sweep(u.block(rank), w.block(rank), beta, malpha, p.block(rank),
                   s.block(rank), r.block(rank));
  });
}

void dist_fused_axpy_pair(value_t alpha, const DistVector& d, value_t malpha,
                          const DistVector& q, DistVector& x, DistVector& r,
                          Executor* exec) {
  FSAIC_REQUIRE(d.layout() == x.layout() && q.layout() == r.layout() &&
                    x.layout() == r.layout(),
                "fused_axpy_pair layout mismatch");
  resolve_executor(exec).parallel_ranks(d.nranks(), [&](rank_t p) {
    fused_axpy_pair(alpha, d.block(p), malpha, q.block(p), x.block(p),
                    r.block(p));
  });
}

void dist_copy(const DistVector& x, DistVector& y, Executor* exec) {
  FSAIC_REQUIRE(x.layout() == y.layout(), "copy layout mismatch");
  resolve_executor(exec).parallel_ranks(x.nranks(), [&](rank_t p) {
    const auto src = x.block(p);
    auto dst = y.block(p);
    std::copy(src.begin(), src.end(), dst.begin());
  });
}

}  // namespace fsaic
