#include "dist/node_topology.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace fsaic {

NodeTopology NodeTopology::trivial(rank_t nranks) {
  return grouped(nranks, 1);
}

NodeTopology NodeTopology::grouped(rank_t nranks, int ranks_per_node) {
  FSAIC_REQUIRE(nranks >= 0, "rank count must be non-negative");
  FSAIC_REQUIRE(ranks_per_node >= 1, "ranks_per_node must be positive");
  NodeTopology t;
  t.nranks_ = nranks;
  t.ranks_per_node_ = ranks_per_node;
  return t;
}

rank_t NodeTopology::nnodes() const {
  if (nranks_ == 0) return 0;
  return (nranks_ + static_cast<rank_t>(ranks_per_node_) - 1) /
         static_cast<rank_t>(ranks_per_node_);
}

rank_t NodeTopology::node_end(rank_t node) const {
  return std::min(nranks_,
                  (node + 1) * static_cast<rank_t>(ranks_per_node_));
}

NodeTopology CommConfig::topology(rank_t nranks) const {
  return NodeTopology::grouped(nranks, ranks_per_node);
}

CommConfig CommConfig::from_env() {
  CommConfig cfg;
  if (const char* mode = std::getenv("FSAIC_COMM"); mode != nullptr) {
    const std::string s(mode);
    if (s == "node-aware") cfg.mode = CommMode::NodeAware;
    // Anything else (including "flat") keeps the flat default.
  }
  if (const char* rpn = std::getenv("FSAIC_RANKS_PER_NODE"); rpn != nullptr) {
    char* end = nullptr;
    const long v = std::strtol(rpn, &end, 10);
    if (end != rpn && *end == '\0') {
      cfg.ranks_per_node = static_cast<int>(std::clamp<long>(v, 1, 1 << 20));
    }
  }
  return cfg;
}

std::string to_string(CommMode mode) {
  return mode == CommMode::NodeAware ? "node-aware" : "flat";
}

CommMode comm_mode_from_string(const std::string& name) {
  if (name == "flat") return CommMode::Flat;
  if (name == "node-aware") return CommMode::NodeAware;
  FSAIC_REQUIRE(false, "unknown comm mode: " + name + " (flat | node-aware)");
  return CommMode::Flat;
}

}  // namespace fsaic
