// Distributed dense vector: one contiguous block per simulated rank.
#pragma once

#include <span>
#include <vector>

#include "dist/layout.hpp"

namespace fsaic {

class DistVector {
 public:
  DistVector() = default;

  /// Zero vector over the layout.
  explicit DistVector(Layout layout) : layout_(std::move(layout)) {
    blocks_.resize(static_cast<std::size_t>(layout_.nranks()));
    for (rank_t p = 0; p < layout_.nranks(); ++p) {
      blocks_[static_cast<std::size_t>(p)].assign(
          static_cast<std::size_t>(layout_.local_size(p)), 0.0);
    }
  }

  /// Scatter a global vector.
  DistVector(Layout layout, std::span<const value_t> global)
      : DistVector(std::move(layout)) {
    FSAIC_REQUIRE(global.size() == static_cast<std::size_t>(layout_.global_size()),
                  "global vector size mismatch");
    for (rank_t p = 0; p < layout_.nranks(); ++p) {
      auto& b = blocks_[static_cast<std::size_t>(p)];
      for (index_t i = 0; i < layout_.local_size(p); ++i) {
        b[static_cast<std::size_t>(i)] =
            global[static_cast<std::size_t>(layout_.begin(p) + i)];
      }
    }
  }

  [[nodiscard]] const Layout& layout() const { return layout_; }
  [[nodiscard]] rank_t nranks() const { return layout_.nranks(); }

  [[nodiscard]] std::span<value_t> block(rank_t p) {
    return blocks_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::span<const value_t> block(rank_t p) const {
    return blocks_[static_cast<std::size_t>(p)];
  }

  /// Gather into a single global vector.
  [[nodiscard]] std::vector<value_t> to_global() const {
    std::vector<value_t> out(static_cast<std::size_t>(layout_.global_size()));
    for (rank_t p = 0; p < layout_.nranks(); ++p) {
      const auto b = block(p);
      std::copy(b.begin(), b.end(),
                out.begin() + static_cast<std::ptrdiff_t>(layout_.begin(p)));
    }
    return out;
  }

  void fill(value_t v) {
    for (auto& b : blocks_) {
      std::fill(b.begin(), b.end(), v);
    }
  }

 private:
  Layout layout_;
  std::vector<std::vector<value_t>> blocks_;
};

}  // namespace fsaic
