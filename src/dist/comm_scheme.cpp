#include "dist/comm_scheme.hpp"

namespace fsaic {

CommScheme CommScheme::from_pattern(const SparsityPattern& p, const Layout& layout) {
  FSAIC_REQUIRE(p.rows() == layout.global_size(),
                "pattern rows must match layout");
  FSAIC_REQUIRE(p.cols() == layout.global_size(),
                "pattern cols must match layout (square operators only)");
  CommScheme scheme;
  scheme.layout_ = layout;
  for (rank_t r = 0; r < layout.nranks(); ++r) {
    for (index_t i = layout.begin(r); i < layout.end(r); ++i) {
      for (index_t j : p.row(i)) {
        if (!layout.owns(r, j)) {
          scheme.pairs_.insert(key(r, j));
        }
      }
    }
  }
  return scheme;
}

std::size_t CommScheme::message_count() const {
  std::unordered_set<std::uint64_t> rank_pairs;
  for (std::uint64_t k : pairs_) {
    const auto receiver = static_cast<rank_t>(k >> 32);
    const auto gid = static_cast<index_t>(k & 0xFFFFFFFFu);
    const rank_t sender = layout_.owner(gid);
    rank_pairs.insert((static_cast<std::uint64_t>(static_cast<std::uint32_t>(receiver))
                       << 32) |
                      static_cast<std::uint32_t>(sender));
  }
  return rank_pairs.size();
}

std::size_t CommScheme::message_count(const NodeTopology& topo) const {
  FSAIC_REQUIRE(topo.nranks() == layout_.nranks(),
                "topology must cover the scheme's ranks");
  std::unordered_set<std::uint64_t> intra_pairs;
  std::unordered_set<std::uint64_t> inter_node_pairs;
  for (std::uint64_t k : pairs_) {
    const auto receiver = static_cast<rank_t>(k >> 32);
    const auto gid = static_cast<index_t>(k & 0xFFFFFFFFu);
    const rank_t sender = layout_.owner(gid);
    if (topo.same_node(sender, receiver)) {
      intra_pairs.insert(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(receiver))
           << 32) |
          static_cast<std::uint32_t>(sender));
    } else {
      inter_node_pairs.insert(
          (static_cast<std::uint64_t>(
               static_cast<std::uint32_t>(topo.node_of(receiver)))
           << 32) |
          static_cast<std::uint32_t>(topo.node_of(sender)));
    }
  }
  return intra_pairs.size() + inter_node_pairs.size();
}

bool CommScheme::subset_of(const CommScheme& other) const {
  for (std::uint64_t k : pairs_) {
    if (!other.pairs_.contains(k)) return false;
  }
  return true;
}

}  // namespace fsaic
