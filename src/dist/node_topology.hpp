// Two-level topology of the simulated machine: ranks grouped into "nodes".
//
// The flat runtime treats every rank pair alike; real clusters do not. A
// node groups `ranks_per_node` consecutive ranks that share an intra-node
// fabric (shared memory in this simulation), while traffic between nodes
// crosses the slower inter-node network. Following the node-aware SpMV of
// Bienz/Gropp/Olson, the node-aware halo exchanger aggregates all inter-node
// payloads of one (source node, destination node) pair into a single wire
// message funneled through the source node's leader rank.
//
// Grouping is contiguous — node(p) = p / ranks_per_node — matching how MPI
// ranks are laid out under a block distribution, so on-node neighbors are
// exactly the near-diagonal couplings a banded operator produces.
#pragma once

#include <string>

#include "common/types.hpp"

namespace fsaic {

/// Which level of the two-level fabric a message crosses.
enum class CommLevel { Intra, Inter };

class NodeTopology {
 public:
  NodeTopology() = default;

  /// Every rank its own node (the flat baseline: all traffic is inter-node).
  static NodeTopology trivial(rank_t nranks);

  /// Consecutive groups of `ranks_per_node` ranks; the last node may be
  /// smaller when nranks is not a multiple.
  static NodeTopology grouped(rank_t nranks, int ranks_per_node);

  [[nodiscard]] rank_t nranks() const { return nranks_; }
  [[nodiscard]] int ranks_per_node() const { return ranks_per_node_; }
  [[nodiscard]] rank_t nnodes() const;

  [[nodiscard]] rank_t node_of(rank_t p) const {
    return p / static_cast<rank_t>(ranks_per_node_);
  }
  /// First rank of a node — the designated aggregation leader.
  [[nodiscard]] rank_t leader_of(rank_t node) const {
    return node * static_cast<rank_t>(ranks_per_node_);
  }
  [[nodiscard]] bool is_leader(rank_t p) const {
    return leader_of(node_of(p)) == p;
  }
  [[nodiscard]] bool same_node(rank_t a, rank_t b) const {
    return node_of(a) == node_of(b);
  }
  [[nodiscard]] CommLevel level_of(rank_t a, rank_t b) const {
    return same_node(a, b) ? CommLevel::Intra : CommLevel::Inter;
  }
  [[nodiscard]] rank_t node_begin(rank_t node) const { return leader_of(node); }
  [[nodiscard]] rank_t node_end(rank_t node) const;
  [[nodiscard]] rank_t node_size(rank_t node) const {
    return node_end(node) - node_begin(node);
  }

  bool operator==(const NodeTopology& other) const = default;

 private:
  rank_t nranks_ = 0;
  int ranks_per_node_ = 1;
};

/// How distributed operators realize their communication scheme.
enum class CommMode {
  Flat,       ///< one mailbox message per rank pair (the original exchanger)
  NodeAware,  ///< inter-node messages coalesced per node pair via the leader
};

/// Selected communication scheme of a run: the mode plus the simulated node
/// width. A flat config with ranks_per_node > 1 still exchanges per rank
/// pair but classifies CommStats per level, which is what lets CI compare
/// the two schedules cell by cell.
struct CommConfig {
  CommMode mode = CommMode::Flat;
  int ranks_per_node = 1;

  /// Topology this config induces over `nranks` ranks.
  [[nodiscard]] NodeTopology topology(rank_t nranks) const;

  /// FSAIC_COMM ("flat" | "node-aware") and FSAIC_RANKS_PER_NODE (>= 1).
  /// Unset or unparsable values fall back to the flat single-rank-node
  /// default, so existing runs are untouched.
  static CommConfig from_env();

  bool operator==(const CommConfig& other) const = default;
};

[[nodiscard]] std::string to_string(CommMode mode);

/// "flat" or "node-aware"; anything else throws.
[[nodiscard]] CommMode comm_mode_from_string(const std::string& name);

}  // namespace fsaic
