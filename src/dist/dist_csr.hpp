// Distributed CSR matrix: each simulated rank holds its block of rows with
// columns renumbered to [local | ghost] form, plus the halo maps that drive
// the (instrumented) halo update before every SpMV. This mirrors the
// standard MPI decomposition the paper builds on: "local entries" couple
// local unknowns, "halo entries" couple local with halo unknowns.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "dist/comm_stats.hpp"
#include "dist/dist_vector.hpp"
#include "dist/layout.hpp"
#include "sparse/csr.hpp"
#include "sparse/fingerprint.hpp"
#include "sparse/local_operator.hpp"

namespace fsaic {

class TraceRecorder;
class Executor;
class HaloExchanger;
struct HaloPlan;

/// One rank's rows of a global operator in raw CSR form with GLOBAL column
/// ids (sorted, duplicate-free per row) — the hand-off format of rank-local
/// generators (src/wgen) into DistCsr::from_rank_local. row_ptr has
/// local_rows + 1 entries starting at 0.
struct RankLocalRows {
  std::vector<offset_t> row_ptr;
  std::vector<index_t> col_gids;
  std::vector<value_t> values;
};

/// One rank's share of a distributed matrix.
struct RankBlock {
  /// local_rows x (local_cols + ghosts); column index c < local_cols is the
  /// owned unknown layout.begin(p)+c, column c >= local_cols is ghost
  /// ghost_gids[c - local_cols].
  CsrMatrix matrix;
  /// Global ids of ghost (halo) columns, sorted ascending.
  std::vector<index_t> ghost_gids;

  struct Neighbor {
    rank_t rank = -1;
    /// Global indices exchanged with this neighbor, sorted.
    std::vector<index_t> gids;
  };
  /// Coefficients this rank receives (grouped by owning rank, ascending).
  std::vector<Neighbor> recv;
  /// Owned coefficients this rank sends (grouped by destination, ascending).
  std::vector<Neighbor> send;

  /// Number of matrix entries whose column is local / ghost.
  offset_t local_entries = 0;
  offset_t halo_entries = 0;

  /// Local row indices touching only owned columns (computable before the
  /// halo arrives) and rows with at least one ghost column (must wait for
  /// the exchange). Together they enumerate [0, local_rows) exactly once,
  /// each ascending — the overlap-capable SpMV computes interior rows while
  /// the halo is in flight, then boundary rows after the drain.
  std::vector<index_t> interior_rows;
  std::vector<index_t> boundary_rows;
};

class DistCsr {
 public:
  DistCsr() = default;

  /// Distribute the rows of a square global matrix over `layout`. The x and
  /// y vectors of y = A x are distributed the same way (the paper applies
  /// one partition to the matrix, x and b alike). `comm` selects the halo
  /// exchanger realization (flat mailboxes or node-aware leader
  /// aggregation); the two-argument overload reads FSAIC_COMM /
  /// FSAIC_RANKS_PER_NODE from the environment.
  static DistCsr distribute(const CsrMatrix& global, Layout layout,
                            const CommConfig& comm);
  static DistCsr distribute(const CsrMatrix& global, Layout layout);

  /// Assemble a distributed matrix from per-rank row generators WITHOUT a
  /// global CsrMatrix ever existing: `rank_rows(p)` returns rank p's rows
  /// of the conceptual global operator (global column ids, sorted per
  /// row), and each block is remapped to [local | ghost] form
  /// independently — peak memory is one rank's rows plus its ghosts. Rank
  /// blocks build in parallel on `exec` (nullptr -> the process-wide
  /// default executor); block construction is a pure per-rank function, so
  /// the result is bit-identical to distribute(global, layout, comm) of
  /// the concatenated rows for every executor and thread count.
  /// `rank_rows` must be safe to call concurrently for distinct ranks.
  static DistCsr from_rank_local(
      Layout layout, const std::function<RankLocalRows(rank_t)>& rank_rows,
      const CommConfig& comm, Executor* exec = nullptr);

  [[nodiscard]] const Layout& row_layout() const { return row_layout_; }
  [[nodiscard]] const Layout& col_layout() const { return col_layout_; }
  [[nodiscard]] rank_t nranks() const { return row_layout_.nranks(); }
  [[nodiscard]] const RankBlock& block(rank_t p) const {
    return blocks_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] offset_t nnz() const;
  [[nodiscard]] offset_t max_rank_nnz() const;

  /// Bytes one full halo update moves (sum over rank pairs). Payload bytes
  /// are invariant under the comm scheme — aggregation merges messages, it
  /// never duplicates or drops coefficients.
  [[nodiscard]] std::int64_t halo_update_bytes() const;
  /// Wire messages one full halo update posts under the active comm scheme
  /// (point-to-point edges when flat; intra edges + one coalesced message
  /// per inter-node channel when node-aware).
  [[nodiscard]] std::int64_t halo_update_messages() const;
  /// Per-level wire message counts of one full halo update.
  [[nodiscard]] std::int64_t halo_update_intra_messages() const;
  [[nodiscard]] std::int64_t halo_update_inter_messages() const;

  /// Swap the halo exchanger realization (rebuilds it from this matrix's
  /// comm scheme). The numerical results of spmv are bit-identical across
  /// configs; only message coalescing and accounting change.
  void use_comm(const CommConfig& comm);
  [[nodiscard]] const CommConfig& comm_config() const { return comm_; }

  /// Swap the rank-local kernel backend (sparse/local_operator.hpp).
  /// distribute() starts from KernelConfig::from_env() — FSAIC_FORMAT
  /// selects csr|sell|auto process-wide — always at Double precision;
  /// Single precision (float factor storage, double accumulation) is opt-in
  /// here and meant for preconditioner factors only. A config with
  /// `autotune` set is resolved per matrix before building: the least-padded
  /// SELL chunk in {4, 8, 16, 32} wins, or Csr when every candidate pads
  /// beyond 1.25x, and kernel_config() reports the resolved choice.
  /// Double-precision formats are bit-identical: the SELL lanes accumulate
  /// each row in the CSR reference order.
  void use_kernel(const KernelConfig& kernel);
  [[nodiscard]] const KernelConfig& kernel_config() const { return kernel_; }
  /// Rank p's kernel realization (parallel to block(p)).
  [[nodiscard]] const LocalOperator& local_op(rank_t p) const {
    return ops_[static_cast<std::size_t>(p)];
  }

  /// Stored value slots including SELL padding, summed over ranks (== nnz
  /// under the CSR format).
  [[nodiscard]] offset_t padded_entries() const;
  /// Padding overhead of the active format: padded_entries() / nnz()
  /// (1.0 under CSR).
  [[nodiscard]] double padding_ratio() const;

  /// y = A x as SPMD supersteps on `exec` (nullptr -> the process-wide
  /// default executor). Under a flat exchanger: two supersteps — every rank
  /// deposits its owned coefficients into the neighbors' halo mailboxes,
  /// then every rank drains its mailboxes and runs the rank-local SpMV
  /// (trace slices "halo_exchange" / "spmv_local"). Under an
  /// overlap-capable exchanger: ONE phased superstep — posts, then per rank
  /// interior rows compute while the exchange is in flight, the drain, and
  /// the boundary rows (trace slices "spmv_interior" / "halo_exchange" /
  /// "spmv_boundary"). Both paths and both executors produce bit-identical
  /// y: rows are summed in identical order either way. Halo traffic is
  /// recorded into `stats` if non-null.
  void spmv(const DistVector& x, DistVector& y, CommStats* stats = nullptr,
            TraceRecorder* trace = nullptr, Executor* exec = nullptr) const;

  /// The mailbox halo exchanger realizing this matrix's comm scheme (shared
  /// between copies of the same distributed matrix).
  [[nodiscard]] const HaloExchanger& halo() const { return *halo_; }

  /// Accumulated per-rank mailbox wait of all spmv calls so far, in
  /// microseconds (nonzero only under the threaded executor).
  [[nodiscard]] std::vector<double> halo_wait_us() const;

  /// Reassemble the global matrix (testing / diagnostics).
  [[nodiscard]] CsrMatrix to_global() const;

 private:
  [[nodiscard]] std::vector<HaloPlan> build_halo_plans() const;
  /// Shared epilogue of distribute()/from_rank_local(): mirror the send
  /// maps from the recv maps, realize the halo exchanger under `comm`, and
  /// install the environment-selected kernel backend.
  void finish_build(const CommConfig& comm);

  Layout row_layout_;
  Layout col_layout_;
  std::vector<RankBlock> blocks_;
  CommConfig comm_;
  KernelConfig kernel_;
  /// Per-rank kernel realizations, parallel to blocks_. Copies of a DistCsr
  /// share the immutable SELL storage through the operators' shared_ptrs.
  std::vector<LocalOperator> ops_;
  /// Mailboxes are synchronization state, not matrix data: copies of a
  /// DistCsr share one exchanger (operations on the same matrix are
  /// serialized by the superstep structure).
  std::shared_ptr<HaloExchanger> halo_;
};

/// Non-square distribution used by rectangular operators is not needed in
/// this reproduction; DistCsr is square-only by construction.

/// Fingerprint of the GLOBAL operator a DistCsr represents, computed by
/// streaming the per-rank blocks — byte-for-byte equal to
/// fingerprint_of(a.to_global()) without materializing it. This is what
/// lets generated million-row operators key the FactorCache and the factor
/// store exactly like file-loaded ones.
[[nodiscard]] MatrixFingerprint fingerprint_rank_local(const DistCsr& a);

// ---- distributed vector kernels (instrumented collectives) --------------
//
// All kernels run their per-rank loops as one superstep on `exec` (nullptr
// -> the process-wide default executor). Reductions combine the per-rank
// partials with the executor's fixed-order tree, so results are
// bit-identical across executors and thread counts.

/// Global dot product: rank-local dots + one tree allreduce of one double.
/// A non-null `trace` receives one "allreduce" slice.
[[nodiscard]] value_t dist_dot(const DistVector& x, const DistVector& y,
                               CommStats* stats = nullptr,
                               TraceRecorder* trace = nullptr,
                               Executor* exec = nullptr);

/// Global Euclidean norm (counts as one allreduce, like dist_dot).
[[nodiscard]] value_t dist_norm2(const DistVector& x, CommStats* stats = nullptr,
                                 TraceRecorder* trace = nullptr,
                                 Executor* exec = nullptr);

/// y += alpha x, blockwise (no communication).
void dist_axpy(value_t alpha, const DistVector& x, DistVector& y,
               Executor* exec = nullptr);

/// y = x + beta y, blockwise (no communication).
void dist_xpby(const DistVector& x, value_t beta, DistVector& y,
               Executor* exec = nullptr);

/// Fused pipelined-CG recurrence sweep, blockwise in ONE superstep:
/// p = u + beta p; s = w + beta s; r += malpha s. Bit-identical to the
/// dist_xpby/dist_xpby/dist_axpy triple it replaces (see
/// sparse/vector_ops.hpp), two supersteps and two memory passes cheaper.
void dist_fused_cg_sweep(const DistVector& u, const DistVector& w, value_t beta,
                         value_t malpha, DistVector& p, DistVector& s,
                         DistVector& r, Executor* exec = nullptr);

/// Fused AXPY pair in one superstep: x += alpha d; r += malpha q.
void dist_fused_axpy_pair(value_t alpha, const DistVector& d, value_t malpha,
                          const DistVector& q, DistVector& x, DistVector& r,
                          Executor* exec = nullptr);

/// y = x (blockwise copy).
void dist_copy(const DistVector& x, DistVector& y, Executor* exec = nullptr);

}  // namespace fsaic
