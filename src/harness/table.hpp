// Minimal fixed-width ASCII table printer for the bench binaries, so every
// table/figure harness emits aligned, diffable output plus a CSV block for
// downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fsaic {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Aligned ASCII rendering with a header rule.
  void print(std::ostream& os) const;

  /// Comma-separated rendering (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fsaic
