// Shared experiment harness: prepares suite matrices (generate → partition →
// distribute → right-hand side), runs (method, filter) configurations to
// convergence, attaches modeled time from the machine cost model, memoizes
// everything in-process, and aggregates the paper's summary statistics.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fsai_driver.hpp"
#include "matgen/suite.hpp"
#include "obs/json.hpp"
#include "perf/cost_model.hpp"
#include "solver/pcg.hpp"

namespace fsaic {

class MetricsRegistry;
class RunReportWriter;

struct ExperimentConfig {
  Machine machine = machine_skylake();
  /// Hybrid configuration: cores (OpenMP threads) per simulated MPI rank.
  int threads_per_rank = 8;
  /// Rank-count rule, scaled version of the paper's 256K-nnz-per-thread
  /// start: nranks ≈ nnz / nnz_per_rank, clamped to [min_ranks, max_ranks].
  offset_t nnz_per_rank = 12000;
  rank_t min_ranks = 2;
  rank_t max_ranks = 16;
  SolveOptions solve{.rel_tol = 1e-8, .max_iterations = 20000};
  std::uint64_t seed = 777;
};

/// One preconditioner configuration to evaluate.
struct MethodConfig {
  ExtensionMode extension = ExtensionMode::None;
  FilterStrategy strategy = FilterStrategy::Dynamic;
  value_t filter = 0.0;

  [[nodiscard]] std::string label() const;
};

/// Everything measured for one (matrix, method) run.
struct RunRecord {
  std::string matrix;
  std::string method;
  rank_t nranks = 0;
  index_t rows = 0;
  offset_t matrix_nnz = 0;

  bool converged = false;
  int iterations = 0;
  double modeled_time = 0.0;     ///< iterations * modeled PCG iteration cost
  double iter_cost = 0.0;
  double precond_cost = 0.0;     ///< modeled cost of G^T G x per iteration
  double nnz_increase_pct = 0.0; ///< the paper's "% NNZ"
  double imbalance_g = 1.0;
  double imbalance_gt = 1.0;
  double precond_gflops = 0.0;   ///< GFLOP/s per process in G^T G x
  double x_misses_per_gnnz = 0.0;///< L1 DCM on x per nnz(G) (Fig. 3a metric)
  std::int64_t halo_bytes_g = 0; ///< bytes of one G halo update
  std::int64_t halo_msgs_g = 0;
  offset_t g_nnz = 0;

  /// Solve-phase fabric traffic totals (copied from SolveResult::comm).
  std::int64_t solve_halo_bytes = 0;
  std::int64_t solve_halo_messages = 0;
  std::int64_t solve_allreduce_count = 0;
  std::int64_t solve_allreduce_bytes = 0;
  std::int64_t solve_neighbor_pairs = 0;

  /// Measured wall time of the preconditioner build / the solve, seconds
  /// (host time of the simulation, distinct from modeled_time).
  double setup_seconds = 0.0;
  double solve_seconds = 0.0;

  /// Setup accounting: row systems actually solved (provisional + final),
  /// final rows copied verbatim from the provisional factor, and matrix
  /// entries scattered by the gather assembly.
  std::int64_t setup_rows_solved = 0;
  std::int64_t setup_rows_reused = 0;
  std::int64_t setup_gram_entries = 0;
  std::int64_t provisional_fallback_rows = 0;
  std::int64_t provisional_degenerate_rows = 0;
  std::int64_t factor_fallback_rows = 0;
  std::int64_t factor_degenerate_rows = 0;
};

/// A prepared (partitioned + distributed) linear system.
struct PreparedSystem {
  std::string name;
  CsrMatrix matrix;      ///< permuted global matrix
  Layout layout;
  DistCsr a_dist;
  DistVector b;
  rank_t nranks = 0;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config);

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }

  /// Prepare (or fetch from cache) the distributed system of a suite entry.
  const PreparedSystem& prepare(const SuiteEntry& entry);

  /// Run (or fetch from cache) one method on one matrix.
  const RunRecord& run(const SuiteEntry& entry, const MethodConfig& method);

  /// Convenience: the FSAI baseline record for a matrix.
  const RunRecord& baseline(const SuiteEntry& entry) {
    return run(entry, MethodConfig{ExtensionMode::None, FilterStrategy::Static, 0.0});
  }

  /// Attach a JSONL report writer (borrowed): every *newly computed* run
  /// appends one record; memoized re-reads do not write again.
  void set_report_writer(RunReportWriter* writer) { report_ = writer; }

  /// Attach a metrics registry (borrowed): runs accumulate solve comm
  /// counters and publish cache/GFLOP gauges into it.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  ExperimentConfig config_;
  std::map<std::string, std::unique_ptr<PreparedSystem>> systems_;
  std::map<std::string, std::unique_ptr<RunRecord>> runs_;
  RunReportWriter* report_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

/// Serialize a RunRecord to a flat JSON object (one JSONL report line) and
/// back. to_json/from_json round-trip every field bit-exactly for integers.
[[nodiscard]] JsonValue run_record_to_json(const RunRecord& rec);
[[nodiscard]] RunRecord run_record_from_json(const JsonValue& json);

/// Percentage improvements of `run` over `base` (positive = better).
struct Improvement {
  double iterations_pct = 0.0;
  double time_pct = 0.0;
};

[[nodiscard]] Improvement improvement_over(const RunRecord& base,
                                           const RunRecord& run);

/// Paper-style summary over a set of per-matrix improvements: average
/// iteration / time decrease, highest improvement and worst degradation.
struct SummaryRow {
  double avg_iterations_pct = 0.0;
  double avg_time_pct = 0.0;
  double highest_improvement_pct = 0.0;
  double highest_degradation_pct = 0.0;  ///< most negative time improvement
};

[[nodiscard]] SummaryRow summarize(const std::vector<Improvement>& improvements);

/// Element-wise best-filter envelope: for each matrix pick the filter value
/// whose run has the smallest modeled time, then compare with the baseline.
[[nodiscard]] std::vector<Improvement> best_filter_improvements(
    ExperimentRunner& runner, const std::vector<SuiteEntry>& suite,
    ExtensionMode extension, FilterStrategy strategy,
    const std::vector<value_t>& filters);

/// Fixed-filter improvements for every matrix of the suite.
[[nodiscard]] std::vector<Improvement> fixed_filter_improvements(
    ExperimentRunner& runner, const std::vector<SuiteEntry>& suite,
    ExtensionMode extension, FilterStrategy strategy, value_t filter);

}  // namespace fsaic
