#include "harness/table.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"

namespace fsaic {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FSAIC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  FSAIC_REQUIRE(row.size() == header_.size(),
                "row width must match the header");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TextTable::print_csv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace fsaic
