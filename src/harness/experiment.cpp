#include "harness/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "exec/executor.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {

std::string MethodConfig::label() const {
  std::string s = to_string(extension);
  if (extension != ExtensionMode::None && filter > 0.0) {
    s += strformat("/%s-%.3g", to_string(strategy), static_cast<double>(filter));
  }
  return s;
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)) {}

const PreparedSystem& ExperimentRunner::prepare(const SuiteEntry& entry) {
  const auto it = systems_.find(entry.name);
  if (it != systems_.end()) return *it->second;

  auto sys = std::make_unique<PreparedSystem>();
  sys->name = entry.name;
  const CsrMatrix a = entry.generate();
  FSAIC_CHECK(a.is_symmetric(1e-12 * a.max_abs()),
              "suite generator produced a non-symmetric matrix: " + entry.name);

  const auto nranks = static_cast<rank_t>(std::clamp<offset_t>(
      a.nnz() / config_.nnz_per_rank, config_.min_ranks, config_.max_ranks));
  sys->nranks = nranks;

  PartitionedSystem part = partition_system(a, nranks, config_.seed);
  sys->matrix = std::move(part.matrix);
  sys->layout = std::move(part.layout);
  sys->a_dist = DistCsr::distribute(sys->matrix, sys->layout);

  // Random right-hand side normalized to the matrix max norm, zero initial
  // guess (Section 5.1). The RHS is seeded per matrix for reproducibility
  // and generated in the *original* ordering, then permuted, so it does not
  // depend on the rank count. FNV-1a rather than std::hash keeps the stream
  // identical across standard libraries.
  std::uint64_t name_hash = 0xcbf29ce484222325ull;
  for (const char c : entry.name) {
    name_hash = (name_hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  }
  Rng rng(config_.seed ^ name_hash);
  std::vector<value_t> b_orig(static_cast<std::size_t>(a.rows()));
  for (auto& v : b_orig) {
    v = rng.next_uniform(-1.0, 1.0);
  }
  const value_t bmax = norm_inf(b_orig);
  if (bmax > 0.0) scale(a.max_abs() / bmax, b_orig);
  std::vector<value_t> b_perm(b_orig.size());
  for (std::size_t i = 0; i < b_orig.size(); ++i) {
    b_perm[static_cast<std::size_t>(part.perm[i])] = b_orig[i];
  }
  sys->b = DistVector(sys->layout, b_perm);

  return *systems_.emplace(entry.name, std::move(sys)).first->second;
}

const RunRecord& ExperimentRunner::run(const SuiteEntry& entry,
                                       const MethodConfig& method) {
  const std::string key = entry.name + "|" + method.label();
  const auto it = runs_.find(key);
  if (it != runs_.end()) return *it->second;

  const PreparedSystem& sys = prepare(entry);

  FsaiOptions fopts;
  fopts.extension = method.extension;
  fopts.cache_line_bytes = config_.machine.l1.line_bytes;
  fopts.filter = method.filter;
  fopts.filter_strategy = method.strategy;
  // The setup row loops run on the same executor as the solve.
  fopts.exec = config_.solve.exec;
  using clock = std::chrono::steady_clock;
  const auto t_setup = clock::now();
  FsaiBuildResult build = build_fsai_preconditioner(sys.matrix, sys.layout, fopts);

  const auto precond = make_factorized_preconditioner(build, method.label());
  DistVector x(sys.layout);
  const auto t_solve = clock::now();
  const SolveResult solve = pcg_solve(sys.a_dist, sys.b, x, *precond, config_.solve);
  const auto t_done = clock::now();

  const CostModel cost_model(
      config_.machine, CostModelOptions{.threads_per_rank = config_.threads_per_rank});
  const PcgIterationCost iter_cost =
      cost_model.pcg_iteration_cost(sys.a_dist, build.g_dist, build.gt_dist);

  auto rec = std::make_unique<RunRecord>();
  rec->matrix = entry.name;
  rec->method = method.label();
  rec->nranks = sys.nranks;
  rec->rows = sys.matrix.rows();
  rec->matrix_nnz = sys.matrix.nnz();
  rec->converged = solve.converged;
  rec->iterations = solve.iterations;
  rec->iter_cost = iter_cost.total();
  rec->precond_cost = iter_cost.precond_total();
  rec->modeled_time = static_cast<double>(solve.iterations) * rec->iter_cost;
  rec->nnz_increase_pct = build.nnz_increase_pct;
  rec->imbalance_g = build.imbalance_g;
  rec->imbalance_gt = build.imbalance_gt;
  rec->precond_gflops =
      cost_model.precond_gflops_per_process(build.g_dist, build.gt_dist);
  const std::int64_t misses = cost_model.spmv_x_misses(build.g_dist) +
                              cost_model.spmv_x_misses(build.gt_dist);
  rec->x_misses_per_gnnz = build.g.nnz() > 0
                               ? static_cast<double>(misses) /
                                     static_cast<double>(2 * build.g.nnz())
                               : 0.0;
  rec->halo_bytes_g = build.g_dist.halo_update_bytes();
  rec->halo_msgs_g = build.g_dist.halo_update_messages();
  rec->g_nnz = build.g.nnz();

  rec->solve_halo_bytes = solve.comm.halo_bytes;
  rec->solve_halo_messages = solve.comm.halo_messages;
  rec->solve_allreduce_count = solve.comm.allreduce_count;
  rec->solve_allreduce_bytes = solve.comm.allreduce_bytes;
  rec->solve_neighbor_pairs =
      static_cast<std::int64_t>(solve.comm.neighbor_pair_count());
  rec->setup_seconds =
      std::chrono::duration<double>(t_solve - t_setup).count();
  rec->solve_seconds = std::chrono::duration<double>(t_done - t_solve).count();

  const FsaiFactorStats& prov = build.provisional_factor_stats;
  const FsaiFactorStats& fin = build.factor_stats;
  rec->setup_rows_solved = prov.rows_solved + fin.rows_solved;
  rec->setup_rows_reused = fin.rows_reused;
  rec->setup_gram_entries = prov.gram_entries_gathered + fin.gram_entries_gathered;
  rec->provisional_fallback_rows = prov.fallback_rows;
  rec->provisional_degenerate_rows = prov.degenerate_rows;
  rec->factor_fallback_rows = fin.fallback_rows;
  rec->factor_degenerate_rows = fin.degenerate_rows;

  if (metrics_ != nullptr) {
    metrics_->add("runs", 1);
    metrics_->set("exec.threads",
                  resolve_executor(config_.solve.exec).nthreads());
    record_comm_stats(*metrics_, "solve", solve.comm);
    record_comm_stats(*metrics_, "setup", build.setup_comm);
    metrics_->add("setup.rows_solved", rec->setup_rows_solved);
    metrics_->add("setup.rows_reused", rec->setup_rows_reused);
    metrics_->add("setup.gram_entries_gathered", rec->setup_gram_entries);
    metrics_->set("run.precond_gflops", rec->precond_gflops);
    metrics_->set("run.x_misses_per_gnnz", rec->x_misses_per_gnnz);
    metrics_->set("run.imbalance_g", rec->imbalance_g);
    metrics_->set("run.imbalance_gt", rec->imbalance_gt);
  }
  if (report_ != nullptr) report_->write(run_record_to_json(*rec));

  return *runs_.emplace(key, std::move(rec)).first->second;
}

JsonValue run_record_to_json(const RunRecord& rec) {
  JsonValue out = JsonValue::object();
  out["kind"] = "run";
  out["matrix"] = rec.matrix;
  out["method"] = rec.method;
  out["nranks"] = rec.nranks;
  out["rows"] = rec.rows;
  out["matrix_nnz"] = rec.matrix_nnz;
  out["converged"] = rec.converged;
  out["iterations"] = rec.iterations;
  out["modeled_time"] = rec.modeled_time;
  out["iter_cost"] = rec.iter_cost;
  out["precond_cost"] = rec.precond_cost;
  out["nnz_increase_pct"] = rec.nnz_increase_pct;
  out["imbalance_g"] = rec.imbalance_g;
  out["imbalance_gt"] = rec.imbalance_gt;
  out["precond_gflops"] = rec.precond_gflops;
  out["x_misses_per_gnnz"] = rec.x_misses_per_gnnz;
  out["halo_bytes_g"] = rec.halo_bytes_g;
  out["halo_msgs_g"] = rec.halo_msgs_g;
  out["g_nnz"] = rec.g_nnz;
  out["solve_halo_bytes"] = rec.solve_halo_bytes;
  out["solve_halo_messages"] = rec.solve_halo_messages;
  out["solve_allreduce_count"] = rec.solve_allreduce_count;
  out["solve_allreduce_bytes"] = rec.solve_allreduce_bytes;
  out["solve_neighbor_pairs"] = rec.solve_neighbor_pairs;
  out["setup_seconds"] = rec.setup_seconds;
  out["solve_seconds"] = rec.solve_seconds;
  out["setup_rows_solved"] = rec.setup_rows_solved;
  out["setup_rows_reused"] = rec.setup_rows_reused;
  out["setup_gram_entries"] = rec.setup_gram_entries;
  out["provisional_fallback_rows"] = rec.provisional_fallback_rows;
  out["provisional_degenerate_rows"] = rec.provisional_degenerate_rows;
  out["factor_fallback_rows"] = rec.factor_fallback_rows;
  out["factor_degenerate_rows"] = rec.factor_degenerate_rows;
  return out;
}

RunRecord run_record_from_json(const JsonValue& json) {
  RunRecord rec;
  rec.matrix = json.at("matrix").as_string();
  rec.method = json.at("method").as_string();
  rec.nranks = static_cast<rank_t>(json.at("nranks").as_int());
  rec.rows = static_cast<index_t>(json.at("rows").as_int());
  rec.matrix_nnz = static_cast<offset_t>(json.at("matrix_nnz").as_int());
  rec.converged = json.at("converged").as_bool();
  rec.iterations = static_cast<int>(json.at("iterations").as_int());
  rec.modeled_time = json.at("modeled_time").as_double();
  rec.iter_cost = json.at("iter_cost").as_double();
  rec.precond_cost = json.at("precond_cost").as_double();
  rec.nnz_increase_pct = json.at("nnz_increase_pct").as_double();
  rec.imbalance_g = json.at("imbalance_g").as_double();
  rec.imbalance_gt = json.at("imbalance_gt").as_double();
  rec.precond_gflops = json.at("precond_gflops").as_double();
  rec.x_misses_per_gnnz = json.at("x_misses_per_gnnz").as_double();
  rec.halo_bytes_g = json.at("halo_bytes_g").as_int();
  rec.halo_msgs_g = json.at("halo_msgs_g").as_int();
  rec.g_nnz = static_cast<offset_t>(json.at("g_nnz").as_int());
  rec.solve_halo_bytes = json.at("solve_halo_bytes").as_int();
  rec.solve_halo_messages = json.at("solve_halo_messages").as_int();
  rec.solve_allreduce_count = json.at("solve_allreduce_count").as_int();
  rec.solve_allreduce_bytes = json.at("solve_allreduce_bytes").as_int();
  rec.solve_neighbor_pairs = json.at("solve_neighbor_pairs").as_int();
  rec.setup_seconds = json.at("setup_seconds").as_double();
  rec.solve_seconds = json.at("solve_seconds").as_double();
  rec.setup_rows_solved = json.at("setup_rows_solved").as_int();
  rec.setup_rows_reused = json.at("setup_rows_reused").as_int();
  rec.setup_gram_entries = json.at("setup_gram_entries").as_int();
  rec.provisional_fallback_rows = json.at("provisional_fallback_rows").as_int();
  rec.provisional_degenerate_rows = json.at("provisional_degenerate_rows").as_int();
  rec.factor_fallback_rows = json.at("factor_fallback_rows").as_int();
  rec.factor_degenerate_rows = json.at("factor_degenerate_rows").as_int();
  return rec;
}

Improvement improvement_over(const RunRecord& base, const RunRecord& run) {
  Improvement imp;
  if (base.iterations > 0) {
    imp.iterations_pct = 100.0 *
                         (static_cast<double>(base.iterations) -
                          static_cast<double>(run.iterations)) /
                         static_cast<double>(base.iterations);
  }
  if (base.modeled_time > 0.0) {
    imp.time_pct =
        100.0 * (base.modeled_time - run.modeled_time) / base.modeled_time;
  }
  return imp;
}

SummaryRow summarize(const std::vector<Improvement>& improvements) {
  SummaryRow row;
  if (improvements.empty()) return row;
  row.highest_improvement_pct = improvements.front().time_pct;
  row.highest_degradation_pct = improvements.front().time_pct;
  for (const auto& imp : improvements) {
    row.avg_iterations_pct += imp.iterations_pct;
    row.avg_time_pct += imp.time_pct;
    row.highest_improvement_pct =
        std::max(row.highest_improvement_pct, imp.time_pct);
    row.highest_degradation_pct =
        std::min(row.highest_degradation_pct, imp.time_pct);
  }
  const auto n = static_cast<double>(improvements.size());
  row.avg_iterations_pct /= n;
  row.avg_time_pct /= n;
  return row;
}

std::vector<Improvement> best_filter_improvements(
    ExperimentRunner& runner, const std::vector<SuiteEntry>& suite,
    ExtensionMode extension, FilterStrategy strategy,
    const std::vector<value_t>& filters) {
  std::vector<Improvement> out;
  out.reserve(suite.size());
  for (const auto& entry : suite) {
    const RunRecord& base = runner.baseline(entry);
    const RunRecord* best = nullptr;
    for (value_t f : filters) {
      const RunRecord& rec = runner.run(entry, {extension, strategy, f});
      if (best == nullptr || rec.modeled_time < best->modeled_time) {
        best = &rec;
      }
    }
    out.push_back(improvement_over(base, *best));
  }
  return out;
}

std::vector<Improvement> fixed_filter_improvements(
    ExperimentRunner& runner, const std::vector<SuiteEntry>& suite,
    ExtensionMode extension, FilterStrategy strategy, value_t filter) {
  std::vector<Improvement> out;
  out.reserve(suite.size());
  for (const auto& entry : suite) {
    const RunRecord& base = runner.baseline(entry);
    const RunRecord& rec = runner.run(entry, {extension, strategy, filter});
    out.push_back(improvement_over(base, rec));
  }
  return out;
}

}  // namespace fsaic
