// Algorithm 3 of the paper: cache-friendly sparse-pattern extension with the
// communication-aware halo admission rule.
//
// For every entry (i, j) of the lower-triangular pattern S, the SpMV already
// fetches the cache line of x_j; every other column k whose x coefficient
// shares that line can be added to row i "for free" from the memory-traffic
// point of view. Locally owned k are always admissible. A halo k (owned by
// another rank) is admissible only under the communication-aware rule:
//
//   * owner(i) must already receive x_k under the scheme of  G x   (S), and
//   * owner(k) must already receive x_i under the scheme of  G^T x (S^T),
//
// so that neither product's halo exchange grows by a single coefficient.
// The FullHalo mode deliberately drops that rule — it is the naive strawman
// the benches use to show why communication awareness matters.
#pragma once

#include "dist/layout.hpp"
#include "sparse/pattern.hpp"

namespace fsaic {

enum class ExtensionMode {
  None,       ///< plain FSAI: no extension
  LocalOnly,  ///< FSAIE: extend only with locally owned columns
  CommAware,  ///< FSAIE-Comm: local + communication-neutral halo columns
  FullHalo,   ///< naive strawman: local + every cache-line halo column
};

[[nodiscard]] const char* to_string(ExtensionMode mode);

struct ExtensionResult {
  SparsityPattern extended;
  /// Entries added on locally owned columns.
  offset_t local_added = 0;
  /// Entries added on halo columns.
  offset_t halo_added = 0;

  [[nodiscard]] offset_t total_added() const { return local_added + halo_added; }
};

/// Extend lower-triangular pattern `s` (the pattern of G) under `layout`.
/// `cache_line_bytes` must be a multiple of sizeof(value_t); the x vector is
/// assumed line-aligned, so the line of x_j covers columns
/// [j - j % L, j - j % L + L) with L = cache_line_bytes / sizeof(value_t).
[[nodiscard]] ExtensionResult extend_pattern(const SparsityPattern& s,
                                             const Layout& layout,
                                             int cache_line_bytes,
                                             ExtensionMode mode);

}  // namespace fsaic
