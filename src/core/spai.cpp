#include "core/spai.hpp"

#include <algorithm>

#include "dense/dense_matrix.hpp"
#include "dense/factorizations.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace fsaic {

CsrMatrix compute_spai(const CsrMatrix& a, const SparsityPattern& s) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "SPAI requires a square matrix");
  FSAIC_REQUIRE(s.rows() == a.rows() && s.cols() == a.cols(),
                "pattern shape mismatch");
  // Column-oriented: m_j minimizes ||e_j - A m_j|| over the columns S_j of
  // the pattern's *row* j (pattern assumed structurally symmetric, as for
  // the SPD systems this library targets). The normal equations
  //   (A_{:,S})^T (A_{:,S}) m = (A_{:,S})^T e_j
  // only involve the rows J where A_{:,S} is nonzero; the Gram matrix is
  // assembled through A^T A restricted to S x S.
  const CsrMatrix at = transpose(a);
  CsrMatrix m{s};

  const index_t n = a.rows();
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t j = 0; j < n; ++j) {
    const auto cols = s.row(j);
    const auto k = static_cast<index_t>(cols.size());
    if (k == 0) continue;
    // Gram(u, v) = column_u(A) . column_v(A) = row_u(A^T) . row_v(A^T).
    DenseMatrix gram(k, k);
    for (index_t u = 0; u < k; ++u) {
      const auto ucols = at.row_cols(cols[static_cast<std::size_t>(u)]);
      const auto uvals = at.row_vals(cols[static_cast<std::size_t>(u)]);
      for (index_t v = u; v < k; ++v) {
        const auto vcols = at.row_cols(cols[static_cast<std::size_t>(v)]);
        const auto vvals = at.row_vals(cols[static_cast<std::size_t>(v)]);
        value_t dot = 0.0;
        std::size_t pu = 0;
        std::size_t pv = 0;
        while (pu < ucols.size() && pv < vcols.size()) {
          if (ucols[pu] == vcols[pv]) {
            dot += uvals[pu] * vvals[pv];
            ++pu;
            ++pv;
          } else if (ucols[pu] < vcols[pv]) {
            ++pu;
          } else {
            ++pv;
          }
        }
        gram(u, v) = dot;
        gram(v, u) = dot;
      }
    }
    // rhs_u = column_u(A) . e_j = A(j, col_u).
    std::vector<value_t> rhs(static_cast<std::size_t>(k));
    for (index_t u = 0; u < k; ++u) {
      rhs[static_cast<std::size_t>(u)] = a.at(j, cols[static_cast<std::size_t>(u)]);
    }
    if (!solve_spd_system(std::move(gram), rhs)) {
      // Degenerate column: fall back to Jacobi scaling.
      std::fill(rhs.begin(), rhs.end(), 0.0);
      const auto it = std::lower_bound(cols.begin(), cols.end(), j);
      if (it != cols.end() && *it == j && a.at(j, j) != 0.0) {
        rhs[static_cast<std::size_t>(it - cols.begin())] = 1.0 / a.at(j, j);
      }
    }
    auto out = m.row_vals(j);
    std::copy(rhs.begin(), rhs.end(), out.begin());
  }
  return m;
}

SpaiPreconditioner::SpaiPreconditioner(const CsrMatrix& a, const Layout& layout) {
  const CsrMatrix m = compute_spai(a, a.pattern());
  // Symmetrize so CG's requirement of a symmetric preconditioner holds.
  const CsrMatrix mt = transpose(m);
  CooBuilder sym(m.rows(), m.cols());
  sym.reserve(2 * static_cast<std::size_t>(m.nnz()));
  for (index_t i = 0; i < m.rows(); ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      sym.add(i, cols[k], 0.5 * vals[k]);
    }
    const auto tcols = mt.row_cols(i);
    const auto tvals = mt.row_vals(i);
    for (std::size_t k = 0; k < tcols.size(); ++k) {
      sym.add(i, tcols[k], 0.5 * tvals[k]);
    }
  }
  m_dist_ = DistCsr::distribute(sym.to_csr(), layout);
}

void SpaiPreconditioner::apply(const DistVector& r, DistVector& z,
                               CommStats* stats, Executor* exec) const {
  m_dist_.spmv(r, z, stats, nullptr, exec);
}

}  // namespace fsaic
