#include "core/spai.hpp"

#include <algorithm>
#include <cstdint>

#include "dense/dense_matrix.hpp"
#include "dense/factorizations.hpp"
#include "exec/executor.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace fsaic {

namespace {

// Per-thread scratch of the gather assembly: grow-only dense system plus two
// epoch-tagged marker sets — one over A's columns (positions of the pattern
// row, drives the rhs gather) and one over A's rows (the scattered values of
// row_u(A^T), drives the Gram dot products). A single monotone epoch counter
// serves both; every mark uses a fresh value, so stale stamps never match.
struct SpaiScratch {
  DenseMatrix gram;
  std::vector<value_t> rhs;
  std::vector<index_t> pos;
  std::vector<std::uint64_t> pstamp;
  std::vector<value_t> uval;
  std::vector<std::uint64_t> ustamp;
  std::uint64_t epoch = 0;
};

/// One column solve via scatter-stream assembly. The Gram dot products
/// accumulate the common-column terms in the same ascending order with the
/// same operand order as the historic merge-join, and the rhs gather lands
/// the same stored entries at() would return — bit-identical results.
void solve_spai_column_gather(const CsrMatrix& a, const CsrMatrix& at,
                              index_t j, std::span<const index_t> cols,
                              std::span<value_t> out, SpaiScratch& sc) {
  const auto k = static_cast<index_t>(cols.size());
  if (sc.pos.size() < static_cast<std::size_t>(a.cols())) {
    sc.pos.resize(static_cast<std::size_t>(a.cols()));
    sc.pstamp.assign(static_cast<std::size_t>(a.cols()), 0);
  }
  if (sc.uval.size() < static_cast<std::size_t>(a.rows())) {
    sc.uval.resize(static_cast<std::size_t>(a.rows()));
    sc.ustamp.assign(static_cast<std::size_t>(a.rows()), 0);
  }

  // rhs_u = column_u(A) . e_j = A(j, col_u): mark the pattern row's columns,
  // then one stream over A's row j lands the stored entries.
  const std::uint64_t pmark = ++sc.epoch;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    sc.pos[static_cast<std::size_t>(cols[c])] = static_cast<index_t>(c);
    sc.pstamp[static_cast<std::size_t>(cols[c])] = pmark;
  }
  sc.rhs.assign(static_cast<std::size_t>(k), 0.0);
  {
    const auto jcols = a.row_cols(j);
    const auto jvals = a.row_vals(j);
    for (std::size_t p = 0; p < jcols.size(); ++p) {
      const auto c = static_cast<std::size_t>(jcols[p]);
      if (sc.pstamp[c] == pmark) {
        sc.rhs[static_cast<std::size_t>(sc.pos[c])] = jvals[p];
      }
    }
  }

  // Gram(u, v) = row_u(A^T) . row_v(A^T): scatter row u once, then each
  // row v streams past it.
  sc.gram.resize(k, k);
  for (index_t u = 0; u < k; ++u) {
    const auto ucols = at.row_cols(cols[static_cast<std::size_t>(u)]);
    const auto uvals = at.row_vals(cols[static_cast<std::size_t>(u)]);
    const std::uint64_t umark = ++sc.epoch;
    for (std::size_t p = 0; p < ucols.size(); ++p) {
      sc.uval[static_cast<std::size_t>(ucols[p])] = uvals[p];
      sc.ustamp[static_cast<std::size_t>(ucols[p])] = umark;
    }
    for (index_t v = u; v < k; ++v) {
      const auto vcols = at.row_cols(cols[static_cast<std::size_t>(v)]);
      const auto vvals = at.row_vals(cols[static_cast<std::size_t>(v)]);
      value_t dot = 0.0;
      for (std::size_t p = 0; p < vcols.size(); ++p) {
        const auto c = static_cast<std::size_t>(vcols[p]);
        if (sc.ustamp[c] == umark) {
          dot += sc.uval[c] * vvals[p];
        }
      }
      sc.gram(u, v) = dot;
      sc.gram(v, u) = dot;
    }
  }

  if (!solve_spd_system(sc.gram, sc.rhs)) {
    // Degenerate column: fall back to Jacobi scaling.
    std::fill(sc.rhs.begin(), sc.rhs.end(), 0.0);
    const auto it = std::lower_bound(cols.begin(), cols.end(), j);
    if (it != cols.end() && *it == j && a.at(j, j) != 0.0) {
      sc.rhs[static_cast<std::size_t>(it - cols.begin())] = 1.0 / a.at(j, j);
    }
  }
  std::copy(sc.rhs.begin(), sc.rhs.end(), out.begin());
}

/// The historic entrywise path, kept verbatim for differential testing.
void solve_spai_column_reference(const CsrMatrix& a, const CsrMatrix& at,
                                 index_t j, std::span<const index_t> cols,
                                 std::span<value_t> out) {
  const auto k = static_cast<index_t>(cols.size());
  // Gram(u, v) = column_u(A) . column_v(A) = row_u(A^T) . row_v(A^T).
  DenseMatrix gram(k, k);
  for (index_t u = 0; u < k; ++u) {
    const auto ucols = at.row_cols(cols[static_cast<std::size_t>(u)]);
    const auto uvals = at.row_vals(cols[static_cast<std::size_t>(u)]);
    for (index_t v = u; v < k; ++v) {
      const auto vcols = at.row_cols(cols[static_cast<std::size_t>(v)]);
      const auto vvals = at.row_vals(cols[static_cast<std::size_t>(v)]);
      value_t dot = 0.0;
      std::size_t pu = 0;
      std::size_t pv = 0;
      while (pu < ucols.size() && pv < vcols.size()) {
        if (ucols[pu] == vcols[pv]) {
          dot += uvals[pu] * vvals[pv];
          ++pu;
          ++pv;
        } else if (ucols[pu] < vcols[pv]) {
          ++pu;
        } else {
          ++pv;
        }
      }
      gram(u, v) = dot;
      gram(v, u) = dot;
    }
  }
  // rhs_u = column_u(A) . e_j = A(j, col_u).
  std::vector<value_t> rhs(static_cast<std::size_t>(k));
  for (index_t u = 0; u < k; ++u) {
    rhs[static_cast<std::size_t>(u)] = a.at(j, cols[static_cast<std::size_t>(u)]);
  }
  if (!solve_spd_system(std::move(gram), rhs)) {
    // Degenerate column: fall back to Jacobi scaling.
    std::fill(rhs.begin(), rhs.end(), 0.0);
    const auto it = std::lower_bound(cols.begin(), cols.end(), j);
    if (it != cols.end() && *it == j && a.at(j, j) != 0.0) {
      rhs[static_cast<std::size_t>(it - cols.begin())] = 1.0 / a.at(j, j);
    }
  }
  std::copy(rhs.begin(), rhs.end(), out.begin());
}

}  // namespace

CsrMatrix compute_spai(const CsrMatrix& a, const SparsityPattern& s,
                       const SpaiComputeOptions& options) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "SPAI requires a square matrix");
  FSAIC_REQUIRE(s.rows() == a.rows() && s.cols() == a.cols(),
                "pattern shape mismatch");
  // Column-oriented: m_j minimizes ||e_j - A m_j|| over the columns S_j of
  // the pattern's *row* j (pattern assumed structurally symmetric, as for
  // the SPD systems this library targets). The normal equations
  //   (A_{:,S})^T (A_{:,S}) m = (A_{:,S})^T e_j
  // only involve the rows J where A_{:,S} is nonzero; the Gram matrix is
  // assembled through A^T A restricted to S x S.
  const CsrMatrix at = transpose(a);
  CsrMatrix m{s};

  Executor& exec = resolve_executor(options.exec);
  const int width = std::max(1, exec.parallel_for_width());
  std::vector<SpaiScratch> scratch(static_cast<std::size_t>(width));

  exec.parallel_for(a.rows(), [&](index_t j, int slot) {
    const auto cols = s.row(j);
    if (cols.empty()) return;
    auto out = m.row_vals(j);
    if (options.assembly == GramAssembly::Gather) {
      solve_spai_column_gather(a, at, j, cols, out,
                               scratch[static_cast<std::size_t>(slot)]);
    } else {
      solve_spai_column_reference(a, at, j, cols, out);
    }
  });
  return m;
}

SpaiPreconditioner::SpaiPreconditioner(const CsrMatrix& a, const Layout& layout) {
  const CsrMatrix m = compute_spai(a, a.pattern());
  // Symmetrize so CG's requirement of a symmetric preconditioner holds.
  const CsrMatrix mt = transpose(m);
  CooBuilder sym(m.rows(), m.cols());
  sym.reserve(2 * static_cast<std::size_t>(m.nnz()));
  for (index_t i = 0; i < m.rows(); ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      sym.add(i, cols[k], 0.5 * vals[k]);
    }
    const auto tcols = mt.row_cols(i);
    const auto tvals = mt.row_vals(i);
    for (std::size_t k = 0; k < tcols.size(); ++k) {
      sym.add(i, tcols[k], 0.5 * tvals[k]);
    }
  }
  m_dist_ = DistCsr::distribute(sym.to_csr(), layout);
}

void SpaiPreconditioner::apply(const DistVector& r, DistVector& z,
                               CommStats* stats, Executor* exec) const {
  m_dist_.spmv(r, z, stats, nullptr, exec);
}

}  // namespace fsaic
