#include "core/factor_io.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace fsaic {

namespace {

constexpr char kMagicV1[8] = {'F', 'S', 'A', 'I', 'C', 'F', '1', '\0'};
constexpr char kMagicV2[8] = {'F', 'S', 'A', 'I', 'C', 'F', '2', '\0'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void write_span(std::ostream& out, std::span<const T> v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  FSAIC_REQUIRE(in.good(), "truncated factor file");
  return v;
}

template <typename T>
std::vector<T> read_vector(std::istream& in, std::size_t count) {
  std::vector<T> v(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  FSAIC_REQUIRE(in.good(), "truncated factor file");
  return v;
}

}  // namespace

void save_factor(const std::string& path, const CsrMatrix& g,
                 const Layout& layout,
                 std::optional<MatrixFingerprint> built_for) {
  FSAIC_REQUIRE(g.rows() == layout.global_size(),
                "factor and layout sizes must agree");
  std::ofstream out(path, std::ios::binary);
  FSAIC_REQUIRE(out.good(), "cannot open for writing: " + path);
  out.write(kMagicV2, sizeof(kMagicV2));
  write_pod(out, layout.nranks());
  for (rank_t p = 0; p <= layout.nranks(); ++p) {
    const index_t begin = p < layout.nranks() ? layout.begin(p) : layout.global_size();
    write_pod(out, begin);
  }
  write_pod(out, static_cast<std::int32_t>(built_for.has_value() ? 1 : 0));
  if (built_for.has_value()) {
    write_pod(out, built_for->rows);
    write_pod(out, built_for->cols);
    write_pod(out, built_for->nnz);
    write_pod(out, built_for->content_hash);
  }
  write_pod(out, g.rows());
  write_pod(out, g.cols());
  write_pod(out, g.nnz());
  write_span<offset_t>(out, g.row_ptr());
  write_span<index_t>(out, g.col_idx());
  write_span<value_t>(out, g.values());
  FSAIC_REQUIRE(out.good(), "write failed: " + path);
}

SavedFactor load_factor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FSAIC_REQUIRE(in.good(), "cannot open: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  const bool v2 =
      in.good() && std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
  const bool v1 =
      in.good() && std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0;
  FSAIC_REQUIRE(v1 || v2, "not a FSAIC factor file: " + path);
  const auto nranks = read_pod<rank_t>(in);
  FSAIC_REQUIRE(nranks >= 1 && nranks < (1 << 24), "implausible rank count");
  std::vector<index_t> begin(static_cast<std::size_t>(nranks) + 1);
  for (auto& b : begin) {
    b = read_pod<index_t>(in);
  }
  std::optional<MatrixFingerprint> built_for;
  if (v2) {
    const auto has_fp = read_pod<std::int32_t>(in);
    FSAIC_REQUIRE(has_fp == 0 || has_fp == 1, "corrupt fingerprint flag");
    if (has_fp == 1) {
      MatrixFingerprint fp;
      fp.rows = read_pod<index_t>(in);
      fp.cols = read_pod<index_t>(in);
      fp.nnz = read_pod<offset_t>(in);
      fp.content_hash = read_pod<std::uint64_t>(in);
      built_for = fp;
    }
  }
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto nnz = read_pod<offset_t>(in);
  FSAIC_REQUIRE(rows >= 0 && cols >= 0 && nnz >= 0, "corrupt factor header");
  auto row_ptr = read_vector<offset_t>(in, static_cast<std::size_t>(rows) + 1);
  auto col_idx = read_vector<index_t>(in, static_cast<std::size_t>(nnz));
  auto values = read_vector<value_t>(in, static_cast<std::size_t>(nnz));
  SavedFactor out{CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                            std::move(values)),
                  Layout(std::move(begin)), built_for};
  FSAIC_REQUIRE(out.layout.global_size() == out.g.rows(),
                "factor/layout mismatch in file");
  return out;
}

void require_factor_matches(const SavedFactor& saved, const CsrMatrix& a) {
  if (!saved.built_for.has_value()) return;
  const MatrixFingerprint actual = fingerprint_of(a);
  if (actual == *saved.built_for) return;
  throw Error(
      "saved factor was built for a different matrix: factor file records (" +
      saved.built_for->to_string() + ") but the loaded system is (" +
      actual.to_string() +
      "); rebuild the factor or pass the matrix it was saved from");
}

}  // namespace fsaic
