#include "core/factor_io.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace fsaic {

namespace {

constexpr char kMagic[8] = {'F', 'S', 'A', 'I', 'C', 'F', '1', '\0'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void write_span(std::ostream& out, std::span<const T> v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  FSAIC_REQUIRE(in.good(), "truncated factor file");
  return v;
}

template <typename T>
std::vector<T> read_vector(std::istream& in, std::size_t count) {
  std::vector<T> v(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  FSAIC_REQUIRE(in.good(), "truncated factor file");
  return v;
}

}  // namespace

void save_factor(const std::string& path, const CsrMatrix& g,
                 const Layout& layout) {
  FSAIC_REQUIRE(g.rows() == layout.global_size(),
                "factor and layout sizes must agree");
  std::ofstream out(path, std::ios::binary);
  FSAIC_REQUIRE(out.good(), "cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, layout.nranks());
  for (rank_t p = 0; p <= layout.nranks(); ++p) {
    const index_t begin = p < layout.nranks() ? layout.begin(p) : layout.global_size();
    write_pod(out, begin);
  }
  write_pod(out, g.rows());
  write_pod(out, g.cols());
  write_pod(out, g.nnz());
  write_span<offset_t>(out, g.row_ptr());
  write_span<index_t>(out, g.col_idx());
  write_span<value_t>(out, g.values());
  FSAIC_REQUIRE(out.good(), "write failed: " + path);
}

SavedFactor load_factor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FSAIC_REQUIRE(in.good(), "cannot open: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  FSAIC_REQUIRE(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "not a FSAIC factor file: " + path);
  const auto nranks = read_pod<rank_t>(in);
  FSAIC_REQUIRE(nranks >= 1 && nranks < (1 << 24), "implausible rank count");
  std::vector<index_t> begin(static_cast<std::size_t>(nranks) + 1);
  for (auto& b : begin) {
    b = read_pod<index_t>(in);
  }
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto nnz = read_pod<offset_t>(in);
  FSAIC_REQUIRE(rows >= 0 && cols >= 0 && nnz >= 0, "corrupt factor header");
  auto row_ptr = read_vector<offset_t>(in, static_cast<std::size_t>(rows) + 1);
  auto col_idx = read_vector<index_t>(in, static_cast<std::size_t>(nnz));
  auto values = read_vector<value_t>(in, static_cast<std::size_t>(nnz));
  SavedFactor out{CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                            std::move(values)),
                  Layout(std::move(begin))};
  FSAIC_REQUIRE(out.layout.global_size() == out.g.rows(),
                "factor/layout mismatch in file");
  return out;
}

}  // namespace fsaic
