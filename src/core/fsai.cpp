#include "core/fsai.hpp"

#include <atomic>
#include <cmath>

#include "dense/dense_matrix.hpp"
#include "dense/factorizations.hpp"
#include "sparse/ops.hpp"

namespace fsaic {

CsrMatrix compute_fsai_factor(const CsrMatrix& a, const SparsityPattern& s,
                              FsaiFactorStats* stats) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "FSAI requires a square matrix");
  FSAIC_REQUIRE(s.rows() == a.rows() && s.cols() == a.cols(),
                "pattern shape mismatch");
  FSAIC_REQUIRE(s.is_lower_triangular(), "FSAI pattern must be lower triangular");
  FSAIC_REQUIRE(s.has_full_diagonal(), "FSAI pattern must contain the diagonal");

  CsrMatrix g{s};
  const index_t n = a.rows();
  std::atomic<index_t> fallback_rows{0};
  std::atomic<index_t> degenerate_rows{0};

#pragma omp parallel
  {
    // Per-thread scratch reused across rows.
    std::vector<value_t> rhs;
#pragma omp for schedule(dynamic, 64)
    for (index_t i = 0; i < n; ++i) {
      const auto cols = s.row(i);
      const auto m = static_cast<index_t>(cols.size());
      // The diagonal is the last pattern entry of a sorted lower-triangular
      // row.
      FSAIC_CHECK(cols.back() == i, "diagonal must close each pattern row");
      const index_t diag_pos = m - 1;

      DenseMatrix local(m, m);
      for (index_t r = 0; r < m; ++r) {
        for (index_t c = 0; c < m; ++c) {
          local(r, c) = a.at(cols[static_cast<std::size_t>(r)],
                             cols[static_cast<std::size_t>(c)]);
        }
      }
      rhs.assign(static_cast<std::size_t>(m), 0.0);
      rhs[static_cast<std::size_t>(diag_pos)] = 1.0;

      bool solved = false;
      {
        DenseMatrix chol = local;
        if (cholesky_factor(chol)) {
          cholesky_solve(chol, rhs);
          solved = true;
        }
      }
      if (!solved) {
        fallback_rows.fetch_add(1, std::memory_order_relaxed);
        rhs.assign(static_cast<std::size_t>(m), 0.0);
        rhs[static_cast<std::size_t>(diag_pos)] = 1.0;
        solved = solve_spd_system(local, rhs);
      }

      auto out = g.row_vals(i);
      const value_t ghat_ii = solved ? rhs[static_cast<std::size_t>(diag_pos)] : 0.0;
      if (!solved || !(ghat_ii > 0.0) || !std::isfinite(ghat_ii)) {
        // Degenerate local system: degrade this row to Jacobi scaling, which
        // keeps G well defined (and SPD as a preconditioner).
        degenerate_rows.fetch_add(1, std::memory_order_relaxed);
        const value_t aii = a.at(i, i);
        const value_t scale = aii > 0.0 ? 1.0 / std::sqrt(aii) : 1.0;
        for (index_t k = 0; k < m; ++k) {
          out[static_cast<std::size_t>(k)] = (k == diag_pos) ? scale : 0.0;
        }
        continue;
      }
      const value_t inv_sqrt = 1.0 / std::sqrt(ghat_ii);
      for (index_t k = 0; k < m; ++k) {
        out[static_cast<std::size_t>(k)] = rhs[static_cast<std::size_t>(k)] * inv_sqrt;
      }
    }
  }

  if (stats != nullptr) {
    stats->fallback_rows = fallback_rows.load();
    stats->degenerate_rows = degenerate_rows.load();
  }
  return g;
}

SparsityPattern fsai_base_pattern(const CsrMatrix& a, int sparsity_level,
                                  value_t prefilter_threshold) {
  FSAIC_REQUIRE(sparsity_level >= 1, "sparsity level must be >= 1");
  const CsrMatrix filtered =
      prefilter_threshold > 0.0 ? threshold(a, prefilter_threshold) : a;
  SparsityPattern p = filtered.pattern();
  if (sparsity_level > 1) {
    p = p.symbolic_power(sparsity_level);
  }
  return p.lower_triangle().with_full_diagonal();
}

}  // namespace fsaic
