#include "core/fsai.hpp"

#include <algorithm>
#include <cmath>

#include "dense/dense_matrix.hpp"
#include "dense/factorizations.hpp"
#include "exec/executor.hpp"
#include "sparse/ops.hpp"

namespace fsaic {

namespace {

// Per-thread scratch reused across rows: grow-only dense systems and the
// epoch-tagged position markers of the gather assembly. Each parallel_for
// slot owns one instance; stats accumulate lock-free and are summed after
// the loop's barrier.
struct RowScratch {
  DenseMatrix gram;  ///< lower-triangle Gram, Cholesky-factored in place
  DenseMatrix full;  ///< both triangles, re-gathered for fallback rows
  std::vector<value_t> rhs;
  /// pos[c] = position of column c in the current pattern row, valid iff
  /// stamp[c] == epoch. Bumping the epoch invalidates all markers in O(1),
  /// so no per-row clearing pass is needed.
  std::vector<index_t> pos;
  std::vector<std::uint64_t> stamp;
  std::uint64_t epoch = 0;
  FsaiFactorStats stats;
};

/// Publish the pattern row's columns in the marker array (one epoch bump).
void mark_pattern_row(std::span<const index_t> cols, index_t n, RowScratch& s) {
  if (s.pos.size() < static_cast<std::size_t>(n)) {
    s.pos.resize(static_cast<std::size_t>(n));
    s.stamp.assign(static_cast<std::size_t>(n), 0);
    s.epoch = 0;
  }
  ++s.epoch;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    s.pos[static_cast<std::size_t>(cols[c])] = static_cast<index_t>(c);
    s.stamp[static_cast<std::size_t>(cols[c])] = s.epoch;
  }
}

/// Gather-assemble A(cols, cols) into `out`: one streaming pass over the CSR
/// rows A(cols[r], :), entries landing via the position markers. Entries of
/// the pattern absent from A stay 0, exactly like the at()-based reference.
/// Requires mark_pattern_row to have been called for `cols`.
void gather_gram(const CsrMatrix& a, std::span<const index_t> cols,
                 bool lower_only, DenseMatrix& out, RowScratch& s) {
  const auto m = static_cast<index_t>(cols.size());
  out.resize(m, m);
  for (index_t r = 0; r < m; ++r) {
    const auto acols = a.row_cols(cols[static_cast<std::size_t>(r)]);
    const auto avals = a.row_vals(cols[static_cast<std::size_t>(r)]);
    for (std::size_t k = 0; k < acols.size(); ++k) {
      const auto j = static_cast<std::size_t>(acols[k]);
      if (s.stamp[j] != s.epoch) continue;
      const index_t c = s.pos[j];
      if (lower_only && c > r) continue;
      out(r, c) = avals[k];
      ++s.stats.gram_entries_gathered;
    }
  }
}

/// The dense solve of one row system, gather-assembled. Returns whether the
/// system was solved; the solution is left in s.rhs.
bool solve_local_system_gather(const CsrMatrix& a, std::span<const index_t> cols,
                               index_t diag_pos, RowScratch& s) {
  const auto m = static_cast<index_t>(cols.size());
  mark_pattern_row(cols, a.cols(), s);
  gather_gram(a, cols, /*lower_only=*/true, s.gram, s);
  s.rhs.assign(static_cast<std::size_t>(m), 0.0);
  s.rhs[static_cast<std::size_t>(diag_pos)] = 1.0;
  // Factor in place: only the lower triangle was assembled, and Cholesky
  // reads nothing else.
  if (cholesky_factor(s.gram)) {
    cholesky_solve(s.gram, s.rhs);
    return true;
  }
  ++s.stats.fallback_rows;
  // The LDL^T/LU fallback chain reads the full matrix; re-gather both
  // triangles so it sees exactly what the reference path assembles.
  gather_gram(a, cols, /*lower_only=*/false, s.full, s);
  s.rhs.assign(static_cast<std::size_t>(m), 0.0);
  s.rhs[static_cast<std::size_t>(diag_pos)] = 1.0;
  return solve_spd_system(s.full, s.rhs);
}

/// The pre-gather reference: entrywise at() assembly with per-row
/// allocations, kept verbatim so differential tests and the setup-speed
/// bench measure the real historic cost profile.
bool solve_local_system_reference(const CsrMatrix& a,
                                  std::span<const index_t> cols,
                                  index_t diag_pos, RowScratch& s) {
  const auto m = static_cast<index_t>(cols.size());
  DenseMatrix local(m, m);
  for (index_t r = 0; r < m; ++r) {
    for (index_t c = 0; c < m; ++c) {
      local(r, c) = a.at(cols[static_cast<std::size_t>(r)],
                         cols[static_cast<std::size_t>(c)]);
    }
  }
  s.rhs.assign(static_cast<std::size_t>(m), 0.0);
  s.rhs[static_cast<std::size_t>(diag_pos)] = 1.0;
  {
    DenseMatrix chol = local;
    if (cholesky_factor(chol)) {
      cholesky_solve(chol, s.rhs);
      return true;
    }
  }
  ++s.stats.fallback_rows;
  s.rhs.assign(static_cast<std::size_t>(m), 0.0);
  s.rhs[static_cast<std::size_t>(diag_pos)] = 1.0;
  return solve_spd_system(local, s.rhs);
}

/// Solve one pattern row and write the normalized G row into `out`.
void solve_fsai_row(const CsrMatrix& a, index_t i, std::span<const index_t> cols,
                    std::span<value_t> out, GramAssembly assembly,
                    RowScratch& s) {
  const auto m = static_cast<index_t>(cols.size());
  // The diagonal is the last pattern entry of a sorted lower-triangular row.
  FSAIC_CHECK(cols.back() == i, "diagonal must close each pattern row");
  const index_t diag_pos = m - 1;
  ++s.stats.rows_solved;

  const bool solved = assembly == GramAssembly::Gather
                          ? solve_local_system_gather(a, cols, diag_pos, s)
                          : solve_local_system_reference(a, cols, diag_pos, s);

  const value_t ghat_ii =
      solved ? s.rhs[static_cast<std::size_t>(diag_pos)] : 0.0;
  if (!solved || !(ghat_ii > 0.0) || !std::isfinite(ghat_ii)) {
    // Degenerate local system: degrade this row to Jacobi scaling, which
    // keeps G well defined (and SPD as a preconditioner).
    ++s.stats.degenerate_rows;
    const value_t aii = a.at(i, i);
    const value_t scale = aii > 0.0 ? 1.0 / std::sqrt(aii) : 1.0;
    for (index_t k = 0; k < m; ++k) {
      out[static_cast<std::size_t>(k)] = (k == diag_pos) ? scale : 0.0;
    }
    return;
  }
  const value_t inv_sqrt = 1.0 / std::sqrt(ghat_ii);
  for (index_t k = 0; k < m; ++k) {
    out[static_cast<std::size_t>(k)] =
        s.rhs[static_cast<std::size_t>(k)] * inv_sqrt;
  }
}

/// The shared row loop of compute/refine: every row either reuses its
/// provisional values (refine only, pattern row unchanged) or is solved.
/// Rows are independent — each writes only its own value range of `g` — so
/// any parallel_for schedule produces identical bits.
void run_setup_rows(const CsrMatrix& a, const SparsityPattern& s, CsrMatrix& g,
                    const CsrMatrix* reuse_from, FsaiFactorStats* stats,
                    const FsaiComputeOptions& options) {
  Executor& exec = resolve_executor(options.exec);
  const int width = std::max(1, exec.parallel_for_width());
  std::vector<RowScratch> scratch(static_cast<std::size_t>(width));

  exec.parallel_for(a.rows(), [&](index_t i, int slot) {
    RowScratch& st = scratch[static_cast<std::size_t>(slot)];
    const auto cols = s.row(i);
    auto out = g.row_vals(i);
    if (reuse_from != nullptr) {
      const auto pre_cols = reuse_from->row_cols(i);
      if (pre_cols.size() == cols.size() &&
          std::equal(cols.begin(), cols.end(), pre_cols.begin())) {
        const auto pre_vals = reuse_from->row_vals(i);
        std::copy(pre_vals.begin(), pre_vals.end(), out.begin());
        ++st.stats.rows_reused;
        return;
      }
    }
    solve_fsai_row(a, i, cols, out, options.assembly, st);
  });

  if (stats != nullptr) {
    *stats = {};
    for (const RowScratch& st : scratch) {
      stats->fallback_rows += st.stats.fallback_rows;
      stats->degenerate_rows += st.stats.degenerate_rows;
      stats->rows_solved += st.stats.rows_solved;
      stats->rows_reused += st.stats.rows_reused;
      stats->gram_entries_gathered += st.stats.gram_entries_gathered;
    }
  }
}

void validate_fsai_inputs(const CsrMatrix& a, const SparsityPattern& s) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "FSAI requires a square matrix");
  FSAIC_REQUIRE(s.rows() == a.rows() && s.cols() == a.cols(),
                "pattern shape mismatch");
  FSAIC_REQUIRE(s.is_lower_triangular(), "FSAI pattern must be lower triangular");
  FSAIC_REQUIRE(s.has_full_diagonal(), "FSAI pattern must contain the diagonal");
}

}  // namespace

const char* to_string(GramAssembly assembly) {
  return assembly == GramAssembly::Gather ? "gather" : "reference";
}

CsrMatrix compute_fsai_factor(const CsrMatrix& a, const SparsityPattern& s,
                              FsaiFactorStats* stats,
                              const FsaiComputeOptions& options) {
  validate_fsai_inputs(a, s);
  CsrMatrix g{s};
  run_setup_rows(a, s, g, nullptr, stats, options);
  return g;
}

CsrMatrix refine_fsai_factor(const CsrMatrix& a, const CsrMatrix& g_pre,
                             const SparsityPattern& s_final,
                             FsaiFactorStats* stats,
                             const FsaiComputeOptions& options) {
  validate_fsai_inputs(a, s_final);
  FSAIC_REQUIRE(g_pre.rows() == a.rows() && g_pre.cols() == a.cols(),
                "provisional factor shape mismatch");
  CsrMatrix g{s_final};
  run_setup_rows(a, s_final, g, &g_pre, stats, options);
  return g;
}

SparsityPattern fsai_base_pattern(const CsrMatrix& a, int sparsity_level,
                                  value_t prefilter_threshold) {
  FSAIC_REQUIRE(sparsity_level >= 1, "sparsity level must be >= 1");
  const CsrMatrix filtered =
      prefilter_threshold > 0.0 ? threshold(a, prefilter_threshold) : a;
  SparsityPattern p = filtered.pattern();
  if (sparsity_level > 1) {
    p = p.symbolic_power(sparsity_level);
  }
  return p.lower_triangle().with_full_diagonal();
}

}  // namespace fsaic
