#include "core/adaptive.hpp"

#include <algorithm>

#include "dense/dense_matrix.hpp"
#include "dense/factorizations.hpp"

namespace fsaic {

SparsityPattern adaptive_fsai_pattern(const CsrMatrix& a,
                                      const AdaptiveOptions& options) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "adaptive FSAI requires a square matrix");
  FSAIC_REQUIRE(options.growth_steps >= 0, "growth steps must be >= 0");
  FSAIC_REQUIRE(options.entries_per_step >= 1, "entries per step must be >= 1");

  const index_t n = a.rows();
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(n));

#pragma omp parallel
  {
    std::vector<index_t> support;       // current S_i, sorted
    std::vector<value_t> g;             // local solution
    std::vector<std::pair<value_t, index_t>> scored;
#pragma omp for schedule(dynamic, 64)
    for (index_t i = 0; i < n; ++i) {
      support.assign(1, i);
      for (int step = 0; step < options.growth_steps; ++step) {
        // Solve A(S,S) g = e_i on the current support.
        const auto m = static_cast<index_t>(support.size());
        DenseMatrix local(m, m);
        for (index_t r = 0; r < m; ++r) {
          for (index_t c = 0; c < m; ++c) {
            local(r, c) = a.at(support[static_cast<std::size_t>(r)],
                               support[static_cast<std::size_t>(c)]);
          }
        }
        g.assign(static_cast<std::size_t>(m), 0.0);
        // The diagonal i is the largest support index (lower-tri rows).
        const auto diag_pos = static_cast<std::size_t>(
            std::lower_bound(support.begin(), support.end(), i) -
            support.begin());
        g[diag_pos] = 1.0;
        if (!solve_spd_system(std::move(local), g)) break;

        // Candidate scores: |(A g)_k| for k < i reachable from the support.
        scored.clear();
        for (std::size_t sj = 0; sj < support.size(); ++sj) {
          const index_t j = support[sj];
          const auto cols = a.row_cols(j);
          for (index_t k : cols) {
            if (k >= i) continue;
            if (std::binary_search(support.begin(), support.end(), k)) continue;
            // Residual component (A g)_k = sum_{j in S} A(k, j) g_j;
            // accumulate lazily by scoring each candidate once.
            bool already = false;
            for (const auto& [sc, kk] : scored) {
              if (kk == k) {
                already = true;
                break;
              }
            }
            if (already) continue;
            value_t res = 0.0;
            for (std::size_t sj2 = 0; sj2 < support.size(); ++sj2) {
              res += a.at(k, support[sj2]) * g[sj2];
            }
            if (res != 0.0) scored.emplace_back(std::abs(res), k);
          }
        }
        if (scored.empty()) break;
        const auto take = std::min<std::size_t>(
            static_cast<std::size_t>(options.entries_per_step), scored.size());
        std::partial_sort(scored.begin(),
                          scored.begin() + static_cast<std::ptrdiff_t>(take),
                          scored.end(), std::greater<>{});
        for (std::size_t t = 0; t < take; ++t) {
          support.push_back(scored[t].second);
        }
        std::sort(support.begin(), support.end());
      }
      rows[static_cast<std::size_t>(i)] = support;
    }
  }
  return SparsityPattern::from_rows(n, n, std::move(rows));
}

}  // namespace fsaic
