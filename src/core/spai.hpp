// Non-factorized Sparse Approximate Inverse (SAI/SPAI, Section 2.2 of the
// paper): M ≈ A^{-1} minimizing ||I - A M||_F column by column over a fixed
// pattern. Provided as the family baseline the factorized methods improve
// on for SPD systems — M is not symmetric in general, so the CG-compatible
// application symmetrizes it as (M + M^T)/2, which loses the SPD guarantee
// FSAI's G^T G form keeps (one of the reasons the paper uses FSAI).
#pragma once

#include "core/fsai.hpp"
#include "solver/preconditioner.hpp"
#include "sparse/csr.hpp"
#include "sparse/pattern.hpp"

namespace fsaic {

struct SpaiComputeOptions {
  /// Gather: scatter-stream Gram/rhs assembly (one pass over the CSR rows,
  /// no per-entry binary searches). Reference: the historic merge-join +
  /// at() path. Both produce bit-identical columns.
  GramAssembly assembly = GramAssembly::Gather;
  /// Column-loop engine (null -> the process-wide default executor).
  Executor* exec = nullptr;
};

/// Compute M on pattern `s` minimizing ||e_j - A m_j||_2 per column j
/// (dense normal equations on the gathered submatrix; the classical SPAI
/// least-squares step).
[[nodiscard]] CsrMatrix compute_spai(const CsrMatrix& a, const SparsityPattern& s,
                                     const SpaiComputeOptions& options = {});

/// z = M_sym r with M_sym = (M + M^T)/2 distributed over the layout.
class SpaiPreconditioner final : public Preconditioner {
 public:
  /// Builds M on the pattern of A restricted by `layout`.
  SpaiPreconditioner(const CsrMatrix& a, const Layout& layout);

  void apply(const DistVector& r, DistVector& z, CommStats* stats = nullptr,
             Executor* exec = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "spai"; }

  [[nodiscard]] const DistCsr& m() const { return m_dist_; }

 private:
  DistCsr m_dist_;
};

}  // namespace fsaic
