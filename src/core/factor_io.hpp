// Binary serialization of computed preconditioner factors.
//
// Setup is the expensive phase (see bench/amortization); production
// workflows factor once and reuse across runs/restarts. The format stores
// the lower-triangular factor G together with the row layout it was built
// for, so a reload reconstructs the distributed G / G^T pair exactly.
//
// Layout (little-endian, fixed-width):
//   magic   "FSAICF2\0"             8 bytes
//   nranks  int32
//   rank_begin[nranks+1]            int32 each
//   has_fp  int32                   1 when a build-matrix fingerprint follows
//   fp.rows, fp.cols                int32 each    (has_fp == 1 only)
//   fp.nnz                          int64
//   fp.content_hash                 uint64
//   rows, cols                      int32 each
//   nnz                             int64
//   row_ptr[rows+1]                 int64 each
//   col_idx[nnz]                    int32 each
//   values[nnz]                     float64 each
//
// Version 1 files ("FSAICF1\0", no fingerprint block) still load; their
// SavedFactor carries no fingerprint and skips the ownership check.
#pragma once

#include <optional>
#include <string>

#include "dist/layout.hpp"
#include "sparse/csr.hpp"
#include "sparse/fingerprint.hpp"

namespace fsaic {

struct SavedFactor {
  CsrMatrix g;
  Layout layout;
  /// Fingerprint of the system matrix the factor was built for (absent in
  /// version-1 files).
  std::optional<MatrixFingerprint> built_for;
};

/// Serialize factor G. `built_for` should be the fingerprint of the
/// (partition-permuted) system matrix the factor preconditions, so a later
/// load can verify the factor belongs to the matrix it is applied to.
void save_factor(const std::string& path, const CsrMatrix& g,
                 const Layout& layout,
                 std::optional<MatrixFingerprint> built_for = std::nullopt);

[[nodiscard]] SavedFactor load_factor(const std::string& path);

/// Throw fsaic::Error with a descriptive message when `saved` carries a
/// fingerprint that does not match matrix `a` (dims, nnz or content hash).
/// Fingerprint-less (version-1) factors pass the check unchallenged.
void require_factor_matches(const SavedFactor& saved, const CsrMatrix& a);

}  // namespace fsaic
