// Binary serialization of computed preconditioner factors.
//
// Setup is the expensive phase (see bench/amortization); production
// workflows factor once and reuse across runs/restarts. The format stores
// the lower-triangular factor G together with the row layout it was built
// for, so a reload reconstructs the distributed G / G^T pair exactly.
//
// Layout (little-endian, fixed-width):
//   magic   "FSAICF1\0"             8 bytes
//   nranks  int32
//   rank_begin[nranks+1]            int32 each
//   rows, cols                      int32 each
//   nnz                             int64
//   row_ptr[rows+1]                 int64 each
//   col_idx[nnz]                    int32 each
//   values[nnz]                     float64 each
#pragma once

#include <string>

#include "dist/layout.hpp"
#include "sparse/csr.hpp"

namespace fsaic {

struct SavedFactor {
  CsrMatrix g;
  Layout layout;
};

void save_factor(const std::string& path, const CsrMatrix& g, const Layout& layout);

[[nodiscard]] SavedFactor load_factor(const std::string& path);

}  // namespace fsaic
