// End-to-end FSAI / FSAIE / FSAIE-Comm preconditioner construction
// (Algorithm 2 of the paper) plus the partition-and-distribute front end.
//
// Pipeline of build_fsai_preconditioner:
//   1. base pattern S  = lower(pattern(Ã^N)) + diagonal          (Alg. 1/2 s.1-2)
//   2. S_ext           = cache-line extension of S per `extension`  (Alg. 3)
//   3. G_pre           = FSAI values on S_ext                       (Alg. 2 s.4)
//   4. S_f             = static or dynamic filtering of G_pre       (Alg. 2/4)
//   5. G               = FSAI values recomputed on S_f              (Alg. 2 s.5)
// and the distributed factors G, G^T are assembled for the PCG.
#pragma once

#include <memory>

#include "core/filtering.hpp"
#include "core/fsai.hpp"
#include "core/pattern_extend.hpp"
#include "dist/dist_csr.hpp"
#include "obs/trace.hpp"
#include "solver/preconditioner.hpp"

namespace fsaic {

enum class FilterStrategy { Static, Dynamic };

[[nodiscard]] const char* to_string(FilterStrategy strategy);

struct FsaiOptions {
  /// Power N of Ã defining the a-priori pattern (1 = pattern of A, the
  /// baseline used throughout the paper's evaluation).
  int sparsity_level = 1;
  /// Threshold tau producing Ã from A (0 = keep all entries).
  value_t prefilter_threshold = 0.0;
  /// Extension mode: None=FSAI, LocalOnly=FSAIE, CommAware=FSAIE-Comm.
  ExtensionMode extension = ExtensionMode::None;
  /// Cache-line size steering the extension (64 B Skylake/Zen2, 256 B A64FX).
  int cache_line_bytes = 64;
  /// Filter value (0 disables filtering; the paper sweeps 0.01–0.2).
  value_t filter = 0.0;
  FilterStrategy filter_strategy = FilterStrategy::Static;
  /// Protect original-pattern entries from the filter (Alg. 2 semantics).
  bool filter_only_added = true;
  /// Dynamic-filter tolerance and iteration caps (Algorithm 4).
  double imbalance_tolerance = 0.05;
  int max_bisection_steps = 30;
  int rebalance_rounds = 8;
  /// Gram assembly of the per-row dense systems (Reference only for
  /// differential testing / benchmarking — factors are bit-identical).
  GramAssembly assembly = GramAssembly::Gather;
  /// Reuse provisional G_pre rows whose pattern survived filtering unchanged
  /// instead of re-solving every row in step 5 (bit-identical either way).
  bool incremental_refactor = true;
  /// Setup row-loop engine (null -> the process-wide default executor).
  Executor* exec = nullptr;
  /// Optional phase tracer (borrowed): the build emits the setup phases
  /// pattern_build / pattern_extension / filtering / factorization.
  TraceRecorder* trace = nullptr;
};

struct FsaiBuildResult {
  /// Final global factor (lower triangular).
  CsrMatrix g;
  /// Distributed factors ready for the PCG preconditioner application.
  DistCsr g_dist;
  DistCsr gt_dist;

  SparsityPattern base_pattern;      ///< S
  SparsityPattern extended_pattern;  ///< S_ext before filtering
  SparsityPattern final_pattern;     ///< after filtering

  /// Lower-triangular pattern-entry increase over S, in percent (the paper's
  /// "% NNZ" column).
  double nnz_increase_pct = 0.0;

  /// Imbalance indices (avg/max, Section 5.3.3) of the G and G^T row
  /// distributions.
  double imbalance_g = 1.0;
  double imbalance_gt = 1.0;

  /// Per-rank filters after dynamic adjustment (uniform for static).
  std::vector<value_t> rank_filter;
  int dynamic_bisection_iterations = 0;

  /// Stats of the final factorization (step 5). With incremental
  /// refactorization, rows_reused counts the G_pre rows copied verbatim.
  FsaiFactorStats factor_stats;
  /// Stats of the provisional factorization on S_ext (step 4); all zero when
  /// filtering is inactive and no provisional factor is computed.
  FsaiFactorStats provisional_factor_stats;
  /// Setup-phase collectives (dynamic-filter allreduces).
  CommStats setup_comm;

  [[nodiscard]] double imbalance_avg() const {
    return 0.5 * (imbalance_g + imbalance_gt);
  }
};

/// Build the factor for SPD matrix `a` whose rows/vectors are distributed by
/// `layout` (a must already be permuted so ranks own contiguous rows).
[[nodiscard]] FsaiBuildResult build_fsai_preconditioner(const CsrMatrix& a,
                                                        const Layout& layout,
                                                        const FsaiOptions& options);

/// Wrap a build result into the z = G^T (G r) preconditioner.
[[nodiscard]] std::unique_ptr<FactorizedPreconditioner> make_factorized_preconditioner(
    const FsaiBuildResult& build, const std::string& label);

/// Partitioned problem: the system matrix permuted to contiguous rank
/// ownership together with its layout and the permutation used.
struct PartitionedSystem {
  CsrMatrix matrix;             ///< P A P^T
  Layout layout;
  std::vector<index_t> perm;    ///< perm[old] = new
  double partition_imbalance = 1.0;
  offset_t edge_cut = 0;
};

/// Partition the adjacency graph of `a` into nranks parts (the METIS step of
/// the paper) and permute the system accordingly.
[[nodiscard]] PartitionedSystem partition_system(const CsrMatrix& a, rank_t nranks,
                                                 std::uint64_t seed = 12345);

}  // namespace fsaic
