// Post-filtering of the extended FSAI factor (Algorithm 2 step 4) with the
// paper's two strategies:
//
//  * static  — one Filter value for every process; an entry g_ij survives iff
//              |g_ij| >= Filter * sqrt(|g_ii * g_jj|)  (scale-independent
//              comparison against the diagonal, Chow 2001);
//  * dynamic — Algorithm 4: each overloaded process raises its own filter by
//              a doubling/bisection search until its share of pattern entries
//              is within tolerance of the average, eliminating the load
//              imbalance a purely local extension can introduce.
//
// By default only *added* entries (those outside the original pattern S) are
// candidates for removal, so filtering can only shrink an extension back
// toward plain FSAI, never below it.
#pragma once

#include <vector>

#include "dist/comm_stats.hpp"
#include "dist/layout.hpp"
#include "sparse/csr.hpp"

namespace fsaic {

struct FilterOptions {
  /// Base Filter value (the paper sweeps 0.01 / 0.05 / 0.1 / 0.2).
  value_t filter = 0.0;
  /// Protect the entries of the original pattern from filtering.
  bool only_added_entries = true;
  /// Dynamic filtering: tolerated relative per-process load deviation
  /// (Algorithm 4 uses 5%).
  double imbalance_tolerance = 0.05;
  /// Cap on bisection steps per process per round.
  int max_bisection_steps = 30;
  /// Rounds of the global (allreduce) rebalancing loop.
  int rebalance_rounds = 8;
};

struct FilterOutcome {
  /// Surviving pattern.
  SparsityPattern pattern;
  /// Per-rank filter actually applied (all equal for static filtering).
  std::vector<value_t> rank_filter;
  /// Per-rank surviving entry counts (rows owned by the rank).
  std::vector<offset_t> rank_entries;
  /// Total bisection iterations spent by the dynamic search.
  int bisection_iterations = 0;
};

/// Static filtering: drop small candidates of `g_ext` (entries outside
/// `base` when only_added_entries) using options.filter on every rank.
[[nodiscard]] FilterOutcome static_filter(const CsrMatrix& g_ext,
                                          const SparsityPattern& base,
                                          const Layout& layout,
                                          const FilterOptions& options);

/// Dynamic filtering (Algorithm 4): start every rank at options.filter and
/// raise it on overloaded ranks until per-rank entry counts are balanced.
/// The allreduce per round is recorded into `stats` when non-null.
[[nodiscard]] FilterOutcome dynamic_filter(const CsrMatrix& g_ext,
                                           const SparsityPattern& base,
                                           const Layout& layout,
                                           const FilterOptions& options,
                                           CommStats* stats = nullptr);

/// Imbalance index as defined in Section 5.3.3: average process entries over
/// maximum process entries (1 = balanced, smaller = worse).
[[nodiscard]] double imbalance_index(std::span<const offset_t> rank_entries);

/// Per-rank entry counts of a row-distributed pattern.
[[nodiscard]] std::vector<offset_t> rank_entry_counts(const SparsityPattern& p,
                                                      const Layout& layout);

}  // namespace fsaic
