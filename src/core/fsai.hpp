// FSAI factor computation (Algorithm 1, steps 2–3): given an SPD matrix A
// and a lower-triangular pattern S with full diagonal, compute the rows of G
// by solving the per-row Frobenius-minimization systems
//
//     A(S_i, S_i) ghat = e_i ,    g_i = ghat / sqrt(ghat[i]) ,
//
// which yields G with G A G^T ≈ I (Kolotilina–Yeremin / Chow). Each system
// is small, dense and SPD; rows are independent and solved in parallel
// through Executor::parallel_for.
//
// The local Gram matrices A(S_i, S_i) are assembled by a sparse *gather*:
// the columns of the pattern row are scattered into an epoch-tagged
// position-marker array, then each CSR row A(S_i[r], :) is streamed once and
// its entries land directly in dense row r — O(Σ nnz(A_row)) per pattern row
// instead of the m²·log(nnz) binary searches of entrywise CsrMatrix::at()
// lookups. Only the lower triangle is filled on the fast path (Cholesky
// reads nothing else); the full matrix is re-gathered for the rare fallback
// rows. The pre-gather entrywise path is kept as GramAssembly::Reference for
// differential testing — both produce bit-identical factors.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"
#include "sparse/pattern.hpp"

namespace fsaic {

class Executor;

struct FsaiFactorStats {
  /// Rows whose dense system fell back from Cholesky (still solved).
  index_t fallback_rows = 0;
  /// Rows whose system was singular; the row degraded to Jacobi scaling.
  index_t degenerate_rows = 0;
  /// Rows whose dense system was actually assembled and solved.
  index_t rows_solved = 0;
  /// Rows copied verbatim from a provisional factor (refine_fsai_factor
  /// only: the row's pattern survived filtering unchanged).
  index_t rows_reused = 0;
  /// Matrix entries scattered into Gram systems by the gather assembly
  /// (0 under GramAssembly::Reference).
  std::int64_t gram_entries_gathered = 0;

  bool operator==(const FsaiFactorStats&) const = default;
};

/// How the per-row dense systems A(S_i, S_i) are assembled.
enum class GramAssembly {
  /// Epoch-tagged scatter/gather over the CSR rows (the fast path).
  Gather,
  /// Entrywise binary-search at() lookups (the pre-gather reference path,
  /// kept for differential tests and the setup-speed bench).
  Reference,
};

[[nodiscard]] const char* to_string(GramAssembly assembly);

struct FsaiComputeOptions {
  GramAssembly assembly = GramAssembly::Gather;
  /// Row-loop engine (null -> the process-wide default executor). Factors
  /// are bit-identical for every executor and thread count.
  Executor* exec = nullptr;
};

/// Compute G on pattern `s` for SPD matrix `a`. `s` must be lower triangular,
/// square of a's size and contain every diagonal entry.
[[nodiscard]] CsrMatrix compute_fsai_factor(
    const CsrMatrix& a, const SparsityPattern& s,
    FsaiFactorStats* stats = nullptr, const FsaiComputeOptions& options = {});

/// Incremental refactorization after filtering: compute G on `s_final` given
/// the provisional factor `g_pre` (computed on a superset pattern). Each row
/// solve depends only on that row's pattern, so rows whose pattern row in
/// `s_final` equals their row in `g_pre` are copied verbatim and only the
/// rows filtering actually shrank are re-solved. Bit-identical to a full
/// compute_fsai_factor(a, s_final) — asserted by the differential tests.
[[nodiscard]] CsrMatrix refine_fsai_factor(
    const CsrMatrix& a, const CsrMatrix& g_pre, const SparsityPattern& s_final,
    FsaiFactorStats* stats = nullptr, const FsaiComputeOptions& options = {});

/// The a-priori pattern of Algorithm 1 steps 1–2: lower triangle of the
/// pattern of Ã^N (Ã = threshold(A, tau)), with the full diagonal inserted.
[[nodiscard]] SparsityPattern fsai_base_pattern(const CsrMatrix& a,
                                                int sparsity_level,
                                                value_t prefilter_threshold);

}  // namespace fsaic
