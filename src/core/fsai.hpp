// FSAI factor computation (Algorithm 1, steps 2–3): given an SPD matrix A
// and a lower-triangular pattern S with full diagonal, compute the rows of G
// by solving the per-row Frobenius-minimization systems
//
//     A(S_i, S_i) ghat = e_i ,    g_i = ghat / sqrt(ghat[i]) ,
//
// which yields G with G A G^T ≈ I (Kolotilina–Yeremin / Chow). Each system
// is small, dense and SPD; rows are independent and solved in parallel.
#pragma once

#include "sparse/csr.hpp"
#include "sparse/pattern.hpp"

namespace fsaic {

struct FsaiFactorStats {
  /// Rows whose dense system fell back from Cholesky (still solved).
  index_t fallback_rows = 0;
  /// Rows whose system was singular; the row degraded to Jacobi scaling.
  index_t degenerate_rows = 0;
};

/// Compute G on pattern `s` for SPD matrix `a`. `s` must be lower triangular,
/// square of a's size and contain every diagonal entry.
[[nodiscard]] CsrMatrix compute_fsai_factor(const CsrMatrix& a,
                                            const SparsityPattern& s,
                                            FsaiFactorStats* stats = nullptr);

/// The a-priori pattern of Algorithm 1 steps 1–2: lower triangle of the
/// pattern of Ã^N (Ã = threshold(A, tau)), with the full diagonal inserted.
[[nodiscard]] SparsityPattern fsai_base_pattern(const CsrMatrix& a,
                                                int sparsity_level,
                                                value_t prefilter_threshold);

}  // namespace fsaic
