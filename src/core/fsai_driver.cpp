#include "core/fsai_driver.hpp"

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "sparse/ops.hpp"

namespace fsaic {

const char* to_string(FilterStrategy strategy) {
  return strategy == FilterStrategy::Static ? "static" : "dynamic";
}

FsaiBuildResult build_fsai_preconditioner(const CsrMatrix& a, const Layout& layout,
                                          const FsaiOptions& options) {
  FSAIC_REQUIRE(a.rows() == layout.global_size(),
                "layout must cover the matrix rows");
  FsaiBuildResult result;
  TraceRecorder* const trace = options.trace;

  // Steps 1-2: a-priori pattern.
  {
    ScopedPhase phase(trace, "pattern_build", "setup");
    result.base_pattern =
        fsai_base_pattern(a, options.sparsity_level, options.prefilter_threshold);
  }

  // Step 3: cache-line extension.
  {
    ScopedPhase phase(trace, "pattern_extension", "setup");
    ExtensionResult ext = extend_pattern(result.base_pattern, layout,
                                         options.cache_line_bytes, options.extension);
    result.extended_pattern = std::move(ext.extended);
  }

  // Step 4: provisional values + filtering of added entries.
  const FsaiComputeOptions copts{options.assembly, options.exec};
  CsrMatrix g_pre;
  const bool filtering_active =
      options.filter > 0.0 && result.extended_pattern.nnz() > result.base_pattern.nnz();
  {
    ScopedPhase phase(trace, "filtering", "setup");
    if (filtering_active) {
      g_pre = compute_fsai_factor(a, result.extended_pattern,
                                  &result.provisional_factor_stats, copts);
      FilterOptions fopts;
      fopts.filter = options.filter;
      fopts.only_added_entries = options.filter_only_added;
      fopts.imbalance_tolerance = options.imbalance_tolerance;
      fopts.max_bisection_steps = options.max_bisection_steps;
      fopts.rebalance_rounds = options.rebalance_rounds;
      FilterOutcome outcome =
          options.filter_strategy == FilterStrategy::Static
              ? static_filter(g_pre, result.base_pattern, layout, fopts)
              : dynamic_filter(g_pre, result.base_pattern, layout, fopts,
                               &result.setup_comm);
      result.final_pattern = std::move(outcome.pattern);
      result.rank_filter = std::move(outcome.rank_filter);
      result.dynamic_bisection_iterations = outcome.bisection_iterations;
    } else {
      result.final_pattern = result.extended_pattern;
      result.rank_filter.assign(static_cast<std::size_t>(layout.nranks()),
                                options.filter);
    }
  }

  // Step 5: recompute values on the surviving pattern. When a provisional
  // factor exists, rows whose pattern filtering left untouched are copied
  // from it verbatim (each row solve depends only on that row's pattern, so
  // the result is bit-identical to a full recompute).
  {
    ScopedPhase phase(trace, "factorization", "setup");
    result.g = filtering_active && options.incremental_refactor
                   ? refine_fsai_factor(a, g_pre, result.final_pattern,
                                        &result.factor_stats, copts)
                   : compute_fsai_factor(a, result.final_pattern,
                                         &result.factor_stats, copts);
  }

  result.nnz_increase_pct =
      100.0 *
      static_cast<double>(result.final_pattern.nnz() - result.base_pattern.nnz()) /
      static_cast<double>(result.base_pattern.nnz());

  // Distribute G and G^T for the solver, and measure load balance of both.
  {
    ScopedPhase phase(trace, "distribute_factors", "setup");
    result.g_dist = DistCsr::distribute(result.g, layout);
    result.gt_dist = DistCsr::distribute(transpose(result.g), layout);
  }
  const auto g_counts = rank_entry_counts(result.final_pattern, layout);
  const auto gt_counts =
      rank_entry_counts(result.final_pattern.transposed(), layout);
  result.imbalance_g = imbalance_index(g_counts);
  result.imbalance_gt = imbalance_index(gt_counts);
  return result;
}

std::unique_ptr<FactorizedPreconditioner> make_factorized_preconditioner(
    const FsaiBuildResult& build, const std::string& label) {
  return std::make_unique<FactorizedPreconditioner>(build.g_dist, build.gt_dist,
                                                    label);
}

PartitionedSystem partition_system(const CsrMatrix& a, rank_t nranks,
                                   std::uint64_t seed) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "system matrix must be square");
  FSAIC_REQUIRE(nranks >= 1, "need at least one rank");
  PartitionedSystem sys;
  const Graph graph = Graph::from_pattern(a.pattern());
  PartitionOptions popts;
  popts.seed = seed;
  const auto part = partition_graph(graph, nranks, popts);
  const auto metrics = evaluate_partition(graph, part, nranks);
  sys.partition_imbalance = metrics.imbalance;
  sys.edge_cut = metrics.edge_cut;
  sys.perm = partition_permutation(part, nranks);
  sys.matrix = permute_symmetric(a, sys.perm);
  sys.layout = Layout::from_part_sizes(partition_sizes(part, nranks));
  return sys;
}

}  // namespace fsaic
