#include "core/pattern_extend.hpp"

#include <algorithm>

#include "dist/comm_scheme.hpp"

namespace fsaic {

const char* to_string(ExtensionMode mode) {
  switch (mode) {
    case ExtensionMode::None:
      return "fsai";
    case ExtensionMode::LocalOnly:
      return "fsaie";
    case ExtensionMode::CommAware:
      return "fsaie-comm";
    case ExtensionMode::FullHalo:
      return "fsaie-full";
  }
  return "?";
}

ExtensionResult extend_pattern(const SparsityPattern& s, const Layout& layout,
                               int cache_line_bytes, ExtensionMode mode) {
  FSAIC_REQUIRE(s.rows() == s.cols(), "pattern must be square");
  FSAIC_REQUIRE(s.rows() == layout.global_size(), "layout size mismatch");
  FSAIC_REQUIRE(s.is_lower_triangular(), "pattern of G must be lower triangular");
  FSAIC_REQUIRE(cache_line_bytes >= static_cast<int>(sizeof(value_t)) &&
                    cache_line_bytes % static_cast<int>(sizeof(value_t)) == 0,
                "cache line must hold a whole number of values");

  if (mode == ExtensionMode::None) {
    return {s, 0, 0};
  }

  const auto entries_per_line =
      static_cast<index_t>(cache_line_bytes / sizeof(value_t));
  const index_t n = s.rows();

  // Communication schemes of the initial pattern; halo admissions must stay
  // within both (Gx and G^T x keep their exchanges unchanged).
  CommScheme scheme_g;
  CommScheme scheme_gt;
  if (mode == ExtensionMode::CommAware) {
    scheme_g = CommScheme::from_pattern(s, layout);
    scheme_gt = CommScheme::from_pattern(s.transposed(), layout);
  }

  ExtensionResult result;
  std::vector<std::vector<index_t>> rows_out(static_cast<std::size_t>(n));
  // Scratch marker so duplicate candidates within a row are counted once.
  std::vector<index_t> last_row_touch(static_cast<std::size_t>(n), -1);

  for (index_t i = 0; i < n; ++i) {
    const rank_t p = layout.owner(i);
    const auto base = s.row(i);
    auto& out = rows_out[static_cast<std::size_t>(i)];
    out.assign(base.begin(), base.end());
    for (index_t j : base) {
      last_row_touch[static_cast<std::size_t>(j)] = i;
    }

    index_t prev_block = -1;
    for (index_t j : base) {
      const index_t block = j / entries_per_line;
      if (block == prev_block) continue;  // Alg. 3 line 6: block already done
      prev_block = block;
      const index_t k_begin = block * entries_per_line;
      const index_t k_end = std::min<index_t>(k_begin + entries_per_line, n);
      for (index_t k = k_begin; k < k_end; ++k) {
        if (k > i) break;  // keep G lower triangular
        if (last_row_touch[static_cast<std::size_t>(k)] == i) continue;  // present
        bool admit = false;
        if (layout.owns(p, k)) {
          admit = true;  // Alg. 3 line 12: local entries are always free
          if (admit) ++result.local_added;
        } else {
          switch (mode) {
            case ExtensionMode::LocalOnly:
              admit = false;
              break;
            case ExtensionMode::FullHalo:
              admit = true;
              break;
            case ExtensionMode::CommAware:
              // Alg. 3 line 13 generalized to both products (Section 3):
              // x_k must already flow to owner(i) for Gx, and x_i must
              // already flow to owner(k) for G^T x.
              admit = scheme_g.receives(p, k) &&
                      scheme_gt.receives(layout.owner(k), i);
              break;
            case ExtensionMode::None:
              admit = false;
              break;
          }
          if (admit) ++result.halo_added;
        }
        if (admit) {
          out.push_back(k);
          last_row_touch[static_cast<std::size_t>(k)] = i;
        }
      }
    }
  }

  result.extended = SparsityPattern::from_rows(n, n, std::move(rows_out));
  FSAIC_CHECK(result.extended.nnz() == s.nnz() + result.total_added(),
              "extension bookkeeping mismatch");
  return result;
}

}  // namespace fsaic
