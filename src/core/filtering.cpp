#include "core/filtering.hpp"

#include <algorithm>
#include <cmath>

namespace fsaic {

namespace {

/// Does entry (i, j) with value v survive filter f? Diagonal entries and
/// (under only_added) original-pattern entries always survive.
bool survives(index_t i, index_t j, value_t v, value_t f,
              const SparsityPattern& base, std::span<const value_t> diag,
              const FilterOptions& options) {
  if (i == j) return true;
  if (options.only_added_entries && base.contains(i, j)) return true;
  if (f <= 0.0) return true;
  const value_t scale = std::sqrt(std::abs(diag[static_cast<std::size_t>(i)] *
                                           diag[static_cast<std::size_t>(j)]));
  return std::abs(v) >= f * scale;
}

/// Surviving entries in the rows of rank p under filter f.
offset_t count_surviving(const CsrMatrix& g_ext, const SparsityPattern& base,
                         const Layout& layout, rank_t p, value_t f,
                         std::span<const value_t> diag,
                         const FilterOptions& options) {
  offset_t count = 0;
  for (index_t i = layout.begin(p); i < layout.end(p); ++i) {
    const auto cols = g_ext.row_cols(i);
    const auto vals = g_ext.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (survives(i, cols[k], vals[k], f, base, diag, options)) ++count;
    }
  }
  return count;
}

/// Assemble the surviving pattern given per-rank filters.
FilterOutcome assemble(const CsrMatrix& g_ext, const SparsityPattern& base,
                       const Layout& layout, std::vector<value_t> rank_filter,
                       std::span<const value_t> diag,
                       const FilterOptions& options) {
  const index_t n = g_ext.rows();
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> col_idx;
  col_idx.reserve(static_cast<std::size_t>(g_ext.nnz()));
  FilterOutcome out;
  out.rank_entries.assign(static_cast<std::size_t>(layout.nranks()), 0);
  for (rank_t p = 0; p < layout.nranks(); ++p) {
    const value_t f = rank_filter[static_cast<std::size_t>(p)];
    for (index_t i = layout.begin(p); i < layout.end(p); ++i) {
      const auto cols = g_ext.row_cols(i);
      const auto vals = g_ext.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (survives(i, cols[k], vals[k], f, base, diag, options)) {
          col_idx.push_back(cols[k]);
          ++out.rank_entries[static_cast<std::size_t>(p)];
        }
      }
      row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(col_idx.size());
    }
  }
  out.pattern = SparsityPattern(n, n, std::move(row_ptr), std::move(col_idx));
  out.rank_filter = std::move(rank_filter);
  return out;
}

}  // namespace

FilterOutcome static_filter(const CsrMatrix& g_ext, const SparsityPattern& base,
                            const Layout& layout, const FilterOptions& options) {
  FSAIC_REQUIRE(g_ext.rows() == layout.global_size(), "layout mismatch");
  const auto diag = g_ext.diagonal();
  std::vector<value_t> filters(static_cast<std::size_t>(layout.nranks()),
                               options.filter);
  return assemble(g_ext, base, layout, std::move(filters), diag, options);
}

FilterOutcome dynamic_filter(const CsrMatrix& g_ext, const SparsityPattern& base,
                             const Layout& layout, const FilterOptions& options,
                             CommStats* stats) {
  FSAIC_REQUIRE(g_ext.rows() == layout.global_size(), "layout mismatch");
  const auto diag = g_ext.diagonal();
  const rank_t nranks = layout.nranks();
  std::vector<value_t> filters(static_cast<std::size_t>(nranks), options.filter);
  std::vector<offset_t> counts(static_cast<std::size_t>(nranks), 0);
  int bisections = 0;

  for (int round = 0; round < options.rebalance_rounds; ++round) {
    // Each process computes its share, then the totals are exchanged with
    // one allreduce (Algorithm 4 line 3).
    offset_t total = 0;
    for (rank_t p = 0; p < nranks; ++p) {
      counts[static_cast<std::size_t>(p)] = count_surviving(
          g_ext, base, layout, p, filters[static_cast<std::size_t>(p)], diag,
          options);
      total += counts[static_cast<std::size_t>(p)];
    }
    if (stats != nullptr) stats->record_allreduce(sizeof(offset_t));

    const double avg = static_cast<double>(total) / static_cast<double>(nranks);
    const double target_hi = avg * (1.0 + options.imbalance_tolerance);
    bool any_overloaded = false;

    for (rank_t p = 0; p < nranks; ++p) {
      if (static_cast<double>(counts[static_cast<std::size_t>(p)]) <= target_hi) {
        continue;
      }
      any_overloaded = true;
      // Doubling phase (Algorithm 4 line 8): grow the filter until the
      // process's share is at or below the tolerated maximum.
      value_t lo = filters[static_cast<std::size_t>(p)];
      value_t hi = lo > 0.0 ? lo : 1e-8;
      int steps = 0;
      offset_t hi_count = counts[static_cast<std::size_t>(p)];
      while (steps < options.max_bisection_steps) {
        hi *= 2.0;
        ++steps;
        ++bisections;
        hi_count = count_surviving(g_ext, base, layout, p, hi, diag, options);
        if (static_cast<double>(hi_count) <= target_hi) break;
      }
      // Bisection phase (Algorithm 4 line 10): shrink back toward the
      // smallest filter that still meets the target, so no more entries are
      // dropped than balance requires.
      while (steps < options.max_bisection_steps && hi - lo > 1e-12 * hi) {
        const value_t mid = 0.5 * (lo + hi);
        ++steps;
        ++bisections;
        const offset_t mid_count =
            count_surviving(g_ext, base, layout, p, mid, diag, options);
        if (static_cast<double>(mid_count) <= target_hi) {
          hi = mid;
          hi_count = mid_count;
        } else {
          lo = mid;
        }
      }
      filters[static_cast<std::size_t>(p)] = hi;
      counts[static_cast<std::size_t>(p)] = hi_count;
    }
    if (!any_overloaded) break;
  }

  FilterOutcome out = assemble(g_ext, base, layout, std::move(filters), diag, options);
  out.bisection_iterations = bisections;
  return out;
}

double imbalance_index(std::span<const offset_t> rank_entries) {
  if (rank_entries.empty()) return 1.0;
  offset_t total = 0;
  offset_t maxval = 0;
  for (offset_t c : rank_entries) {
    total += c;
    maxval = std::max(maxval, c);
  }
  if (maxval == 0) return 1.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(rank_entries.size());
  return avg / static_cast<double>(maxval);
}

std::vector<offset_t> rank_entry_counts(const SparsityPattern& p,
                                        const Layout& layout) {
  FSAIC_REQUIRE(p.rows() == layout.global_size(), "layout mismatch");
  std::vector<offset_t> counts(static_cast<std::size_t>(layout.nranks()), 0);
  for (rank_t r = 0; r < layout.nranks(); ++r) {
    for (index_t i = layout.begin(r); i < layout.end(r); ++i) {
      counts[static_cast<std::size_t>(r)] += p.row_nnz(i);
    }
  }
  return counts;
}

}  // namespace fsaic
