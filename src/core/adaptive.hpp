// Adaptive (dynamic) FSAI pattern selection, the family of methods the
// paper's related-work section contrasts with its static approach (FSPAI /
// adaptive Block-FSAI): instead of fixing the pattern a priori, each row
// grows its pattern greedily by the entries with the largest residual of
// the local minimization — more powerful numerically, but costlier to set
// up and oblivious to communication (an adaptive entry can land anywhere,
// including halo columns that enlarge the exchange). The ablation bench
// quantifies exactly that trade-off against FSAIE-Comm.
#pragma once

#include "sparse/csr.hpp"
#include "sparse/pattern.hpp"

namespace fsaic {

struct AdaptiveOptions {
  /// Pattern-growth rounds per row.
  int growth_steps = 3;
  /// Entries added per round per row.
  index_t entries_per_step = 2;
};

/// Grow a lower-triangular pattern per row: starting from the diagonal,
/// repeatedly solve the local system A(S_i,S_i) g = e_i and admit the
/// candidates k (k < i, reachable through A from S_i) with the largest
/// |(A g)_k| residual — the first-order decrease of the Kaporin functional.
[[nodiscard]] SparsityPattern adaptive_fsai_pattern(const CsrMatrix& a,
                                                    const AdaptiveOptions& options = {});

}  // namespace fsaic
