// Small dense matrices for the per-row FSAI systems A(S_i, S_i) g = e_i.
//
// The paper solves these with MKL/OpenBLAS; this substrate implements the
// factorizations from scratch (see dense/factorizations.hpp). Column-major
// storage matches the access order of the right-looking factorizations.
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fsaic {

class DenseMatrix {
 public:
  DenseMatrix() = default;

  DenseMatrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {
    FSAIC_REQUIRE(rows >= 0 && cols >= 0, "shape must be non-negative");
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }

  /// Reshape to rows x cols with every entry reset to 0. Grow-only in terms
  /// of capacity: shrinking or same-size reshapes reuse the existing
  /// allocation, which is what lets the per-row FSAI/SPAI scratch matrices
  /// amortize away per-row heap traffic.
  void resize(index_t rows, index_t cols) {
    FSAIC_REQUIRE(rows >= 0 && cols >= 0, "shape must be non-negative");
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
                 0.0);
  }

  [[nodiscard]] value_t& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(j) * static_cast<std::size_t>(rows_) +
                 static_cast<std::size_t>(i)];
  }
  [[nodiscard]] value_t operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(j) * static_cast<std::size_t>(rows_) +
                 static_cast<std::size_t>(i)];
  }

  [[nodiscard]] std::span<value_t> data() { return data_; }
  [[nodiscard]] std::span<const value_t> data() const { return data_; }

  /// Column j as a contiguous span.
  [[nodiscard]] std::span<value_t> column(index_t j) {
    return {data_.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(rows_),
            static_cast<std::size_t>(rows_)};
  }

  [[nodiscard]] static DenseMatrix identity(index_t n) {
    DenseMatrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// y = (*this) * x.
  void multiply(std::span<const value_t> x, std::span<value_t> y) const;

  [[nodiscard]] bool is_symmetric(value_t tol = 0.0) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<value_t> data_;
};

}  // namespace fsaic
