// Dense factorizations for the local FSAI systems: Cholesky (the common
// case: A(S_i,S_i) is SPD when A is), LDL^T (robust to tiny pivots from
// aggressive thresholding), and partially pivoted LU (general fallback used
// by tests and the generators).
#pragma once

#include <span>

#include "dense/dense_matrix.hpp"

namespace fsaic {

/// In-place lower Cholesky: on success `a`'s lower triangle holds L with
/// A = L L^T. Returns false if a pivot is not safely positive (the matrix is
/// then left partially overwritten — callers must refactor a fresh copy).
[[nodiscard]] bool cholesky_factor(DenseMatrix& a);

/// Solve L L^T x = b given the Cholesky factor in the lower triangle of `a`.
void cholesky_solve(const DenseMatrix& a, std::span<value_t> b);

/// In-place LDL^T without pivoting: lower triangle holds unit L, diagonal
/// holds D. Returns false on an exactly-zero pivot.
[[nodiscard]] bool ldlt_factor(DenseMatrix& a);

/// Solve L D L^T x = b given an LDL^T factorization.
void ldlt_solve(const DenseMatrix& a, std::span<value_t> b);

/// In-place LU with partial pivoting; `pivots[k]` records the row swapped
/// into position k. Returns false if the matrix is numerically singular.
[[nodiscard]] bool lu_factor(DenseMatrix& a, std::span<index_t> pivots);

/// Solve P L U x = b given an LU factorization.
void lu_solve(const DenseMatrix& a, std::span<const index_t> pivots,
              std::span<value_t> b);

/// Driver used by the FSAI row solves: try Cholesky, fall back to LDL^T,
/// then to LU. `a` is consumed (overwritten). Returns false only if all
/// three factorizations fail (singular local system).
[[nodiscard]] bool solve_spd_system(DenseMatrix a, std::span<value_t> b);

}  // namespace fsaic
