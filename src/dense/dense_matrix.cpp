#include "dense/dense_matrix.hpp"

#include <cmath>

namespace fsaic {

void DenseMatrix::multiply(std::span<const value_t> x, std::span<value_t> y) const {
  FSAIC_REQUIRE(x.size() == static_cast<std::size_t>(cols_), "x size mismatch");
  FSAIC_REQUIRE(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  for (index_t i = 0; i < rows_; ++i) y[static_cast<std::size_t>(i)] = 0.0;
  for (index_t j = 0; j < cols_; ++j) {
    const value_t xj = x[static_cast<std::size_t>(j)];
    const auto* col = data_.data() +
                      static_cast<std::size_t>(j) * static_cast<std::size_t>(rows_);
    for (index_t i = 0; i < rows_; ++i) {
      y[static_cast<std::size_t>(i)] += col[i] * xj;
    }
  }
}

bool DenseMatrix::is_symmetric(value_t tol) const {
  if (rows_ != cols_) return false;
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t i = j + 1; i < rows_; ++i) {
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

}  // namespace fsaic
