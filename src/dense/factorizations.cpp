#include "dense/factorizations.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fsaic {

bool cholesky_factor(DenseMatrix& a) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const index_t n = a.rows();
  for (index_t k = 0; k < n; ++k) {
    value_t d = a(k, k);
    for (index_t j = 0; j < k; ++j) {
      d -= a(k, j) * a(k, j);
    }
    // Reject pivots that are non-positive or tiny relative to the original
    // diagonal: continuing would amplify rounding into garbage G rows.
    if (!(d > std::abs(a(k, k)) * 1e-14) || !std::isfinite(d)) return false;
    const value_t lkk = std::sqrt(d);
    a(k, k) = lkk;
    for (index_t i = k + 1; i < n; ++i) {
      value_t s = a(i, k);
      for (index_t j = 0; j < k; ++j) {
        s -= a(i, j) * a(k, j);
      }
      a(i, k) = s / lkk;
    }
  }
  return true;
}

void cholesky_solve(const DenseMatrix& a, std::span<value_t> b) {
  const index_t n = a.rows();
  FSAIC_REQUIRE(b.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  // Forward: L y = b.
  for (index_t i = 0; i < n; ++i) {
    value_t s = b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < i; ++j) {
      s -= a(i, j) * b[static_cast<std::size_t>(j)];
    }
    b[static_cast<std::size_t>(i)] = s / a(i, i);
  }
  // Backward: L^T x = y.
  for (index_t i = n - 1; i >= 0; --i) {
    value_t s = b[static_cast<std::size_t>(i)];
    for (index_t j = i + 1; j < n; ++j) {
      s -= a(j, i) * b[static_cast<std::size_t>(j)];
    }
    b[static_cast<std::size_t>(i)] = s / a(i, i);
  }
}

bool ldlt_factor(DenseMatrix& a) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "LDL^T requires a square matrix");
  const index_t n = a.rows();
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    for (index_t k = 0; k < j; ++k) {
      v[static_cast<std::size_t>(k)] = a(j, k) * a(k, k);
    }
    value_t d = a(j, j);
    for (index_t k = 0; k < j; ++k) {
      d -= a(j, k) * v[static_cast<std::size_t>(k)];
    }
    if (d == 0.0 || !std::isfinite(d)) return false;
    a(j, j) = d;
    for (index_t i = j + 1; i < n; ++i) {
      value_t s = a(i, j);
      for (index_t k = 0; k < j; ++k) {
        s -= a(i, k) * v[static_cast<std::size_t>(k)];
      }
      a(i, j) = s / d;
    }
  }
  return true;
}

void ldlt_solve(const DenseMatrix& a, std::span<value_t> b) {
  const index_t n = a.rows();
  FSAIC_REQUIRE(b.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  // L y = b (unit lower).
  for (index_t i = 0; i < n; ++i) {
    value_t s = b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < i; ++j) {
      s -= a(i, j) * b[static_cast<std::size_t>(j)];
    }
    b[static_cast<std::size_t>(i)] = s;
  }
  // D z = y.
  for (index_t i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i)] /= a(i, i);
  }
  // L^T x = z.
  for (index_t i = n - 1; i >= 0; --i) {
    value_t s = b[static_cast<std::size_t>(i)];
    for (index_t j = i + 1; j < n; ++j) {
      s -= a(j, i) * b[static_cast<std::size_t>(j)];
    }
    b[static_cast<std::size_t>(i)] = s;
  }
}

bool lu_factor(DenseMatrix& a, std::span<index_t> pivots) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  const index_t n = a.rows();
  FSAIC_REQUIRE(pivots.size() == static_cast<std::size_t>(n), "pivot size mismatch");
  for (index_t k = 0; k < n; ++k) {
    index_t p = k;
    value_t maxval = std::abs(a(k, k));
    for (index_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > maxval) {
        maxval = std::abs(a(i, k));
        p = i;
      }
    }
    if (maxval == 0.0 || !std::isfinite(maxval)) return false;
    pivots[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      for (index_t j = 0; j < n; ++j) {
        std::swap(a(k, j), a(p, j));
      }
    }
    const value_t inv = 1.0 / a(k, k);
    for (index_t i = k + 1; i < n; ++i) {
      const value_t lik = a(i, k) * inv;
      a(i, k) = lik;
      for (index_t j = k + 1; j < n; ++j) {
        a(i, j) -= lik * a(k, j);
      }
    }
  }
  return true;
}

void lu_solve(const DenseMatrix& a, std::span<const index_t> pivots,
              std::span<value_t> b) {
  const index_t n = a.rows();
  FSAIC_REQUIRE(b.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  for (index_t k = 0; k < n; ++k) {
    const index_t p = pivots[static_cast<std::size_t>(k)];
    if (p != k) std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(p)]);
  }
  for (index_t i = 0; i < n; ++i) {
    value_t s = b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < i; ++j) {
      s -= a(i, j) * b[static_cast<std::size_t>(j)];
    }
    b[static_cast<std::size_t>(i)] = s;
  }
  for (index_t i = n - 1; i >= 0; --i) {
    value_t s = b[static_cast<std::size_t>(i)];
    for (index_t j = i + 1; j < n; ++j) {
      s -= a(i, j) * b[static_cast<std::size_t>(j)];
    }
    b[static_cast<std::size_t>(i)] = s / a(i, i);
  }
}

bool solve_spd_system(DenseMatrix a, std::span<value_t> b) {
  DenseMatrix chol = a;
  if (cholesky_factor(chol)) {
    cholesky_solve(chol, b);
    return true;
  }
  DenseMatrix ldlt = a;
  if (ldlt_factor(ldlt)) {
    ldlt_solve(ldlt, b);
    return true;
  }
  std::vector<index_t> pivots(static_cast<std::size_t>(a.rows()));
  if (lu_factor(a, pivots)) {
    lu_solve(a, pivots, b);
    return true;
  }
  return false;
}

}  // namespace fsaic
