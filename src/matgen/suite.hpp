// The named test suites mirroring Tables 1 and 2 of the paper.
//
// Each entry carries the SuiteSparse matrix it stands in for, the problem
// type the paper lists, the paper's reference iteration counts (FSAI and
// FSAIE-Comm with dynamic Filter 0.01 on Skylake for the small set, Zen 2
// for the large set) and a generator producing a synthetic SPD matrix of the
// same class at roughly 1/30–1/100 of the original nonzeros, sized so the
// whole evaluation campaign runs on one core. EXPERIMENTS.md compares the
// paper's shape against the measured one per entry.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace fsaic {

struct SuiteEntry {
  std::string name;        ///< synthetic matrix name, "<paper>-sim"
  std::string paper_name;  ///< SuiteSparse matrix it mirrors
  std::string type;        ///< paper's "Type" column
  int paper_fsai_iters = 0;        ///< Table 1/2 FSAI iteration count
  int paper_fsaie_comm_iters = 0;  ///< Table 1/2 FSAIE-Comm iteration count
  double paper_nnz_pct = 0.0;      ///< Table 1/2 FSAIE-Comm "% NNZ"
  std::function<CsrMatrix()> generate;
};

/// The 39-matrix small suite (Table 1).
[[nodiscard]] const std::vector<SuiteEntry>& small_suite();

/// The 8-matrix large suite (Table 2).
[[nodiscard]] const std::vector<SuiteEntry>& large_suite();

/// Lookup by synthetic or paper name across both suites; throws if absent.
[[nodiscard]] const SuiteEntry& suite_entry(const std::string& name);

}  // namespace fsaic
