// Synthetic SPD matrix generators standing in for the SuiteSparse test set.
//
// Each generator produces a class of matrix matching a "Type" column of the
// paper's Tables 1-2: finite-difference stencils for the 2D/3D problems,
// Kronecker block expansions for the structural/shell problems (several
// degrees of freedom per node, dense small blocks — the signature of FE
// elasticity), graded-coefficient stencils for thermal/CFD, random graph
// Laplacians for circuit simulation, exponentially decaying bands for model
// reduction, and shifted operators for the quickly converging acoustics
// cases. All outputs are symmetric positive definite by construction
// (M-matrices, Kronecker products of SPD factors, or strictly diagonally
// dominant symmetric matrices).
#pragma once

#include <cstdint>

#include "dense/dense_matrix.hpp"
#include "sparse/csr.hpp"

namespace fsaic {

/// 5-point Laplacian on an nx x ny grid (Dirichlet).
[[nodiscard]] CsrMatrix poisson2d(index_t nx, index_t ny);

/// 9-point Laplacian on an nx x ny grid.
[[nodiscard]] CsrMatrix poisson2d_9pt(index_t nx, index_t ny);

/// 7-point Laplacian on an nx x ny x nz grid.
[[nodiscard]] CsrMatrix poisson3d(index_t nx, index_t ny, index_t nz);

/// 27-point Laplacian on an nx x ny x nz grid (dense 3D stencil, the
/// "nd"-series look). `shift` is the diagonal surplus over the neighbor
/// weights: small shifts produce the slowly converging nd-type systems.
[[nodiscard]] CsrMatrix stencil27(index_t nx, index_t ny, index_t nz,
                                  value_t shift = 0.5);

/// Randomly weighted 27-point graph Laplacian: edge weights are log-uniform
/// over `decades` orders of magnitude (like heterogeneous FE element
/// stiffnesses), diagonal = weighted degree + shift. Irregular weights give
/// the slowly converging, extension-responsive behaviour of the real
/// nd-series matrices that a constant-coefficient stencil lacks.
[[nodiscard]] CsrMatrix stencil27_weighted(index_t nx, index_t ny, index_t nz,
                                           value_t decades, value_t shift,
                                           std::uint64_t seed);

/// Anisotropic operator -eps u_xx - u_yy (5-point); small eps stretches the
/// spectrum like boundary-layer CFD meshes.
[[nodiscard]] CsrMatrix anisotropic2d(index_t nx, index_t ny, value_t eps);

/// Heterogeneous diffusion -div(k grad u) with coefficient k graded smoothly
/// from 1 to `contrast` across the domain (flux-harmonic 5-point scheme);
/// models thermal problems with material jumps.
[[nodiscard]] CsrMatrix graded2d(index_t nx, index_t ny, value_t contrast);

/// Same in 3D (7-point).
[[nodiscard]] CsrMatrix graded3d(index_t nx, index_t ny, index_t nz,
                                 value_t contrast);

/// A + shift * I.
[[nodiscard]] CsrMatrix shifted(const CsrMatrix& a, value_t shift);

/// Kronecker expansion A = S (x) B: every scalar entry becomes a d x d
/// block. SPD when S and B are SPD; produces the block-row structure of
/// multi-dof structural problems.
[[nodiscard]] CsrMatrix block_expand(const CsrMatrix& scalar, const DenseMatrix& block);

/// A small SPD coupling block: tridiagonal, diagonally dominant, with
/// off-diagonal strength `coupling` in (0, 0.5).
[[nodiscard]] DenseMatrix spd_block(index_t dim, value_t coupling);

/// Graph Laplacian of a random ring-plus-chords graph with ~avg_degree
/// chords per node, shifted by `shift` to make it SPD; irregular degrees
/// mimic circuit matrices.
[[nodiscard]] CsrMatrix random_laplacian(index_t n, index_t avg_degree,
                                         value_t shift, std::uint64_t seed);

/// Random symmetric strictly diagonally dominant matrix with ~extra_per_row
/// off-diagonals per row.
[[nodiscard]] CsrMatrix random_spd(index_t n, index_t extra_per_row,
                                   std::uint64_t seed);

/// Tile-major renumbering permutation of an nx x ny grid: tiles of tx x ty
/// nodes scanned row-major, nodes row-major inside each tile. Real FE/FV
/// meshes are numbered with spatial locality (element order, RCM, nested
/// dissection), so consecutive indices — and hence the x coefficients
/// sharing one cache line — form a spatial patch. Plain row-major grids are
/// the worst case for cache-line pattern extensions (index neighbours are
/// far apart in all but one direction); applying this permutation to the
/// synthetic grids restores the locality the SuiteSparse matrices have.
/// Returns perm with perm[old] = new, for use with permute_symmetric().
[[nodiscard]] std::vector<index_t> tile_permutation_2d(index_t nx, index_t ny,
                                                       index_t tx, index_t ty);

/// Same for an nx x ny x nz grid with tx x ty x tz tiles.
[[nodiscard]] std::vector<index_t> tile_permutation_3d(index_t nx, index_t ny,
                                                       index_t nz, index_t tx,
                                                       index_t ty, index_t tz);

/// Symmetric banded matrix with exponentially decaying off-diagonals
/// (|i-j| <= half_bandwidth), strictly diagonally dominant; the dense-band
/// look of model-reduction problems. `shift` is the diagonal surplus over
/// the off-diagonal row sum: small shifts give ill-conditioned systems (the
/// gyro-like cases), large shifts converge in a handful of iterations.
[[nodiscard]] CsrMatrix band_spd(index_t n, index_t half_bandwidth, value_t decay,
                                 value_t shift = 0.1);

}  // namespace fsaic
