#include "matgen/suite.hpp"

#include "common/error.hpp"
#include "matgen/generators.hpp"
#include "sparse/ops.hpp"

namespace fsaic {

namespace {

// Grid matrices are renumbered tile-major (see tile_permutation_2d): real
// FE/FV matrices carry mesh-locality in their ordering, so the x
// coefficients sharing a cache line form a spatial patch. Without this the
// synthetic row-major grids would be a pathological worst case for
// cache-line pattern extensions (index neighbours spatially far apart).
CsrMatrix tiled2(const CsrMatrix& m, index_t nx, index_t ny) {
  return permute_symmetric(m, tile_permutation_2d(nx, ny, 4, 2));
}

CsrMatrix tiled3(const CsrMatrix& m, index_t nx, index_t ny, index_t nz) {
  return permute_symmetric(m, tile_permutation_3d(nx, ny, nz, 2, 2, 2));
}

std::vector<SuiteEntry> build_small_suite() {
  std::vector<SuiteEntry> s;
  const auto add = [&](std::string paper, std::string type, int it_fsai,
                       int it_comm, double nnz_pct,
                       std::function<CsrMatrix()> gen) {
    s.push_back({paper + "-sim", std::move(paper), std::move(type), it_fsai,
                 it_comm, nnz_pct, std::move(gen)});
  };

  // 2D/3D problems: graded/plain stencils in three dimensions; the nd-series
  // are dense 27-point stencils with a small diagonal surplus.
  add("PFlow_742", "2D/3D Problem", 2775, 1340, 19.3,
      [] { return tiled3(graded3d(26, 26, 26, 1e4), 26, 26, 26); });
  add("nd24k", "2D/3D Problem", 553, 435, 14.26,
      [] { return tiled3(stencil27_weighted(16, 16, 16, 4.0, 1e-3, 24), 16, 16, 16); });
  add("Fault_639", "Structural Problem", 1923, 856, 27.69, [] {
    return block_expand(tiled2(graded2d(42, 42, 100.0), 42, 42),
                        spd_block(3, 0.3));
  });
  add("msdoor", "Structural Problem", 3599, 2748, 43.63, [] {
    return block_expand(tiled2(anisotropic2d(48, 48, 0.05), 48, 48),
                        spd_block(3, 0.3));
  });
  add("af_shell7", "Subsequent Structural Problem", 1800, 1528, 50.2, [] {
    return block_expand(tiled2(poisson2d(60, 40), 60, 40), spd_block(3, 0.25));
  });
  add("af_shell8", "Subsequent Structural Problem", 1800, 1528, 50.2, [] {
    return shifted(
        block_expand(tiled2(poisson2d(60, 40), 60, 40), spd_block(3, 0.25)),
        1e-3);
  });
  add("af_shell4", "Subsequent Structural Problem", 1800, 1530, 50.26, [] {
    return block_expand(tiled2(poisson2d(58, 42), 58, 42), spd_block(3, 0.25));
  });
  add("af_shell3", "Subsequent Structural Problem", 1800, 1530, 50.26, [] {
    return shifted(
        block_expand(tiled2(poisson2d(58, 42), 58, 42), spd_block(3, 0.25)),
        1e-3);
  });
  add("nd12k", "2D/3D Problem", 516, 403, 14.59,
      [] { return tiled3(stencil27_weighted(14, 14, 14, 4.0, 1e-3, 12), 14, 14, 14); });
  add("crankseg_2", "Structural Problem", 215, 160, 22.04, [] {
    return block_expand(tiled3(stencil27_weighted(7, 7, 7, 3.0, 3e-3, 72), 7, 7, 7),
                        spd_block(3, 0.3));
  });
  add("bmwcra_1", "Structural Problem", 2325, 1800, 40.16, [] {
    return block_expand(tiled2(graded2d(40, 40, 300.0), 40, 40),
                        spd_block(2, 0.35));
  });
  add("crankseg_1", "Structural Problem", 216, 161, 20.05, [] {
    return block_expand(tiled3(stencil27_weighted(6, 6, 6, 3.0, 3e-3, 71), 6, 6, 6),
                        spd_block(3, 0.3));
  });
  add("hood", "Structural Problem", 397, 315, 44.76, [] {
    return block_expand(tiled2(poisson2d(36, 36), 36, 36), spd_block(3, 0.25));
  });
  add("thermal2", "Thermal Problem", 2799, 2113, 166.53,
      [] { return tiled2(graded2d(150, 150, 1e5), 150, 150); });
  add("G3_circuit", "Circuit Simulation Problem", 1715, 1283, 219.14,
      [] { return random_laplacian(12000, 3, 0.05, 15); });
  add("nd6k", "2D/3D Problem", 476, 364, 17.58,
      [] { return tiled3(stencil27_weighted(12, 12, 12, 4.0, 1e-3, 6), 12, 12, 12); });
  add("consph", "2D/3D Problem", 634, 562, 46.19, [] {
    return block_expand(tiled3(poisson3d(9, 9, 9), 9, 9, 9), spd_block(3, 0.3));
  });
  add("boneS01", "Model Reduction Problem", 847, 779, 51.92,
      [] { return band_spd(4000, 12, 0.55, 0.01); });
  add("tmt_sym", "Electromagnetics Problem", 2319, 1883, 195.69,
      [] { return tiled2(anisotropic2d(120, 120, 0.25), 120, 120); });
  add("ecology2", "2D/3D Problem", 3428, 2502, 278.05,
      [] { return tiled2(graded2d(130, 130, 1e6), 130, 130); });
  add("shipsec5", "Structural Problem", 1618, 1424, 29.05, [] {
    return block_expand(tiled2(poisson2d_9pt(24, 24), 24, 24),
                        spd_block(3, 0.25));
  });
  add("offshore", "Electromagnetics Problem", 794, 635, 56.89,
      [] { return tiled3(graded3d(12, 12, 12, 1e3), 12, 12, 12); });
  add("smt", "Structural Problem", 882, 485, 31.15, [] {
    return block_expand(tiled3(stencil27_weighted(6, 6, 6, 3.0, 1e-3, 23), 6, 6, 6),
                        spd_block(2, 0.3));
  });
  add("parabolic_fem", "Computational Fluid Dynamics Problem", 1481, 1076,
      116.87, [] { return tiled2(anisotropic2d(100, 100, 0.3), 100, 100); });
  add("Dubcova3", "2D/3D Problem", 152, 117, 99.67,
      [] { return tiled2(poisson2d_9pt(45, 45), 45, 45); });
  add("shipsec1", "Structural Problem", 1987, 1878, 30.99, [] {
    return block_expand(tiled2(poisson2d_9pt(22, 22), 22, 22),
                        spd_block(3, 0.25));
  });
  add("nd3k", "2D/3D Problem", 406, 316, 17.55,
      [] { return tiled3(stencil27_weighted(10, 10, 10, 4.0, 1e-3, 3), 10, 10, 10); });
  add("cfd2", "Computational Fluid Dynamics Problem", 2590, 1853, 115.1,
      [] { return tiled2(anisotropic2d(90, 90, 0.2), 90, 90); });
  add("nasasrb", "Structural Problem", 2765, 2629, 17.6, [] {
    return block_expand(tiled2(anisotropic2d(32, 32, 0.1), 32, 32),
                        spd_block(3, 0.3));
  });
  add("oilpan", "Structural Problem", 1554, 1285, 22.28, [] {
    return block_expand(tiled2(graded2d(28, 28, 50.0), 28, 28),
                        spd_block(3, 0.25));
  });
  add("cfd1", "Computational Fluid Dynamics Problem", 933, 750, 104.75,
      [] { return tiled2(anisotropic2d(70, 70, 0.3), 70, 70); });
  add("qa8fm", "Acoustics Problem", 13, 11, 29.27,
      [] { return shifted(tiled3(poisson3d(12, 12, 12), 12, 12, 12), 10.0); });
  add("2cubes_sphere", "Electromagnetics Problem", 12, 11, 13.37, [] {
    return shifted(tiled3(graded3d(10, 10, 10, 10.0), 10, 10, 10), 8.0);
  });
  add("thermomech_dM", "Thermal Problem", 9, 9, 6.21,
      [] { return shifted(tiled2(graded2d(45, 45, 10.0), 45, 45), 6.0); });
  add("msc10848", "Structural Problem", 711, 482, 28.72, [] {
    return block_expand(tiled3(stencil27_weighted(7, 7, 7, 3.0, 1e-3, 35), 7, 7, 7),
                        spd_block(3, 0.28));
  });
  add("Dubcova2", "2D/3D Problem", 155, 112, 160.15,
      [] { return tiled2(poisson2d_9pt(32, 32), 32, 32); });
  add("gyro_k", "Duplicate Model Reduction Problem", 4363, 3116, 39.28,
      [] { return band_spd(6000, 10, 0.5, 0.0008); });
  add("gyro", "Model Reduction Problem", 4382, 3071, 39.28,
      [] { return band_spd(6100, 10, 0.5, 0.0009); });
  add("olafu", "Structural Problem", 1768, 1324, 21.45, [] {
    return block_expand(tiled2(anisotropic2d(24, 24, 0.1), 24, 24),
                        spd_block(3, 0.3));
  });
  FSAIC_CHECK(s.size() == 39, "small suite must have 39 entries");
  return s;
}

std::vector<SuiteEntry> build_large_suite() {
  std::vector<SuiteEntry> s;
  const auto add = [&](std::string paper, std::string type, int it_fsai,
                       int it_comm, double nnz_pct,
                       std::function<CsrMatrix()> gen) {
    s.push_back({paper + "-sim", std::move(paper), std::move(type), it_fsai,
                 it_comm, nnz_pct, std::move(gen)});
  };
  add("Queen_4147", "2D/3D Problem", 5735, 4755, 13.54,
      [] { return tiled3(stencil27_weighted(24, 24, 24, 4.0, 1e-3, 41), 24, 24, 24); });
  add("Bump_2911", "2D/3D Problem", 2297, 2206, 9.14,
      [] { return tiled3(graded3d(40, 40, 40, 1e4), 40, 40, 40); });
  add("Flan_1565", "Structural Problem", 5299, 4578, 17.9, [] {
    return block_expand(tiled2(poisson2d_9pt(60, 60), 60, 60),
                        spd_block(3, 0.25));
  });
  add("audikw_1", "Structural Problem", 1453, 1114, 62.56, [] {
    return block_expand(tiled3(stencil27_weighted(12, 12, 12, 3.0, 3e-3, 1), 12, 12, 12),
                        spd_block(3, 0.3));
  });
  add("Geo_1438", "Structural Problem", 715, 654, 25.07, [] {
    return block_expand(tiled3(poisson3d(16, 16, 16), 16, 16, 16),
                        spd_block(3, 0.3));
  });
  add("Hook_1498", "Structural Problem", 2186, 1877, 58.64, [] {
    return block_expand(tiled2(graded2d(70, 70, 100.0), 70, 70),
                        spd_block(3, 0.28));
  });
  add("bone010", "Model Reduction Problem", 7980, 6688, 46.9,
      [] { return band_spd(12000, 14, 0.6, 0.0012); });
  add("ldoor", "Structural Problem", 1064, 860, 37.9, [] {
    return block_expand(tiled2(poisson2d(64, 64), 64, 64), spd_block(3, 0.25));
  });
  FSAIC_CHECK(s.size() == 8, "large suite must have 8 entries");
  return s;
}

}  // namespace

const std::vector<SuiteEntry>& small_suite() {
  static const std::vector<SuiteEntry> suite = build_small_suite();
  return suite;
}

const std::vector<SuiteEntry>& large_suite() {
  static const std::vector<SuiteEntry> suite = build_large_suite();
  return suite;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const auto* suite : {&small_suite(), &large_suite()}) {
    for (const auto& entry : *suite) {
      if (entry.name == name || entry.paper_name == name) return entry;
    }
  }
  FSAIC_REQUIRE(false, "unknown suite entry: " + name);
  static SuiteEntry unreachable;
  return unreachable;
}

}  // namespace fsaic
