#include "matgen/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "sparse/coo.hpp"

namespace fsaic {

namespace {

index_t grid_id2(index_t nx, index_t x, index_t y) { return y * nx + x; }

index_t grid_id3(index_t nx, index_t ny, index_t x, index_t y, index_t z) {
  return (z * ny + y) * nx + x;
}

}  // namespace

CsrMatrix poisson2d(index_t nx, index_t ny) {
  FSAIC_REQUIRE(nx >= 1 && ny >= 1, "grid must be non-empty");
  CooBuilder b(nx * ny, nx * ny);
  b.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) * 5);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t id = grid_id2(nx, x, y);
      b.add(id, id, 4.0);
      if (x > 0) b.add(id, grid_id2(nx, x - 1, y), -1.0);
      if (x < nx - 1) b.add(id, grid_id2(nx, x + 1, y), -1.0);
      if (y > 0) b.add(id, grid_id2(nx, x, y - 1), -1.0);
      if (y < ny - 1) b.add(id, grid_id2(nx, x, y + 1), -1.0);
    }
  }
  return b.to_csr();
}

CsrMatrix poisson2d_9pt(index_t nx, index_t ny) {
  FSAIC_REQUIRE(nx >= 1 && ny >= 1, "grid must be non-empty");
  CooBuilder b(nx * ny, nx * ny);
  b.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) * 9);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t id = grid_id2(nx, x, y);
      b.add(id, id, 10.0 / 3.0);
      for (index_t dy = -1; dy <= 1; ++dy) {
        for (index_t dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const index_t x2 = x + dx;
          const index_t y2 = y + dy;
          if (x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny) continue;
          // Mehrstellen weights: -2/3 orthogonal, -1/6 diagonal.
          const value_t w = (dx == 0 || dy == 0) ? -2.0 / 3.0 : -1.0 / 6.0;
          b.add(id, grid_id2(nx, x2, y2), w);
        }
      }
    }
  }
  return b.to_csr();
}

CsrMatrix poisson3d(index_t nx, index_t ny, index_t nz) {
  FSAIC_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "grid must be non-empty");
  const index_t n = nx * ny * nz;
  CooBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(n) * 7);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t id = grid_id3(nx, ny, x, y, z);
        b.add(id, id, 6.0);
        if (x > 0) b.add(id, grid_id3(nx, ny, x - 1, y, z), -1.0);
        if (x < nx - 1) b.add(id, grid_id3(nx, ny, x + 1, y, z), -1.0);
        if (y > 0) b.add(id, grid_id3(nx, ny, x, y - 1, z), -1.0);
        if (y < ny - 1) b.add(id, grid_id3(nx, ny, x, y + 1, z), -1.0);
        if (z > 0) b.add(id, grid_id3(nx, ny, x, y, z - 1), -1.0);
        if (z < nz - 1) b.add(id, grid_id3(nx, ny, x, y, z + 1), -1.0);
      }
    }
  }
  return b.to_csr();
}

CsrMatrix stencil27(index_t nx, index_t ny, index_t nz, value_t shift) {
  FSAIC_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "grid must be non-empty");
  FSAIC_REQUIRE(shift > 0.0, "shift must be positive for definiteness");
  const index_t n = nx * ny * nz;
  CooBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(n) * 27);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t id = grid_id3(nx, ny, x, y, z);
        value_t diag = 0.0;
        for (index_t dz = -1; dz <= 1; ++dz) {
          for (index_t dy = -1; dy <= 1; ++dy) {
            for (index_t dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const index_t x2 = x + dx;
              const index_t y2 = y + dy;
              const index_t z2 = z + dz;
              if (x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny || z2 < 0 || z2 >= nz) {
                diag += 1.0;  // Dirichlet contribution keeps dominance
                continue;
              }
              b.add(id, grid_id3(nx, ny, x2, y2, z2), -1.0);
              diag += 1.0;
            }
          }
        }
        b.add(id, id, diag + shift);
      }
    }
  }
  return b.to_csr();
}

CsrMatrix stencil27_weighted(index_t nx, index_t ny, index_t nz,
                             value_t decades, value_t shift,
                             std::uint64_t seed) {
  FSAIC_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "grid must be non-empty");
  FSAIC_REQUIRE(decades >= 0.0, "decades must be non-negative");
  FSAIC_REQUIRE(shift > 0.0, "shift must be positive for definiteness");
  Rng rng(seed);
  const index_t n = nx * ny * nz;
  CooBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(n) * 27);
  std::vector<value_t> diag(static_cast<std::size_t>(n), shift);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t id = grid_id3(nx, ny, x, y, z);
        for (index_t dz = -1; dz <= 1; ++dz) {
          for (index_t dy = -1; dy <= 1; ++dy) {
            for (index_t dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const index_t x2 = x + dx;
              const index_t y2 = y + dy;
              const index_t z2 = z + dz;
              if (x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny || z2 < 0 ||
                  z2 >= nz) {
                continue;
              }
              const index_t id2 = grid_id3(nx, ny, x2, y2, z2);
              if (id2 < id) continue;  // each undirected edge once
              const value_t w =
                  std::pow(10.0, -decades * rng.next_uniform());
              b.add_symmetric(id, id2, -w);
              diag[static_cast<std::size_t>(id)] += w;
              diag[static_cast<std::size_t>(id2)] += w;
            }
          }
        }
      }
    }
  }
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, diag[static_cast<std::size_t>(i)]);
  }
  return b.to_csr();
}

CsrMatrix anisotropic2d(index_t nx, index_t ny, value_t eps) {
  FSAIC_REQUIRE(nx >= 1 && ny >= 1, "grid must be non-empty");
  FSAIC_REQUIRE(eps > 0.0, "anisotropy must be positive");
  CooBuilder b(nx * ny, nx * ny);
  b.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) * 5);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t id = grid_id2(nx, x, y);
      b.add(id, id, 2.0 * eps + 2.0);
      if (x > 0) b.add(id, grid_id2(nx, x - 1, y), -eps);
      if (x < nx - 1) b.add(id, grid_id2(nx, x + 1, y), -eps);
      if (y > 0) b.add(id, grid_id2(nx, x, y - 1), -1.0);
      if (y < ny - 1) b.add(id, grid_id2(nx, x, y + 1), -1.0);
    }
  }
  return b.to_csr();
}

namespace {

/// Smoothly graded coefficient in [1, contrast] along x (plus a mild y ripple
/// so the field is genuinely 2D/3D).
value_t graded_coeff(value_t xfrac, value_t yfrac, value_t contrast) {
  const value_t base = std::pow(contrast, xfrac);
  return base * (1.0 + 0.25 * std::sin(6.28318530717958647 * yfrac));
}

value_t harmonic(value_t a, value_t b) { return 2.0 * a * b / (a + b); }

}  // namespace

CsrMatrix graded2d(index_t nx, index_t ny, value_t contrast) {
  FSAIC_REQUIRE(nx >= 1 && ny >= 1, "grid must be non-empty");
  FSAIC_REQUIRE(contrast >= 1.0, "contrast must be >= 1");
  CooBuilder b(nx * ny, nx * ny);
  b.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) * 5);
  const auto k = [&](index_t x, index_t y) {
    return graded_coeff(static_cast<value_t>(x) / static_cast<value_t>(nx),
                        static_cast<value_t>(y) / static_cast<value_t>(ny),
                        contrast);
  };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t id = grid_id2(nx, x, y);
      value_t diag = 0.0;
      const value_t kc = k(x, y);
      const auto flux = [&](index_t x2, index_t y2) {
        const value_t w = harmonic(kc, k(x2, y2));
        b.add(id, grid_id2(nx, x2, y2), -w);
        diag += w;
      };
      if (x > 0) flux(x - 1, y);
      if (x < nx - 1) flux(x + 1, y);
      if (y > 0) flux(x, y - 1);
      if (y < ny - 1) flux(x, y + 1);
      // Dirichlet boundary flux keeps the operator definite.
      if (x == 0 || x == nx - 1) diag += kc;
      if (y == 0 || y == ny - 1) diag += kc;
      b.add(id, id, diag);
    }
  }
  return b.to_csr();
}

CsrMatrix graded3d(index_t nx, index_t ny, index_t nz, value_t contrast) {
  FSAIC_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "grid must be non-empty");
  FSAIC_REQUIRE(contrast >= 1.0, "contrast must be >= 1");
  const index_t n = nx * ny * nz;
  CooBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(n) * 7);
  const auto k = [&](index_t x, index_t y, index_t z) {
    return graded_coeff(static_cast<value_t>(x) / static_cast<value_t>(nx),
                        static_cast<value_t>(y + z) /
                            static_cast<value_t>(ny + nz),
                        contrast);
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t id = grid_id3(nx, ny, x, y, z);
        value_t diag = 0.0;
        const value_t kc = k(x, y, z);
        const auto flux = [&](index_t x2, index_t y2, index_t z2) {
          const value_t w = harmonic(kc, k(x2, y2, z2));
          b.add(id, grid_id3(nx, ny, x2, y2, z2), -w);
          diag += w;
        };
        if (x > 0) flux(x - 1, y, z);
        if (x < nx - 1) flux(x + 1, y, z);
        if (y > 0) flux(x, y - 1, z);
        if (y < ny - 1) flux(x, y + 1, z);
        if (z > 0) flux(x, y, z - 1);
        if (z < nz - 1) flux(x, y, z + 1);
        if (x == 0 || x == nx - 1) diag += kc;
        if (y == 0 || y == ny - 1) diag += kc;
        if (z == 0 || z == nz - 1) diag += kc;
        b.add(id, id, diag);
      }
    }
  }
  return b.to_csr();
}

CsrMatrix shifted(const CsrMatrix& a, value_t shift) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "shift requires a square matrix");
  CooBuilder b(a.rows(), a.cols());
  b.reserve(static_cast<std::size_t>(a.nnz()) + static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      b.add(i, cols[k], vals[k]);
    }
    b.add(i, i, shift);
  }
  return b.to_csr();
}

CsrMatrix block_expand(const CsrMatrix& scalar, const DenseMatrix& block) {
  FSAIC_REQUIRE(scalar.rows() == scalar.cols(), "scalar factor must be square");
  FSAIC_REQUIRE(block.rows() == block.cols(), "block factor must be square");
  const index_t d = block.rows();
  const index_t n = scalar.rows() * d;
  CooBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(scalar.nnz()) * static_cast<std::size_t>(d) *
            static_cast<std::size_t>(d));
  for (index_t i = 0; i < scalar.rows(); ++i) {
    const auto cols = scalar.row_cols(i);
    const auto vals = scalar.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      const value_t s = vals[k];
      for (index_t r = 0; r < d; ++r) {
        for (index_t c = 0; c < d; ++c) {
          const value_t v = s * block(r, c);
          if (v != 0.0) b.add(i * d + r, j * d + c, v);
        }
      }
    }
  }
  return b.to_csr();
}

DenseMatrix spd_block(index_t dim, value_t coupling) {
  FSAIC_REQUIRE(dim >= 1, "block dimension must be positive");
  FSAIC_REQUIRE(coupling > 0.0 && coupling < 0.5,
                "coupling must be in (0, 0.5) for diagonal dominance");
  DenseMatrix b(dim, dim);
  for (index_t i = 0; i < dim; ++i) {
    b(i, i) = 1.0 + 0.1 * static_cast<value_t>(i % 3);
    if (i > 0) {
      b(i, i - 1) = coupling;
      b(i - 1, i) = coupling;
    }
  }
  return b;
}

CsrMatrix random_laplacian(index_t n, index_t avg_degree, value_t shift,
                           std::uint64_t seed) {
  FSAIC_REQUIRE(n >= 3, "graph needs at least 3 nodes");
  FSAIC_REQUIRE(avg_degree >= 0, "degree must be non-negative");
  FSAIC_REQUIRE(shift > 0.0, "shift must be positive for definiteness");
  Rng rng(seed);
  CooBuilder b(n, n);
  std::vector<value_t> degree(static_cast<std::size_t>(n), 0.0);
  const auto add_edge = [&](index_t u, index_t v, value_t w) {
    if (u == v) return;
    b.add_symmetric(u, v, -w);
    degree[static_cast<std::size_t>(u)] += w;
    degree[static_cast<std::size_t>(v)] += w;
  };
  // Ring backbone keeps the graph connected.
  for (index_t i = 0; i < n; ++i) {
    add_edge(i, (i + 1) % n, 1.0);
  }
  // Random chords: skewed endpoint choice produces the irregular degree
  // distribution typical of circuit netlists.
  const std::int64_t chords =
      static_cast<std::int64_t>(n) * avg_degree / 2;
  for (std::int64_t e = 0; e < chords; ++e) {
    const index_t u = rng.next_index(n);
    const index_t v = static_cast<index_t>(
        static_cast<std::int64_t>(u + 1 + rng.next_index(std::max<index_t>(1, n / 8))) % n);
    add_edge(u, v, 0.5 + rng.next_uniform());
  }
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, degree[static_cast<std::size_t>(i)] + shift);
  }
  return b.to_csr();
}

CsrMatrix random_spd(index_t n, index_t extra_per_row, std::uint64_t seed) {
  FSAIC_REQUIRE(n >= 2, "matrix must have at least 2 rows");
  Rng rng(seed);
  CooBuilder b(n, n);
  std::vector<value_t> rowsum(static_cast<std::size_t>(n), 0.0);
  const std::int64_t pairs = static_cast<std::int64_t>(n) * extra_per_row / 2;
  for (std::int64_t e = 0; e < pairs; ++e) {
    const index_t i = rng.next_index(n);
    const index_t j = rng.next_index(n);
    if (i == j) continue;
    const value_t v = rng.next_uniform(-1.0, 1.0);
    b.add_symmetric(i, j, v);
    rowsum[static_cast<std::size_t>(i)] += std::abs(v);
    rowsum[static_cast<std::size_t>(j)] += std::abs(v);
  }
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, rowsum[static_cast<std::size_t>(i)] + 1.0);
  }
  return b.to_csr();
}

std::vector<index_t> tile_permutation_2d(index_t nx, index_t ny, index_t tx,
                                         index_t ty) {
  FSAIC_REQUIRE(nx >= 1 && ny >= 1, "grid must be non-empty");
  FSAIC_REQUIRE(tx >= 1 && ty >= 1, "tiles must be non-empty");
  std::vector<index_t> perm(static_cast<std::size_t>(nx) *
                            static_cast<std::size_t>(ny));
  index_t next = 0;
  for (index_t ty0 = 0; ty0 < ny; ty0 += ty) {
    for (index_t tx0 = 0; tx0 < nx; tx0 += tx) {
      for (index_t y = ty0; y < std::min(ty0 + ty, ny); ++y) {
        for (index_t x = tx0; x < std::min(tx0 + tx, nx); ++x) {
          perm[static_cast<std::size_t>(grid_id2(nx, x, y))] = next++;
        }
      }
    }
  }
  return perm;
}

std::vector<index_t> tile_permutation_3d(index_t nx, index_t ny, index_t nz,
                                         index_t tx, index_t ty, index_t tz) {
  FSAIC_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "grid must be non-empty");
  FSAIC_REQUIRE(tx >= 1 && ty >= 1 && tz >= 1, "tiles must be non-empty");
  std::vector<index_t> perm(static_cast<std::size_t>(nx) *
                            static_cast<std::size_t>(ny) *
                            static_cast<std::size_t>(nz));
  index_t next = 0;
  for (index_t tz0 = 0; tz0 < nz; tz0 += tz) {
    for (index_t ty0 = 0; ty0 < ny; ty0 += ty) {
      for (index_t tx0 = 0; tx0 < nx; tx0 += tx) {
        for (index_t z = tz0; z < std::min(tz0 + tz, nz); ++z) {
          for (index_t y = ty0; y < std::min(ty0 + ty, ny); ++y) {
            for (index_t x = tx0; x < std::min(tx0 + tx, nx); ++x) {
              perm[static_cast<std::size_t>(grid_id3(nx, ny, x, y, z))] = next++;
            }
          }
        }
      }
    }
  }
  return perm;
}

CsrMatrix band_spd(index_t n, index_t half_bandwidth, value_t decay,
                   value_t shift) {
  FSAIC_REQUIRE(n >= 1, "matrix must be non-empty");
  FSAIC_REQUIRE(half_bandwidth >= 0, "bandwidth must be non-negative");
  FSAIC_REQUIRE(decay > 0.0 && decay < 1.0, "decay must be in (0, 1)");
  FSAIC_REQUIRE(shift > 0.0, "shift must be positive for definiteness");
  CooBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(n) *
            (2 * static_cast<std::size_t>(half_bandwidth) + 1));
  for (index_t i = 0; i < n; ++i) {
    value_t offsum = 0.0;
    for (index_t d = 1; d <= half_bandwidth; ++d) {
      const value_t v = -std::pow(decay, static_cast<value_t>(d));
      if (i >= d) {
        b.add(i, i - d, v);
        offsum += std::abs(v);
      }
      if (i + d < n) {
        b.add(i, i + d, v);
        offsum += std::abs(v);
      }
    }
    b.add(i, i, offsum + shift);
  }
  return b.to_csr();
}

}  // namespace fsaic
