// Deterministic pseudo-random number generation.
//
// All stochastic inputs in this reproduction (right-hand sides, random graph
// edges, perturbations) come from this xoshiro256** generator so that every
// experiment is bit-reproducible across runs and machines. We deliberately do
// not use std::mt19937 + std::uniform_real_distribution because their output
// streams are not guaranteed identical across standard library versions.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace fsaic {

/// xoshiro256** by Blackman & Vigna (public domain reference constants).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, the initializer recommended by the authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  value_t next_uniform() {
    return static_cast<value_t>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  value_t next_uniform(value_t lo, value_t hi) {
    return lo + (hi - lo) * next_uniform();
  }

  /// Uniform integer in [0, n). n must be positive.
  index_t next_index(index_t n) {
    return static_cast<index_t>(next_u64() % static_cast<std::uint64_t>(n));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace fsaic
