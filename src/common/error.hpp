// Error handling: a library exception type plus invariant-check macros.
//
// Public API entry points validate their inputs with FSAIC_REQUIRE (always
// active, throws fsaic::Error). Internal invariants use FSAIC_CHECK, which is
// also always active: the cost of these checks is negligible next to the
// numerical kernels, and silent corruption in a solver is far more expensive
// than a branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fsaic {

/// Exception thrown on precondition violations and unrecoverable errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace fsaic

/// Validate a caller-supplied precondition; throws fsaic::Error on failure.
#define FSAIC_REQUIRE(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::fsaic::detail::throw_error("precondition", #cond, __FILE__,    \
                                   __LINE__, (msg));                   \
    }                                                                  \
  } while (false)

/// Validate an internal invariant; throws fsaic::Error on failure.
#define FSAIC_CHECK(cond, msg)                                         \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::fsaic::detail::throw_error("invariant", #cond, __FILE__,       \
                                   __LINE__, (msg));                   \
    }                                                                  \
  } while (false)
