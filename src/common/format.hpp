// Small string-formatting helpers shared by the bench harness and examples.
#pragma once

#include <cstdio>
#include <string>

namespace fsaic {

/// printf-style formatting into a std::string.
template <typename... Args>
std::string strformat(const char* fmt, Args... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

/// Scientific notation with two significant decimals, like the paper tables
/// (e.g. "1.43e+00").
inline std::string sci2(double v) { return strformat("%.2e", v); }

/// Fixed-point percentage with two decimals (e.g. "17.98").
inline std::string pct2(double v) { return strformat("%.2f", v); }

}  // namespace fsaic
