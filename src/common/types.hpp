// Fundamental scalar and index types used throughout the library.
#pragma once

#include <cstdint>

namespace fsaic {

/// Row/column index type. Matrices in this reproduction are well below 2^31
/// rows and nonzeros, so a 32-bit signed index keeps CSR arrays compact (the
/// dominant memory stream in SpMV) while still allowing -1 sentinels.
using index_t = std::int32_t;

/// Nonzero-count type. Offsets into value/column arrays (CSR row pointers)
/// use 64 bits so that nnz > 2^31 would not overflow intermediate sums.
using offset_t = std::int64_t;

/// Floating-point value type of all numerical kernels.
using value_t = double;

/// Rank identifier in the simulated distributed runtime.
using rank_t = std::int32_t;

}  // namespace fsaic
