#include "perf/setup_cost.hpp"

#include <cmath>
#include <limits>

namespace fsaic {

SetupCost estimate_factor_setup(const SparsityPattern& pattern,
                                const Layout& layout, const Machine& machine,
                                int threads_per_rank) {
  FSAIC_REQUIRE(pattern.rows() == layout.global_size(), "layout mismatch");
  FSAIC_REQUIRE(threads_per_rank >= 1, "threads must be positive");
  SetupCost cost;
  double worst_rank_flops = 0.0;
  for (rank_t p = 0; p < layout.nranks(); ++p) {
    double rank_flops = 0.0;
    for (index_t i = layout.begin(p); i < layout.end(p); ++i) {
      const double m = static_cast<double>(pattern.row_nnz(i));
      const double solve = m * m * m / 3.0 + 2.0 * m * m;
      // Gathering A(S,S): m^2 binary-searched lookups, ~log2(row) compares
      // each; charge 8 "flops" apiece as a proxy.
      const double gather = 8.0 * m * m;
      cost.row_solve_flops += solve;
      cost.gather_flops += gather;
      rank_flops += solve + gather;
    }
    worst_rank_flops = std::max(worst_rank_flops, rank_flops);
  }
  cost.time = worst_rank_flops /
              (machine.flops_per_core * static_cast<double>(threads_per_rank));
  return cost;
}

SetupCost estimate_build_setup(const FsaiBuildResult& build, const Layout& layout,
                               const Machine& machine, int threads_per_rank) {
  // Plain FSAI computes values once on the final pattern. With an active
  // extension + filter, Algorithm 2 computes a provisional factor on the
  // full extended pattern first, then the final factor on the survivors.
  const bool two_pass = build.extended_pattern.nnz() > build.final_pattern.nnz();
  SetupCost total = estimate_factor_setup(build.final_pattern, layout, machine,
                                          threads_per_rank);
  if (two_pass) {
    const SetupCost provisional = estimate_factor_setup(
        build.extended_pattern, layout, machine, threads_per_rank);
    total.row_solve_flops += provisional.row_solve_flops;
    total.gather_flops += provisional.gather_flops;
    total.time += provisional.time;
  }
  return total;
}

double solves_to_amortize(double setup_base, double solve_base,
                          double setup_candidate, double solve_candidate) {
  const double extra_setup = setup_candidate - setup_base;
  const double per_solve_gain = solve_base - solve_candidate;
  if (per_solve_gain <= 0.0) {
    return extra_setup <= 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::max(0.0, extra_setup / per_solve_gain);
}

}  // namespace fsaic
