#include "perf/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace fsaic {

CostModel::CostModel(Machine machine, CostModelOptions options)
    : machine_(std::move(machine)), options_(options) {
  FSAIC_REQUIRE(options_.threads_per_rank >= 1,
                "threads_per_rank must be positive");
}

CacheConfig CostModel::rank_cache() const {
  CacheConfig c = machine_.l1;
  c.size_bytes *= options_.threads_per_rank;
  return c;
}

OpCost CostModel::spmv_cost(const DistCsr& a) const {
  const double t = options_.threads_per_rank;
  // Format-aware matrix stream: the kernel streams one (value, column)
  // pair per *stored slot* — nnz under CSR, padded slots under SELL (the
  // padding ratio is exactly the extra stream traffic the layout pays for
  // its SIMD lanes) — at 4-byte values when the factors are stored single.
  // Under the default (csr, double) kernel this reduces to the historic
  // bytes_per_nnz * nnz charge bit for bit.
  const KernelConfig& kernel = a.kernel_config();
  const double value_bytes =
      kernel.precision == FactorPrecision::Single ? 4.0 : 8.0;
  const double slot_bytes = value_bytes + 4.0;
  const double per_slot = std::max(
      slot_bytes / (machine_.mem_bw_per_core * machine_.stream_bw_multiplier),
      machine_.nnz_flop_cost());
  const CacheConfig cache = rank_cache();
  const NodeTopology topo = options_.comm.topology(a.nranks());
  const bool aggregate = options_.comm.mode == CommMode::NodeAware;

  OpCost cost;
  for (rank_t p = 0; p < a.nranks(); ++p) {
    const RankBlock& blk = a.block(p);
    const auto report = replay_spmv_x_accesses(blk.matrix, cache);
    const double slots =
        static_cast<double>(a.local_op(p).padded_entries(blk.matrix));
    const double compute =
        (slots * per_slot +
         static_cast<double>(report.misses) * machine_.miss_cost()) /
        t;
    // Rank p's halo edges, each priced at its fabric level. Neighbor lists
    // are sorted by rank (so also by node), letting the node-aware model
    // charge one network latency per distinct peer node — coalesced
    // payload bytes still cross the wire in full, only latencies merge.
    double comm = 0.0;
    const auto charge = [&](const std::vector<RankBlock::Neighbor>& edges) {
      rank_t last_peer_node = -1;
      for (const auto& nb : edges) {
        const double bytes =
            static_cast<double>(nb.gids.size() * sizeof(value_t));
        if (topo.same_node(nb.rank, p)) {
          comm += machine_.net_alpha_intra + machine_.net_beta_intra * bytes;
        } else if (!aggregate) {
          comm += machine_.net_alpha + machine_.net_beta * bytes;
        } else {
          const rank_t peer_node = topo.node_of(nb.rank);
          if (peer_node != last_peer_node) {
            comm += machine_.net_alpha;
            last_peer_node = peer_node;
          }
          comm += machine_.net_beta * bytes;
        }
      }
    };
    charge(blk.recv);
    charge(blk.send);
    cost.compute = std::max(cost.compute, compute);
    cost.comm = std::max(cost.comm, comm);
  }
  return cost;
}

std::int64_t CostModel::spmv_x_misses(const DistCsr& a) const {
  const CacheConfig cache = rank_cache();
  std::int64_t misses = 0;
  for (rank_t p = 0; p < a.nranks(); ++p) {
    misses += replay_spmv_x_accesses(a.block(p).matrix, cache).misses;
  }
  return misses;
}

double CostModel::blas1_cost(const Layout& layout, int n_updates) const {
  index_t max_local = 0;
  for (rank_t p = 0; p < layout.nranks(); ++p) {
    max_local = std::max(max_local, layout.local_size(p));
  }
  // Each AXPY-like update streams ~3 vector accesses (2 loads + 1 store).
  const double bytes = static_cast<double>(max_local) * 3.0 * sizeof(value_t);
  return static_cast<double>(n_updates) * bytes /
         (machine_.mem_bw_per_core * options_.threads_per_rank);
}

double CostModel::allreduce_cost(rank_t nranks) const {
  if (nranks <= 1) return 0.0;
  const NodeTopology topo = options_.comm.topology(nranks);
  if (topo.ranks_per_node() <= 1) {
    const double stages = std::ceil(std::log2(static_cast<double>(nranks)));
    // Reduce + broadcast along a binomial tree: 2 latency-bound stages each.
    return 2.0 * stages *
           (machine_.net_alpha + machine_.net_beta * sizeof(value_t));
  }
  // Hierarchical tree: reduce within each node over the cheap fabric, then
  // across node leaders over the network, broadcast back — 2 sweeps per
  // level, each latency-bound at its level's alpha/beta.
  const rank_t width = std::min<rank_t>(
      nranks, static_cast<rank_t>(topo.ranks_per_node()));
  const double intra_stages = std::ceil(std::log2(static_cast<double>(width)));
  const double inter_stages =
      topo.nnodes() > 1
          ? std::ceil(std::log2(static_cast<double>(topo.nnodes())))
          : 0.0;
  return 2.0 * intra_stages *
             (machine_.net_alpha_intra + machine_.net_beta_intra * sizeof(value_t)) +
         2.0 * inter_stages *
             (machine_.net_alpha + machine_.net_beta * sizeof(value_t));
}

PcgIterationCost CostModel::pcg_iteration_cost(const DistCsr& a, const DistCsr& g,
                                               const DistCsr& gt) const {
  PcgIterationCost cost;
  cost.spmv_a = spmv_cost(a);
  cost.precond_g = spmv_cost(g);
  cost.precond_gt = spmv_cost(gt);
  // Per PCG iteration: x-update, r-update, d-update (3 AXPY-like sweeps).
  cost.blas1 = blas1_cost(a.row_layout(), 3);
  // Two inner products (r^T z, d^T A d) plus the convergence-check norm.
  cost.allreduce = 3.0 * allreduce_cost(a.nranks());
  return cost;
}

double CostModel::precond_gflops_per_process(const DistCsr& g,
                                             const DistCsr& gt) const {
  const double flops = precond_flops(g, gt) / static_cast<double>(g.nranks());
  const double time =
      spmv_cost(g).total() + spmv_cost(gt).total();
  return time > 0.0 ? flops / time * 1e-9 : 0.0;
}

}  // namespace fsaic
