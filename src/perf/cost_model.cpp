#include "perf/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace fsaic {

CostModel::CostModel(Machine machine, CostModelOptions options)
    : machine_(std::move(machine)), options_(options) {
  FSAIC_REQUIRE(options_.threads_per_rank >= 1,
                "threads_per_rank must be positive");
}

CacheConfig CostModel::rank_cache() const {
  CacheConfig c = machine_.l1;
  c.size_bytes *= options_.threads_per_rank;
  return c;
}

OpCost CostModel::spmv_cost(const DistCsr& a) const {
  const double t = options_.threads_per_rank;
  const double per_nnz = std::max(machine_.nnz_stream_cost(), machine_.nnz_flop_cost());
  const CacheConfig cache = rank_cache();

  OpCost cost;
  for (rank_t p = 0; p < a.nranks(); ++p) {
    const RankBlock& blk = a.block(p);
    const auto report = replay_spmv_x_accesses(blk.matrix, cache);
    const double compute =
        (static_cast<double>(blk.matrix.nnz()) * per_nnz +
         static_cast<double>(report.misses) * machine_.miss_cost()) /
        t;
    double comm = 0.0;
    for (const auto& nb : blk.recv) {
      comm += machine_.net_alpha +
              machine_.net_beta * static_cast<double>(nb.gids.size() * sizeof(value_t));
    }
    for (const auto& nb : blk.send) {
      comm += machine_.net_alpha +
              machine_.net_beta * static_cast<double>(nb.gids.size() * sizeof(value_t));
    }
    cost.compute = std::max(cost.compute, compute);
    cost.comm = std::max(cost.comm, comm);
  }
  return cost;
}

std::int64_t CostModel::spmv_x_misses(const DistCsr& a) const {
  const CacheConfig cache = rank_cache();
  std::int64_t misses = 0;
  for (rank_t p = 0; p < a.nranks(); ++p) {
    misses += replay_spmv_x_accesses(a.block(p).matrix, cache).misses;
  }
  return misses;
}

double CostModel::blas1_cost(const Layout& layout, int n_updates) const {
  index_t max_local = 0;
  for (rank_t p = 0; p < layout.nranks(); ++p) {
    max_local = std::max(max_local, layout.local_size(p));
  }
  // Each AXPY-like update streams ~3 vector accesses (2 loads + 1 store).
  const double bytes = static_cast<double>(max_local) * 3.0 * sizeof(value_t);
  return static_cast<double>(n_updates) * bytes /
         (machine_.mem_bw_per_core * options_.threads_per_rank);
}

double CostModel::allreduce_cost(rank_t nranks) const {
  if (nranks <= 1) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(nranks)));
  // Reduce + broadcast along a binomial tree: 2 latency-bound stages each.
  return 2.0 * stages *
         (machine_.net_alpha + machine_.net_beta * sizeof(value_t));
}

PcgIterationCost CostModel::pcg_iteration_cost(const DistCsr& a, const DistCsr& g,
                                               const DistCsr& gt) const {
  PcgIterationCost cost;
  cost.spmv_a = spmv_cost(a);
  cost.precond_g = spmv_cost(g);
  cost.precond_gt = spmv_cost(gt);
  // Per PCG iteration: x-update, r-update, d-update (3 AXPY-like sweeps).
  cost.blas1 = blas1_cost(a.row_layout(), 3);
  // Two inner products (r^T z, d^T A d) plus the convergence-check norm.
  cost.allreduce = 3.0 * allreduce_cost(a.nranks());
  return cost;
}

double CostModel::precond_gflops_per_process(const DistCsr& g,
                                             const DistCsr& gt) const {
  const double flops = precond_flops(g, gt) / static_cast<double>(g.nranks());
  const double time =
      spmv_cost(g).total() + spmv_cost(gt).total();
  return time > 0.0 ? flops / time * 1e-9 : 0.0;
}

}  // namespace fsaic
