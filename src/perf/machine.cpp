#include "perf/machine.hpp"

#include "common/error.hpp"

namespace fsaic {

Machine machine_skylake() {
  Machine m;
  m.name = "skylake";
  m.l1 = CacheConfig{.line_bytes = 64, .size_bytes = 32 * 1024, .associativity = 8};
  m.mem_bw_per_core = 4.0e9;   // ~190 GB/s node / 48 cores
  m.flops_per_core = 8.0e9;    // sustained on indexed SpMV code, not peak AVX
  m.net_alpha = 1.5e-6;        // Omni-Path
  m.net_beta = 5.0e-10;
  m.net_alpha_intra = 2.5e-7;  // shared-memory transport
  m.net_beta_intra = 8.0e-11;
  m.cores_per_node = 48;
  return m;
}

Machine machine_a64fx() {
  Machine m;
  m.name = "a64fx";
  m.l1 = CacheConfig{.line_bytes = 256, .size_bytes = 64 * 1024, .associativity = 4};
  m.mem_bw_per_core = 1.6e10;  // HBM2: ~1 TB/s node / 48 cores, derated
  m.flops_per_core = 1.0e10;
  m.net_alpha = 1.2e-6;        // Tofu-D
  m.net_beta = 3.0e-10;
  m.net_alpha_intra = 3.0e-7;  // CMG-to-CMG on-package
  m.net_beta_intra = 6.0e-11;
  m.cores_per_node = 48;
  return m;
}

Machine machine_zen2() {
  Machine m;
  m.name = "zen2";
  m.l1 = CacheConfig{.line_bytes = 64, .size_bytes = 32 * 1024, .associativity = 8};
  m.mem_bw_per_core = 3.0e9;   // ~380 GB/s node / 128 cores
  m.flops_per_core = 1.6e10;   // the paper notes much higher FLOP/s on Zen 2
  m.net_alpha = 1.8e-6;        // InfiniBand HDR200
  m.net_beta = 4.0e-10;
  m.net_alpha_intra = 2.0e-7;  // shared-memory transport
  m.net_beta_intra = 5.0e-11;
  m.cores_per_node = 128;
  return m;
}

Machine machine_by_name(const std::string& name) {
  if (name == "skylake") return machine_skylake();
  if (name == "a64fx") return machine_a64fx();
  if (name == "zen2") return machine_zen2();
  FSAIC_REQUIRE(false, "unknown machine preset: " + name);
  return {};
}

}  // namespace fsaic
