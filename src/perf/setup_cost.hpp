// Setup-phase cost model for the FSAI family.
//
// The paper's tables report solver time only; the preconditioner setup —
// dominated by the per-row dense solves A(S_i,S_i) g = e_i — is paid once
// per matrix. Since FSAIE/FSAIE-Comm compute the factor twice (provisional
// values for filtering, then final values on the surviving pattern), their
// setup is 2-3x FSAI's, and the amortization bench answers the practical
// question "after how many solves does the extension pay for itself?".
#pragma once

#include "core/fsai_driver.hpp"
#include "perf/machine.hpp"

namespace fsaic {

struct SetupCost {
  /// Floating-point work of the dense row solves (Cholesky m^3/3 + two
  /// triangular solves m^2 per row).
  double row_solve_flops = 0.0;
  /// Gather work: filling the m x m local system from CSR lookups.
  double gather_flops = 0.0;
  /// Modeled wall time on the machine (max over ranks, threads_per_rank
  /// cores each; rows are embarrassingly parallel).
  double time = 0.0;
};

/// Setup cost of computing FSAI values on `pattern` once.
[[nodiscard]] SetupCost estimate_factor_setup(const SparsityPattern& pattern,
                                              const Layout& layout,
                                              const Machine& machine,
                                              int threads_per_rank);

/// Full pipeline setup for a build result: one factor computation for plain
/// FSAI; extension + provisional factor + final factor when an extension
/// and filtering were active.
[[nodiscard]] SetupCost estimate_build_setup(const FsaiBuildResult& build,
                                             const Layout& layout,
                                             const Machine& machine,
                                             int threads_per_rank);

/// Number of solves after which a candidate configuration with
/// (setup_candidate, time_per_solve_candidate) overtakes a baseline with
/// (setup_base, time_per_solve_base). Returns infinity if the candidate
/// never wins, 0 if it wins immediately.
[[nodiscard]] double solves_to_amortize(double setup_base, double solve_base,
                                        double setup_candidate,
                                        double solve_candidate);

}  // namespace fsaic
