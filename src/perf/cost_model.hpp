// Analytical per-iteration cost model of the distributed PCG.
//
// Modeled time of a bulk-synchronous operation is the maximum over ranks of
// (compute + communication), so inter-process load imbalance — the problem
// the paper's dynamic filtering attacks — penalizes modeled time exactly as
// it would stall real synchronization points. Compute cost per rank is
//
//   nnz * max(stream, flop) / threads  +  x_misses * line_fetch / threads
//
// where x_misses comes from replaying the SpMV x-access stream through the
// machine's L1 model (aggregated over the threads of the rank, matching the
// paper's observation that more threads per process mean more L1 capacity
// for the shared extended pattern).
#pragma once

#include "dist/dist_csr.hpp"
#include "perf/machine.hpp"

namespace fsaic {

struct CostModelOptions {
  /// OpenMP threads per simulated MPI rank (the paper's hybrid knob).
  int threads_per_rank = 1;

  /// Communication scheme the model prices. The default (flat, one rank
  /// per node) charges every halo edge a full network message — the
  /// historic model, unchanged to the last bit. With ranks_per_node > 1,
  /// on-node edges are charged at the machine's intra-node alpha/beta; in
  /// node-aware mode cross-node edges additionally share one network
  /// latency per distinct peer node (the leader-aggregated coalescing).
  CommConfig comm;
};

/// Cost of one distributed operation, split by source.
struct OpCost {
  double compute = 0.0;  ///< max over ranks of local work
  double comm = 0.0;     ///< max over ranks of its halo exchanges

  [[nodiscard]] double total() const { return compute + comm; }
};

/// Per-iteration cost of preconditioned CG, split by kernel.
struct PcgIterationCost {
  OpCost spmv_a;
  OpCost precond_g;   ///< w = G r
  OpCost precond_gt;  ///< z = G^T w
  double blas1 = 0.0;
  double allreduce = 0.0;

  [[nodiscard]] double total() const {
    return spmv_a.total() + precond_g.total() + precond_gt.total() + blas1 +
           allreduce;
  }

  /// Cost of the preconditioning application alone (the paper's G^T G x).
  [[nodiscard]] double precond_total() const {
    return precond_g.total() + precond_gt.total();
  }
};

class CostModel {
 public:
  CostModel(Machine machine, CostModelOptions options = {});

  [[nodiscard]] const Machine& machine() const { return machine_; }
  [[nodiscard]] const CostModelOptions& options() const { return options_; }

  /// L1 geometry available to one rank (threads_per_rank cores' worth of
  /// sets at the machine's line size / associativity).
  [[nodiscard]] CacheConfig rank_cache() const;

  /// Modeled cost of one y = A x, including the halo update.
  [[nodiscard]] OpCost spmv_cost(const DistCsr& a) const;

  /// Total x-access misses of one y = A x summed over ranks (diagnostics,
  /// Figures 3a/5a).
  [[nodiscard]] std::int64_t spmv_x_misses(const DistCsr& a) const;

  /// Cost of n_updates AXPY-like sweeps over local vectors.
  [[nodiscard]] double blas1_cost(const Layout& layout, int n_updates) const;

  /// Cost of one scalar allreduce over nranks (binomial-tree model).
  [[nodiscard]] double allreduce_cost(rank_t nranks) const;

  /// Full per-iteration PCG cost for system A preconditioned by G^T G.
  [[nodiscard]] PcgIterationCost pcg_iteration_cost(const DistCsr& a,
                                                    const DistCsr& g,
                                                    const DistCsr& gt) const;

  /// Flop count of the preconditioning product G^T G x per iteration.
  [[nodiscard]] static double precond_flops(const DistCsr& g, const DistCsr& gt) {
    return 2.0 * static_cast<double>(g.nnz() + gt.nnz());
  }

  /// GFLOP/s per process in the preconditioning operation (Figures 3b/5b/7).
  [[nodiscard]] double precond_gflops_per_process(const DistCsr& g,
                                                  const DistCsr& gt) const;

 private:
  Machine machine_;
  CostModelOptions options_;
};

}  // namespace fsaic
