// Machine descriptions for the three evaluation systems of the paper.
//
// The reproduction replaces wall-clock measurement on MareNostrum (Skylake),
// CTE-ARM (A64FX) and Hawk (Zen 2) with an explicit analytical model whose
// inputs are measured from the simulated run: per-rank nonzero counts, x-
// access cache misses from cachesim/, and halo bytes/messages from dist/.
// The parameters below are order-of-magnitude figures for each system; the
// reproduced quantity is the *shape* of the comparison (relative time
// decrease of FSAIE/FSAIE-Comm vs FSAI), which is governed by the cache-line
// size, cache capacity and the per-nnz-vs-per-miss cost ratio rather than by
// absolute constants.
#pragma once

#include <string>

#include "cachesim/cache_model.hpp"

namespace fsaic {

struct Machine {
  std::string name;

  /// L1 data cache geometry per core. The line size is also what the
  /// FSAIE/FSAIE-Comm pattern extension uses (Section 5.1 of the paper).
  CacheConfig l1;

  /// Sustained memory bandwidth per core for latency-bound traffic (the
  /// x-gather line fetches) [bytes/s].
  double mem_bw_per_core = 4.0e9;

  /// The value/column-index arrays of CSR are read sequentially and prefetch
  /// perfectly, so they sustain a multiple of the gather-limited bandwidth.
  /// This ratio is what makes cache-line pattern extensions cheap: an added
  /// entry costs only stream traffic, never a new x line.
  double stream_bw_multiplier = 2.5;

  /// Sustained floating-point rate per core on SpMV-like code [flop/s].
  double flops_per_core = 4.0e9;

  /// Point-to-point message latency [s] and inverse bandwidth [s/byte]
  /// across the inter-node network fabric.
  double net_alpha = 2.0e-6;
  double net_beta = 5.0e-10;

  /// Same pair for on-node transfers (shared-memory fabric): roughly an
  /// order of magnitude cheaper in latency and several times cheaper per
  /// byte. These only matter to the node-aware cost model; the flat model
  /// charges every message at the network rate, as the historic one did.
  double net_alpha_intra = 3.0e-7;
  double net_beta_intra = 1.0e-10;

  /// Cores per node (informational; used by the rank-count heuristics).
  int cores_per_node = 48;

  /// Bytes of matrix stream per nonzero (8 B value + 4 B column index).
  static constexpr double bytes_per_nnz = 12.0;

  /// Time to stream one nonzero's matrix data on one core.
  [[nodiscard]] double nnz_stream_cost() const {
    return bytes_per_nnz / (mem_bw_per_core * stream_bw_multiplier);
  }

  /// Time to service one x-access cache miss (fetch a full line).
  [[nodiscard]] double miss_cost() const {
    return static_cast<double>(l1.line_bytes) / mem_bw_per_core;
  }

  /// Time for the 2 flops (multiply-add) per nonzero on one core.
  [[nodiscard]] double nnz_flop_cost() const { return 2.0 / flops_per_core; }
};

/// Intel Xeon Platinum 8160 (MareNostrum 4): 64 B lines, 32 KiB 8-way L1.
[[nodiscard]] Machine machine_skylake();

/// Fujitsu A64FX (CTE-ARM): 256 B lines, 64 KiB 4-way L1, HBM bandwidth.
[[nodiscard]] Machine machine_a64fx();

/// AMD EPYC 7742 (Hawk): 64 B lines, 32 KiB 8-way L1, high FP throughput.
[[nodiscard]] Machine machine_zen2();

/// Preset lookup by name ("skylake" | "a64fx" | "zen2").
[[nodiscard]] Machine machine_by_name(const std::string& name);

}  // namespace fsaic
