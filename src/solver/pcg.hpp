// Distributed (preconditioned) Conjugate Gradient, Section 2.1 of the paper.
#pragma once

#include <vector>

#include "dist/comm_stats.hpp"
#include "dist/dist_csr.hpp"
#include "dist/dist_vector.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "solver/preconditioner.hpp"

namespace fsaic {

struct SolveOptions {
  /// Converged when ||r_k||_2 <= rel_tol * ||r_0||_2 (the paper reduces the
  /// initial residual by eight orders of magnitude).
  value_t rel_tol = 1e-8;
  int max_iterations = 20000;
  /// When positive, the convergence target is rel_tol * reference_residual
  /// instead of rel_tol * ||r_0||_2 — the warm-start contract: a solve
  /// started from a cached solution x0 keeps chasing the *cold* solve's
  /// absolute target rather than rel_tol times its own (already tiny)
  /// initial residual, and returns immediately (0 iterations) when x0
  /// already meets it. 0 (the default) preserves the classic relative test.
  value_t reference_residual = 0.0;
  /// Append ||r_k|| of every iteration to SolveResult::residual_history
  /// (the initial residual is recorded regardless).
  bool track_residual_history = false;
  /// Optional per-iteration observer: residual, comm deltas, wall time.
  /// Borrowed; must outlive the solve. Called exactly `iterations` times.
  TelemetrySink* sink = nullptr;
  /// Optional phase/counter trace recorder (Chrome trace_event). Borrowed.
  /// Attach the same recorder to the preconditioner (set_trace) to also get
  /// its G / G^T sub-phases.
  TraceRecorder* trace = nullptr;
  /// Executor running the per-rank supersteps of the iteration body (SpMV,
  /// preconditioner application, vector kernels, reductions). Borrowed;
  /// nullptr -> the process-wide default (sequential unless FSAIC_THREADS
  /// is set). Residual histories are bit-identical across executors.
  Executor* exec = nullptr;
  /// Run the per-iteration vector-update sweeps as fused single-pass
  /// kernels (sparse/vector_ops.hpp). Element-wise identical expressions in
  /// identical order, so residual histories are bit-identical to the
  /// separate sweeps; this switch exists for differential tests and A/B
  /// benchmarking, not as an accuracy knob.
  bool fused_sweeps = true;
};

struct SolveResult {
  bool converged = false;
  int iterations = 0;
  value_t initial_residual = 0.0;
  value_t final_residual = 0.0;
  /// Always holds ||r_0|| as its first entry; the per-iteration tail is
  /// recorded only when SolveOptions::track_residual_history is set.
  std::vector<value_t> residual_history;
  /// Fabric traffic of the whole solve (halo updates + allreduces).
  CommStats comm;
};

/// Preconditioned CG: solves A x = b with preconditioner z = M r. `x` holds
/// the initial guess on entry and the solution on exit.
[[nodiscard]] SolveResult pcg_solve(const DistCsr& a, const DistVector& b,
                                    DistVector& x, const Preconditioner& m,
                                    const SolveOptions& options = {});

/// Unpreconditioned CG (identity preconditioner fast path: no z vector).
[[nodiscard]] SolveResult cg_solve(const DistCsr& a, const DistVector& b,
                                   DistVector& x, const SolveOptions& options = {});

}  // namespace fsaic
