// Chronopoulos–Gear preconditioned CG: algebraically equivalent to classic
// PCG but restructured so each iteration needs a single fused allreduce
// (three scalars at once) instead of three separate ones. At the paper's
// scale (32,768 cores) the allreduce latency term α·log2(P) is a visible
// slice of the iteration, so this communication-avoiding variant is the
// natural companion to FSAIE-Comm's communication-neutral preconditioning —
// see bench/ablation_pipelined_cg.
#pragma once

#include "solver/pcg.hpp"

namespace fsaic {

/// Chronopoulos–Gear PCG. Same contract as pcg_solve; `result.comm`
/// reflects the fused single-allreduce-per-iteration structure.
[[nodiscard]] SolveResult pcg_solve_pipelined(const DistCsr& a,
                                              const DistVector& b, DistVector& x,
                                              const Preconditioner& m,
                                              const SolveOptions& options = {});

}  // namespace fsaic
