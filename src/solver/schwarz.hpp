// Additive Schwarz preconditioner with configurable overlap.
//
// The classic distributed-memory improvement over Block-Jacobi: each rank
// factorizes an *extended* diagonal block covering its rows plus all rows
// within `overlap` graph hops, solves on the extension, and the overlapping
// contributions are summed, z = sum_p R_p^T A_p^{-1} R_p r — the symmetric
// variant, as CG requires (the popular "restricted" RAS breaks symmetry and
// makes CG diverge; it belongs with GMRES). Unlike Block-Jacobi or FSAI,
// every application communicates twice per overlap coefficient: the
// residual values travel to the extended domains, and the solved
// contributions travel back to their owners. Overlap therefore buys
// iterations at a per-application communication price that grows with the
// level — the mirror image of FSAIE-Comm, which buys iterations at exactly
// zero extra communication. The ablation bench puts the two side by side.
#pragma once

#include "solver/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace fsaic {

class SchwarzPreconditioner final : public Preconditioner {
 public:
  /// Build from the *global* matrix plus its layout (the extended blocks
  /// need rows outside the local range, which DistCsr does not keep).
  /// overlap = 0 degenerates to Block-Jacobi with one block per rank.
  SchwarzPreconditioner(const CsrMatrix& a, const Layout& layout, int overlap);

  void apply(const DistVector& r, DistVector& z, CommStats* stats = nullptr,
             Executor* exec = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "schwarz"; }

  /// Coefficients exchanged per application: residual values fetched into
  /// the extended domains plus solved contributions returned to owners.
  [[nodiscard]] std::int64_t apply_halo_bytes() const;
  [[nodiscard]] std::int64_t apply_halo_messages() const;

  /// Rows of the largest extended block (growth measure vs local size).
  [[nodiscard]] index_t max_extended_rows() const;

 private:
  struct RankDomain {
    /// Global ids of this rank's extended region: owned rows first (in
    /// order), then overlap rows sorted ascending.
    std::vector<index_t> region_gids;
    index_t owned = 0;  ///< first `owned` entries are the rank's own rows
    /// IC(0) factor of A restricted to the region.
    CsrMatrix factor;
    /// Overlap gids grouped by owning rank (for communication accounting).
    std::vector<std::pair<rank_t, std::vector<index_t>>> fetch;
  };

  Layout layout_;
  std::vector<RankDomain> domains_;
  /// 1/sqrt(#domains covering each unknown), distributed like the vectors.
  DistVector inv_sqrt_cover_;
};

}  // namespace fsaic
