// Preconditioner interface and simple baselines (Identity, Jacobi,
// Block-Jacobi). The FSAI family lives in core/ and implements the same
// interface through FactorizedPreconditioner.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dist/comm_stats.hpp"
#include "dist/dist_csr.hpp"
#include "dist/dist_vector.hpp"

namespace fsaic {

class Executor;
class TraceRecorder;

/// Application-side interface: z = M r. The executor is per-call context
/// like `stats`: implementations run their per-rank work as supersteps on
/// it (nullptr -> the process-wide default), so a threaded solve threads
/// its preconditioner applications too.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  virtual void apply(const DistVector& r, DistVector& z,
                     CommStats* stats = nullptr,
                     Executor* exec = nullptr) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Attach a borrowed trace recorder; implementations with internal
  /// structure (e.g. the G / G^T factor applications) emit sub-phase events
  /// into it. Null detaches.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  [[nodiscard]] TraceRecorder* trace() const { return trace_; }

 private:
  TraceRecorder* trace_ = nullptr;
};

/// z = r (plain CG).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const DistVector& r, DistVector& z, CommStats* stats = nullptr,
             Executor* exec = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "identity"; }
};

/// z = D^{-1} r with D = diag(A).
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const DistCsr& a);

  void apply(const DistVector& r, DistVector& z, CommStats* stats = nullptr,
             Executor* exec = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "jacobi"; }

 private:
  DistVector inv_diag_;
};

/// Dense-Cholesky block-diagonal preconditioner: the local unknowns of each
/// rank are split into blocks of `block_size` consecutive rows and each block
/// of A restricted to them is factorized. Communication-free by design.
class BlockJacobiPreconditioner final : public Preconditioner {
 public:
  BlockJacobiPreconditioner(const DistCsr& a, index_t block_size);

  void apply(const DistVector& r, DistVector& z, CommStats* stats = nullptr,
             Executor* exec = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "block-jacobi"; }

 private:
  struct Block {
    index_t first = 0;    ///< first local row
    index_t size = 0;
    std::vector<value_t> chol;  ///< packed lower Cholesky factor, row-major
  };
  Layout layout_;
  std::vector<std::vector<Block>> rank_blocks_;
};

/// z = G^T (G r): the factorized approximate inverse application the FSAI
/// family uses. Owns the distributed factors.
class FactorizedPreconditioner final : public Preconditioner {
 public:
  FactorizedPreconditioner(DistCsr g, DistCsr gt, std::string label);

  void apply(const DistVector& r, DistVector& z, CommStats* stats = nullptr,
             Executor* exec = nullptr) const override;
  [[nodiscard]] std::string name() const override { return label_; }

  [[nodiscard]] const DistCsr& g() const { return g_; }
  [[nodiscard]] const DistCsr& gt() const { return gt_; }

  /// Swap the kernel backend of both factors (format and, unlike the system
  /// matrix, optionally Single precision — the mixed-precision mode stores
  /// the factors in float32 while every CG vector stays double).
  void use_kernel(const KernelConfig& kernel) {
    g_.use_kernel(kernel);
    gt_.use_kernel(kernel);
  }
  /// Combined padding overhead of both factors under the active format.
  [[nodiscard]] double padding_ratio() const {
    const offset_t n = g_.nnz() + gt_.nnz();
    return n > 0 ? static_cast<double>(g_.padded_entries() +
                                       gt_.padded_entries()) /
                       static_cast<double>(n)
                 : 1.0;
  }

 private:
  DistCsr g_;
  DistCsr gt_;
  std::string label_;
};

}  // namespace fsaic
