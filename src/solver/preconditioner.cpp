#include "solver/preconditioner.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dense/dense_matrix.hpp"
#include "dense/factorizations.hpp"
#include "exec/executor.hpp"
#include "obs/trace.hpp"

namespace fsaic {

void IdentityPreconditioner::apply(const DistVector& r, DistVector& z,
                                   CommStats* /*stats*/, Executor* exec) const {
  dist_copy(r, z, exec);
}

JacobiPreconditioner::JacobiPreconditioner(const DistCsr& a)
    : inv_diag_(a.row_layout()) {
  for (rank_t p = 0; p < a.nranks(); ++p) {
    const RankBlock& blk = a.block(p);
    auto d = inv_diag_.block(p);
    for (index_t li = 0; li < blk.matrix.rows(); ++li) {
      const value_t aii = blk.matrix.at(li, li);
      FSAIC_REQUIRE(aii != 0.0, "Jacobi requires a nonzero diagonal");
      d[static_cast<std::size_t>(li)] = 1.0 / aii;
    }
  }
}

void JacobiPreconditioner::apply(const DistVector& r, DistVector& z,
                                 CommStats* /*stats*/, Executor* exec) const {
  FSAIC_REQUIRE(r.layout() == inv_diag_.layout(), "layout mismatch");
  resolve_executor(exec).parallel_ranks(r.nranks(), [&](rank_t p) {
    const auto rb = r.block(p);
    const auto db = inv_diag_.block(p);
    auto zb = z.block(p);
    for (std::size_t i = 0; i < rb.size(); ++i) {
      zb[i] = rb[i] * db[i];
    }
  });
}

BlockJacobiPreconditioner::BlockJacobiPreconditioner(const DistCsr& a,
                                                     index_t block_size)
    : layout_(a.row_layout()) {
  FSAIC_REQUIRE(block_size >= 1, "block size must be positive");
  rank_blocks_.resize(static_cast<std::size_t>(a.nranks()));
  for (rank_t p = 0; p < a.nranks(); ++p) {
    const RankBlock& rb = a.block(p);
    const index_t nloc = rb.matrix.rows();
    for (index_t first = 0; first < nloc; first += block_size) {
      Block blk;
      blk.first = first;
      blk.size = std::min(block_size, nloc - first);
      DenseMatrix dense(blk.size, blk.size);
      for (index_t i = 0; i < blk.size; ++i) {
        const auto cols = rb.matrix.row_cols(first + i);
        const auto vals = rb.matrix.row_vals(first + i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          const index_t j = cols[k] - first;
          if (j >= 0 && j < blk.size) dense(i, j) = vals[k];
        }
      }
      // Diagonal blocks of an SPD matrix are SPD, so Cholesky must succeed;
      // guard anyway so a bad input surfaces as an exception, not UB.
      FSAIC_REQUIRE(cholesky_factor(dense),
                    "block-Jacobi diagonal block is not positive definite");
      blk.chol.resize(static_cast<std::size_t>(blk.size) *
                      static_cast<std::size_t>(blk.size));
      for (index_t i = 0; i < blk.size; ++i) {
        for (index_t j = 0; j <= i; ++j) {
          blk.chol[static_cast<std::size_t>(i) * static_cast<std::size_t>(blk.size) +
                   static_cast<std::size_t>(j)] = dense(i, j);
        }
      }
      rank_blocks_[static_cast<std::size_t>(p)].push_back(std::move(blk));
    }
  }
}

void BlockJacobiPreconditioner::apply(const DistVector& r, DistVector& z,
                                      CommStats* /*stats*/,
                                      Executor* exec) const {
  FSAIC_REQUIRE(r.layout() == layout_, "layout mismatch");
  resolve_executor(exec).parallel_ranks(layout_.nranks(), [&](rank_t p) {
    const auto rb = r.block(p);
    auto zb = z.block(p);
    for (const Block& blk : rank_blocks_[static_cast<std::size_t>(p)]) {
      const auto n = static_cast<std::size_t>(blk.size);
      const auto l = [&](index_t i, index_t j) {
        return blk.chol[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)];
      };
      // Forward then backward substitution into zb.
      for (index_t i = 0; i < blk.size; ++i) {
        value_t s = rb[static_cast<std::size_t>(blk.first + i)];
        for (index_t j = 0; j < i; ++j) {
          s -= l(i, j) * zb[static_cast<std::size_t>(blk.first + j)];
        }
        zb[static_cast<std::size_t>(blk.first + i)] = s / l(i, i);
      }
      for (index_t i = blk.size - 1; i >= 0; --i) {
        value_t s = zb[static_cast<std::size_t>(blk.first + i)];
        for (index_t j = i + 1; j < blk.size; ++j) {
          s -= l(j, i) * zb[static_cast<std::size_t>(blk.first + j)];
        }
        zb[static_cast<std::size_t>(blk.first + i)] = s / l(i, i);
      }
    }
  });
}

FactorizedPreconditioner::FactorizedPreconditioner(DistCsr g, DistCsr gt,
                                                   std::string label)
    : g_(std::move(g)), gt_(std::move(gt)), label_(std::move(label)) {
  FSAIC_REQUIRE(g_.row_layout() == gt_.row_layout(),
                "G and G^T must share a layout");
}

void FactorizedPreconditioner::apply(const DistVector& r, DistVector& z,
                                     CommStats* stats, Executor* exec) const {
  DistVector w(r.layout());
  {
    ScopedPhase phase(trace(), "apply_G", "solve");
    g_.spmv(r, w, stats, trace(), exec);
  }
  {
    ScopedPhase phase(trace(), "apply_Gt", "solve");
    gt_.spmv(w, z, stats, trace(), exec);
  }
}

}  // namespace fsaic
