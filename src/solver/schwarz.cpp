#include "solver/schwarz.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "solver/ic0.hpp"
#include "sparse/coo.hpp"

namespace fsaic {

SchwarzPreconditioner::SchwarzPreconditioner(const CsrMatrix& a,
                                             const Layout& layout, int overlap)
    : layout_(layout) {
  FSAIC_REQUIRE(a.rows() == layout.global_size(), "layout mismatch");
  FSAIC_REQUIRE(overlap >= 0, "overlap must be non-negative");
  domains_.resize(static_cast<std::size_t>(layout.nranks()));

  for (rank_t p = 0; p < layout.nranks(); ++p) {
    RankDomain& dom = domains_[static_cast<std::size_t>(p)];
    dom.owned = layout.local_size(p);

    // BFS out to `overlap` hops from the owned rows.
    std::vector<bool> in_region(static_cast<std::size_t>(a.rows()), false);
    std::vector<index_t> frontier;
    dom.region_gids.reserve(static_cast<std::size_t>(dom.owned));
    for (index_t i = layout.begin(p); i < layout.end(p); ++i) {
      in_region[static_cast<std::size_t>(i)] = true;
      dom.region_gids.push_back(i);
      frontier.push_back(i);
    }
    std::vector<index_t> overlap_rows;
    for (int hop = 0; hop < overlap; ++hop) {
      std::vector<index_t> next;
      for (index_t i : frontier) {
        for (index_t j : a.row_cols(i)) {
          if (!in_region[static_cast<std::size_t>(j)]) {
            in_region[static_cast<std::size_t>(j)] = true;
            overlap_rows.push_back(j);
            next.push_back(j);
          }
        }
      }
      frontier = std::move(next);
    }
    std::sort(overlap_rows.begin(), overlap_rows.end());
    dom.region_gids.insert(dom.region_gids.end(), overlap_rows.begin(),
                           overlap_rows.end());

    // Fetch lists: overlap rows grouped by owner.
    rank_t current = -1;
    for (index_t gid : overlap_rows) {
      const rank_t q = layout.owner(gid);
      if (q != current) {
        dom.fetch.emplace_back(q, std::vector<index_t>{});
        current = q;
      }
      dom.fetch.back().second.push_back(gid);
    }

    // Local index map and the region-restricted matrix.
    std::unordered_map<index_t, index_t> local_of;
    local_of.reserve(dom.region_gids.size());
    for (std::size_t k = 0; k < dom.region_gids.size(); ++k) {
      local_of.emplace(dom.region_gids[k], static_cast<index_t>(k));
    }
    const auto m = static_cast<index_t>(dom.region_gids.size());
    CooBuilder builder(m, m);
    for (index_t li = 0; li < m; ++li) {
      const index_t gi = dom.region_gids[static_cast<std::size_t>(li)];
      const auto cols = a.row_cols(gi);
      const auto vals = a.row_vals(gi);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const auto it = local_of.find(cols[k]);
        if (it != local_of.end()) {
          builder.add(li, it->second, vals[k]);
        }
      }
    }
    dom.factor = ic0_factor(builder.to_csr());
  }

  // Partition-of-unity weights: how many domains cover each unknown.
  std::vector<int> cover(static_cast<std::size_t>(a.rows()), 0);
  for (const auto& dom : domains_) {
    for (index_t gid : dom.region_gids) {
      ++cover[static_cast<std::size_t>(gid)];
    }
  }
  inv_sqrt_cover_ = DistVector(layout);
  for (rank_t p = 0; p < layout.nranks(); ++p) {
    auto w = inv_sqrt_cover_.block(p);
    for (index_t i = 0; i < layout.local_size(p); ++i) {
      w[static_cast<std::size_t>(i)] =
          1.0 / std::sqrt(static_cast<value_t>(
                    cover[static_cast<std::size_t>(layout.begin(p) + i)]));
    }
  }
}

void SchwarzPreconditioner::apply(const DistVector& r, DistVector& z,
                                  CommStats* stats,
                                  Executor* /*exec*/) const {
  FSAIC_REQUIRE(r.layout() == layout_, "layout mismatch");
  // Deliberately sequential regardless of the executor: each domain
  // scatter-adds its overlap contributions into *other* ranks' z blocks, so
  // per-rank parallelization would race on z (and reordering the += sums
  // would break the bit-identical-results guarantee).
  z.fill(0.0);
  std::vector<value_t> local;
  for (rank_t p = 0; p < layout_.nranks(); ++p) {
    const RankDomain& dom = domains_[static_cast<std::size_t>(p)];
    local.assign(dom.region_gids.size(), 0.0);
    // Owned residual values, pre-scaled by the partition-of-unity weight.
    const auto rb = r.block(p);
    const auto wb = inv_sqrt_cover_.block(p);
    for (index_t i = 0; i < dom.owned; ++i) {
      local[static_cast<std::size_t>(i)] =
          rb[static_cast<std::size_t>(i)] * wb[static_cast<std::size_t>(i)];
    }
    // Overlap residual values arrive from their owners — the communication
    // that Block-Jacobi (overlap 0) and FSAI avoid.
    std::size_t slot = static_cast<std::size_t>(dom.owned);
    for (const auto& [q, gids] : dom.fetch) {
      const auto src = r.block(q);
      const auto wq = inv_sqrt_cover_.block(q);
      const index_t q0 = layout_.begin(q);
      for (index_t gid : gids) {
        local[slot++] = src[static_cast<std::size_t>(gid - q0)] *
                        wq[static_cast<std::size_t>(gid - q0)];
      }
      if (stats != nullptr) {
        stats->record_halo_message(
            q, p, static_cast<std::int64_t>(gids.size() * sizeof(value_t)));
      }
    }
    ic_solve_in_place(dom.factor, local);
    // Symmetric additive combination: the owned part accumulates into this
    // rank's z, the overlap contributions travel back to their owners.
    auto zb = z.block(p);
    for (index_t i = 0; i < dom.owned; ++i) {
      zb[static_cast<std::size_t>(i)] +=
          local[static_cast<std::size_t>(i)] * wb[static_cast<std::size_t>(i)];
    }
    slot = static_cast<std::size_t>(dom.owned);
    for (const auto& [q, gids] : dom.fetch) {
      auto dst = z.block(q);
      const auto wq = inv_sqrt_cover_.block(q);
      const index_t q0 = layout_.begin(q);
      for (index_t gid : gids) {
        dst[static_cast<std::size_t>(gid - q0)] +=
            local[slot++] * wq[static_cast<std::size_t>(gid - q0)];
      }
      if (stats != nullptr) {
        stats->record_halo_message(
            p, q, static_cast<std::int64_t>(gids.size() * sizeof(value_t)));
      }
    }
  }
}

std::int64_t SchwarzPreconditioner::apply_halo_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& dom : domains_) {
    for (const auto& [q, gids] : dom.fetch) {
      // Fetch of residual values plus return of solved contributions.
      bytes += 2 * static_cast<std::int64_t>(gids.size() * sizeof(value_t));
    }
  }
  return bytes;
}

std::int64_t SchwarzPreconditioner::apply_halo_messages() const {
  std::int64_t messages = 0;
  for (const auto& dom : domains_) {
    messages += 2 * static_cast<std::int64_t>(dom.fetch.size());
  }
  return messages;
}

index_t SchwarzPreconditioner::max_extended_rows() const {
  index_t m = 0;
  for (const auto& dom : domains_) {
    m = std::max(m, static_cast<index_t>(dom.region_gids.size()));
  }
  return m;
}

}  // namespace fsaic
