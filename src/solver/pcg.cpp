#include "solver/pcg.hpp"

#include <cmath>

#include "common/error.hpp"
#include "exec/executor.hpp"

namespace fsaic {

SolveResult pcg_solve(const DistCsr& a, const DistVector& b, DistVector& x,
                      const Preconditioner& m, const SolveOptions& options) {
  FSAIC_REQUIRE(options.rel_tol > 0.0, "tolerance must be positive");
  FSAIC_REQUIRE(options.max_iterations >= 0, "max_iterations must be >= 0");
  const Layout& layout = a.row_layout();
  FSAIC_REQUIRE(b.layout() == layout && x.layout() == layout,
                "vector layouts must match the matrix");

  SolveResult result;
  TraceRecorder* const trace = options.trace;
  Executor* const exec = options.exec;
  DistVector r(layout);
  DistVector z(layout);
  DistVector d(layout);
  DistVector q(layout);

  // r = b - A x.
  {
    ScopedPhase phase(trace, "spmv", "solve");
    a.spmv(x, r, &result.comm, trace, exec);
  }
  resolve_executor(exec).parallel_ranks(layout.nranks(), [&](rank_t p) {
    const auto bb = b.block(p);
    auto rb = r.block(p);
    for (std::size_t i = 0; i < rb.size(); ++i) {
      rb[i] = bb[i] - rb[i];
    }
  });

  result.initial_residual = dist_norm2(r, &result.comm, trace, exec);
  result.final_residual = result.initial_residual;
  IterationEmitter telemetry(options.sink, trace, result.residual_history,
                             options.track_residual_history, result.comm);
  telemetry.record_initial(result.initial_residual);
  if (result.initial_residual == 0.0) {
    result.converged = true;
    return result;
  }
  const value_t reference = options.reference_residual > 0.0
                                ? options.reference_residual
                                : result.initial_residual;
  const value_t target = options.rel_tol * reference;
  if (options.reference_residual > 0.0 && result.initial_residual <= target) {
    // Warm start already at the cold solve's target: nothing to iterate.
    result.converged = true;
    return result;
  }

  {
    ScopedPhase phase(trace, "precond_apply", "solve");
    m.apply(r, z, &result.comm, exec);
  }
  dist_copy(z, d, exec);
  value_t rho = dist_dot(r, z, &result.comm, trace, exec);

  for (int it = 0; it < options.max_iterations; ++it) {
    ScopedPhase iteration_phase(trace, "iteration", "solve");
    {
      ScopedPhase phase(trace, "spmv", "solve");
      a.spmv(d, q, &result.comm, trace, exec);
    }
    const value_t dq = dist_dot(d, q, &result.comm, trace, exec);
    FSAIC_CHECK(std::isfinite(dq), "CG breakdown: d^T A d is not finite");
    if (dq <= 0.0) {
      // A (or the preconditioned operator) is not positive definite along d;
      // report non-convergence rather than diverging silently.
      result.iterations = it;
      return result;
    }
    const value_t alpha = rho / dq;
    if (options.fused_sweeps) {
      dist_fused_axpy_pair(alpha, d, -alpha, q, x, r, exec);
    } else {
      dist_axpy(alpha, d, x, exec);
      dist_axpy(-alpha, q, r, exec);
    }

    const value_t rnorm = dist_norm2(r, &result.comm, trace, exec);
    result.final_residual = rnorm;
    result.iterations = it + 1;
    telemetry.record_iteration(it + 1, rnorm);
    if (rnorm <= target) {
      result.converged = true;
      return result;
    }

    {
      ScopedPhase phase(trace, "precond_apply", "solve");
      m.apply(r, z, &result.comm, exec);
    }
    const value_t rho_next = dist_dot(r, z, &result.comm, trace, exec);
    FSAIC_CHECK(std::isfinite(rho_next), "CG breakdown: r^T z is not finite");
    const value_t beta = rho_next / rho;
    rho = rho_next;
    dist_xpby(z, beta, d, exec);
  }
  return result;
}

SolveResult cg_solve(const DistCsr& a, const DistVector& b, DistVector& x,
                     const SolveOptions& options) {
  const IdentityPreconditioner identity;
  return pcg_solve(a, b, x, identity, options);
}

}  // namespace fsaic
