#include "solver/ic0.hpp"

#include <cmath>

#include "exec/executor.hpp"
#include "sparse/ops.hpp"

namespace fsaic {

CsrMatrix ic0_factor(const CsrMatrix& a) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "IC(0) requires a square matrix");
  CsrMatrix l = lower_triangle(a);
  FSAIC_REQUIRE(l.pattern().has_full_diagonal(),
                "IC(0) requires a structurally nonzero diagonal");
  const index_t n = l.rows();

  // Row-oriented up-looking IC(0): for each row i and each pattern entry
  // (i, k), subtract the sparse dot product of rows i and k (columns < k),
  // divide by l_kk; close the row with the diagonal square root.
  for (index_t i = 0; i < n; ++i) {
    const auto cols = l.row_cols(i);
    auto vals = l.row_vals(i);
    for (std::size_t ki = 0; ki < cols.size(); ++ki) {
      const index_t k = cols[ki];
      value_t sum = vals[ki];
      // Sparse dot of row i (current, columns < k) with row k (columns < k).
      const auto kcols = l.row_cols(k);
      const auto kvals = l.row_vals(k);
      std::size_t pi = 0;
      std::size_t pk = 0;
      while (pi < ki && pk + 1 < kcols.size()) {  // row k's last entry is its diag
        if (cols[pi] == kcols[pk]) {
          sum -= vals[pi] * kvals[pk];
          ++pi;
          ++pk;
        } else if (cols[pi] < kcols[pk]) {
          ++pi;
        } else {
          ++pk;
        }
      }
      if (k == i) {
        FSAIC_REQUIRE(sum > 0.0 && std::isfinite(sum),
                      "IC(0) breakdown: non-positive pivot");
        vals[ki] = std::sqrt(sum);
      } else {
        const value_t lkk = l.at(k, k);
        vals[ki] = sum / lkk;
      }
    }
  }
  return l;
}

void ic_solve_in_place(const CsrMatrix& l, std::span<value_t> x) {
  const index_t n = l.rows();
  FSAIC_REQUIRE(x.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  // Forward: L y = x. The diagonal is each row's last pattern entry.
  for (index_t i = 0; i < n; ++i) {
    const auto cols = l.row_cols(i);
    const auto vals = l.row_vals(i);
    value_t s = x[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k + 1 < cols.size(); ++k) {
      s -= vals[k] * x[static_cast<std::size_t>(cols[k])];
    }
    x[static_cast<std::size_t>(i)] = s / vals[cols.size() - 1];
  }
  // Backward: L^T z = y, column-sweep form.
  for (index_t i = n - 1; i >= 0; --i) {
    const auto cols = l.row_cols(i);
    const auto vals = l.row_vals(i);
    const value_t zi = x[static_cast<std::size_t>(i)] / vals[cols.size() - 1];
    x[static_cast<std::size_t>(i)] = zi;
    for (std::size_t k = 0; k + 1 < cols.size(); ++k) {
      x[static_cast<std::size_t>(cols[k])] -= vals[k] * zi;
    }
  }
}

BlockIc0Preconditioner::BlockIc0Preconditioner(const DistCsr& a)
    : layout_(a.row_layout()) {
  factors_.reserve(static_cast<std::size_t>(a.nranks()));
  for (rank_t p = 0; p < a.nranks(); ++p) {
    const RankBlock& blk = a.block(p);
    // Restrict to the local diagonal block (columns < local rows).
    const index_t nloc = blk.matrix.rows();
    std::vector<offset_t> row_ptr(static_cast<std::size_t>(nloc) + 1, 0);
    std::vector<index_t> col_idx;
    std::vector<value_t> values;
    for (index_t i = 0; i < nloc; ++i) {
      const auto cols = blk.matrix.row_cols(i);
      const auto vals = blk.matrix.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] < nloc) {
          col_idx.push_back(cols[k]);
          values.push_back(vals[k]);
        }
      }
      row_ptr[static_cast<std::size_t>(i) + 1] =
          static_cast<offset_t>(col_idx.size());
    }
    const CsrMatrix local(nloc, nloc, std::move(row_ptr), std::move(col_idx),
                          std::move(values));
    factors_.push_back(ic0_factor(local));
  }
}

void BlockIc0Preconditioner::apply(const DistVector& r, DistVector& z,
                                   CommStats* /*stats*/, Executor* exec) const {
  FSAIC_REQUIRE(r.layout() == layout_, "layout mismatch");
  // The triangular solve is serial *within* a rank (that is the point the
  // benches make), but ranks touch disjoint blocks, so across ranks it is
  // one clean superstep.
  resolve_executor(exec).parallel_ranks(layout_.nranks(), [&](rank_t p) {
    const auto rb = r.block(p);
    auto zb = z.block(p);
    std::copy(rb.begin(), rb.end(), zb.begin());
    ic_solve_in_place(factors_[static_cast<std::size_t>(p)], zb);
  });
}

index_t BlockIc0Preconditioner::max_block_rows() const {
  index_t m = 0;
  for (const auto& f : factors_) {
    m = std::max(m, f.rows());
  }
  return m;
}

}  // namespace fsaic
