#include "solver/gmres.hpp"

#include <cmath>

#include "common/error.hpp"
#include "exec/executor.hpp"

namespace fsaic {

namespace {

/// Apply a Givens rotation (c, s) to the pair (h1, h2).
void apply_rotation(value_t c, value_t s, value_t& h1, value_t& h2) {
  const value_t t = c * h1 + s * h2;
  h2 = -s * h1 + c * h2;
  h1 = t;
}

}  // namespace

SolveResult gmres_solve(const DistCsr& a, const DistVector& b, DistVector& x,
                        const Preconditioner& m, const GmresOptions& options) {
  FSAIC_REQUIRE(options.rel_tol > 0.0, "tolerance must be positive");
  FSAIC_REQUIRE(options.restart >= 1, "restart length must be >= 1");
  const Layout& layout = a.row_layout();
  FSAIC_REQUIRE(b.layout() == layout && x.layout() == layout,
                "vector layouts must match the matrix");
  const int mk = options.restart;

  SolveResult result;
  DistVector r(layout);
  DistVector w(layout);
  DistVector z(layout);
  // Krylov basis; mk+1 distributed vectors.
  std::vector<DistVector> basis;
  basis.reserve(static_cast<std::size_t>(mk) + 1);
  for (int i = 0; i <= mk; ++i) {
    basis.emplace_back(layout);
  }
  // Hessenberg matrix in column-major (mk+1) x mk, plus Givens data.
  std::vector<value_t> hess(static_cast<std::size_t>(mk + 1) *
                            static_cast<std::size_t>(mk));
  const auto h = [&](int row, int col) -> value_t& {
    return hess[static_cast<std::size_t>(col) * static_cast<std::size_t>(mk + 1) +
                static_cast<std::size_t>(row)];
  };
  std::vector<value_t> cs(static_cast<std::size_t>(mk));
  std::vector<value_t> sn(static_cast<std::size_t>(mk));
  std::vector<value_t> g(static_cast<std::size_t>(mk) + 1);

  // r = b - A x.
  TraceRecorder* const trace = options.trace;
  Executor* const exec = options.exec;
  Executor& ex = resolve_executor(exec);
  const auto residual_from = [&](DistVector& dst) {
    ex.parallel_ranks(layout.nranks(), [&](rank_t p) {
      const auto bb = b.block(p);
      auto rb = dst.block(p);
      for (std::size_t i = 0; i < rb.size(); ++i) {
        rb[i] = bb[i] - rb[i];
      }
    });
  };
  {
    ScopedPhase phase(trace, "spmv", "solve");
    a.spmv(x, r, &result.comm, trace, exec);
  }
  residual_from(r);
  result.initial_residual = dist_norm2(r, &result.comm, trace, exec);
  result.final_residual = result.initial_residual;
  IterationEmitter telemetry(options.sink, trace, result.residual_history,
                             options.track_residual_history, result.comm);
  telemetry.record_initial(result.initial_residual);
  if (result.initial_residual == 0.0) {
    result.converged = true;
    return result;
  }
  const value_t target = options.rel_tol * result.initial_residual;

  while (result.iterations < options.max_iterations) {
    // Start (or restart) the Arnoldi process from the current residual.
    value_t beta = dist_norm2(r, &result.comm, trace, exec);
    if (beta <= target) {
      result.converged = true;
      result.final_residual = beta;
      return result;
    }
    ex.parallel_ranks(layout.nranks(), [&](rank_t p) {
      const auto rb = r.block(p);
      auto vb = basis[0].block(p);
      for (std::size_t i = 0; i < rb.size(); ++i) {
        vb[i] = rb[i] / beta;
      }
    });
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0;  // columns completed in this cycle
    for (; k < mk && result.iterations < options.max_iterations; ++k) {
      ScopedPhase iteration_phase(trace, "iteration", "solve");
      // w = A M v_k  (right preconditioning).
      {
        ScopedPhase phase(trace, "precond_apply", "solve");
        m.apply(basis[static_cast<std::size_t>(k)], z, &result.comm, exec);
      }
      {
        ScopedPhase phase(trace, "spmv", "solve");
        a.spmv(z, w, &result.comm, trace, exec);
      }
      ++result.iterations;

      // Modified Gram-Schmidt against the basis.
      for (int j = 0; j <= k; ++j) {
        const value_t hjk = dist_dot(w, basis[static_cast<std::size_t>(j)],
                                     &result.comm, trace, exec);
        h(j, k) = hjk;
        dist_axpy(-hjk, basis[static_cast<std::size_t>(j)], w, exec);
      }
      const value_t hkk = dist_norm2(w, &result.comm, trace, exec);
      h(k + 1, k) = hkk;
      FSAIC_CHECK(std::isfinite(hkk), "GMRES breakdown: basis norm not finite");
      if (hkk > 0.0) {
        ex.parallel_ranks(layout.nranks(), [&](rank_t p) {
          const auto wb = w.block(p);
          auto vb = basis[static_cast<std::size_t>(k) + 1].block(p);
          for (std::size_t i = 0; i < wb.size(); ++i) {
            vb[i] = wb[i] / hkk;
          }
        });
      }

      // Apply previous Givens rotations to the new column, then create the
      // one that annihilates h(k+1, k).
      for (int j = 0; j < k; ++j) {
        apply_rotation(cs[static_cast<std::size_t>(j)],
                       sn[static_cast<std::size_t>(j)], h(j, k), h(j + 1, k));
      }
      const value_t denom = std::hypot(h(k, k), h(k + 1, k));
      if (denom == 0.0) {
        // Exact breakdown: the solution lies in the current space.
        ++k;
        break;
      }
      cs[static_cast<std::size_t>(k)] = h(k, k) / denom;
      sn[static_cast<std::size_t>(k)] = h(k + 1, k) / denom;
      apply_rotation(cs[static_cast<std::size_t>(k)],
                     sn[static_cast<std::size_t>(k)], h(k, k), h(k + 1, k));
      apply_rotation(cs[static_cast<std::size_t>(k)],
                     sn[static_cast<std::size_t>(k)],
                     g[static_cast<std::size_t>(k)],
                     g[static_cast<std::size_t>(k) + 1]);

      const value_t res = std::abs(g[static_cast<std::size_t>(k) + 1]);
      result.final_residual = res;
      telemetry.record_iteration(result.iterations, res);
      if (res <= target) {
        ++k;
        break;
      }
    }

    // Solve the small triangular system H y = g and update x += M V y.
    std::vector<value_t> y(static_cast<std::size_t>(k));
    for (int i = k - 1; i >= 0; --i) {
      value_t s = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j) {
        s -= h(i, j) * y[static_cast<std::size_t>(j)];
      }
      FSAIC_CHECK(h(i, i) != 0.0, "GMRES: singular Hessenberg diagonal");
      y[static_cast<std::size_t>(i)] = s / h(i, i);
    }
    // z = V y (accumulate in w), then x += M z.
    w.fill(0.0);
    for (int j = 0; j < k; ++j) {
      dist_axpy(y[static_cast<std::size_t>(j)], basis[static_cast<std::size_t>(j)],
                w, exec);
    }
    {
      ScopedPhase phase(trace, "precond_apply", "solve");
      m.apply(w, z, &result.comm, exec);
    }
    dist_axpy(1.0, z, x, exec);

    // True restart residual.
    {
      ScopedPhase phase(trace, "spmv", "solve");
      a.spmv(x, r, &result.comm, trace, exec);
    }
    residual_from(r);
    const value_t true_res = dist_norm2(r, &result.comm, trace, exec);
    result.final_residual = true_res;
    if (true_res <= target) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace fsaic
