#include "solver/chebyshev.hpp"

#include <cmath>

#include "common/error.hpp"
#include "exec/executor.hpp"
#include "sparse/stats.hpp"

namespace fsaic {

ChebyshevPreconditioner::ChebyshevPreconditioner(const DistCsr& a, value_t lmin,
                                                 value_t lmax, int degree)
    : a_(&a), lmin_(lmin), lmax_(lmax), degree_(degree) {
  FSAIC_REQUIRE(lmin > 0.0 && lmax > lmin,
                "need 0 < lmin < lmax spectrum bounds (SPD only)");
  FSAIC_REQUIRE(degree >= 1, "polynomial degree must be >= 1");
}

ChebyshevPreconditioner ChebyshevPreconditioner::with_estimated_spectrum(
    const CsrMatrix& global, const DistCsr& a, int degree) {
  // Lanczos Ritz values converge to the extremes from inside the spectrum;
  // an interval that MISSES true eigenvalues breaks the method, so pad lmin
  // well downward (the Ritz minimum overestimates it on ill-conditioned
  // systems) and lmax slightly upward.
  const value_t lmax_est = estimate_lambda_max(global, 60);
  const value_t cond_est = estimate_condition_number(global, 60);
  const value_t lmin_est = lmax_est / cond_est;
  return ChebyshevPreconditioner(a, 0.5 * lmin_est, 1.05 * lmax_est, degree);
}

void ChebyshevPreconditioner::apply(const DistVector& r, DistVector& z,
                                    CommStats* stats, Executor* exec) const {
  const Layout& layout = a_->row_layout();
  FSAIC_REQUIRE(r.layout() == layout, "layout mismatch");
  Executor& ex = resolve_executor(exec);
  // Classical Chebyshev iteration for A z ≈ r with z_0 = 0 (the standard
  // polynomial-smoother formulation; see Saad, Iterative Methods, §12.3).
  const value_t theta = 0.5 * (lmax_ + lmin_);
  const value_t delta = 0.5 * (lmax_ - lmin_);
  const value_t sigma1 = theta / delta;
  value_t rho_old = 1.0 / sigma1;

  DistVector d(layout);
  DistVector az(layout);
  // First step: z = r / theta.
  ex.parallel_ranks(layout.nranks(), [&](rank_t p) {
    const auto rb = r.block(p);
    auto db = d.block(p);
    auto zb = z.block(p);
    for (std::size_t i = 0; i < rb.size(); ++i) {
      db[i] = rb[i] / theta;
      zb[i] = db[i];
    }
  });
  for (int k = 2; k <= degree_; ++k) {
    const value_t rho = 1.0 / (2.0 * sigma1 - rho_old);
    a_->spmv(z, az, stats, nullptr, exec);
    // d = rho*rho_old * d + 2*rho/delta * (r - A z); z += d.
    const value_t c1 = rho * rho_old;
    const value_t c2 = 2.0 * rho / delta;
    ex.parallel_ranks(layout.nranks(), [&](rank_t p) {
      const auto rb = r.block(p);
      const auto ab = az.block(p);
      auto db = d.block(p);
      auto zb = z.block(p);
      for (std::size_t i = 0; i < rb.size(); ++i) {
        db[i] = c1 * db[i] + c2 * (rb[i] - ab[i]);
        zb[i] += db[i];
      }
    });
    rho_old = rho;
  }
}

}  // namespace fsaic
