// Incomplete Cholesky with zero fill, IC(0) — the classical implicit
// preconditioner the SAI literature positions itself against: its
// triangular solves are inherently sequential, so in distributed memory it
// is used block-locally per rank (communication-free but weakening with the
// rank count), whereas FSAI's application is two SpMVs that scale like the
// rest of CG. The benches use this contrast to reproduce the paper's
// motivation.
#pragma once

#include "solver/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace fsaic {

/// IC(0) factor of an SPD matrix: lower-triangular L on the lower-triangular
/// pattern of `a` with A ≈ L L^T. Throws if a pivot fails (the usual IC(0)
/// breakdown risk on non-M-matrices); callers may pre-shift the diagonal.
[[nodiscard]] CsrMatrix ic0_factor(const CsrMatrix& a);

/// Solve L L^T x = b in place given an IC(0)/exact lower factor.
void ic_solve_in_place(const CsrMatrix& l, std::span<value_t> x);

/// Block-local IC(0) preconditioner: each rank factorizes its diagonal block
/// and applies forward/backward substitution locally. No communication —
/// and, like Block-Jacobi, no coupling across ranks, which is the accuracy
/// price implicit preconditioners pay in distributed memory.
class BlockIc0Preconditioner final : public Preconditioner {
 public:
  explicit BlockIc0Preconditioner(const DistCsr& a);

  void apply(const DistVector& r, DistVector& z, CommStats* stats = nullptr,
             Executor* exec = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "block-ic0"; }

  /// Sequential-depth proxy: the longest dependency chain of the triangular
  /// solves, i.e. the largest local block size (the cost model charges the
  /// solve as serial within a rank).
  [[nodiscard]] index_t max_block_rows() const;

 private:
  Layout layout_;
  std::vector<CsrMatrix> factors_;  ///< one lower factor per rank
};

}  // namespace fsaic
