// Chebyshev polynomial preconditioner.
//
// Applies z = p_k(A) r where p_k is the degree-k Chebyshev polynomial
// minimizing the residual over a target spectrum interval [lmin, lmax].
// Like the SAI family — and unlike IC/Schwarz — its application is nothing
// but SpMVs and AXPYs, so it inherits the SpMV's communication pattern
// (k halo updates of A per application, no new neighbor pairs, no
// allreduces). It is the other established "communication-regular"
// preconditioner, which makes it the natural extra baseline next to
// FSAI/FSAIE-Comm: both trade setup intelligence for perfectly parallel
// application, with opposite knobs (polynomial degree vs pattern size).
#pragma once

#include "solver/preconditioner.hpp"

namespace fsaic {

class ChebyshevPreconditioner final : public Preconditioner {
 public:
  /// `lmin`/`lmax` bound the spectrum of A (use sparse/stats.hpp Lanczos
  /// estimates, padded a little); `degree` >= 1 is the polynomial degree.
  ChebyshevPreconditioner(const DistCsr& a, value_t lmin, value_t lmax,
                          int degree);

  /// Convenience: estimate the spectrum bounds with a short Lanczos run on
  /// the (gathered) matrix and pad them by 5%.
  static ChebyshevPreconditioner with_estimated_spectrum(const CsrMatrix& global,
                                                         const DistCsr& a,
                                                         int degree);

  void apply(const DistVector& r, DistVector& z, CommStats* stats = nullptr,
             Executor* exec = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "chebyshev"; }

  [[nodiscard]] int degree() const { return degree_; }
  [[nodiscard]] value_t lambda_min() const { return lmin_; }
  [[nodiscard]] value_t lambda_max() const { return lmax_; }

 private:
  const DistCsr* a_;
  value_t lmin_;
  value_t lmax_;
  int degree_;
};

}  // namespace fsaic
