#include "solver/pipelined_cg.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "exec/executor.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {

namespace {

/// Fused local reductions: returns (r.u, w.u, r.r) with ONE recorded
/// allreduce of three doubles — the wire-level point of the method. One
/// superstep computes the per-rank triples, one width-3 tree allreduce
/// combines them.
struct FusedDots {
  value_t ru;
  value_t wu;
  value_t rr;
};

FusedDots fused_dots(const DistVector& r, const DistVector& u,
                     const DistVector& w, CommStats* stats,
                     TraceRecorder* trace, Executor* exec) {
  const double t0 = trace != nullptr ? trace->now_us() : 0.0;
  Executor& ex = resolve_executor(exec);
  const rank_t n = r.nranks();
  std::vector<value_t> partials(static_cast<std::size_t>(n) * 3, 0.0);
  ex.parallel_ranks(n, [&](rank_t p) {
    const auto rb = r.block(p);
    const auto ub = u.block(p);
    const auto wb = w.block(p);
    value_t ru = 0.0;
    value_t wu = 0.0;
    value_t rr = 0.0;
    for (std::size_t i = 0; i < rb.size(); ++i) {
      ru += rb[i] * ub[i];
      wu += wb[i] * ub[i];
      rr += rb[i] * rb[i];
    }
    const std::size_t base = static_cast<std::size_t>(p) * 3;
    partials[base + 0] = ru;
    partials[base + 1] = wu;
    partials[base + 2] = rr;
  });
  FusedDots d{0.0, 0.0, 0.0};
  std::array<value_t, 3> out{};
  ex.allreduce_sum(partials, 3, out);
  d.ru = out[0];
  d.wu = out[1];
  d.rr = out[2];
  if (stats != nullptr) stats->record_allreduce(3 * sizeof(value_t));
  if (trace != nullptr) {
    trace->complete("allreduce", "comm", t0, trace->now_us() - t0);
  }
  return d;
}

/// The per-iteration reductions, restructured for genuine overlap: one
/// superstep computes the same per-rank (r.u, w.u, r.r) accumulators as the
/// historic width-3 fused reduction, but only (r.u, w.u) — which gate the
/// recurrence — are combined with a blocking width-2 allreduce. The
/// residual-norm reduction is started asynchronously (before the blocking
/// one, so the background combiner overlaps it) and waited on one iteration
/// later, behind the next preconditioner application and SpMV. Splitting
/// the width-3 tree into width-2 + width-1 is bit-exact: tree columns never
/// interact, and the tree shape depends only on the rank count.
struct PipelinedDots {
  value_t ru;
  value_t wu;
};

PipelinedDots fused_dots_split(const DistVector& r, const DistVector& u,
                               const DistVector& w, AsyncAllreduce& rr_async,
                               CommStats* stats, TraceRecorder* trace,
                               Executor* exec) {
  const double t0 = trace != nullptr ? trace->now_us() : 0.0;
  Executor& ex = resolve_executor(exec);
  const rank_t n = r.nranks();
  std::vector<value_t> pair_partials(static_cast<std::size_t>(n) * 2, 0.0);
  std::vector<value_t> rr_partials(static_cast<std::size_t>(n), 0.0);
  ex.parallel_ranks(n, [&](rank_t p) {
    const auto rb = r.block(p);
    const auto ub = u.block(p);
    const auto wb = w.block(p);
    value_t ru = 0.0;
    value_t wu = 0.0;
    value_t rr = 0.0;
    for (std::size_t i = 0; i < rb.size(); ++i) {
      ru += rb[i] * ub[i];
      wu += wb[i] * ub[i];
      rr += rb[i] * rb[i];
    }
    pair_partials[static_cast<std::size_t>(p) * 2 + 0] = ru;
    pair_partials[static_cast<std::size_t>(p) * 2 + 1] = wu;
    rr_partials[static_cast<std::size_t>(p)] = rr;
  });
  rr_async = ex.allreduce_begin(std::move(rr_partials), 1);
  if (stats != nullptr) stats->record_async_allreduce(sizeof(value_t));
  PipelinedDots d{0.0, 0.0};
  std::array<value_t, 2> out{};
  ex.allreduce_sum(pair_partials, 2, out);
  d.ru = out[0];
  d.wu = out[1];
  if (stats != nullptr) stats->record_allreduce(2 * sizeof(value_t));
  if (trace != nullptr) {
    trace->complete("allreduce", "comm", t0, trace->now_us() - t0);
  }
  return d;
}

}  // namespace

SolveResult pcg_solve_pipelined(const DistCsr& a, const DistVector& b,
                                DistVector& x, const Preconditioner& m,
                                const SolveOptions& options) {
  FSAIC_REQUIRE(options.rel_tol > 0.0, "tolerance must be positive");
  const Layout& layout = a.row_layout();
  FSAIC_REQUIRE(b.layout() == layout && x.layout() == layout,
                "vector layouts must match the matrix");

  SolveResult result;
  TraceRecorder* const trace = options.trace;
  Executor* const exec = options.exec;
  DistVector r(layout);
  DistVector u(layout);  // u = M r
  DistVector w(layout);  // w = A u
  DistVector p_dir(layout);
  DistVector s(layout);  // s = A p

  // r = b - A x.
  {
    ScopedPhase phase(trace, "spmv", "solve");
    a.spmv(x, r, &result.comm, trace, exec);
  }
  resolve_executor(exec).parallel_ranks(layout.nranks(), [&](rank_t p) {
    const auto bb = b.block(p);
    auto rb = r.block(p);
    for (std::size_t i = 0; i < rb.size(); ++i) {
      rb[i] = bb[i] - rb[i];
    }
  });
  {
    ScopedPhase phase(trace, "precond_apply", "solve");
    m.apply(r, u, &result.comm, exec);
  }
  {
    ScopedPhase phase(trace, "spmv", "solve");
    a.spmv(u, w, &result.comm, trace, exec);
  }

  FusedDots d = fused_dots(r, u, w, &result.comm, trace, exec);
  result.initial_residual = std::sqrt(d.rr);
  result.final_residual = result.initial_residual;
  IterationEmitter telemetry(options.sink, trace, result.residual_history,
                             options.track_residual_history, result.comm);
  telemetry.record_initial(result.initial_residual);
  if (result.initial_residual == 0.0) {
    result.converged = true;
    return result;
  }
  const value_t reference = options.reference_residual > 0.0
                                ? options.reference_residual
                                : result.initial_residual;
  const value_t target = options.rel_tol * reference;
  if (options.reference_residual > 0.0 && result.initial_residual <= target) {
    // Warm start already at the cold solve's target: nothing to iterate.
    result.converged = true;
    return result;
  }

  value_t gamma = d.ru;
  value_t alpha = d.wu > 0.0 ? gamma / d.wu : 0.0;
  if (!(d.wu > 0.0)) return result;  // not positive definite along u
  value_t beta = 0.0;

  // The residual-norm reduction of iteration k is begun asynchronously at
  // the end of loop body k-1 and waited on inside body k, AFTER the
  // preconditioner application and SpMV it overlaps — the lagged
  // convergence check. settle_rr waits the in-flight reduction, records its
  // iteration (so residual histories match the historic blocking solver
  // entry for entry), and reports whether the solve converged there.
  AsyncAllreduce rr_async;
  int rr_iteration = 0;
  const auto settle_rr = [&]() -> bool {
    if (!rr_async.pending()) return false;
    const double t0 = trace != nullptr ? trace->now_us() : 0.0;
    value_t rr = 0.0;
    rr_async.wait(std::span<value_t>(&rr, 1));
    if (trace != nullptr) {
      trace->complete("allreduce_wait", "comm", t0, trace->now_us() - t0);
    }
    const value_t rnorm = std::sqrt(rr);
    result.final_residual = rnorm;
    result.iterations = rr_iteration;
    telemetry.record_iteration(rr_iteration, rnorm);
    return rnorm <= target;
  };

  for (int it = 0; it < options.max_iterations; ++it) {
    ScopedPhase iteration_phase(trace, "iteration", "solve");
    // p = u + beta p;  s = w + beta s;  r -= alpha s. The x update is
    // deferred until past the lagged convergence check below: if the
    // previous iteration turns out to be the converged one, x must keep its
    // value as of that iteration. The fused sweep runs the same three
    // element-wise updates in one pass and one superstep — bit-identical.
    if (options.fused_sweeps) {
      dist_fused_cg_sweep(u, w, beta, -alpha, p_dir, s, r, exec);
    } else {
      dist_xpby(u, beta, p_dir, exec);
      dist_xpby(w, beta, s, exec);
      dist_axpy(-alpha, s, r, exec);
    }

    {
      ScopedPhase phase(trace, "precond_apply", "solve");
      m.apply(r, u, &result.comm, exec);
    }
    {
      ScopedPhase phase(trace, "spmv", "solve");
      a.spmv(u, w, &result.comm, trace, exec);
    }

    // Lagged convergence check of the previous iteration's residual: its
    // reduction has been progressing behind the two operator applications
    // above (and, when converged, the solve pays exactly that one
    // speculative preconditioner + SpMV for the overlap).
    if (settle_rr()) {
      result.converged = true;
      return result;
    }
    dist_axpy(alpha, p_dir, x, exec);

    rr_iteration = it + 1;
    const PipelinedDots dd =
        fused_dots_split(r, u, w, rr_async, &result.comm, trace, exec);

    if (!(std::isfinite(dd.ru) && std::isfinite(dd.wu))) {
      // Historic check order: this iteration's convergence test precedes
      // the breakdown abort.
      if (settle_rr()) {
        result.converged = true;
        return result;
      }
      FSAIC_CHECK(false, "pipelined CG breakdown: reductions not finite");
    }
    const value_t gamma_next = dd.ru;
    beta = gamma_next / gamma;
    const value_t denom = dd.wu - beta * gamma_next / alpha;
    if (!(denom > 0.0) || !std::isfinite(denom)) {
      // Loss of positive-definiteness / recurrence breakdown. The pending
      // residual norm still decides convergence, exactly as the historic
      // convergence-then-breakdown check order did.
      result.converged = settle_rr();
      return result;
    }
    alpha = gamma_next / denom;
    gamma = gamma_next;
  }
  result.converged = settle_rr();
  return result;
}

}  // namespace fsaic
