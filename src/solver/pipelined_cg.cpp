#include "solver/pipelined_cg.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "exec/executor.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {

namespace {

/// Fused local reductions: returns (r.u, w.u, r.r) with ONE recorded
/// allreduce of three doubles — the wire-level point of the method. One
/// superstep computes the per-rank triples, one width-3 tree allreduce
/// combines them.
struct FusedDots {
  value_t ru;
  value_t wu;
  value_t rr;
};

FusedDots fused_dots(const DistVector& r, const DistVector& u,
                     const DistVector& w, CommStats* stats,
                     TraceRecorder* trace, Executor* exec) {
  const double t0 = trace != nullptr ? trace->now_us() : 0.0;
  Executor& ex = resolve_executor(exec);
  const rank_t n = r.nranks();
  std::vector<value_t> partials(static_cast<std::size_t>(n) * 3, 0.0);
  ex.parallel_ranks(n, [&](rank_t p) {
    const auto rb = r.block(p);
    const auto ub = u.block(p);
    const auto wb = w.block(p);
    value_t ru = 0.0;
    value_t wu = 0.0;
    value_t rr = 0.0;
    for (std::size_t i = 0; i < rb.size(); ++i) {
      ru += rb[i] * ub[i];
      wu += wb[i] * ub[i];
      rr += rb[i] * rb[i];
    }
    const std::size_t base = static_cast<std::size_t>(p) * 3;
    partials[base + 0] = ru;
    partials[base + 1] = wu;
    partials[base + 2] = rr;
  });
  FusedDots d{0.0, 0.0, 0.0};
  std::array<value_t, 3> out{};
  ex.allreduce_sum(partials, 3, out);
  d.ru = out[0];
  d.wu = out[1];
  d.rr = out[2];
  if (stats != nullptr) stats->record_allreduce(3 * sizeof(value_t));
  if (trace != nullptr) {
    trace->complete("allreduce", "comm", t0, trace->now_us() - t0);
  }
  return d;
}

}  // namespace

SolveResult pcg_solve_pipelined(const DistCsr& a, const DistVector& b,
                                DistVector& x, const Preconditioner& m,
                                const SolveOptions& options) {
  FSAIC_REQUIRE(options.rel_tol > 0.0, "tolerance must be positive");
  const Layout& layout = a.row_layout();
  FSAIC_REQUIRE(b.layout() == layout && x.layout() == layout,
                "vector layouts must match the matrix");

  SolveResult result;
  TraceRecorder* const trace = options.trace;
  Executor* const exec = options.exec;
  DistVector r(layout);
  DistVector u(layout);  // u = M r
  DistVector w(layout);  // w = A u
  DistVector p_dir(layout);
  DistVector s(layout);  // s = A p

  // r = b - A x.
  {
    ScopedPhase phase(trace, "spmv", "solve");
    a.spmv(x, r, &result.comm, trace, exec);
  }
  resolve_executor(exec).parallel_ranks(layout.nranks(), [&](rank_t p) {
    const auto bb = b.block(p);
    auto rb = r.block(p);
    for (std::size_t i = 0; i < rb.size(); ++i) {
      rb[i] = bb[i] - rb[i];
    }
  });
  {
    ScopedPhase phase(trace, "precond_apply", "solve");
    m.apply(r, u, &result.comm, exec);
  }
  {
    ScopedPhase phase(trace, "spmv", "solve");
    a.spmv(u, w, &result.comm, trace, exec);
  }

  FusedDots d = fused_dots(r, u, w, &result.comm, trace, exec);
  result.initial_residual = std::sqrt(d.rr);
  result.final_residual = result.initial_residual;
  IterationEmitter telemetry(options.sink, trace, result.residual_history,
                             options.track_residual_history, result.comm);
  telemetry.record_initial(result.initial_residual);
  if (result.initial_residual == 0.0) {
    result.converged = true;
    return result;
  }
  const value_t target = options.rel_tol * result.initial_residual;

  value_t gamma = d.ru;
  value_t alpha = d.wu > 0.0 ? gamma / d.wu : 0.0;
  if (!(d.wu > 0.0)) return result;  // not positive definite along u
  value_t beta = 0.0;

  for (int it = 0; it < options.max_iterations; ++it) {
    ScopedPhase iteration_phase(trace, "iteration", "solve");
    // p = u + beta p;  s = w + beta s.
    dist_xpby(u, beta, p_dir, exec);
    dist_xpby(w, beta, s, exec);
    // x += alpha p;  r -= alpha s.
    dist_axpy(alpha, p_dir, x, exec);
    dist_axpy(-alpha, s, r, exec);

    {
      ScopedPhase phase(trace, "precond_apply", "solve");
      m.apply(r, u, &result.comm, exec);
    }
    {
      ScopedPhase phase(trace, "spmv", "solve");
      a.spmv(u, w, &result.comm, trace, exec);
    }
    d = fused_dots(r, u, w, &result.comm, trace, exec);

    const value_t rnorm = std::sqrt(d.rr);
    result.final_residual = rnorm;
    result.iterations = it + 1;
    telemetry.record_iteration(it + 1, rnorm);
    if (rnorm <= target) {
      result.converged = true;
      return result;
    }
    FSAIC_CHECK(std::isfinite(d.ru) && std::isfinite(d.wu),
                "pipelined CG breakdown: reductions not finite");
    const value_t gamma_next = d.ru;
    beta = gamma_next / gamma;
    const value_t denom = d.wu - beta * gamma_next / alpha;
    if (!(denom > 0.0) || !std::isfinite(denom)) {
      return result;  // loss of positive-definiteness / recurrence breakdown
    }
    alpha = gamma_next / denom;
    gamma = gamma_next;
  }
  return result;
}

}  // namespace fsaic
