// Restarted GMRES(m) with right preconditioning over the simulated
// distributed runtime.
//
// CG demands a symmetric positive definite preconditioner, which forces the
// symmetrized SPAI and the partition-of-unity-weighted Schwarz variants in
// this library. GMRES lifts that restriction: the restricted additive
// Schwarz method and raw (unsymmetrized) SPAI — both standard practice with
// GMRES — become usable, and the solver also covers future non-SPD systems.
// Right preconditioning keeps the residual norm of the *original* system
// observable at no extra cost, so the stopping criterion matches pcg_solve.
#pragma once

#include "solver/pcg.hpp"

namespace fsaic {

struct GmresOptions {
  value_t rel_tol = 1e-8;
  /// Restart length m: the Krylov basis size kept in memory.
  int restart = 50;
  /// Cap on total iterations (matrix-vector products).
  int max_iterations = 20000;
  bool track_residual_history = false;
  /// Per-iteration observer and phase tracer, as in SolveOptions. The sink
  /// receives the cheap Givens residual estimate of each Arnoldi step.
  TelemetrySink* sink = nullptr;
  TraceRecorder* trace = nullptr;
  /// Executor for the per-rank supersteps, as in SolveOptions::exec.
  Executor* exec = nullptr;
};

/// Solve A x = b with right-preconditioned restarted GMRES:
/// minimizes ||b - A M z|| over the Krylov space of (A M), x = M z.
[[nodiscard]] SolveResult gmres_solve(const DistCsr& a, const DistVector& b,
                                      DistVector& x, const Preconditioner& m,
                                      const GmresOptions& options = {});

}  // namespace fsaic
