// WorkloadSpec parsing (spec strings + JSON) and resolution to concrete
// per-rank-count dimensions. Everything here throws fsaic::Error with a
// pointed message on malformed input — the serve protocol parses specs at
// admission time, so a bad request is rejected before any worker runs.
#include "wgen/wgen.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "common/format.hpp"

namespace fsaic::wgen {

namespace {

constexpr double kPi = 3.14159265358979323846;
/// Target mean vertex degree of the auto rgg radius.
constexpr double kRggAutoDegree = 8.0;

bool parse_family(const std::string& name, Family* out) {
  if (name == "stencil2d") {
    *out = Family::Stencil2D;
  } else if (name == "stencil3d") {
    *out = Family::Stencil3D;
  } else if (name == "stencil27") {
    *out = Family::Stencil27;
  } else if (name == "rgg2d") {
    *out = Family::Rgg2D;
  } else if (name == "rgg3d") {
    *out = Family::Rgg3D;
  } else if (name == "rmat") {
    *out = Family::Rmat;
  } else {
    return false;
  }
  return true;
}

long long parse_int(const std::string& key, const std::string& value) {
  FSAIC_REQUIRE(!value.empty(),
                strformat("workload spec: empty value for '%s'", key.c_str()));
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  FSAIC_REQUIRE(errno == 0 && end == value.c_str() + value.size(),
                strformat("workload spec: '%s' is not an integer for '%s'",
                          value.c_str(), key.c_str()));
  return v;
}

index_t parse_dim(const std::string& key, const std::string& value) {
  const long long v = parse_int(key, value);
  FSAIC_REQUIRE(v >= 1 && v <= std::numeric_limits<index_t>::max(),
                strformat("workload spec: '%s' out of range for '%s'",
                          value.c_str(), key.c_str()));
  return static_cast<index_t>(v);
}

double parse_real(const std::string& key, const std::string& value) {
  FSAIC_REQUIRE(!value.empty(),
                strformat("workload spec: empty value for '%s'", key.c_str()));
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  FSAIC_REQUIRE(errno == 0 && end == value.c_str() + value.size() &&
                    std::isfinite(v),
                strformat("workload spec: '%s' is not a number for '%s'",
                          value.c_str(), key.c_str()));
  return v;
}

void apply_key(WorkloadSpec& spec, const std::string& key,
               const std::string& value) {
  if (key == "n") {
    spec.n = parse_dim(key, value);
  } else if (key == "nx") {
    spec.nx = parse_dim(key, value);
  } else if (key == "ny") {
    spec.ny = parse_dim(key, value);
  } else if (key == "nz") {
    spec.nz = parse_dim(key, value);
  } else if (key == "rows_per_rank" || key == "rpn") {
    // "rpn=fixed" documents a fixed global size — the default — so it is
    // accepted as a no-op; a number switches to weak-scaling mode.
    if (key == "rpn" && value == "fixed") return;
    spec.rows_per_rank = parse_dim(key, value);
  } else if (key == "seed") {
    const long long v = parse_int(key, value);
    FSAIC_REQUIRE(v >= 0, "workload spec: seed must be non-negative");
    spec.seed = static_cast<std::uint64_t>(v);
  } else if (key == "radius") {
    if (value == "auto") {
      spec.radius = 0.0;
      return;
    }
    spec.radius = parse_real(key, value);
    FSAIC_REQUIRE(spec.radius > 0.0 && spec.radius < 1.0,
                  "workload spec: radius must be in (0, 1) or 'auto'");
  } else if (key == "edge_factor") {
    spec.edge_factor = parse_dim(key, value);
    FSAIC_REQUIRE(spec.edge_factor <= 1024,
                  "workload spec: edge_factor must be <= 1024");
  } else if (key == "shift") {
    spec.shift = parse_real(key, value);
    FSAIC_REQUIRE(spec.shift >= 0.0,
                  "workload spec: shift must be non-negative");
  } else {
    throw Error(strformat("workload spec: unknown key '%s'", key.c_str()));
  }
}

double default_shift(Family f) {
  switch (f) {
    case Family::Stencil2D:
    case Family::Stencil3D:
    case Family::Stencil27:
      return 0.0;  // constant-diagonal Laplacians are SPD already
    case Family::Rgg2D:
    case Family::Rgg3D:
    case Family::Rmat:
      // Graph Laplacians are only semi-definite; +0.5 (exactly
      // representable) makes every row strictly diagonally dominant.
      return 0.5;
  }
  return 0.0;
}

bool is_stencil(Family f) {
  return f == Family::Stencil2D || f == Family::Stencil3D ||
         f == Family::Stencil27;
}

index_t checked_rows(offset_t rows, const char* what) {
  FSAIC_REQUIRE(rows >= 1 && rows <= std::numeric_limits<index_t>::max(),
                strformat("workload spec: %s row count out of range", what));
  return static_cast<index_t>(rows);
}

}  // namespace

const char* family_name(Family f) {
  switch (f) {
    case Family::Stencil2D:
      return "stencil2d";
    case Family::Stencil3D:
      return "stencil3d";
    case Family::Stencil27:
      return "stencil27";
    case Family::Rgg2D:
      return "rgg2d";
    case Family::Rgg3D:
      return "rgg3d";
    case Family::Rmat:
      return "rmat";
  }
  return "?";
}

std::string WorkloadSpec::to_string() const {
  std::string s = family_name(family);
  char sep = ':';
  const auto add = [&](const std::string& kv) {
    s += sep;
    s += kv;
    sep = ',';
  };
  if (n > 0) add(strformat("n=%d", n));
  if (nx > 0) add(strformat("nx=%d", nx));
  if (ny > 0) add(strformat("ny=%d", ny));
  if (nz > 0) add(strformat("nz=%d", nz));
  if (rows_per_rank > 0) add(strformat("rows_per_rank=%d", rows_per_rank));
  // Always spelled out so the canonical form round-trips through
  // parse_workload_spec (a bare family name would not be a spec string).
  add(strformat("seed=%llu", static_cast<unsigned long long>(seed)));
  if (radius > 0.0) add(strformat("radius=%.17g", radius));
  if (edge_factor != 8) add(strformat("edge_factor=%d", edge_factor));
  if (shift >= 0.0) add(strformat("shift=%.17g", shift));
  return s;
}

bool is_workload_spec(const std::string& text) {
  return text.find(':') != std::string::npos;
}

WorkloadSpec parse_workload_spec(const std::string& text) {
  const auto colon = text.find(':');
  FSAIC_REQUIRE(colon != std::string::npos,
                "workload spec must look like 'family:key=value,...'");
  WorkloadSpec spec;
  const std::string fam = text.substr(0, colon);
  FSAIC_REQUIRE(parse_family(fam, &spec.family),
                strformat("workload spec: unknown family '%s' (stencil2d, "
                          "stencil3d, stencil27, rgg2d, rgg3d, rmat)",
                          fam.c_str()));
  std::size_t pos = colon + 1;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    FSAIC_REQUIRE(!item.empty(), "workload spec: empty parameter");
    const auto eq = item.find('=');
    FSAIC_REQUIRE(eq != std::string::npos && eq > 0,
                  strformat("workload spec: expected key=value, got '%s'",
                            item.c_str()));
    apply_key(spec, item.substr(0, eq), item.substr(eq + 1));
    pos = comma + 1;
  }
  return spec;
}

WorkloadSpec workload_spec_from_json(const JsonValue& v) {
  FSAIC_REQUIRE(v.is_object(), "workload spec JSON must be an object");
  WorkloadSpec spec;
  const JsonValue* fam = v.find("family");
  FSAIC_REQUIRE(fam != nullptr && fam->is_string(),
                "workload spec JSON needs a 'family' string");
  FSAIC_REQUIRE(parse_family(fam->as_string(), &spec.family),
                strformat("workload spec: unknown family '%s'",
                          fam->as_string().c_str()));
  for (const auto& [key, val] : v.as_object()) {
    if (key == "family") continue;
    if (key == "radius" && val.is_string()) {
      apply_key(spec, key, val.as_string());
      continue;
    }
    FSAIC_REQUIRE(val.is_number(),
                  strformat("workload spec JSON: '%s' must be a number",
                            key.c_str()));
    apply_key(spec, key,
              val.is_int() ? strformat("%lld", static_cast<long long>(
                                                   val.as_int()))
                           : strformat("%.17g", val.as_double()));
  }
  return spec;
}

JsonValue workload_spec_to_json(const WorkloadSpec& spec) {
  JsonValue v = JsonValue::object();
  v["family"] = JsonValue(std::string(family_name(spec.family)));
  if (spec.n > 0) v["n"] = JsonValue(spec.n);
  if (spec.nx > 0) v["nx"] = JsonValue(spec.nx);
  if (spec.ny > 0) v["ny"] = JsonValue(spec.ny);
  if (spec.nz > 0) v["nz"] = JsonValue(spec.nz);
  if (spec.rows_per_rank > 0) v["rows_per_rank"] = JsonValue(spec.rows_per_rank);
  v["seed"] = JsonValue(static_cast<std::int64_t>(spec.seed));
  if (spec.radius > 0.0) v["radius"] = JsonValue(spec.radius);
  if (spec.edge_factor != 8) v["edge_factor"] = JsonValue(spec.edge_factor);
  if (spec.shift >= 0.0) v["shift"] = JsonValue(spec.shift);
  return v;
}

ResolvedWorkload resolve_workload(const WorkloadSpec& spec, rank_t nranks) {
  FSAIC_REQUIRE(nranks >= 1, "workload resolution needs >= 1 ranks");
  ResolvedWorkload w;
  w.family = spec.family;
  w.seed = spec.seed;
  w.shift = spec.shift >= 0.0 ? spec.shift : default_shift(spec.family);
  const offset_t weak_rows =
      static_cast<offset_t>(spec.rows_per_rank) * static_cast<offset_t>(nranks);

  if (is_stencil(spec.family)) {
    const bool two_d = spec.family == Family::Stencil2D;
    index_t nx = spec.nx > 0 ? spec.nx : spec.n;
    index_t ny = spec.ny > 0 ? spec.ny : spec.n;
    index_t nz = two_d ? 1 : (spec.nz > 0 ? spec.nz : spec.n);
    if (spec.rows_per_rank > 0) {
      // Weak-scaling mode: the LAST grid dimension grows with the rank
      // count so the blocked layout cuts between grid planes.
      if (two_d) {
        FSAIC_REQUIRE(spec.ny == 0,
                      "stencil2d: give ny= or rows_per_rank=, not both");
        nx = nx > 0 ? nx : 256;
        ny = checked_rows((weak_rows + nx - 1) / nx, "stencil2d");
      } else {
        FSAIC_REQUIRE(spec.nz == 0,
                      "3d stencil: give nz= or rows_per_rank=, not both");
        nx = nx > 0 ? nx : 64;
        ny = ny > 0 ? ny : 64;
        const offset_t plane = static_cast<offset_t>(nx) * ny;
        nz = checked_rows((weak_rows + plane - 1) / plane, "3d stencil");
      }
    }
    FSAIC_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1,
                  strformat("%s needs n=, explicit extents, or rows_per_rank=",
                            family_name(spec.family)));
    w.nx = nx;
    w.ny = ny;
    w.nz = nz;
    w.rows = checked_rows(
        static_cast<offset_t>(nx) * static_cast<offset_t>(ny) * nz,
        family_name(spec.family));
    return w;
  }

  if (spec.family == Family::Rgg2D || spec.family == Family::Rgg3D) {
    const int dim = spec.family == Family::Rgg2D ? 2 : 3;
    FSAIC_REQUIRE(spec.n > 0 || spec.rows_per_rank > 0,
                  "rgg needs n= or rows_per_rank=");
    w.rows = spec.n > 0 ? spec.n : checked_rows(weak_rows, "rgg");
    const double n = static_cast<double>(w.rows);
    w.radius = spec.radius > 0.0
                   ? spec.radius
                   : (dim == 2 ? std::sqrt(kRggAutoDegree / (kPi * n))
                               : std::cbrt(3.0 * kRggAutoDegree /
                                           (4.0 * kPi * n)));
    if (w.radius > 0.5) w.radius = 0.5;
    // Cell side must be >= radius (neighbors live in the 3^d surrounding
    // cells) and cells^dim must not outgrow the point count.
    const index_t max_cells = std::max<index_t>(
        1, static_cast<index_t>(std::floor(std::pow(n, 1.0 / dim))));
    const double inv_radius = 1.0 / w.radius;
    w.cells = inv_radius >= static_cast<double>(max_cells)
                  ? max_cells
                  : std::max<index_t>(1, static_cast<index_t>(inv_radius));
    return w;
  }

  // R-MAT: rows are the smallest power of two >= the requested count.
  FSAIC_REQUIRE(spec.n > 0 || spec.rows_per_rank > 0,
                "rmat needs n= or rows_per_rank=");
  const offset_t want = spec.n > 0 ? spec.n : weak_rows;
  FSAIC_REQUIRE(want >= 2, "rmat needs at least 2 rows");
  int scale = 1;
  while ((offset_t{1} << scale) < want) ++scale;
  FSAIC_REQUIRE(scale <= 30, "rmat scale too large for 32-bit indices");
  w.scale = scale;
  w.rows = static_cast<index_t>(offset_t{1} << scale);
  w.edges = static_cast<offset_t>(w.rows) * spec.edge_factor;
  return w;
}

}  // namespace fsaic::wgen
