// Rank-local deterministic operator generation. Every row of the global
// operator is a pure function of (ResolvedWorkload, row index): stencil rows
// come straight from grid geometry, rgg rows from counter-seeded per-cell
// point streams (the KaGen trick: a deterministic recursive split assigns
// point counts to cells, so any rank can reconstruct any cell's points
// without a global list), and rmat rows from a per-edge counter-seeded
// quadrant descent. No generator draws from shared RNG state, which is what
// makes the output independent of how rows are split across ranks, threads,
// or executors.
#include "wgen/wgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/executor.hpp"

namespace fsaic::wgen {

namespace {

/// Stream tags keep the cell-split, point-coordinate and edge streams of
/// one seed disjoint.
constexpr std::uint64_t kSplitTag = 0x73706c6974ull;   // "split"
constexpr std::uint64_t kPointTag = 0x706f696e74ull;   // "point"
constexpr std::uint64_t kEdgeTag = 0x65646765ull;      // "edge"

/// SplitMix64 finalizer — the bit mixer behind all counter-based seeding.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2)));
}

/// Sorted (gid, value) entries of one row -> appended CSR row.
void append_row(std::vector<std::pair<index_t, value_t>>& entries,
                RankLocalRows& out) {
  std::sort(entries.begin(), entries.end());
  for (const auto& [gid, v] : entries) {
    out.col_gids.push_back(gid);
    out.values.push_back(v);
  }
  out.row_ptr.push_back(static_cast<offset_t>(out.col_gids.size()));
  entries.clear();
}

// ---- structured stencils ------------------------------------------------

RankLocalRows stencil_rows(const ResolvedWorkload& w, index_t row0,
                           index_t row1) {
  RankLocalRows out;
  out.row_ptr.reserve(static_cast<std::size_t>(row1 - row0) + 1);
  out.row_ptr.push_back(0);
  const index_t nx = w.nx;
  const index_t ny = w.ny;
  const offset_t plane = static_cast<offset_t>(nx) * ny;
  std::vector<std::pair<index_t, value_t>> entries;
  for (index_t gi = row0; gi < row1; ++gi) {
    const auto z = static_cast<index_t>(gi / plane);
    const auto rem = static_cast<index_t>(gi % plane);
    const index_t y = rem / nx;
    const index_t x = rem % nx;
    if (w.family == Family::Stencil27) {
      for (index_t dz = -1; dz <= 1; ++dz) {
        for (index_t dy = -1; dy <= 1; ++dy) {
          for (index_t dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0 && dz == 0) continue;
            const index_t X = x + dx;
            const index_t Y = y + dy;
            const index_t Z = z + dz;
            if (X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= w.nz) {
              continue;
            }
            entries.emplace_back(
                static_cast<index_t>((static_cast<offset_t>(Z) * ny + Y) * nx +
                                     X),
                -1.0);
          }
        }
      }
      entries.emplace_back(gi, 26.0 + w.shift);
    } else {
      const bool three_d = w.family == Family::Stencil3D;
      if (x > 0) entries.emplace_back(gi - 1, -1.0);
      if (x + 1 < nx) entries.emplace_back(gi + 1, -1.0);
      if (y > 0) entries.emplace_back(gi - nx, -1.0);
      if (y + 1 < ny) entries.emplace_back(gi + nx, -1.0);
      if (three_d) {
        if (z > 0) entries.emplace_back(static_cast<index_t>(gi - plane), -1.0);
        if (z + 1 < w.nz) {
          entries.emplace_back(static_cast<index_t>(gi + plane), -1.0);
        }
        entries.emplace_back(gi, 6.0 + w.shift);
      } else {
        entries.emplace_back(gi, 4.0 + w.shift);
      }
    }
    append_row(entries, out);
  }
  return out;
}

// ---- random geometric graphs --------------------------------------------

/// Deterministic distribution of `npoints` over `ncells` linearized cells
/// via recursive binary splits of the cell index range: the left half of
/// [lo, hi) gets a normal-approximated binomial share drawn from an Rng
/// seeded by (seed, lo, hi). Any count/prefix/locate query replays the
/// O(log ncells) splits on its root-to-leaf path — no O(ncells) state, so
/// every rank answers queries about every cell independently and
/// identically.
class CellSplit {
 public:
  CellSplit(std::uint64_t seed, offset_t ncells, index_t npoints)
      : seed_(seed), ncells_(ncells), npoints_(npoints) {}

  [[nodiscard]] index_t count(offset_t cell) const {
    offset_t lo = 0;
    offset_t hi = ncells_;
    index_t cnt = npoints_;
    while (hi - lo > 1 && cnt > 0) {
      const offset_t mid = lo + (hi - lo) / 2;
      const index_t left = left_of(lo, hi, cnt);
      if (cell < mid) {
        hi = mid;
        cnt = left;
      } else {
        lo = mid;
        cnt -= left;
      }
    }
    return cnt;
  }

  /// Points in cells [0, cell).
  [[nodiscard]] index_t prefix(offset_t cell) const {
    if (cell >= ncells_) return npoints_;
    offset_t lo = 0;
    offset_t hi = ncells_;
    index_t cnt = npoints_;
    index_t acc = 0;
    while (hi - lo > 1 && cnt > 0) {
      const offset_t mid = lo + (hi - lo) / 2;
      const index_t left = left_of(lo, hi, cnt);
      if (cell < mid) {
        hi = mid;
        cnt = left;
      } else {
        acc += left;
        lo = mid;
        cnt -= left;
      }
    }
    return cell <= lo ? acc : acc + cnt;
  }

  /// Cell and in-cell offset of global point id `gid` (cell-major point
  /// numbering).
  void locate(index_t gid, offset_t* cell, index_t* off) const {
    offset_t lo = 0;
    offset_t hi = ncells_;
    index_t cnt = npoints_;
    index_t g = gid;
    while (hi - lo > 1) {
      const offset_t mid = lo + (hi - lo) / 2;
      const index_t left = left_of(lo, hi, cnt);
      if (g < left) {
        hi = mid;
        cnt = left;
      } else {
        g -= left;
        lo = mid;
        cnt -= left;
      }
    }
    *cell = lo;
    *off = g;
  }

 private:
  /// Left-half share of `cnt` points at split node [lo, hi): binomial
  /// (cnt, |left|/|range|) via the normal approximation with an Irwin-Hall
  /// normal deviate (sum of 12 uniforms) — O(1), exact conservation, and a
  /// pure function of (seed, lo, hi, cnt).
  [[nodiscard]] index_t left_of(offset_t lo, offset_t hi, index_t cnt) const {
    const offset_t mid = lo + (hi - lo) / 2;
    const double f = static_cast<double>(mid - lo) / static_cast<double>(hi - lo);
    Rng rng(hash_combine(hash_combine(seed_ ^ kSplitTag,
                                      static_cast<std::uint64_t>(lo)),
                         static_cast<std::uint64_t>(hi)));
    double z = -6.0;
    for (int k = 0; k < 12; ++k) z += rng.next_uniform();
    const double mean = static_cast<double>(cnt) * f;
    const double sd = std::sqrt(static_cast<double>(cnt) * f * (1.0 - f));
    long long left = std::llround(mean + z * sd);
    if (left < 0) left = 0;
    if (left > cnt) left = cnt;
    return static_cast<index_t>(left);
  }

  std::uint64_t seed_;
  offset_t ncells_;
  index_t npoints_;
};

struct Point {
  double x = 0.0, y = 0.0, z = 0.0;
};

/// All points of one cell, in point-id order.
void cell_points(const ResolvedWorkload& w, offset_t cell, index_t cnt,
                 std::vector<Point>& out) {
  out.clear();
  const index_t cells = w.cells;
  const double width = 1.0 / static_cast<double>(cells);
  const auto cx = static_cast<index_t>(cell % cells);
  const auto cyz = cell / cells;
  const auto cy = static_cast<index_t>(cyz % cells);
  const auto cz = static_cast<index_t>(cyz / cells);
  for (index_t j = 0; j < cnt; ++j) {
    Rng rng(hash_combine(hash_combine(w.seed ^ kPointTag,
                                      static_cast<std::uint64_t>(cell)),
                         static_cast<std::uint64_t>(j)));
    Point p;
    p.x = (static_cast<double>(cx) + rng.next_uniform()) * width;
    p.y = (static_cast<double>(cy) + rng.next_uniform()) * width;
    if (w.family == Family::Rgg3D) {
      p.z = (static_cast<double>(cz) + rng.next_uniform()) * width;
    }
    out.push_back(p);
  }
}

RankLocalRows rgg_rows(const ResolvedWorkload& w, index_t row0, index_t row1) {
  RankLocalRows out;
  out.row_ptr.reserve(static_cast<std::size_t>(row1 - row0) + 1);
  out.row_ptr.push_back(0);
  if (row0 == row1) return out;
  const bool three_d = w.family == Family::Rgg3D;
  const index_t cells = w.cells;
  const offset_t ncells = three_d
                              ? static_cast<offset_t>(cells) * cells * cells
                              : static_cast<offset_t>(cells) * cells;
  const CellSplit split(w.seed, ncells, w.rows);
  const double r2 = w.radius * w.radius;

  offset_t cell = 0;
  index_t off0 = 0;
  split.locate(row0, &cell, &off0);
  index_t pre = row0 - off0;  // points before `cell`

  struct NeighborCell {
    index_t prefix = 0;
    bool self = false;
    std::vector<Point> pts;
  };
  std::vector<Point> own;
  std::vector<NeighborCell> nbrs;
  std::vector<std::pair<index_t, value_t>> entries;

  for (; pre < row1 && cell < ncells; ++cell) {
    const index_t cnt = split.count(cell);
    if (cnt == 0) continue;
    if (pre + cnt <= row0) {
      pre += cnt;
      continue;
    }
    cell_points(w, cell, cnt, own);

    // Gather the 3^d surrounding cells (clamped at the domain boundary —
    // no wrap-around).
    nbrs.clear();
    const auto cx = static_cast<index_t>(cell % cells);
    const auto cyz = cell / cells;
    const auto cy = static_cast<index_t>(cyz % cells);
    const auto cz = static_cast<index_t>(cyz / cells);
    const index_t z_lo = three_d ? std::max<index_t>(0, cz - 1) : 0;
    const index_t z_hi = three_d ? std::min<index_t>(cells - 1, cz + 1) : 0;
    for (index_t zz = z_lo; zz <= z_hi; ++zz) {
      for (index_t yy = std::max<index_t>(0, cy - 1);
           yy <= std::min<index_t>(cells - 1, cy + 1); ++yy) {
        for (index_t xx = std::max<index_t>(0, cx - 1);
             xx <= std::min<index_t>(cells - 1, cx + 1); ++xx) {
          const offset_t nc =
              (static_cast<offset_t>(zz) * cells + yy) * cells + xx;
          NeighborCell n;
          n.self = nc == cell;
          n.prefix = split.prefix(nc);
          if (n.self) {
            n.pts = own;
          } else {
            cell_points(w, nc, split.count(nc), n.pts);
          }
          nbrs.push_back(std::move(n));
        }
      }
    }

    const index_t j_lo = std::max<index_t>(0, row0 - pre);
    const index_t j_hi = std::min<index_t>(cnt, row1 - pre);
    for (index_t j = j_lo; j < j_hi; ++j) {
      const index_t gid = pre + j;
      const Point& pj = own[static_cast<std::size_t>(j)];
      for (const NeighborCell& n : nbrs) {
        for (std::size_t k = 0; k < n.pts.size(); ++k) {
          if (n.self && static_cast<index_t>(k) == j) continue;
          const double dx = n.pts[k].x - pj.x;
          const double dy = n.pts[k].y - pj.y;
          const double dz = n.pts[k].z - pj.z;
          if (dx * dx + dy * dy + dz * dz <= r2) {
            entries.emplace_back(n.prefix + static_cast<index_t>(k), -1.0);
          }
        }
      }
      // Integer degree + shift: no accumulation-order sensitivity anywhere.
      entries.emplace_back(gid,
                           static_cast<value_t>(entries.size()) + w.shift);
      append_row(entries, out);
    }
    pre += cnt;
  }
  FSAIC_REQUIRE(out.row_ptr.size() == static_cast<std::size_t>(row1 - row0) + 1,
                "rgg generation lost rows");
  return out;
}

// ---- R-MAT graph Laplacian ----------------------------------------------

/// Graph500 partition probabilities (a, b, c, d) = (.57, .19, .19, .05).
RankLocalRows rmat_rows(const ResolvedWorkload& w, index_t row0, index_t row1) {
  const index_t nloc = row1 - row0;
  // Every edge endpoint in [row0, row1), as (local row gid, neighbor gid).
  // Each rank rescans the full deterministic edge stream and keeps its own
  // endpoints: O(edges) compute but O(rows/rank) memory — the price of
  // rank-local generation for a family with no geometric locality.
  std::vector<std::pair<index_t, index_t>> incident;
  for (offset_t e = 0; e < w.edges; ++e) {
    Rng rng(hash_combine(w.seed ^ kEdgeTag, static_cast<std::uint64_t>(e)));
    index_t i = 0;
    index_t j = 0;
    for (int level = 0; level < w.scale; ++level) {
      const double u = rng.next_uniform();
      i <<= 1;
      j <<= 1;
      if (u < 0.57) {
        // top-left quadrant
      } else if (u < 0.76) {
        j |= 1;
      } else if (u < 0.95) {
        i |= 1;
      } else {
        i |= 1;
        j |= 1;
      }
    }
    if (i == j) continue;  // self-loops contribute nothing to the Laplacian
    if (i >= row0 && i < row1) incident.emplace_back(i, j);
    if (j >= row0 && j < row1) incident.emplace_back(j, i);
  }
  std::sort(incident.begin(), incident.end());

  RankLocalRows out;
  out.row_ptr.reserve(static_cast<std::size_t>(nloc) + 1);
  out.row_ptr.push_back(0);
  std::size_t k = 0;
  std::vector<std::pair<index_t, value_t>> entries;
  for (index_t li = 0; li < nloc; ++li) {
    const index_t gi = row0 + li;
    offset_t degree = 0;
    while (k < incident.size() && incident[k].first == gi) {
      // Duplicate edges collapse into one entry of weight -multiplicity.
      const index_t col = incident[k].second;
      offset_t mult = 0;
      while (k < incident.size() && incident[k].first == gi &&
             incident[k].second == col) {
        ++mult;
        ++k;
      }
      degree += mult;
      entries.emplace_back(col, -static_cast<value_t>(mult));
    }
    entries.emplace_back(gi, static_cast<value_t>(degree) + w.shift);
    append_row(entries, out);
  }
  return out;
}

}  // namespace

RankLocalRows generate_rows(const ResolvedWorkload& w, index_t row0,
                            index_t row1) {
  FSAIC_REQUIRE(row0 >= 0 && row0 <= row1 && row1 <= w.rows,
                "generate_rows range out of bounds");
  switch (w.family) {
    case Family::Stencil2D:
    case Family::Stencil3D:
    case Family::Stencil27:
      return stencil_rows(w, row0, row1);
    case Family::Rgg2D:
    case Family::Rgg3D:
      return rgg_rows(w, row0, row1);
    case Family::Rmat:
      return rmat_rows(w, row0, row1);
  }
  throw Error("unknown workload family");
}

DistCsr generate_dist(const ResolvedWorkload& w, rank_t nranks,
                      const CommConfig& comm, WgenStats* stats,
                      Executor* exec) {
  FSAIC_REQUIRE(nranks >= 1, "generate_dist needs >= 1 ranks");
  const Layout layout = Layout::blocked(w.rows, nranks);
  const auto t0 = std::chrono::steady_clock::now();
  DistCsr d = DistCsr::from_rank_local(
      layout,
      [&w, &layout](rank_t p) {
        return generate_rows(w, layout.begin(p), layout.end(p));
      },
      comm, exec);
  if (stats != nullptr) {
    stats->rows = w.rows;
    stats->nnz = d.nnz();
    stats->nranks = nranks;
    stats->max_rank_nnz = d.max_rank_nnz();
    stats->max_rank_rows = 0;
    for (rank_t p = 0; p < nranks; ++p) {
      stats->max_rank_rows =
          std::max(stats->max_rank_rows, layout.local_size(p));
    }
    stats->generate_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return d;
}

CsrMatrix generate_global(const ResolvedWorkload& w) {
  RankLocalRows rows = generate_rows(w, 0, w.rows);
  return CsrMatrix(w.rows, w.rows, std::move(rows.row_ptr),
                   std::move(rows.col_gids), std::move(rows.values));
}

}  // namespace fsaic::wgen
