// Rank-local distributed workload generation (KaGen-style).
//
// A WorkloadSpec names a synthetic operator family plus its parameters,
// parsed from a compact spec string ("stencil3d:nx=64,ny=64,nz=256",
// "rgg2d:rows_per_rank=65536,radius=auto", "rmat:n=4096,edge_factor=8")
// or from a JSON object. resolve_workload() turns the spec into concrete
// dimensions for a given rank count; generate_rows() then produces any
// contiguous row range [row0, row1) of the GLOBAL operator as a pure
// function of (resolved spec, row index) — no global state, no
// communication, no rank-count dependence. generate_dist() feeds those
// per-rank row ranges straight into DistCsr::from_rank_local(), so no
// global CsrMatrix ever materializes and peak per-rank memory is
// O(rows/rank + ghosts).
//
// Determinism contract: for a FIXED resolved global size, the generated
// operator is bit-identical (structure and value bit patterns) regardless
// of rank count, thread count, or executor — every row derives from
// counter-seeded Rng streams (common/rng.hpp), never from shared-state
// draws. fingerprint_rank_local(generate_dist(w, P)) equals
// fingerprint_of(generate_global(w)) for every P; tests/wgen pins golden
// hashes. Specs using rows_per_rank intentionally scale the instance WITH
// the rank count (weak scaling): resolve them once per rank count and
// compare like with like.
//
// Families:
//   stencil2d  5-point Laplacian on an nx x ny grid (diag 4, neighbors -1)
//   stencil3d  7-point Laplacian on nx x ny x nz (diag 6)
//   stencil27  27-point Laplacian on nx x ny x nz (diag 26)
//   rgg2d/3d   random geometric graph Laplacian on points in [0,1)^d,
//              edges within `radius`, via per-cell counting-based hashing
//              (recursive deterministic splits; no global point list)
//   rmat       Graph500-style R-MAT graph Laplacian, n = 2^scale rows,
//              n * edge_factor edges, per-edge counter-seeded descent
// The rgg/rmat Laplacians add +shift (default 0.5, exactly representable)
// to every diagonal so the operators are SPD by strict diagonal dominance.
#pragma once

#include <cstdint>
#include <string>

#include "dist/dist_csr.hpp"
#include "obs/json.hpp"
#include "sparse/csr.hpp"

namespace fsaic {
class Executor;
}

namespace fsaic::wgen {

enum class Family {
  Stencil2D,
  Stencil3D,
  Stencil27,
  Rgg2D,
  Rgg3D,
  Rmat,
};

[[nodiscard]] const char* family_name(Family f);

/// Parsed but unresolved workload description. Zero-valued dimension fields
/// mean "not given"; resolve_workload() applies family defaults and the
/// rank count.
struct WorkloadSpec {
  Family family = Family::Stencil3D;
  index_t nx = 0;            ///< grid extents (stencil families)
  index_t ny = 0;
  index_t nz = 0;
  index_t n = 0;             ///< total rows (rgg/rmat) or cubic grid side
  index_t rows_per_rank = 0; ///< weak-scaling mode: rows grow with ranks
  std::uint64_t seed = 1;
  double radius = 0.0;       ///< rgg connection radius; 0 = auto (degree ~8)
  index_t edge_factor = 8;   ///< rmat edges per row
  double shift = -1.0;       ///< diagonal shift; <0 = family default

  /// Canonical spec-string spelling (parses back to an equal spec).
  [[nodiscard]] std::string to_string() const;

  bool operator==(const WorkloadSpec&) const = default;
};

/// True iff `text` is a workload spec string rather than a matgen suite
/// name: specs always carry a "family:" prefix (suite names never contain
/// a colon). A true result does not imply validity — parse_workload_spec
/// still throws on unknown families or malformed parameters.
[[nodiscard]] bool is_workload_spec(const std::string& text);

/// Parse "family:key=value,key=value,...". Keys: n, nx, ny, nz,
/// rows_per_rank (alias rpn; "rpn=fixed" is an accepted no-op marking the
/// global size as fixed), seed, radius (number or "auto"), edge_factor,
/// shift. Throws fsaic::Error with a pointed message on anything malformed.
[[nodiscard]] WorkloadSpec parse_workload_spec(const std::string& text);

/// Same spec as a JSON object: {"family": "stencil3d", "nx": 64, ...}.
[[nodiscard]] WorkloadSpec workload_spec_from_json(const JsonValue& v);
[[nodiscard]] JsonValue workload_spec_to_json(const WorkloadSpec& spec);

/// A spec with every dimension concrete for one rank count. Generation
/// consumes only this struct — two equal ResolvedWorkloads yield
/// bit-identical operators no matter how the work is split.
struct ResolvedWorkload {
  Family family = Family::Stencil3D;
  index_t rows = 0;
  index_t nx = 0, ny = 0, nz = 0;  ///< stencil grid extents
  std::uint64_t seed = 1;
  double shift = 0.0;
  double radius = 0.0;             ///< rgg: connection radius
  index_t cells = 1;               ///< rgg: cells per side (cell >= radius)
  int scale = 0;                   ///< rmat: rows == 1 << scale
  offset_t edges = 0;              ///< rmat: generated edge count

  bool operator==(const ResolvedWorkload&) const = default;
};

/// Apply family defaults and the rank count. rows_per_rank specs grow the
/// last dimension (stencils) or the row count (rgg/rmat) with nranks;
/// fixed specs ignore nranks entirely.
[[nodiscard]] ResolvedWorkload resolve_workload(const WorkloadSpec& spec,
                                                rank_t nranks);

/// Generate global rows [row0, row1) with global, sorted, duplicate-free
/// column ids per row. Pure and deterministic: any split of [0, rows) into
/// ranges concatenates to the same operator.
[[nodiscard]] RankLocalRows generate_rows(const ResolvedWorkload& w,
                                          index_t row0, index_t row1);

/// Per-rank footprint accounting of one generate_dist() call — the proof
/// that nothing global materialized: max_rank_nnz stays ~nnz/nranks.
struct WgenStats {
  index_t rows = 0;
  offset_t nnz = 0;
  rank_t nranks = 1;
  index_t max_rank_rows = 0;
  offset_t max_rank_nnz = 0;
  double generate_seconds = 0.0;

  /// max_rank_nnz / (nnz / nranks); 1.0 is a perfect split.
  [[nodiscard]] double balance() const {
    return nnz > 0 ? static_cast<double>(max_rank_nnz) *
                         static_cast<double>(nranks) / static_cast<double>(nnz)
                   : 1.0;
  }
};

/// Generate the operator directly into per-rank DistCsr blocks over
/// Layout::blocked(rows, nranks) — no global matrix is ever assembled.
/// Rank blocks are generated in parallel on `exec` (nullptr -> the
/// process-wide default); the result is bit-identical to
/// DistCsr::distribute(generate_global(w), layout, comm).
[[nodiscard]] DistCsr generate_dist(const ResolvedWorkload& w, rank_t nranks,
                                    const CommConfig& comm,
                                    WgenStats* stats = nullptr,
                                    Executor* exec = nullptr);

/// Sequential reference assembly of the full operator (differential tests,
/// MatrixMarket export). Materializes all rows — O(rows) memory.
[[nodiscard]] CsrMatrix generate_global(const ResolvedWorkload& w);

}  // namespace fsaic::wgen
