#include "service/protocol.hpp"

#include "common/error.hpp"
#include "common/format.hpp"
#include "wgen/wgen.hpp"

namespace fsaic {

namespace {

const JsonValue* find_key(const JsonValue& v, const char* key) {
  return v.find(key);
}

std::string get_string(const JsonValue& v, const char* key,
                       const std::string& fallback) {
  const JsonValue* f = find_key(v, key);
  return f == nullptr ? fallback : f->as_string();
}

double get_number(const JsonValue& v, const char* key, double fallback) {
  const JsonValue* f = find_key(v, key);
  return f == nullptr ? fallback : f->as_double();
}

bool get_bool(const JsonValue& v, const char* key, bool fallback) {
  const JsonValue* f = find_key(v, key);
  return f == nullptr ? fallback : f->as_bool();
}

}  // namespace

std::string SolveRequest::batch_key() const {
  // The solver/tol/rhs fields are deliberately absent: requests that differ
  // only in those still share the operator setup.
  return (matrix_path.empty() ? "gen:" + generate : "mtx:" + matrix_path) +
         "|" + method + "|" + strformat("%.17g", static_cast<double>(filter)) +
         "|" + filter_strategy + "|" + std::to_string(ranks);
}

SolveRequest parse_request(const JsonValue& v) {
  FSAIC_REQUIRE(v.is_object(), "request must be a JSON object");
  SolveRequest req;
  req.id = get_string(v, "id", "");
  FSAIC_REQUIRE(!req.id.empty(), "request needs a non-empty \"id\"");
  req.matrix_path = get_string(v, "matrix", "");
  req.generate = get_string(v, "generate", "");
  FSAIC_REQUIRE(req.matrix_path.empty() != req.generate.empty(),
                "request needs exactly one of \"matrix\" or \"generate\"");
  req.method = get_string(v, "method", req.method);
  FSAIC_REQUIRE(req.method == "fsai" || req.method == "fsaie" ||
                    req.method == "fsaie-comm" || req.method == "fsaie-full",
                "unsupported method \"" + req.method +
                    "\" (service methods: fsai|fsaie|fsaie-comm|fsaie-full)");
  req.filter = static_cast<value_t>(get_number(v, "filter", req.filter));
  FSAIC_REQUIRE(req.filter >= 0.0, "\"filter\" must be >= 0");
  req.filter_strategy = get_string(v, "filter_strategy", req.filter_strategy);
  FSAIC_REQUIRE(
      req.filter_strategy == "dynamic" || req.filter_strategy == "static",
      "\"filter_strategy\" must be \"dynamic\" or \"static\"");
  req.ranks = static_cast<rank_t>(get_number(v, "ranks", req.ranks));
  FSAIC_REQUIRE(req.ranks >= 1, "\"ranks\" must be >= 1");
  if (!req.generate.empty() && wgen::is_workload_spec(req.generate)) {
    // Workload spec strings ("stencil3d:nx=64,...") are validated — and
    // fully resolved against the requested rank count — at admission time.
    // This runs in parse_request, the one parsing path shared by
    // --requests, stdin, and watch-dir mode, so every intake rejects a bad
    // spec identically instead of failing inside a worker.
    (void)wgen::resolve_workload(wgen::parse_workload_spec(req.generate),
                                 req.ranks);
  }
  req.solver = get_string(v, "solver", req.solver);
  FSAIC_REQUIRE(req.solver == "pcg" || req.solver == "pipelined-cg",
                "\"solver\" must be \"pcg\" or \"pipelined-cg\"");
  req.tol = static_cast<value_t>(get_number(v, "tol", req.tol));
  FSAIC_REQUIRE(req.tol > 0.0, "\"tol\" must be positive");
  req.max_iterations =
      static_cast<int>(get_number(v, "max_iterations", req.max_iterations));
  FSAIC_REQUIRE(req.max_iterations >= 1, "\"max_iterations\" must be >= 1");
  req.rhs_path = get_string(v, "rhs", "");
  req.rhs_seed = static_cast<std::uint64_t>(
      get_number(v, "rhs_seed", static_cast<double>(req.rhs_seed)));
  req.deadline_ms = get_number(v, "deadline_ms", -1.0);
  req.priority = static_cast<int>(get_number(v, "priority", 0.0));
  req.warm_start = get_bool(v, "warm_start", false);
  req.want_history = get_bool(v, "history", false);
  return req;
}

JsonValue to_json(const SolveRequest& req) {
  JsonValue v = JsonValue::object();
  v["id"] = req.id;
  if (!req.matrix_path.empty()) v["matrix"] = req.matrix_path;
  if (!req.generate.empty()) v["generate"] = req.generate;
  v["method"] = req.method;
  v["filter"] = static_cast<double>(req.filter);
  v["filter_strategy"] = req.filter_strategy;
  v["ranks"] = req.ranks;
  v["solver"] = req.solver;
  v["tol"] = static_cast<double>(req.tol);
  v["max_iterations"] = req.max_iterations;
  if (!req.rhs_path.empty()) v["rhs"] = req.rhs_path;
  v["rhs_seed"] = static_cast<std::int64_t>(req.rhs_seed);
  if (req.deadline_ms >= 0.0) v["deadline_ms"] = req.deadline_ms;
  if (req.priority != 0) v["priority"] = req.priority;
  if (req.warm_start) v["warm_start"] = true;
  if (req.want_history) v["history"] = true;
  return v;
}

JsonValue to_json(const SolveResponse& resp) {
  JsonValue v = JsonValue::object();
  v["kind"] = "response";
  v["id"] = resp.id;
  if (resp.rid > 0) v["rid"] = resp.rid;
  v["status"] = resp.status;
  if (!resp.reason.empty()) v["reason"] = resp.reason;
  if (resp.ok()) {
    v["converged"] = resp.converged;
    v["iterations"] = resp.iterations;
    v["initial_residual"] = resp.initial_residual;
    v["final_residual"] = resp.final_residual;
    if (!resp.cache.empty()) v["cache"] = resp.cache;
    v["batch_size"] = resp.batch_size;
    if (!resp.fingerprint.empty()) v["fingerprint"] = resp.fingerprint;
    if (resp.warm_start) v["warm_start"] = true;
    v["setup_us"] = resp.setup_us;
    v["solve_us"] = resp.solve_us;
  }
  v["queue_us"] = resp.queue_us;
  v["total_us"] = resp.total_us;
  if (!resp.residuals.empty()) {
    JsonValue hist = JsonValue::array();
    for (const double r : resp.residuals) hist.push_back(r);
    v["residuals"] = std::move(hist);
  }
  return v;
}

}  // namespace fsaic
