// In-process solve server: persistent workers, factor cache, multi-RHS
// batching and admission control.
//
// The library's one-shot entry points rebuild the preconditioner on every
// run even though FSAI setup amortizes across solves — exactly the regime
// the paper targets. SolveService keeps the expensive state alive: requests
// enter a bounded queue (admission control rejects with a reason when the
// queue is full or a request's deadline has already passed), a pool of
// worker threads pops them, and a worker that dequeues a request also
// drains every queued request with the same batch key (operator + build
// configuration). The batch shares one setup — matrix load, partition,
// factor acquisition, halo scheme — and solves its right-hand sides
// back-to-back, so per-request results are bit-identical whether a request
// was solved alone or inside a batch, with a cold or a cached factor, and
// across any worker count.
//
// Factors come from a content-addressed LRU FactorCache; repeated solves
// against the same operator skip setup entirely. Observability: queue
// depth / in-flight gauges, cache and rejection counters, and per-request
// queue/setup/solve latency histograms land in an attached MetricsRegistry;
// an attached TraceRecorder gets one queue/setup/solve slice triple per
// request.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/factor_cache.hpp"
#include "service/protocol.hpp"
#include "service/request_queue.hpp"

namespace fsaic {

class Executor;

struct ServiceOptions {
  /// Worker threads solving requests (results are identical for any count).
  int workers = 1;
  /// Bounded request queue; submissions beyond this are rejected
  /// ("queue_full") instead of blocking the producer.
  std::size_t queue_capacity = 64;
  /// Resident factors in the LRU cache (0 disables factor reuse).
  std::size_t cache_capacity = 8;
  /// Coalesce queued same-operator requests into one batched solve.
  bool batching = true;
  /// Executor threads per worker for the solves themselves (1 = sequential;
  /// results are bit-identical either way).
  int solver_threads = 1;
  /// Borrowed observability attachments; all optional. The logger receives
  /// one structured event per request-lifecycle step (admit / reject /
  /// dequeue / setup / solve / error), each carrying the request id `rid`
  /// minted at admission.
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  Logger* log = nullptr;
};

/// Aggregate serving counters (also mirrored into the MetricsRegistry).
struct ServiceStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;   ///< accepted into the queue
  std::int64_t completed = 0;  ///< responses with status "ok"
  std::int64_t errors = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_deadline = 0;
  std::int64_t batches = 0;
  std::int64_t max_batch_size = 0;
  FactorCacheStats cache;

  /// Fold another block in (counters add, max_batch_size maxes) — how watch
  /// mode aggregates its per-pass stats into one end-of-run summary.
  void merge(const ServiceStats& other);
};

/// One JSONL summary record ({"kind":"serve", …}) of a service run: the
/// counters above plus the cache block. `fsaic serve` appends it to the
/// FSAIC_REPORT file in both --requests and --watch mode.
[[nodiscard]] JsonValue serve_stats_to_json(const ServiceStats& stats);

class SolveService {
 public:
  /// `on_response` receives exactly one SolveResponse per submitted request
  /// — immediately (from submit) for admission rejections, from a worker
  /// thread otherwise. Calls are serialized by the service.
  using ResponseHandler = std::function<void(const SolveResponse&)>;

  SolveService(ServiceOptions options, ResponseHandler on_response);

  /// Drains the queue (all accepted requests are answered) and joins the
  /// workers.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admission control: enqueue the request, or deliver a rejection
  /// response ("queue_full" / "deadline") through the handler right away.
  /// Returns true when the request was accepted into the queue.
  bool submit(SolveRequest request);

  /// Block until every accepted request has been answered.
  void drain();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const FactorCache& cache() const { return cache_; }

 private:
  struct Pending {
    SolveRequest request;
    std::string batch_key;
    std::chrono::steady_clock::time_point submitted_at;
    std::int64_t rid = 0;  ///< minted at admission, echoed everywhere
  };

  void worker_loop();
  void process_batch(std::vector<Pending> batch, Executor* exec);
  void deliver(const SolveResponse& response);
  void finish_one();
  [[nodiscard]] static bool deadline_expired(
      const Pending& p, std::chrono::steady_clock::time_point now);

  ServiceOptions options_;
  ResponseHandler on_response_;
  RequestQueue<Pending> queue_;
  FactorCache cache_;
  std::atomic<std::int64_t> next_rid_{0};

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;

  std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::int64_t accepted_ = 0;
  std::int64_t answered_ = 0;

  std::mutex deliver_mutex_;
  std::vector<std::thread> workers_;
};

/// Run a JSONL request stream end to end: parse every line of `in`, submit
/// it (malformed lines get an "error" response with the parse message),
/// drain, and write one JSONL response per request to `out` in completion
/// order. Returns the final stats.
ServiceStats serve_requests(const ServiceOptions& options, std::istream& in,
                            std::ostream& out);

/// One pass of `fsaic serve --watch`: process every "*.jsonl" file in `dir`
/// that has no "<stem>.out.jsonl" yet, writing responses next to it.
/// Returns the number of request files processed; when `accumulate` is
/// non-null, each file's ServiceStats are merged into it so a watch session
/// can report the same end-of-run summary as --requests mode.
int process_watch_directory(const ServiceOptions& options,
                            const std::string& dir,
                            ServiceStats* accumulate = nullptr);

}  // namespace fsaic
