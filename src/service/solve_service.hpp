// In-process solve server: fingerprint-sharded workers, two-tier factor
// cache, multi-RHS batching, SLO-aware scheduling and warm-started solves.
//
// The library's one-shot entry points rebuild the preconditioner on every
// run even though FSAI setup amortizes across solves — exactly the regime
// the paper targets. SolveService keeps the expensive state alive: requests
// enter a bounded sharded scheduler (admission control rejects with a
// reason when the scheduler is full, a request's deadline has already
// passed, or the modeled backlog predicts the deadline cannot be met), a
// pool of worker threads pops them, and a worker that dequeues a request
// also drains every queued request with the same batch key (operator +
// build configuration). The batch shares one setup — matrix load,
// partition, factor acquisition, halo scheme — and solves its right-hand
// sides back-to-back, so per-request results are bit-identical whether a
// request was solved alone or inside a batch, with a cold, RAM-cached or
// disk-reloaded factor, and across any worker count.
//
// Sharding: requests are routed to worker lanes by operator fingerprint
// (`hash(batch_key) % workers`), so same-operator traffic lands on the same
// worker — batching becomes systematic instead of accidental and each
// shard's slice of the factor cache stays hot. Idle workers steal from
// other lanes, so a single hot operator never strands the rest of the pool.
// Within a lane, dequeue order is priority-then-EDF (see scheduler.hpp).
//
// Factors come from a content-addressed two-tier FactorCache (RAM LRU +
// optional fingerprint-addressed disk store, see factor_cache.hpp);
// repeated solves against the same operator skip setup entirely, and a
// restarted service warm-starts from the store (`fsaic serve --store`).
// Requests that opt in ("warm_start": true) additionally reuse the cached
// solution of a recent same-operator/same-RHS request as the CG initial
// guess, converging against the original cold solve's residual target.
//
// Observability: queue depth / in-flight gauges, cache / rejection /
// warm-start counters, and per-request queue/setup/solve latency histograms
// land in an attached MetricsRegistry; an attached TraceRecorder gets one
// queue/setup/solve slice triple per request.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/factor_cache.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"

namespace fsaic {

class Executor;

struct ServiceOptions {
  /// Worker threads solving requests (results are identical for any count).
  int workers = 1;
  /// Bounded request scheduler; submissions beyond this are rejected
  /// ("queue_full") instead of blocking the producer.
  std::size_t queue_capacity = 64;
  /// Resident factors in the LRU cache (0 disables factor reuse).
  std::size_t cache_capacity = 8;
  /// Directory of the on-disk factor store (empty = RAM-only cache).
  /// Factors are persisted write-through and reloaded transparently on RAM
  /// misses, so a restarted service reuses the previous process's setups.
  std::string store_dir;
  /// Total bytes the disk store may occupy (0 = unlimited). When a persist
  /// pushes the store past the cap, the least-recently-accessed factor
  /// files are deleted until it fits (see factor_cache.hpp).
  std::size_t store_max_bytes = 0;
  /// Coalesce queued same-operator requests into one batched solve.
  bool batching = true;
  /// Executor threads per worker for the solves themselves (1 = sequential;
  /// results are bit-identical either way).
  int solver_threads = 1;
  /// Recent solutions remembered for warm-starting opted-in requests
  /// ("warm_start": true); 0 disables the solution cache.
  std::size_t solution_cache_capacity = 16;
  /// Borrowed observability attachments; all optional. The logger receives
  /// one structured event per request-lifecycle step (admit / reject /
  /// dequeue / setup / solve / error), each carrying the request id `rid`
  /// minted at admission.
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  Logger* log = nullptr;
};

/// Aggregate serving counters (also mirrored into the MetricsRegistry).
struct ServiceStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;   ///< accepted into the scheduler
  std::int64_t completed = 0;  ///< responses with status "ok"
  std::int64_t errors = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_deadline = 0;
  /// Load-shedding: rejected at admission because the modeled backlog +
  /// this request's predicted service time already exceed its deadline.
  std::int64_t rejected_predicted = 0;
  std::int64_t batches = 0;
  std::int64_t max_batch_size = 0;
  std::int64_t warm_starts = 0;  ///< solves seeded from the solution cache
  FactorCacheStats cache;

  /// Fold another block in (counters add, max_batch_size maxes) — how watch
  /// mode aggregates its per-pass stats into one end-of-run summary.
  void merge(const ServiceStats& other);
};

/// One JSONL summary record ({"kind":"serve", …}) of a service run: the
/// counters above plus the cache block. `fsaic serve` appends it to the
/// FSAIC_REPORT file in both --requests and --watch mode.
[[nodiscard]] JsonValue serve_stats_to_json(const ServiceStats& stats);

class SolveService {
 public:
  /// `on_response` receives exactly one SolveResponse per submitted request
  /// — immediately (from submit) for admission rejections, from a worker
  /// thread otherwise. Calls are serialized by the service.
  using ResponseHandler = std::function<void(const SolveResponse&)>;

  SolveService(ServiceOptions options, ResponseHandler on_response);

  /// Drains the scheduler (all accepted requests are answered) and joins
  /// the workers.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admission control: enqueue the request, or deliver a rejection
  /// response ("queue_full" / "deadline" / "deadline_predicted") through
  /// the handler right away. Returns true when the request was accepted.
  bool submit(SolveRequest request);

  /// Block until every accepted request has been answered.
  void drain();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const FactorCache& cache() const { return cache_; }

 private:
  struct Pending {
    SolveRequest request;
    std::string batch_key;
    std::chrono::steady_clock::time_point submitted_at;
    std::int64_t rid = 0;  ///< minted at admission, echoed everywhere
    std::size_t shard = 0;  ///< hash(batch_key) % workers — the worker lane
    /// Absolute deadline in steady-clock microseconds (-1 = none); the EDF
    /// sort key of the scheduler.
    double deadline_at_us = -1.0;
    /// Modeled service time charged to the backlog accounting at admission
    /// and released at dequeue (0 when the operator has no history yet).
    double predicted_us = 0.0;
  };

  /// Scheduler adapter (see scheduler.hpp for the Traits contract).
  struct PendingTraits {
    static std::size_t shard(const Pending& p) { return p.shard; }
    static int priority(const Pending& p) { return p.request.priority; }
    static double deadline_us(const Pending& p) { return p.deadline_at_us; }
    static std::int64_t seq(const Pending& p) { return p.rid; }
  };

  /// A remembered solution: the warm-start seed of a repeat request.
  struct CachedSolution {
    std::vector<value_t> x;  ///< global solution vector (pre-partition order)
    /// ||r_0|| of the original cold solve — the reference the warm solve's
    /// convergence target is anchored to (SolveOptions::reference_residual).
    double reference_residual = 0.0;
  };

  void worker_loop(std::size_t shard);
  void process_batch(std::vector<Pending> batch, Executor* exec);
  void deliver(const SolveResponse& response);
  void finish_one();
  [[nodiscard]] static bool deadline_expired(
      const Pending& p, std::chrono::steady_clock::time_point now);

  /// EWMA of observed per-request service time for one batch key (0 =
  /// never seen), and the update after a completed request.
  [[nodiscard]] double predict_us(const std::string& batch_key) const;
  void record_service_us(const std::string& batch_key, double us);

  [[nodiscard]] std::optional<CachedSolution> solution_get(
      const std::string& key);
  void solution_put(const std::string& key, CachedSolution solution);

  ServiceOptions options_;
  ResponseHandler on_response_;
  ShardedScheduler<Pending, PendingTraits> queue_;
  FactorCache cache_;
  std::atomic<std::int64_t> next_rid_{0};
  /// Sum of predicted_us over queued requests (backlog model of the
  /// predictive admission check), in integer microseconds.
  std::atomic<std::int64_t> queued_predicted_us_{0};

  mutable std::mutex predict_mutex_;
  std::map<std::string, double> service_time_ewma_us_;

  std::mutex solution_mutex_;
  std::list<std::string> solution_lru_;
  std::map<std::string,
           std::pair<CachedSolution, std::list<std::string>::iterator>>
      solutions_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;

  std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::int64_t accepted_ = 0;
  std::int64_t answered_ = 0;

  std::mutex deliver_mutex_;
  std::vector<std::thread> workers_;
};

/// Run a JSONL request stream end to end: parse every line of `in`, submit
/// it (malformed lines get an "error" response with the parse message),
/// drain, and write one JSONL response per request to `out` in completion
/// order. Returns the final stats.
ServiceStats serve_requests(const ServiceOptions& options, std::istream& in,
                            std::ostream& out);

/// One pass of `fsaic serve --watch`: process every "*.jsonl" file in `dir`
/// that has no "<stem>.out.jsonl" yet, writing responses next to it.
/// Returns the number of request files processed; when `accumulate` is
/// non-null, each file's ServiceStats are merged into it so a watch session
/// can report the same end-of-run summary as --requests mode.
int process_watch_directory(const ServiceOptions& options,
                            const std::string& dir,
                            ServiceStats* accumulate = nullptr);

}  // namespace fsaic
