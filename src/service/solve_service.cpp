#include "service/solve_service.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "exec/exec_policy.hpp"
#include "matgen/suite.hpp"
#include "solver/pcg.hpp"
#include "solver/pipelined_cg.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/ops.hpp"
#include "wgen/wgen.hpp"

namespace fsaic {

namespace {

/// EWMA smoothing of the per-operator service-time model: heavy enough to
/// converge within a few requests, light enough to track drift (e.g. the
/// setup -> cache-hit transition after the first solve of an operator).
constexpr double kServiceTimeAlpha = 0.3;

double us_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

double us_since_epoch(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration<double, std::micro>(tp.time_since_epoch())
      .count();
}

ExtensionMode extension_of(const std::string& method) {
  if (method == "fsai") return ExtensionMode::None;
  if (method == "fsaie") return ExtensionMode::LocalOnly;
  if (method == "fsaie-comm") return ExtensionMode::CommAware;
  FSAIC_CHECK(method == "fsaie-full", "unexpected method " + method);
  return ExtensionMode::FullHalo;
}

/// The paper's synthesized right-hand side (the exact sequence `fsaic
/// solve` uses), permuted into the partitioned numbering.
std::vector<value_t> synthesize_rhs(std::uint64_t seed, index_t n) {
  Rng rng(seed);
  std::vector<value_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_uniform(-1.0, 1.0);
  return b;
}

std::vector<value_t> permute_rhs(std::span<const value_t> global,
                                 std::span<const index_t> perm) {
  std::vector<value_t> out(global.size());
  for (std::size_t i = 0; i < global.size(); ++i) {
    out[static_cast<std::size_t>(perm[i])] = global[i];
  }
  return out;
}

const char* tier_string(CacheTier tier) {
  switch (tier) {
    case CacheTier::Ram:
      return "hit";
    case CacheTier::Disk:
      return "disk";
    case CacheTier::Miss:
      break;
  }
  return "miss";
}

/// Base field set of every request-lifecycle log event.
JsonValue rid_fields(std::int64_t rid, const std::string& id) {
  JsonValue f = JsonValue::object();
  f["rid"] = rid;
  f["id"] = id;
  return f;
}

/// The {"rid":N} args object tagged onto the service's trace slices.
std::string rid_args(std::int64_t rid) {
  return strformat("{\"rid\":%lld}", static_cast<long long>(rid));
}

}  // namespace

void ServiceStats::merge(const ServiceStats& other) {
  submitted += other.submitted;
  admitted += other.admitted;
  completed += other.completed;
  errors += other.errors;
  rejected_queue_full += other.rejected_queue_full;
  rejected_deadline += other.rejected_deadline;
  rejected_predicted += other.rejected_predicted;
  batches += other.batches;
  max_batch_size = std::max(max_batch_size, other.max_batch_size);
  warm_starts += other.warm_starts;
  cache.hits += other.cache.hits;
  cache.misses += other.cache.misses;
  cache.insertions += other.cache.insertions;
  cache.evictions += other.cache.evictions;
  cache.disk_hits += other.cache.disk_hits;
  cache.spills += other.cache.spills;
  cache.load_failures += other.cache.load_failures;
  cache.store_evictions += other.cache.store_evictions;
}

JsonValue serve_stats_to_json(const ServiceStats& stats) {
  JsonValue v = JsonValue::object();
  v["kind"] = "serve";
  v["submitted"] = stats.submitted;
  v["admitted"] = stats.admitted;
  v["completed"] = stats.completed;
  v["errors"] = stats.errors;
  v["rejected_queue_full"] = stats.rejected_queue_full;
  v["rejected_deadline"] = stats.rejected_deadline;
  v["rejected_predicted"] = stats.rejected_predicted;
  v["batches"] = stats.batches;
  v["max_batch_size"] = stats.max_batch_size;
  v["warm_starts"] = stats.warm_starts;
  JsonValue cache = JsonValue::object();
  cache["hits"] = stats.cache.hits;
  cache["misses"] = stats.cache.misses;
  cache["insertions"] = stats.cache.insertions;
  cache["evictions"] = stats.cache.evictions;
  cache["disk_hits"] = stats.cache.disk_hits;
  cache["spills"] = stats.cache.spills;
  cache["load_failures"] = stats.cache.load_failures;
  cache["store_evictions"] = stats.cache.store_evictions;
  v["cache"] = std::move(cache);
  return v;
}

SolveService::SolveService(ServiceOptions options, ResponseHandler on_response)
    : options_(options),
      on_response_(std::move(on_response)),
      queue_(options.queue_capacity,
             static_cast<std::size_t>(std::max(options.workers, 1))),
      cache_(options.cache_capacity, options.store_dir,
             options.store_max_bytes) {
  FSAIC_REQUIRE(options_.workers >= 1, "service needs at least one worker");
  FSAIC_REQUIRE(options_.solver_threads >= 1, "solver_threads must be >= 1");
  FSAIC_REQUIRE(on_response_ != nullptr, "service needs a response handler");
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back(
        [this, w] { worker_loop(static_cast<std::size_t>(w)); });
  }
}

SolveService::~SolveService() {
  queue_.close();
  for (auto& t : workers_) t.join();
}

bool SolveService::deadline_expired(
    const Pending& p, std::chrono::steady_clock::time_point now) {
  if (p.request.deadline_ms < 0.0) return false;
  return us_between(p.submitted_at, now) >= p.request.deadline_ms * 1000.0;
}

double SolveService::predict_us(const std::string& batch_key) const {
  const std::lock_guard<std::mutex> lock(predict_mutex_);
  const auto it = service_time_ewma_us_.find(batch_key);
  return it == service_time_ewma_us_.end() ? 0.0 : it->second;
}

void SolveService::record_service_us(const std::string& batch_key, double us) {
  const std::lock_guard<std::mutex> lock(predict_mutex_);
  auto [it, inserted] = service_time_ewma_us_.try_emplace(batch_key, us);
  if (!inserted) {
    it->second += kServiceTimeAlpha * (us - it->second);
  }
}

std::optional<SolveService::CachedSolution> SolveService::solution_get(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(solution_mutex_);
  const auto it = solutions_.find(key);
  if (it == solutions_.end()) return std::nullopt;
  solution_lru_.splice(solution_lru_.begin(), solution_lru_,
                       it->second.second);
  return it->second.first;
}

void SolveService::solution_put(const std::string& key,
                                CachedSolution solution) {
  if (options_.solution_cache_capacity == 0) return;
  const std::lock_guard<std::mutex> lock(solution_mutex_);
  const auto it = solutions_.find(key);
  if (it != solutions_.end()) {
    it->second.first = std::move(solution);
    solution_lru_.splice(solution_lru_.begin(), solution_lru_,
                         it->second.second);
    return;
  }
  if (solutions_.size() >= options_.solution_cache_capacity) {
    solutions_.erase(solution_lru_.back());
    solution_lru_.pop_back();
  }
  solution_lru_.push_front(key);
  solutions_.emplace(key, std::make_pair(std::move(solution),
                                         solution_lru_.begin()));
}

bool SolveService::submit(SolveRequest request) {
  const auto now = std::chrono::steady_clock::now();
  Pending p{std::move(request), "", now, next_rid_.fetch_add(1) + 1};
  p.batch_key = p.request.batch_key();
  p.shard = static_cast<std::size_t>(
      fnv1a64(p.batch_key.data(), p.batch_key.size()) %
      static_cast<std::uint64_t>(std::max(options_.workers, 1)));
  if (p.request.deadline_ms >= 0.0) {
    p.deadline_at_us = us_since_epoch(now) + p.request.deadline_ms * 1000.0;
  }
  Logger* const log = options_.log;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  if (options_.metrics != nullptr) options_.metrics->add("service.submitted", 1);

  // Capture id/rid by value: the queue_full path rejects after `p` has been
  // moved into try_push.
  const std::string id = p.request.id;
  const std::int64_t rid = p.rid;
  const std::string batch_key = p.batch_key;
  const auto reject = [&](const char* reason, std::int64_t* counter,
                          const char* metric) {
    SolveResponse r;
    r.id = id;
    r.rid = rid;
    r.status = "rejected";
    r.reason = reason;
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++*counter;
    }
    if (options_.metrics != nullptr) options_.metrics->add(metric, 1);
    if (log != nullptr && log->enabled(LogLevel::Warn)) {
      JsonValue f = rid_fields(rid, id);
      f["reason"] = reason;
      log->warn("service.reject", f);
    }
    deliver(r);
    return false;
  };

  // Admission control. A deadline of 0 ms is already due at submission —
  // the deterministic way to exercise the rejection path.
  if (deadline_expired(p, now)) {
    return reject("deadline", &stats_.rejected_deadline,
                  "service.rejected_deadline");
  }

  // Predictive load-shedding: when this operator has service-time history,
  // model the wait as the queued predicted work spread over the worker pool
  // plus this request's own predicted service time; if that already blows
  // the deadline, shed now instead of rejecting after the work has queued.
  if (p.request.deadline_ms > 0.0) {
    const double own_us = predict_us(p.batch_key);
    if (own_us > 0.0) {
      const double backlog_us =
          static_cast<double>(queued_predicted_us_.load()) /
          static_cast<double>(std::max(options_.workers, 1));
      if (backlog_us + own_us >= p.request.deadline_ms * 1000.0) {
        return reject("deadline_predicted", &stats_.rejected_predicted,
                      "service.rejected_predicted");
      }
      p.predicted_us = own_us;
    }
  }

  const auto predicted = static_cast<std::int64_t>(p.predicted_us);
  if (!queue_.try_push(std::move(p))) {
    return reject("queue_full", &stats_.rejected_queue_full,
                  "service.rejected_queue_full");
  }
  queued_predicted_us_.fetch_add(predicted);
  {
    const std::lock_guard<std::mutex> lock(drain_mutex_);
    ++accepted_;
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.admitted;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->add("service.admitted", 1);
    options_.metrics->set("service.queue_depth",
                          static_cast<double>(queue_.size()));
  }
  if (log != nullptr && log->enabled(LogLevel::Info)) {
    JsonValue f = rid_fields(rid, id);
    f["batch_key"] = batch_key;
    log->info("service.admit", f);
  }
  return true;
}

void SolveService::worker_loop(std::size_t shard) {
  // Each worker owns its executor so concurrent solves never share one; the
  // solve results do not depend on this choice.
  const auto exec = make_executor(ExecPolicy{options_.solver_threads});
  while (auto head = queue_.pop(shard)) {
    std::vector<Pending> batch;
    batch.push_back(std::move(*head));
    if (options_.batching) {
      const std::string& key = batch.front().batch_key;
      auto more = queue_.drain_if(
          [&key](const Pending& p) { return p.batch_key == key; });
      for (auto& p : more) batch.push_back(std::move(p));
    }
    // Release the batch's share of the modeled backlog now that it left the
    // scheduler.
    std::int64_t predicted = 0;
    for (const auto& p : batch) {
      predicted += static_cast<std::int64_t>(p.predicted_us);
    }
    if (predicted != 0) queued_predicted_us_.fetch_sub(predicted);
    if (options_.metrics != nullptr) {
      options_.metrics->set("service.queue_depth",
                            static_cast<double>(queue_.size()));
    }
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
      stats_.max_batch_size = std::max(stats_.max_batch_size,
                                       static_cast<std::int64_t>(batch.size()));
    }
    if (options_.metrics != nullptr) {
      options_.metrics->add("service.batches", 1);
      if (batch.size() > 1) {
        options_.metrics->add("service.batched_requests",
                              static_cast<std::int64_t>(batch.size()));
      }
      options_.metrics->set("service.in_flight",
                            static_cast<double>(batch.size()));
    }
    process_batch(std::move(batch), exec.get());
    if (options_.metrics != nullptr) {
      options_.metrics->set("service.in_flight", 0.0);
    }
  }
}

void SolveService::process_batch(std::vector<Pending> batch, Executor* exec) {
  const auto t_dequeue = std::chrono::steady_clock::now();
  TraceRecorder* const trace = options_.trace;
  Logger* const log = options_.log;

  // Requests whose deadline lapsed while queued are rejected, not solved.
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (!deadline_expired(p, t_dequeue)) {
      live.push_back(std::move(p));
      continue;
    }
    SolveResponse r;
    r.id = p.request.id;
    r.rid = p.rid;
    r.status = "rejected";
    r.reason = "deadline";
    r.queue_us = us_between(p.submitted_at, t_dequeue);
    r.total_us = r.queue_us;
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected_deadline;
    }
    if (options_.metrics != nullptr) {
      options_.metrics->add("service.rejected_deadline", 1);
    }
    if (log != nullptr && log->enabled(LogLevel::Warn)) {
      JsonValue f = rid_fields(p.rid, p.request.id);
      f["reason"] = "deadline";
      f["queue_us"] = r.queue_us;
      log->warn("service.reject", f);
    }
    deliver(r);
    finish_one();
  }
  if (live.empty()) return;

  if (log != nullptr && log->enabled(LogLevel::Debug)) {
    JsonValue f = rid_fields(live.front().rid, live.front().request.id);
    f["batch_size"] = static_cast<std::int64_t>(live.size());
    f["batch_key"] = live.front().batch_key;
    log->debug("service.dequeue", f);
  }

  const auto fail_batch = [&](const std::string& reason) {
    const auto now = std::chrono::steady_clock::now();
    for (const Pending& p : live) {
      SolveResponse r;
      r.id = p.request.id;
      r.rid = p.rid;
      r.status = "error";
      r.reason = reason;
      r.queue_us = us_between(p.submitted_at, t_dequeue);
      r.total_us = us_between(p.submitted_at, now);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.errors;
      }
      if (options_.metrics != nullptr) {
        options_.metrics->add("service.errors", 1);
      }
      if (log != nullptr && log->enabled(LogLevel::Error)) {
        JsonValue f = rid_fields(p.rid, p.request.id);
        f["reason"] = reason;
        log->error("service.error", f);
      }
      deliver(r);
      finish_one();
    }
  };

  // Shared batch setup: load + partition the operator, then acquire the
  // factor — from the RAM tier when resident, reloaded from the disk store
  // on a RAM miss, freshly built otherwise. Everything downstream (halo
  // scheme, distributed G / G^T, the preconditioner) is shared by the whole
  // batch, and the factor bits are identical on all three paths, so the
  // residual histories are too.
  const SolveRequest& lead = live.front().request;
  CsrMatrix a;
  CacheTier tier = CacheTier::Miss;
  std::string fingerprint_hex;
  double setup_us = 0.0;
  std::unique_ptr<FactorizedPreconditioner> precond;
  std::unique_ptr<DistCsr> a_dist;
  PartitionedSystem sys;
  index_t global_rows = 0;
  // Workload-spec operators ("stencil3d:nx=64,...") generate rank-locally:
  // no global CsrMatrix exists on this path, each simulated rank
  // materializes only its own rows (suite names and files keep the
  // assembled path and its graph partitioning).
  const bool rank_local_gen =
      lead.matrix_path.empty() && wgen::is_workload_spec(lead.generate);
  try {
    if (rank_local_gen) {
      const auto w = wgen::resolve_workload(
          wgen::parse_workload_spec(lead.generate), lead.ranks);
      a_dist = std::make_unique<DistCsr>(wgen::generate_dist(
          w, lead.ranks, CommConfig::from_env(), nullptr, exec));
      sys.layout = a_dist->row_layout();
      // Generated operators are born in blocked order: identity permutation.
      sys.perm.resize(static_cast<std::size_t>(sys.layout.global_size()));
      std::iota(sys.perm.begin(), sys.perm.end(), index_t{0});
    } else {
      a = lead.matrix_path.empty() ? suite_entry(lead.generate).generate()
                                   : read_matrix_market_file(lead.matrix_path);
      FSAIC_REQUIRE(a.rows() == a.cols(), "matrix must be square");
      FSAIC_REQUIRE(a.is_symmetric(1e-10 * a.max_abs()),
                    "matrix must be symmetric (CG requires SPD)");
      sys = partition_system(a, lead.ranks);
      a_dist = std::make_unique<DistCsr>(DistCsr::distribute(sys.matrix, sys.layout));
    }
    global_rows = sys.layout.global_size();

    const auto t_setup = std::chrono::steady_clock::now();
    // The streamed rank-local fingerprint equals fingerprint_of() of the
    // assembled operator, so generated operators share the FactorCache and
    // disk store keying with file/suite operators unchanged.
    const MatrixFingerprint fp = rank_local_gen
                                     ? fingerprint_rank_local(*a_dist)
                                     : fingerprint_of(sys.matrix);
    fingerprint_hex = hash_hex(fp.content_hash);
    const FactorCache::Key key{
        fp, lead.method + "|" +
                strformat("%.17g", static_cast<double>(lead.filter)) + "|" +
                lead.filter_strategy + "|" + std::to_string(lead.ranks)};
    std::shared_ptr<const CachedFactor> factor = cache_.get(key, &tier);
    if (options_.metrics != nullptr) {
      options_.metrics->add(tier == CacheTier::Ram    ? "service.cache_hits"
                            : tier == CacheTier::Disk ? "service.cache_disk_hits"
                                                      : "service.cache_misses",
                            1);
    }
    if (factor != nullptr) {
      const DistCsr g_dist = DistCsr::distribute(factor->g, factor->layout);
      const DistCsr gt_dist =
          DistCsr::distribute(transpose(factor->g), factor->layout);
      precond = std::make_unique<FactorizedPreconditioner>(
          g_dist, gt_dist, lead.method + "(cached)");
    } else {
      FsaiOptions opts;
      opts.extension = extension_of(lead.method);
      opts.filter = lead.method == "fsai" ? value_t{0} : lead.filter;
      opts.filter_strategy = lead.filter_strategy == "static"
                                 ? FilterStrategy::Static
                                 : FilterStrategy::Dynamic;
      opts.exec = exec;
      opts.trace = trace;
      if (rank_local_gen) {
        // The FSAI setup is the one stage still built from assembled rows.
        // A factor-cache hit (RAM or disk) skips this branch entirely, so
        // repeat traffic against a generated operator stays global-free.
        sys.matrix = a_dist->to_global();
      }
      FsaiBuildResult build =
          build_fsai_preconditioner(sys.matrix, sys.layout, opts);
      const double build_seconds =
          us_between(t_setup, std::chrono::steady_clock::now()) * 1e-6;
      precond = std::make_unique<FactorizedPreconditioner>(
          build.g_dist, build.gt_dist, lead.method);
      cache_.put(key, std::make_shared<CachedFactor>(CachedFactor{
                          std::move(build.g), sys.layout, build_seconds}));
    }
    setup_us = us_between(t_setup, std::chrono::steady_clock::now());
    if (trace != nullptr) {
      trace->complete(("setup " + lead.id).c_str(), "service",
                      trace->now_us() - setup_us, setup_us,
                      rid_args(live.front().rid));
    }
    if (log != nullptr && log->enabled(LogLevel::Info)) {
      JsonValue f = rid_fields(live.front().rid, lead.id);
      f["cache"] = tier_string(tier);
      f["fingerprint"] = fingerprint_hex;
      f["setup_us"] = setup_us;
      f["batch_size"] = static_cast<std::int64_t>(live.size());
      log->info("service.setup", f);
    }
  } catch (const std::exception& e) {
    fail_batch(e.what());
    return;
  }

  // Solve the batch's right-hand sides back-to-back against the shared
  // operator and factor. Each request still gets its own residual history,
  // bit-identical to a solo solve of the same request.
  for (const Pending& p : live) {
    const SolveRequest& req = p.request;
    SolveResponse r;
    r.id = req.id;
    r.rid = p.rid;
    r.queue_us = us_between(p.submitted_at, t_dequeue);
    r.cache = tier_string(tier);
    r.batch_size = static_cast<int>(live.size());
    r.fingerprint = fingerprint_hex;
    r.setup_us = setup_us;
    try {
      std::vector<value_t> b_global;
      if (req.rhs_path.empty()) {
        b_global = synthesize_rhs(req.rhs_seed, global_rows);
      } else {
        b_global = read_matrix_market_vector_file(req.rhs_path);
        FSAIC_REQUIRE(
            b_global.size() == static_cast<std::size_t>(global_rows),
            "right-hand side length " + std::to_string(b_global.size()) +
                " does not match matrix rows " + std::to_string(global_rows));
      }
      const DistVector b(sys.layout, permute_rhs(b_global, sys.perm));

      // Warm start: every converged solve is remembered under its
      // operator/solver/tolerance/RHS key, but a request only SEEDS x0 from
      // that cache when it opts in (`warm_start: true`) — convergence is
      // then anchored to the original cold solve's residual target instead
      // of the (already tiny) warm ||r_0||.
      DistVector x(sys.layout);
      double reference = 0.0;
      bool warm = false;
      std::string solution_key;
      if (options_.solution_cache_capacity > 0) {
        solution_key =
            p.batch_key + "|" + req.solver + "|" +
            strformat("%.17g", static_cast<double>(req.tol)) + "|" +
            std::to_string(req.max_iterations) + "|" +
            hash_hex(fingerprint_of_values(b_global));
      }
      if (req.warm_start && !solution_key.empty()) {
        if (auto cached = solution_get(solution_key)) {
          // Same operator + rank count => same partition, so the global
          // solution scatters back onto the layout unchanged.
          x = DistVector(sys.layout, permute_rhs(cached->x, sys.perm));
          reference = cached->reference_residual;
          warm = reference > 0.0;
        }
      }
      SolveOptions solve_opts{.rel_tol = req.tol,
                              .max_iterations = req.max_iterations,
                              .reference_residual =
                                  static_cast<value_t>(reference),
                              .track_residual_history = req.want_history,
                              .exec = exec};
      const auto t_solve = std::chrono::steady_clock::now();
      const SolveResult result =
          req.solver == "pipelined-cg"
              ? pcg_solve_pipelined(*a_dist, b, x, *precond, solve_opts)
              : pcg_solve(*a_dist, b, x, *precond, solve_opts);
      const auto t_done = std::chrono::steady_clock::now();
      if (!solution_key.empty() && result.converged) {
        // Remember the solution in global (pre-partition) numbering; the
        // reference stays the cold solve's ||r_0|| across refreshes.
        std::vector<value_t> x_global(
            static_cast<std::size_t>(sys.layout.global_size()));
        const auto x_part = x.to_global();
        for (std::size_t i = 0; i < x_global.size(); ++i) {
          x_global[i] = x_part[static_cast<std::size_t>(sys.perm[i])];
        }
        solution_put(solution_key,
                     CachedSolution{std::move(x_global),
                                    warm ? reference
                                         : static_cast<double>(
                                               result.initial_residual)});
      }
      r.status = "ok";
      r.converged = result.converged;
      r.iterations = result.iterations;
      r.initial_residual = static_cast<double>(result.initial_residual);
      r.final_residual = static_cast<double>(result.final_residual);
      r.warm_start = warm;
      r.solve_us = us_between(t_solve, t_done);
      r.total_us = us_between(p.submitted_at, t_done);
      if (req.want_history) {
        r.residuals.assign(result.residual_history.begin(),
                           result.residual_history.end());
      }
      record_service_us(p.batch_key,
                        setup_us / static_cast<double>(live.size()) +
                            r.solve_us);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.completed;
        if (warm) ++stats_.warm_starts;
      }
      if (options_.metrics != nullptr) {
        options_.metrics->add("service.completed", 1);
        if (warm) options_.metrics->add("service.warm_starts", 1);
        options_.metrics->observe("service.queue_us", r.queue_us);
        options_.metrics->observe("service.setup_us", r.setup_us);
        options_.metrics->observe("service.solve_us", r.solve_us);
      }
      if (trace != nullptr) {
        const double now_us = trace->now_us();
        trace->complete(("queue " + req.id).c_str(), "service",
                        now_us - r.total_us, r.queue_us, rid_args(p.rid));
        trace->complete(("solve " + req.id).c_str(), "service",
                        now_us - r.solve_us, r.solve_us, rid_args(p.rid));
      }
      if (log != nullptr && log->enabled(LogLevel::Info)) {
        JsonValue f = rid_fields(p.rid, req.id);
        f["converged"] = result.converged;
        f["iterations"] = result.iterations;
        f["cache"] = r.cache;
        if (warm) f["warm_start"] = true;
        f["queue_us"] = r.queue_us;
        f["setup_us"] = r.setup_us;
        f["solve_us"] = r.solve_us;
        f["total_us"] = r.total_us;
        log->info("service.solve", f);
      }
    } catch (const std::exception& e) {
      r.status = "error";
      r.reason = e.what();
      r.total_us =
          us_between(p.submitted_at, std::chrono::steady_clock::now());
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.errors;
      }
      if (options_.metrics != nullptr) {
        options_.metrics->add("service.errors", 1);
      }
      if (log != nullptr && log->enabled(LogLevel::Error)) {
        JsonValue f = rid_fields(p.rid, req.id);
        f["reason"] = r.reason;
        log->error("service.error", f);
      }
    }
    deliver(r);
    finish_one();
  }
}

void SolveService::deliver(const SolveResponse& response) {
  const std::lock_guard<std::mutex> lock(deliver_mutex_);
  on_response_(response);
}

void SolveService::finish_one() {
  {
    const std::lock_guard<std::mutex> lock(drain_mutex_);
    ++answered_;
  }
  drained_.notify_all();
}

void SolveService::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [this] { return answered_ >= accepted_; });
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
  }
  out.cache = cache_.stats();
  return out;
}

ServiceStats serve_requests(const ServiceOptions& options, std::istream& in,
                            std::ostream& out) {
  std::mutex out_mutex;
  ServiceStats stats;
  {
    SolveService service(options, [&](const SolveResponse& r) {
      const std::lock_guard<std::mutex> lock(out_mutex);
      out << to_json(r).dump() << '\n';
      out.flush();
    });
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      try {
        service.submit(parse_request(JsonValue::parse(line)));
      } catch (const std::exception& e) {
        // A malformed line still yields exactly one response so replays
        // stay aligned with their request files.
        SolveResponse r;
        const JsonValue* id = nullptr;
        try {
          const JsonValue v = JsonValue::parse(line);
          id = v.find("id");
          if (id != nullptr && id->is_string()) r.id = id->as_string();
        } catch (const std::exception&) {
        }
        if (r.id.empty()) r.id = "line" + std::to_string(lineno);
        r.status = "error";
        r.reason = e.what();
        const std::lock_guard<std::mutex> lock(out_mutex);
        out << to_json(r).dump() << '\n';
        out.flush();
      }
    }
    service.drain();
    stats = service.stats();
  }
  return stats;
}

int process_watch_directory(const ServiceOptions& options,
                            const std::string& dir, ServiceStats* accumulate) {
  namespace fs = std::filesystem;
  FSAIC_REQUIRE(fs::is_directory(dir), "not a directory: " + dir);
  int processed = 0;
  std::vector<fs::path> pending;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    const std::string name = path.filename().string();
    if (name.size() < 6 || name.substr(name.size() - 6) != ".jsonl") continue;
    if (name.size() >= 10 && name.substr(name.size() - 10) == ".out.jsonl") {
      continue;
    }
    fs::path out_path = path;
    out_path.replace_extension(".out.jsonl");
    if (fs::exists(out_path)) continue;  // already served
    pending.push_back(path);
  }
  std::sort(pending.begin(), pending.end());
  for (const fs::path& path : pending) {
    fs::path out_path = path;
    out_path.replace_extension(".out.jsonl");
    // Write to a temp name first so a crash mid-file never leaves a
    // half-written response file that would mark the input as served.
    const fs::path tmp_path = out_path.string() + ".tmp";
    std::ifstream in(path);
    FSAIC_REQUIRE(in.good(), "cannot open request file: " + path.string());
    {
      std::ofstream out(tmp_path);
      FSAIC_REQUIRE(out.good(),
                    "cannot open response file: " + tmp_path.string());
      const ServiceStats stats = serve_requests(options, in, out);
      if (accumulate != nullptr) accumulate->merge(stats);
    }
    fs::rename(tmp_path, out_path);
    ++processed;
  }
  return processed;
}

}  // namespace fsaic
