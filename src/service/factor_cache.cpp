#include "service/factor_cache.hpp"

#include "common/error.hpp"

namespace fsaic {

std::shared_ptr<const CachedFactor> FactorCache::get(const Key& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.factor;
}

void FactorCache::put(const Key& key,
                      std::shared_ptr<const CachedFactor> factor) {
  FSAIC_REQUIRE(factor != nullptr, "cannot cache a null factor");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.factor = std::move(factor);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  if (entries_.size() >= capacity_) {
    const Key& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(factor), lru_.begin()});
  ++stats_.insertions;
}

FactorCacheStats FactorCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t FactorCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void FactorCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

}  // namespace fsaic
