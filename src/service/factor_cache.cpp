#include "service/factor_cache.hpp"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/factor_io.hpp"

namespace fsaic {

std::string FactorCache::store_path(const Key& key) const {
  if (store_dir_.empty()) return "";
  const std::string name =
      hash_hex(key.fingerprint.content_hash) + "-" +
      hash_hex(fnv1a64(key.config.data(), key.config.size())) + ".factor";
  return (std::filesystem::path(store_dir_) / name).string();
}

bool FactorCache::persist(const Key& key, const CachedFactor& factor) {
  try {
    namespace fs = std::filesystem;
    fs::create_directories(store_dir_);
    const std::string path = store_path(key);
    // Unique temp name per write so concurrent spills of the same key never
    // clobber each other mid-file; the rename is atomic, so readers only
    // ever see complete files.
    const std::string tmp =
        path + ".tmp" + std::to_string(tmp_seq_.fetch_add(1));
    save_factor(tmp, factor.g, factor.layout, key.fingerprint);
    fs::rename(tmp, path);
    note_store_write(path);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void FactorCache::ensure_store_index_locked() {
  if (store_index_ready_) return;
  store_index_ready_ = true;
  namespace fs = std::filesystem;
  // Seed recency from mtimes so a restarted process evicts the stalest
  // files first instead of whatever order the directory iterator yields.
  std::vector<std::pair<fs::file_time_type, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(store_dir_, ec)) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    if (entry.path().extension() != ".factor") continue;
    found.emplace_back(entry.last_write_time(entry_ec),
                       entry.path().string());
  }
  std::sort(found.begin(), found.end());
  for (const auto& [mtime, path] : found) {
    std::error_code size_ec;
    const std::uintmax_t bytes = std::filesystem::file_size(path, size_ec);
    if (size_ec) continue;
    store_index_[path] = StoreEntry{bytes, ++store_seq_};
  }
}

void FactorCache::note_store_access(const std::string& path) {
  if (store_max_bytes_ == 0) return;
  const std::lock_guard<std::mutex> lock(store_mutex_);
  ensure_store_index_locked();
  const auto it = store_index_.find(path);
  if (it != store_index_.end()) it->second.last_access = ++store_seq_;
}

void FactorCache::note_store_write(const std::string& path) {
  if (store_max_bytes_ == 0) return;
  std::int64_t evicted = 0;
  {
    const std::lock_guard<std::mutex> lock(store_mutex_);
    ensure_store_index_locked();
    std::error_code ec;
    const std::uintmax_t bytes = std::filesystem::file_size(path, ec);
    store_index_[path] = StoreEntry{ec ? 0 : bytes, ++store_seq_};
    std::uintmax_t total = 0;
    for (const auto& [p, e] : store_index_) total += e.bytes;
    // The file just written is exempt: the cap trims history, it never
    // rejects the newest factor (which the caller is about to rely on).
    while (total > store_max_bytes_ && store_index_.size() > 1) {
      auto victim = store_index_.end();
      for (auto it = store_index_.begin(); it != store_index_.end(); ++it) {
        if (it->first == path) continue;
        if (victim == store_index_.end() ||
            it->second.last_access < victim->second.last_access) {
          victim = it;
        }
      }
      if (victim == store_index_.end()) break;
      std::error_code rm_ec;
      std::filesystem::remove(victim->first, rm_ec);
      total -= std::min(total, victim->second.bytes);
      store_index_.erase(victim);
      ++evicted;
    }
  }
  if (evicted > 0) {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.store_evictions += evicted;
  }
}

std::shared_ptr<const CachedFactor> FactorCache::get(const Key& key,
                                                     CacheTier* tier) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      if (tier != nullptr) *tier = CacheTier::Ram;
      return it->second.factor;
    }
    if (store_dir_.empty() || capacity_ == 0) {
      ++stats_.misses;
      if (tier != nullptr) *tier = CacheTier::Miss;
      return nullptr;
    }
  }

  // RAM miss with a store configured: attempt the disk tier outside the
  // mutex so concurrent hits never wait on file IO.
  const std::string path = store_path(key);
  std::shared_ptr<const CachedFactor> loaded;
  bool corrupt = false;
  try {
    if (std::filesystem::exists(path)) {
      SavedFactor saved = load_factor(path);
      if (saved.built_for.has_value() && *saved.built_for == key.fingerprint) {
        loaded = std::make_shared<const CachedFactor>(
            CachedFactor{std::move(saved.g), std::move(saved.layout), 0.0});
      } else {
        corrupt = true;  // foreign or fingerprint-less file at our address
      }
    }
  } catch (const std::exception&) {
    corrupt = true;  // truncated/garbled: degrade to a fresh build
  }
  if (corrupt) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (store_max_bytes_ != 0) {
      const std::lock_guard<std::mutex> lock(store_mutex_);
      store_index_.erase(path);
    }
  }
  if (loaded != nullptr) note_store_access(path);

  std::optional<std::pair<Key, std::shared_ptr<const CachedFactor>>> spill;
  std::shared_ptr<const CachedFactor> result;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (loaded == nullptr) {
      if (corrupt) ++stats_.load_failures;
      ++stats_.misses;
      if (tier != nullptr) *tier = CacheTier::Miss;
      return nullptr;
    }
    ++stats_.disk_hits;
    if (tier != nullptr) *tier = CacheTier::Disk;
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Raced with another loader/builder; the resident entry wins.
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      result = it->second.factor;
    } else {
      if (entries_.size() >= capacity_) {
        const Key victim = lru_.back();
        const auto vit = entries_.find(victim);
        if (!vit->second.persisted) {
          spill = {victim, vit->second.factor};
        }
        entries_.erase(vit);
        lru_.pop_back();
        ++stats_.evictions;
      }
      lru_.push_front(key);
      entries_.emplace(key, Entry{loaded, lru_.begin(), /*persisted=*/true});
      result = std::move(loaded);
    }
  }
  if (spill.has_value() && persist(spill->first, *spill->second)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.spills;
  }
  return result;
}

void FactorCache::put(const Key& key,
                      std::shared_ptr<const CachedFactor> factor) {
  FSAIC_REQUIRE(factor != nullptr, "cannot cache a null factor");
  if (capacity_ == 0) return;

  // Write-through: persist before insertion (outside the mutex) so the
  // entry survives process death even if it is never evicted.
  bool persisted = false;
  if (!store_dir_.empty()) {
    persisted = persist(key, *factor);
    if (persisted) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.spills;
    }
  }

  std::optional<std::pair<Key, std::shared_ptr<const CachedFactor>>> spill;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.factor = std::move(factor);
      it->second.persisted = it->second.persisted || persisted;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return;
    }
    if (entries_.size() >= capacity_) {
      const Key victim = lru_.back();
      const auto vit = entries_.find(victim);
      if (!store_dir_.empty() && !vit->second.persisted) {
        spill = {victim, vit->second.factor};
      }
      entries_.erase(vit);
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(factor), lru_.begin(), persisted});
    ++stats_.insertions;
  }
  // A victim whose write-through failed earlier gets one more chance on the
  // way out; losing it entirely would only cost a rebuild, never correctness.
  if (spill.has_value() && persist(spill->first, *spill->second)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.spills;
  }
}

FactorCacheStats FactorCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t FactorCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void FactorCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

}  // namespace fsaic
