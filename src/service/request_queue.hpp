// Bounded MPMC queue: the admission boundary of the solve service.
//
// Producers (SolveService::submit) use try_push, which fails immediately
// when the queue is at capacity — admission control turns that failure into
// a reject-with-reason response instead of blocking the caller (the
// backpressure contract of the service). Consumers (the worker pool) block
// in pop until an item arrives or the queue is closed. drain_if lets a
// worker that just dequeued a request also collect every queued request
// with the same batch key, which is how the multi-RHS batcher coalesces
// work without a separate scheduler thread.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace fsaic {

template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking enqueue; false when the queue is full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocking dequeue; empty optional once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Remove and return every queued item satisfying `pred`, preserving
  /// arrival order; items not matching stay queued in order.
  template <typename Pred>
  std::vector<T> drain_if(Pred pred) {
    std::vector<T> out;
    const std::lock_guard<std::mutex> lock(mutex_);
    std::deque<T> keep;
    for (auto& item : items_) {
      if (pred(item)) {
        out.push_back(std::move(item));
      } else {
        keep.push_back(std::move(item));
      }
    }
    items_.swap(keep);
    return out;
  }

  /// Wake all blocked consumers; subsequent pushes fail. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace fsaic
