// Sharded, SLO-aware work queue: the dispatch layer of the solve service.
//
// RequestQueue (request_queue.hpp) is a plain FIFO; under mixed traffic that
// makes multi-RHS batching accidental — two same-operator requests coalesce
// only when they happen to sit adjacent in the queue when a worker arrives.
// ShardedScheduler makes it systematic: every item carries a shard id (the
// service uses `hash(batch_key) % workers`), each worker pops from its own
// lane first, and only steals from other lanes when its own is empty. Same-
// operator requests therefore land on the same worker, which batches them
// together and keeps that worker's slice of the factor cache hot.
//
// Within a lane, dequeue order is not FIFO but SLO-aware:
//   1. higher `priority` first (priority lanes),
//   2. among equal priorities, deadlined items before deadline-free ones,
//      earliest absolute deadline first (EDF),
//   3. ties broken by admission sequence (FIFO), which keeps the order
//      deterministic for any mix.
// drain_if — the batching hook — returns matches across all lanes in
// admission-sequence order, so batch composition (and with it every solve
// result) is independent of shard count and steal timing.
//
// Traits requirements (static, over const T&): shard() -> std::size_t,
// priority() -> int, deadline_us() -> double (absolute; < 0 = none),
// seq() -> std::int64_t (unique, ascending admission order).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace fsaic {

template <typename T, typename Traits>
class ShardedScheduler {
 public:
  /// `capacity` bounds the total item count across all lanes (the admission
  /// backpressure contract of RequestQueue, unchanged). `shards` >= 1.
  ShardedScheduler(std::size_t capacity, std::size_t shards)
      : capacity_(capacity), lanes_(shards == 0 ? 1 : shards) {}

  /// Non-blocking enqueue into the item's shard lane (mod the lane count);
  /// false when the scheduler is full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || size_ >= capacity_) return false;
      lanes_[Traits::shard(item) % lanes_.size()].push_back(std::move(item));
      ++size_;
    }
    ready_.notify_all();
    return true;
  }

  /// Blocking dequeue for worker `shard`: the best item of its own lane, or
  /// — when that lane is empty — the best item across all lanes (steal).
  /// Empty optional once the scheduler is closed and drained.
  std::optional<T> pop(std::size_t shard) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;
    auto& own = lanes_[shard % lanes_.size()];
    std::deque<T>* lane = &own;
    if (own.empty()) {
      lane = nullptr;
      T* best = nullptr;
      for (auto& l : lanes_) {
        for (auto& item : l) {
          if (best == nullptr || before(item, *best)) {
            best = &item;
            lane = &l;
          }
        }
      }
    }
    auto it = lane->begin();
    for (auto cur = lane->begin(); cur != lane->end(); ++cur) {
      if (before(*cur, *it)) it = cur;
    }
    T item = std::move(*it);
    lane->erase(it);
    --size_;
    return item;
  }

  /// Remove and return every queued item satisfying `pred` (across all
  /// lanes) in admission-sequence order; non-matching items stay queued.
  template <typename Pred>
  std::vector<T> drain_if(Pred pred) {
    std::vector<T> out;
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& lane : lanes_) {
      std::deque<T> keep;
      for (auto& item : lane) {
        if (pred(item)) {
          out.push_back(std::move(item));
        } else {
          keep.push_back(std::move(item));
        }
      }
      lane.swap(keep);
    }
    size_ -= out.size();
    std::sort(out.begin(), out.end(), [](const T& a, const T& b) {
      return Traits::seq(a) < Traits::seq(b);
    });
    return out;
  }

  /// Wake all blocked consumers; subsequent pushes fail. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t shards() const { return lanes_.size(); }

 private:
  /// Strict weak order "a should be dequeued before b".
  static bool before(const T& a, const T& b) {
    if (Traits::priority(a) != Traits::priority(b)) {
      return Traits::priority(a) > Traits::priority(b);
    }
    const double da = Traits::deadline_us(a);
    const double db = Traits::deadline_us(b);
    const bool ha = da >= 0.0;
    const bool hb = db >= 0.0;
    if (ha != hb) return ha;  // deadlined work outranks deadline-free work
    if (ha && da != db) return da < db;
    return Traits::seq(a) < Traits::seq(b);
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<std::deque<T>> lanes_;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace fsaic
