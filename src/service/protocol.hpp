// JSONL request/response protocol of the solve service.
//
// One request per line in, one response per line out — the format scripts,
// CI and `fsaic serve` speak. A request names its operator either by
// MatrixMarket path ("matrix") or by built-in suite entry ("generate"),
// the build configuration (method/filter/strategy/ranks) and the solve
// configuration (solver/tol/max_iterations/rhs). Responses carry the
// solver outcome plus the serving metadata the acceptance checks key on:
// cache hit/miss, batch size, and the queue/setup/solve latency split.
//
// Request schema (defaults in parentheses):
//   {"id": "r1",                      required, echoed in the response
//    "matrix": "path.mtx"             exactly one of matrix / generate
//    "generate": "thermal2",
//    "method": "fsaie-comm",          fsai|fsaie|fsaie-comm|fsaie-full
//    "filter": 0.01, "filter_strategy": "dynamic"|"static",
//    "ranks": 8, "solver": "pcg"|"pipelined-cg",
//    "tol": 1e-8, "max_iterations": 100000,
//    "rhs": "b.mtx",                  MatrixMarket vector (else synthesized)
//    "rhs_seed": 2022,                seed of the synthesized RHS
//    "deadline_ms": 250.0,            relative to submission; absent = none
//    "priority": 0,                   higher dequeues sooner (scheduler lane)
//    "warm_start": false,             reuse + remember recent same-operator/
//                                     same-RHS solutions (changes residual
//                                     histories by design, hence opt-in)
//    "history": false}                include per-iteration residuals
//
// Response schema:
//   {"kind": "response", "id",
//    "rid",                           service-minted request id (admission
//                                     order; absent on parse errors)
//    "status": "ok"|"rejected"|"error",
//    "reason",                        rejected/error only
//    "converged", "iterations", "initial_residual", "final_residual",
//    "cache": "hit"|"disk"|"miss", "batch_size", "fingerprint",
//    "warm_start": true,              present when a cached solution seeded x0
//    "queue_us", "setup_us", "solve_us", "total_us",
//    "residuals": [...]}              when history was requested
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/json.hpp"

namespace fsaic {

struct SolveRequest {
  std::string id;
  std::string matrix_path;  ///< MatrixMarket file ("matrix"); empty if generated
  std::string generate;     ///< suite entry name ("generate"); empty if file
  std::string method = "fsaie-comm";
  value_t filter = 0.01;
  std::string filter_strategy = "dynamic";
  rank_t ranks = 8;
  std::string solver = "pcg";
  value_t tol = 1e-8;
  int max_iterations = 100000;
  std::string rhs_path;  ///< MatrixMarket vector; empty -> synthesized
  std::uint64_t rhs_seed = 2022;
  /// Deadline relative to submission; negative = none. A value of 0 is
  /// already due at submission, which deterministically exercises the
  /// rejection path.
  double deadline_ms = -1.0;
  /// Scheduler lane: higher-priority requests dequeue before lower ones,
  /// ahead of the EDF ordering. Does not affect solve results.
  int priority = 0;
  /// Opt into the solution cache: warm-start from a recent same-operator /
  /// same-RHS solution and remember this solve's solution for the next one.
  /// Off by default because a warm start shortens the residual history.
  bool warm_start = false;
  bool want_history = false;

  /// The coalescing key of the multi-RHS batcher: requests with equal batch
  /// keys target the same operator and build configuration, so they share
  /// one setup (matrix load, partition, factor, halo scheme).
  [[nodiscard]] std::string batch_key() const;
};

struct SolveResponse {
  std::string id;
  /// Request id minted by the service at admission (1, 2, … in submission
  /// order; 0 = not serviced, e.g. a parse-error response). The same rid
  /// tags the service's log lines and trace slice args, so one grep
  /// correlates a request across all three observability surfaces.
  std::int64_t rid = 0;
  std::string status = "ok";  ///< "ok" | "rejected" | "error"
  std::string reason;         ///< e.g. "queue_full", "deadline", parse error
  bool converged = false;
  int iterations = 0;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  std::string cache;  ///< "hit" (RAM) | "disk" (store reload) | "miss"
                      ///< (empty when no factor was involved)
  int batch_size = 0;
  std::string fingerprint;  ///< hex content hash of the partitioned system
  bool warm_start = false;  ///< x0 was seeded from a cached solution
  double queue_us = 0.0;    ///< submission -> dequeue
  double setup_us = 0.0;    ///< factor acquisition (build or cache fetch)
  double solve_us = 0.0;
  double total_us = 0.0;
  std::vector<double> residuals;  ///< per-iteration history when requested

  [[nodiscard]] bool ok() const { return status == "ok"; }
};

/// Parse and validate one request object; throws fsaic::Error with a
/// descriptive message on schema violations.
[[nodiscard]] SolveRequest parse_request(const JsonValue& v);

[[nodiscard]] JsonValue to_json(const SolveRequest& req);
[[nodiscard]] JsonValue to_json(const SolveResponse& resp);

}  // namespace fsaic
