// LRU cache of built FSAI factors, keyed by matrix content.
//
// Setup is the expensive phase of the FSAI family (see bench/amortization
// and bench/setup_speed); a serving workload that sees the same operator
// for many right-hand sides should pay it once. The key combines the
// matrix fingerprint (dims + nnz + content hash of the partition-permuted
// system) with a build-configuration string (method, filter, strategy,
// rank count), so same-shape matrices with different values, or the same
// matrix built with different options, occupy distinct slots. Entries are
// shared_ptr so an evicted factor stays alive while an in-flight batch is
// still solving with it.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "dist/layout.hpp"
#include "sparse/csr.hpp"
#include "sparse/fingerprint.hpp"

namespace fsaic {

/// A built factor ready for reuse: distribute g over `layout` to recover the
/// G / G^T pair the preconditioner applies.
struct CachedFactor {
  CsrMatrix g;
  Layout layout;
  double build_seconds = 0.0;  ///< wall time of the original build
};

struct FactorCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
};

class FactorCache {
 public:
  /// `capacity` = maximum number of resident factors; 0 disables caching
  /// (every get misses, puts are dropped).
  explicit FactorCache(std::size_t capacity) : capacity_(capacity) {}

  struct Key {
    MatrixFingerprint fingerprint;
    std::string config;  ///< build options, e.g. "fsaie-comm|0.01|dynamic|8"

    bool operator==(const Key&) const = default;
    bool operator<(const Key& o) const {
      const auto tie = [](const Key& k) {
        return std::tie(k.config, k.fingerprint.rows, k.fingerprint.cols,
                        k.fingerprint.nnz, k.fingerprint.content_hash);
      };
      return tie(*this) < tie(o);
    }
  };

  /// Look up a factor; null on miss. A hit moves the entry to
  /// most-recently-used. Counts into stats either way.
  [[nodiscard]] std::shared_ptr<const CachedFactor> get(const Key& key);

  /// Insert (or refresh) a factor; evicts the least-recently-used entry
  /// when at capacity.
  void put(const Key& key, std::shared_ptr<const CachedFactor> factor);

  [[nodiscard]] FactorCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear();

 private:
  struct Entry {
    std::shared_ptr<const CachedFactor> factor;
    std::list<Key>::iterator lru_pos;  ///< position in lru_ (front = newest)
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Key> lru_;
  std::map<Key, Entry> entries_;
  FactorCacheStats stats_;
};

}  // namespace fsaic
