// Two-tier (RAM LRU + optional disk store) cache of built FSAI factors,
// keyed by matrix content.
//
// Setup is the expensive phase of the FSAI family (see bench/amortization
// and bench/setup_speed); a serving workload that sees the same operator
// for many right-hand sides should pay it once — across requests *and*
// across process restarts. The key combines the matrix fingerprint (dims +
// nnz + content hash of the partition-permuted system) with a
// build-configuration string (method, filter, strategy, rank count), so
// same-shape matrices with different values, or the same matrix built with
// different options, occupy distinct slots. Entries are shared_ptr so an
// evicted factor stays alive while an in-flight batch is still solving
// with it.
//
// Disk tier (enabled by a non-empty `store_dir`): every insert is persisted
// write-through as a fingerprint-addressed factor_io V2 file
// (`<content_hash>-<config_hash>.factor`), so a restarted process reloads
// factors the previous one built. A RAM miss transparently attempts the
// store; a loaded file whose embedded fingerprint does not match the key,
// or that is truncated/corrupt, is deleted and counted as a load failure —
// the caller sees a plain miss and rebuilds fresh. All file IO happens
// outside the cache mutex, so concurrent hits never wait on a spill.
// Factor files round-trip doubles bit-exactly, so a disk-reloaded factor
// produces residual histories identical to the RAM-cached and
// freshly-built ones.
//
// The store is optionally size-capped (`store_max_bytes`, 0 = unlimited):
// after each successful persist the total on-disk footprint is reconciled
// against the cap and the least-recently-accessed factor files are deleted
// (never the one just written) until the store fits. Disk-tier reloads
// count as accesses, so hot factors survive the cap while stale ones age
// out; on restart recency is seeded from file modification times.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "dist/layout.hpp"
#include "sparse/csr.hpp"
#include "sparse/fingerprint.hpp"

namespace fsaic {

/// A built factor ready for reuse: distribute g over `layout` to recover the
/// G / G^T pair the preconditioner applies.
struct CachedFactor {
  CsrMatrix g;
  Layout layout;
  double build_seconds = 0.0;  ///< wall time of the original build (0 when
                               ///< reloaded from the disk store)
};

/// Where a cache lookup was satisfied.
enum class CacheTier {
  Ram,   ///< resident in the LRU
  Disk,  ///< reloaded from the factor store
  Miss,  ///< not cached anywhere — caller builds fresh
};

struct FactorCacheStats {
  std::int64_t hits = 0;       ///< RAM-tier hits
  std::int64_t misses = 0;     ///< full misses (neither tier)
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t disk_hits = 0;      ///< RAM misses satisfied by the store
  std::int64_t spills = 0;         ///< factor files written to the store
  std::int64_t load_failures = 0;  ///< corrupt/mismatched store files
  std::int64_t store_evictions = 0;  ///< store files deleted by the size cap
};

class FactorCache {
 public:
  /// `capacity` = maximum number of resident factors; 0 disables caching
  /// (every get misses, puts are dropped). A non-empty `store_dir` enables
  /// the disk tier; the directory is created on first use.
  /// `store_max_bytes` caps the disk store's total footprint (0 =
  /// unlimited): exceeding it after a persist evicts the
  /// least-recently-accessed factor files.
  explicit FactorCache(std::size_t capacity, std::string store_dir = "",
                       std::size_t store_max_bytes = 0)
      : capacity_(capacity),
        store_dir_(std::move(store_dir)),
        store_max_bytes_(store_max_bytes) {}

  struct Key {
    MatrixFingerprint fingerprint;
    std::string config;  ///< build options, e.g. "fsaie-comm|0.01|dynamic|8"

    bool operator==(const Key&) const = default;
    bool operator<(const Key& o) const {
      const auto tie = [](const Key& k) {
        return std::tie(k.config, k.fingerprint.rows, k.fingerprint.cols,
                        k.fingerprint.nnz, k.fingerprint.content_hash);
      };
      return tie(*this) < tie(o);
    }
  };

  /// Look up a factor; null on miss. A RAM hit moves the entry to
  /// most-recently-used; a RAM miss with a store configured attempts a disk
  /// reload (re-inserting the factor into RAM on success). When `tier` is
  /// non-null it reports where the lookup was satisfied. Counts into stats
  /// either way.
  [[nodiscard]] std::shared_ptr<const CachedFactor> get(
      const Key& key, CacheTier* tier = nullptr);

  /// Insert (or refresh) a factor; evicts the least-recently-used entry
  /// when at capacity. With a store configured the factor is persisted
  /// write-through (before insertion, outside the mutex), so it survives
  /// process death regardless of later evictions; an entry whose persist
  /// failed is written again when the LRU spills it.
  void put(const Key& key, std::shared_ptr<const CachedFactor> factor);

  [[nodiscard]] FactorCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::string& store_dir() const { return store_dir_; }
  [[nodiscard]] std::size_t store_max_bytes() const {
    return store_max_bytes_;
  }

  /// The store file a key maps to ("" without a store) — exposed so tests
  /// can corrupt/delete specific entries.
  [[nodiscard]] std::string store_path(const Key& key) const;

  /// Drop the RAM tier (store files are left in place — a subsequent get
  /// exercises the disk-reload path, which is what the cold/warm-restart
  /// tests do).
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const CachedFactor> factor;
    std::list<Key>::iterator lru_pos;  ///< position in lru_ (front = newest)
    bool persisted = false;            ///< already on disk (skip spill write)
  };

  /// Bookkeeping for one on-disk factor file (size-cap enforcement).
  struct StoreEntry {
    std::uintmax_t bytes = 0;
    std::uint64_t last_access = 0;  ///< monotone sequence; larger = fresher
  };

  /// Write one factor file atomically (tmp + rename). Returns success; never
  /// throws. Called outside the mutex. On success reconciles the store
  /// against `store_max_bytes_`.
  bool persist(const Key& key, const CachedFactor& factor);

  /// Populate the store index from a directory scan, seeding recency from
  /// file mtimes. Requires `store_mutex_` held.
  void ensure_store_index_locked();
  /// Mark a store file as just accessed (disk-tier reload).
  void note_store_access(const std::string& path);
  /// Record a freshly persisted file, then evict least-recently-accessed
  /// files (never `path` itself) while the store exceeds the cap.
  void note_store_write(const std::string& path);

  const std::size_t capacity_;
  const std::string store_dir_;
  const std::size_t store_max_bytes_ = 0;  ///< 0 = unlimited
  mutable std::mutex mutex_;
  std::list<Key> lru_;
  std::map<Key, Entry> entries_;
  FactorCacheStats stats_;
  std::atomic<std::uint64_t> tmp_seq_{0};  ///< unique temp-file suffixes
  std::mutex store_mutex_;  ///< guards the store index (never nested inside
                            ///< `mutex_`)
  bool store_index_ready_ = false;
  std::uint64_t store_seq_ = 0;
  std::map<std::string, StoreEntry> store_index_;  ///< path -> size/recency
};

}  // namespace fsaic
