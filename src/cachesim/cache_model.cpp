#include "cachesim/cache_model.hpp"

#include <algorithm>
#include <bit>

#include "sparse/csr.hpp"
#include "sparse/sell.hpp"

namespace fsaic {

CacheModel::CacheModel(const CacheConfig& config) : config_(config) {
  FSAIC_REQUIRE(config.line_bytes > 0 &&
                    std::has_single_bit(static_cast<unsigned>(config.line_bytes)),
                "line size must be a positive power of two");
  FSAIC_REQUIRE(config.associativity > 0, "associativity must be positive");
  FSAIC_REQUIRE(config.size_bytes >= config.line_bytes * config.associativity,
                "cache must hold at least one set");
  FSAIC_REQUIRE(config.size_bytes % (config.line_bytes * config.associativity) == 0,
                "cache size must be a whole number of sets");
  set_count_ = config.num_sets();
  line_shift_ = std::countr_zero(static_cast<unsigned>(config.line_bytes));
  tags_.assign(static_cast<std::size_t>(set_count_) *
                   static_cast<std::size_t>(config.associativity),
               -1);
  stamp_.assign(tags_.size(), 0);
}

bool CacheModel::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const auto set = static_cast<std::size_t>(line % static_cast<std::uint64_t>(set_count_));
  const auto tag = static_cast<std::int64_t>(line);
  const std::size_t base = set * static_cast<std::size_t>(config_.associativity);
  ++clock_;
  std::size_t lru_way = 0;
  std::uint64_t lru_stamp = ~std::uint64_t{0};
  for (int w = 0; w < config_.associativity; ++w) {
    const std::size_t slot = base + static_cast<std::size_t>(w);
    if (tags_[slot] == tag) {
      stamp_[slot] = clock_;
      ++hits_;
      return true;
    }
    if (stamp_[slot] < lru_stamp) {
      lru_stamp = stamp_[slot];
      lru_way = slot;
    }
  }
  tags_[lru_way] = tag;
  stamp_[lru_way] = clock_;
  ++misses_;
  return false;
}

void CacheModel::flush() {
  std::fill(tags_.begin(), tags_.end(), -1);
  std::fill(stamp_.begin(), stamp_.end(), 0);
  clock_ = 0;
  reset_stats();
}

XAccessReport replay_spmv_x_accesses(const CsrMatrix& m, const CacheConfig& config) {
  CacheModel model(config);
  return replay_spmv_x_accesses(m, model);
}

XAccessReport replay_spmv_x_accesses(const CsrMatrix& m, CacheModel& model,
                                     std::uint64_t base_addr) {
  const std::int64_t misses_before = model.misses();
  const std::int64_t accesses_before = model.accesses();
  for (index_t i = 0; i < m.rows(); ++i) {
    for (index_t j : m.row_cols(i)) {
      model.access(base_addr +
                   static_cast<std::uint64_t>(j) * sizeof(value_t));
    }
  }
  XAccessReport report;
  report.accesses = model.accesses() - accesses_before;
  report.misses = model.misses() - misses_before;
  return report;
}

XAccessReport replay_sell_spmv_x_accesses(const SellMatrix& m,
                                          const CacheConfig& config) {
  CacheModel model(config);
  return replay_sell_spmv_x_accesses(m, model);
}

XAccessReport replay_sell_spmv_x_accesses(const SellMatrix& m, CacheModel& model,
                                          std::uint64_t base_addr) {
  const std::int64_t misses_before = model.misses();
  const std::int64_t accesses_before = model.accesses();
  const auto chunk_ptr = m.chunk_ptr();
  const auto widths = m.chunk_widths();
  const auto cols = m.col_indices();
  const index_t chunk = m.chunk();
  for (index_t c = 0; c < m.num_chunks(); ++c) {
    const offset_t base = chunk_ptr[static_cast<std::size_t>(c)];
    const index_t width = widths[static_cast<std::size_t>(c)];
    for (index_t j = 0; j < width; ++j) {
      const offset_t slot0 = base + static_cast<offset_t>(j) * chunk;
      // All `chunk` lanes, including the padding lanes of a final partial
      // chunk: the kernel issues their x[0] loads too (branch-free lanes),
      // so accesses == padded_size() exactly.
      for (index_t lane = 0; lane < chunk; ++lane) {
        const index_t col =
            cols[static_cast<std::size_t>(slot0 + lane)];
        model.access(base_addr +
                     static_cast<std::uint64_t>(col) * sizeof(value_t));
      }
    }
  }
  XAccessReport report;
  report.accesses = model.accesses() - accesses_before;
  report.misses = model.misses() - misses_before;
  return report;
}

}  // namespace fsaic
