// Set-associative LRU cache model.
//
// The paper's Figures 3a/5a report L1 data-cache misses on accesses to the
// multiplying vector x during the preconditioning product G^T G x, normalized
// per nonzero of G. On real hardware that comes from PAPI counters; here the
// replay of the exact x-access stream of our SpMV kernels through this model
// produces the same metric. The cache-line size parameter is also what the
// FSAIE/FSAIE-Comm pattern extension keys on (64 B on Skylake/Zen 2, 256 B on
// A64FX), so the model and the preconditioner see one consistent geometry.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fsaic {

struct CacheConfig {
  int line_bytes = 64;
  int size_bytes = 32 * 1024;
  int associativity = 8;

  [[nodiscard]] int num_sets() const {
    return size_bytes / (line_bytes * associativity);
  }
};

class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& config);

  /// Touch one byte address; returns true on hit. Misses fill the line (LRU
  /// eviction).
  bool access(std::uint64_t addr);

  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] std::int64_t misses() const { return misses_; }
  [[nodiscard]] std::int64_t accesses() const { return hits_ + misses_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  void reset_stats() {
    hits_ = 0;
    misses_ = 0;
  }

  /// Invalidate all lines and reset statistics.
  void flush();

 private:
  CacheConfig config_;
  int set_count_;
  int line_shift_;
  // tags_[set * associativity + way]; -1 = invalid. stamp_ implements LRU.
  std::vector<std::int64_t> tags_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t clock_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

/// Replay of the x-access stream of y = M x (rows in order, columns in CSR
/// order, x entries 8 bytes apart) through a cache model.
struct XAccessReport {
  std::int64_t accesses = 0;
  std::int64_t misses = 0;

  [[nodiscard]] double miss_rate() const {
    return accesses > 0 ? static_cast<double>(misses) / static_cast<double>(accesses)
                        : 0.0;
  }
};

class CsrMatrix;  // fwd (sparse/csr.hpp)

/// Misses on x during one SpMV with matrix m. The cache is flushed first;
/// `base_addr` offsets the x array (use distinct offsets for distinct
/// vectors when chaining products through one model).
XAccessReport replay_spmv_x_accesses(const CsrMatrix& m, const CacheConfig& config);

/// Same, reusing a caller-managed model without flushing (lets callers chain
/// the G and G^T products of the preconditioning step).
XAccessReport replay_spmv_x_accesses(const CsrMatrix& m, CacheModel& model,
                                     std::uint64_t base_addr = 0);

class SellMatrix;  // fwd (sparse/sell.hpp)

/// Misses on x during one SELL-C-sigma SpMV: the replay walks the chunk
/// storage in kernel order — chunks outer, slot columns inner, lanes
/// innermost — so it sees the sigma-sorted access locality (and the padding
/// slots' x[0] reads) exactly as the SIMD kernel issues them. The access
/// COUNT therefore includes padding (accesses == padded_size()), unlike the
/// CSR replay whose count equals nnz.
XAccessReport replay_sell_spmv_x_accesses(const SellMatrix& m,
                                          const CacheConfig& config);
XAccessReport replay_sell_spmv_x_accesses(const SellMatrix& m, CacheModel& model,
                                          std::uint64_t base_addr = 0);

}  // namespace fsaic
