// Persistent SPMD thread team.
//
// The engine owns N worker threads that live for the engine's lifetime and
// execute "supersteps": run(job) wakes every worker, worker t calls job(t),
// and run() returns once all workers have finished (bulk-synchronous, like
// one MPI communicator stepping through a program). Two reusable Barriers —
// a start barrier and an end barrier shared with the submitting thread —
// provide the happens-before edges, so data written before run() is visible
// inside the job and data written by the job is visible after run() returns.
//
// Exceptions thrown inside a job are captured and rethrown on the submitting
// thread after the superstep completes, so FSAIC_REQUIRE/FSAIC_CHECK keep
// their throwing contract under threaded execution.
#pragma once

#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "exec/barrier.hpp"

namespace fsaic {

class SpmdEngine {
 public:
  explicit SpmdEngine(int nthreads);
  ~SpmdEngine();

  SpmdEngine(const SpmdEngine&) = delete;
  SpmdEngine& operator=(const SpmdEngine&) = delete;

  [[nodiscard]] int nthreads() const { return nthreads_; }

  /// Execute one superstep: job(t) on worker thread t for every t in
  /// [0, nthreads). Blocks until all workers are done; rethrows the first
  /// exception a worker raised. Not reentrant (one superstep at a time).
  void run(const std::function<void(int)>& job);

  /// Supersteps completed so far.
  [[nodiscard]] std::uint64_t supersteps() const { return supersteps_; }

  /// Accumulated wall time of all supersteps (measured by the submitter).
  [[nodiscard]] double span_us() const { return span_us_; }

  /// Per-worker busy time inside jobs; span_us() minus a worker's busy time
  /// is the time it spent waiting on barriers (load imbalance).
  [[nodiscard]] const std::vector<double>& busy_us() const { return busy_us_; }

 private:
  void worker_loop(int t);

  const int nthreads_;
  Barrier start_;  ///< submitter + workers: job is published
  Barrier end_;    ///< submitter + workers: job is complete
  const std::function<void(int)>* job_ = nullptr;
  bool stop_ = false;
  std::exception_ptr error_;
  std::mutex error_mutex_;
  std::uint64_t supersteps_ = 0;
  double span_us_ = 0.0;
  std::vector<double> busy_us_;
  std::vector<std::thread> threads_;
};

}  // namespace fsaic
