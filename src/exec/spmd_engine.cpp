#include "exec/spmd_engine.hpp"

#include <chrono>

#include "common/error.hpp"
#include "common/format.hpp"
#include "obs/trace.hpp"

namespace fsaic {

SpmdEngine::SpmdEngine(int nthreads)
    : nthreads_(nthreads),
      start_(nthreads + 1),
      end_(nthreads + 1),
      busy_us_(static_cast<std::size_t>(nthreads), 0.0) {
  FSAIC_REQUIRE(nthreads >= 1, "SPMD engine needs at least one thread");
  threads_.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    threads_.emplace_back([this, t] { worker_loop(t); });
  }
}

SpmdEngine::~SpmdEngine() {
  stop_ = true;  // published to workers by the start barrier
  start_.arrive_and_wait();
  for (auto& th : threads_) {
    th.join();
  }
}

void SpmdEngine::run(const std::function<void(int)>& job) {
  using clock = std::chrono::steady_clock;
  job_ = &job;
  error_ = nullptr;
  const auto t0 = clock::now();
  start_.arrive_and_wait();
  end_.arrive_and_wait();
  span_us_ +=
      std::chrono::duration<double, std::micro>(clock::now() - t0).count();
  ++supersteps_;
  job_ = nullptr;
  if (error_ != nullptr) {
    std::rethrow_exception(error_);
  }
}

void SpmdEngine::worker_loop(int t) {
  TraceRecorder::label_current_thread(strformat("spmd worker %d", t));
  using clock = std::chrono::steady_clock;
  for (;;) {
    start_.arrive_and_wait();
    if (stop_) return;
    const auto t0 = clock::now();
    try {
      (*job_)(t);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
    // Busy accounting is written before the end barrier so the submitter can
    // read it race-free after run() returns.
    busy_us_[static_cast<std::size_t>(t)] +=
        std::chrono::duration<double, std::micro>(clock::now() - t0).count();
    end_.arrive_and_wait();
  }
}

}  // namespace fsaic
