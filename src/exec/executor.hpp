// Executor abstraction of the simulated distributed runtime.
//
// Every distributed operation (halo exchange + SpMV, dot products, AXPYs,
// the factor applications) is phrased as supersteps over the simulated
// ranks: parallel_ranks(n, f) runs f(p) for every rank p, and
// allreduce_sum() combines per-rank partial reductions. The sequential
// executor runs ranks in a plain loop (the pre-existing behaviour); the
// threaded executor runs them on a persistent SPMD thread team.
//
// Determinism contract: both executors combine reduction partials with the
// SAME fixed-order binary tree (tree_combine_step below), so every solver
// produces bit-identical residual histories regardless of the executor or
// its thread count. The tree's shape depends only on the number of ranks.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace fsaic {

/// Synchronization counters of an executor (all zero for the sequential one).
struct ExecStats {
  int nthreads = 1;
  std::uint64_t supersteps = 0;
  std::uint64_t allreduces = 0;
  /// Per team thread: accumulated time spent waiting at superstep barriers
  /// (load imbalance). Empty for the sequential executor.
  std::vector<double> barrier_wait_us;

  [[nodiscard]] double max_barrier_wait_us() const {
    double m = 0.0;
    for (double w : barrier_wait_us) m = std::max(m, w);
    return m;
  }
};

/// One rank's combine of the fixed-order reduction tree at level `stride`:
/// ranks whose id is a multiple of 2*stride absorb the partials of rank
/// p + stride (when it exists). Applying strides 1, 2, 4, ... leaves the
/// tree-combined sums in row 0 of `partials` (nranks rows of `width`).
/// Shared by both executors — this is what makes them bit-identical.
void tree_combine_step(std::span<value_t> partials, rank_t nranks, int width,
                       rank_t stride, rank_t p);

class Executor {
 public:
  virtual ~Executor() = default;

  [[nodiscard]] virtual bool threaded() const = 0;
  [[nodiscard]] virtual int nthreads() const = 0;

  /// One superstep: f(p) for every rank p in [0, nranks). The threaded
  /// executor runs ranks concurrently and barriers before returning; rank
  /// bodies may only write rank-private data (their own vector blocks,
  /// their own row of a partials array, their own mailboxes).
  virtual void parallel_ranks(rank_t nranks,
                              const std::function<void(rank_t)>& f) = 0;

  /// Deterministic sum-allreduce: `partials` holds nranks rows of `width`
  /// values (row-major, consumed destructively); on return `out` (size
  /// `width`) holds the fixed-order tree-combined sums. Identical bits for
  /// every executor and thread count.
  virtual void allreduce_sum(std::span<value_t> partials, int width,
                             std::span<value_t> out) = 0;

  /// Data-parallel loop over independent work items (the FSAI/SPAI setup row
  /// solves): f(i, slot) for every i in [0, n), where `slot` identifies the
  /// executing lane in [0, parallel_for_width()) so callers can index
  /// per-thread scratch. Unlike parallel_ranks, the iteration space is not a
  /// rank space: items are scheduled in chunks for load balance and the
  /// assignment of items to slots is NOT deterministic — bodies must write
  /// only item-private outputs and slot-private scratch. The sequential
  /// executor runs the loop through OpenMP when compiled in (the historic
  /// setup behaviour); the threaded executor runs it on the SPMD team, which
  /// is what the OpenMP-free TSAN build races.
  virtual void parallel_for(index_t n,
                            const std::function<void(index_t, int)>& f) = 0;

  /// Upper bound (exclusive) on the `slot` values parallel_for passes;
  /// callers size per-thread scratch arrays with it.
  [[nodiscard]] virtual int parallel_for_width() const = 0;

  [[nodiscard]] virtual ExecStats stats() const = 0;
};

/// The plain for-loop executor (default when no executor is supplied and
/// FSAIC_THREADS is unset).
class SeqExecutor final : public Executor {
 public:
  [[nodiscard]] bool threaded() const override { return false; }
  [[nodiscard]] int nthreads() const override { return 1; }
  void parallel_ranks(rank_t nranks,
                      const std::function<void(rank_t)>& f) override;
  void allreduce_sum(std::span<value_t> partials, int width,
                     std::span<value_t> out) override;
  void parallel_for(index_t n,
                    const std::function<void(index_t, int)>& f) override;
  [[nodiscard]] int parallel_for_width() const override;
  [[nodiscard]] ExecStats stats() const override;

 private:
  std::uint64_t supersteps_ = 0;
  std::uint64_t allreduces_ = 0;
};

/// Process-wide default executor, built once from ExecPolicy::from_env()
/// (the FSAIC_THREADS environment variable). Distributed operations called
/// without an explicit executor route here, so an entire test binary or
/// bench can be switched to threaded execution from the environment.
Executor& default_executor();

/// `exec` if non-null, otherwise the process-wide default.
inline Executor& resolve_executor(Executor* exec) {
  return exec != nullptr ? *exec : default_executor();
}

}  // namespace fsaic
