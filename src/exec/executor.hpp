// Executor abstraction of the simulated distributed runtime.
//
// Every distributed operation (halo exchange + SpMV, dot products, AXPYs,
// the factor applications) is phrased as supersteps over the simulated
// ranks: parallel_ranks(n, f) runs f(p) for every rank p, and
// allreduce_sum() combines per-rank partial reductions. The sequential
// executor runs ranks in a plain loop (the pre-existing behaviour); the
// threaded executor runs them on a persistent SPMD thread team.
//
// Determinism contract: both executors combine reduction partials with the
// SAME fixed-order binary tree (tree_combine_step below), so every solver
// produces bit-identical residual histories regardless of the executor or
// its thread count. The tree's shape depends only on the number of ranks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace fsaic {

/// Synchronization counters of an executor (all zero for the sequential one).
struct ExecStats {
  int nthreads = 1;
  std::uint64_t supersteps = 0;
  std::uint64_t allreduces = 0;
  /// Per team thread: accumulated time spent waiting at superstep barriers
  /// (load imbalance). Empty for the sequential executor.
  std::vector<double> barrier_wait_us;

  [[nodiscard]] double max_barrier_wait_us() const {
    double m = 0.0;
    for (double w : barrier_wait_us) m = std::max(m, w);
    return m;
  }
};

/// One rank's combine of the fixed-order reduction tree at level `stride`:
/// ranks whose id is a multiple of 2*stride absorb the partials of rank
/// p + stride (when it exists). Applying strides 1, 2, 4, ... leaves the
/// tree-combined sums in row 0 of `partials` (nranks rows of `width`).
/// Shared by both executors — this is what makes them bit-identical.
void tree_combine_step(std::span<value_t> partials, rank_t nranks, int width,
                       rank_t stride, rank_t p);

/// The full fixed-order tree reduction run serially: strides 1, 2, 4, ...
/// over nranks rows of `width`, leaving the sums in `out`. This is the exact
/// addition sequence both executors' blocking allreduce performs, and what
/// the threaded executor's background combiner runs for asynchronous
/// reductions — one code path, so every variant is bit-identical.
void tree_reduce_serial(std::span<value_t> partials, int width,
                        std::span<value_t> out);

/// Handle to an in-flight asynchronous sum-allreduce started with
/// Executor::allreduce_begin. Under the threaded executor the reduction
/// progresses on a background combiner thread while the issuing code keeps
/// running supersteps (genuine comm/compute overlap); the sequential
/// executor completes it eagerly at begin. Either way wait() delivers the
/// fixed-order tree result — bit-identical to a blocking allreduce_sum of
/// the same partials.
class AsyncAllreduce {
 public:
  AsyncAllreduce() = default;

  /// True while a begun reduction has not been waited on.
  [[nodiscard]] bool pending() const { return state_ != nullptr; }

  /// Block until the reduction is done, copy the sums into `out` (size
  /// width), and release the handle.
  void wait(std::span<value_t> out);

 private:
  friend class SeqExecutor;
  friend class ThreadedExecutor;

  struct State {
    std::vector<value_t> partials;
    int width = 0;
    std::vector<value_t> result;
    bool done = false;
    std::mutex mutex;
    std::condition_variable cv;
  };

  std::shared_ptr<State> state_;
};

class Executor {
 public:
  virtual ~Executor() = default;

  [[nodiscard]] virtual bool threaded() const = 0;
  [[nodiscard]] virtual int nthreads() const = 0;

  /// One superstep: f(p) for every rank p in [0, nranks). The threaded
  /// executor runs ranks concurrently and barriers before returning; rank
  /// bodies may only write rank-private data (their own vector blocks,
  /// their own row of a partials array, their own mailboxes).
  virtual void parallel_ranks(rank_t nranks,
                              const std::function<void(rank_t)>& f) = 0;

  /// One superstep with two per-rank phases and NO barrier between them:
  /// each executing thread runs post(p) for every rank of its slice, then
  /// work(p) for every rank of its slice. Because all of a thread's posts
  /// precede all of its works, a work body may block on data produced by
  /// any rank's post (the node-aware halo drain) without deadlock — and the
  /// part of work that runs before the blocking wait genuinely overlaps
  /// with other threads' posts. post bodies must never block. The
  /// sequential executor runs all posts then all works.
  virtual void parallel_ranks_phased(rank_t nranks,
                                     const std::function<void(rank_t)>& post,
                                     const std::function<void(rank_t)>& work) = 0;

  /// Deterministic sum-allreduce: `partials` holds nranks rows of `width`
  /// values (row-major, consumed destructively); on return `out` (size
  /// `width`) holds the fixed-order tree-combined sums. Identical bits for
  /// every executor and thread count.
  virtual void allreduce_sum(std::span<value_t> partials, int width,
                             std::span<value_t> out) = 0;

  /// Start an asynchronous sum-allreduce of nranks rows of `width` values
  /// (the vector is consumed). The returned handle's wait() yields the same
  /// bits as allreduce_sum of the same partials — the combiner runs the
  /// identical fixed-order tree. The threaded executor reduces on a
  /// background thread so supersteps issued between begin and wait overlap
  /// the reduction; the sequential executor completes it at begin.
  virtual AsyncAllreduce allreduce_begin(std::vector<value_t> partials,
                                         int width) = 0;

  /// Data-parallel loop over independent work items (the FSAI/SPAI setup row
  /// solves): f(i, slot) for every i in [0, n), where `slot` identifies the
  /// executing lane in [0, parallel_for_width()) so callers can index
  /// per-thread scratch. Unlike parallel_ranks, the iteration space is not a
  /// rank space: items are scheduled in chunks for load balance and the
  /// assignment of items to slots is NOT deterministic — bodies must write
  /// only item-private outputs and slot-private scratch. The sequential
  /// executor runs the loop through OpenMP when compiled in (the historic
  /// setup behaviour); the threaded executor runs it on the SPMD team, which
  /// is what the OpenMP-free TSAN build races.
  virtual void parallel_for(index_t n,
                            const std::function<void(index_t, int)>& f) = 0;

  /// Upper bound (exclusive) on the `slot` values parallel_for passes;
  /// callers size per-thread scratch arrays with it.
  [[nodiscard]] virtual int parallel_for_width() const = 0;

  [[nodiscard]] virtual ExecStats stats() const = 0;
};

/// The plain for-loop executor (default when no executor is supplied and
/// FSAIC_THREADS is unset).
class SeqExecutor final : public Executor {
 public:
  [[nodiscard]] bool threaded() const override { return false; }
  [[nodiscard]] int nthreads() const override { return 1; }
  void parallel_ranks(rank_t nranks,
                      const std::function<void(rank_t)>& f) override;
  void parallel_ranks_phased(rank_t nranks,
                             const std::function<void(rank_t)>& post,
                             const std::function<void(rank_t)>& work) override;
  void allreduce_sum(std::span<value_t> partials, int width,
                     std::span<value_t> out) override;
  AsyncAllreduce allreduce_begin(std::vector<value_t> partials,
                                 int width) override;
  void parallel_for(index_t n,
                    const std::function<void(index_t, int)>& f) override;
  [[nodiscard]] int parallel_for_width() const override;
  [[nodiscard]] ExecStats stats() const override;

 private:
  std::uint64_t supersteps_ = 0;
  std::uint64_t allreduces_ = 0;
};

/// Process-wide default executor, built once from ExecPolicy::from_env()
/// (the FSAIC_THREADS environment variable). Distributed operations called
/// without an explicit executor route here, so an entire test binary or
/// bench can be switched to threaded execution from the environment.
Executor& default_executor();

/// `exec` if non-null, otherwise the process-wide default.
inline Executor& resolve_executor(Executor* exec) {
  return exec != nullptr ? *exec : default_executor();
}

}  // namespace fsaic
