// Threaded executor: simulated ranks run concurrently on the persistent
// SPMD team. Ranks are block-distributed over the team, so with nthreads >=
// nranks every rank has its own std::thread; with fewer threads each thread
// steps through a contiguous slice of ranks per superstep.
//
// The allreduce runs the shared fixed-order reduction tree as one superstep
// per tree level, with a real barrier between levels — the threaded and
// sequential executors perform the exact same additions in the exact same
// pairing, so results are bit-identical (see executor.hpp).
#pragma once

#include <memory>

#include "exec/executor.hpp"
#include "exec/spmd_engine.hpp"

namespace fsaic {

class ThreadedExecutor final : public Executor {
 public:
  explicit ThreadedExecutor(int nthreads);

  [[nodiscard]] bool threaded() const override { return true; }
  [[nodiscard]] int nthreads() const override { return engine_.nthreads(); }
  void parallel_ranks(rank_t nranks,
                      const std::function<void(rank_t)>& f) override;
  void allreduce_sum(std::span<value_t> partials, int width,
                     std::span<value_t> out) override;
  /// Work items are claimed by the team in contiguous chunks off a shared
  /// atomic cursor (the thread-team analogue of OpenMP's dynamic schedule),
  /// so irregular per-row costs load-balance; `slot` is the worker id.
  void parallel_for(index_t n,
                    const std::function<void(index_t, int)>& f) override;
  [[nodiscard]] int parallel_for_width() const override;
  [[nodiscard]] ExecStats stats() const override;

 private:
  SpmdEngine engine_;
  std::uint64_t allreduces_ = 0;
};

}  // namespace fsaic
