// Threaded executor: simulated ranks run concurrently on the persistent
// SPMD team. Ranks are block-distributed over the team, so with nthreads >=
// nranks every rank has its own std::thread; with fewer threads each thread
// steps through a contiguous slice of ranks per superstep.
//
// The allreduce runs the shared fixed-order reduction tree as one superstep
// per tree level, with a real barrier between levels — the threaded and
// sequential executors perform the exact same additions in the exact same
// pairing, so results are bit-identical (see executor.hpp).
#pragma once

#include <memory>

#include "exec/executor.hpp"
#include "exec/spmd_engine.hpp"

namespace fsaic {

class ThreadedExecutor final : public Executor {
 public:
  explicit ThreadedExecutor(int nthreads);

  [[nodiscard]] bool threaded() const override { return true; }
  [[nodiscard]] int nthreads() const override { return engine_.nthreads(); }
  void parallel_ranks(rank_t nranks,
                      const std::function<void(rank_t)>& f) override;
  void allreduce_sum(std::span<value_t> partials, int width,
                     std::span<value_t> out) override;
  [[nodiscard]] ExecStats stats() const override;

 private:
  SpmdEngine engine_;
  std::uint64_t allreduces_ = 0;
};

}  // namespace fsaic
