// Threaded executor: simulated ranks run concurrently on the persistent
// SPMD team. Ranks are block-distributed over the team, so with nthreads >=
// nranks every rank has its own std::thread; with fewer threads each thread
// steps through a contiguous slice of ranks per superstep.
//
// The allreduce runs the shared fixed-order reduction tree as one superstep
// per tree level, with a real barrier between levels — the threaded and
// sequential executors perform the exact same additions in the exact same
// pairing, so results are bit-identical (see executor.hpp).
#pragma once

#include <deque>
#include <memory>
#include <thread>

#include "exec/executor.hpp"
#include "exec/spmd_engine.hpp"

namespace fsaic {

class ThreadedExecutor final : public Executor {
 public:
  explicit ThreadedExecutor(int nthreads);
  ~ThreadedExecutor() override;

  [[nodiscard]] bool threaded() const override { return true; }
  [[nodiscard]] int nthreads() const override { return engine_.nthreads(); }
  void parallel_ranks(rank_t nranks,
                      const std::function<void(rank_t)>& f) override;
  void parallel_ranks_phased(rank_t nranks,
                             const std::function<void(rank_t)>& post,
                             const std::function<void(rank_t)>& work) override;
  void allreduce_sum(std::span<value_t> partials, int width,
                     std::span<value_t> out) override;
  /// The asynchronous reduction runs on a lazily-started background
  /// combiner thread (not on the SPMD team), executing the same serial
  /// fixed-order tree as the sequential executor — so it genuinely
  /// progresses while the team runs supersteps, and its result is
  /// bit-identical to a blocking allreduce of the same partials.
  AsyncAllreduce allreduce_begin(std::vector<value_t> partials,
                                 int width) override;
  /// Work items are claimed by the team in contiguous chunks off a shared
  /// atomic cursor (the thread-team analogue of OpenMP's dynamic schedule),
  /// so irregular per-row costs load-balance; `slot` is the worker id.
  void parallel_for(index_t n,
                    const std::function<void(index_t, int)>& f) override;
  [[nodiscard]] int parallel_for_width() const override;
  [[nodiscard]] ExecStats stats() const override;

 private:
  void ensure_combiner();

  SpmdEngine engine_;
  std::uint64_t allreduces_ = 0;

  // Background combiner for asynchronous allreduces: a queue of in-flight
  // reductions drained by one worker thread in submission order.
  std::thread combiner_;
  std::mutex combiner_mutex_;
  std::condition_variable combiner_cv_;
  std::deque<std::shared_ptr<AsyncAllreduce::State>> combiner_queue_;
  bool combiner_stop_ = false;
};

}  // namespace fsaic
