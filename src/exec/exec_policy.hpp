// Execution policy: how many real threads drive the simulated ranks.
//
// nthreads <= 1 selects the sequential executor (the default); nthreads >= 2
// selects the threaded SPMD executor. The CLI exposes this as
// `fsaic solve --threads N`; the FSAIC_THREADS environment variable
// configures the process-wide default executor, which is how the test suite
// and the benches are switched to threaded execution without code changes
// (e.g. the ThreadSanitizer CI job runs with FSAIC_THREADS=4).
#pragma once

#include <memory>

#include "exec/executor.hpp"

namespace fsaic {

struct ExecPolicy {
  int nthreads = 1;

  [[nodiscard]] bool threaded() const { return nthreads > 1; }

  /// Policy from FSAIC_THREADS (unset, empty, or unparsable -> sequential;
  /// values are clamped to [1, 256]).
  static ExecPolicy from_env();
};

/// Build the executor a policy describes.
std::unique_ptr<Executor> make_executor(const ExecPolicy& policy);

}  // namespace fsaic
