#include "exec/exec_policy.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "exec/threaded_executor.hpp"

namespace fsaic {

ExecPolicy ExecPolicy::from_env() {
  ExecPolicy policy;
  const char* env = std::getenv("FSAIC_THREADS");
  if (env == nullptr || *env == '\0') return policy;
  try {
    policy.nthreads = std::clamp(std::stoi(env), 1, 256);
  } catch (const std::exception&) {
    policy.nthreads = 1;  // unparsable -> sequential, never a hard failure
  }
  return policy;
}

std::unique_ptr<Executor> make_executor(const ExecPolicy& policy) {
  if (policy.threaded()) {
    return std::make_unique<ThreadedExecutor>(policy.nthreads);
  }
  return std::make_unique<SeqExecutor>();
}

Executor& default_executor() {
  // Built once, on first use, from the environment; worker threads (if any)
  // persist for the rest of the process.
  static const std::unique_ptr<Executor> exec =
      make_executor(ExecPolicy::from_env());
  return *exec;
}

}  // namespace fsaic
