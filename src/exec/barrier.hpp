// Reusable generation-counted barrier for the SPMD thread team.
//
// std::barrier exists in C++20 but its completion-function machinery and
// arrival-token API are more than the executor needs; this condvar barrier is
// deliberately minimal, reusable across an unbounded number of generations,
// and reports how long each arrival waited — the number the observability
// layer records as synchronization (imbalance) time.
#pragma once

#include <condition_variable>
#include <mutex>

namespace fsaic {

class Barrier {
 public:
  /// A barrier for `parties` participants; every generation releases once all
  /// parties have arrived. The same object is reused indefinitely.
  explicit Barrier(int parties);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all parties of the current generation have arrived.
  /// Returns the time this call spent blocked, in microseconds (0 for the
  /// last arrival, which releases the generation).
  double arrive_and_wait();

  [[nodiscard]] int parties() const { return parties_; }

  /// Completed generations (mainly for tests of barrier reuse).
  [[nodiscard]] std::uint64_t generation() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  const int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace fsaic
