#include "exec/threaded_executor.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"

namespace fsaic {

namespace {

// Set while a worker executes a rank body. A distributed operation invoked
// from inside a superstep (e.g. a preconditioner that calls spmv from a rank
// body) must not re-enter the engine — it would deadlock on the barriers —
// so nested parallel regions degrade to an inline loop on the calling
// thread. The worker slot is remembered alongside so a degraded
// parallel_for still indexes that worker's private scratch.
thread_local bool in_spmd_region = false;
thread_local int spmd_worker_slot = 0;

// RAII so the flag is restored even when a rank body throws (the engine
// captures the exception and the worker thread lives on).
struct SpmdRegionGuard {
  explicit SpmdRegionGuard(int slot) {
    in_spmd_region = true;
    spmd_worker_slot = slot;
  }
  ~SpmdRegionGuard() {
    in_spmd_region = false;
    spmd_worker_slot = 0;
  }
};

}  // namespace

ThreadedExecutor::ThreadedExecutor(int nthreads) : engine_(nthreads) {
  FSAIC_REQUIRE(nthreads >= 2, "threaded executor needs at least two threads");
}

ThreadedExecutor::~ThreadedExecutor() {
  {
    const std::lock_guard<std::mutex> lock(combiner_mutex_);
    combiner_stop_ = true;
  }
  combiner_cv_.notify_all();
  if (combiner_.joinable()) combiner_.join();
}

void ThreadedExecutor::parallel_ranks_phased(
    rank_t nranks, const std::function<void(rank_t)>& post,
    const std::function<void(rank_t)>& work) {
  if (in_spmd_region) {
    for (rank_t p = 0; p < nranks; ++p) post(p);
    for (rank_t p = 0; p < nranks; ++p) work(p);
    return;
  }
  const auto nt = static_cast<rank_t>(engine_.nthreads());
  engine_.run([&](int t) {
    const rank_t lo = static_cast<rank_t>(t) * nranks / nt;
    const rank_t hi = (static_cast<rank_t>(t) + 1) * nranks / nt;
    const SpmdRegionGuard guard(t);
    // All of this thread's posts precede all of its works, so a blocking
    // wait inside work(p) can only be waiting on another thread's post —
    // which needs no cooperation from this thread to complete.
    for (rank_t p = lo; p < hi; ++p) {
      post(p);
    }
    for (rank_t p = lo; p < hi; ++p) {
      work(p);
    }
  });
}

void ThreadedExecutor::parallel_ranks(rank_t nranks,
                                      const std::function<void(rank_t)>& f) {
  if (in_spmd_region) {
    for (rank_t p = 0; p < nranks; ++p) f(p);
    return;
  }
  const auto nt = static_cast<rank_t>(engine_.nthreads());
  engine_.run([&](int t) {
    // Contiguous rank slice of thread t; empty when nranks < nthreads.
    const rank_t lo = static_cast<rank_t>(t) * nranks / nt;
    const rank_t hi = (static_cast<rank_t>(t) + 1) * nranks / nt;
    const SpmdRegionGuard guard(t);
    for (rank_t p = lo; p < hi; ++p) {
      f(p);
    }
  });
}

void ThreadedExecutor::parallel_for(index_t n,
                                    const std::function<void(index_t, int)>& f) {
  if (n <= 0) return;
  if (in_spmd_region) {
    const int slot = spmd_worker_slot;
    for (index_t i = 0; i < n; ++i) f(i, slot);
    return;
  }
  const auto nt = static_cast<index_t>(engine_.nthreads());
  // Chunks sized for ~4 claims per worker, capped at 64 items (mirroring the
  // dynamic,64 OpenMP schedule the setup row loops historically used).
  const index_t chunk =
      std::clamp<index_t>((n + 4 * nt - 1) / (4 * nt), 1, 64);
  std::atomic<index_t> cursor{0};
  engine_.run([&](int t) {
    const SpmdRegionGuard guard(t);
    for (;;) {
      const index_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const index_t end = std::min<index_t>(n, begin + chunk);
      for (index_t i = begin; i < end; ++i) {
        f(i, t);
      }
    }
  });
}

int ThreadedExecutor::parallel_for_width() const { return engine_.nthreads(); }

void ThreadedExecutor::allreduce_sum(std::span<value_t> partials, int width,
                                     std::span<value_t> out) {
  FSAIC_REQUIRE(width >= 1 && partials.size() % static_cast<std::size_t>(width) == 0,
                "allreduce partials must be nranks rows of width values");
  FSAIC_REQUIRE(out.size() == static_cast<std::size_t>(width),
                "allreduce output must hold width values");
  const auto nranks =
      static_cast<rank_t>(partials.size() / static_cast<std::size_t>(width));
  // One superstep per tree level; the barrier between levels publishes the
  // partial sums of level l to the combining ranks of level l+1.
  for (rank_t stride = 1; stride < nranks; stride *= 2) {
    parallel_ranks(nranks, [&](rank_t p) {
      tree_combine_step(partials, nranks, width, stride, p);
    });
  }
  for (int c = 0; c < width; ++c) {
    out[static_cast<std::size_t>(c)] =
        nranks > 0 ? partials[static_cast<std::size_t>(c)] : 0.0;
  }
  ++allreduces_;
}

void ThreadedExecutor::ensure_combiner() {
  if (combiner_.joinable()) return;
  combiner_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(combiner_mutex_);
    for (;;) {
      combiner_cv_.wait(
          lock, [&] { return combiner_stop_ || !combiner_queue_.empty(); });
      if (combiner_queue_.empty()) {
        if (combiner_stop_) return;
        continue;
      }
      auto state = std::move(combiner_queue_.front());
      combiner_queue_.pop_front();
      lock.unlock();
      tree_reduce_serial(state->partials, state->width, state->result);
      {
        const std::lock_guard<std::mutex> state_lock(state->mutex);
        state->done = true;
      }
      state->cv.notify_all();
      lock.lock();
    }
  });
}

AsyncAllreduce ThreadedExecutor::allreduce_begin(std::vector<value_t> partials,
                                                 int width) {
  AsyncAllreduce handle;
  handle.state_ = std::make_shared<AsyncAllreduce::State>();
  handle.state_->width = width;
  handle.state_->partials = std::move(partials);
  handle.state_->result.assign(static_cast<std::size_t>(width), 0.0);
  FSAIC_REQUIRE(width >= 1 &&
                    handle.state_->partials.size() %
                            static_cast<std::size_t>(width) ==
                        0,
                "allreduce partials must be nranks rows of width values");
  {
    const std::lock_guard<std::mutex> lock(combiner_mutex_);
    ensure_combiner();
    combiner_queue_.push_back(handle.state_);
  }
  combiner_cv_.notify_one();
  ++allreduces_;
  return handle;
}

ExecStats ThreadedExecutor::stats() const {
  ExecStats s;
  s.nthreads = engine_.nthreads();
  s.supersteps = engine_.supersteps();
  s.allreduces = allreduces_;
  s.barrier_wait_us.reserve(engine_.busy_us().size());
  for (double busy : engine_.busy_us()) {
    s.barrier_wait_us.push_back(std::max(0.0, engine_.span_us() - busy));
  }
  return s;
}

}  // namespace fsaic
