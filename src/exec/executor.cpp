#include "exec/executor.hpp"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/error.hpp"

namespace fsaic {

void tree_combine_step(std::span<value_t> partials, rank_t nranks, int width,
                       rank_t stride, rank_t p) {
  if (p % (2 * stride) != 0 || p + stride >= nranks) return;
  const auto dst = static_cast<std::size_t>(p) * static_cast<std::size_t>(width);
  const auto src =
      static_cast<std::size_t>(p + stride) * static_cast<std::size_t>(width);
  for (int c = 0; c < width; ++c) {
    partials[dst + static_cast<std::size_t>(c)] +=
        partials[src + static_cast<std::size_t>(c)];
  }
}

void tree_reduce_serial(std::span<value_t> partials, int width,
                        std::span<value_t> out) {
  FSAIC_REQUIRE(width >= 1 && partials.size() % static_cast<std::size_t>(width) == 0,
                "allreduce partials must be nranks rows of width values");
  FSAIC_REQUIRE(out.size() == static_cast<std::size_t>(width),
                "allreduce output must hold width values");
  const auto nranks =
      static_cast<rank_t>(partials.size() / static_cast<std::size_t>(width));
  for (rank_t stride = 1; stride < nranks; stride *= 2) {
    for (rank_t p = 0; p < nranks; p += 2 * stride) {
      tree_combine_step(partials, nranks, width, stride, p);
    }
  }
  for (int c = 0; c < width; ++c) {
    out[static_cast<std::size_t>(c)] =
        nranks > 0 ? partials[static_cast<std::size_t>(c)] : 0.0;
  }
}

void AsyncAllreduce::wait(std::span<value_t> out) {
  FSAIC_REQUIRE(state_ != nullptr, "no asynchronous allreduce in flight");
  FSAIC_REQUIRE(out.size() == static_cast<std::size_t>(state_->width),
                "allreduce output must hold width values");
  {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
  }
  std::copy(state_->result.begin(), state_->result.end(), out.begin());
  state_.reset();
}

void SeqExecutor::parallel_ranks(rank_t nranks,
                                 const std::function<void(rank_t)>& f) {
  for (rank_t p = 0; p < nranks; ++p) {
    f(p);
  }
  ++supersteps_;
}

void SeqExecutor::parallel_ranks_phased(rank_t nranks,
                                        const std::function<void(rank_t)>& post,
                                        const std::function<void(rank_t)>& work) {
  for (rank_t p = 0; p < nranks; ++p) {
    post(p);
  }
  for (rank_t p = 0; p < nranks; ++p) {
    work(p);
  }
  ++supersteps_;
}

void SeqExecutor::allreduce_sum(std::span<value_t> partials, int width,
                                std::span<value_t> out) {
  tree_reduce_serial(partials, width, out);
  ++allreduces_;
}

AsyncAllreduce SeqExecutor::allreduce_begin(std::vector<value_t> partials,
                                            int width) {
  // No team to overlap with: reduce eagerly, wait() returns immediately.
  AsyncAllreduce handle;
  handle.state_ = std::make_shared<AsyncAllreduce::State>();
  handle.state_->width = width;
  handle.state_->partials = std::move(partials);
  handle.state_->result.assign(static_cast<std::size_t>(width), 0.0);
  tree_reduce_serial(handle.state_->partials, width, handle.state_->result);
  handle.state_->done = true;
  ++allreduces_;
  return handle;
}

void SeqExecutor::parallel_for(index_t n,
                               const std::function<void(index_t, int)>& f) {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < n; ++i) {
    f(i, omp_get_thread_num());
  }
#else
  for (index_t i = 0; i < n; ++i) {
    f(i, 0);
  }
#endif
  ++supersteps_;
}

int SeqExecutor::parallel_for_width() const {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

ExecStats SeqExecutor::stats() const {
  return {1, supersteps_, allreduces_, {}};
}

}  // namespace fsaic
