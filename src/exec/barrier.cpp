#include "exec/barrier.hpp"

#include <chrono>

#include "common/error.hpp"

namespace fsaic {

Barrier::Barrier(int parties) : parties_(parties) {
  FSAIC_REQUIRE(parties >= 1, "barrier needs at least one party");
}

double Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (++arrived_ == parties_) {
    // Last arrival: open the next generation and release everyone.
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return 0.0;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t gen = generation_;
  cv_.wait(lock, [&] { return generation_ != gen; });
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t Barrier::generation() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

}  // namespace fsaic
