// Two-sided halo exchange over per-neighbor mailboxes.
//
// The exchanger realizes the communication scheme a distributed operator
// induces (the object CommScheme reasons about and DistCsr materializes as
// send/recv neighbor lists): one mailbox per directed (sender -> receiver)
// rank pair, guarded by a mutex/condvar. An exchange is two supersteps:
//
//   post_sends(p, x):  rank p packs its owned coefficients for every send
//                      neighbor and deposits them in the peer's mailbox;
//   drain_recvs(p, ghosts): rank p waits for every recv neighbor's deposit
//                      and scatters the payloads into its ghost section.
//
// Run under the threaded executor the deposits really race with the drains
// across threads; the condvar wait time is accumulated per receiving rank
// (the "halo wait" the observability layer reports). Under the sequential
// executor the same code runs with all sends completing before any drain.
// Either way every receiver observes identical payloads in identical order,
// which keeps threaded and sequential SpMV bit-identical.
#pragma once

#include <condition_variable>
#include <mutex>
#include <span>
#include <vector>

#include "dist/comm_stats.hpp"
#include "dist/dist_vector.hpp"
#include "dist/layout.hpp"

namespace fsaic {

/// One rank's halo neighborhood: the coefficients it sends per destination
/// and receives per source, both grouped by peer rank (ascending) with
/// globally-sorted coefficient ids — the layout DistCsr::distribute builds.
struct HaloPlan {
  struct Edge {
    rank_t peer = -1;
    std::vector<index_t> gids;  ///< global ids exchanged, sorted
  };
  std::vector<Edge> send;
  std::vector<Edge> recv;
};

class HaloExchanger {
 public:
  HaloExchanger(Layout layout, std::vector<HaloPlan> plans);

  HaloExchanger(const HaloExchanger&) = delete;
  HaloExchanger& operator=(const HaloExchanger&) = delete;

  [[nodiscard]] rank_t nranks() const { return layout_.nranks(); }
  [[nodiscard]] const HaloPlan& plan(rank_t p) const {
    return plans_[static_cast<std::size_t>(p)];
  }

  /// Superstep 1 of an exchange: deposit rank p's owned coefficients into
  /// every send neighbor's mailbox (the simulated wire transfer).
  void post_sends(rank_t p, const DistVector& x);

  /// Superstep 2: block until every recv neighbor of rank p has deposited,
  /// then scatter the payloads into `ghosts` (the concatenation of the recv
  /// edges, in plan order — exactly DistCsr's ghost column order). Records
  /// one halo message per neighbor into `stats` when non-null.
  void drain_recvs(rank_t p, std::span<value_t> ghosts, CommStats* stats);

  /// Accumulated condvar wait of each receiving rank, microseconds. Only
  /// meaningful between exchanges (not while one is in flight).
  [[nodiscard]] std::vector<double> wait_us_per_rank() const;

  /// Completed deposits across all mailboxes (diagnostics).
  [[nodiscard]] std::uint64_t deposits() const;

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::vector<value_t> payload;
    std::uint64_t posted = 0;  ///< deposits so far
    std::uint64_t taken = 0;   ///< drains so far (receiver-side)
  };

  Layout layout_;
  std::vector<HaloPlan> plans_;
  /// mailboxes_[p][e]: mailbox of rank p's e-th recv edge.
  std::vector<std::vector<Mailbox>> mailboxes_;
  /// send_slot_[p][e]: index into mailboxes_[peer] for rank p's e-th send
  /// edge (resolved once at construction).
  std::vector<std::vector<std::size_t>> send_slot_;
  /// Written only by the thread draining rank p, read between exchanges.
  std::vector<double> wait_us_;
};

}  // namespace fsaic
