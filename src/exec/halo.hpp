// Two-sided halo exchange over the simulated fabric.
//
// The exchanger realizes the communication scheme a distributed operator
// induces (the object CommScheme reasons about and DistCsr materializes as
// send/recv neighbor lists). An exchange is two phases:
//
//   post_sends(p, x):  rank p packs its owned coefficients for every send
//                      neighbor and hands them to the fabric;
//   drain_recvs(p, ghosts): rank p waits for every recv neighbor's payload
//                      and scatters it into its ghost section.
//
// Two realizations exist:
//
//   MailboxHaloExchanger — one mutex/condvar mailbox per directed (sender ->
//   receiver) rank pair: the flat point-to-point scheme. Run under the
//   threaded executor the deposits really race with the drains across
//   threads; under the sequential executor the same code runs with all sends
//   completing before any drain.
//
//   NodeAwareHaloExchanger — ranks grouped into NodeTopology nodes. On-node
//   edges keep their private mailboxes (the intra-node fabric); all payloads
//   crossing one ordered (source node, destination node) pair are funneled
//   through a staging buffer owned by the source node's leader and posted as
//   ONE coalesced wire message once the last on-node contributor has written
//   its segment ("last contributor closes"). Segment offsets are fixed at
//   construction, so the coalesced payload is byte-identical regardless of
//   which contributor arrives last — receivers always scatter identical
//   values in identical order, keeping node-aware SpMV bit-identical to the
//   flat exchange. This path also supports overlap: drains may run in the
//   same superstep as the posts (see Executor::parallel_ranks_phased),
//   because no post ever blocks.
//
// Either way every receiver observes identical payloads in identical order,
// which keeps threaded/sequential and flat/node-aware SpMV bit-identical.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "dist/comm_stats.hpp"
#include "dist/dist_vector.hpp"
#include "dist/layout.hpp"
#include "dist/node_topology.hpp"

namespace fsaic {

/// One rank's halo neighborhood: the coefficients it sends per destination
/// and receives per source, both grouped by peer rank (ascending) with
/// globally-sorted coefficient ids — the layout DistCsr::distribute builds.
struct HaloPlan {
  struct Edge {
    rank_t peer = -1;
    std::vector<index_t> gids;  ///< global ids exchanged, sorted
  };
  std::vector<Edge> send;
  std::vector<Edge> recv;
};

class HaloExchanger {
 public:
  HaloExchanger(Layout layout, std::vector<HaloPlan> plans, NodeTopology topo);
  virtual ~HaloExchanger() = default;

  HaloExchanger(const HaloExchanger&) = delete;
  HaloExchanger& operator=(const HaloExchanger&) = delete;

  [[nodiscard]] rank_t nranks() const { return layout_.nranks(); }
  [[nodiscard]] const HaloPlan& plan(rank_t p) const {
    return plans_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const NodeTopology& topology() const { return topo_; }

  /// Phase 1 of an exchange: hand rank p's owned coefficients to the fabric
  /// (mailbox deposits and/or leader staging writes). Never blocks.
  virtual void post_sends(rank_t p, const DistVector& x) = 0;

  /// Phase 2: block until every recv neighbor of rank p has delivered, then
  /// scatter the payloads into `ghosts` (the concatenation of the recv
  /// edges, in plan order — exactly DistCsr's ghost column order). Records
  /// the level-classified halo traffic into `stats` when non-null.
  virtual void drain_recvs(rank_t p, std::span<value_t> ghosts,
                           CommStats* stats) = 0;

  /// True when drains of an exchange may run in the same superstep as its
  /// posts (every post is non-blocking), enabling the interior/boundary
  /// compute overlap in DistCsr::spmv.
  [[nodiscard]] virtual bool overlap_capable() const { return false; }

  /// Wire messages one full halo update posts at `level`. The base
  /// implementation counts one message per recv edge (point-to-point);
  /// the node-aware exchanger counts one per inter-node channel.
  [[nodiscard]] virtual std::int64_t update_messages(CommLevel level) const;
  [[nodiscard]] std::int64_t update_messages() const {
    return update_messages(CommLevel::Intra) + update_messages(CommLevel::Inter);
  }

  /// Completed deliveries across the fabric (diagnostics).
  [[nodiscard]] virtual std::uint64_t deposits() const = 0;

  /// Accumulated blocking wait of each receiving rank, microseconds. Only
  /// meaningful between exchanges (not while one is in flight).
  [[nodiscard]] std::vector<double> wait_us_per_rank() const;

 protected:
  /// Mutex/condvar mailbox of one directed rank pair.
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::vector<value_t> payload;
    std::uint64_t posted = 0;  ///< deposits so far
    std::uint64_t taken = 0;   ///< drains so far (receiver-side)
  };

  void add_wait_us(rank_t p, double us) {
    wait_us_[static_cast<std::size_t>(p)] += us;
  }

  /// Lock the box, pack the edge's owned coefficients, publish the deposit.
  static void deposit_to_mailbox(const HaloPlan::Edge& edge,
                                 std::span<const value_t> owned, index_t first,
                                 Mailbox& box);

  Layout layout_;
  std::vector<HaloPlan> plans_;
  NodeTopology topo_;

 private:
  /// Written only by the thread draining rank p, read between exchanges.
  std::vector<double> wait_us_;
};

/// Flat point-to-point exchange: one mailbox per directed rank pair. The
/// topology only classifies CommStats per level; with the trivial topology
/// everything is inter-node (the historic accounting).
class MailboxHaloExchanger final : public HaloExchanger {
 public:
  MailboxHaloExchanger(Layout layout, std::vector<HaloPlan> plans,
                       NodeTopology topo);

  void post_sends(rank_t p, const DistVector& x) override;
  void drain_recvs(rank_t p, std::span<value_t> ghosts,
                   CommStats* stats) override;
  [[nodiscard]] std::uint64_t deposits() const override;

 private:
  /// mailboxes_[p][e]: mailbox of rank p's e-th recv edge.
  std::vector<std::vector<Mailbox>> mailboxes_;
  /// send_slot_[p][e]: index into mailboxes_[peer] for rank p's e-th send
  /// edge (resolved once at construction).
  std::vector<std::vector<std::size_t>> send_slot_;
};

/// Leader-aggregating two-level exchange (see the file comment).
class NodeAwareHaloExchanger final : public HaloExchanger {
 public:
  NodeAwareHaloExchanger(Layout layout, std::vector<HaloPlan> plans,
                         NodeTopology topo);

  void post_sends(rank_t p, const DistVector& x) override;
  void drain_recvs(rank_t p, std::span<value_t> ghosts,
                   CommStats* stats) override;
  [[nodiscard]] bool overlap_capable() const override { return true; }
  [[nodiscard]] std::int64_t update_messages(CommLevel level) const override;
  [[nodiscard]] std::uint64_t deposits() const override;

  /// Number of inter-node channels (= coalesced messages per exchange).
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }

 private:
  /// Staging buffer of one ordered (source node, destination node) pair:
  /// the coalesced message the source node's leader posts on the wire.
  /// Segment offsets are fixed at construction in ascending (src, dst)
  /// order, so the payload is deterministic regardless of contributor
  /// arrival order. The last on-node contributor "closes" the message
  /// (increments `posted`); receivers wait for the close, then read their
  /// segments — the mutex handshake orders every contributor's slice
  /// writes before every reader's reads.
  struct InterChannel {
    rank_t src_node = -1;
    rank_t dst_node = -1;
    std::size_t total = 0;     ///< coefficients in the coalesced payload
    int ncontrib = 0;          ///< distinct source ranks funneling through
    rank_t recorder_dst = -1;  ///< rank whose drain records the wire message
    std::vector<value_t> payload;
    std::mutex mutex;
    std::condition_variable cv;
    int contributions = 0;   ///< source ranks done this exchange
    std::uint64_t posted = 0;  ///< closed (forwarded) exchanges
  };

  /// Where one edge's coefficients live inside a channel payload
  /// (channel < 0: the edge is intra-node and uses a mailbox instead).
  struct SegmentRef {
    int channel = -1;
    std::size_t offset = 0;
  };

  // Intra-node edges reuse the mailbox machinery.
  std::vector<std::vector<Mailbox>> intra_boxes_;
  std::vector<std::vector<std::size_t>> send_slot_;

  std::vector<std::unique_ptr<InterChannel>> channels_;
  /// Per rank, per send edge: the channel segment it writes.
  std::vector<std::vector<SegmentRef>> src_segment_;
  /// Per rank: sorted unique channels the rank contributes to (one
  /// contribution handshake per channel per exchange).
  std::vector<std::vector<int>> src_channels_;
  /// Per rank, per recv edge: the channel segment it reads.
  std::vector<std::vector<SegmentRef>> dst_segment_;
  /// Per rank, per recv edge: does this drain record the channel's wire
  /// message? (True on the first recv edge of the channel's recorder rank,
  /// so the merged stats are deterministic.)
  std::vector<std::vector<bool>> records_wire_;
  /// Per rank: completed exchanges (written only by the draining thread).
  std::vector<std::uint64_t> exchanges_;
};

/// Exchanger realizing `config` over the given plans: flat mailboxes or the
/// node-aware leader aggregation.
[[nodiscard]] std::shared_ptr<HaloExchanger> make_halo_exchanger(
    const Layout& layout, std::vector<HaloPlan> plans, const CommConfig& config);

}  // namespace fsaic
