#include "exec/halo.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/error.hpp"

namespace fsaic {

namespace {

using clock = std::chrono::steady_clock;

/// Resolve, for every send edge, the index of the matching recv edge on the
/// peer — validating the mirror symmetry DistCsr::distribute guarantees.
std::vector<std::vector<std::size_t>> resolve_send_slots(
    const std::vector<HaloPlan>& plans) {
  std::vector<std::vector<std::size_t>> slots(plans.size());
  for (std::size_t p = 0; p < plans.size(); ++p) {
    slots[p].reserve(plans[p].send.size());
    for (const auto& edge : plans[p].send) {
      const auto& peer_recv = plans[static_cast<std::size_t>(edge.peer)].recv;
      std::size_t slot = peer_recv.size();
      for (std::size_t e = 0; e < peer_recv.size(); ++e) {
        if (peer_recv[e].peer == static_cast<rank_t>(p)) {
          slot = e;
          break;
        }
      }
      FSAIC_REQUIRE(slot < peer_recv.size(),
                    "send edge without matching recv edge on the peer");
      FSAIC_REQUIRE(peer_recv[slot].gids == edge.gids,
                    "send/recv edge coefficient lists must mirror each other");
      slots[p].push_back(slot);
    }
  }
  return slots;
}

}  // namespace

void HaloExchanger::deposit_to_mailbox(const HaloPlan::Edge& edge,
                                       std::span<const value_t> owned,
                                       index_t first, Mailbox& box) {
  const std::lock_guard<std::mutex> lock(box.mutex);
  FSAIC_CHECK(box.posted == box.taken,
              "halo mailbox already holds an undrained deposit");
  box.payload.resize(edge.gids.size());
  for (std::size_t k = 0; k < edge.gids.size(); ++k) {
    box.payload[k] = owned[static_cast<std::size_t>(edge.gids[k] - first)];
  }
  ++box.posted;
  box.cv.notify_one();
}

HaloExchanger::HaloExchanger(Layout layout, std::vector<HaloPlan> plans,
                             NodeTopology topo)
    : layout_(std::move(layout)), plans_(std::move(plans)),
      topo_(std::move(topo)) {
  const auto n = static_cast<std::size_t>(layout_.nranks());
  FSAIC_REQUIRE(plans_.size() == n, "one halo plan per rank");
  FSAIC_REQUIRE(topo_.nranks() == layout_.nranks(),
                "topology rank count must match the layout");
  wait_us_.assign(n, 0.0);
}

std::int64_t HaloExchanger::update_messages(CommLevel level) const {
  std::int64_t messages = 0;
  for (std::size_t p = 0; p < plans_.size(); ++p) {
    for (const auto& edge : plans_[p].recv) {
      if (topo_.level_of(edge.peer, static_cast<rank_t>(p)) == level) {
        ++messages;
      }
    }
  }
  return messages;
}

std::vector<double> HaloExchanger::wait_us_per_rank() const { return wait_us_; }

// ---- MailboxHaloExchanger ----------------------------------------------

MailboxHaloExchanger::MailboxHaloExchanger(Layout layout,
                                           std::vector<HaloPlan> plans,
                                           NodeTopology topo)
    : HaloExchanger(std::move(layout), std::move(plans), std::move(topo)) {
  const auto n = plans_.size();
  mailboxes_.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    mailboxes_[p] = std::vector<Mailbox>(plans_[p].recv.size());
  }
  send_slot_ = resolve_send_slots(plans_);
}

void MailboxHaloExchanger::post_sends(rank_t p, const DistVector& x) {
  const auto& plan = plans_[static_cast<std::size_t>(p)];
  const auto owned = x.block(p);
  const index_t first = layout_.begin(p);
  for (std::size_t e = 0; e < plan.send.size(); ++e) {
    const auto& edge = plan.send[e];
    Mailbox& box = mailboxes_[static_cast<std::size_t>(edge.peer)]
                             [send_slot_[static_cast<std::size_t>(p)][e]];
    deposit_to_mailbox(edge, owned, first, box);
  }
}

void MailboxHaloExchanger::drain_recvs(rank_t p, std::span<value_t> ghosts,
                                       CommStats* stats) {
  const auto& plan = plans_[static_cast<std::size_t>(p)];
  std::size_t slot = 0;
  for (std::size_t e = 0; e < plan.recv.size(); ++e) {
    const auto& edge = plan.recv[e];
    Mailbox& box = mailboxes_[static_cast<std::size_t>(p)][e];
    std::unique_lock<std::mutex> lock(box.mutex);
    if (box.posted == box.taken) {
      const auto t0 = clock::now();
      box.cv.wait(lock, [&] { return box.posted > box.taken; });
      add_wait_us(p, std::chrono::duration<double, std::micro>(clock::now() - t0)
                         .count());
    }
    FSAIC_CHECK(box.payload.size() == edge.gids.size(),
                "halo payload size does not match the recv edge");
    FSAIC_CHECK(slot + edge.gids.size() <= ghosts.size(),
                "ghost section too small for the halo plan");
    for (std::size_t k = 0; k < edge.gids.size(); ++k) {
      ghosts[slot++] = box.payload[k];
    }
    ++box.taken;
    if (stats != nullptr) {
      stats->record_halo_message(
          edge.peer, p,
          static_cast<std::int64_t>(edge.gids.size() * sizeof(value_t)),
          topo_.level_of(edge.peer, p));
    }
  }
  FSAIC_CHECK(slot == ghosts.size(), "halo plan did not fill the ghost section");
}

std::uint64_t MailboxHaloExchanger::deposits() const {
  std::uint64_t total = 0;
  for (const auto& boxes : mailboxes_) {
    for (const auto& box : boxes) {
      // taken == posted between exchanges; either is "completed deposits".
      const std::lock_guard<std::mutex> lock(box.mutex);
      total += box.posted;
    }
  }
  return total;
}

// ---- NodeAwareHaloExchanger --------------------------------------------

NodeAwareHaloExchanger::NodeAwareHaloExchanger(Layout layout,
                                               std::vector<HaloPlan> plans,
                                               NodeTopology topo)
    : HaloExchanger(std::move(layout), std::move(plans), std::move(topo)) {
  const auto n = plans_.size();
  intra_boxes_.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    // Intra edges use their recv-edge slot like the flat exchanger; the
    // inter slots stay idle (their data rides a channel instead).
    intra_boxes_[p] = std::vector<Mailbox>(plans_[p].recv.size());
  }
  send_slot_ = resolve_send_slots(plans_);

  // Enumerate the ordered (source node, destination node) channels in
  // ascending order so channel ids — and therefore wire-message accounting —
  // are deterministic.
  std::map<std::pair<rank_t, rank_t>, int> channel_of;
  for (std::size_t p = 0; p < n; ++p) {
    for (const auto& edge : plans_[p].recv) {
      if (!topo_.same_node(edge.peer, static_cast<rank_t>(p))) {
        channel_of.try_emplace(
            {topo_.node_of(edge.peer), topo_.node_of(static_cast<rank_t>(p))},
            0);
      }
    }
  }
  channels_.reserve(channel_of.size());
  for (auto& [key, idx] : channel_of) {
    idx = static_cast<int>(channels_.size());
    auto ch = std::make_unique<InterChannel>();
    ch->src_node = key.first;
    ch->dst_node = key.second;
    channels_.push_back(std::move(ch));
  }

  // Assign segment offsets in ascending (src, dst) edge order: iterating
  // source ranks ascending and each rank's send edges ascending-by-peer
  // visits the cross-node edges of every channel in that order.
  src_segment_.resize(n);
  src_channels_.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    const auto& plan = plans_[p];
    src_segment_[p].resize(plan.send.size());
    for (std::size_t e = 0; e < plan.send.size(); ++e) {
      const auto& edge = plan.send[e];
      if (topo_.same_node(static_cast<rank_t>(p), edge.peer)) continue;
      const int c = channel_of.at(
          {topo_.node_of(static_cast<rank_t>(p)), topo_.node_of(edge.peer)});
      InterChannel& ch = *channels_[static_cast<std::size_t>(c)];
      src_segment_[p][e] = {c, ch.total};
      ch.total += edge.gids.size();
      if (src_channels_[p].empty() || src_channels_[p].back() != c) {
        src_channels_[p].push_back(c);
        ++ch.ncontrib;
      }
    }
    // A rank's send edges are sorted by peer, so its edges into one channel
    // (consecutive peers on one node) are contiguous — but a channel can
    // recur non-contiguously only if peers interleave across nodes, which
    // ascending peer order forbids for contiguous node grouping. Guard it:
    std::vector<int> sorted = src_channels_[p];
    std::sort(sorted.begin(), sorted.end());
    FSAIC_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                      sorted.end(),
                  "send edges of one channel must be contiguous");
  }
  for (auto& ch : channels_) {
    ch->payload.assign(ch->total, 0.0);
  }

  // Destination-side segment refs and the deterministic wire recorder: the
  // smallest destination rank of each channel records its message, on its
  // first recv edge belonging to the channel.
  dst_segment_.resize(n);
  records_wire_.resize(n);
  exchanges_.assign(n, 0);
  std::map<std::pair<rank_t, rank_t>, std::size_t> seg_offset;
  for (std::size_t p = 0; p < n; ++p) {
    const auto& plan = plans_[p];
    for (std::size_t e = 0; e < plan.send.size(); ++e) {
      if (src_segment_[p][e].channel >= 0) {
        seg_offset[{static_cast<rank_t>(p), plan.send[e].peer}] =
            src_segment_[p][e].offset;
      }
    }
  }
  for (std::size_t p = 0; p < n; ++p) {
    const auto& plan = plans_[p];
    dst_segment_[p].resize(plan.recv.size());
    records_wire_[p].assign(plan.recv.size(), false);
    for (std::size_t e = 0; e < plan.recv.size(); ++e) {
      const auto& edge = plan.recv[e];
      if (topo_.same_node(edge.peer, static_cast<rank_t>(p))) continue;
      const int c = channel_of.at(
          {topo_.node_of(edge.peer), topo_.node_of(static_cast<rank_t>(p))});
      dst_segment_[p][e] = {c, seg_offset.at({edge.peer,
                                              static_cast<rank_t>(p)})};
      InterChannel& ch = *channels_[static_cast<std::size_t>(c)];
      if (ch.recorder_dst < 0) ch.recorder_dst = static_cast<rank_t>(p);
      // Ranks are visited ascending, so the first dst seen is the smallest.
    }
  }
  for (std::size_t p = 0; p < n; ++p) {
    std::vector<bool> seen(channels_.size(), false);
    const auto& plan = plans_[p];
    for (std::size_t e = 0; e < plan.recv.size(); ++e) {
      const int c = dst_segment_[p][e].channel;
      if (c < 0 || topo_.same_node(plan.recv[e].peer, static_cast<rank_t>(p)))
        continue;
      if (!seen[static_cast<std::size_t>(c)] &&
          channels_[static_cast<std::size_t>(c)]->recorder_dst ==
              static_cast<rank_t>(p)) {
        records_wire_[p][e] = true;
      }
      seen[static_cast<std::size_t>(c)] = true;
    }
  }
}

void NodeAwareHaloExchanger::post_sends(rank_t p, const DistVector& x) {
  const auto& plan = plans_[static_cast<std::size_t>(p)];
  const auto owned = x.block(p);
  const index_t first = layout_.begin(p);
  // Write every cross-node segment first (disjoint slices; ordered against
  // the readers by the contribution handshake below), depositing intra
  // edges into their mailboxes along the way.
  for (std::size_t e = 0; e < plan.send.size(); ++e) {
    const auto& edge = plan.send[e];
    const SegmentRef seg = src_segment_[static_cast<std::size_t>(p)][e];
    if (seg.channel < 0) {
      Mailbox& box = intra_boxes_[static_cast<std::size_t>(edge.peer)]
                                 [send_slot_[static_cast<std::size_t>(p)][e]];
      deposit_to_mailbox(edge, owned, first, box);
      continue;
    }
    InterChannel& ch = *channels_[static_cast<std::size_t>(seg.channel)];
    for (std::size_t k = 0; k < edge.gids.size(); ++k) {
      ch.payload[seg.offset + k] =
          owned[static_cast<std::size_t>(edge.gids[k] - first)];
    }
  }
  // One contribution per channel per exchange; the last contributor closes
  // the coalesced message (the leader's wire send) and wakes the readers.
  for (const int c : src_channels_[static_cast<std::size_t>(p)]) {
    InterChannel& ch = *channels_[static_cast<std::size_t>(c)];
    const std::lock_guard<std::mutex> lock(ch.mutex);
    if (++ch.contributions == ch.ncontrib) {
      ch.contributions = 0;
      ++ch.posted;
      ch.cv.notify_all();
    }
  }
}

void NodeAwareHaloExchanger::drain_recvs(rank_t p, std::span<value_t> ghosts,
                                         CommStats* stats) {
  const auto& plan = plans_[static_cast<std::size_t>(p)];
  const std::uint64_t exchange = exchanges_[static_cast<std::size_t>(p)];
  std::size_t slot = 0;
  for (std::size_t e = 0; e < plan.recv.size(); ++e) {
    const auto& edge = plan.recv[e];
    const auto bytes =
        static_cast<std::int64_t>(edge.gids.size() * sizeof(value_t));
    FSAIC_CHECK(slot + edge.gids.size() <= ghosts.size(),
                "ghost section too small for the halo plan");
    const SegmentRef seg = dst_segment_[static_cast<std::size_t>(p)][e];
    if (seg.channel < 0) {
      Mailbox& box = intra_boxes_[static_cast<std::size_t>(p)][e];
      std::unique_lock<std::mutex> lock(box.mutex);
      if (box.posted == box.taken) {
        const auto t0 = clock::now();
        box.cv.wait(lock, [&] { return box.posted > box.taken; });
        add_wait_us(
            p, std::chrono::duration<double, std::micro>(clock::now() - t0)
                   .count());
      }
      FSAIC_CHECK(box.payload.size() == edge.gids.size(),
                  "halo payload size does not match the recv edge");
      for (std::size_t k = 0; k < edge.gids.size(); ++k) {
        ghosts[slot++] = box.payload[k];
      }
      ++box.taken;
      if (stats != nullptr) {
        stats->record_halo_message(edge.peer, p, bytes, CommLevel::Intra);
      }
      continue;
    }
    InterChannel& ch = *channels_[static_cast<std::size_t>(seg.channel)];
    {
      std::unique_lock<std::mutex> lock(ch.mutex);
      if (ch.posted <= exchange) {
        const auto t0 = clock::now();
        ch.cv.wait(lock, [&] { return ch.posted > exchange; });
        add_wait_us(
            p, std::chrono::duration<double, std::micro>(clock::now() - t0)
                   .count());
      }
      // Copy under the lock: the handshake already ordered every
      // contributor's writes before this read; the lock keeps the access
      // pattern trivially race-free for the analyzer too.
      for (std::size_t k = 0; k < edge.gids.size(); ++k) {
        ghosts[slot++] = ch.payload[seg.offset + k];
      }
    }
    if (stats != nullptr) {
      stats->record_halo_payload(edge.peer, p, bytes, CommLevel::Inter);
      if (records_wire_[static_cast<std::size_t>(p)][e]) {
        stats->record_halo_wire(CommLevel::Inter);
      }
    }
  }
  FSAIC_CHECK(slot == ghosts.size(), "halo plan did not fill the ghost section");
  ++exchanges_[static_cast<std::size_t>(p)];
}

std::int64_t NodeAwareHaloExchanger::update_messages(CommLevel level) const {
  if (level == CommLevel::Inter) {
    return static_cast<std::int64_t>(channels_.size());
  }
  return HaloExchanger::update_messages(CommLevel::Intra);
}

std::uint64_t NodeAwareHaloExchanger::deposits() const {
  std::uint64_t total = 0;
  for (const auto& boxes : intra_boxes_) {
    for (const auto& box : boxes) {
      const std::lock_guard<std::mutex> lock(box.mutex);
      total += box.posted;
    }
  }
  for (const auto& ch : channels_) {
    const std::lock_guard<std::mutex> lock(ch->mutex);
    total += ch->posted;
  }
  return total;
}

std::shared_ptr<HaloExchanger> make_halo_exchanger(const Layout& layout,
                                                   std::vector<HaloPlan> plans,
                                                   const CommConfig& config) {
  NodeTopology topo = config.topology(layout.nranks());
  if (config.mode == CommMode::NodeAware) {
    return std::make_shared<NodeAwareHaloExchanger>(layout, std::move(plans),
                                                    std::move(topo));
  }
  return std::make_shared<MailboxHaloExchanger>(layout, std::move(plans),
                                                std::move(topo));
}

}  // namespace fsaic
