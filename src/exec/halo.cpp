#include "exec/halo.hpp"

#include <chrono>

#include "common/error.hpp"

namespace fsaic {

HaloExchanger::HaloExchanger(Layout layout, std::vector<HaloPlan> plans)
    : layout_(std::move(layout)), plans_(std::move(plans)) {
  const auto n = static_cast<std::size_t>(layout_.nranks());
  FSAIC_REQUIRE(plans_.size() == n, "one halo plan per rank");
  mailboxes_.resize(n);
  send_slot_.resize(n);
  wait_us_.assign(n, 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    mailboxes_[p] = std::vector<Mailbox>(plans_[p].recv.size());
  }
  for (std::size_t p = 0; p < n; ++p) {
    send_slot_[p].reserve(plans_[p].send.size());
    for (const auto& edge : plans_[p].send) {
      const auto& peer_recv = plans_[static_cast<std::size_t>(edge.peer)].recv;
      std::size_t slot = peer_recv.size();
      for (std::size_t e = 0; e < peer_recv.size(); ++e) {
        if (peer_recv[e].peer == static_cast<rank_t>(p)) {
          slot = e;
          break;
        }
      }
      FSAIC_REQUIRE(slot < peer_recv.size(),
                    "send edge without matching recv edge on the peer");
      FSAIC_REQUIRE(peer_recv[slot].gids == edge.gids,
                    "send/recv edge coefficient lists must mirror each other");
      send_slot_[p].push_back(slot);
    }
  }
}

void HaloExchanger::post_sends(rank_t p, const DistVector& x) {
  const auto& plan = plans_[static_cast<std::size_t>(p)];
  const auto owned = x.block(p);
  const index_t first = layout_.begin(p);
  for (std::size_t e = 0; e < plan.send.size(); ++e) {
    const auto& edge = plan.send[e];
    Mailbox& box = mailboxes_[static_cast<std::size_t>(edge.peer)]
                             [send_slot_[static_cast<std::size_t>(p)][e]];
    const std::lock_guard<std::mutex> lock(box.mutex);
    FSAIC_CHECK(box.posted == box.taken,
                "halo mailbox already holds an undrained deposit");
    box.payload.resize(edge.gids.size());
    for (std::size_t k = 0; k < edge.gids.size(); ++k) {
      box.payload[k] = owned[static_cast<std::size_t>(edge.gids[k] - first)];
    }
    ++box.posted;
    box.cv.notify_one();
  }
}

void HaloExchanger::drain_recvs(rank_t p, std::span<value_t> ghosts,
                                CommStats* stats) {
  using clock = std::chrono::steady_clock;
  const auto& plan = plans_[static_cast<std::size_t>(p)];
  std::size_t slot = 0;
  for (std::size_t e = 0; e < plan.recv.size(); ++e) {
    const auto& edge = plan.recv[e];
    Mailbox& box = mailboxes_[static_cast<std::size_t>(p)][e];
    std::unique_lock<std::mutex> lock(box.mutex);
    if (box.posted == box.taken) {
      const auto t0 = clock::now();
      box.cv.wait(lock, [&] { return box.posted > box.taken; });
      wait_us_[static_cast<std::size_t>(p)] +=
          std::chrono::duration<double, std::micro>(clock::now() - t0).count();
    }
    FSAIC_CHECK(box.payload.size() == edge.gids.size(),
                "halo payload size does not match the recv edge");
    FSAIC_CHECK(slot + edge.gids.size() <= ghosts.size(),
                "ghost section too small for the halo plan");
    for (std::size_t k = 0; k < edge.gids.size(); ++k) {
      ghosts[slot++] = box.payload[k];
    }
    ++box.taken;
    if (stats != nullptr) {
      stats->record_halo_message(
          edge.peer, p,
          static_cast<std::int64_t>(edge.gids.size() * sizeof(value_t)));
    }
  }
  FSAIC_CHECK(slot == ghosts.size(), "halo plan did not fill the ghost section");
}

std::vector<double> HaloExchanger::wait_us_per_rank() const { return wait_us_; }

std::uint64_t HaloExchanger::deposits() const {
  std::uint64_t total = 0;
  for (const auto& boxes : mailboxes_) {
    for (const auto& box : boxes) {
      // taken == posted between exchanges; either is "completed deposits".
      const std::lock_guard<std::mutex> lock(box.mutex);
      total += box.posted;
    }
  }
  return total;
}

}  // namespace fsaic
