// Matrix structure and conditioning diagnostics, used by the suite report,
// examples and tests.
#pragma once

#include "sparse/csr.hpp"

namespace fsaic {

struct MatrixStats {
  index_t rows = 0;
  offset_t nnz = 0;
  index_t min_row_nnz = 0;
  index_t max_row_nnz = 0;
  double avg_row_nnz = 0.0;
  index_t bandwidth = 0;
  /// Fraction of rows that are strictly diagonally dominant.
  double diagonally_dominant_fraction = 0.0;
  /// min_i a_ii / max_i a_ii (diagonal spread; crude conditioning proxy).
  double diagonal_ratio = 0.0;
  bool symmetric = false;
};

[[nodiscard]] MatrixStats compute_matrix_stats(const CsrMatrix& a);

/// Crude largest-eigenvalue estimate by `iterations` of the power method
/// (deterministic start vector). For SPD matrices this approximates
/// lambda_max; together with a smallest-eigenvalue estimate from inverse
/// power/Lanczos it would bound the condition number — here it feeds tests
/// and the suite report only.
[[nodiscard]] value_t estimate_lambda_max(const CsrMatrix& a, int iterations = 50);

/// Condition-number estimate for SPD matrices via a short Lanczos run:
/// returns lambda_max / lambda_min of the tridiagonal Rayleigh quotient.
/// Accurate to a few percent for the extreme eigenvalues after ~50 steps on
/// the suite's matrices; used for diagnostics, never inside solvers.
[[nodiscard]] value_t estimate_condition_number(const CsrMatrix& a,
                                                int lanczos_steps = 60);

}  // namespace fsaic
