// Sparse matrix kernels and transformations: SpMV, transpose, thresholding,
// symmetric permutation. These operate on whole (undistributed) matrices;
// dist/ provides the rank-partitioned variants.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace fsaic {

/// y = A * x (OpenMP-parallel over rows).
void spmv(const CsrMatrix& a, std::span<const value_t> x, std::span<value_t> y);

/// y = A^T * x (scatter formulation, serial).
void spmv_transpose(const CsrMatrix& a, std::span<const value_t> x,
                    std::span<value_t> y);

/// Explicit transpose.
[[nodiscard]] CsrMatrix transpose(const CsrMatrix& a);

/// Thresholding step of Algorithm 1: Ã keeps a_ij with
/// |a_ij| >= tau * sqrt(|a_ii * a_jj|), plus all diagonal entries. tau == 0
/// keeps everything except explicit zeros. The scale-independent diagonal
/// comparison follows Chow (2001).
[[nodiscard]] CsrMatrix threshold(const CsrMatrix& a, value_t tau);

/// Restriction of a to a sub-pattern p (entries of a outside p are dropped;
/// entries of p missing in a become explicit zeros).
[[nodiscard]] CsrMatrix restrict_to_pattern(const CsrMatrix& a,
                                            const SparsityPattern& p);

/// B = P A P^T for the permutation new_index[old] = perm[old]: entry (i, j)
/// of A lands at (perm[i], perm[j]). Used to renumber rows so each rank owns
/// a contiguous range.
[[nodiscard]] CsrMatrix permute_symmetric(const CsrMatrix& a,
                                          std::span<const index_t> perm);

/// Lower-triangular part (col <= row) of a, keeping values.
[[nodiscard]] CsrMatrix lower_triangle(const CsrMatrix& a);

/// C = A * B (Gustavson's algorithm).
[[nodiscard]] CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b);

/// Frobenius norm of (I - C) for a square matrix C; used by FSAI quality
/// tests on ||I - G L||_F-style diagnostics.
[[nodiscard]] value_t identity_residual_fro(const CsrMatrix& c);

}  // namespace fsaic
