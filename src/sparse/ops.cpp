#include "sparse/ops.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/coo.hpp"

namespace fsaic {

void spmv(const CsrMatrix& a, std::span<const value_t> x, std::span<value_t> y) {
  FSAIC_REQUIRE(x.size() == static_cast<std::size_t>(a.cols()), "x size mismatch");
  FSAIC_REQUIRE(y.size() == static_cast<std::size_t>(a.rows()), "y size mismatch");
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  const index_t n = a.rows();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    value_t sum = 0.0;
    const auto b = row_ptr[static_cast<std::size_t>(i)];
    const auto e = row_ptr[static_cast<std::size_t>(i) + 1];
    for (offset_t k = b; k < e; ++k) {
      sum += values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
}

void spmv_transpose(const CsrMatrix& a, std::span<const value_t> x,
                    std::span<value_t> y) {
  FSAIC_REQUIRE(x.size() == static_cast<std::size_t>(a.rows()), "x size mismatch");
  FSAIC_REQUIRE(y.size() == static_cast<std::size_t>(a.cols()), "y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  for (index_t i = 0; i < a.rows(); ++i) {
    const value_t xi = x[static_cast<std::size_t>(i)];
    const auto b = row_ptr[static_cast<std::size_t>(i)];
    const auto e = row_ptr[static_cast<std::size_t>(i) + 1];
    for (offset_t k = b; k < e; ++k) {
      y[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])] +=
          values[static_cast<std::size_t>(k)] * xi;
    }
  }
}

CsrMatrix transpose(const CsrMatrix& a) {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(a.cols()) + 1, 0);
  for (index_t j : a.col_idx()) {
    ++row_ptr[static_cast<std::size_t>(j) + 1];
  }
  for (index_t j = 0; j < a.cols(); ++j) {
    row_ptr[static_cast<std::size_t>(j) + 1] += row_ptr[static_cast<std::size_t>(j)];
  }
  std::vector<index_t> col_idx(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> values(static_cast<std::size_t>(a.nnz()));
  std::vector<offset_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols_i = a.row_cols(i);
    const auto vals_i = a.row_vals(i);
    for (std::size_t k = 0; k < cols_i.size(); ++k) {
      const auto pos = static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(cols_i[k])]++);
      col_idx[pos] = i;
      values[pos] = vals_i[k];
    }
  }
  return CsrMatrix(a.cols(), a.rows(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix threshold(const CsrMatrix& a, value_t tau) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "threshold requires a square matrix");
  FSAIC_REQUIRE(tau >= 0.0, "threshold must be non-negative");
  const auto diag = a.diagonal();
  CooBuilder out(a.rows(), a.cols());
  out.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols_i = a.row_cols(i);
    const auto vals_i = a.row_vals(i);
    for (std::size_t k = 0; k < cols_i.size(); ++k) {
      const index_t j = cols_i[k];
      const value_t v = vals_i[k];
      if (v == 0.0) continue;
      if (i == j) {
        out.add(i, j, v);
        continue;
      }
      const value_t scale = std::sqrt(std::abs(diag[static_cast<std::size_t>(i)] *
                                               diag[static_cast<std::size_t>(j)]));
      if (std::abs(v) >= tau * scale) out.add(i, j, v);
    }
  }
  return out.to_csr();
}

CsrMatrix restrict_to_pattern(const CsrMatrix& a, const SparsityPattern& p) {
  FSAIC_REQUIRE(a.rows() == p.rows() && a.cols() == p.cols(),
                "pattern shape mismatch");
  CsrMatrix out{p};
  for (index_t i = 0; i < p.rows(); ++i) {
    auto vals = out.row_vals(i);
    const auto cols = p.row(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      vals[k] = a.at(i, cols[k]);
    }
  }
  return out;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const index_t> perm) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "symmetric permutation requires square");
  FSAIC_REQUIRE(perm.size() == static_cast<std::size_t>(a.rows()),
                "permutation size mismatch");
  CooBuilder out(a.rows(), a.cols());
  out.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols_i = a.row_cols(i);
    const auto vals_i = a.row_vals(i);
    const index_t pi = perm[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < cols_i.size(); ++k) {
      out.add(pi, perm[static_cast<std::size_t>(cols_i[k])], vals_i[k]);
    }
  }
  return out.to_csr();
}

CsrMatrix lower_triangle(const CsrMatrix& a) {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<value_t> values;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols_i = a.row_cols(i);
    const auto vals_i = a.row_vals(i);
    for (std::size_t k = 0; k < cols_i.size(); ++k) {
      if (cols_i[k] <= i) {
        col_idx.push_back(cols_i[k]);
        values.push_back(vals_i[k]);
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(col_idx.size());
  }
  return CsrMatrix(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b) {
  FSAIC_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<value_t> values;
  std::vector<index_t> marker(static_cast<std::size_t>(b.cols()), -1);
  std::vector<value_t> accum(static_cast<std::size_t>(b.cols()), 0.0);
  std::vector<index_t> row_cols;
  for (index_t i = 0; i < a.rows(); ++i) {
    row_cols.clear();
    const auto a_cols = a.row_cols(i);
    const auto a_vals = a.row_vals(i);
    for (std::size_t ka = 0; ka < a_cols.size(); ++ka) {
      const index_t k = a_cols[ka];
      const value_t av = a_vals[ka];
      const auto b_cols = b.row_cols(k);
      const auto b_vals = b.row_vals(k);
      for (std::size_t kb = 0; kb < b_cols.size(); ++kb) {
        const index_t j = b_cols[kb];
        if (marker[static_cast<std::size_t>(j)] != i) {
          marker[static_cast<std::size_t>(j)] = i;
          accum[static_cast<std::size_t>(j)] = 0.0;
          row_cols.push_back(j);
        }
        accum[static_cast<std::size_t>(j)] += av * b_vals[kb];
      }
    }
    std::sort(row_cols.begin(), row_cols.end());
    for (index_t j : row_cols) {
      col_idx.push_back(j);
      values.push_back(accum[static_cast<std::size_t>(j)]);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(col_idx.size());
  }
  return CsrMatrix(a.rows(), b.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

value_t identity_residual_fro(const CsrMatrix& c) {
  FSAIC_REQUIRE(c.rows() == c.cols(), "identity residual requires square");
  value_t sum = 0.0;
  std::vector<bool> diag_seen(static_cast<std::size_t>(c.rows()), false);
  for (index_t i = 0; i < c.rows(); ++i) {
    const auto cols_i = c.row_cols(i);
    const auto vals_i = c.row_vals(i);
    for (std::size_t k = 0; k < cols_i.size(); ++k) {
      const value_t target = (cols_i[k] == i) ? 1.0 : 0.0;
      if (cols_i[k] == i) diag_seen[static_cast<std::size_t>(i)] = true;
      const value_t d = vals_i[k] - target;
      sum += d * d;
    }
  }
  for (index_t i = 0; i < c.rows(); ++i) {
    if (!diag_seen[static_cast<std::size_t>(i)]) sum += 1.0;  // missing diag → (0-1)^2
  }
  return std::sqrt(sum);
}

}  // namespace fsaic
