// SELL-C-sigma: the SIMD-friendly sparse format (Kreutzer et al. 2014).
//
// Rows are sorted by length within windows of sigma rows, grouped into
// chunks of C rows, and each chunk is stored column-major padded to its
// longest row — so a SIMD lane processes one row and the value/index loads
// are unit-stride. The paper's cache analysis targets CSR (what its code
// uses); this format backs the `--format sell` solve path and documents
// that the FSAIE extension's benefit — fewer x-line fetches — is format-
// independent: the x-gather locality is a property of the *pattern*, not of
// the storage of the matrix entries.
//
// A SellMatrix can be built over a subset of the source rows (the
// interior/boundary split of the overlap-capable distributed SpMV): output
// entries keep the source row numbering, rows outside the subset are left
// untouched by spmv — exactly the contract of the scalar row-subset kernel
// it replaces.
//
// Bit-exactness: each SIMD lane accumulates one row's products in ascending
// column order from 0.0, the same order as the scalar CSR kernel; padding
// slots contribute `0.0 * x[0]` (exact under IEEE addition for finite sums).
// The double-precision spmv therefore reproduces the CSR reference to the
// last bit, which is what lets the solvers swap formats without perturbing
// residual histories.
//
// Transpose note: `spmv_transpose` is provided for completeness (and the
// bench/tests), but its scatter order follows the chunk layout, so y is NOT
// bit-identical to the CSR scatter kernel once sigma-sorting permutes rows.
// The solve path never relies on it: the preconditioner applies G^T through
// a pre-transposed factor build (DistCsr of transpose(G)), keeping the G^T
// application a row-major SpMV with deterministic per-row sums.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace fsaic {

/// Padded slot count a SellMatrix(a, rows, chunk, sigma) build would store,
/// computed without materializing the format — the cost function of the
/// `--format auto` chunk autotuner. Replicates the construction exactly:
/// rows sigma-window stable-sorted by descending length, then per chunk
/// `chunk * max(row lengths)` summed over all (including partial) chunks.
[[nodiscard]] offset_t sell_padded_entries(const CsrMatrix& a,
                                           std::span<const index_t> rows,
                                           index_t chunk, index_t sigma);

class SellMatrix {
 public:
  /// Convert from CSR. `chunk` (C) is the SIMD width to pad for; `sigma` is
  /// the sorting-window size in rows (a multiple of `chunk`; sigma == chunk
  /// disables reordering beyond the chunk). `single_precision` additionally
  /// stores a float32 copy of the values for the mixed-precision apply.
  explicit SellMatrix(const CsrMatrix& a, index_t chunk = 8, index_t sigma = 64,
                      bool single_precision = false);

  /// Same, over a subset of the source rows (ascending, duplicate-free).
  /// spmv writes only those rows of y; the rest are untouched.
  SellMatrix(const CsrMatrix& a, std::span<const index_t> rows, index_t chunk,
             index_t sigma, bool single_precision = false);

  /// Output dimension of spmv (rows of the SOURCE matrix, not the subset).
  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t chunk() const { return chunk_; }
  /// Rows actually stored (== rows() unless built over a subset).
  [[nodiscard]] index_t stored_rows() const { return stored_rows_; }
  [[nodiscard]] index_t num_chunks() const {
    return static_cast<index_t>(chunk_width_.size());
  }
  [[nodiscard]] bool has_single_precision() const { return single_; }

  /// Stored slots including padding (>= nnz of the stored rows).
  [[nodiscard]] offset_t padded_size() const {
    return static_cast<offset_t>(values_.size());
  }
  /// Nonzeros of the stored rows (excluding padding).
  [[nodiscard]] offset_t source_nnz() const { return source_nnz_; }
  /// Padding overhead: padded slots / source nnz.
  [[nodiscard]] double padding_ratio() const {
    return source_nnz_ > 0
               ? static_cast<double>(padded_size()) / static_cast<double>(source_nnz_)
               : 1.0;
  }

  /// Chunk structure, exposed for the cachesim access-stream replay:
  /// slot = chunk_ptr()[c] + j * chunk + lane, j < chunk_widths()[c].
  [[nodiscard]] std::span<const offset_t> chunk_ptr() const { return chunk_ptr_; }
  [[nodiscard]] std::span<const index_t> chunk_widths() const {
    return chunk_width_;
  }
  [[nodiscard]] std::span<const index_t> col_indices() const { return col_idx_; }
  /// row_perm()[stored_row] = source row id.
  [[nodiscard]] std::span<const index_t> row_perm() const { return perm_; }

  /// y = A x over the stored rows (in SOURCE numbering: the row permutation
  /// applied during construction is undone on output). Bit-identical to the
  /// scalar CSR kernel row by row.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Same, reading float32 values and accumulating in double (requires
  /// single_precision construction).
  void spmv_single(std::span<const value_t> x, std::span<value_t> y) const;

  /// y = A^T x scattered over the stored rows. y must be zero-initialized by
  /// the caller (matching the ops.cpp transpose kernel, which fills y
  /// itself; here the subset semantics make caller-side init the only
  /// correct contract). Scatter order is the chunk layout, so rounding may
  /// differ from the CSR transpose kernel once rows are sigma-sorted.
  void spmv_transpose(std::span<const value_t> x, std::span<value_t> y) const;

 private:
  template <typename Values>
  void spmv_impl(const Values& values, std::span<const value_t> x,
                 std::span<value_t> y) const;
  /// Kernel instantiated per compile-time chunk width C: the lane loop has a
  /// constant trip count, so it unrolls into straight-line SIMD code instead
  /// of a runtime-length loop.
  template <index_t C, typename Values>
  void spmv_fixed(const Values& values, std::span<const value_t> x,
                  std::span<value_t> y) const;

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t chunk_ = 0;
  index_t stored_rows_ = 0;
  /// Whether values_f_ was populated at construction (kept as a flag so an
  /// empty row subset still reports the precision it was built with).
  bool single_ = false;
  offset_t source_nnz_ = 0;
  /// perm_[stored_row] = source row id.
  std::vector<index_t> perm_;
  /// Chunk start offsets into values_/col_idx_ (num_chunks + 1).
  std::vector<offset_t> chunk_ptr_;
  /// Rows per chunk padded width.
  std::vector<index_t> chunk_width_;
  /// Column-major within chunk: slot = chunk_ptr_[c] + j * chunk + lane.
  std::vector<index_t> col_idx_;
  std::vector<value_t> values_;
  /// float32 copy of values_ (mixed-precision apply); empty unless requested.
  std::vector<float> values_f_;
};

}  // namespace fsaic
