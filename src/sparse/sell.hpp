// SELL-C-sigma: the SIMD-friendly sparse format (Kreutzer et al. 2014).
//
// Rows are sorted by length within windows of sigma rows, grouped into
// chunks of C rows, and each chunk is stored column-major padded to its
// longest row — so a SIMD lane processes one row and the value/index loads
// are unit-stride. The paper's cache analysis targets CSR (what its code
// uses); this format is provided for the SpMV-kernel benches and to document
// that the FSAIE extension's benefit — fewer x-line fetches — is format-
// independent: the x-gather locality is a property of the *pattern*, not of
// the storage of the matrix entries.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace fsaic {

class SellMatrix {
 public:
  /// Convert from CSR. `chunk` (C) is the SIMD width to pad for; `sigma` is
  /// the sorting-window size in rows (a multiple of `chunk`; sigma == chunk
  /// disables reordering beyond the chunk).
  SellMatrix(const CsrMatrix& a, index_t chunk = 8, index_t sigma = 64);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t chunk() const { return chunk_; }

  /// Stored slots including padding (>= nnz of the source).
  [[nodiscard]] offset_t padded_size() const {
    return static_cast<offset_t>(values_.size());
  }
  /// Padding overhead: padded slots / source nnz.
  [[nodiscard]] double padding_ratio() const {
    return source_nnz_ > 0
               ? static_cast<double>(padded_size()) / static_cast<double>(source_nnz_)
               : 1.0;
  }

  /// y = A x (rows in ORIGINAL numbering: the row permutation applied during
  /// construction is undone on output).
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t chunk_ = 0;
  offset_t source_nnz_ = 0;
  /// perm_[stored_row] = original row id.
  std::vector<index_t> perm_;
  /// Chunk start offsets into values_/col_idx_ (num_chunks + 1).
  std::vector<offset_t> chunk_ptr_;
  /// Rows per chunk padded width.
  std::vector<index_t> chunk_width_;
  /// Column-major within chunk: slot = chunk_ptr_[c] + j * chunk + lane.
  std::vector<index_t> col_idx_;
  std::vector<value_t> values_;
};

}  // namespace fsaic
