#include "sparse/local_operator.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "sparse/ops.hpp"

namespace fsaic {

std::string to_string(OperatorFormat format) {
  return format == OperatorFormat::Sell ? "sell" : "csr";
}

std::string to_string(FactorPrecision precision) {
  return precision == FactorPrecision::Single ? "single" : "double";
}

OperatorFormat operator_format_from_string(const std::string& s) {
  if (s == "csr") return OperatorFormat::Csr;
  if (s == "sell") return OperatorFormat::Sell;
  throw Error("unknown operator format: " + s + " (expected csr|sell)");
}

FactorPrecision factor_precision_from_string(const std::string& s) {
  if (s == "double") return FactorPrecision::Double;
  if (s == "single" || s == "mixed") return FactorPrecision::Single;
  throw Error("unknown factor precision: " + s + " (expected double|single)");
}

KernelConfig KernelConfig::from_env() {
  KernelConfig config;
  const char* env = std::getenv("FSAIC_FORMAT");
  if (env != nullptr && *env != '\0') {
    if (std::string(env) == "auto") {
      config.autotune = true;
    } else {
      config.format = operator_format_from_string(env);
    }
  }
  return config;
}

LocalOperator::LocalOperator(const CsrMatrix& a,
                             std::span<const index_t> interior,
                             std::span<const index_t> boundary,
                             const KernelConfig& config)
    : config_(config) {
  if (config_.format == OperatorFormat::Sell) {
    const bool single = config_.precision == FactorPrecision::Single;
    sell_interior_ = std::make_shared<const SellMatrix>(
        a, interior, config_.sell_chunk, config_.sell_sigma, single);
    sell_boundary_ = std::make_shared<const SellMatrix>(
        a, boundary, config_.sell_chunk, config_.sell_sigma, single);
  } else if (config_.precision == FactorPrecision::Single) {
    const auto vals = a.values();
    auto f = std::make_shared<std::vector<float>>(vals.size());
    for (std::size_t k = 0; k < vals.size(); ++k) {
      (*f)[k] = static_cast<float>(vals[k]);
    }
    csr_values_f_ = std::move(f);
  }
}

offset_t LocalOperator::padded_entries(const CsrMatrix& a) const {
  if (config_.format == OperatorFormat::Sell) {
    return sell_interior_->padded_size() + sell_boundary_->padded_size();
  }
  return a.nnz();
}

double LocalOperator::padding_ratio(const CsrMatrix& a) const {
  return a.nnz() > 0 ? static_cast<double>(padded_entries(a)) /
                           static_cast<double>(a.nnz())
                     : 1.0;
}

void LocalOperator::apply_sell(const SellMatrix& sell,
                               std::span<const value_t> x,
                               std::span<value_t> y) const {
  if (config_.precision == FactorPrecision::Single) {
    sell.spmv_single(x, y);
  } else {
    sell.spmv(x, y);
  }
}

/// The scalar reference loop: per-row accumulation in ascending column
/// order, replicating the historic dist spmv_rows kernel exactly — every
/// fast path is differential-tested against these sums.
void LocalOperator::csr_rows(const CsrMatrix& a, std::span<const index_t> rows,
                             std::span<const value_t> x,
                             std::span<value_t> y) const {
  if (config_.precision == FactorPrecision::Single) {
    const auto& fvals = *csr_values_f_;
    const auto row_ptr = a.row_ptr();
    for (const index_t i : rows) {
      const auto cols = a.row_cols(i);
      const auto b = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
      value_t sum = 0.0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        sum += static_cast<value_t>(fvals[b + k]) *
               x[static_cast<std::size_t>(cols[k])];
      }
      y[static_cast<std::size_t>(i)] = sum;
    }
    return;
  }
  for (const index_t i : rows) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    value_t sum = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      sum += vals[k] * x[static_cast<std::size_t>(cols[k])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
}

void LocalOperator::spmv_interior(const CsrMatrix& a,
                                  std::span<const index_t> rows,
                                  std::span<const value_t> x,
                                  std::span<value_t> y) const {
  if (config_.format == OperatorFormat::Sell) {
    apply_sell(*sell_interior_, x, y);
  } else {
    csr_rows(a, rows, x, y);
  }
}

void LocalOperator::spmv_boundary(const CsrMatrix& a,
                                  std::span<const index_t> rows,
                                  std::span<const value_t> x,
                                  std::span<value_t> y) const {
  if (config_.format == OperatorFormat::Sell) {
    apply_sell(*sell_boundary_, x, y);
  } else {
    csr_rows(a, rows, x, y);
  }
}

void LocalOperator::spmv_all(const CsrMatrix& a,
                             std::span<const index_t> interior,
                             std::span<const index_t> boundary,
                             std::span<const value_t> x,
                             std::span<value_t> y) const {
  if (config_.format == OperatorFormat::Sell) {
    apply_sell(*sell_interior_, x, y);
    apply_sell(*sell_boundary_, x, y);
    return;
  }
  if (config_.precision == FactorPrecision::Single) {
    csr_rows(a, interior, x, y);
    csr_rows(a, boundary, x, y);
    return;
  }
  // The historic non-overlapping path: OpenMP row-parallel over the whole
  // block. Row sums are independent, so this matches the subset kernels bit
  // for bit.
  fsaic::spmv(a, x, y);
}

}  // namespace fsaic
