// Dense vector kernels used by the Krylov solvers (the AXPY / dot-product /
// norm trio the paper lists as the CG building blocks besides SpMV).
#pragma once

#include <cmath>
#include <span>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fsaic {

/// y = alpha * x + y.
inline void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y) {
  FSAIC_REQUIRE(x.size() == y.size(), "axpy size mismatch");
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

/// y = x + beta * y (the "xpby" update used for CG search directions).
inline void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y) {
  FSAIC_REQUIRE(x.size() == y.size(), "xpby size mismatch");
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x[i] + beta * y[i];
  }
}

/// Euclidean inner product.
[[nodiscard]] inline value_t dot(std::span<const value_t> x,
                                 std::span<const value_t> y) {
  FSAIC_REQUIRE(x.size() == y.size(), "dot size mismatch");
  value_t sum = 0.0;
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static) reduction(+ : sum)
  for (std::size_t i = 0; i < n; ++i) {
    sum += x[i] * y[i];
  }
  return sum;
}

/// Euclidean norm.
[[nodiscard]] inline value_t norm2(std::span<const value_t> x) {
  return std::sqrt(dot(x, x));
}

/// Largest absolute component.
[[nodiscard]] inline value_t norm_inf(std::span<const value_t> x) {
  value_t m = 0.0;
  for (value_t v : x) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

/// x *= alpha.
inline void scale(value_t alpha, std::span<value_t> x) {
  for (auto& v : x) {
    v *= alpha;
  }
}

}  // namespace fsaic
