// Dense vector kernels used by the Krylov solvers (the AXPY / dot-product /
// norm trio the paper lists as the CG building blocks besides SpMV).
#pragma once

#include <cmath>
#include <span>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fsaic {

/// y = alpha * x + y.
inline void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y) {
  FSAIC_REQUIRE(x.size() == y.size(), "axpy size mismatch");
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

/// y = x + beta * y (the "xpby" update used for CG search directions).
inline void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y) {
  FSAIC_REQUIRE(x.size() == y.size(), "xpby size mismatch");
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x[i] + beta * y[i];
  }
}

/// The fused pipelined-CG recurrence sweep: a single pass computing
///
///   p = u + beta * p;   s = w + beta * s;   r += malpha * s
///
/// (malpha is the pre-negated step, matching the historic
/// axpy(-alpha, s, r) call). Each element evaluates the exact expressions
/// of the three separate xpby/xpby/axpy sweeps in the same order, so the
/// fusion is bit-identical — it only removes two full memory passes and two
/// superstep barriers per iteration.
inline void fused_cg_sweep(std::span<const value_t> u, std::span<const value_t> w,
                           value_t beta, value_t malpha, std::span<value_t> p,
                           std::span<value_t> s, std::span<value_t> r) {
  FSAIC_REQUIRE(u.size() == p.size() && w.size() == s.size() &&
                    r.size() == p.size() && s.size() == p.size(),
                "fused_cg_sweep size mismatch");
  const std::size_t n = u.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = u[i] + beta * p[i];
    const value_t si = w[i] + beta * s[i];
    s[i] = si;
    r[i] += malpha * si;
  }
}

/// Fused pair of AXPYs sharing one pass: x += alpha * d; r += malpha * q.
/// Element-wise identical to two separate axpy calls.
inline void fused_axpy_pair(value_t alpha, std::span<const value_t> d,
                            value_t malpha, std::span<const value_t> q,
                            std::span<value_t> x, std::span<value_t> r) {
  FSAIC_REQUIRE(d.size() == x.size() && q.size() == r.size() &&
                    x.size() == r.size(),
                "fused_axpy_pair size mismatch");
  const std::size_t n = d.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += alpha * d[i];
    r[i] += malpha * q[i];
  }
}

/// Euclidean inner product.
[[nodiscard]] inline value_t dot(std::span<const value_t> x,
                                 std::span<const value_t> y) {
  FSAIC_REQUIRE(x.size() == y.size(), "dot size mismatch");
  value_t sum = 0.0;
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static) reduction(+ : sum)
  for (std::size_t i = 0; i < n; ++i) {
    sum += x[i] * y[i];
  }
  return sum;
}

/// Euclidean norm.
[[nodiscard]] inline value_t norm2(std::span<const value_t> x) {
  return std::sqrt(dot(x, x));
}

/// Largest absolute component.
[[nodiscard]] inline value_t norm_inf(std::span<const value_t> x) {
  value_t m = 0.0;
  for (value_t v : x) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

/// x *= alpha.
inline void scale(value_t alpha, std::span<value_t> x) {
  for (auto& v : x) {
    v *= alpha;
  }
}

}  // namespace fsaic
