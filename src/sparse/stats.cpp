#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>

#include "dense/dense_matrix.hpp"
#include "dense/factorizations.hpp"
#include "sparse/ops.hpp"
#include "sparse/vector_ops.hpp"

namespace fsaic {

MatrixStats compute_matrix_stats(const CsrMatrix& a) {
  MatrixStats s;
  s.rows = a.rows();
  s.nnz = a.nnz();
  s.symmetric = a.is_symmetric(1e-12 * std::max(a.max_abs(), 1.0));
  if (a.rows() == 0) return s;

  s.min_row_nnz = a.rows() > 0 ? a.pattern().row_nnz(0) : 0;
  index_t dominant = 0;
  value_t dmin = std::numeric_limits<value_t>::max();
  value_t dmax = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    const index_t rn = a.pattern().row_nnz(i);
    s.min_row_nnz = std::min(s.min_row_nnz, rn);
    s.max_row_nnz = std::max(s.max_row_nnz, rn);
    value_t offsum = 0.0;
    value_t diag = 0.0;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) {
        diag = vals[k];
      } else {
        offsum += std::abs(vals[k]);
      }
      s.bandwidth = std::max(s.bandwidth, std::abs(i - cols[k]));
    }
    if (diag > offsum) ++dominant;
    dmin = std::min(dmin, std::abs(diag));
    dmax = std::max(dmax, std::abs(diag));
  }
  s.avg_row_nnz = static_cast<double>(a.nnz()) / static_cast<double>(a.rows());
  s.diagonally_dominant_fraction =
      static_cast<double>(dominant) / static_cast<double>(a.rows());
  s.diagonal_ratio = dmax > 0.0 ? dmin / dmax : 0.0;
  return s;
}

value_t estimate_lambda_max(const CsrMatrix& a, int iterations) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "power method requires square");
  FSAIC_REQUIRE(iterations >= 1, "need at least one iteration");
  std::vector<value_t> v(static_cast<std::size_t>(a.rows()));
  // Deterministic, non-degenerate start vector.
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 1.0 + 0.01 * static_cast<value_t>(i % 17);
  }
  std::vector<value_t> w(v.size());
  value_t lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    spmv(a, v, w);
    lambda = norm2(w);
    if (lambda == 0.0) return 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = w[i] / lambda;
    }
  }
  return lambda;
}

value_t estimate_condition_number(const CsrMatrix& a, int lanczos_steps) {
  FSAIC_REQUIRE(a.rows() == a.cols(), "Lanczos requires square");
  const auto n = static_cast<std::size_t>(a.rows());
  const int m = std::min<int>(lanczos_steps, a.rows());
  FSAIC_REQUIRE(m >= 1, "need at least one Lanczos step");

  // Standard three-term Lanczos without reorthogonalization; good enough for
  // the extreme Ritz values at these problem sizes.
  std::vector<value_t> q_prev(n, 0.0);
  std::vector<value_t> q(n);
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = 1.0 + 0.01 * static_cast<value_t>(i % 13);
  }
  scale(1.0 / norm2(q), q);
  std::vector<value_t> w(n);
  std::vector<value_t> alpha;
  std::vector<value_t> beta;  // beta[k] couples step k and k+1
  value_t beta_prev = 0.0;
  for (int k = 0; k < m; ++k) {
    spmv(a, q, w);
    if (beta_prev != 0.0) {
      axpy(-beta_prev, q_prev, w);
    }
    const value_t ak = dot(q, w);
    alpha.push_back(ak);
    axpy(-ak, q, w);
    const value_t bk = norm2(w);
    if (bk < 1e-14 || k == m - 1) break;
    beta.push_back(bk);
    q_prev = q;
    for (std::size_t i = 0; i < n; ++i) {
      q[i] = w[i] / bk;
    }
    beta_prev = bk;
  }

  // Eigenvalues of the tridiagonal (alpha, beta) matrix via dense symmetric
  // solve: build it and run bisection-free approach — for the small sizes
  // here, the simplest correct method is a dense Jacobi eigenvalue sweep.
  const auto k = static_cast<index_t>(alpha.size());
  DenseMatrix t(k, k);
  for (index_t i = 0; i < k; ++i) {
    t(i, i) = alpha[static_cast<std::size_t>(i)];
    if (i + 1 < k) {
      t(i, i + 1) = beta[static_cast<std::size_t>(i)];
      t(i + 1, i) = beta[static_cast<std::size_t>(i)];
    }
  }
  // Cyclic Jacobi rotations until off-diagonal mass is negligible.
  for (int sweep = 0; sweep < 60; ++sweep) {
    value_t off = 0.0;
    for (index_t p = 0; p < k; ++p) {
      for (index_t r = p + 1; r < k; ++r) {
        off += t(p, r) * t(p, r);
      }
    }
    if (off < 1e-24) break;
    for (index_t p = 0; p < k; ++p) {
      for (index_t r = p + 1; r < k; ++r) {
        const value_t apq = t(p, r);
        if (std::abs(apq) < 1e-300) continue;
        const value_t theta = (t(r, r) - t(p, p)) / (2.0 * apq);
        const value_t sign = theta >= 0.0 ? 1.0 : -1.0;
        const value_t tau =
            sign / (std::abs(theta) + std::sqrt(1.0 + theta * theta));
        const value_t c = 1.0 / std::sqrt(1.0 + tau * tau);
        const value_t s = tau * c;
        for (index_t idx = 0; idx < k; ++idx) {
          const value_t tip = t(idx, p);
          const value_t tir = t(idx, r);
          t(idx, p) = c * tip - s * tir;
          t(idx, r) = s * tip + c * tir;
        }
        for (index_t idx = 0; idx < k; ++idx) {
          const value_t tpi = t(p, idx);
          const value_t tri = t(r, idx);
          t(p, idx) = c * tpi - s * tri;
          t(r, idx) = s * tpi + c * tri;
        }
      }
    }
  }
  value_t lmin = t(0, 0);
  value_t lmax = t(0, 0);
  for (index_t i = 1; i < k; ++i) {
    lmin = std::min(lmin, t(i, i));
    lmax = std::max(lmax, t(i, i));
  }
  FSAIC_REQUIRE(lmin > 0.0, "condition estimate requires SPD input");
  return lmax / lmin;
}

}  // namespace fsaic
