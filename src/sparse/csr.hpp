// Compressed Sparse Row matrix: the workhorse container of the library.
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sparse/pattern.hpp"

namespace fsaic {

/// CSR matrix with sorted, duplicate-free columns per row.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Zero matrix on a given pattern (values all 0).
  explicit CsrMatrix(SparsityPattern pattern);

  /// Adopt CSR arrays; structure is validated through SparsityPattern.
  CsrMatrix(index_t rows, index_t cols, std::vector<offset_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<value_t> values);

  [[nodiscard]] index_t rows() const { return pattern_.rows(); }
  [[nodiscard]] index_t cols() const { return pattern_.cols(); }
  [[nodiscard]] offset_t nnz() const { return pattern_.nnz(); }

  [[nodiscard]] const SparsityPattern& pattern() const { return pattern_; }
  [[nodiscard]] std::span<const offset_t> row_ptr() const { return pattern_.row_ptr(); }
  [[nodiscard]] std::span<const index_t> col_idx() const { return pattern_.col_idx(); }
  [[nodiscard]] std::span<const value_t> values() const { return values_; }
  [[nodiscard]] std::span<value_t> values() { return values_; }

  /// Column indices of row i.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const {
    return pattern_.row(i);
  }

  /// Values of row i.
  [[nodiscard]] std::span<const value_t> row_vals(index_t i) const {
    const auto rp = pattern_.row_ptr();
    return {values_.data() + rp[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(rp[static_cast<std::size_t>(i) + 1] -
                                     rp[static_cast<std::size_t>(i)])};
  }

  [[nodiscard]] std::span<value_t> row_vals(index_t i) {
    const auto rp = pattern_.row_ptr();
    return {values_.data() + rp[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(rp[static_cast<std::size_t>(i) + 1] -
                                     rp[static_cast<std::size_t>(i)])};
  }

  /// Value at (i, j), or 0 if the entry is not in the pattern.
  [[nodiscard]] value_t at(index_t i, index_t j) const;

  /// Diagonal entries (0 for missing structural diagonal). Square only.
  [[nodiscard]] std::vector<value_t> diagonal() const;

  /// True iff values are numerically symmetric within tol (square only).
  [[nodiscard]] bool is_symmetric(value_t tol = 0.0) const;

  /// Largest absolute entry (the "matrix max norm" the paper normalizes
  /// right-hand sides with).
  [[nodiscard]] value_t max_abs() const;

 private:
  SparsityPattern pattern_;
  std::vector<value_t> values_;
};

}  // namespace fsaic
