#include "sparse/fingerprint.hpp"

#include "common/format.hpp"

namespace fsaic {

std::uint64_t fnv1a64(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string MatrixFingerprint::to_string() const {
  return strformat("%d x %d, %lld nnz, hash %016llx", rows, cols,
                   static_cast<long long>(nnz),
                   static_cast<unsigned long long>(content_hash));
}

std::uint64_t fingerprint_of_values(std::span<const value_t> v) {
  return fnv1a64(v.data(), v.size_bytes());
}

std::string hash_hex(std::uint64_t h) {
  return strformat("%016llx", static_cast<unsigned long long>(h));
}

MatrixFingerprint fingerprint_of(const CsrMatrix& a) {
  MatrixFingerprint fp;
  fp.rows = a.rows();
  fp.cols = a.cols();
  fp.nnz = a.nnz();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto vals = a.values();
  Fnv1a64Stream h;
  h.update(rp.data(), rp.size_bytes());
  h.update(ci.data(), ci.size_bytes());
  h.update(vals.data(), vals.size_bytes());
  fp.content_hash = h.digest();
  return fp;
}

}  // namespace fsaic
