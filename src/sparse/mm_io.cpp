#include "sparse/mm_io.hpp"

#include <fstream>
#include <sstream>

#include "sparse/coo.hpp"

namespace fsaic {

namespace {

std::string lowercase(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  FSAIC_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  FSAIC_REQUIRE(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  FSAIC_REQUIRE(lowercase(object) == "matrix", "only matrix objects supported");
  FSAIC_REQUIRE(lowercase(format) == "coordinate",
                "only coordinate format supported");
  const std::string fld = lowercase(field);
  FSAIC_REQUIRE(fld == "real" || fld == "integer" || fld == "pattern",
                "only real/integer/pattern fields supported");
  const std::string sym = lowercase(symmetry);
  FSAIC_REQUIRE(sym == "general" || sym == "symmetric",
                "only general/symmetric matrices supported");

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  long long rows = 0, cols = 0, nnz = 0;
  sizes >> rows >> cols >> nnz;
  FSAIC_REQUIRE(rows > 0 && cols > 0 && nnz >= 0, "bad size line");

  CooBuilder builder(static_cast<index_t>(rows), static_cast<index_t>(cols));
  builder.reserve(static_cast<std::size_t>(sym == "symmetric" ? 2 * nnz : nnz));
  for (long long k = 0; k < nnz; ++k) {
    FSAIC_REQUIRE(static_cast<bool>(std::getline(in, line)),
                  "truncated entry list");
    std::istringstream entry(line);
    long long i = 0, j = 0;
    value_t v = 1.0;
    entry >> i >> j;
    if (fld != "pattern") entry >> v;
    FSAIC_REQUIRE(i >= 1 && i <= rows && j >= 1 && j <= cols,
                  "entry index out of range");
    const auto ii = static_cast<index_t>(i - 1);
    const auto jj = static_cast<index_t>(j - 1);
    if (sym == "symmetric") {
      builder.add_symmetric(ii, jj, v);
    } else {
      builder.add(ii, jj, v);
    }
  }
  return builder.to_csr();
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  FSAIC_REQUIRE(in.good(), "cannot open file: " + path);
  return read_matrix_market(in);
}

std::vector<value_t> read_matrix_market_vector(std::istream& in) {
  std::string line;
  FSAIC_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  FSAIC_REQUIRE(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  FSAIC_REQUIRE(lowercase(object) == "matrix" || lowercase(object) == "vector",
                "only matrix/vector objects supported");
  const std::string fmt = lowercase(format);
  FSAIC_REQUIRE(fmt == "array" || fmt == "coordinate",
                "only array/coordinate vectors supported");
  const std::string fld = lowercase(field);
  FSAIC_REQUIRE(fld == "real" || fld == "integer",
                "only real/integer vectors supported");
  FSAIC_REQUIRE(lowercase(symmetry) == "general",
                "vectors must be declared general");

  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  long long rows = 0, cols = 0, nnz = 0;
  sizes >> rows >> cols;
  FSAIC_REQUIRE(rows > 0 && cols == 1, "right-hand side must have one column");
  std::vector<value_t> v(static_cast<std::size_t>(rows), 0.0);
  if (fmt == "array") {
    for (long long k = 0; k < rows; ++k) {
      FSAIC_REQUIRE(static_cast<bool>(std::getline(in, line)),
                    "truncated vector entries");
      std::istringstream entry(line);
      FSAIC_REQUIRE(
          static_cast<bool>(entry >> v[static_cast<std::size_t>(k)]),
          "malformed vector entry");
    }
  } else {
    sizes >> nnz;
    FSAIC_REQUIRE(nnz >= 0 && nnz <= rows, "bad coordinate vector size line");
    for (long long k = 0; k < nnz; ++k) {
      FSAIC_REQUIRE(static_cast<bool>(std::getline(in, line)),
                    "truncated vector entries");
      std::istringstream entry(line);
      long long i = 0, j = 0;
      value_t x = 0.0;
      FSAIC_REQUIRE(static_cast<bool>(entry >> i >> j >> x),
                    "malformed vector entry");
      FSAIC_REQUIRE(i >= 1 && i <= rows && j == 1,
                    "vector entry index out of range");
      v[static_cast<std::size_t>(i - 1)] = x;
    }
  }
  return v;
}

std::vector<value_t> read_matrix_market_vector_file(const std::string& path) {
  std::ifstream in(path);
  FSAIC_REQUIRE(in.good(), "cannot open file: " + path);
  return read_matrix_market_vector(in);
}

void write_matrix_market_vector(std::ostream& out, std::span<const value_t> v) {
  out << "%%MatrixMarket matrix array real general\n";
  out << v.size() << " 1\n";
  out.precision(17);
  for (const value_t x : v) out << x << '\n';
}

void write_matrix_market_vector_file(const std::string& path,
                                     std::span<const value_t> v) {
  std::ofstream out(path);
  FSAIC_REQUIRE(out.good(), "cannot open file for writing: " + path);
  write_matrix_market_vector(out, v);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols_i = a.row_cols(i);
    const auto vals_i = a.row_vals(i);
    for (std::size_t k = 0; k < cols_i.size(); ++k) {
      out << (i + 1) << ' ' << (cols_i[k] + 1) << ' ' << vals_i[k] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream out(path);
  FSAIC_REQUIRE(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, a);
}

}  // namespace fsaic
