#include "sparse/pattern.hpp"

#include <algorithm>

namespace fsaic {

SparsityPattern::SparsityPattern(index_t rows, index_t cols,
                                 std::vector<offset_t> row_ptr,
                                 std::vector<index_t> col_idx)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)) {
  FSAIC_REQUIRE(rows >= 0 && cols >= 0, "pattern shape must be non-negative");
  FSAIC_REQUIRE(row_ptr_.size() == static_cast<std::size_t>(rows) + 1,
                "row_ptr must have rows+1 entries");
  FSAIC_REQUIRE(row_ptr_.front() == 0, "row_ptr must start at 0");
  FSAIC_REQUIRE(row_ptr_.back() == static_cast<offset_t>(col_idx_.size()),
                "row_ptr must end at nnz");
  for (index_t i = 0; i < rows_; ++i) {
    const auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i)]);
    const auto e = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1]);
    FSAIC_REQUIRE(b <= e, "row_ptr must be non-decreasing");
    for (std::size_t k = b; k < e; ++k) {
      FSAIC_REQUIRE(col_idx_[k] >= 0 && col_idx_[k] < cols_,
                    "column index out of range");
      if (k > b) {
        FSAIC_REQUIRE(col_idx_[k - 1] < col_idx_[k],
                      "columns must be sorted and unique per row");
      }
    }
  }
}

bool SparsityPattern::contains(index_t i, index_t j) const {
  const auto r = row(i);
  return std::binary_search(r.begin(), r.end(), j);
}

bool SparsityPattern::has_full_diagonal() const {
  if (rows_ != cols_) return false;
  for (index_t i = 0; i < rows_; ++i) {
    if (!contains(i, i)) return false;
  }
  return true;
}

bool SparsityPattern::is_lower_triangular() const {
  for (index_t i = 0; i < rows_; ++i) {
    const auto r = row(i);
    if (!r.empty() && r.back() > i) return false;
  }
  return true;
}

bool SparsityPattern::is_symmetric() const {
  if (rows_ != cols_) return false;
  return *this == transposed();
}

SparsityPattern SparsityPattern::from_rows(
    index_t rows, index_t cols, std::vector<std::vector<index_t>> row_lists) {
  FSAIC_REQUIRE(row_lists.size() == static_cast<std::size_t>(rows),
                "one column list per row required");
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (index_t i = 0; i < rows; ++i) {
    auto& list = row_lists[static_cast<std::size_t>(i)];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] + static_cast<offset_t>(list.size());
  }
  std::vector<index_t> col_idx;
  col_idx.reserve(static_cast<std::size_t>(row_ptr.back()));
  for (auto& list : row_lists) {
    col_idx.insert(col_idx.end(), list.begin(), list.end());
  }
  return SparsityPattern(rows, cols, std::move(row_ptr), std::move(col_idx));
}

SparsityPattern SparsityPattern::lower_triangle() const {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> col_idx;
  col_idx.reserve(static_cast<std::size_t>(nnz() / 2 + rows_));
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t j : row(i)) {
      if (j <= i) col_idx.push_back(j);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(col_idx.size());
  }
  return SparsityPattern(rows_, cols_, std::move(row_ptr), std::move(col_idx));
}

SparsityPattern SparsityPattern::transposed() const {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (index_t j : col_idx_) {
    ++row_ptr[static_cast<std::size_t>(j) + 1];
  }
  for (index_t j = 0; j < cols_; ++j) {
    row_ptr[static_cast<std::size_t>(j) + 1] += row_ptr[static_cast<std::size_t>(j)];
  }
  std::vector<index_t> col_idx(col_idx_.size());
  std::vector<offset_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t j : row(i)) {
      col_idx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(j)]++)] = i;
    }
  }
  // Rows of the transpose are filled in ascending source-row order, so the
  // column lists are already sorted.
  return SparsityPattern(cols_, rows_, std::move(row_ptr), std::move(col_idx));
}

SparsityPattern SparsityPattern::merged_with(const SparsityPattern& other) const {
  FSAIC_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                "pattern union requires equal shapes");
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> col_idx;
  col_idx.reserve(col_idx_.size() + other.col_idx_.size());
  for (index_t i = 0; i < rows_; ++i) {
    const auto a = row(i);
    const auto b = other.row(i);
    const auto before = col_idx.size();
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(col_idx));
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] +
        static_cast<offset_t>(col_idx.size() - before);
  }
  return SparsityPattern(rows_, cols_, std::move(row_ptr), std::move(col_idx));
}

SparsityPattern SparsityPattern::with_full_diagonal() const {
  FSAIC_REQUIRE(rows_ == cols_, "diagonal insertion requires a square pattern");
  std::vector<std::vector<index_t>> rows_out(static_cast<std::size_t>(rows_));
  for (index_t i = 0; i < rows_; ++i) {
    const auto r = row(i);
    auto& out = rows_out[static_cast<std::size_t>(i)];
    out.assign(r.begin(), r.end());
    out.push_back(i);
  }
  return from_rows(rows_, cols_, std::move(rows_out));
}

SparsityPattern SparsityPattern::symbolic_multiply(const SparsityPattern& rhs) const {
  FSAIC_REQUIRE(cols_ == rhs.rows_, "inner dimensions must agree");
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> col_idx;
  // Sparse accumulator (Gustavson): a marker array avoids per-row sorting of
  // duplicates; the result row is sorted once at the end.
  std::vector<index_t> marker(static_cast<std::size_t>(rhs.cols_), -1);
  std::vector<index_t> row_cols;
  for (index_t i = 0; i < rows_; ++i) {
    row_cols.clear();
    for (index_t k : row(i)) {
      for (index_t j : rhs.row(k)) {
        if (marker[static_cast<std::size_t>(j)] != i) {
          marker[static_cast<std::size_t>(j)] = i;
          row_cols.push_back(j);
        }
      }
    }
    std::sort(row_cols.begin(), row_cols.end());
    col_idx.insert(col_idx.end(), row_cols.begin(), row_cols.end());
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(col_idx.size());
  }
  return SparsityPattern(rows_, rhs.cols_, std::move(row_ptr), std::move(col_idx));
}

SparsityPattern SparsityPattern::symbolic_power(int n) const {
  FSAIC_REQUIRE(rows_ == cols_, "symbolic power requires a square pattern");
  FSAIC_REQUIRE(n >= 1, "symbolic power requires n >= 1");
  SparsityPattern result = *this;
  for (int k = 1; k < n; ++k) {
    result = result.symbolic_multiply(*this);
  }
  return result;
}

}  // namespace fsaic
