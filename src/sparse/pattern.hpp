// SparsityPattern: the structure of a sparse matrix without its values.
//
// FSAI-style preconditioners are defined by *where* nonzeros are allowed
// before any value is computed, so the pattern is a first-class object here:
// Algorithm 1 computes the pattern of Ã^N, Algorithm 3 extends a pattern with
// cache-line neighbours, and the filtering steps shrink a pattern. Values are
// attached later by the Frobenius-minimization row solves.
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fsaic {

/// CSR-structured sparsity pattern: per-row sorted, duplicate-free column
/// index lists.
class SparsityPattern {
 public:
  SparsityPattern() = default;

  /// Empty pattern (no nonzeros) with the given shape.
  SparsityPattern(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), row_ptr_(static_cast<std::size_t>(rows) + 1, 0) {
    FSAIC_REQUIRE(rows >= 0 && cols >= 0, "pattern shape must be non-negative");
  }

  /// Adopt raw CSR structure arrays. Columns must be sorted and unique per
  /// row; this is validated.
  SparsityPattern(index_t rows, index_t cols, std::vector<offset_t> row_ptr,
                  std::vector<index_t> col_idx);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const { return row_ptr_.empty() ? 0 : row_ptr_.back(); }

  [[nodiscard]] std::span<const offset_t> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const index_t> col_idx() const { return col_idx_; }

  /// Column indices of one row (sorted ascending).
  [[nodiscard]] std::span<const index_t> row(index_t i) const {
    FSAIC_REQUIRE(i >= 0 && i < rows_, "row index out of range");
    return {col_idx_.data() + row_ptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1] -
                                     row_ptr_[static_cast<std::size_t>(i)])};
  }

  [[nodiscard]] index_t row_nnz(index_t i) const {
    return static_cast<index_t>(row_ptr_[static_cast<std::size_t>(i) + 1] -
                                row_ptr_[static_cast<std::size_t>(i)]);
  }

  /// True iff entry (i, j) is present (binary search).
  [[nodiscard]] bool contains(index_t i, index_t j) const;

  /// True iff every row's diagonal entry is present (square patterns only).
  [[nodiscard]] bool has_full_diagonal() const;

  /// True iff all entries satisfy col <= row.
  [[nodiscard]] bool is_lower_triangular() const;

  /// True iff the pattern is structurally symmetric.
  [[nodiscard]] bool is_symmetric() const;

  bool operator==(const SparsityPattern& other) const = default;

  // ---- constructions --------------------------------------------------

  /// Build from per-row column lists; each list is sorted and deduplicated.
  static SparsityPattern from_rows(index_t rows, index_t cols,
                                   std::vector<std::vector<index_t>> row_lists);

  /// Lower-triangular part (col <= row) of this pattern.
  [[nodiscard]] SparsityPattern lower_triangle() const;

  /// Transposed pattern.
  [[nodiscard]] SparsityPattern transposed() const;

  /// Union of two same-shape patterns.
  [[nodiscard]] SparsityPattern merged_with(const SparsityPattern& other) const;

  /// Pattern with the diagonal entries of all rows inserted (square only).
  [[nodiscard]] SparsityPattern with_full_diagonal() const;

  /// Symbolic power: pattern of P^n (boolean matrix product, n >= 1).
  /// n == 1 returns a copy. Used by Algorithm 1 to build the Ã^N pattern.
  [[nodiscard]] SparsityPattern symbolic_power(int n) const;

  /// Symbolic product pattern of (*this) * rhs.
  [[nodiscard]] SparsityPattern symbolic_multiply(const SparsityPattern& rhs) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> row_ptr_;
  std::vector<index_t> col_idx_;
};

}  // namespace fsaic
