#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace fsaic {

SellMatrix::SellMatrix(const CsrMatrix& a, index_t chunk, index_t sigma)
    : rows_(a.rows()), cols_(a.cols()), chunk_(chunk), source_nnz_(a.nnz()) {
  FSAIC_REQUIRE(chunk >= 1, "chunk must be positive");
  FSAIC_REQUIRE(sigma >= chunk && sigma % chunk == 0,
                "sigma must be a positive multiple of chunk");

  // Sort rows by descending length inside each sigma window.
  perm_.resize(static_cast<std::size_t>(rows_));
  std::iota(perm_.begin(), perm_.end(), 0);
  for (index_t w = 0; w < rows_; w += sigma) {
    const auto begin = perm_.begin() + w;
    const auto end = perm_.begin() + std::min<index_t>(w + sigma, rows_);
    std::stable_sort(begin, end, [&](index_t r1, index_t r2) {
      return a.pattern().row_nnz(r1) > a.pattern().row_nnz(r2);
    });
  }

  const index_t num_chunks = (rows_ + chunk - 1) / chunk;
  chunk_ptr_.assign(static_cast<std::size_t>(num_chunks) + 1, 0);
  chunk_width_.assign(static_cast<std::size_t>(num_chunks), 0);
  for (index_t c = 0; c < num_chunks; ++c) {
    index_t width = 0;
    for (index_t lane = 0; lane < chunk; ++lane) {
      const index_t stored = c * chunk + lane;
      if (stored < rows_) {
        width = std::max(width,
                         a.pattern().row_nnz(perm_[static_cast<std::size_t>(stored)]));
      }
    }
    chunk_width_[static_cast<std::size_t>(c)] = width;
    chunk_ptr_[static_cast<std::size_t>(c) + 1] =
        chunk_ptr_[static_cast<std::size_t>(c)] +
        static_cast<offset_t>(width) * static_cast<offset_t>(chunk);
  }

  // Fill column-major per chunk; padding repeats column 0 with value 0 so
  // the gather stays in-bounds without branches.
  col_idx_.assign(static_cast<std::size_t>(chunk_ptr_.back()), 0);
  values_.assign(static_cast<std::size_t>(chunk_ptr_.back()), 0.0);
  for (index_t c = 0; c < num_chunks; ++c) {
    const offset_t base = chunk_ptr_[static_cast<std::size_t>(c)];
    const index_t width = chunk_width_[static_cast<std::size_t>(c)];
    for (index_t lane = 0; lane < chunk; ++lane) {
      const index_t stored = c * chunk + lane;
      if (stored >= rows_) continue;
      const index_t row = perm_[static_cast<std::size_t>(stored)];
      const auto cols = a.row_cols(row);
      const auto vals = a.row_vals(row);
      for (index_t j = 0; j < width; ++j) {
        const auto slot = static_cast<std::size_t>(
            base + static_cast<offset_t>(j) * chunk + lane);
        if (j < static_cast<index_t>(cols.size())) {
          col_idx_[slot] = cols[static_cast<std::size_t>(j)];
          values_[slot] = vals[static_cast<std::size_t>(j)];
        }
      }
    }
  }
}

void SellMatrix::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  FSAIC_REQUIRE(x.size() == static_cast<std::size_t>(cols_), "x size mismatch");
  FSAIC_REQUIRE(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  const index_t num_chunks = static_cast<index_t>(chunk_width_.size());
  // Per-chunk accumulators let the inner loop run lane-parallel the way a
  // SIMD implementation would; scalar code here, but the data layout is the
  // point.
  std::vector<value_t> acc(static_cast<std::size_t>(chunk_));
#pragma omp parallel for schedule(static) firstprivate(acc)
  for (index_t c = 0; c < num_chunks; ++c) {
    std::fill(acc.begin(), acc.end(), 0.0);
    const offset_t base = chunk_ptr_[static_cast<std::size_t>(c)];
    const index_t width = chunk_width_[static_cast<std::size_t>(c)];
    for (index_t j = 0; j < width; ++j) {
      const auto col_base = static_cast<std::size_t>(
          base + static_cast<offset_t>(j) * chunk_);
      for (index_t lane = 0; lane < chunk_; ++lane) {
        acc[static_cast<std::size_t>(lane)] +=
            values_[col_base + static_cast<std::size_t>(lane)] *
            x[static_cast<std::size_t>(col_idx_[col_base + static_cast<std::size_t>(lane)])];
      }
    }
    for (index_t lane = 0; lane < chunk_; ++lane) {
      const index_t stored = c * chunk_ + lane;
      if (stored < rows_) {
        y[static_cast<std::size_t>(perm_[static_cast<std::size_t>(stored)])] =
            acc[static_cast<std::size_t>(lane)];
      }
    }
  }
}

}  // namespace fsaic
