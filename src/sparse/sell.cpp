#include "sparse/sell.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/error.hpp"

namespace fsaic {

namespace {

/// Largest chunk width the kernels stack-allocate accumulators for.
constexpr index_t kMaxChunk = 64;

std::vector<index_t> all_rows_of(const CsrMatrix& a) {
  std::vector<index_t> rows(static_cast<std::size_t>(a.rows()));
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

/// One chunk's worth of the SpMV, shared by every ISA variant below. With C
/// a compile-time constant the lane loop unrolls into straight-line code —
/// C independent accumulator chains fed by unit-stride value/index loads,
/// the shape the SIMD unit (or the auto-vectorizer) consumes directly.
template <index_t C, typename T>
[[gnu::always_inline]] inline void sell_chunk_body(
    index_t c, const offset_t* cp, const index_t* cw, const index_t* ci,
    const T* va, const index_t* perm, index_t stored_rows, const value_t* xp,
    value_t* yp) {
  value_t acc[C] = {};
  const offset_t base = cp[c];
  const index_t width = cw[c];
  for (index_t j = 0; j < width; ++j) {
    const offset_t col_base = base + static_cast<offset_t>(j) * C;
#pragma omp simd
    for (index_t lane = 0; lane < C; ++lane) {
      const auto slot = static_cast<std::size_t>(col_base + lane);
      acc[lane] += static_cast<value_t>(va[slot]) *
                   xp[static_cast<std::size_t>(ci[slot])];
    }
  }
  const index_t first = c * C;
  const index_t lanes = std::min(C, stored_rows - first);
  for (index_t lane = 0; lane < lanes; ++lane) {
    yp[static_cast<std::size_t>(perm[static_cast<std::size_t>(first + lane)])] =
        acc[lane];
  }
}

/// Chunk sweep for the compile-time widths. Measurements favor letting the
/// auto-vectorizer handle this shape over an `target("avx2")` clone with
/// hardware x-gathers: the gathers lose both when the matrix streams from
/// memory (bandwidth-bound) and when it sits in cache (gather latency beats
/// the unrolled scalar loads), so there is no runtime ISA dispatch here.
template <index_t C, typename T>
void sell_chunks(index_t nc, const offset_t* cp, const index_t* cw,
                 const index_t* ci, const T* va, const index_t* perm,
                 index_t stored_rows, const value_t* xp, value_t* yp) {
#pragma omp parallel for schedule(static)
  for (index_t c = 0; c < nc; ++c) {
    sell_chunk_body<C>(c, cp, cw, ci, va, perm, stored_rows, xp, yp);
  }
}

}  // namespace

offset_t sell_padded_entries(const CsrMatrix& a, std::span<const index_t> rows,
                             index_t chunk, index_t sigma) {
  FSAIC_REQUIRE(chunk >= 1 && chunk <= kMaxChunk,
                "chunk must be in [1, " + std::to_string(kMaxChunk) + "]");
  FSAIC_REQUIRE(sigma >= chunk && sigma % chunk == 0,
                "sigma must be a positive multiple of chunk");
  // Row lengths in subset order, sorted descending per sigma window — the
  // same permutation the constructor's stable_sort produces (only lengths
  // matter for the padded size, so sorting the lengths is equivalent).
  std::vector<index_t> lengths;
  lengths.reserve(rows.size());
  for (const index_t r : rows) {
    FSAIC_REQUIRE(r >= 0 && r < a.rows(), "subset row out of range");
    lengths.push_back(a.pattern().row_nnz(r));
  }
  const auto n = static_cast<index_t>(lengths.size());
  for (index_t w = 0; w < n; w += sigma) {
    std::stable_sort(lengths.begin() + w,
                     lengths.begin() + std::min<index_t>(w + sigma, n),
                     std::greater<index_t>());
  }
  offset_t padded = 0;
  for (index_t c = 0; c < n; c += chunk) {
    index_t width = 0;
    for (index_t lane = c; lane < std::min<index_t>(c + chunk, n); ++lane) {
      width = std::max(width, lengths[static_cast<std::size_t>(lane)]);
    }
    padded += static_cast<offset_t>(width) * static_cast<offset_t>(chunk);
  }
  return padded;
}

SellMatrix::SellMatrix(const CsrMatrix& a, index_t chunk, index_t sigma,
                       bool single_precision)
    : SellMatrix(a, all_rows_of(a), chunk, sigma, single_precision) {}

SellMatrix::SellMatrix(const CsrMatrix& a, std::span<const index_t> rows,
                       index_t chunk, index_t sigma, bool single_precision)
    : rows_(a.rows()), cols_(a.cols()), chunk_(chunk) {
  FSAIC_REQUIRE(chunk >= 1 && chunk <= kMaxChunk,
                "chunk must be in [1, " + std::to_string(kMaxChunk) + "]");
  FSAIC_REQUIRE(sigma >= chunk && sigma % chunk == 0,
                "sigma must be a positive multiple of chunk");

  // Stored rows: the caller's subset, validated ascending and in range so
  // the disjoint-write contract of spmv holds.
  perm_.assign(rows.begin(), rows.end());
  for (std::size_t k = 0; k < perm_.size(); ++k) {
    FSAIC_REQUIRE(perm_[k] >= 0 && perm_[k] < rows_, "subset row out of range");
    FSAIC_REQUIRE(k == 0 || perm_[k] > perm_[k - 1],
                  "subset rows must be ascending and duplicate-free");
  }
  stored_rows_ = static_cast<index_t>(perm_.size());
  for (index_t r = 0; r < stored_rows_; ++r) {
    source_nnz_ += a.pattern().row_nnz(perm_[static_cast<std::size_t>(r)]);
  }

  // Sort rows by descending length inside each sigma window.
  for (index_t w = 0; w < stored_rows_; w += sigma) {
    const auto begin = perm_.begin() + w;
    const auto end = perm_.begin() + std::min<index_t>(w + sigma, stored_rows_);
    std::stable_sort(begin, end, [&](index_t r1, index_t r2) {
      return a.pattern().row_nnz(r1) > a.pattern().row_nnz(r2);
    });
  }

  const index_t num_chunks = (stored_rows_ + chunk - 1) / chunk;
  chunk_ptr_.assign(static_cast<std::size_t>(num_chunks) + 1, 0);
  chunk_width_.assign(static_cast<std::size_t>(num_chunks), 0);
  for (index_t c = 0; c < num_chunks; ++c) {
    index_t width = 0;
    for (index_t lane = 0; lane < chunk; ++lane) {
      const index_t stored = c * chunk + lane;
      if (stored < stored_rows_) {
        width = std::max(width,
                         a.pattern().row_nnz(perm_[static_cast<std::size_t>(stored)]));
      }
    }
    chunk_width_[static_cast<std::size_t>(c)] = width;
    chunk_ptr_[static_cast<std::size_t>(c) + 1] =
        chunk_ptr_[static_cast<std::size_t>(c)] +
        static_cast<offset_t>(width) * static_cast<offset_t>(chunk);
  }

  // Fill column-major per chunk; padding repeats column 0 with value 0 so
  // the gather stays in-bounds without branches.
  col_idx_.assign(static_cast<std::size_t>(chunk_ptr_.back()), 0);
  values_.assign(static_cast<std::size_t>(chunk_ptr_.back()), 0.0);
  for (index_t c = 0; c < num_chunks; ++c) {
    const offset_t base = chunk_ptr_[static_cast<std::size_t>(c)];
    const index_t width = chunk_width_[static_cast<std::size_t>(c)];
    for (index_t lane = 0; lane < chunk; ++lane) {
      const index_t stored = c * chunk + lane;
      if (stored >= stored_rows_) continue;
      const index_t row = perm_[static_cast<std::size_t>(stored)];
      const auto cols = a.row_cols(row);
      const auto vals = a.row_vals(row);
      for (index_t j = 0; j < width; ++j) {
        const auto slot = static_cast<std::size_t>(
            base + static_cast<offset_t>(j) * chunk + lane);
        if (j < static_cast<index_t>(cols.size())) {
          col_idx_[slot] = cols[static_cast<std::size_t>(j)];
          values_[slot] = vals[static_cast<std::size_t>(j)];
        }
      }
    }
  }

  if (single_precision) {
    single_ = true;
    values_f_.resize(values_.size());
    for (std::size_t k = 0; k < values_.size(); ++k) {
      values_f_[k] = static_cast<float>(values_[k]);
    }
  }
}

template <index_t C, typename Values>
void SellMatrix::spmv_fixed(const Values& values, std::span<const value_t> x,
                            std::span<value_t> y) const {
  sell_chunks<C>(num_chunks(), chunk_ptr_.data(), chunk_width_.data(),
                 col_idx_.data(), values.data(), perm_.data(), stored_rows_,
                 x.data(), y.data());
}

template <typename Values>
void SellMatrix::spmv_impl(const Values& values, std::span<const value_t> x,
                           std::span<value_t> y) const {
  FSAIC_REQUIRE(x.size() == static_cast<std::size_t>(cols_), "x size mismatch");
  FSAIC_REQUIRE(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  // Dispatch the common SIMD widths to constant-trip-count instantiations;
  // anything else takes the C = kMaxChunk generic shape's sibling below.
  switch (chunk_) {
    case 4:
      return spmv_fixed<4>(values, x, y);
    case 8:
      return spmv_fixed<8>(values, x, y);
    case 16:
      return spmv_fixed<16>(values, x, y);
    case 32:
      return spmv_fixed<32>(values, x, y);
    default:
      break;
  }
  const index_t nc = num_chunks();
  const index_t chunk = chunk_;
  const offset_t* const cp = chunk_ptr_.data();
  const index_t* const cw = chunk_width_.data();
  const index_t* const ci = col_idx_.data();
  const auto* const va = values.data();
  const index_t* const perm = perm_.data();
  const index_t stored_rows = stored_rows_;
  const value_t* const xp = x.data();
  value_t* const yp = y.data();
#pragma omp parallel for schedule(static)
  for (index_t c = 0; c < nc; ++c) {
    value_t acc[kMaxChunk] = {};
    const offset_t base = cp[c];
    const index_t width = cw[c];
    for (index_t j = 0; j < width; ++j) {
      const offset_t col_base = base + static_cast<offset_t>(j) * chunk;
#pragma omp simd
      for (index_t lane = 0; lane < chunk; ++lane) {
        const auto slot = static_cast<std::size_t>(col_base + lane);
        acc[lane] += static_cast<value_t>(va[slot]) *
                     xp[static_cast<std::size_t>(ci[slot])];
      }
    }
    const index_t first = c * chunk;
    const index_t lanes = std::min(chunk, stored_rows - first);
    for (index_t lane = 0; lane < lanes; ++lane) {
      yp[static_cast<std::size_t>(perm[static_cast<std::size_t>(first + lane)])] =
          acc[lane];
    }
  }
}

void SellMatrix::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  spmv_impl(values_, x, y);
}

void SellMatrix::spmv_single(std::span<const value_t> x,
                             std::span<value_t> y) const {
  FSAIC_REQUIRE(has_single_precision(),
                "SellMatrix was not built with single-precision values");
  spmv_impl(values_f_, x, y);
}

void SellMatrix::spmv_transpose(std::span<const value_t> x,
                                std::span<value_t> y) const {
  FSAIC_REQUIRE(x.size() == static_cast<std::size_t>(rows_), "x size mismatch");
  FSAIC_REQUIRE(y.size() == static_cast<std::size_t>(cols_), "y size mismatch");
  // Serial scatter: concurrent lanes may hit the same output column, so the
  // chunk loop cannot be parallelized the way the forward kernel is.
  const index_t nc = num_chunks();
  for (index_t c = 0; c < nc; ++c) {
    const offset_t base = chunk_ptr_[static_cast<std::size_t>(c)];
    const index_t width = chunk_width_[static_cast<std::size_t>(c)];
    const index_t first = c * chunk_;
    const index_t lanes = std::min(chunk_, stored_rows_ - first);
    for (index_t lane = 0; lane < lanes; ++lane) {
      const value_t xi =
          x[static_cast<std::size_t>(perm_[static_cast<std::size_t>(first + lane)])];
      for (index_t j = 0; j < width; ++j) {
        const auto slot = static_cast<std::size_t>(
            base + static_cast<offset_t>(j) * chunk_ + lane);
        y[static_cast<std::size_t>(col_idx_[slot])] += values_[slot] * xi;
      }
    }
  }
}

}  // namespace fsaic
