// Matrix Market I/O. The paper's test set comes from the SuiteSparse
// collection distributed in this format; the readers/writers here let users
// run the solvers on real downloads while the bundled matgen/ suite provides
// offline synthetic equivalents.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace fsaic {

/// Read a MatrixMarket "coordinate real {general|symmetric}" matrix. For
/// symmetric files the missing upper triangle is mirrored in.
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);
[[nodiscard]] CsrMatrix read_matrix_market_file(const std::string& path);

/// Write in "coordinate real general" format (1-based indices).
void write_matrix_market(std::ostream& out, const CsrMatrix& a);
void write_matrix_market_file(const std::string& path, const CsrMatrix& a);

}  // namespace fsaic
