// Matrix Market I/O. The paper's test set comes from the SuiteSparse
// collection distributed in this format; the readers/writers here let users
// run the solvers on real downloads while the bundled matgen/ suite provides
// offline synthetic equivalents.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace fsaic {

/// Read a MatrixMarket "coordinate real {general|symmetric}" matrix. For
/// symmetric files the missing upper triangle is mirrored in.
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);
[[nodiscard]] CsrMatrix read_matrix_market_file(const std::string& path);

/// Write in "coordinate real general" format (1-based indices).
void write_matrix_market(std::ostream& out, const CsrMatrix& a);
void write_matrix_market_file(const std::string& path, const CsrMatrix& a);

/// Read a dense vector (a right-hand side): either "array real general" with
/// a single column, or a single-column "coordinate" file whose unlisted
/// entries are zero. This is the format SuiteSparse distributes `b` vectors
/// in next to their matrices.
[[nodiscard]] std::vector<value_t> read_matrix_market_vector(std::istream& in);
[[nodiscard]] std::vector<value_t> read_matrix_market_vector_file(
    const std::string& path);

/// Write a dense vector in "array real general" format (n rows, 1 column).
void write_matrix_market_vector(std::ostream& out, std::span<const value_t> v);
void write_matrix_market_vector_file(const std::string& path,
                                     std::span<const value_t> v);

}  // namespace fsaic
