// LocalOperator: the per-rank SpMV kernel backend behind the distributed
// solve hot path.
//
// Every rank-local block of a DistCsr (the system matrix A and the
// preconditioner factors G / G^T alike) is applied through one of these.
// Two formats:
//
//   Csr  — the scalar reference. Bit-for-bit the historic kernels: the
//          interior/boundary subsets run the serial per-row loop, the full
//          apply runs the OpenMP row-parallel fsaic::spmv. This path defines
//          the numbers every fast path is differential-tested against.
//   Sell — SELL-C-sigma (sparse/sell.hpp): unit-stride SIMD layout. The
//          double-precision SELL kernel accumulates each row in the same
//          order as the CSR loop, so *residual histories do not change*
//          when the format is switched (enforced by EXPECT_EQ differential
//          tests).
//
// Precisions:
//
//   Double — value_t storage and arithmetic (the default, and the only
//            precision the system matrix A is ever applied in).
//   Single — float32 value storage, double accumulation. Meant for the
//            preconditioner factors only (the GPU FSAI line of work in
//            PAPERS.md applies low-precision factors inside a double
//            Krylov loop); results differ in rounding, so the solver-side
//            accuracy guardrail test pins the allowed drift.
//
// Selection: `fsaic solve --format {csr,sell}` or the FSAIC_FORMAT
// environment variable (the process-wide default read at distribute time);
// precision is opt-in per matrix via DistCsr::use_kernel, never from the
// environment (so FSAIC_FORMAT=sell test runs cannot silently degrade A).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "sparse/csr.hpp"
#include "sparse/sell.hpp"

namespace fsaic {

enum class OperatorFormat {
  Csr,   ///< scalar CSR — the bit-exact reference
  Sell,  ///< SELL-C-sigma — SIMD fast path, bit-identical in double
};

enum class FactorPrecision {
  Double,  ///< value_t storage (default)
  Single,  ///< float32 storage, double accumulation (factors only)
};

[[nodiscard]] std::string to_string(OperatorFormat format);
[[nodiscard]] std::string to_string(FactorPrecision precision);
[[nodiscard]] OperatorFormat operator_format_from_string(const std::string& s);
[[nodiscard]] FactorPrecision factor_precision_from_string(const std::string& s);

/// Which kernels a LocalOperator builds and runs.
struct KernelConfig {
  OperatorFormat format = OperatorFormat::Csr;
  FactorPrecision precision = FactorPrecision::Double;
  /// SELL geometry (ignored under Csr): C = SIMD width padded for, sigma =
  /// row-sorting window (multiple of chunk).
  index_t sell_chunk = 8;
  index_t sell_sigma = 64;
  /// Pick format and chunk per matrix from the padding ratio instead of the
  /// fields above (the `--format auto` seed): DistCsr::use_kernel scores
  /// SELL chunks {4, 8, 16, 32} over the matrix's row-length profile, keeps
  /// the least-padded one, and falls back to Csr when even that pads more
  /// than 1.25x. Resolved at distribute/use_kernel time — the stored config
  /// always reports the format actually built.
  bool autotune = false;

  bool operator==(const KernelConfig&) const = default;

  /// Config from FSAIC_FORMAT ("csr" | "sell" | "auto"; unset/empty ->
  /// csr). The precision always starts Double — mixed precision is a
  /// per-matrix decision made by the caller, never a process-wide env
  /// default.
  [[nodiscard]] static KernelConfig from_env();
};

/// The kernel realization of one rank-local CSR block. Immutable after
/// construction; copies share the (immutable) SELL storage. The CSR block
/// itself stays owned by the caller and is passed to every apply — the
/// reference path reads it directly, which keeps this object small and the
/// reference kernel literally the historic code.
class LocalOperator {
 public:
  /// CSR double reference (no auxiliary storage).
  LocalOperator() = default;

  /// Build for `a` with the interior/boundary row split of the overlap SpMV
  /// (together the subsets must enumerate the rows each apply targets).
  LocalOperator(const CsrMatrix& a, std::span<const index_t> interior,
                std::span<const index_t> boundary, const KernelConfig& config);

  [[nodiscard]] const KernelConfig& config() const { return config_; }

  /// Stored slots including SELL padding (== nnz under Csr).
  [[nodiscard]] offset_t padded_entries(const CsrMatrix& a) const;
  /// Padded slots / nnz (1.0 under Csr).
  [[nodiscard]] double padding_ratio(const CsrMatrix& a) const;

  /// y[rows] = (A x)[rows] for the interior subset; other y entries are
  /// untouched. `a` and `rows` must be the block and subset the operator
  /// was built from.
  void spmv_interior(const CsrMatrix& a, std::span<const index_t> rows,
                     std::span<const value_t> x, std::span<value_t> y) const;
  /// Same for the boundary subset.
  void spmv_boundary(const CsrMatrix& a, std::span<const index_t> rows,
                     std::span<const value_t> x, std::span<value_t> y) const;
  /// y = A x over all rows (the non-overlapping path).
  void spmv_all(const CsrMatrix& a, std::span<const index_t> interior,
                std::span<const index_t> boundary, std::span<const value_t> x,
                std::span<value_t> y) const;

 private:
  void apply_sell(const SellMatrix& sell, std::span<const value_t> x,
                  std::span<value_t> y) const;
  void csr_rows(const CsrMatrix& a, std::span<const index_t> rows,
                std::span<const value_t> x, std::span<value_t> y) const;

  KernelConfig config_;
  /// SELL realizations of the row subsets (null under Csr).
  std::shared_ptr<const SellMatrix> sell_interior_;
  std::shared_ptr<const SellMatrix> sell_boundary_;
  /// float32 copy of the CSR values (Csr + Single only), aligned with the
  /// block's value array.
  std::shared_ptr<const std::vector<float>> csr_values_f_;
};

}  // namespace fsaic
