// Coordinate-format builder: accumulate (i, j, v) triplets, then convert to
// CSR. Duplicate coordinates are summed, matching Matrix Market semantics and
// finite-element assembly.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace fsaic {

class CooBuilder {
 public:
  CooBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    FSAIC_REQUIRE(rows >= 0 && cols >= 0, "shape must be non-negative");
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Add a triplet; duplicates are summed at conversion time.
  void add(index_t i, index_t j, value_t v) {
    FSAIC_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                  "triplet index out of range");
    entries_.push_back({i, j, v});
  }

  /// Add v at (i, j) and (j, i); adds once when i == j.
  void add_symmetric(index_t i, index_t j, value_t v) {
    add(i, j, v);
    if (i != j) add(j, i, v);
  }

  /// Convert to CSR, summing duplicates. Entries with |v| == 0 after
  /// summation are kept (structural zeros matter for patterns) unless
  /// drop_zeros is set.
  [[nodiscard]] CsrMatrix to_csr(bool drop_zeros = false) const;

 private:
  struct Triplet {
    index_t row;
    index_t col;
    value_t val;
  };

  index_t rows_;
  index_t cols_;
  std::vector<Triplet> entries_;
};

}  // namespace fsaic
