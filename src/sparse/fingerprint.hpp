// Content identity of a sparse matrix: dimensions, nonzero count and a
// 64-bit hash over the CSR arrays (structure *and* values).
//
// Two consumers key off this identity. The factor files written by
// core/factor_io embed the fingerprint of the matrix a factor was built
// for, so `--load-factor` can refuse a factor that does not belong to the
// loaded system instead of silently producing garbage. The serve-mode
// FactorCache uses it as the cache key, so repeated solves against the
// same operator reuse the built factor while same-shape matrices with
// different values miss the cache.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "sparse/csr.hpp"

namespace fsaic {

struct MatrixFingerprint {
  index_t rows = 0;
  index_t cols = 0;
  offset_t nnz = 0;
  std::uint64_t content_hash = 0;  ///< FNV-1a over row_ptr, col_idx, values

  bool operator==(const MatrixFingerprint&) const = default;

  /// "rows x cols, nnz nnz, hash 0123456789abcdef" for error messages.
  [[nodiscard]] std::string to_string() const;
};

/// FNV-1a 64-bit over a byte range, resumable via `seed` chaining.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                                    std::uint64_t seed = 0xcbf29ce484222325ull);

/// Incremental FNV-1a 64-bit: update() in any chunking yields the same
/// digest as one fnv1a64 over the concatenated bytes. This is what lets
/// fingerprint_rank_local (dist/dist_csr.hpp) hash a distributed operator
/// block by block yet land on the exact fingerprint_of() of the assembled
/// global matrix.
class Fnv1a64Stream {
 public:
  void update(const void* data, std::size_t bytes) {
    hash_ = fnv1a64(data, bytes, hash_);
  }
  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Fingerprint of a CSR matrix. The hash covers the exact bytes of the CSR
/// arrays, so it is sensitive to value bit patterns (0.0 vs -0.0 differ) and
/// identical across runs and machines of the same endianness.
[[nodiscard]] MatrixFingerprint fingerprint_of(const CsrMatrix& a);

/// FNV-1a over the exact bytes of a value span — the content identity of a
/// right-hand side (the warm-start solution cache keys on it).
[[nodiscard]] std::uint64_t fingerprint_of_values(std::span<const value_t> v);

/// 16-digit lowercase hex of a 64-bit hash — the on-wire / on-disk spelling
/// of content hashes (response "fingerprint" field, factor store filenames).
[[nodiscard]] std::string hash_hex(std::uint64_t h);

}  // namespace fsaic
