#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

namespace fsaic {

CsrMatrix::CsrMatrix(SparsityPattern pattern)
    : pattern_(std::move(pattern)),
      values_(static_cast<std::size_t>(pattern_.nnz()), 0.0) {}

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<offset_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<value_t> values)
    : pattern_(rows, cols, std::move(row_ptr), std::move(col_idx)),
      values_(std::move(values)) {
  FSAIC_REQUIRE(values_.size() == static_cast<std::size_t>(pattern_.nnz()),
                "one value per pattern entry required");
}

value_t CsrMatrix::at(index_t i, index_t j) const {
  const auto cols = pattern_.row(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  const auto rp = pattern_.row_ptr();
  const auto pos = static_cast<std::size_t>(rp[static_cast<std::size_t>(i)] +
                                            (it - cols.begin()));
  return values_[pos];
}

std::vector<value_t> CsrMatrix::diagonal() const {
  FSAIC_REQUIRE(rows() == cols(), "diagonal requires a square matrix");
  std::vector<value_t> d(static_cast<std::size_t>(rows()));
  for (index_t i = 0; i < rows(); ++i) {
    d[static_cast<std::size_t>(i)] = at(i, i);
  }
  return d;
}

bool CsrMatrix::is_symmetric(value_t tol) const {
  if (rows() != cols()) return false;
  for (index_t i = 0; i < rows(); ++i) {
    const auto cols_i = row_cols(i);
    const auto vals_i = row_vals(i);
    for (std::size_t k = 0; k < cols_i.size(); ++k) {
      if (std::abs(vals_i[k] - at(cols_i[k], i)) > tol) return false;
    }
  }
  return true;
}

value_t CsrMatrix::max_abs() const {
  value_t m = 0.0;
  for (value_t v : values_) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

}  // namespace fsaic
