#include "sparse/coo.hpp"

#include <algorithm>

namespace fsaic {

CsrMatrix CooBuilder::to_csr(bool drop_zeros) const {
  // Counting sort by row, then sort each row's slice by column. This is
  // O(nnz log(row degree)) and avoids a full O(nnz log nnz) global sort.
  std::vector<offset_t> row_count(static_cast<std::size_t>(rows_) + 1, 0);
  for (const auto& t : entries_) {
    ++row_count[static_cast<std::size_t>(t.row) + 1];
  }
  for (index_t i = 0; i < rows_; ++i) {
    row_count[static_cast<std::size_t>(i) + 1] += row_count[static_cast<std::size_t>(i)];
  }
  struct ColVal {
    index_t col;
    value_t val;
  };
  std::vector<ColVal> sorted(entries_.size());
  {
    std::vector<offset_t> cursor(row_count.begin(), row_count.end() - 1);
    for (const auto& t : entries_) {
      sorted[static_cast<std::size_t>(cursor[static_cast<std::size_t>(t.row)]++)] =
          {t.col, t.val};
    }
  }

  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<value_t> values;
  col_idx.reserve(entries_.size());
  values.reserve(entries_.size());

  for (index_t i = 0; i < rows_; ++i) {
    const auto b = static_cast<std::size_t>(row_count[static_cast<std::size_t>(i)]);
    const auto e = static_cast<std::size_t>(row_count[static_cast<std::size_t>(i) + 1]);
    std::sort(sorted.begin() + static_cast<std::ptrdiff_t>(b),
              sorted.begin() + static_cast<std::ptrdiff_t>(e),
              [](const ColVal& a, const ColVal& c) { return a.col < c.col; });
    std::size_t k = b;
    while (k < e) {
      const index_t col = sorted[k].col;
      value_t sum = 0.0;
      while (k < e && sorted[k].col == col) {
        sum += sorted[k].val;
        ++k;
      }
      if (drop_zeros && sum == 0.0) continue;
      col_idx.push_back(col);
      values.push_back(sum);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(col_idx.size());
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace fsaic
