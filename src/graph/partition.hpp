// Graph partitioner: recursive bisection with BFS (level-set) growing and
// Fiduccia–Mattheyses-style boundary refinement. Stands in for METIS in the
// paper's pipeline: rows of the system matrix are assigned to ranks so that
// edge-cut — and hence halo-exchange volume — is small and parts are
// balanced.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace fsaic {

struct PartitionOptions {
  /// Boundary-refinement sweeps per bisection level.
  int refinement_passes = 8;
  /// Allowed deviation of a side from its target size during refinement.
  double balance_tolerance = 0.02;
  /// Seed for tie-breaking.
  std::uint64_t seed = 12345;
};

/// Assign each vertex a part in [0, nparts). nparts must be >= 1; it does
/// not need to be a power of two.
[[nodiscard]] std::vector<index_t> partition_graph(
    const Graph& g, index_t nparts, const PartitionOptions& opts = {});

struct PartitionMetrics {
  /// Undirected edges with endpoints in different parts.
  offset_t edge_cut = 0;
  /// max part size / average part size (>= 1; 1 is perfectly balanced).
  double imbalance = 1.0;
  std::vector<index_t> part_sizes;
};

[[nodiscard]] PartitionMetrics evaluate_partition(const Graph& g,
                                                  std::span<const index_t> part,
                                                  index_t nparts);

/// Permutation perm[old] = new renumbering vertices so parts occupy
/// ascending contiguous index ranges (part 0 first), preserving the original
/// relative order inside each part.
[[nodiscard]] std::vector<index_t> partition_permutation(
    std::span<const index_t> part, index_t nparts);

/// Sizes of each part under `part`.
[[nodiscard]] std::vector<index_t> partition_sizes(std::span<const index_t> part,
                                                   index_t nparts);

}  // namespace fsaic
