// Reverse Cuthill–McKee ordering.
//
// Real FE/FV matrices come with locality-preserving numberings; when a user
// feeds a matrix with a poor ordering (random, or hypergraph-partitioned),
// RCM restores index locality — which is exactly what cache-line pattern
// extensions feed on. mm_solver applies it as optional preprocessing, and
// the ablation benches use it to quantify the ordering sensitivity of
// FSAIE/FSAIE-Comm.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace fsaic {

/// RCM permutation: perm[old] = new. Each connected component is ordered
/// from a pseudo-peripheral seed, neighbors visited in increasing-degree
/// order, and the final order reversed (the "reverse" in RCM).
[[nodiscard]] std::vector<index_t> rcm_permutation(const Graph& g);

/// Bandwidth of a pattern: max |i - j| over entries.
[[nodiscard]] index_t pattern_bandwidth(const SparsityPattern& p);

/// Profile (envelope size) of a pattern: sum over rows of (i - min column).
[[nodiscard]] offset_t pattern_profile(const SparsityPattern& p);

}  // namespace fsaic
