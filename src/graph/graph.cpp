#include "graph/graph.hpp"

#include <algorithm>
#include <deque>

namespace fsaic {

Graph Graph::from_pattern(const SparsityPattern& p) {
  FSAIC_REQUIRE(p.rows() == p.cols(), "adjacency graph requires square pattern");
  const index_t n = p.rows();
  // Symmetrize: count each undirected edge once per endpoint.
  const SparsityPattern sym = p.merged_with(p.transposed());
  Graph g;
  g.n_ = n;
  g.xadj_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    index_t deg = 0;
    for (index_t j : sym.row(i)) {
      if (j != i) ++deg;
    }
    g.xadj_[static_cast<std::size_t>(i) + 1] =
        g.xadj_[static_cast<std::size_t>(i)] + deg;
  }
  g.adj_.resize(static_cast<std::size_t>(g.xadj_.back()));
  std::size_t pos = 0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j : sym.row(i)) {
      if (j != i) g.adj_[pos++] = j;
    }
  }
  return g;
}

std::vector<index_t> Graph::bfs_levels(index_t seed, std::span<const index_t> mask,
                                       index_t part) const {
  FSAIC_REQUIRE(seed >= 0 && seed < n_, "seed out of range");
  std::vector<index_t> level(static_cast<std::size_t>(n_), -1);
  const auto in_scope = [&](index_t v) {
    return mask.empty() || mask[static_cast<std::size_t>(v)] == part;
  };
  if (!in_scope(seed)) return level;
  std::deque<index_t> queue{seed};
  level[static_cast<std::size_t>(seed)] = 0;
  while (!queue.empty()) {
    const index_t v = queue.front();
    queue.pop_front();
    for (index_t u : neighbors(v)) {
      if (in_scope(u) && level[static_cast<std::size_t>(u)] < 0) {
        level[static_cast<std::size_t>(u)] = level[static_cast<std::size_t>(v)] + 1;
        queue.push_back(u);
      }
    }
  }
  return level;
}

index_t Graph::pseudo_peripheral(index_t seed, std::span<const index_t> mask,
                                 index_t part) const {
  index_t current = seed;
  index_t current_ecc = -1;
  // Iterate "farthest vertex of a BFS" until the eccentricity stops growing;
  // converges in a handful of sweeps on mesh-like graphs.
  for (int sweep = 0; sweep < 8; ++sweep) {
    const auto level = bfs_levels(current, mask, part);
    index_t far = current;
    index_t ecc = 0;
    for (index_t v = 0; v < n_; ++v) {
      if (level[static_cast<std::size_t>(v)] > ecc) {
        ecc = level[static_cast<std::size_t>(v)];
        far = v;
      }
    }
    if (ecc <= current_ecc) break;
    current_ecc = ecc;
    current = far;
  }
  return current;
}

index_t Graph::component_count() const {
  std::vector<bool> seen(static_cast<std::size_t>(n_), false);
  index_t count = 0;
  for (index_t s = 0; s < n_; ++s) {
    if (seen[static_cast<std::size_t>(s)]) continue;
    ++count;
    std::deque<index_t> queue{s};
    seen[static_cast<std::size_t>(s)] = true;
    while (!queue.empty()) {
      const index_t v = queue.front();
      queue.pop_front();
      for (index_t u : neighbors(v)) {
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = true;
          queue.push_back(u);
        }
      }
    }
  }
  return count;
}

}  // namespace fsaic
