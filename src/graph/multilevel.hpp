// Multilevel graph partitioning: the algorithm class METIS actually uses.
//
// The flat recursive-bisection partitioner (graph/partition.hpp) grows and
// refines directly on the input graph; its cut quality degrades on large or
// irregular graphs because boundary refinement only sees single-vertex
// moves. The multilevel scheme coarsens the graph by heavy-edge matching
// (collapsing strongly connected pairs), bisects the small coarse graph,
// and projects the split back up, refining at every level — so refinement
// effectively moves whole clusters at the coarse levels and polishes
// vertices at the fine ones. Edge cut directly controls halo traffic, so
// better partitions mean less communication for every method in this
// library.
#pragma once

#include "graph/partition.hpp"

namespace fsaic {

struct MultilevelOptions {
  /// Stop coarsening when the graph is this small...
  index_t coarsest_vertices = 64;
  /// ...or when a round shrinks it by less than this factor.
  double min_shrink_factor = 0.9;
  /// Refinement sweeps per level during uncoarsening.
  int refinement_passes = 6;
  /// Allowed relative deviation from the target side weight.
  double balance_tolerance = 0.03;
  std::uint64_t seed = 12345;
};

/// Assign each vertex a part in [0, nparts) via multilevel recursive
/// bisection. Same contract as partition_graph.
[[nodiscard]] std::vector<index_t> partition_graph_multilevel(
    const Graph& g, index_t nparts, const MultilevelOptions& options = {});

}  // namespace fsaic
